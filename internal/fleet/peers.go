package fleet

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Peers tracks the liveness of the other nodes in a fleet. Each peer is
// probed with GET <url>/healthz on a fixed interval; a failed probe (or
// an explicit MarkDown from a caller whose forward just failed) marks the
// peer down until the next successful probe. Nodes start out presumed
// healthy so a freshly-booted fleet routes correctly before the first
// probe completes.
//
// Transitions are published as obs counters fleet/peer_up and
// fleet/peer_down, and the current view as the gauge fleet/peers_healthy.
type Peers struct {
	client   *http.Client
	interval time.Duration
	timeout  time.Duration

	mu      sync.Mutex
	state   map[string]*peerState
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started atomic.Bool
}

type peerState struct {
	healthy  bool
	lastErr  error
	failures int // consecutive probe failures
}

// PeerOptions configures a Peers set; the zero value selects the
// documented defaults.
type PeerOptions struct {
	// Interval between health probes of each peer. Default 1s.
	Interval time.Duration
	// Timeout of one health probe. Default 500ms.
	Timeout time.Duration
	// Client is the HTTP client used for probes. Default: a dedicated
	// client with Timeout as its overall deadline.
	Client *http.Client
}

// NewPeers returns a health tracker over the given peer base URLs (the
// caller excludes its own URL). Probing starts when Start is called;
// until then — and before each peer's first probe lands — every peer is
// presumed healthy.
func NewPeers(urls []string, opt PeerOptions) *Peers {
	if opt.Interval <= 0 {
		opt.Interval = time.Second
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 500 * time.Millisecond
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: opt.Timeout}
	}
	p := &Peers{
		client:   opt.Client,
		interval: opt.Interval,
		timeout:  opt.Timeout,
		state:    map[string]*peerState{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, u := range urls {
		if u == "" {
			continue
		}
		if _, ok := p.state[u]; !ok {
			p.state[u] = &peerState{healthy: true}
		}
	}
	return p
}

// URLs returns the tracked peer URLs (unordered).
func (p *Peers) URLs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.state))
	for u := range p.state {
		out = append(out, u)
	}
	return out
}

// Healthy reports the current liveness view of url. Unknown URLs are
// reported healthy: the tracker only ever vetoes peers it has evidence
// against, so routing over a superset of the tracked fleet still works.
func (p *Peers) Healthy(url string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[url]
	return !ok || st.healthy
}

// MarkDown records out-of-band evidence that url is unreachable (a
// failed forward); the peer is down until a probe succeeds again.
func (p *Peers) MarkDown(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[url]; ok && st.healthy {
		st.healthy = false
		obs.Add("fleet/peer_down", 1)
		p.publishLocked()
	}
}

// CheckNow probes url synchronously and returns the updated liveness.
// Probing an untracked URL reports false without recording anything.
func (p *Peers) CheckNow(ctx context.Context, url string) bool {
	p.mu.Lock()
	_, ok := p.state[url]
	p.mu.Unlock()
	if !ok {
		return false
	}
	return p.probe(ctx, url)
}

// Start launches the background probe loop. Idempotent; Close stops it.
// A Peers that is never started still works as a passive view (presumed
// healthy until MarkDown).
func (p *Peers) Start() {
	if p.started.CompareAndSwap(false, true) {
		go p.loop()
	}
}

// Close stops the probe loop. Idempotent; safe whether or not Start ran.
func (p *Peers) Close() {
	p.once.Do(func() { close(p.stop) })
	if p.started.Load() {
		<-p.done
	}
}

func (p *Peers) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			for _, u := range p.URLs() {
				select {
				case <-p.stop:
					return
				default:
				}
				p.probe(context.Background(), u)
			}
		}
	}
}

// probe performs one health check and folds the outcome into the view.
func (p *Peers) probe(ctx context.Context, url string) bool {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	obs.Add("fleet/health_checks", 1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	up := false
	if err == nil {
		resp, rerr := p.client.Do(req)
		if rerr == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
		} else {
			err = rerr
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[url]
	if !ok {
		return up
	}
	st.lastErr = err
	if up {
		st.failures = 0
		if !st.healthy {
			st.healthy = true
			obs.Add("fleet/peer_up", 1)
			p.publishLocked()
		}
	} else {
		st.failures++
		if st.healthy {
			st.healthy = false
			obs.Add("fleet/peer_down", 1)
			p.publishLocked()
		}
	}
	return up
}

// publishLocked refreshes the fleet/peers_healthy gauge; p.mu held.
func (p *Peers) publishLocked() {
	n := int64(0)
	for _, st := range p.state {
		if st.healthy {
			n++
		}
	}
	obs.Set("fleet/peers_healthy", n)
}

// Backoff is a bounded exponential retry policy for forwarded requests.
type Backoff struct {
	// Attempts is the total number of tries (default 3).
	Attempts int
	// Base is the delay before the second try; each further delay
	// doubles, capped at Max. Default 50ms.
	Base time.Duration
	// Max caps the delay between tries. Default 1s.
	Max time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 3
	}
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	return b
}

// Do calls fn until it succeeds, the attempts are exhausted, or ctx
// ends; it returns nil on success, ctx.Err() on cancellation, and
// otherwise the last error from fn.
func (b Backoff) Do(ctx context.Context, fn func() error) error {
	b = b.withDefaults()
	var err error
	delay := b.Base
	for i := 0; i < b.Attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return ctx.Err()
			}
			if delay *= 2; delay > b.Max {
				delay = b.Max
			}
		}
		if err = fn(); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return err
}
