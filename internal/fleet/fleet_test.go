package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := NewRing(nodes, 0)
	r2 := NewRing([]string{nodes[2], nodes[0], nodes[1], nodes[0]}, 0) // order + dup irrelevant
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := r1.Owner(key), r2.Owner(key)
		if o1 != o2 {
			t.Fatalf("ownership depends on construction order: %q vs %q", o1, o2)
		}
		counts[o1]++
	}
	for node, c := range counts {
		if c < n/6 || c > n/2+n/6 {
			t.Errorf("unbalanced ring: %s owns %d/%d keys", node, c, n)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own keys", len(counts))
	}
}

func TestRingStabilityUnderNodeLoss(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(nodes, 0)
	dead := "http://b:1"
	alive := func(n string) bool { return n != dead }
	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := r.Owner(key)
		after := r.OwnerAlive(key, alive)
		if after == dead {
			t.Fatalf("dead node still owns %q", key)
		}
		if before == dead {
			moved++
		} else if before != after {
			t.Fatalf("key %q moved from healthy node %q to %q", key, before, after)
		} else {
			kept++
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
	if r.OwnerAlive("k", func(string) bool { return false }) != "" {
		t.Fatal("all-dead ring did not report no owner")
	}
	if NewRing(nil, 0).Owner("k") != "" {
		t.Fatal("empty ring did not report no owner")
	}
}

func TestPeersHealthTransitions(t *testing.T) {
	var up atomic.Bool
	up.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if !up.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	defer srv.Close()

	p := NewPeers([]string{srv.URL, "http://127.0.0.1:1"}, PeerOptions{Interval: time.Hour, Timeout: 200 * time.Millisecond})
	p.Start()
	defer p.Close()

	// Presumed healthy before any probe.
	if !p.Healthy(srv.URL) || !p.Healthy("http://127.0.0.1:1") {
		t.Fatal("peers not presumed healthy at start")
	}
	// A probe of the unreachable peer marks it down; the live one stays up.
	if p.CheckNow(context.Background(), "http://127.0.0.1:1") {
		t.Fatal("unreachable peer probed healthy")
	}
	if p.Healthy("http://127.0.0.1:1") {
		t.Fatal("unreachable peer still viewed healthy after failed probe")
	}
	if !p.CheckNow(context.Background(), srv.URL) || !p.Healthy(srv.URL) {
		t.Fatal("live peer probed unhealthy")
	}

	// 503 (draining) counts as down; recovery on the next good probe.
	up.Store(false)
	if p.CheckNow(context.Background(), srv.URL) {
		t.Fatal("draining peer probed healthy")
	}
	up.Store(true)
	if !p.CheckNow(context.Background(), srv.URL) {
		t.Fatal("recovered peer probed unhealthy")
	}

	// MarkDown is out-of-band evidence; a good probe restores.
	p.MarkDown(srv.URL)
	if p.Healthy(srv.URL) {
		t.Fatal("MarkDown had no effect")
	}
	p.CheckNow(context.Background(), srv.URL)
	if !p.Healthy(srv.URL) {
		t.Fatal("probe did not restore marked-down peer")
	}

	// Unknown URLs are never vetoed; probing them records nothing.
	if !p.Healthy("http://unknown:9") {
		t.Fatal("unknown peer vetoed")
	}
	if p.CheckNow(context.Background(), "http://unknown:9") {
		t.Fatal("untracked probe reported healthy")
	}
}

func TestBackoffRetriesThenGivesUp(t *testing.T) {
	calls := 0
	err := Backoff{Attempts: 3, Base: time.Millisecond}.Do(context.Background(), func() error {
		calls++
		return errors.New("boom")
	})
	if calls != 3 || err == nil || err.Error() != "boom" {
		t.Fatalf("calls=%d err=%v, want 3 attempts ending in boom", calls, err)
	}

	calls = 0
	err = Backoff{Attempts: 5, Base: time.Millisecond}.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("calls=%d err=%v, want success on third try", calls, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = Backoff{Attempts: 3, Base: time.Minute}.Do(ctx, func() error { return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled backoff returned %v", err)
	}
}

func TestCacheClientFetchFallsThroughPeers(t *testing.T) {
	const key = "00ff"
	missing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer missing.Close()
	holding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cache/"+key {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"payload":true}`))
	}))
	defer holding.Close()

	c := NewCacheClient([]string{"http://127.0.0.1:1", missing.URL, holding.URL}, nil, CacheClientOptions{PerPeerTimeout: 300 * time.Millisecond})
	data, err := c.Fetch(context.Background(), key)
	if err != nil || string(data) != `{"payload":true}` {
		t.Fatalf("Fetch = %q, %v; want the held payload", data, err)
	}
	// Fleet-wide miss is a clean (nil, nil).
	data, err = c.Fetch(context.Background(), "beef")
	if err != nil || data != nil {
		t.Fatalf("fleet-wide miss = %q, %v; want nil, nil", data, err)
	}
	// Unhealthy peers are skipped entirely.
	p := NewPeers([]string{holding.URL}, PeerOptions{Interval: time.Hour})
	p.MarkDown(holding.URL)
	cSkip := NewCacheClient([]string{holding.URL}, p, CacheClientOptions{})
	if data, err := cSkip.Fetch(context.Background(), key); err != nil || data != nil {
		t.Fatalf("fetch via downed peer = %q, %v; want skip to miss", data, err)
	}
	// Store is the pull-model no-op.
	if err := c.Store(context.Background(), key, []byte("x")); err != nil {
		t.Fatalf("Store: %v", err)
	}
}
