// Package fleet is the coordination substrate for running asyncsynthd as
// a multi-node service: a consistent-hash ring that assigns every
// content-addressed document a stable owner node, a health-checked peer
// set that lets routing skip dead nodes, retry-with-backoff for
// forwarded requests, and an HTTP pull client for the shared remote
// minimization-cache tier (memo.Remote).
//
// The package deliberately mirrors the source paper's premise: the fleet
// is a set of independent asynchronous components that coordinate only
// through explicit messages (job forwarding, cache fills, health
// probes), never through shared state. Every node can serve every
// request; the ring is an optimization that concentrates identical work
// on one owner so the memo tier and request-level dedup see it, and a
// node that cannot reach an owner degrades to local execution rather
// than failing the job.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVnodes is how many virtual points each node contributes to the
// ring. 64 keeps the ownership split within a few percent of even for
// small fleets while the ring stays tiny.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over a set of node names
// (asyncsynthd uses advertised base URLs). A key's owner is the node
// whose first virtual point is at or clockwise-after the key's hash;
// removing a node only reassigns the keys it owned.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over nodes with vnodes virtual points each
// (vnodes <= 0 selects DefaultVnodes). Duplicate node names are
// collapsed; the node order does not affect ownership.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n, i), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // deterministic on (vanishingly rare) collisions
	})
	sort.Strings(r.nodes)
	return r
}

// Nodes returns the distinct node names on the ring, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Has reports whether node is on the ring.
func (r *Ring) Has(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	return r.OwnerAlive(key, nil)
}

// OwnerAlive returns the first node at or clockwise-after key's hash for
// which alive returns true, walking distinct nodes in ring order. A nil
// alive accepts every node. It returns "" when the ring is empty or no
// node is alive — callers treat that as "execute locally".
func (r *Ring) OwnerAlive(key string, alive func(node string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	tried := map[string]bool{}
	for i := 0; len(tried) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.node] {
			continue
		}
		tried[p.node] = true
		if alive == nil || alive(p.node) {
			return p.node
		}
	}
	return ""
}

func pointHash(node string, vnode int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", node, vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}
