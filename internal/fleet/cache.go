package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// maxCacheEntryBytes bounds one remote cache record. Minimization records
// are a few KiB; 1 MiB leaves generous headroom while keeping a
// misbehaving peer from ballooning memory.
const maxCacheEntryBytes = 1 << 20

// CacheClient is the peer-to-peer pull backend of the shared
// minimization-cache tier: it satisfies memo.Remote by asking each
// healthy peer's GET /v1/cache/{key} in turn until one returns the
// record. Store is a no-op — the tier is pull-based (a node that misses
// fetches from whoever solved it), so there is nothing to push; a
// blob-store backend would implement Store instead.
//
// Any payload a peer returns is strictly re-validated by the memo layer
// before use, so a slow, corrupt or even malicious peer can cost a
// recompute but never change a result.
type CacheClient struct {
	peers   *Peers
	urls    []string
	client  *http.Client
	timeout time.Duration
}

// CacheClientOptions configures a CacheClient; the zero value selects
// the documented defaults.
type CacheClientOptions struct {
	// PerPeerTimeout bounds each individual peer request. Default 250ms.
	PerPeerTimeout time.Duration
	// Client is the HTTP client used for fetches. Default: a dedicated
	// client (per-request deadlines come from contexts).
	Client *http.Client
}

// NewCacheClient returns a pull client over the given peer base URLs
// (the caller excludes its own URL). peers, when non-nil, provides the
// liveness view used to skip dead nodes; a nil peers consults every URL.
func NewCacheClient(urls []string, peers *Peers, opt CacheClientOptions) *CacheClient {
	if opt.PerPeerTimeout <= 0 {
		opt.PerPeerTimeout = 250 * time.Millisecond
	}
	if opt.Client == nil {
		opt.Client = &http.Client{}
	}
	c := &CacheClient{peers: peers, client: opt.Client, timeout: opt.PerPeerTimeout}
	for _, u := range urls {
		if u != "" {
			c.urls = append(c.urls, u)
		}
	}
	return c
}

// Fetch asks each healthy peer for the record in list order and returns
// the first 200 body. A fleet-wide miss returns (nil, nil); an error is
// returned only when ctx ended before the peers were exhausted.
func (c *CacheClient) Fetch(ctx context.Context, key string) ([]byte, error) {
	for _, u := range c.urls {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if c.peers != nil && !c.peers.Healthy(u) {
			continue
		}
		data, err := c.fetchOne(ctx, u, key)
		if err != nil || data == nil {
			continue // try the next peer; the memo layer counts outcomes
		}
		return data, nil
	}
	return nil, ctx.Err()
}

// fetchOne performs one peer request under the per-peer timeout.
func (c *CacheClient) fetchOne(ctx context.Context, peer, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: cache fetch from %s: status %d", peer, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheEntryBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxCacheEntryBytes {
		return nil, errors.New("fleet: cache entry exceeds size limit")
	}
	return data, nil
}

// Store is a no-op: the peer-to-peer tier fills by pulling.
func (c *CacheClient) Store(context.Context, string, []byte) error { return nil }
