package extract

import (
	"fmt"
	"sort"

	"repro/internal/bm"
	"repro/internal/cdfg"
)

// ctrl builds one controller machine by walking the schedule structure.
type ctrl struct {
	ex   *extractor
	fu   string
	m    *bm.Machine
	cur  bm.StateID
	last *bm.Transition // most recently emitted transition
	// pendingOuts holds outputs of fragments without waits of their own:
	// they attach to every transition entering the fragment's start state
	// (resolved at the end of the build, so loop re-entries get them too).
	pendingOuts     map[bm.StateID][]bm.Event
	foreignLoopDone bool
}

func (ex *extractor) buildController(fu string) (*bm.Machine, error) {
	m := bm.NewMachine(fu)
	c := &ctrl{ex: ex, fu: fu, m: m, pendingOuts: map[bm.StateID][]bm.Event{}}
	c.cur = m.NewState("init")
	m.Init = c.cur
	if err := c.emitBlock(ex.g.Blocks[0]); err != nil {
		return nil, err
	}
	if len(m.Transitions) == 0 {
		return nil, fmt.Errorf("unit has no work")
	}
	// Resolve deferred fragment outputs.
	for _, t := range m.Transitions {
		if outs, ok := c.pendingOuts[t.To]; ok {
			t.Out = append(t.Out, outs...)
		}
	}
	if outs, ok := c.pendingOuts[m.Init]; ok && len(m.InTransitions(m.Init)) == 0 {
		return nil, fmt.Errorf("fragment outputs %v have no carrying transition", outs)
	}
	return m, nil
}

// emitBlock walks a block's items in program order emitting this unit's
// fragments.
func (c *ctrl) emitBlock(b *cdfg.Block) error {
	g := c.ex.g
	ids := append([]cdfg.NodeID(nil), b.Nodes...)
	sort.Slice(ids, func(i, j int) bool { return g.Node(ids[i]).Order < g.Node(ids[j]).Order })
	for _, id := range ids {
		n := g.Node(id)
		relevant := false
		switch n.Kind {
		case cdfg.KindOp, cdfg.KindAssign:
			relevant = n.FU == c.fu
		case cdfg.KindLoop, cdfg.KindIf:
			sub := blockOfRoot(g, id)
			relevant = sub != nil && (n.FU == c.fu || c.involves(sub))
		}
		if !relevant {
			continue
		}
		if c.foreignLoopDone {
			return fmt.Errorf("work scheduled after a loop owned by another unit: unsupported topology")
		}
		switch n.Kind {
		case cdfg.KindOp, cdfg.KindAssign:
			if err := c.emitFragment(n); err != nil {
				return err
			}
		case cdfg.KindLoop:
			sub := blockOfRoot(g, id)
			if n.FU == c.fu {
				if err := c.emitOwnedLoop(n, sub); err != nil {
					return err
				}
			} else {
				if err := c.emitForeignLoop(n, sub); err != nil {
					return err
				}
			}
		case cdfg.KindIf:
			sub := blockOfRoot(g, id)
			if err := c.emitIf(n, sub); err != nil {
				return err
			}
		}
	}
	return nil
}

func blockOfRoot(g *cdfg.Graph, root cdfg.NodeID) *cdfg.Block {
	for _, b := range g.Blocks {
		if b.Kind != cdfg.BlockTop && b.Root == root {
			return b
		}
	}
	return nil
}

func (c *ctrl) involves(b *cdfg.Block) bool {
	g := c.ex.g
	for _, id := range b.Nodes {
		n := g.Node(id)
		if n.FU == c.fu {
			return true
		}
		if n.Kind == cdfg.KindLoop || n.Kind == cdfg.KindIf {
			if sub := blockOfRoot(g, id); sub != nil && c.involves(sub) {
				return true
			}
		}
	}
	return false
}

// emitWaitGroups emits the leading wait transitions of a fragment,
// returning the in-burst for the fragment's first working transition (the
// last wait group, or nil if there are no waits).
func (c *ctrl) emitWaitGroups(n *cdfg.Node) []bm.Event {
	groups := c.ex.waitEvents(c.ex.waitsFor(n))
	if len(groups) == 0 {
		return nil
	}
	for _, grp := range groups[:len(groups)-1] {
		c.declareInputs(grp)
		next := c.m.NewState("")
		c.last = c.m.AddTransition(&bm.Transition{
			From: c.cur, To: next, In: grp, Label: n.Label() + " wait",
		})
		c.cur = next
	}
	last := groups[len(groups)-1]
	c.declareInputs(last)
	return last
}

func (c *ctrl) declareInputs(evs []bm.Event) {
	for _, e := range evs {
		c.m.AddInput(e.Signal)
	}
}

func (c *ctrl) declareOutputs(evs []bm.Event) {
	for _, e := range evs {
		c.m.AddOutput(e.Signal)
	}
}

// step emits one transition advancing the chain.
func (c *ctrl) step(in, out []bm.Event, label string) *bm.Transition {
	c.declareInputs(in)
	c.declareOutputs(out)
	next := c.m.NewState("")
	t := c.m.AddTransition(&bm.Transition{From: c.cur, To: next, In: in, Out: out, Label: label})
	c.cur = next
	c.last = t
	return t
}

func ev(sig string, e bm.Edge) bm.Event { return bm.Event{Signal: sig, Edge: e} }

// stage is one candidate transition of a fragment before normalization.
type stage struct {
	in, out []bm.Event
	label   string
}

// emitFragment expands one Op/Assign node into its micro-operation
// transitions (§4.2, Figure 11):
//
//	(i)   wait for requests, set input muxes
//	(ii)  perform the operation (moves latch in parallel)
//	(iii) set the destination register mux
//	(iv)  latch the result
//	(v)   reset local signals
//	(vi)  send done events
//
// Stages with an empty trigger merge their outputs into the previous
// stage; a fragment with no waits attaches its first outputs to every
// transition entering its start state.
func (c *ctrl) emitFragment(n *cdfg.Node) error {
	waitIn := c.emitWaitGroups(n)
	dones := c.ex.donesFor(n, cdfg.OutAlways)

	var selReq, selAck []string // input mux selects (op statements)
	var movReq, movAck []string // register-mux selects for moves
	var goReq, goAck []string   // operation go lines
	var wsReq, wsAck []string   // destination register mux (FU result)
	var wrReq, wrAck []string   // register latch lines
	var movWrReq, movWrAck []string
	for _, st := range n.Stmts {
		if st.Op == cdfg.OpMov {
			r := fmt.Sprintf("ws_%s_%s", st.Dst, st.Src1)
			movReq, movAck = append(movReq, r), append(movAck, r+"_a")
			w := "wr_" + st.Dst
			movWrReq, movWrAck = append(movWrReq, w), append(movWrAck, w+"_a")
			continue
		}
		selReq = append(selReq, "selA_"+st.Src1)
		selAck = append(selAck, "selA_"+st.Src1+"_a")
		if st.Src2 != "" {
			selReq = append(selReq, "selB_"+st.Src2)
			selAck = append(selAck, "selB_"+st.Src2+"_a")
		}
		gq := "go_" + opName(st.Op)
		goReq, goAck = append(goReq, gq), append(goAck, gq+"_a")
		wsReq, wsAck = append(wsReq, "ws_"+st.Dst), append(wsAck, "ws_"+st.Dst+"_a")
		wrReq, wrAck = append(wrReq, "wr_"+st.Dst), append(wrAck, "wr_"+st.Dst+"_a")
	}

	label := n.Label()
	stages := []stage{
		{in: waitIn, out: rises(concat(selReq, movReq)), label: label + " (i)"},
		{in: rises(concat(selAck, movAck)), out: rises(concat(goReq, movWrReq)), label: label + " (ii)"},
		{in: rises(concat(goAck, movWrAck)), out: rises(wsReq), label: label + " (iii)"},
		{in: rises(wsAck), out: rises(wrReq), label: label + " (iv)"},
		{in: rises(wrAck), out: falls(concat(selReq, movReq, goReq, wsReq, wrReq, movWrReq)), label: label + " (v)"},
		{in: falls(concat(selAck, movAck, goAck, wsAck, wrAck, movWrAck)), out: dones, label: label + " (vi)"},
	}
	// Normalize: merge trigger-less stages into their predecessor.
	norm := []stage{stages[0]}
	for _, s := range stages[1:] {
		if len(s.in) == 0 {
			norm[len(norm)-1].out = append(norm[len(norm)-1].out, s.out...)
			continue
		}
		norm = append(norm, s)
	}
	for i, s := range norm {
		if i == 0 && len(s.in) == 0 {
			// No waits: outputs ride every transition entering this state.
			c.declareOutputs(s.out)
			c.pendingOuts[c.cur] = append(c.pendingOuts[c.cur], s.out...)
			continue
		}
		c.step(s.in, s.out, s.label)
	}
	return nil
}

func opName(op cdfg.Op) string {
	switch op {
	case cdfg.OpAdd:
		return "add"
	case cdfg.OpSub:
		return "sub"
	case cdfg.OpMul:
		return "mul"
	case cdfg.OpLT:
		return "lt"
	case cdfg.OpGT:
		return "gt"
	case cdfg.OpEQ:
		return "eq"
	case cdfg.OpMod:
		return "mod"
	default:
		return "op"
	}
}

func rises(sigs []string) []bm.Event {
	out := make([]bm.Event, 0, len(sigs))
	for _, s := range sigs {
		out = append(out, ev(s, bm.Rise))
	}
	return out
}

func falls(sigs []string) []bm.Event {
	out := make([]bm.Event, 0, len(sigs))
	for _, s := range sigs {
		out = append(out, ev(s, bm.Fall))
	}
	return out
}

func concat(lists ...[]string) []string {
	var out []string
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// emitOwnedLoop emits the loop structure for the controller that owns the
// LOOP/ENDLOOP nodes: an entry decision, the body, and the loop-top
// (ENDLOOP synchronization + repeat examination), both conditional on the
// loop variable.
func (c *ctrl) emitOwnedLoop(root *cdfg.Node, sub *cdfg.Block) error {
	m := c.m
	m.AddLevel(root.Cond)
	c.ex.res.CondInputs[c.fu] = append(c.ex.res.CondInputs[c.fu], root.Cond)
	trueOut := c.ex.donesFor(root, cdfg.OutTrue)
	falseOut := c.ex.donesFor(root, cdfg.OutFalse)
	c.declareOutputs(trueOut)
	c.declareOutputs(falseOut)

	entryIn := c.emitWaitGroups(root)
	bodyStart := m.NewState("loop-body")
	exit := m.NewState("loop-exit")

	enter := m.AddTransition(&bm.Transition{
		From: c.cur, To: bodyStart, In: entryIn,
		Cond: []bm.Cond{{Signal: root.Cond, Value: true}},
		Out:  append([]bm.Event{}, trueOut...), Label: "LOOP enter",
	})
	m.AddTransition(&bm.Transition{
		From: c.cur, To: exit, In: entryIn,
		Cond: []bm.Cond{{Signal: root.Cond, Value: false}},
		Out:  append([]bm.Event{}, falseOut...), Label: "LOOP skip",
	})
	c.cur = bodyStart
	c.last = enter
	if err := c.emitBlock(sub); err != nil {
		return err
	}
	// Loop top: ENDLOOP waits plus the repeat examination.
	endNode := c.ex.g.Node(sub.End)
	topIn := c.emitWaitGroups(endNode)
	m.AddTransition(&bm.Transition{
		From: c.cur, To: bodyStart, In: topIn,
		Cond: []bm.Cond{{Signal: root.Cond, Value: true}},
		Out:  append([]bm.Event{}, trueOut...), Label: "LOOP repeat",
	})
	m.AddTransition(&bm.Transition{
		From: c.cur, To: exit, In: topIn,
		Cond: []bm.Cond{{Signal: root.Cond, Value: false}},
		Out:  append([]bm.Event{}, falseOut...), Label: "LOOP exit",
	})
	c.cur = exit
	c.last = nil // post-loop fragments must carry their own waits
	return nil
}

// emitForeignLoop emits the body fragments of a loop owned by another
// controller: a plain cycle re-armed each iteration by incoming ready
// events.
func (c *ctrl) emitForeignLoop(root *cdfg.Node, sub *cdfg.Block) error {
	head := c.cur
	before := len(c.m.Transitions)
	if err := c.emitBlock(sub); err != nil {
		return err
	}
	if len(c.m.Transitions) == before {
		return nil
	}
	// Retarget the final transition back to the loop head.
	for _, t := range c.m.Transitions[before:] {
		if t.To == c.cur {
			t.To = head
		}
	}
	c.cur = head
	c.last = nil
	c.foreignLoopDone = true
	return nil
}

// emitIf emits a conditional fragment. The body must belong entirely to
// this controller (the one sampling the condition).
func (c *ctrl) emitIf(root *cdfg.Node, sub *cdfg.Block) error {
	if root.FU != c.fu {
		return fmt.Errorf("conditional owned by %s involves unit %s: unsupported topology", root.FU, c.fu)
	}
	for _, id := range sub.Nodes {
		n := c.ex.g.Node(id)
		if n.FU != c.fu && (n.Kind == cdfg.KindOp || n.Kind == cdfg.KindAssign) {
			return fmt.Errorf("if body contains node of unit %s: unsupported topology", n.FU)
		}
	}
	m := c.m
	m.AddLevel(root.Cond)
	c.ex.res.CondInputs[c.fu] = append(c.ex.res.CondInputs[c.fu], root.Cond)
	trueOut := c.ex.donesFor(root, cdfg.OutTrue)
	falseOut := c.ex.donesFor(root, cdfg.OutFalse)
	endNode := c.ex.g.Node(sub.End)
	endDones := c.ex.donesFor(endNode, cdfg.OutAlways)
	c.declareOutputs(trueOut)
	c.declareOutputs(falseOut)
	c.declareOutputs(endDones)

	condIn := c.emitWaitGroups(root)
	bodyStart := m.NewState("if-body")
	after := m.NewState("if-after")
	taken := m.AddTransition(&bm.Transition{
		From: c.cur, To: bodyStart, In: condIn,
		Cond: []bm.Cond{{Signal: root.Cond, Value: true}},
		Out:  append([]bm.Event{}, trueOut...), Label: "IF taken",
	})
	m.AddTransition(&bm.Transition{
		From: c.cur, To: after, In: condIn,
		Cond: []bm.Cond{{Signal: root.Cond, Value: false}},
		Out:  append(append([]bm.Event{}, falseOut...), endDones...), Label: "IF skipped",
	})
	c.cur = bodyStart
	c.last = taken
	if err := c.emitBlock(sub); err != nil {
		return err
	}
	// Close the taken path: ENDIF dones ride the last body transition,
	// which is retargeted to the join state.
	joined := false
	for _, t := range m.Transitions {
		if t.To == c.cur && t != taken {
			t.To = after
			t.Out = append(t.Out, endDones...)
			joined = true
		}
	}
	if !joined {
		// Empty taken body: the taken transition joins directly.
		taken.To = after
		taken.Out = append(taken.Out, endDones...)
	}
	c.cur = after
	c.last = nil
	return nil
}
