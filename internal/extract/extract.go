// Package extract translates an optimized CDFG plus its channel plan into
// one extended burst-mode AFSM per functional unit controller (§4 of the
// paper).
//
// Each CDFG node becomes a burst-mode fragment implementing the basic
// protocol: (a) wait for ready events from other controllers, (b) drive the
// datapath micro-operations — set input muxes, perform the operation, set
// the destination register mux, latch — each as a req/ack pair, (c) reset
// local signals and send done events. Fragments are stitched in schedule
// order; loop structure becomes a conditional cycle in the owner's machine
// and a plain cycle in the other machines. Global wire phases are assigned
// from the total event order that GT5 guarantees per wire; wires used an
// odd number of times per iteration use toggle edges. Early request arrival
// is back-annotated as directed don't-cares.
package extract

import (
	"fmt"
	"sort"

	"repro/internal/bm"
	"repro/internal/cdfg"
	"repro/internal/transform"
)

// Options tunes extraction.
type Options struct {
	// SeparateWaits emits one wait transition per incoming wire event when
	// the events are ordered (the naive unoptimized translation); when
	// false, simultaneous waits merge into a single input burst.
	SeparateWaits bool
}

// WireEvent locates a constraint arc's event on a physical wire.
type WireEvent struct {
	Wire string
	Edge bm.Edge
	Seq  int // position in the wire's per-execution event order
}

// Result is the outcome of controller extraction.
type Result struct {
	Machines map[string]*bm.Machine
	Wires    map[cdfg.ArcID]WireEvent
	// CondInput names the sampled level input per controller (loop/if
	// conditions), if any.
	CondInputs map[string][]string
	// Primers lists wires that must be primed once at reset (backward
	// arcs are pre-enabled for the first iteration): wire → initial edge.
	// In hardware this is the reset logic initializing the ready line.
	Primers map[string]bm.Edge
}

// Extract builds one burst-mode machine per functional unit.
func Extract(g *cdfg.Graph, plan *transform.Plan, opt Options) (*Result, error) {
	ex := &extractor{
		g:    g,
		plan: plan,
		opt:  opt,
		res: &Result{
			Machines:   map[string]*bm.Machine{},
			Wires:      map[cdfg.ArcID]WireEvent{},
			CondInputs: map[string][]string{},
			Primers:    map[string]bm.Edge{},
		},
	}
	ex.reach = cdfg.NewReach(g)
	if err := ex.assignWires(); err != nil {
		return nil, err
	}
	for _, fu := range g.FUs {
		if len(g.FUNodes(fu)) == 0 {
			continue // unit unused by this schedule: no controller
		}
		m, err := ex.buildController(fu)
		if err != nil {
			return nil, fmt.Errorf("extract %s: %w", fu, err)
		}
		ex.res.Machines[fu] = m
	}
	ex.backAnnotate()
	// Primed wires start high at reset: record that on the sender machine
	// so polarity tracking and synthesis see the right initial level.
	for wire := range ex.res.Primers {
		for _, m := range ex.res.Machines {
			for _, out := range m.Outputs {
				if out == wire {
					m.InitialHigh = append(m.InitialHigh, wire)
				}
			}
		}
	}
	return ex.res, nil
}

type extractor struct {
	g     *cdfg.Graph
	plan  *transform.Plan
	opt   Options
	reach *cdfg.Reach
	res   *Result
}

// assignWires names every channel and environment wire and computes the
// edge (phase) of each arc's event from the wire's total event order.
func (ex *extractor) assignWires() error {
	for _, ch := range ex.plan.Channels {
		name := fmt.Sprintf("w%d_%s", ch.ID, ch.Sender)
		if err := ex.phaseWire(name, ch.Arcs); err != nil {
			return err
		}
	}
	for i, a := range ex.plan.Env {
		from := ex.g.Node(a.From)
		name := fmt.Sprintf("start%d", i)
		if from.Kind != cdfg.KindStart {
			name = fmt.Sprintf("fin%d", i)
		}
		ex.res.Wires[a.ID] = WireEvent{Wire: name, Edge: bm.Rise}
	}
	return nil
}

// phaseWire orders a wire's events and assigns phases. The order per
// execution: primer events (startup emissions pre-enabling backward
// constraints), then events from once-firing sources, then per-iteration
// events in precedence order. Phases alternate from an initially-low wire;
// when the per-iteration event count is odd — or a primer's parity
// mismatches its source event's — phases are iteration-dependent and the
// wire's events become toggles.
func (ex *extractor) phaseWire(name string, arcs []*cdfg.Arc) error {
	var once, repeated []*cdfg.Arc
	for _, a := range arcs {
		if ex.reach.FiresRepeatedly(a.From) {
			repeated = append(repeated, a)
		} else {
			once = append(once, a)
		}
	}
	byPrecedence := func(list []*cdfg.Arc) {
		sort.SliceStable(list, func(i, j int) bool {
			if list[i].From == list[j].From {
				return list[i].ID < list[j].ID
			}
			return ex.reach.Precedes(list[i].From, list[j].From)
		})
	}
	byPrecedence(once)
	byPrecedence(repeated)

	// Distinct sources (arcs sharing a source share one event); primer
	// sources are repeated sources with a backward arc on this wire.
	primerOf := map[cdfg.NodeID]bool{}
	for _, a := range repeated {
		if a.Kind == cdfg.ArcBackward {
			primerOf[a.From] = true
		}
	}
	if len(primerOf) > 1 {
		return fmt.Errorf("extract: wire %s needs %d primer events; at most one backward-arc source per wire is supported", name, len(primerOf))
	}
	idx := map[cdfg.NodeID]int{}
	events := 0
	for _, a := range repeated {
		if primerOf[a.From] {
			// Reserve event 0 for the primer itself.
			events = 1
			break
		}
	}
	for _, a := range once {
		if _, ok := idx[a.From]; !ok {
			idx[a.From] = events
			events++
		}
	}
	perIter := 0
	for _, a := range repeated {
		if _, ok := idx[a.From]; !ok {
			idx[a.From] = events
			events++
			perIter++
		}
	}
	toggling := perIter%2 == 1
	for src := range primerOf {
		if idx[src]%2 != 0 {
			toggling = true // primer (event 0) parity differs from the source's
		}
	}
	if len(primerOf) > 0 {
		// The reset logic primes the wire with its first event.
		ex.res.Primers[name] = bm.Rise
	}
	for _, a := range arcs {
		i := idx[a.From]
		edge := bm.Toggle
		if !toggling {
			if i%2 == 0 {
				edge = bm.Rise
			} else {
				edge = bm.Fall
			}
		}
		ex.res.Wires[a.ID] = WireEvent{Wire: name, Edge: edge, Seq: i}
	}
	return nil
}

// backAnnotate marks global wire inputs as directed don't-cares on every
// transition that does not consume them (§4.2 step 4): requests may arrive
// arbitrarily early relative to the controller's local progress, so the
// synthesized logic must not depend on their level elsewhere.
func (ex *extractor) backAnnotate() {
	for _, m := range ex.res.Machines {
		for _, sig := range m.Inputs {
			if !bm.IsWire(sig) {
				continue
			}
			for _, t := range m.Transitions {
				if !t.HasInput(sig) {
					t.Free = append(t.Free, sig)
				}
			}
		}
	}
}

// controller-side helpers -------------------------------------------------

// waitsFor returns the wire events node n must consume: its in-arcs whose
// source belongs to another unit or the environment, ordered by the
// producing nodes' precedence.
func (ex *extractor) waitsFor(n *cdfg.Node) []cdfg.ArcID {
	var arcs []*cdfg.Arc
	for _, a := range ex.g.In(n.ID) {
		from := ex.g.Node(a.From)
		if from.FU == n.FU && from.FU != "" {
			continue
		}
		if _, ok := ex.res.Wires[a.ID]; !ok {
			continue
		}
		arcs = append(arcs, a)
	}
	sort.SliceStable(arcs, func(i, j int) bool {
		// Backward arcs deliver events produced in the previous iteration,
		// so they are consumed before any same-iteration event.
		bi, bj := arcs[i].Kind == cdfg.ArcBackward, arcs[j].Kind == cdfg.ArcBackward
		if bi != bj {
			return bi
		}
		if arcs[i].From == arcs[j].From {
			return arcs[i].ID < arcs[j].ID
		}
		return ex.reach.Precedes(arcs[i].From, arcs[j].From)
	})
	out := make([]cdfg.ArcID, len(arcs))
	for i, a := range arcs {
		out[i] = a.ID
	}
	return out
}

// donesFor returns the wire events node n produces on the given branch:
// out-arcs crossing to other units or the environment, deduplicated per
// wire (arcs sharing the source node share one event).
func (ex *extractor) donesFor(n *cdfg.Node, branch cdfg.OutBranch) []bm.Event {
	seen := map[string]bool{}
	var out []bm.Event
	for _, a := range ex.g.Out(n.ID) {
		if a.Branch != branch {
			continue
		}
		to := ex.g.Node(a.To)
		if to.FU == n.FU && to.FU != "" {
			continue
		}
		we, ok := ex.res.Wires[a.ID]
		if !ok {
			continue
		}
		if seen[we.Wire] {
			continue
		}
		seen[we.Wire] = true
		out = append(out, bm.Event{Signal: we.Wire, Edge: we.Edge})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signal < out[j].Signal })
	return out
}

// waitEvents converts wait arcs to burst events grouped into sequential
// bursts: events whose producers are strictly ordered can be consumed in
// separate transitions (SeparateWaits) or merged; events on the same wire
// must always be sequential.
func (ex *extractor) waitEvents(arcIDs []cdfg.ArcID) [][]bm.Event {
	var groups [][]bm.Event
	var cur []bm.Event
	curWires := map[string]bool{}
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
			curWires = map[string]bool{}
		}
	}
	for _, id := range arcIDs {
		we := ex.res.Wires[id]
		ev := bm.Event{Signal: we.Wire, Edge: we.Edge}
		if ex.opt.SeparateWaits || curWires[we.Wire] {
			flush()
		}
		// Skip duplicate events (two arcs with the same source on one wire
		// consumed by the same node).
		dup := false
		for _, e := range cur {
			if e.Signal == ev.Signal {
				dup = true
			}
		}
		if dup {
			continue
		}
		cur = append(cur, ev)
		curWires[we.Wire] = true
	}
	flush()
	return groups
}
