package extract

import (
	"strings"
	"testing"

	"repro/internal/bm"
	"repro/internal/cdfg"
	"repro/internal/diffeq"
	"repro/internal/transform"
)

// extractDiffeq builds and extracts the benchmark at one of the three
// experiment levels: "unoptimized", "gt".
func extractDiffeq(t *testing.T, level string) (*cdfg.Graph, *Result) {
	t.Helper()
	g := diffeq.Build(diffeq.DefaultParams())
	var plan *transform.Plan
	opt := Options{}
	switch level {
	case "unoptimized":
		plan = transform.BuildChannels(g)
		opt.SeparateWaits = true
	case "gt":
		var err error
		plan, _, err = transform.OptimizeGT(g, transform.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown level %s", level)
	}
	res, err := Extract(g, plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func TestExtractUnoptimizedValidates(t *testing.T) {
	_, res := extractDiffeq(t, "unoptimized")
	if len(res.Machines) != 4 {
		t.Fatalf("machines = %d, want 4", len(res.Machines))
	}
	for fu, m := range res.Machines {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v\n%s", fu, err, m)
		}
	}
}

func TestExtractGTValidates(t *testing.T) {
	_, res := extractDiffeq(t, "gt")
	for fu, m := range res.Machines {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v\n%s", fu, err, m)
		}
	}
}

// Figure 12 shape: ALU2 is the largest machine, MUL2 the smallest, and the
// GT level shrinks every controller relative to unoptimized.
func TestExtractFigure12Shape(t *testing.T) {
	_, unopt := extractDiffeq(t, "unoptimized")
	_, gt := extractDiffeq(t, "gt")
	totalU, totalG := 0, 0
	for _, fu := range diffeq.FUs {
		u, g := unopt.Machines[fu], gt.Machines[fu]
		t.Logf("%s: unopt %d/%d, GT %d/%d", fu, u.NumStates(), u.NumTransitions(), g.NumStates(), g.NumTransitions())
		totalU += u.NumStates()
		totalG += g.NumStates()
	}
	if totalG >= totalU {
		t.Errorf("GT total states %d >= unoptimized %d", totalG, totalU)
	}
	// The two big controllers must individually shrink.
	for _, fu := range []string{diffeq.ALU1, diffeq.ALU2} {
		if gt.Machines[fu].NumStates() >= unopt.Machines[fu].NumStates() {
			t.Errorf("%s: GT states %d >= unoptimized %d", fu,
				gt.Machines[fu].NumStates(), unopt.Machines[fu].NumStates())
		}
	}
	// Relative sizes as in the paper: ALU2 largest, MUL2 smallest.
	u := unopt.Machines
	if u[diffeq.ALU2].NumStates() <= u[diffeq.ALU1].NumStates() {
		t.Errorf("ALU2 (%d) should be larger than ALU1 (%d)", u[diffeq.ALU2].NumStates(), u[diffeq.ALU1].NumStates())
	}
	if u[diffeq.MUL2].NumStates() >= u[diffeq.MUL1].NumStates() {
		t.Errorf("MUL2 (%d) should be smaller than MUL1 (%d)", u[diffeq.MUL2].NumStates(), u[diffeq.MUL1].NumStates())
	}
}

// Figure 10/11: the ALU1 controller contains the A:=Y+M1 fragment with the
// six micro-operation structure.
func TestExtractALU1Fragment(t *testing.T) {
	_, res := extractDiffeq(t, "unoptimized")
	m := res.Machines[diffeq.ALU1]
	s := m.String()
	for _, micro := range []string{"A:=Y+M1 (i)", "A:=Y+M1 (ii)", "A:=Y+M1 (iii)", "A:=Y+M1 (iv)", "A:=Y+M1 (v)", "A:=Y+M1 (vi)"} {
		if !strings.Contains(s, micro) {
			t.Errorf("ALU1 machine missing micro-operation %q:\n%s", micro, s)
		}
	}
	// The fragment drives the datapath: input mux selects, operation go,
	// register mux, latch.
	for _, sig := range []string{"selA_Y", "selB_M1", "go_add", "ws_A", "wr_A"} {
		found := false
		for _, o := range m.Outputs {
			if o == sig {
				found = true
			}
		}
		if !found {
			t.Errorf("ALU1 outputs missing %s (have %v)", sig, m.Outputs)
		}
	}
}

func TestExtractLoopConditional(t *testing.T) {
	_, res := extractDiffeq(t, "gt")
	m := res.Machines[diffeq.ALU2]
	if len(m.Levels) != 1 || m.Levels[0] != "C" {
		t.Errorf("ALU2 levels = %v, want [C]", m.Levels)
	}
	// Both polarities of the condition appear (repeat and exit).
	var hasTrue, hasFalse bool
	for _, tr := range m.Transitions {
		for _, c := range tr.Cond {
			if c.Signal == "C" && c.Value {
				hasTrue = true
			}
			if c.Signal == "C" && !c.Value {
				hasFalse = true
			}
		}
	}
	if !hasTrue || !hasFalse {
		t.Errorf("ALU2 missing conditional branches: true=%v false=%v", hasTrue, hasFalse)
	}
}

func TestExtractPrimerEmitted(t *testing.T) {
	// After GT1, ALU1 sources the backward arcs (8, 9); the shared wire
	// must be primed at reset (pre-enabled for the first iteration), and
	// the sender machine must record the wire's high reset level.
	g, res := extractDiffeq(t, "gt")
	var wire string
	for _, a := range g.Arcs() {
		if a.Kind == cdfg.ArcBackward {
			wire = res.Wires[a.ID].Wire
		}
	}
	if wire == "" {
		t.Fatal("no backward arcs found after GT")
	}
	if _, ok := res.Primers[wire]; !ok {
		t.Errorf("wire %s not primed: %v", wire, res.Primers)
	}
	high := false
	for _, sig := range res.Machines[diffeq.ALU1].InitialHigh {
		if sig == wire {
			high = true
		}
	}
	if !high {
		t.Errorf("sender machine does not mark %s initially high", wire)
	}
}

func TestExtractWirePhases(t *testing.T) {
	g, res := extractDiffeq(t, "gt")
	// Every arc on a channel is mapped to a wire event.
	for _, ch := range transform.BuildChannels(g).Channels {
		for _, a := range ch.Arcs {
			if _, ok := res.Wires[a.ID]; !ok {
				t.Errorf("arc %d (n%d→n%d) has no wire event", a.ID, a.From, a.To)
			}
		}
	}
}

func TestExtractBackAnnotation(t *testing.T) {
	_, res := extractDiffeq(t, "gt")
	m := res.Machines[diffeq.ALU1]
	// Global wires are free on non-consuming transitions.
	freeSeen := false
	for _, tr := range m.Transitions {
		for _, f := range tr.Free {
			if !bm.IsWire(f) {
				t.Errorf("non-wire signal %s marked free", f)
			}
			if tr.HasInput(f) {
				t.Errorf("signal %s both consumed and free on %s", f, tr)
			}
			freeSeen = true
		}
	}
	if !freeSeen {
		t.Error("no directed don't-cares back-annotated")
	}
}

func TestIsWire(t *testing.T) {
	for _, s := range []string{"w3_ALU1", "start0", "fin2"} {
		if !bm.IsWire(s) {
			t.Errorf("%s should be a wire", s)
		}
	}
	for _, s := range []string{"selA_Y", "wr_A", "go_add", "ws_A_a", "C"} {
		if bm.IsWire(s) {
			t.Errorf("%s should not be a wire", s)
		}
	}
}

func TestExtractIfProgram(t *testing.T) {
	p := cdfg.NewProgram("cond", "ALU")
	p.Init("c", 1).Init("a", 5).Init("b", 3)
	p.Op("ALU", "c", cdfg.OpGT, "a", "b")
	p.If("ALU", "c")
	p.Op("ALU", "a", cdfg.OpSub, "a", "b")
	p.EndIf()
	p.Op("ALU", "d", cdfg.OpAdd, "a", "b")
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan := transform.BuildChannels(g)
	res, err := Extract(g, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Machines["ALU"]
	if err := m.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, m)
	}
	if len(m.Levels) != 1 || m.Levels[0] != "c" {
		t.Errorf("levels = %v", m.Levels)
	}
}

func TestExtractUnsupportedForeignIf(t *testing.T) {
	p := cdfg.NewProgram("bad", "A", "B")
	p.Init("c", 1)
	p.Op("A", "c", cdfg.OpGT, "x", "y")
	p.If("A", "c")
	p.Op("B", "z", cdfg.OpAdd, "x", "y") // foreign unit inside the conditional
	p.EndIf()
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(g, transform.BuildChannels(g), Options{}); err == nil {
		t.Error("foreign unit inside if accepted")
	}
}
