package memo

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// textCodec serializes string values, the simplest useful BlobCodec.
type textCodec struct{}

func (textCodec) Encode(v any) ([]byte, bool) {
	s, ok := v.(string)
	if !ok {
		return nil, false
	}
	data, err := json.Marshal(s)
	if err != nil {
		return nil, false
	}
	return data, true
}

func (textCodec) Decode(data []byte) (any, bool) {
	var s string
	if json.Unmarshal(data, &s) != nil {
		return nil, false
	}
	return s, true
}

func blobKey(s string) [sha256.Size]byte { return sha256.Sum256([]byte(s)) }

// waitFor polls cond until it holds or the test deadline nears.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStoreMemoryTier covers the basic miss-then-hit protocol and the
// memory-only (nil codec) mode.
func TestStoreMemoryTier(t *testing.T) {
	s, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	compute := func(context.Context) (any, error) { calls++; return "value", nil }
	for i, wantSrc := range []Source{SourceComputed, SourceMemory} {
		v, src, err := s.Do(context.Background(), blobKey("k"), nil, compute)
		if err != nil || v.(string) != "value" || src != wantSrc {
			t.Fatalf("call %d: got (%v, %v, %v), want (value, %v, nil)", i, v, src, err, wantSrc)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats %+v, want 1 miss 1 hit", st)
	}
}

// TestStoreDiskTier persists through the envelope and reloads in a fresh
// store; a corrupt or wrong-salt file is a miss, never an error.
func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := blobKey("payload")
	if _, _, err := s1.Do(context.Background(), key, textCodec{}, func(context.Context) (any, error) {
		return "persisted", nil
	}); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, src, err := s2.Do(context.Background(), key, textCodec{}, func(context.Context) (any, error) {
		t.Fatal("compute ran despite a disk record")
		return nil, nil
	})
	if err != nil || v.(string) != "persisted" || src != SourceDisk {
		t.Fatalf("got (%v, %v, %v), want (persisted, disk, nil)", v, src, err)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Errorf("stats %+v, want 1 disk hit", st)
	}
}

// TestStoreRemoteTier fills from a remote peer and offers computed
// records back to it.
func TestStoreRemoteTier(t *testing.T) {
	remote := &fakeRemote{entries: map[string][]byte{}, stores: map[string][]byte{}}
	key := blobKey("r")
	env, _ := json.Marshal(blobRec{Salt: StoreSalt, Data: json.RawMessage(`"from-remote"`)})
	remote.entries[hex.EncodeToString(key[:])] = env

	s, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	s.SetRemote(remote, 0)
	v, src, err := s.Do(context.Background(), key, textCodec{}, func(context.Context) (any, error) {
		t.Fatal("compute ran despite a remote record")
		return nil, nil
	})
	if err != nil || v.(string) != "from-remote" || src != SourceRemote {
		t.Fatalf("got (%v, %v, %v), want (from-remote, remote, nil)", v, src, err)
	}

	// A computed record is offered to the remote tier.
	key2 := blobKey("r2")
	if _, _, err := s.Do(context.Background(), key2, textCodec{}, func(context.Context) (any, error) {
		return "local", nil
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		remote.mu.Lock()
		defer remote.mu.Unlock()
		return len(remote.stores) == 1
	})
}

// TestStoreErrorsNeverCached asserts a failed computation vacates the
// key: the next call recomputes instead of replaying the error.
func TestStoreErrorsNeverCached(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := blobKey("err")
	boom := errors.New("boom")
	if _, _, err := s.Do(context.Background(), key, textCodec{}, func(context.Context) (any, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	v, src, err := s.Do(context.Background(), key, textCodec{}, func(context.Context) (any, error) {
		return "recovered", nil
	})
	if err != nil || v.(string) != "recovered" || src != SourceComputed {
		t.Fatalf("got (%v, %v, %v), want (recovered, computed, nil)", v, src, err)
	}
}

// TestStoreSingleflight collapses concurrent lookups of one key onto one
// computation.
func TestStoreSingleflight(t *testing.T) {
	s, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := 0
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			v, _, err := s.Do(context.Background(), blobKey("one"), nil, func(context.Context) (any, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				<-release
				return "shared", nil
			})
			if err != nil || v.(string) != "shared" {
				t.Errorf("got (%v, %v)", v, err)
			}
		}()
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return calls == 1 && s.Stats().DedupWaits == waiters-1
	})
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
}

// TestStoreExport serves the encoded envelope for fleet cache fills,
// from memory and from disk.
func TestStoreExport(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := blobKey("exp")
	hexKey := hex.EncodeToString(key[:])
	if _, ok := s.Export(hexKey); ok {
		t.Fatal("Export hit before any record exists")
	}
	if _, _, err := s.Do(context.Background(), key, textCodec{}, func(context.Context) (any, error) {
		return "served", nil
	}); err != nil {
		t.Fatal(err)
	}
	data, ok := s.Export(hexKey)
	if !ok {
		t.Fatal("Export missed a stored record")
	}
	var rec blobRec
	if err := json.Unmarshal(data, &rec); err != nil || rec.Salt != StoreSalt {
		t.Fatalf("exported envelope %s: err %v", data, err)
	}

	// A fresh store over the same dir serves the record from disk.
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	disk, ok := s2.Export(hexKey)
	if !ok || string(disk) != string(data) {
		t.Fatalf("disk export (%v, %q) differs from memory export %q", ok, disk, data)
	}
	if _, ok := s2.Export("zz"); ok {
		t.Error("Export accepted a malformed key")
	}
}

// TestStoreNilSafety: a nil store computes every time and never panics.
func TestStoreNilSafety(t *testing.T) {
	var s *Store
	v, src, err := s.Do(context.Background(), blobKey("n"), textCodec{}, func(context.Context) (any, error) {
		return "direct", nil
	})
	if err != nil || v.(string) != "direct" || src != SourceComputed {
		t.Fatalf("got (%v, %v, %v)", v, src, err)
	}
	if st := s.Stats(); st != (StoreStats{}) {
		t.Errorf("nil store stats %+v", st)
	}
	if _, ok := s.Export("00"); ok {
		t.Error("nil store exported a record")
	}
}

// TestSourceString covers the Source labels used in logs and tests.
func TestSourceString(t *testing.T) {
	for src, want := range map[Source]string{
		SourceComputed: "computed",
		SourceMemory:   "memory",
		SourceDisk:     "disk",
		SourceRemote:   "remote",
		Source(99):     fmt.Sprintf("source(%d)", 99),
	} {
		if got := src.String(); got != want {
			t.Errorf("Source(%d).String() = %q, want %q", int(src), got, want)
		}
	}
}
