package memo

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/hfmin"
	"repro/internal/logic"
)

func tr(start, end string, k hfmin.Kind) hfmin.Transition {
	return hfmin.Transition{Start: logic.MustCube(start), End: logic.MustCube(end), Kind: k}
}

// simpleSpec is a small feasible spec (f = x0').
func simpleSpec() hfmin.Spec {
	return hfmin.Spec{N: 2, Transitions: []hfmin.Transition{
		tr("00", "01", hfmin.Static1),
		tr("10", "11", hfmin.Static0),
	}}
}

// infeasibleSpec has a required cube no dhf-prime can cover: the static-1
// cube -10 intersects the rise's privileged cube 1-- without containing its
// end subcube 11-, every expansion toward 11- hits the OFF-set (011), and
// shrinking away from the privileged cube loses -10 itself.
func infeasibleSpec() hfmin.Spec {
	return hfmin.Spec{N: 3, Transitions: []hfmin.Transition{
		tr("10-", "11-", hfmin.Rise),
		tr("-10", "-10", hfmin.Static1),
		tr("011", "011", hfmin.Static0),
	}}
}

func mustCache(t *testing.T, dir string) *Cache {
	t.Helper()
	c, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestKeyOrderIndependent: logically identical specs built in different
// transition orders hash to the same key; different problems do not.
func TestKeyOrderIndependent(t *testing.T) {
	a := simpleSpec()
	b := hfmin.Spec{N: 2, Transitions: []hfmin.Transition{a.Transitions[1], a.Transitions[0]}}
	if Key(a, logic.SolverBB) != Key(b, logic.SolverBB) {
		t.Error("reordered spec must produce the same key")
	}
	if Key(a, logic.SolverBB) == Key(a, logic.SolverGreedy) {
		t.Error("exact and heuristic keys must differ")
	}
	if Key(a, logic.SolverBB) == Key(a, logic.SolverPortfolio) {
		t.Error("different exact backends must not share keys")
	}
	c := simpleSpec()
	c.Transitions[0].Kind = hfmin.Static0
	c.Transitions[1].Kind = hfmin.Static1
	if Key(a, logic.SolverBB) == Key(c, logic.SolverBB) {
		t.Error("different specs must produce different keys")
	}
}

// TestHitBitIdentical: a cache hit returns exactly the Result a direct
// hfmin call computes, and the counters record the hit.
func TestHitBitIdentical(t *testing.T) {
	c := mustCache(t, "")
	direct, derr := hfmin.Minimize(simpleSpec())
	if derr != nil {
		t.Fatal(derr)
	}
	first, err := c.Minimize(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	// A differently-ordered construction of the same spec must hit.
	reordered := hfmin.Spec{N: 2, Transitions: []hfmin.Transition{
		simpleSpec().Transitions[1], simpleSpec().Transitions[0],
	}}
	second, err := c.Minimize(reordered)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range []hfmin.Result{first, second} {
		if !reflect.DeepEqual(got, direct) {
			t.Errorf("cached result differs from direct computation:\n got %+v\nwant %+v", got, direct)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss and 1 hit", st)
	}
}

// TestInfeasibleCached: infeasibility verdicts are memoized with the
// original error text and errors.Is identity.
func TestInfeasibleCached(t *testing.T) {
	c := mustCache(t, "")
	_, err1 := c.Minimize(infeasibleSpec())
	if !errors.Is(err1, hfmin.ErrInfeasible) {
		t.Fatalf("expected infeasible spec, got %v", err1)
	}
	_, err2 := c.Minimize(infeasibleSpec())
	if !errors.Is(err2, hfmin.ErrInfeasible) || err2.Error() != err1.Error() {
		t.Errorf("cached error %q differs from computed %q", err2, err1)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestSingleflightDedup: concurrent lookups of one key run the solver once;
// everyone gets the same result.
func TestSingleflightDedup(t *testing.T) {
	c := mustCache(t, "")
	const workers = 16
	results := make([]hfmin.Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Minimize(simpleSpec())
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("worker %d got a different result", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (singleflight)", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, workers-1)
	}
}

// TestDiskRoundTrip: a second cache over the same directory serves the
// persisted result bit-identically, including infeasible outcomes.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	warmErr := func(c *Cache) (hfmin.Result, error, hfmin.Result, error) {
		ok, okErr := c.Minimize(simpleSpec())
		bad, badErr := c.Minimize(infeasibleSpec())
		return ok, okErr, bad, badErr
	}
	c1 := mustCache(t, dir)
	ok1, okErr1, bad1, badErr1 := warmErr(c1)
	if okErr1 != nil || !errors.Is(badErr1, hfmin.ErrInfeasible) {
		t.Fatalf("seed errors: %v / %v", okErr1, badErr1)
	}
	c2 := mustCache(t, dir)
	ok2, okErr2, bad2, badErr2 := warmErr(c2)
	if okErr2 != nil {
		t.Fatal(okErr2)
	}
	if !reflect.DeepEqual(ok1, ok2) {
		t.Errorf("disk-loaded result differs:\n got %+v\nwant %+v", ok2, ok1)
	}
	if !errors.Is(badErr2, hfmin.ErrInfeasible) || badErr2.Error() != badErr1.Error() {
		t.Errorf("disk-loaded error %q differs from %q", badErr2, badErr1)
	}
	if !reflect.DeepEqual(bad1, bad2) {
		t.Errorf("disk-loaded infeasible result differs:\n got %+v\nwant %+v", bad2, bad1)
	}
	st := c2.Stats()
	if st.DiskHits != 2 || st.Misses != 0 {
		t.Errorf("stats = %+v, want 2 disk hits and 0 misses", st)
	}
}

// TestCorruptAndStaleEntriesIgnored: damaged records and records written
// under a different version salt demote lookups to misses, never errors.
func TestCorruptAndStaleEntriesIgnored(t *testing.T) {
	dir := t.TempDir()
	c1 := mustCache(t, dir)
	want, err := c1.Minimize(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one cache file, got %v (%v)", files, err)
	}
	for name, content := range map[string]string{
		"truncated":  "{\"salt\":",
		"not-json":   "hello",
		"wrong-salt": strings.Replace(mustRead(t, files[0]), Salt, "memo-v0/other", 1),
		"bad-cube":   strings.Replace(mustRead(t, files[0]), "\"n\":2", "\"n\":1", 1),
	} {
		if err := os.WriteFile(files[0], []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		c := mustCache(t, dir)
		got, err := c.Minimize(simpleSpec())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: result differs after recompute", name)
		}
		if st := c.Stats(); st.DiskHits != 0 || st.Misses != 1 {
			t.Errorf("%s: stats = %+v, want a clean miss", name, st)
		}
	}
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestNilCachePassThrough: a nil *Cache is a working no-op minimizer.
func TestNilCachePassThrough(t *testing.T) {
	var c *Cache
	got, err := c.Minimize(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := hfmin.Minimize(simpleSpec())
	if !reflect.DeepEqual(got, want) {
		t.Error("nil cache must behave like a direct call")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

// TestRandomSpecsMemoEqualsDirect: property check over random small specs —
// for both solver modes the cache returns exactly what a direct call
// returns, on cold and warm paths, with disk persistence in the loop.
func TestRandomSpecsMemoEqualsDirect(t *testing.T) {
	dir := t.TempDir()
	cold := mustCache(t, dir)
	r := rand.New(rand.NewSource(7))
	specs := make([]hfmin.Spec, 40)
	for i := range specs {
		specs[i] = randomSpec(r, 4, 3)
	}
	warm := func(c *Cache) {
		for i, spec := range specs {
			for _, exact := range []bool{true, false} {
				var direct hfmin.Result
				var derr error
				var got hfmin.Result
				var gerr error
				if exact {
					direct, derr = hfmin.Minimize(spec)
					got, gerr = c.Minimize(spec)
				} else {
					direct, derr = hfmin.MinimizeHeuristic(spec)
					got, gerr = c.MinimizeHeuristic(spec)
				}
				if (derr == nil) != (gerr == nil) {
					t.Fatalf("spec %d exact=%v: direct err %v, memo err %v", i, exact, derr, gerr)
				}
				if derr != nil {
					if derr.Error() != gerr.Error() {
						t.Errorf("spec %d exact=%v: error %q, want %q", i, exact, gerr, derr)
					}
					continue
				}
				if !reflect.DeepEqual(got, direct) {
					t.Errorf("spec %d exact=%v: memoized result differs", i, exact)
				}
			}
		}
	}
	warm(cold)
	warm(cold)              // in-memory hits
	warm(mustCache(t, dir)) // disk hits
}

// randomSpec mirrors hfmin's test generator: random cubes, random kinds,
// not guaranteed consistent (invalid specs exercise the error path).
func randomSpec(r *rand.Rand, n, k int) hfmin.Spec {
	spec := hfmin.Spec{N: n}
	for i := 0; i < k; i++ {
		start := logic.FullCube(n)
		for v := 0; v < n; v++ {
			if r.Intn(3) > 0 {
				if r.Intn(2) == 0 {
					start = start.With(v, logic.Zero)
				} else {
					start = start.With(v, logic.One)
				}
			}
		}
		end := start
		changed := false
		for v := 0; v < n; v++ {
			if start.Get(v) != logic.Dash && r.Intn(3) == 0 {
				if start.Get(v) == logic.Zero {
					end = end.With(v, logic.One)
				} else {
					end = end.With(v, logic.Zero)
				}
				changed = true
			}
		}
		kind := hfmin.Kind(r.Intn(4))
		if !changed && (kind == hfmin.Fall || kind == hfmin.Rise) {
			kind = hfmin.Static1
		}
		spec.Transitions = append(spec.Transitions, hfmin.Transition{Start: start, End: end, Kind: kind})
	}
	return spec
}
