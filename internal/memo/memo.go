// Package memo is a content-addressed, concurrency-safe memoization layer
// for hazard-free two-level minimization (internal/hfmin) — the stage PR 2's
// instrumentation showed consuming 94–99% of pipeline wall time. The
// synthesis flow re-solves the same minimization problems over and over:
// the encoding ladder in internal/synth retries every function per attempt,
// and the design-space exploration sweep re-synthesizes controllers whose
// AFSMs are untouched by the ablated transform. This package turns those
// repeats into cache hits.
//
// # Keys
//
// A problem is identified by the SHA-256 hash of the canonical form of its
// hfmin.Spec (transitions sorted by the total order on (kind, start, end)
// cube keys — see hfmin.Spec.Canonical) together with the covering backend
// (logic.Solver), logic.SolverVersion and a package-version salt. Logically
// identical specs collide regardless of construction order; bumping Salt or
// logic.SolverVersion when minimizer or solver behaviour changes
// invalidates every previously persisted entry rather than silently
// replaying stale covers. The backend is part of the key because inexact
// outcomes (budget-limited searches) may legitimately differ per backend.
//
// # In-memory cache and deduplication
//
// The in-memory cache is a sharded map. Lookups for a key being computed by
// another goroutine block on that computation (singleflight semantics)
// instead of duplicating it, so the concurrent workers of
// par.NamedMap("hfmin", ...) solving the same spec pay it once. Cached
// results are shared by value with their slices aliased — callers must
// treat a returned Result as immutable, which the synthesis pipeline does.
//
// # Disk persistence
//
// With a cache directory configured (the CLI's -cache-dir flag), every
// solved problem is written as one JSON record named by its key hash, and
// misses consult the directory before computing. Records from other salts,
// corrupt files and any read/decode error are silently treated as misses,
// so a stale or damaged cache can never change results — at worst it stops
// saving time. Infeasible outcomes (hfmin.ErrInfeasible) are cached and
// persisted too: the strict rungs of the encoding ladder rediscover them
// constantly.
//
// # Remote tier
//
// SetRemote attaches a pluggable fleet-shared tier (the Remote interface)
// behind memory and disk: a lookup that misses both consults the remote —
// bounded by a timeout so a slow or dead remote degrades to local compute —
// and freshly-solved results are offered back. Payloads use the same
// strictly-validated record format as the disk layer, so a corrupt or
// byzantine remote costs at most a recompute. asyncsynthd wires
// fleet.CacheClient here, making every node's hfmin solve warm the whole
// fleet.
//
// # Observability
//
// Each lookup outcome is published to the global obs registry — memo/hits,
// memo/misses, memo/dedup-waits, memo/disk-hits and the memo/remote/*
// family (hits, misses, errors, corrupt, stores) — and mirrored in
// Stats() for programmatic use. Because hfmin.Analyze canonicalizes
// internally, a cache hit is bit-identical to what the miss path would have
// computed; the memoized and unmemoized pipelines are asserted equal by
// TestMemoEquivalence at the repo root.
package memo

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hfmin"
	"repro/internal/logic"
	"repro/internal/obs"
)

// Salt versions the cache key space. Bump it whenever hfmin's observable
// behaviour changes (covers, tie-breaks, cost weights, ...), so persisted
// entries from older minimizers are ignored rather than replayed. The
// covering solvers version themselves through logic.SolverVersion, which
// Key folds in alongside this salt.
const Salt = "memo-v1/hfmin-v1"

// numShards bounds lock contention between concurrent hfmin workers; keys
// are SHA-256 hashes, so the first byte shards uniformly.
const numShards = 16

// Stats is a snapshot of the cache's lookup counters.
type Stats struct {
	Hits          int64 // served from the in-memory map
	Misses        int64 // computed (not found in memory, on disk or remotely)
	DedupWaits    int64 // blocked on another goroutine computing the same key
	DiskHits      int64 // loaded from the persistent cache directory
	RemoteHits    int64 // filled from the remote tier
	RemoteErrors  int64 // remote fetches that failed or timed out
	RemoteCorrupt int64 // remote payloads rejected by validation
}

// Cache memoizes hfmin.Minimize and hfmin.MinimizeHeuristic. The zero value
// is not usable; call New. A nil *Cache is a valid pass-through that
// memoizes nothing.
type Cache struct {
	dir           string       // persistent cache directory; empty = in-memory only
	solver        logic.Solver // covering backend for exact minimizations
	remote        Remote       // fleet-shared tier; nil = disabled
	remoteTimeout time.Duration
	cap           *dirCap // disk byte budget; nil = unbounded
	shards        [numShards]shard

	hits          atomic.Int64
	misses        atomic.Int64
	dedupWaits    atomic.Int64
	diskHits      atomic.Int64
	remoteHits    atomic.Int64
	remoteErrors  atomic.Int64
	remoteCorrupt atomic.Int64
}

type shard struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]*entry
}

// entry is one memoized computation. done is closed when res/err are
// final; waiters block on it (singleflight). aborted marks an entry whose
// computation was cancelled (context error) or panicked before a result
// existed: the entry has been removed from the map and waiters retry or
// solve themselves rather than inheriting the aborted job's error.
type entry struct {
	done    chan struct{}
	res     hfmin.Result
	err     error
	aborted bool
}

// New returns a cache. A non-empty dir enables the persistent layer (the
// directory is created if needed); the empty string selects in-memory-only
// operation.
func New(dir string) (*Cache, error) {
	return NewSolver(dir, logic.SolverBB)
}

// NewSolver is New with an explicit covering backend for the exact
// minimizations routed through the cache. The backend is fixed at
// construction because it is part of every cache key — entries computed by
// different backends are never shared (exact results would be identical,
// but budget-limited inexact ones may not be).
func NewSolver(dir string, solver logic.Solver) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("memo: cache dir: %w", err)
		}
	}
	c := &Cache{dir: dir, solver: solver}
	for i := range c.shards {
		c.shards[i].m = map[[sha256.Size]byte]*entry{}
	}
	return c, nil
}

// Solver returns the covering backend the cache was constructed with.
// Cached entries are keyed by it, so downstream cache keys (the stage
// engine's synth keys) must use this backend — not a caller-side flag —
// when a Cache is the pipeline's Minimizer.
func (c *Cache) Solver() logic.Solver {
	if c == nil {
		return logic.SolverBB
	}
	return c.solver
}

// Stats returns the current lookup counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		DedupWaits:    c.dedupWaits.Load(),
		DiskHits:      c.diskHits.Load(),
		RemoteHits:    c.remoteHits.Load(),
		RemoteErrors:  c.remoteErrors.Load(),
		RemoteCorrupt: c.remoteCorrupt.Load(),
	}
}

// Minimize is hfmin.Minimize behind the cache. It satisfies
// synth.Minimizer.
func (c *Cache) Minimize(spec hfmin.Spec) (hfmin.Result, error) {
	return c.MinimizeCtx(context.Background(), spec)
}

// MinimizeCtx is Minimize with cooperative cancellation; it satisfies
// synth.MinimizerCtx. A lookup that dedup-waits on another goroutine's
// computation stops waiting when ctx ends (the computing job keeps its
// own context); a computation cancelled mid-solve is discarded and its
// key vacated, never cached, so concurrent jobs sharing the cache cannot
// observe one another's cancellations as results.
func (c *Cache) MinimizeCtx(ctx context.Context, spec hfmin.Spec) (hfmin.Result, error) {
	if c == nil {
		return hfmin.MinimizeCtx(ctx, spec)
	}
	return c.get(ctx, spec, c.solver, func(ctx context.Context, s hfmin.Spec) (hfmin.Result, error) {
		return hfmin.MinimizeSolver(ctx, s, c.solver)
	})
}

// MinimizeHeuristic is hfmin.MinimizeHeuristic behind the cache; the
// exact/heuristic flag is part of the key, so the two solvers never share
// entries.
func (c *Cache) MinimizeHeuristic(spec hfmin.Spec) (hfmin.Result, error) {
	if c == nil {
		return hfmin.MinimizeHeuristic(spec)
	}
	return c.get(context.Background(), spec, logic.SolverGreedy, hfmin.MinimizeHeuristicCtx)
}

// Key returns the content-addressed cache key of (spec, solver): the
// SHA-256 hash of the version salt, logic.SolverVersion, the covering
// backend id and the canonical transition list. Exported for tests and
// diagnostics.
func Key(spec hfmin.Spec, solver logic.Solver) [sha256.Size]byte {
	canon := spec.Canonical()
	h := sha256.New()
	h.Write([]byte(Salt))
	h.Write([]byte("/" + logic.SolverVersion))
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(solver))
	put(uint64(canon.N))
	put(uint64(len(canon.Transitions)))
	for _, t := range canon.Transitions {
		put(uint64(t.Kind))
		z, o := t.Start.Raw()
		put(z)
		put(o)
		z, o = t.End.Raw()
		put(z)
		put(o)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// get implements the lookup protocol: in-memory hit, singleflight wait,
// disk hit, or compute-and-fill. Computations that end in a context error
// (or panic) vacate their entry instead of filling it, so a cancelled job
// never poisons the key for other jobs; waiters on a vacated entry retry
// the lookup from scratch.
func (c *Cache) get(ctx context.Context, spec hfmin.Spec, solver logic.Solver, solve func(context.Context, hfmin.Spec) (hfmin.Result, error)) (hfmin.Result, error) {
	key := Key(spec, solver)
	sh := &c.shards[key[0]%numShards]
	for {
		sh.mu.Lock()
		if e, ok := sh.m[key]; ok {
			sh.mu.Unlock()
			select {
			case <-e.done:
			default:
				// Another worker is solving this exact problem right now;
				// block on its result instead of duplicating the work — but
				// only as long as our own context lives.
				c.dedupWaits.Add(1)
				obs.Add("memo/dedup-waits", 1)
				select {
				case <-e.done:
				case <-ctx.Done():
					return hfmin.Result{}, ctx.Err()
				}
			}
			if e.aborted {
				continue // the computing job was cancelled or panicked; retry
			}
			c.hits.Add(1)
			obs.Add("memo/hits", 1)
			return e.res, e.err
		}
		e := &entry{done: make(chan struct{})}
		sh.m[key] = e
		sh.mu.Unlock()

		abort := func() {
			sh.mu.Lock()
			delete(sh.m, key)
			sh.mu.Unlock()
			e.aborted = true
			close(e.done)
		}
		// The entry must be resolved even if the solver panics, or waiters
		// would block forever; the panic is re-raised for par's recovery
		// while the vacated key stays computable by the next caller.
		completed := false
		defer func() {
			if !completed {
				abort()
			}
		}()

		if res, err, ok := c.loadDisk(key); ok {
			c.diskHits.Add(1)
			obs.Add("memo/disk-hits", 1)
			e.res, e.err = res, err
			completed = true
			close(e.done)
			return e.res, e.err
		}

		// Memory and disk missed; ask the fleet before solving. A hit is
		// persisted locally too, so a node restart keeps it, and a slow,
		// dead or corrupt remote falls through to compute (remote.go).
		if res, err, ok := c.loadRemote(ctx, key); ok {
			e.res, e.err = res, err
			completed = true
			close(e.done)
			c.storeDisk(key, e.res, e.err)
			return e.res, e.err
		}

		c.misses.Add(1)
		obs.Add("memo/misses", 1)
		res, err := solve(ctx, spec)
		completed = true
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			abort()
			return res, err
		}
		e.res, e.err = res, err
		close(e.done)
		c.storeDisk(key, e.res, e.err)
		c.storeRemote(key, e.res, e.err)
		return e.res, e.err
	}
}
