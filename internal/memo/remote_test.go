package memo

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/hfmin"
	"repro/internal/logic"
)

// fakeRemote is a scriptable Remote: entries maps hex keys to payloads,
// delay stalls every fetch, and stores records Store offers.
type fakeRemote struct {
	mu      sync.Mutex
	entries map[string][]byte
	delay   time.Duration
	fetches int
	stores  map[string][]byte
}

func newFakeRemote() *fakeRemote {
	return &fakeRemote{entries: map[string][]byte{}, stores: map[string][]byte{}}
}

func (f *fakeRemote) Fetch(ctx context.Context, key string) ([]byte, error) {
	f.mu.Lock()
	delay := f.delay
	f.fetches++
	data := f.entries[key]
	f.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return data, nil
}

func (f *fakeRemote) Store(ctx context.Context, key string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores[key] = data
	return nil
}

func hexKey(spec hfmin.Spec, solver logic.Solver) string {
	k := Key(spec, solver)
	return hex.EncodeToString(k[:])
}

// TestRemoteHitBitIdentical: a record exported by one cache and fetched
// remotely by another yields exactly the Result a direct solve computes,
// counted as a remote hit, and is re-persisted to the second cache's disk
// layer.
func TestRemoteHitBitIdentical(t *testing.T) {
	solverDir := t.TempDir()
	src := mustCache(t, solverDir)
	direct, err := src.Minimize(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	key := hexKey(simpleSpec(), logic.SolverBB)
	rec, ok := src.Export(key)
	if !ok {
		t.Fatal("source cache could not export a solved entry")
	}

	remote := newFakeRemote()
	remote.entries[key] = rec
	dstDir := t.TempDir()
	dst := mustCache(t, dstDir)
	dst.SetRemote(remote, time.Second)
	got, err := dst.Minimize(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, direct) {
		t.Fatal("remote-filled result differs from direct solve")
	}
	st := dst.Stats()
	if st.RemoteHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want exactly one remote hit and no computes", st)
	}
	// The fill was persisted locally: a fresh cache over the same dir
	// disk-hits without touching the remote.
	fresh := mustCache(t, dstDir)
	if _, err := fresh.Minimize(simpleSpec()); err != nil {
		t.Fatal(err)
	}
	if st := fresh.Stats(); st.DiskHits != 1 {
		t.Fatalf("remote fill was not persisted to disk (stats %+v)", st)
	}
}

// TestRemoteCorruptPayloadRejected: garbage, truncated, foreign-salt and
// wrong-arity remote payloads are all demoted to misses — the solve
// computes locally and the result is unaffected.
func TestRemoteCorruptPayloadRejected(t *testing.T) {
	direct, err := hfmin.Minimize(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	valid, ok := func() ([]byte, bool) {
		c := mustCache(t, "")
		if _, err := c.Minimize(simpleSpec()); err != nil {
			t.Fatal(err)
		}
		return c.Export(hexKey(simpleSpec(), logic.SolverBB))
	}()
	if !ok {
		t.Fatal("export failed")
	}
	corruptions := map[string][]byte{
		"garbage":      []byte("not json at all"),
		"truncated":    valid[:len(valid)/2],
		"empty-object": []byte("{}"),
		"foreign-salt": []byte(`{"salt":"memo-v0/other","n":2}`),
		"bad-mask":     []byte(`{"salt":"` + Salt + `","n":2,"cover":[{"z":18446744073709551615,"o":18446744073709551615}],"on":[{"z":1,"o":2}],"off":[{"z":2,"o":1}]}`),
	}
	for name, payload := range corruptions {
		t.Run(name, func(t *testing.T) {
			remote := newFakeRemote()
			remote.entries[hexKey(simpleSpec(), logic.SolverBB)] = payload
			c := mustCache(t, "")
			c.SetRemote(remote, time.Second)
			got, err := c.Minimize(simpleSpec())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, direct) {
				t.Fatal("corrupt remote payload changed the result")
			}
			st := c.Stats()
			if st.RemoteCorrupt != 1 || st.RemoteHits != 0 || st.Misses != 1 {
				t.Fatalf("stats = %+v, want one rejected payload and one local compute", st)
			}
		})
	}
}

// TestRemoteTimeoutFallsThrough: a remote slower than the configured
// timeout never stalls the solve — the lookup falls through to local
// compute, counted as a remote error, and completes promptly.
func TestRemoteTimeoutFallsThrough(t *testing.T) {
	remote := newFakeRemote()
	remote.delay = 10 * time.Second
	c := mustCache(t, "")
	c.SetRemote(remote, 50*time.Millisecond)
	start := time.Now()
	got, err := c.Minimize(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slow remote stalled the solve for %v", elapsed)
	}
	direct, _ := hfmin.Minimize(simpleSpec())
	if !reflect.DeepEqual(got, direct) {
		t.Fatal("timed-out remote changed the result")
	}
	st := c.Stats()
	if st.RemoteErrors != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want one remote error and one local compute", st)
	}
}

// TestCancelledFillNeverCached: a solve cancelled mid-computation is
// neither kept in memory, nor persisted to disk, nor offered to the
// remote tier; the next lookup computes cleanly.
func TestCancelledFillNeverCached(t *testing.T) {
	dir := t.TempDir()
	remote := newFakeRemote()
	c := mustCache(t, dir)
	c.SetRemote(remote, time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.MinimizeCtx(ctx, simpleSpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve returned %v", err)
	}
	if n := len(remote.stores); n != 0 {
		t.Fatalf("cancelled fill was offered to the remote tier (%d stores)", n)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		t.Fatalf("cancelled fill left %s on disk", filepath.Join(dir, f.Name()))
	}
	// The key was vacated: a fresh uncancelled lookup computes and caches.
	got, err := c.Minimize(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := hfmin.Minimize(simpleSpec())
	if !reflect.DeepEqual(got, direct) {
		t.Fatal("post-cancel result differs from direct solve")
	}
	if len(remote.stores) != 1 {
		t.Fatal("completed solve was not offered to the remote tier")
	}
}

// TestRemoteInfeasibleRoundTrip: infeasibility verdicts travel the remote
// tier with errors.Is intact, like the disk layer.
func TestRemoteInfeasibleRoundTrip(t *testing.T) {
	src := mustCache(t, "")
	_, serr := src.Minimize(infeasibleSpec())
	if !errors.Is(serr, hfmin.ErrInfeasible) {
		t.Fatalf("infeasible spec solved: %v", serr)
	}
	key := hexKey(infeasibleSpec(), logic.SolverBB)
	rec, ok := src.Export(key)
	if !ok {
		t.Fatal("infeasible verdict did not export")
	}
	remote := newFakeRemote()
	remote.entries[key] = rec
	dst := mustCache(t, "")
	dst.SetRemote(remote, time.Second)
	if _, err := dst.Minimize(infeasibleSpec()); !errors.Is(err, hfmin.ErrInfeasible) {
		t.Fatalf("remote-filled verdict = %v, want ErrInfeasible", err)
	}
	if st := dst.Stats(); st.RemoteHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want a pure remote hit", st)
	}
}

// TestExportDomain pins Export's edges: bad hex, wrong length, unknown
// and in-flight keys all report ok=false; solved keys export from memory
// and, after restart, from disk.
func TestExportDomain(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, dir)
	if _, ok := c.Export("zz"); ok {
		t.Fatal("non-hex key exported")
	}
	if _, ok := c.Export("00ff"); ok {
		t.Fatal("short key exported")
	}
	var missing [sha256.Size]byte
	if _, ok := c.Export(hex.EncodeToString(missing[:])); ok {
		t.Fatal("unknown key exported")
	}
	if _, err := c.Minimize(simpleSpec()); err != nil {
		t.Fatal(err)
	}
	key := hexKey(simpleSpec(), logic.SolverBB)
	if _, ok := c.Export(key); !ok {
		t.Fatal("solved key did not export from memory")
	}
	restarted := mustCache(t, dir)
	if _, ok := restarted.Export(key); !ok {
		t.Fatal("solved key did not export from disk after restart")
	}
	var nilCache *Cache
	if _, ok := nilCache.Export(key); ok {
		t.Fatal("nil cache exported")
	}
}
