package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"

	"repro/internal/hfmin"
	"repro/internal/logic"
)

// The persistent layer stores one JSON record per solved problem, named by
// the hex of its key hash. Cubes are serialized as their raw positional
// bit masks (logic.Cube.Raw), so a loaded Result is bit-identical to the
// computed one. Records are strictly validated on load — wrong salt,
// malformed JSON, out-of-range masks, arity mismatches — and any defect
// demotes the lookup to a miss; the disk cache can cost a recompute but
// never an incorrect result.
//
// The same record format is the wire format of the Remote tier (see
// remote.go): encodeRecord/decodeRecord below are shared by the disk
// layer, the peer-to-peer cache-fill protocol and Cache.Export, so every
// consumer applies the same strict validation.

type cubeRec struct {
	Z uint64 `json:"z"`
	O uint64 `json:"o"`
}

type privRec struct {
	Trans cubeRec `json:"trans"`
	Need  cubeRec `json:"need"`
}

type fileRec struct {
	Salt       string    `json:"salt"`
	N          int       `json:"n"`
	Infeasible bool      `json:"infeasible,omitempty"`
	Err        string    `json:"err,omitempty"`
	Exact      bool      `json:"exact,omitempty"`
	Cover      []cubeRec `json:"cover,omitempty"`
	OnSet      []cubeRec `json:"on,omitempty"`
	OffSet     []cubeRec `json:"off,omitempty"`
	Required   []cubeRec `json:"required,omitempty"`
	Privileged []privRec `json:"privileged,omitempty"`
	Primes     []cubeRec `json:"primes,omitempty"`
}

// infeasibleErr reconstructs a persisted hfmin.ErrInfeasible outcome with
// its original message, so errors.Is and error text behave exactly as on
// the compute path.
type infeasibleErr struct{ msg string }

func (e *infeasibleErr) Error() string { return e.msg }
func (e *infeasibleErr) Unwrap() error { return hfmin.ErrInfeasible }

func (c *Cache) path(key [sha256.Size]byte) string {
	return filepath.Join(c.dir, hex.EncodeToString(key[:])+".json")
}

// encodeRecord serializes a solved problem into the shared record format.
// Only clean results and infeasibility verdicts encode — other errors
// indicate malformed specs and are not worth a record (ok is false).
func encodeRecord(res hfmin.Result, err error) (data []byte, ok bool) {
	if err != nil && !errors.Is(err, hfmin.ErrInfeasible) {
		return nil, false
	}
	// Analyze populates the care sets before minimize can fail, so the
	// arity lives on OnSet even when Cover was never built (infeasible
	// outcomes carry the zero Cover, which decodeResult reproduces).
	rec := fileRec{
		Salt:     Salt,
		N:        res.OnSet.N,
		Exact:    res.Exact,
		Cover:    encCubes(res.Cover.Cubes),
		OnSet:    encCubes(res.OnSet.Cubes),
		OffSet:   encCubes(res.OffSet.Cubes),
		Required: encCubes(res.Required),
		Primes:   encCubes(res.Primes),
	}
	for _, pv := range res.Privileged {
		rec.Privileged = append(rec.Privileged, privRec{Trans: encCube(pv.Trans), Need: encCube(pv.Need)})
	}
	if err != nil {
		rec.Infeasible = true
		rec.Err = err.Error()
	}
	data, merr := json.Marshal(rec)
	if merr != nil {
		return nil, false
	}
	return data, true
}

// decodeRecord strictly validates and decodes a record in the shared
// format. ok is false on any defect — malformed JSON, a foreign salt,
// out-of-range masks — never an error result: a bad record is a miss.
func decodeRecord(data []byte) (res hfmin.Result, resErr error, ok bool) {
	var rec fileRec
	if json.Unmarshal(data, &rec) != nil || rec.Salt != Salt {
		return hfmin.Result{}, nil, false
	}
	res, derr := decodeResult(rec)
	if derr != nil {
		return hfmin.Result{}, nil, false
	}
	if rec.Infeasible {
		return res, &infeasibleErr{msg: rec.Err}, true
	}
	return res, nil, true
}

// storeDisk persists a solved problem; failures are ignored (the cache is
// an accelerator, not a store of record).
func (c *Cache) storeDisk(key [sha256.Size]byte, res hfmin.Result, err error) {
	if c.dir == "" {
		return
	}
	data, ok := encodeRecord(res, err)
	if !ok {
		return
	}
	// Write-then-rename keeps concurrent runs sharing a directory from
	// observing torn records.
	tmp, terr := os.CreateTemp(c.dir, "memo-*")
	if terr != nil {
		return
	}
	if _, werr := tmp.Write(data); werr != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if cerr := tmp.Close(); cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if rerr := os.Rename(tmp.Name(), c.path(key)); rerr != nil {
		os.Remove(tmp.Name())
		return
	}
	c.cap.wrote(len(data))
}

// loadDisk retrieves a persisted record; ok is false on any miss, staleness
// or corruption.
func (c *Cache) loadDisk(key [sha256.Size]byte) (hfmin.Result, error, bool) {
	if c.dir == "" {
		return hfmin.Result{}, nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return hfmin.Result{}, nil, false
	}
	return decodeRecord(data)
}

func decodeResult(rec fileRec) (hfmin.Result, error) {
	res := hfmin.Result{Exact: rec.Exact}
	var err error
	if !rec.Infeasible {
		if res.Cover, err = decCover(rec.Cover, rec.N); err != nil {
			return res, err
		}
	}
	if res.OnSet, err = decCover(rec.OnSet, rec.N); err != nil {
		return res, err
	}
	if res.OffSet, err = decCover(rec.OffSet, rec.N); err != nil {
		return res, err
	}
	if res.Required, err = decCubes(rec.Required, rec.N); err != nil {
		return res, err
	}
	if res.Primes, err = decCubes(rec.Primes, rec.N); err != nil {
		return res, err
	}
	for _, pv := range rec.Privileged {
		tr, terr := decCube(pv.Trans, rec.N)
		if terr != nil {
			return res, terr
		}
		need, nerr := decCube(pv.Need, rec.N)
		if nerr != nil {
			return res, nerr
		}
		res.Privileged = append(res.Privileged, hfmin.Privileged{Trans: tr, Need: need})
	}
	return res, nil
}

func encCube(c logic.Cube) cubeRec {
	z, o := c.Raw()
	return cubeRec{Z: z, O: o}
}

func encCubes(cs []logic.Cube) []cubeRec {
	if len(cs) == 0 {
		return nil
	}
	out := make([]cubeRec, len(cs))
	for i, c := range cs {
		out[i] = encCube(c)
	}
	return out
}

func decCube(r cubeRec, n int) (logic.Cube, error) {
	return logic.RawCube(r.Z, r.O, n)
}

// decCubes preserves nil-ness: an absent list decodes to a nil slice, so a
// loaded Result is reflect.DeepEqual to the computed one.
func decCubes(rs []cubeRec, n int) ([]logic.Cube, error) {
	if len(rs) == 0 {
		return nil, nil
	}
	out := make([]logic.Cube, len(rs))
	for i, r := range rs {
		c, err := decCube(r, n)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func decCover(rs []cubeRec, n int) (logic.Cover, error) {
	cubes, err := decCubes(rs, n)
	if err != nil {
		return logic.Cover{}, err
	}
	return logic.Cover{N: n, Cubes: cubes}, nil
}
