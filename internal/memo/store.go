package memo

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Store generalizes the Cache's memory→disk→remote layering from hfmin
// records to arbitrary content-addressed blobs. It is the storage tier of
// the incremental stage engine (internal/stage): every pipeline stage
// result — a transformed CDFG, an extracted controller after local
// transforms, a synthesized logic block — is cached under a SHA-256
// content key, with the same singleflight deduplication, strict
// validation and best-effort persistence semantics as the hfmin cache.
//
// A stage chooses, via its BlobCodec, whether its results are
// serializable: a nil codec keeps the stage memory-only (useful for
// results holding live pointers, like transformed graphs), a non-nil
// codec enables the disk directory and the remote tier. Payloads on disk
// and on the wire are wrapped in a salted envelope, so stage blobs and
// hfmin records can never alias each other even when the fleet serves
// both through one endpoint. Decode failures are misses, never results.
//
// Errors are never cached: a compute that fails vacates its key, so a
// transient failure (cancellation, resource exhaustion) cannot poison
// the cache for later jobs.
type Store struct {
	dir           string
	remote        Remote
	remoteTimeout time.Duration
	cap           *dirCap
	shards        [numShards]blobShard

	hits       atomic.Int64
	misses     atomic.Int64
	dedupWaits atomic.Int64
	diskHits   atomic.Int64
	remoteHits atomic.Int64
}

// StoreSalt versions the blob envelope. It is distinct from the hfmin
// record Salt so the two key spaces can never alias, and it must be
// bumped whenever any cached stage payload's semantics change.
const StoreSalt = "blob-v1"

// BlobCodec serializes one stage's result type for the disk and remote
// tiers. Encode reports ok=false for values that should stay
// memory-only; Decode reports ok=false on any validation failure, which
// demotes the record to a miss. Encoded payloads must be valid JSON
// (they are embedded in the salted envelope as a raw message).
type BlobCodec interface {
	// Encode serializes a value; ok=false keeps it memory-only.
	Encode(v any) ([]byte, bool)
	// Decode strictly validates and deserializes a payload.
	Decode(data []byte) (any, bool)
}

// Source reports which tier served a Store.Do lookup.
type Source int

// Lookup sources, ordered from most to least expensive.
const (
	SourceComputed Source = iota // ran the compute function
	SourceMemory                 // in-memory hit (or singleflight wait)
	SourceDisk                   // loaded from the disk directory
	SourceRemote                 // filled from the remote tier
)

func (s Source) String() string {
	switch s {
	case SourceComputed:
		return "computed"
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	case SourceRemote:
		return "remote"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// StoreStats is a snapshot of a Store's lookup counters.
type StoreStats struct {
	Hits       int64 // served from memory
	Misses     int64 // computed
	DedupWaits int64 // blocked on another goroutine computing the same key
	DiskHits   int64 // loaded from the disk directory
	RemoteHits int64 // filled from the remote tier
}

type blobShard struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]*blobEntry
}

// blobEntry mirrors the Cache's entry: done closes when val/data are
// final, aborted marks a vacated computation whose waiters must retry.
// data holds the encoded envelope (nil for memory-only values) so Export
// can serve fleet cache fills without re-encoding.
type blobEntry struct {
	done    chan struct{}
	val     any
	data    []byte
	aborted bool
}

// blobRec is the salted on-disk/wire envelope around a codec payload.
type blobRec struct {
	Salt string          `json:"salt"`
	Data json.RawMessage `json:"data"`
}

// NewStore returns a blob store. A non-empty dir enables the persistent
// layer (the directory is created if needed); empty selects
// in-memory-only operation.
func NewStore(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("memo: store dir: %w", err)
		}
	}
	s := &Store{}
	s.dir = dir
	for i := range s.shards {
		s.shards[i].m = map[[sha256.Size]byte]*blobEntry{}
	}
	return s, nil
}

// SetRemote attaches a remote tier consulted between disk and compute,
// bounded per-lookup by timeout (<= 0 selects DefaultRemoteTimeout).
// Attach before sharing the store, as the daemon does at startup.
func (s *Store) SetRemote(r Remote, timeout time.Duration) {
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	s.remote = r
	s.remoteTimeout = timeout
}

// Stats returns the current lookup counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	return StoreStats{
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		DedupWaits: s.dedupWaits.Load(),
		DiskHits:   s.diskHits.Load(),
		RemoteHits: s.remoteHits.Load(),
	}
}

// Do returns the value cached under key, computing and caching it on a
// miss. Concurrent calls for the same key collapse onto one computation
// (singleflight); a computation that returns an error — or whose context
// ends — vacates the key instead of caching. Cached values are shared by
// reference across callers, who must treat them as immutable.
func (s *Store) Do(ctx context.Context, key [sha256.Size]byte, codec BlobCodec, compute func(context.Context) (any, error)) (any, Source, error) {
	if s == nil {
		v, err := compute(ctx)
		return v, SourceComputed, err
	}
	sh := &s.shards[key[0]%numShards]
	for {
		sh.mu.Lock()
		if e, ok := sh.m[key]; ok {
			sh.mu.Unlock()
			select {
			case <-e.done:
			default:
				s.dedupWaits.Add(1)
				obs.Add("blob/dedup-waits", 1)
				select {
				case <-e.done:
				case <-ctx.Done():
					return nil, SourceComputed, ctx.Err()
				}
			}
			if e.aborted {
				continue // the computing call failed or was cancelled; retry
			}
			s.hits.Add(1)
			obs.Add("blob/hits", 1)
			return e.val, SourceMemory, nil
		}
		e := &blobEntry{done: make(chan struct{})}
		sh.m[key] = e
		sh.mu.Unlock()

		abort := func() {
			sh.mu.Lock()
			delete(sh.m, key)
			sh.mu.Unlock()
			e.aborted = true
			close(e.done)
		}
		// Resolve the entry even if compute panics, so waiters never block
		// forever; the panic propagates to par's recovery while the key
		// stays computable.
		completed := false
		defer func() {
			if !completed {
				abort()
			}
		}()

		if codec != nil {
			if v, data, ok := s.loadDisk(key, codec); ok {
				s.diskHits.Add(1)
				obs.Add("blob/disk-hits", 1)
				e.val, e.data = v, data
				completed = true
				close(e.done)
				return v, SourceDisk, nil
			}
			if v, data, ok := s.loadRemote(ctx, key, codec); ok {
				s.remoteHits.Add(1)
				obs.Add("blob/remote/hits", 1)
				e.val, e.data = v, data
				completed = true
				close(e.done)
				s.writeDisk(key, data)
				return v, SourceRemote, nil
			}
		}

		s.misses.Add(1)
		obs.Add("blob/misses", 1)
		v, err := compute(ctx)
		completed = true
		if err != nil {
			abort()
			return v, SourceComputed, err
		}
		e.val = v
		if codec != nil {
			if payload, ok := codec.Encode(v); ok {
				if data, merr := json.Marshal(blobRec{Salt: StoreSalt, Data: payload}); merr == nil {
					e.data = data
					s.writeDisk(key, data)
					s.storeRemote(key, data)
				}
			}
		}
		close(e.done)
		return v, SourceComputed, nil
	}
}

func (s *Store) blobPath(key [sha256.Size]byte) string {
	return filepath.Join(s.dir, hex.EncodeToString(key[:])+".json")
}

// decodeBlob validates the envelope (salt, well-formed JSON, no trailing
// data) and hands the payload to the codec; any defect is a miss.
func decodeBlob(data []byte, codec BlobCodec) (any, bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rec blobRec
	if dec.Decode(&rec) != nil || dec.More() || rec.Salt != StoreSalt {
		return nil, false
	}
	return codec.Decode(rec.Data)
}

func (s *Store) loadDisk(key [sha256.Size]byte, codec BlobCodec) (any, []byte, bool) {
	if s.dir == "" {
		return nil, nil, false
	}
	data, err := os.ReadFile(s.blobPath(key))
	if err != nil {
		return nil, nil, false
	}
	v, ok := decodeBlob(data, codec)
	if !ok {
		return nil, nil, false
	}
	return v, data, true
}

// writeDisk persists an encoded envelope with the same write-then-rename
// discipline as the hfmin records; failures are ignored.
func (s *Store) writeDisk(key [sha256.Size]byte, data []byte) {
	if s.dir == "" {
		return
	}
	tmp, terr := os.CreateTemp(s.dir, "blob-*")
	if terr != nil {
		return
	}
	if _, werr := tmp.Write(data); werr != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if cerr := tmp.Close(); cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if rerr := os.Rename(tmp.Name(), s.blobPath(key)); rerr != nil {
		os.Remove(tmp.Name())
		return
	}
	s.cap.wrote(len(data))
}

func (s *Store) loadRemote(ctx context.Context, key [sha256.Size]byte, codec BlobCodec) (any, []byte, bool) {
	if s.remote == nil {
		return nil, nil, false
	}
	rctx, cancel := context.WithTimeout(ctx, s.remoteTimeout)
	defer cancel()
	data, err := s.remote.Fetch(rctx, hex.EncodeToString(key[:]))
	switch {
	case err != nil:
		obs.Add("blob/remote/errors", 1)
		return nil, nil, false
	case data == nil:
		obs.Add("blob/remote/misses", 1)
		return nil, nil, false
	}
	v, ok := decodeBlob(data, codec)
	if !ok {
		obs.Add("blob/remote/corrupt", 1)
		return nil, nil, false
	}
	return v, data, true
}

// storeRemote offers a freshly-encoded envelope to the remote tier,
// detached from the computing job's context (the result is final).
func (s *Store) storeRemote(key [sha256.Size]byte, data []byte) {
	if s.remote == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.remoteTimeout)
	defer cancel()
	if s.remote.Store(ctx, hex.EncodeToString(key[:]), data) == nil {
		obs.Add("blob/remote/stores", 1)
	}
}

// Export serializes the store's entry for the hex-encoded key, serving
// the fleet cache-fill protocol alongside Cache.Export. Completed
// in-memory entries with an encoded envelope are served first, then the
// disk layer; the requester re-validates everything, so the bytes are
// returned verbatim.
func (s *Store) Export(hexKey string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	raw, err := hex.DecodeString(hexKey)
	if err != nil || len(raw) != sha256.Size {
		return nil, false
	}
	var key [sha256.Size]byte
	copy(key[:], raw)

	sh := &s.shards[key[0]%numShards]
	sh.mu.Lock()
	e, ok := sh.m[key]
	sh.mu.Unlock()
	if ok {
		select {
		case <-e.done:
			if !e.aborted && e.data != nil {
				return e.data, true
			}
		default: // still being computed
		}
	}
	if s.dir == "" {
		return nil, false
	}
	data, rerr := os.ReadFile(s.blobPath(key))
	if rerr != nil {
		return nil, false
	}
	return data, true
}
