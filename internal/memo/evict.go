package memo

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// The disk layers (Cache's hfmin records, Store's stage blobs) grow
// without bound across long daemon runs: every new design adds records
// and nothing removes them. dirCap bounds one cache directory to a byte
// budget with oldest-entry eviction — entries are content-addressed and
// regenerable, so deleting the least-recently-written files can only
// cost a recompute, never correctness.
//
// A sweep (re-stat the directory, delete oldest until under budget) runs
// on the first write and then whenever the bytes written since the last
// sweep exceed 1/16 of the budget, amortizing the directory scan across
// many stores. Concurrent processes sharing a directory race benignly:
// each deletes files independently and a vanished file is a miss.

type dirCap struct {
	dir string
	max int64

	mu      sync.Mutex
	pending int64 // bytes written since the last sweep
	swept   bool  // a sweep has run at least once
}

// newDirCap returns nil (a no-op cap) when the directory or budget is
// absent; all methods are nil-safe.
func newDirCap(dir string, max int64) *dirCap {
	if dir == "" || max <= 0 {
		return nil
	}
	return &dirCap{dir: dir, max: max}
}

// wrote records n freshly-persisted bytes and sweeps when due.
func (d *dirCap) wrote(n int) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pending += int64(n)
	if d.swept && d.pending < d.max/16+1 {
		return
	}
	d.pending = 0
	d.swept = true
	d.sweep()
}

// sweep deletes the oldest *.json records until the directory is within
// the byte budget. Called with d.mu held. All I/O errors are ignored —
// eviction is best-effort on a regenerable cache.
func (d *dirCap) sweep() {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type rec struct {
		path  string
		size  int64
		mtime int64
	}
	var recs []rec
	var total int64
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		recs = append(recs, rec{
			path:  filepath.Join(d.dir, e.Name()),
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
		total += info.Size()
	}
	if total <= d.max {
		return
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].mtime != recs[j].mtime {
			return recs[i].mtime < recs[j].mtime
		}
		return recs[i].path < recs[j].path
	})
	evicted := int64(0)
	for _, r := range recs {
		if total <= d.max {
			break
		}
		if os.Remove(r.path) == nil {
			total -= r.size
			evicted++
		}
	}
	if evicted > 0 {
		obs.Add("memo/evictions", evicted)
	}
}

// SetMaxBytes caps the cache's disk directory at n bytes with
// oldest-entry eviction (0 or negative disables the cap, the default).
// Like SetRemote it is not synchronized with in-flight lookups: set the
// cap at startup, before sharing the cache.
func (c *Cache) SetMaxBytes(n int64) {
	c.cap = newDirCap(c.dir, n)
}

// SetMaxBytes caps the store's disk directory at n bytes with
// oldest-entry eviction (0 or negative disables the cap, the default).
// Set it at startup, before sharing the store.
func (s *Store) SetMaxBytes(n int64) {
	s.cap = newDirCap(s.dir, n)
}
