package memo

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/hfmin"
)

// widthSpec is simpleSpec generalized to n input bits, so each width
// yields a distinct feasible minimization problem.
func widthSpec(n int) hfmin.Spec {
	zeros := strings.Repeat("0", n-1)
	return hfmin.Spec{N: n, Transitions: []hfmin.Transition{
		tr("0"+zeros, zeros+"1", hfmin.Static1),
		tr("1"+zeros, "1"+zeros[:n-2]+"1", hfmin.Static0),
	}}
}

// dirSize sums the *.json bytes under dir.
func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// TestStoreEviction fills a byte-capped store past its budget and
// asserts the sweep deletes the oldest entries first, keeps the total
// under the cap, and leaves the newest records readable.
func TestStoreEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name string) {
		t.Helper()
		if _, _, err := s.Do(context.Background(), blobKey(name), textCodec{}, func(context.Context) (any, error) {
			return "payload for " + name, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Build an uncapped corpus with strictly increasing mtimes: "old-*"
	// written first and backdated, "new-*" fresh.
	old := []string{"old-0", "old-1", "old-2"}
	fresh := []string{"new-0", "new-1"}
	for _, name := range old {
		write(name)
	}
	past := time.Now().Add(-time.Hour)
	for i, name := range old {
		key := blobKey(name)
		path := s.blobPath(key)
		when := past.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, when, when); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range fresh {
		write(name)
	}

	// Cap well below the corpus and trigger a sweep with one more write.
	perFile := dirSize(t, dir) / int64(len(old)+len(fresh))
	max := perFile*3 + perFile/2 // room for ~3 records
	s.SetMaxBytes(max)
	write("trigger")

	if got := dirSize(t, dir); got > max {
		t.Errorf("directory holds %d bytes after sweep, cap is %d", got, max)
	}
	for _, name := range old {
		if _, err := os.Stat(s.blobPath(blobKey(name))); !os.IsNotExist(err) {
			t.Errorf("backdated entry %s survived the sweep (err=%v)", name, err)
		}
	}
	// The triggering record must survive: it is the newest.
	if _, err := os.Stat(s.blobPath(blobKey("trigger"))); err != nil {
		t.Errorf("newest entry evicted: %v", err)
	}

	// A fresh store over the directory still reads a surviving record.
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, src, err := s2.Do(context.Background(), blobKey("trigger"), textCodec{}, func(context.Context) (any, error) {
		t.Fatal("surviving record did not load from disk")
		return nil, nil
	})
	if err != nil || v.(string) != "payload for trigger" || src != SourceDisk {
		t.Fatalf("got (%v, %v, %v)", v, src, err)
	}
}

// TestCacheEvictionCap applies the same byte cap to the hfmin record
// cache: the dirCap is shared plumbing, so a capped Cache sweeps its
// directory exactly like a capped Store.
func TestCacheEvictionCap(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Populate real minimization records of growing widths (each width is
	// a distinct content key, so a distinct disk file).
	for n := 2; n <= 7; n++ {
		if _, err := c.Minimize(widthSpec(n)); err != nil {
			t.Fatal(err)
		}
	}
	total := dirSize(t, dir)
	if total == 0 {
		t.Fatal("no records persisted")
	}
	c.SetMaxBytes(total / 2)
	// Backdate everything so any entry is eligible, then write one more.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Hour)
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		if err := os.Chtimes(p, past, past); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Minimize(widthSpec(8)); err != nil {
		t.Fatal(err)
	}
	if got := dirSize(t, dir); got > total/2 {
		t.Errorf("capped cache holds %d bytes, cap is %d", got, total/2)
	}
}
