package memo

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"time"

	"repro/internal/hfmin"
	"repro/internal/obs"
)

// Remote is a pluggable second cache tier behind the in-memory map and
// the local disk directory: a fleet-shared store of solved minimization
// records in the same strictly-validated wire format the disk layer uses
// (see disk.go). The peer-to-peer HTTP backend is fleet.CacheClient;
// a blob store would be another implementation.
//
// The contract is deliberately weak so a remote can never hurt
// correctness, only save time:
//
//   - Fetch returns the record bytes for a key, (nil, nil) on a clean
//     miss, or an error. The caller re-validates every payload; corrupt
//     or stale bytes are demoted to a miss and counted, never trusted.
//   - Store offers a freshly-solved record to the tier; best-effort,
//     errors are ignored. Pull-based backends make it a no-op.
//
// Keys on the wire are the lowercase hex of the 32-byte cache key
// (Key), so remote entries are content-addressed exactly like local
// ones and a foreign-salt record can never alias a current key.
type Remote interface {
	// Fetch returns the record for key, (nil, nil) on a miss.
	Fetch(ctx context.Context, key string) ([]byte, error)
	// Store offers a record to the tier; best-effort.
	Store(ctx context.Context, key string, data []byte) error
}

// DefaultRemoteTimeout bounds one remote lookup when SetRemote is given
// a non-positive timeout.
const DefaultRemoteTimeout = time.Second

// SetRemote attaches a remote tier to the cache. A lookup that misses
// memory and disk consults the remote before computing; the fetch is
// bounded by timeout (<= 0 selects DefaultRemoteTimeout) so a slow or
// dead remote degrades to local compute instead of stalling the solve.
// Freshly-computed results are offered back with Store. A nil remote
// detaches the tier.
//
// SetRemote is not synchronized with in-flight lookups; attach the tier
// before sharing the cache, as the daemon does at startup.
func (c *Cache) SetRemote(r Remote, timeout time.Duration) {
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	c.remote = r
	c.remoteTimeout = timeout
}

// loadRemote consults the remote tier for key. Every outcome is counted:
// memo/remote/hits for a validated record, memo/remote/misses for a
// clean fleet-wide miss, memo/remote/errors when the fetch failed or
// timed out, memo/remote/corrupt when the payload failed validation.
// The two failure modes both report ok=false, falling through to local
// compute.
func (c *Cache) loadRemote(ctx context.Context, key [sha256.Size]byte) (hfmin.Result, error, bool) {
	if c.remote == nil {
		return hfmin.Result{}, nil, false
	}
	rctx, cancel := context.WithTimeout(ctx, c.remoteTimeout)
	defer cancel()
	data, err := c.remote.Fetch(rctx, hex.EncodeToString(key[:]))
	switch {
	case err != nil:
		c.remoteErrors.Add(1)
		obs.Add("memo/remote/errors", 1)
		return hfmin.Result{}, nil, false
	case data == nil:
		obs.Add("memo/remote/misses", 1)
		return hfmin.Result{}, nil, false
	}
	res, resErr, ok := decodeRecord(data)
	if !ok {
		c.remoteCorrupt.Add(1)
		obs.Add("memo/remote/corrupt", 1)
		return hfmin.Result{}, nil, false
	}
	c.remoteHits.Add(1)
	obs.Add("memo/remote/hits", 1)
	return res, resErr, true
}

// storeRemote offers a freshly-solved record to the remote tier,
// detached from the solving job's context: the result is final, so a
// cancellation arriving after the solve must not suppress the share.
func (c *Cache) storeRemote(key [sha256.Size]byte, res hfmin.Result, err error) {
	if c.remote == nil {
		return
	}
	data, ok := encodeRecord(res, err)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.remoteTimeout)
	defer cancel()
	if c.remote.Store(ctx, hex.EncodeToString(key[:]), data) == nil {
		obs.Add("memo/remote/stores", 1)
	}
}

// Export serializes the cache's entry for the hex-encoded key in the
// shared record format, serving the fleet cache-fill protocol
// (GET /v1/cache/{key}). It consults completed in-memory entries first,
// then the disk layer; in-flight, aborted and absent entries report
// ok=false. Infeasibility verdicts export like results; other errors do
// not (they indicate malformed specs and are never cached).
func (c *Cache) Export(hexKey string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	raw, err := hex.DecodeString(hexKey)
	if err != nil || len(raw) != sha256.Size {
		return nil, false
	}
	var key [sha256.Size]byte
	copy(key[:], raw)

	sh := &c.shards[key[0]%numShards]
	sh.mu.Lock()
	e, ok := sh.m[key]
	sh.mu.Unlock()
	if ok {
		select {
		case <-e.done:
			if !e.aborted {
				if data, ok := encodeRecord(e.res, e.err); ok {
					return data, true
				}
			}
		default: // still being computed
		}
	}
	if c.dir == "" {
		return nil, false
	}
	// Serve the stored record bytes verbatim; the requester validates.
	data, rerr := os.ReadFile(c.path(key))
	if rerr != nil {
		return nil, false
	}
	return data, true
}
