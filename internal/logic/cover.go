package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Cover is a set of cubes over a common variable count, interpreted as the
// union (logical OR) of its cubes.
type Cover struct {
	N     int
	Cubes []Cube
}

// NewCover builds a cover over n variables from the given cubes, dropping
// empty ones. It panics on arity mismatches.
func NewCover(n int, cubes ...Cube) Cover {
	checkN(n)
	cv := Cover{N: n}
	for _, c := range cubes {
		if c.N() != n {
			panic(fmt.Sprintf("logic: cover arity %d, cube arity %d", n, c.N()))
		}
		if !c.IsEmpty() {
			cv.Cubes = append(cv.Cubes, c)
		}
	}
	return cv
}

// ParseCover parses whitespace-separated positional cube strings.
func ParseCover(n int, s string) (Cover, error) {
	cv := Cover{N: n}
	for _, f := range strings.Fields(s) {
		c, err := ParseCube(f)
		if err != nil {
			return Cover{}, err
		}
		if c.N() != n {
			return Cover{}, fmt.Errorf("logic: cube %q has arity %d, want %d", f, c.N(), n)
		}
		cv.Cubes = append(cv.Cubes, c)
	}
	return cv, nil
}

// MustCover is ParseCover that panics on error.
func MustCover(n int, s string) Cover {
	cv, err := ParseCover(n, s)
	if err != nil {
		panic(err)
	}
	return cv
}

// Add appends a non-empty cube to the cover.
func (cv *Cover) Add(c Cube) {
	if c.N() != cv.N {
		panic(fmt.Sprintf("logic: cover arity %d, cube arity %d", cv.N, c.N()))
	}
	if !c.IsEmpty() {
		cv.Cubes = append(cv.Cubes, c)
	}
}

// Len returns the number of cubes (products) in the cover.
func (cv Cover) Len() int { return len(cv.Cubes) }

// Literals returns the total literal count over all cubes.
func (cv Cover) Literals() int {
	total := 0
	for _, c := range cv.Cubes {
		total += c.Literals()
	}
	return total
}

// ContainsMinterm reports whether any cube of the cover contains minterm m.
func (cv Cover) ContainsMinterm(m Cube) bool {
	for _, c := range cv.Cubes {
		if c.Contains(m) {
			return true
		}
	}
	return false
}

// IntersectsCube reports whether any cube of the cover intersects d.
func (cv Cover) IntersectsCube(d Cube) bool {
	for _, c := range cv.Cubes {
		if c.Intersects(d) {
			return true
		}
	}
	return false
}

// ContainsCube reports whether the union of the cover contains every minterm
// of cube d. This is a single-output cube containment check implemented by
// recursive Shannon expansion (the standard tautology reduction).
func (cv Cover) ContainsCube(d Cube) bool {
	if d.IsEmpty() {
		return true
	}
	// Fast path: a single cube containing d.
	for _, c := range cv.Cubes {
		if c.Contains(d) {
			return true
		}
	}
	// Cofactor the cover with respect to d, then check tautology.
	var cof []Cube
	for _, c := range cv.Cubes {
		if cc, ok := c.Cofactor(d); ok {
			cof = append(cof, cc)
		}
	}
	free := d.zero & d.one & maskN(cv.N) // variables still free in d
	return tautologyOn(cof, free, cv.N)
}

// Tautology reports whether the cover covers the entire space.
func (cv Cover) Tautology() bool {
	return tautologyOn(cv.Cubes, maskN(cv.N), cv.N)
}

// tautologyOn checks whether cubes cover all assignments of the variables in
// the freeVars mask (other variables are irrelevant: every cube is assumed
// dashed outside freeVars).
func tautologyOn(cubes []Cube, freeVars uint64, n int) bool {
	if len(cubes) == 0 {
		return freeVars == 0 && false // empty cover covers nothing (even a point space needs a cube)
	}
	// A full cube covers everything.
	for _, c := range cubes {
		if c.zero&freeVars == freeVars && c.one&freeVars == freeVars {
			return true
		}
	}
	// Pick a splitting variable: a free variable bound in some cube.
	split := -1
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		if freeVars&bit == 0 {
			continue
		}
		for _, c := range cubes {
			z := c.zero&bit != 0
			o := c.one&bit != 0
			if z != o {
				split = i
				break
			}
		}
		if split >= 0 {
			break
		}
	}
	if split < 0 {
		// All cubes dashed on all free variables but none full: since every
		// cube is dashed on every free var, any single cube covers the free
		// space.
		return true
	}
	bit := uint64(1) << uint(split)
	rest := freeVars &^ bit
	var c0, c1 []Cube
	for _, c := range cubes {
		if c.zero&bit != 0 {
			c0 = append(c0, c)
		}
		if c.one&bit != 0 {
			c1 = append(c1, c)
		}
	}
	return tautologyOn(c0, rest, n) && tautologyOn(c1, rest, n)
}

// Irredundant returns a cover with cubes removed that are contained in the
// union of the remaining cubes. Cubes with fewer literals (larger cubes) are
// preferred; the result is irredundant but not necessarily minimum.
func (cv Cover) Irredundant() Cover {
	cubes := append([]Cube(nil), cv.Cubes...)
	// Larger cubes first so small redundant cubes are dropped.
	sort.Slice(cubes, func(i, j int) bool { return cubes[i].Literals() < cubes[j].Literals() })
	for i := len(cubes) - 1; i >= 0; i-- {
		others := Cover{N: cv.N}
		others.Cubes = append(others.Cubes, cubes[:i]...)
		others.Cubes = append(others.Cubes, cubes[i+1:]...)
		if others.ContainsCube(cubes[i]) {
			cubes = append(cubes[:i], cubes[i+1:]...)
		}
	}
	return NewCover(cv.N, cubes...)
}

// Equal reports whether two covers denote the same Boolean function.
func (cv Cover) Equal(other Cover) bool {
	if cv.N != other.N {
		return false
	}
	for _, c := range cv.Cubes {
		if !other.ContainsCube(c) {
			return false
		}
	}
	for _, c := range other.Cubes {
		if !cv.ContainsCube(c) {
			return false
		}
	}
	return true
}

// String renders the cover as whitespace-separated cubes in a stable order.
func (cv Cover) String() string {
	ss := make([]string, len(cv.Cubes))
	for i, c := range cv.Cubes {
		ss[i] = c.String()
	}
	sort.Strings(ss)
	return strings.Join(ss, " ")
}

// Complement returns a cover of the complement of cv, computed by recursive
// Shannon expansion. Intended for the modest function sizes of controller
// synthesis.
func (cv Cover) Complement() Cover {
	res := complementRec(cv.Cubes, FullCube(cv.N), cv.N)
	return NewCover(cv.N, res...)
}

func complementRec(cubes []Cube, space Cube, n int) []Cube {
	if len(cubes) == 0 {
		return []Cube{space}
	}
	for _, c := range cubes {
		if c.Contains(space) {
			return nil
		}
	}
	// Split on a variable bound in some cube and free in space.
	split := -1
	for i := 0; i < n; i++ {
		if space.Get(i) != Dash {
			continue
		}
		for _, c := range cubes {
			if c.Get(i) == Zero || c.Get(i) == One {
				split = i
				break
			}
		}
		if split >= 0 {
			break
		}
	}
	if split < 0 {
		// All cubes dashed within space but none contains space: impossible
		// unless cubes are empty in space; treat as uncovered.
		return []Cube{space}
	}
	var out []Cube
	for _, v := range []Val{Zero, One} {
		sub := space.With(split, v)
		var kept []Cube
		for _, c := range cubes {
			if c.Get(split) == Dash || c.Get(split) == v {
				kept = append(kept, c)
			}
		}
		out = append(out, complementRec(kept, sub, n)...)
	}
	return out
}
