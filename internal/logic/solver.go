package logic

import "fmt"

// SolverVersion identifies the observable behaviour of the covering
// solvers (branching order, reductions, tie-breaks, cost weights). It is
// folded into internal/memo's cache key, so bumping it rejects persisted
// minimization results produced by older covering code instead of
// silently replaying them. Bump on ANY change that can alter a returned
// cover, even one of equal cost.
const SolverVersion = "covering-v2"

// Solver selects a covering backend. The zero value is SolverBB, the
// deterministic branch-and-bound reference whose answers define the
// canonical cover for every exact backend.
type Solver int

// Covering solver backends.
const (
	// SolverBB is the deterministic branch-and-bound reference solver
	// (bitset matrix, dual-ascent lower bound, dominance reductions).
	SolverBB Solver = iota
	// SolverPB is the pseudo-Boolean backend: SAT-style unit propagation
	// over the row clauses with incremental cost tightening.
	SolverPB
	// SolverGreedy is the non-exact greedy heuristic (best cost/coverage
	// ratio first).
	SolverGreedy
	// SolverPortfolio races SolverBB and SolverPB (both seeded by the
	// greedy incumbent) and cancels the loser; exact results are
	// bit-identical to SolverBB's.
	SolverPortfolio
)

func (s Solver) String() string {
	switch s {
	case SolverBB:
		return "bb"
	case SolverPB:
		return "pb"
	case SolverGreedy:
		return "greedy"
	case SolverPortfolio:
		return "portfolio"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// ParseSolver maps a CLI/API name to a Solver.
func ParseSolver(name string) (Solver, error) {
	switch name {
	case "", "bb":
		return SolverBB, nil
	case "pb":
		return SolverPB, nil
	case "greedy":
		return SolverGreedy, nil
	case "portfolio":
		return SolverPortfolio, nil
	default:
		return SolverBB, fmt.Errorf("logic: unknown covering solver %q (want bb, pb, greedy or portfolio)", name)
	}
}

// SolveWith dispatches to the selected backend. Greedy reports exact =
// false (its cover is feasible but unproven); the exact backends report
// whether the search completed within the step budget.
func (p *CoveringProblem) SolveWith(s Solver) (cols []int, exact bool) {
	switch s {
	case SolverPB:
		return p.SolvePB()
	case SolverGreedy:
		return p.SolveGreedy(), false
	case SolverPortfolio:
		return p.SolvePortfolio()
	default:
		return p.Solve()
	}
}
