package logic

import "math/bits"

// bitset is a fixed-width bit vector used by the covering solvers to
// represent row and column sets. All operations are allocation-free; the
// solvers pool and reuse bitsets across branch-and-bound nodes.
type bitset []uint64

func bitsetWords(n int) int { return (n + 63) / 64 }

func newBitset(n int) bitset { return make(bitset, bitsetWords(n)) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << uint(i&63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) popcount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) isEmpty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// subsetOf reports whether b ⊆ c.
func (b bitset) subsetOf(c bitset) bool {
	for i, w := range b {
		if w&^c[i] != 0 {
			return false
		}
	}
	return true
}

// andNot removes every bit of c from b in place.
func (b bitset) andNot(c bitset) {
	for i := range b {
		b[i] &^= c[i]
	}
}

// and intersects b with c in place.
func (b bitset) and(c bitset) {
	for i := range b {
		b[i] &= c[i]
	}
}

func (b bitset) copyFrom(c bitset) { copy(b, c) }

func (b bitset) setAll(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if n&63 != 0 {
		b[len(b)-1] = (uint64(1) << uint(n&63)) - 1
	}
}

// forEach calls fn for every set bit in ascending order.
func (b bitset) forEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			fn(i)
			w &= w - 1
		}
	}
}

// intersectionCount returns |b ∩ c| without materializing the result.
func (b bitset) intersectionCount(c bitset) int {
	n := 0
	for i, w := range b {
		n += bits.OnesCount64(w & c[i])
	}
	return n
}
