package logic

import (
	"sort"

	"repro/internal/obs"
)

// SolvePB solves the covering problem with the pseudo-Boolean backend: the
// instance is treated as a monotone SAT formula (one positive clause per
// row) with a linear cost objective. The search runs DPLL-style unit
// propagation with chronological backtracking and tightens the cost bound
// incrementally — every model found lowers the admissible cost strictly, so
// an exhausted search proves optimality. The returned cover is PB's own
// optimal model; use SolvePortfolio for covers bit-identical to Solve.
func (p *CoveringProblem) SolvePB() ([]int, bool) {
	cols, exact, _ := p.solvePB(p.Cancel)
	return cols, exact
}

// Ternary assignment values.
const (
	pbValueUnset int8 = 0
	pbValueTrue  int8 = 1
	pbValueFalse int8 = -1
)

// pbSearch is the PB/SAT solver state. Covering instances are monotone
// (all literals positive), which simplifies propagation: a row conflicts
// only when all of its columns are false, and becomes unit when exactly one
// non-false column remains while none is true.
type pbSearch struct {
	nRows, nCols int
	cost         []int
	rowList      [][]int // row → columns
	colList      [][]int // column → rows

	value   []int8
	satBy   []int // row → number of chosen (true) columns
	free    []int // row → number of non-false columns
	unsat   int   // rows with satBy == 0
	curCost int

	// Trail of assignments; decisions are flagged so chronological
	// backtracking can flip the most recent open decision to false.
	trail []int32
	isDec []bool

	queue []int32 // pending forced-true assignments (unit rows)

	best     []int
	bestCost int // strict upper bound: searching for cost < bestCost

	steps      int64
	nextCancel int64
	budget     int64
	cancel     func() error
	aborted    bool

	// Independent-row lower-bound scratch (epoch-stamped).
	used      []int64
	usedEpoch int64
}

// solvePB returns PB's optimal cover, whether the search completed, and the
// proven optimal cost (valid only when exact). The initial incumbent is the
// greedy cover, so even an aborted search returns a feasible cover.
func (p *CoveringProblem) solvePB(cancel func() error) (cols []int, exact bool, optCost int) {
	for _, r := range p.Rows {
		if len(r) == 0 {
			return nil, false, 0
		}
	}
	cost := p.unitOr()
	greedy := p.greedy(cost)
	s := &pbSearch{
		nRows:  len(p.Rows),
		nCols:  p.NumCols,
		cost:   cost,
		budget: int64(p.budget()),
		cancel: cancel,
	}
	s.rowList = make([][]int, s.nRows)
	s.colList = make([][]int, s.nCols)
	for r, row := range p.Rows {
		lst := append([]int(nil), row...)
		sort.Ints(lst)
		// Deduplicate defensively; duplicate entries would corrupt the
		// free/satBy counters.
		uniq := lst[:0]
		for i, c := range lst {
			if i == 0 || c != lst[i-1] {
				uniq = append(uniq, c)
			}
		}
		s.rowList[r] = uniq
		for _, c := range uniq {
			s.colList[c] = append(s.colList[c], r)
		}
	}
	s.value = make([]int8, s.nCols)
	s.satBy = make([]int, s.nRows)
	s.free = make([]int, s.nRows)
	for r := range s.free {
		s.free[r] = len(s.rowList[r])
	}
	s.unsat = s.nRows
	s.used = make([]int64, s.nCols)
	s.best = append([]int(nil), greedy...)
	s.bestCost = totalCost(greedy, cost)
	s.search()
	sort.Ints(s.best)
	obs.Add("solver/pb/solves", 1)
	obs.Add("solver/pb/steps", s.steps)
	return s.best, !s.aborted, s.bestCost
}

// assign pushes one assignment onto the trail and updates the row
// counters. Returns false on conflict (an unsatisfied row ran out of
// columns, or the partial cost can no longer beat the incumbent).
func (s *pbSearch) assign(c int32, val int8, decision bool) bool {
	s.steps++
	s.value[c] = val
	s.trail = append(s.trail, c)
	s.isDec = append(s.isDec, decision)
	ok := true
	if val == pbValueTrue {
		s.curCost += s.cost[c]
		for _, r := range s.colList[c] {
			if s.satBy[r] == 0 {
				s.unsat--
			}
			s.satBy[r]++
		}
		if s.curCost >= s.bestCost {
			ok = false
		}
	} else {
		for _, r := range s.colList[c] {
			s.free[r]--
			if s.satBy[r] == 0 {
				if s.free[r] == 0 {
					ok = false
				} else if s.free[r] == 1 {
					// Unit row: its last non-false column is forced true.
					s.queue = append(s.queue, int32(r))
				}
			}
		}
	}
	return ok
}

// unassign pops the top trail entry.
func (s *pbSearch) unassign() (c int32, wasDec bool, val int8) {
	n := len(s.trail) - 1
	c = s.trail[n]
	wasDec = s.isDec[n]
	s.trail = s.trail[:n]
	s.isDec = s.isDec[:n]
	val = s.value[c]
	s.value[c] = pbValueUnset
	if val == pbValueTrue {
		s.curCost -= s.cost[c]
		for _, r := range s.colList[c] {
			s.satBy[r]--
			if s.satBy[r] == 0 {
				s.unsat++
			}
		}
	} else {
		for _, r := range s.colList[c] {
			s.free[r]++
		}
	}
	return c, wasDec, val
}

// propagate drains the unit-row queue. Returns false on conflict.
func (s *pbSearch) propagate() bool {
	for len(s.queue) > 0 {
		r := int(s.queue[0])
		s.queue = s.queue[:copy(s.queue, s.queue[1:])]
		if s.satBy[r] > 0 || s.free[r] != 1 {
			continue // satisfied or re-touched since enqueued
		}
		forced := int32(-1)
		for _, c := range s.rowList[r] {
			if s.value[c] == pbValueUnset {
				forced = int32(c)
				break
			}
		}
		if forced < 0 {
			return false
		}
		if !s.assign(forced, pbValueTrue, false) {
			return false
		}
	}
	return true
}

// backtrack unwinds the trail to the most recent open decision and flips it
// to false (as a forced assignment). Returns false when no open decision
// remains: the search space is exhausted.
func (s *pbSearch) backtrack() bool {
	s.queue = s.queue[:0]
	for len(s.trail) > 0 {
		c, wasDec, val := s.unassign()
		if wasDec && val == pbValueTrue {
			return s.assign(c, pbValueFalse, false) && s.propagate()
		}
	}
	return false
}

// lowerBound is the independent-row bound over unsatisfied rows: rows
// sharing no unassigned column each need their cheapest unassigned column.
func (s *pbSearch) lowerBound() int {
	s.usedEpoch++
	epoch := s.usedEpoch
	lb := 0
	for r := 0; r < s.nRows; r++ {
		if s.satBy[r] > 0 {
			continue
		}
		indep := true
		minC := -1
		for _, c := range s.rowList[r] {
			if s.value[c] != pbValueUnset {
				continue
			}
			if s.used[c] == epoch {
				indep = false
				break
			}
			if minC < 0 || s.cost[c] < minC {
				minC = s.cost[c]
			}
		}
		if !indep || minC < 0 {
			continue
		}
		for _, c := range s.rowList[r] {
			if s.value[c] == pbValueUnset {
				s.used[c] = epoch
			}
		}
		lb += minC
	}
	return lb
}

// decide picks the unassigned column covering the most unsatisfied rows per
// unit cost (ties: lowest index) and assigns it true as a decision.
func (s *pbSearch) decide() bool {
	bestCol, bestScore := int32(-1), -1.0
	for c := 0; c < s.nCols; c++ {
		if s.value[c] != pbValueUnset {
			continue
		}
		cnt := 0
		for _, r := range s.colList[c] {
			if s.satBy[r] == 0 {
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		if score := float64(cnt) / float64(s.cost[c]); score > bestScore {
			bestScore, bestCol = score, int32(c)
		}
	}
	if bestCol < 0 {
		// No unassigned column touches an unsatisfied row; with unsat > 0
		// this is a conflict (should have been caught by propagation).
		return false
	}
	return s.assign(bestCol, pbValueTrue, true)
}

func (s *pbSearch) search() {
	conflict := false
	for {
		if s.steps > s.budget {
			s.aborted = true
			return
		}
		if s.cancel != nil && s.steps >= s.nextCancel {
			s.nextCancel = s.steps + cancelCheckInterval
			if s.cancel() != nil {
				s.aborted = true
				return
			}
		}
		if conflict {
			if !s.backtrack() {
				if len(s.trail) == 0 {
					return // exhausted: best is proven optimal
				}
				continue // flip caused a new conflict; backtrack again
			}
			conflict = false
			continue
		}
		if s.unsat == 0 {
			// Model found. Cost tightening: record it, require strictly
			// cheaper covers from now on, and continue as if conflicting.
			s.best = s.best[:0]
			for c := 0; c < s.nCols; c++ {
				if s.value[c] == pbValueTrue {
					s.best = append(s.best, c)
				}
			}
			s.bestCost = s.curCost
			conflict = true
			continue
		}
		if s.curCost+s.lowerBound() >= s.bestCost {
			conflict = true
			continue
		}
		if !s.decide() || !s.propagate() {
			conflict = true
		}
	}
}
