package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoverContainsMinterm(t *testing.T) {
	cv := MustCover(3, "0-- 11-")
	if !cv.ContainsMinterm(MustCube("010")) {
		t.Error("010 should be covered")
	}
	if cv.ContainsMinterm(MustCube("101")) {
		t.Error("101 should not be covered")
	}
}

func TestCoverContainsCube(t *testing.T) {
	// Union of 0-- and 1-- is the universe.
	cv := MustCover(3, "0-- 1--")
	if !cv.ContainsCube(FullCube(3)) {
		t.Error("universe should be covered by the two halves")
	}
	// No single cube contains ---, so this exercises the Shannon path.
	cv2 := MustCover(2, "0- 11")
	if !cv2.ContainsCube(MustCube("-1")) {
		t.Error("-1 covered by 0- ∪ 11")
	}
	if cv2.ContainsCube(MustCube("1-")) {
		t.Error("1- not fully covered (10 missing)")
	}
}

func TestCoverTautology(t *testing.T) {
	if !MustCover(2, "0- 1-").Tautology() {
		t.Error("0- ∪ 1- is a tautology")
	}
	if MustCover(2, "0- 11").Tautology() {
		t.Error("missing 10: not a tautology")
	}
	if !MustCover(3, "--1 --0").Tautology() {
		t.Error("--1 ∪ --0 is a tautology")
	}
}

func TestCoverIrredundant(t *testing.T) {
	// 01 is inside 0-, so it must be dropped.
	cv := MustCover(2, "0- 01")
	ir := cv.Irredundant()
	if ir.Len() != 1 {
		t.Fatalf("irredundant len = %d, want 1", ir.Len())
	}
	if ir.Cubes[0].String() != "0-" {
		t.Errorf("kept %s, want 0-", ir.Cubes[0])
	}
	// A cube covered only by the union of two others is also redundant.
	cv2 := MustCover(2, "0- 1- -1")
	ir2 := cv2.Irredundant()
	if ir2.Len() != 2 {
		t.Errorf("irredundant len = %d, want 2 (got %s)", ir2.Len(), ir2)
	}
}

func TestCoverComplement(t *testing.T) {
	cv := MustCover(3, "1--")
	comp := cv.Complement()
	if !comp.ContainsCube(MustCube("0--")) {
		t.Error("complement of 1-- must cover 0--")
	}
	if comp.IntersectsCube(MustCube("1--")) {
		// Complement cubes must be disjoint from the original.
		for _, c := range comp.Cubes {
			if c.Intersects(MustCube("1--")) {
				t.Errorf("complement cube %s intersects original", c)
			}
		}
	}
}

func TestCoverComplementEmpty(t *testing.T) {
	comp := NewCover(2).Complement()
	if !comp.Tautology() {
		t.Error("complement of empty cover is the universe")
	}
	full := MustCover(2, "--").Complement()
	if full.Len() != 0 {
		t.Errorf("complement of universe = %s, want empty", full)
	}
}

func TestCoverLiterals(t *testing.T) {
	cv := MustCover(4, "01-- --11")
	if l := cv.Literals(); l != 4 {
		t.Errorf("literals = %d, want 4", l)
	}
	if cv.Len() != 2 {
		t.Errorf("len = %d, want 2", cv.Len())
	}
}

func TestCoverEqual(t *testing.T) {
	a := MustCover(2, "0- 1-")
	b := MustCover(2, "--")
	if !a.Equal(b) {
		t.Error("0- ∪ 1- equals universe")
	}
	c := MustCover(2, "0-")
	if a.Equal(c) {
		t.Error("halves are not equal to one half")
	}
}

func randomCover(r *rand.Rand, n, k int) Cover {
	cv := Cover{N: n}
	for i := 0; i < k; i++ {
		cv.Add(randomCube(r, n))
	}
	return cv
}

func TestQuickComplementPartitions(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(8)
		cv := randomCover(rr, n, 1+rr.Intn(4))
		comp := cv.Complement()
		// Every minterm is in exactly one of cv, comp.
		ok := true
		FullCube(n).Minterms(func(m Cube) bool {
			in, out := cv.ContainsMinterm(m), comp.ContainsMinterm(m)
			if in == out {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickIrredundantPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(8)
		cv := randomCover(rr, n, 1+rr.Intn(6))
		ir := cv.Irredundant()
		return cv.Equal(ir)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickContainsCubeAgainstMinterms(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(7)
		cv := randomCover(rr, n, 1+rr.Intn(4))
		d := randomCube(rr, n)
		want := true
		d.Minterms(func(m Cube) bool {
			if !cv.ContainsMinterm(m) {
				want = false
				return false
			}
			return true
		})
		return cv.ContainsCube(d) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
