package logic

import (
	"errors"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/par"
)

// errRaceLost cancels a portfolio leg whose result can no longer matter.
var errRaceLost = errors.New("logic: covering race lost")

// SolvePortfolio races the branch-and-bound and pseudo-Boolean backends on
// the internal/par pool and returns the first proven-optimal answer,
// cancelling the loser. Results are deterministic and bit-identical to
// sequential Solve whenever Solve is exact:
//
//   - B&B finishes first: its cover is canonical by construction, and the
//     still-running PB leg is cancelled.
//   - PB finishes first: its proven optimal cost is published to the B&B
//     leg, which stops as soon as its incumbent reaches that cost — the
//     incumbent is then the first optimal cover in B&B's fixed branch
//     order, i.e. exactly Solve's answer. If B&B instead exhausts its step
//     budget, a guided B&B re-run (upper bound optCost+1, stopping at the
//     first cover of the proven cost) reconstructs the canonical cover.
//
// Inexact outcomes (both legs hit their budget) return the B&B leg's best
// incumbent, matching sequential Solve's fallback behaviour.
func (p *CoveringProblem) SolvePortfolio() (cols []int, exact bool) {
	for _, r := range p.Rows {
		if len(r) == 0 {
			return nil, false
		}
	}
	obs.Add("solver/portfolio/solves", 1)

	// hint carries PB's proven optimal cost to the B&B leg (-1 until
	// proven). raceLost[i] flips when leg i's result can no longer matter.
	var hint atomic.Int64
	hint.Store(-1)
	var raceLost [2]atomic.Bool
	legCancel := func(i int) func() error {
		return func() error {
			if raceLost[i].Load() {
				return errRaceLost
			}
			if p.Cancel != nil {
				return p.Cancel()
			}
			return nil
		}
	}

	type legResult struct {
		cols     []int
		exact    bool
		usedHint bool
		optCost  int
	}
	const (
		legBB = 0
		legPB = 1
	)
	results, _ := par.NamedMap("covering-race", 2, []int{legBB, legPB}, func(_ int, leg int) (legResult, error) {
		switch leg {
		case legBB:
			cols, exact, usedHint := p.solveBB(legCancel(legBB), &hint)
			if exact && !usedHint {
				// B&B won outright; PB's proof is no longer needed.
				raceLost[legPB].Store(true)
			}
			return legResult{cols: cols, exact: exact, usedHint: usedHint}, nil
		default:
			cols, exact, optCost := p.solvePB(legCancel(legPB))
			if exact {
				// Publish the proven optimum; the B&B leg early-stops once
				// its incumbent matches it.
				hint.Store(int64(optCost))
			}
			return legResult{cols: cols, exact: exact, optCost: optCost}, nil
		}
	})
	bb, pb := results[legBB], results[legPB]

	switch {
	case bb.exact && !bb.usedHint:
		obs.Add("solver/bb/wins", 1)
		obs.Add("solver/cancels", 1) // PB leg cancelled
		return bb.cols, true
	case bb.exact && bb.usedHint:
		// PB proved the optimum first; B&B's early-stopped incumbent is
		// the canonical cover.
		obs.Add("solver/pb/wins", 1)
		return bb.cols, true
	case pb.exact:
		// B&B blew its budget but PB proved the optimal cost: reconstruct
		// the canonical cover with a guided B&B run.
		obs.Add("solver/pb/wins", 1)
		cols, exact := p.solveBBGuided(p.Cancel, pb.optCost)
		return cols, exact
	default:
		// Neither leg completed; fall back to B&B's incumbent, which
		// matches sequential Solve's inexact fallback.
		return bb.cols, false
	}
}
