// Package logic provides two-level Boolean logic primitives: cubes, covers,
// cube expansion and prime generation. It is the substrate for the
// hazard-free minimizer in internal/hfmin and the burst-mode synthesizer in
// internal/synth.
//
// A cube over n variables (n <= 64) assigns each variable one of the values
// 0, 1 or '-' (don't care). Cubes are represented positionally: bit i of the
// zero mask means "variable i may be 0", bit i of the one mask means
// "variable i may be 1". A variable with both bits set is a don't care; a
// variable with neither bit set makes the cube empty.
package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars is the maximum number of variables supported by a Cube.
const MaxVars = 64

// Val is the value of a single variable position in a cube.
type Val uint8

// Variable values within a cube.
const (
	Zero Val = iota // variable must be 0
	One             // variable must be 1
	Dash            // variable is unconstrained
	None            // contradictory position (cube is empty)
)

func (v Val) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case Dash:
		return "-"
	default:
		return "!"
	}
}

// Cube is a product term over up to 64 variables. The zero value is the
// empty cube over zero variables; use FullCube or ParseCube to construct
// useful cubes.
type Cube struct {
	zero uint64 // bit i set: variable i may take value 0
	one  uint64 // bit i set: variable i may take value 1
	n    uint8  // number of variables
}

// FullCube returns the universal cube (all variables don't care) over n
// variables.
func FullCube(n int) Cube {
	checkN(n)
	m := maskN(n)
	return Cube{zero: m, one: m, n: uint8(n)}
}

// EmptyCube returns an empty (contradictory) cube over n variables.
func EmptyCube(n int) Cube {
	checkN(n)
	return Cube{n: uint8(n)}
}

func checkN(n int) {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("logic: variable count %d out of range [0,%d]", n, MaxVars))
	}
}

func maskN(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// ParseCube parses a positional cube string such as "01-0". Characters other
// than '0', '1' and '-' are rejected.
func ParseCube(s string) (Cube, error) {
	if len(s) > MaxVars {
		return Cube{}, fmt.Errorf("logic: cube %q exceeds %d variables", s, MaxVars)
	}
	c := FullCube(len(s))
	for i, r := range s {
		switch r {
		case '0':
			c = c.With(i, Zero)
		case '1':
			c = c.With(i, One)
		case '-':
			// already dash
		default:
			return Cube{}, fmt.Errorf("logic: invalid character %q in cube %q", r, s)
		}
	}
	return c, nil
}

// MustCube is ParseCube that panics on error; intended for tests and
// literals.
func MustCube(s string) Cube {
	c, err := ParseCube(s)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of variables of the cube.
func (c Cube) N() int { return int(c.n) }

// Get returns the value of variable i.
func (c Cube) Get(i int) Val {
	c.checkIdx(i)
	z := c.zero >> uint(i) & 1
	o := c.one >> uint(i) & 1
	switch {
	case z == 1 && o == 1:
		return Dash
	case z == 1:
		return Zero
	case o == 1:
		return One
	default:
		return None
	}
}

// With returns a copy of c with variable i set to v.
func (c Cube) With(i int, v Val) Cube {
	c.checkIdx(i)
	bit := uint64(1) << uint(i)
	c.zero &^= bit
	c.one &^= bit
	switch v {
	case Zero:
		c.zero |= bit
	case One:
		c.one |= bit
	case Dash:
		c.zero |= bit
		c.one |= bit
	case None:
		// leave both clear
	}
	return c
}

func (c Cube) checkIdx(i int) {
	if i < 0 || i >= int(c.n) {
		panic(fmt.Sprintf("logic: variable index %d out of range [0,%d)", i, c.n))
	}
}

// IsEmpty reports whether the cube denotes the empty set (some variable has
// no allowed value).
func (c Cube) IsEmpty() bool {
	m := maskN(int(c.n))
	return (c.zero|c.one)&m != m
}

// IsFull reports whether every variable is a don't care.
func (c Cube) IsFull() bool {
	m := maskN(int(c.n))
	return c.zero&m == m && c.one&m == m
}

// IsMinterm reports whether every variable is bound to 0 or 1.
func (c Cube) IsMinterm() bool {
	return !c.IsEmpty() && c.zero&c.one == 0
}

// Literals returns the number of bound variables (literals) of the cube.
func (c Cube) Literals() int {
	m := maskN(int(c.n))
	both := c.zero & c.one & m
	return int(c.n) - popcount(both)
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

// Contains reports whether c contains d (d is a subcube of c). An empty d is
// contained in everything of the same arity.
func (c Cube) Contains(d Cube) bool {
	c.checkArity(d)
	if d.IsEmpty() {
		return true
	}
	return d.zero&^c.zero == 0 && d.one&^c.one == 0
}

// ContainsMinterm is Contains specialized for minterms; it has identical
// semantics but documents intent at call sites.
func (c Cube) ContainsMinterm(m Cube) bool { return c.Contains(m) }

func (c Cube) checkArity(d Cube) {
	if c.n != d.n {
		panic(fmt.Sprintf("logic: arity mismatch %d vs %d", c.n, d.n))
	}
}

// Intersect returns the intersection cube of c and d. The result may be
// empty; use IsEmpty to test.
func (c Cube) Intersect(d Cube) Cube {
	c.checkArity(d)
	return Cube{zero: c.zero & d.zero, one: c.one & d.one, n: c.n}
}

// Intersects reports whether c and d have a common point.
func (c Cube) Intersects(d Cube) bool {
	return !c.Intersect(d).IsEmpty()
}

// Supercube returns the smallest cube containing both c and d. Empty
// operands are ignored.
func (c Cube) Supercube(d Cube) Cube {
	c.checkArity(d)
	if c.IsEmpty() {
		return d
	}
	if d.IsEmpty() {
		return c
	}
	return Cube{zero: c.zero | d.zero, one: c.one | d.one, n: c.n}
}

// Distance returns the number of variables on which c and d conflict (one
// requires 0, the other requires 1). Distance 0 means the cubes intersect.
func (c Cube) Distance(d Cube) int {
	c.checkArity(d)
	m := maskN(int(c.n))
	i := Cube{zero: c.zero & d.zero, one: c.one & d.one, n: c.n}
	empty := ^(i.zero | i.one) & m
	return popcount(empty)
}

// Cofactor returns the cofactor of c with respect to cube d (the Shannon
// cofactor generalized to cubes), and reports whether it is non-empty.
// Variables bound in d become don't cares in the result.
func (c Cube) Cofactor(d Cube) (Cube, bool) {
	c.checkArity(d)
	if c.Distance(d) > 0 {
		return EmptyCube(int(c.n)), false
	}
	m := maskN(int(c.n))
	// Variables where d is bound are freed in the cofactor.
	boundD := ^(d.zero & d.one) & m
	res := Cube{
		zero: c.zero | boundD&m,
		one:  c.one | boundD&m,
		n:    c.n,
	}
	// For variables bound in d, the cofactor is over the remaining variables;
	// representing them as dashes is the standard convention.
	return res, true
}

// BoundVars returns a bitmask of the variables bound (to 0 or 1) in c.
func (c Cube) BoundVars() uint64 {
	m := maskN(int(c.n))
	return ^(c.zero & c.one) & m
}

// Free returns a copy of c with variable i set to don't care.
func (c Cube) Free(i int) Cube { return c.With(i, Dash) }

// Size returns the number of minterms in the cube (2^#dashes), or 0 if
// empty.
func (c Cube) Size() uint64 {
	if c.IsEmpty() {
		return 0
	}
	dashes := popcount(c.zero & c.one & maskN(int(c.n)))
	return uint64(1) << uint(dashes)
}

// Equal reports whether c and d denote the same cube. All empty cubes of the
// same arity compare equal.
func (c Cube) Equal(d Cube) bool {
	if c.n != d.n {
		return false
	}
	if c.IsEmpty() && d.IsEmpty() {
		return true
	}
	return c.zero == d.zero && c.one == d.one
}

// String renders the cube positionally, e.g. "01-0".
func (c Cube) String() string {
	var b strings.Builder
	for i := 0; i < int(c.n); i++ {
		b.WriteString(c.Get(i).String())
	}
	return b.String()
}

// Minterms enumerates all minterms of the cube, calling fn for each; it
// stops early if fn returns false. Intended for small cubes (tests,
// validation).
func (c Cube) Minterms(fn func(Cube) bool) {
	if c.IsEmpty() {
		return
	}
	var rec func(cur Cube, i int) bool
	rec = func(cur Cube, i int) bool {
		if i == int(c.n) {
			return fn(cur)
		}
		switch cur.Get(i) {
		case Dash:
			if !rec(cur.With(i, Zero), i+1) {
				return false
			}
			return rec(cur.With(i, One), i+1)
		default:
			return rec(cur, i+1)
		}
	}
	rec(c, 0)
}

// Key returns a comparable key for use in maps; cubes with equal Key are
// Equal, except that distinct empty cubes may have distinct keys (normalize
// with EmptyCube first if needed).
func (c Cube) Key() [2]uint64 { return [2]uint64{c.zero, c.one} }

// Raw exposes the positional bit masks of the cube (bit i of zero: variable
// i may be 0; bit i of one: variable i may be 1) for bit-faithful hashing
// and serialization. RawCube is the inverse.
func (c Cube) Raw() (zero, one uint64) { return c.zero, c.one }

// RawCube reconstructs a cube from the representation exposed by Raw. It
// rejects out-of-range variable counts and masks with bits beyond the
// variable count, so corrupt serialized cubes cannot round-trip.
func RawCube(zero, one uint64, n int) (Cube, error) {
	if n < 0 || n > MaxVars {
		return Cube{}, fmt.Errorf("logic: variable count %d out of range [0,%d]", n, MaxVars)
	}
	m := maskN(n)
	if zero&^m != 0 || one&^m != 0 {
		return Cube{}, fmt.Errorf("logic: raw cube masks %#x/%#x exceed %d variables", zero, one, n)
	}
	return Cube{zero: zero, one: one, n: uint8(n)}, nil
}
