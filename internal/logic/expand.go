package logic

import "sort"

// MaxExpansions caps the number of maximal expansions enumerated for a
// single cube; pathological blocking structures are truncated (the greedy
// largest-first expansions are kept).
const MaxExpansions = 4096

// Expansions returns all maximal supercubes of seed that are disjoint from
// every cube of off. These are exactly the prime implicants of the function
// complement(off) that contain seed.
//
// The computation reduces to enumerating the minimal hitting sets of the
// "blocking matrix": for each off cube o intersected with the current
// expansion candidate, at least one variable on which seed conflicts with o
// must keep its literal. Enumeration is capped at MaxExpansions.
func Expansions(seed Cube, off Cover) []Cube {
	if seed.IsEmpty() {
		return nil
	}
	n := seed.N()
	// Variables bound in seed are the candidates for raising.
	var boundVars []int
	for i := 0; i < n; i++ {
		if seed.Get(i) != Dash {
			boundVars = append(boundVars, i)
		}
	}
	// Build blocking rows: for each off cube, the set of seed variables that
	// separate it (conflicting literal). An off cube with no separating
	// variable intersects seed itself: no expansion exists.
	free := seed
	for _, v := range boundVars {
		free = free.Free(v)
	}
	var rows [][]int
	for _, o := range off.Cubes {
		if !o.Intersects(free) {
			continue // off cube cannot be reached even fully expanded
		}
		var row []int
		for _, v := range boundVars {
			sv, ov := seed.Get(v), o.Get(v)
			if (sv == Zero && ov == One) || (sv == One && ov == Zero) {
				row = append(row, v)
			}
		}
		if len(row) == 0 {
			return nil // seed intersects the off-set
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return []Cube{FullCube(n)}
	}
	hs := minimalHittingSets(rows, MaxExpansions)
	out := make([]Cube, 0, len(hs))
	for _, keep := range hs {
		c := seed
		for _, v := range boundVars {
			if !keep[v] {
				c = c.Free(v)
			}
		}
		out = append(out, c)
	}
	return out
}

// minimalHittingSets enumerates minimal hitting sets of the given rows
// (each row is a set of variable indices; a hitting set picks at least one
// element of every row). The result is a list of "keep" sets. Enumeration is
// capped at limit.
func minimalHittingSets(rows [][]int, limit int) []map[int]bool {
	// Sort rows by size: small rows first prunes better.
	sorted := append([][]int(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) < len(sorted[j]) })

	var results []map[int]bool
	var rec func(idx int, chosen map[int]bool)
	rec = func(idx int, chosen map[int]bool) {
		if len(results) >= limit {
			return
		}
		// Skip rows already hit.
		for idx < len(sorted) {
			hit := false
			for _, v := range sorted[idx] {
				if chosen[v] {
					hit = true
					break
				}
			}
			if !hit {
				break
			}
			idx++
		}
		if idx == len(sorted) {
			// Candidate complete; check minimality against found sets and
			// record. Supersets of existing results are discarded.
			for _, r := range results {
				if subset(r, chosen) {
					return
				}
			}
			cp := make(map[int]bool, len(chosen))
			for k, v := range chosen {
				if v {
					cp[k] = true
				}
			}
			// Remove any previously found supersets of cp.
			var kept []map[int]bool
			for _, r := range results {
				if !subset(cp, r) {
					kept = append(kept, r)
				}
			}
			results = append(kept, cp)
			return
		}
		for _, v := range sorted[idx] {
			if chosen[v] {
				continue
			}
			chosen[v] = true
			rec(idx+1, chosen)
			delete(chosen, v)
			if len(results) >= limit {
				return
			}
		}
	}
	rec(0, map[int]bool{})
	return results
}

func subset(a, b map[int]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// PrimesContaining returns all prime implicants of the function whose
// off-set is off (with everything else on or don't-care) that contain at
// least one of the seed cubes. Duplicates are removed.
func PrimesContaining(seeds []Cube, off Cover) []Cube {
	seen := map[[2]uint64]bool{}
	var out []Cube
	for _, s := range seeds {
		for _, p := range Expansions(s, off) {
			k := p.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, p)
			}
		}
	}
	// Drop non-maximal cubes (a cube from one seed may be contained in an
	// expansion of another seed).
	var maximal []Cube
	for i, p := range out {
		contained := false
		for j, q := range out {
			if i != j && q.Contains(p) && !p.Contains(q) {
				contained = true
				break
			}
		}
		if !contained {
			maximal = append(maximal, p)
		}
	}
	// Deduplicate equal cubes kept twice by the asymmetric test above.
	seen = map[[2]uint64]bool{}
	var uniq []Cube
	for _, p := range maximal {
		if !seen[p.Key()] {
			seen[p.Key()] = true
			uniq = append(uniq, p)
		}
	}
	return uniq
}
