package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseCube(t *testing.T) {
	c, err := ParseCube("01-0")
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 {
		t.Fatalf("N = %d, want 4", c.N())
	}
	want := []Val{Zero, One, Dash, Zero}
	for i, w := range want {
		if got := c.Get(i); got != w {
			t.Errorf("Get(%d) = %v, want %v", i, got, w)
		}
	}
	if s := c.String(); s != "01-0" {
		t.Errorf("String = %q", s)
	}
}

func TestParseCubeError(t *testing.T) {
	if _, err := ParseCube("01x"); err == nil {
		t.Error("expected error for invalid character")
	}
}

func TestCubeEmptyFull(t *testing.T) {
	if !EmptyCube(4).IsEmpty() {
		t.Error("EmptyCube not empty")
	}
	if !FullCube(4).IsFull() {
		t.Error("FullCube not full")
	}
	if FullCube(4).IsEmpty() {
		t.Error("FullCube empty")
	}
	if MustCube("01-0").IsEmpty() || MustCube("01-0").IsFull() {
		t.Error("ordinary cube misclassified")
	}
}

func TestCubeWithNone(t *testing.T) {
	c := MustCube("1-").With(0, None)
	if !c.IsEmpty() {
		t.Error("cube with None position should be empty")
	}
}

func TestCubeContains(t *testing.T) {
	cases := []struct {
		big, small string
		want       bool
	}{
		{"--", "01", true},
		{"0-", "01", true},
		{"0-", "11", false},
		{"01", "01", true},
		{"01", "0-", false},
		{"1-0-", "110-", true},
	}
	for _, tc := range cases {
		if got := MustCube(tc.big).Contains(MustCube(tc.small)); got != tc.want {
			t.Errorf("%s.Contains(%s) = %v, want %v", tc.big, tc.small, got, tc.want)
		}
	}
}

func TestCubeIntersect(t *testing.T) {
	a, b := MustCube("0--1"), MustCube("-10-")
	i := a.Intersect(b)
	if i.String() != "0101" {
		t.Errorf("intersect = %s", i)
	}
	c := MustCube("1---")
	if a.Intersects(c) {
		t.Error("disjoint cubes report intersection")
	}
	if !a.Intersect(c).IsEmpty() {
		t.Error("intersection of disjoint cubes not empty")
	}
}

func TestCubeSupercube(t *testing.T) {
	a, b := MustCube("010"), MustCube("011")
	if s := a.Supercube(b); s.String() != "01-" {
		t.Errorf("supercube = %s", s)
	}
	// Supercube with empty is identity.
	if s := a.Supercube(EmptyCube(3)); !s.Equal(a) {
		t.Errorf("supercube with empty = %s", s)
	}
}

func TestCubeDistance(t *testing.T) {
	if d := MustCube("00").Distance(MustCube("11")); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
	if d := MustCube("0-").Distance(MustCube("-1")); d != 0 {
		t.Errorf("distance = %d, want 0", d)
	}
}

func TestCubeLiterals(t *testing.T) {
	if l := MustCube("01--1").Literals(); l != 3 {
		t.Errorf("literals = %d, want 3", l)
	}
	if l := FullCube(5).Literals(); l != 0 {
		t.Errorf("full cube literals = %d", l)
	}
}

func TestCubeSize(t *testing.T) {
	if s := MustCube("0--").Size(); s != 4 {
		t.Errorf("size = %d, want 4", s)
	}
	if s := EmptyCube(3).Size(); s != 0 {
		t.Errorf("empty size = %d", s)
	}
}

func TestCubeMinterms(t *testing.T) {
	var got []string
	MustCube("0-1").Minterms(func(m Cube) bool {
		got = append(got, m.String())
		return true
	})
	if len(got) != 2 || got[0] != "001" || got[1] != "011" {
		t.Errorf("minterms = %v", got)
	}
}

func TestCubeCofactor(t *testing.T) {
	c := MustCube("01-")
	d := MustCube("0--")
	cf, ok := c.Cofactor(d)
	if !ok {
		t.Fatal("cofactor should exist")
	}
	// Variable 0 freed, others kept.
	if cf.String() != "-1-" {
		t.Errorf("cofactor = %s", cf)
	}
	if _, ok := MustCube("1--").Cofactor(MustCube("0--")); ok {
		t.Error("cofactor of conflicting cubes should not exist")
	}
}

// randomCube builds a valid random cube over n variables.
func randomCube(r *rand.Rand, n int) Cube {
	c := FullCube(n)
	for i := 0; i < n; i++ {
		switch r.Intn(3) {
		case 0:
			c = c.With(i, Zero)
		case 1:
			c = c.With(i, One)
		}
	}
	return c
}

func TestQuickSupercubeContainsBoth(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(12)
		a, b := randomCube(rr, n), randomCube(rr, n)
		s := a.Supercube(b)
		return s.Contains(a) && s.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectionContained(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(12)
		a, b := randomCube(rr, n), randomCube(rr, n)
		i := a.Intersect(b)
		if i.IsEmpty() {
			return a.Distance(b) > 0
		}
		return a.Contains(i) && b.Contains(i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickContainsTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(10)
		a := randomCube(rr, n)
		b := a
		// Shrink b: bind some dashes.
		for i := 0; i < n; i++ {
			if b.Get(i) == Dash && rr.Intn(2) == 0 {
				if rr.Intn(2) == 0 {
					b = b.With(i, Zero)
				} else {
					b = b.With(i, One)
				}
			}
		}
		c := b
		for i := 0; i < n; i++ {
			if c.Get(i) == Dash && rr.Intn(2) == 0 {
				c = c.With(i, One)
			}
		}
		return a.Contains(b) && b.Contains(c) && a.Contains(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceZeroIffIntersects(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(12)
		a, b := randomCube(rr, n), randomCube(rr, n)
		return (a.Distance(b) == 0) == a.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
