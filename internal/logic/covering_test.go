package logic

import (
	"math/rand"
	"sort"
	"testing"
)

func TestCoveringEssential(t *testing.T) {
	p := &CoveringProblem{
		NumCols: 3,
		Rows:    [][]int{{0}, {0, 1}, {2}},
	}
	cols, exact := p.Solve()
	if !exact {
		t.Error("tiny problem should be exact")
	}
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Errorf("cols = %v, want [0 2]", cols)
	}
}

func TestCoveringInfeasible(t *testing.T) {
	p := &CoveringProblem{NumCols: 2, Rows: [][]int{{0}, {}}}
	if cols, _ := p.Solve(); cols != nil {
		t.Errorf("infeasible problem returned %v", cols)
	}
}

func TestCoveringPrefersCheap(t *testing.T) {
	// Row coverable by col0 (cost 10) or col1 (cost 1).
	p := &CoveringProblem{
		NumCols: 2,
		Rows:    [][]int{{0, 1}},
		Cost:    []int{10, 1},
	}
	cols, exact := p.Solve()
	if !exact || len(cols) != 1 || cols[0] != 1 {
		t.Errorf("cols = %v exact=%v, want [1] true", cols, exact)
	}
}

func TestCoveringBeatsGreedy(t *testing.T) {
	// Classic greedy trap: greedy picks the big column first, then needs two
	// more; optimum is two columns.
	p := &CoveringProblem{
		NumCols: 3,
		Rows: [][]int{
			{0, 1}, {0, 1}, {0, 2}, {0, 2}, {1}, {2},
		},
	}
	cols, exact := p.Solve()
	if !exact {
		t.Fatal("should be exact")
	}
	if len(cols) != 2 {
		t.Errorf("cols = %v, want size 2 ({1,2})", cols)
	}
}

func TestCoveringRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		nc := 2 + r.Intn(5)
		nr := 1 + r.Intn(6)
		p := &CoveringProblem{NumCols: nc}
		for i := 0; i < nr; i++ {
			var row []int
			for c := 0; c < nc; c++ {
				if r.Intn(2) == 0 {
					row = append(row, c)
				}
			}
			if len(row) == 0 {
				row = []int{r.Intn(nc)}
			}
			p.Rows = append(p.Rows, row)
		}
		cols, exact := p.Solve()
		if !exact {
			t.Fatalf("small random problem inexact: %+v", p)
		}
		best := bruteForceCover(p)
		if len(cols) != best {
			t.Errorf("iter %d: solver found %d cols, brute force %d (rows %v)", iter, len(cols), best, p.Rows)
		}
		// Verify it is actually a cover.
		chosen := map[int]bool{}
		for _, c := range cols {
			chosen[c] = true
		}
		for _, row := range p.Rows {
			hit := false
			for _, c := range row {
				if chosen[c] {
					hit = true
				}
			}
			if !hit {
				t.Fatalf("iter %d: returned set %v does not cover row %v", iter, cols, row)
			}
		}
	}
}

func bruteForceCover(p *CoveringProblem) int {
	best := p.NumCols + 1
	for mask := 0; mask < 1<<uint(p.NumCols); mask++ {
		ok := true
		for _, row := range p.Rows {
			hit := false
			for _, c := range row {
				if mask&(1<<uint(c)) != 0 {
					hit = true
					break
				}
			}
			if !hit {
				ok = false
				break
			}
		}
		if ok {
			n := 0
			for m := mask; m != 0; m &= m - 1 {
				n++
			}
			if n < best {
				best = n
			}
		}
	}
	return best
}

func TestCoveringResultSorted(t *testing.T) {
	p := &CoveringProblem{NumCols: 4, Rows: [][]int{{3}, {1}, {0}}}
	cols, _ := p.Solve()
	if !sort.IntsAreSorted(cols) {
		t.Errorf("cols not sorted: %v", cols)
	}
}
