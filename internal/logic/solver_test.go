package logic

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"reflect"
	"testing"
)

// randomProblem builds a feasible random covering instance with weighted
// costs in the shape hfmin produces (large product weight + literal count).
func randomProblem(r *rand.Rand, nRows, nCols int) *CoveringProblem {
	p := &CoveringProblem{NumCols: nCols, Cost: make([]int, nCols)}
	for c := 0; c < nCols; c++ {
		p.Cost[c] = 1<<12 + r.Intn(12)
	}
	for i := 0; i < nRows; i++ {
		var row []int
		for c := 0; c < nCols; c++ {
			if r.Intn(4) == 0 {
				row = append(row, c)
			}
		}
		if len(row) == 0 {
			row = []int{r.Intn(nCols)}
		}
		p.Rows = append(p.Rows, row)
	}
	return p
}

func coverCost(p *CoveringProblem, cols []int) int {
	t := 0
	for _, c := range cols {
		if p.Cost != nil {
			t += p.Cost[c]
		} else {
			t++
		}
	}
	return t
}

func assertIsCover(t *testing.T, p *CoveringProblem, cols []int, who string) {
	t.Helper()
	chosen := map[int]bool{}
	for _, c := range cols {
		chosen[c] = true
	}
	for ri, row := range p.Rows {
		hit := false
		for _, c := range row {
			if chosen[c] {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("%s: returned set %v does not cover row %d (%v)", who, cols, ri, row)
		}
	}
}

// TestSolverCrossCheck is the covering-solver cross-check corpus: on random
// weighted instances every exact backend must agree on the optimal cover
// cost, and the portfolio must reproduce sequential B&B's cover
// bit-identically.
func TestSolverCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 120; iter++ {
		p := randomProblem(r, 2+r.Intn(12), 2+r.Intn(20))

		bb, bbExact := p.Solve()
		pb, pbExact := p.SolvePB()
		pf, pfExact := p.SolvePortfolio()
		greedy := p.SolveGreedy()

		if !bbExact || !pbExact || !pfExact {
			t.Fatalf("iter %d: exact flags bb=%v pb=%v portfolio=%v, want all true", iter, bbExact, pbExact, pfExact)
		}
		assertIsCover(t, p, bb, "bb")
		assertIsCover(t, p, pb, "pb")
		assertIsCover(t, p, pf, "portfolio")
		assertIsCover(t, p, greedy, "greedy")

		bbCost, pbCost := coverCost(p, bb), coverCost(p, pb)
		if bbCost != pbCost {
			t.Errorf("iter %d: bb cost %d != pb cost %d", iter, bbCost, pbCost)
		}
		if coverCost(p, greedy) < bbCost {
			t.Errorf("iter %d: greedy cover cheaper than proven optimum", iter)
		}
		if !reflect.DeepEqual(pf, bb) {
			t.Errorf("iter %d: portfolio cover %v != sequential bb cover %v", iter, pf, bb)
		}
	}
}

// TestSolverCrossCheckUnitCosts runs the corpus against brute force on
// small unit-cost instances, where optimal size is independently checkable.
func TestSolverCrossCheckUnitCosts(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 80; iter++ {
		nc := 2 + r.Intn(6)
		p := &CoveringProblem{NumCols: nc}
		for i := 0; i < 1+r.Intn(7); i++ {
			var row []int
			for c := 0; c < nc; c++ {
				if r.Intn(2) == 0 {
					row = append(row, c)
				}
			}
			if len(row) == 0 {
				row = []int{r.Intn(nc)}
			}
			p.Rows = append(p.Rows, row)
		}
		want := bruteForceCover(p)
		for _, s := range []Solver{SolverBB, SolverPB, SolverPortfolio} {
			cols, exact := p.SolveWith(s)
			if !exact {
				t.Fatalf("iter %d: %v inexact on tiny instance", iter, s)
			}
			assertIsCover(t, p, cols, s.String())
			if len(cols) != want {
				t.Errorf("iter %d: %v found %d cols, brute force %d", iter, s, len(cols), want)
			}
		}
	}
}

// TestPortfolioDeterministic: repeated portfolio solves of one instance
// return byte-identical covers regardless of race outcomes.
func TestPortfolioDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := randomProblem(r, 14, 24)
	want, exact := p.Solve()
	if !exact {
		t.Fatal("reference solve inexact")
	}
	for i := 0; i < 25; i++ {
		got, exact := p.SolvePortfolio()
		if !exact {
			t.Fatalf("run %d: portfolio inexact", i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: portfolio cover %v != %v", i, got, want)
		}
	}
}

// TestSolverInfeasible: every backend reports an uncoverable row the same
// way.
func TestSolverInfeasible(t *testing.T) {
	p := &CoveringProblem{NumCols: 2, Rows: [][]int{{0}, {}}}
	for _, s := range []Solver{SolverBB, SolverPB, SolverGreedy, SolverPortfolio} {
		if cols, exact := p.SolveWith(s); cols != nil || exact {
			t.Errorf("%v on infeasible: cols=%v exact=%v, want nil false", s, cols, exact)
		}
	}
}

// TestSolverBudget: a tiny step budget aborts the exact searches but still
// returns a feasible (greedy-seeded) cover flagged inexact.
func TestSolverBudget(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := randomProblem(r, 30, 60)
	p.Budget = 4
	for _, s := range []Solver{SolverBB, SolverPB} {
		cols, exact := p.SolveWith(s)
		if exact {
			t.Errorf("%v: 4-step budget should not complete a 30×60 search", s)
		}
		assertIsCover(t, p, cols, s.String())
	}
}

// TestSolverCancel: a cancelled problem aborts promptly and reports
// inexact.
func TestSolverCancel(t *testing.T) {
	errStop := errors.New("stop")
	r := rand.New(rand.NewSource(5))
	p := randomProblem(r, 30, 60)
	p.Cancel = func() error { return errStop }
	for _, s := range []Solver{SolverBB, SolverPB, SolverPortfolio} {
		cols, exact := p.SolveWith(s)
		// With an immediately-failing Cancel the search may still finish
		// within the first poll interval; all that is required is that an
		// aborted result is feasible and inexactness is never hidden.
		if exact && s != SolverPortfolio {
			// The 30×60 instance needs far more than one poll interval.
			t.Logf("%v finished before the first cancel poll", s)
		}
		if cols != nil {
			assertIsCover(t, p, cols, s.String())
		}
	}
}

// TestParseSolver covers the CLI name mapping.
func TestParseSolver(t *testing.T) {
	for name, want := range map[string]Solver{
		"": SolverBB, "bb": SolverBB, "pb": SolverPB,
		"greedy": SolverGreedy, "portfolio": SolverPortfolio,
	} {
		got, err := ParseSolver(name)
		if err != nil || got != want {
			t.Errorf("ParseSolver(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseSolver("z3"); err == nil {
		t.Error("ParseSolver(z3) should fail")
	}
	for _, s := range []Solver{SolverBB, SolverPB, SolverGreedy, SolverPortfolio} {
		back, err := ParseSolver(s.String())
		if err != nil || back != s {
			t.Errorf("round-trip %v failed: %v, %v", s, back, err)
		}
	}
}

// TestColumnDominance: a strictly dominated column (same coverage, higher
// cost) is never chosen.
func TestColumnDominance(t *testing.T) {
	p := &CoveringProblem{
		NumCols: 3,
		// Column 0 covers rows {0,1} at cost 5; column 1 covers {0,1} at
		// cost 3; column 2 covers {2}.
		Rows: [][]int{{0, 1}, {0, 1}, {2}},
		Cost: []int{5, 3, 1},
	}
	cols, exact := p.Solve()
	if !exact {
		t.Fatal("inexact")
	}
	want := []int{1, 2}
	if !reflect.DeepEqual(cols, want) {
		t.Errorf("cols = %v, want %v", cols, want)
	}
}

// worstCoverFixture loads the captured GCD worst-case covering matrix.
func worstCoverFixture(tb testing.TB) *CoveringProblem {
	tb.Helper()
	data, err := os.ReadFile("testdata/gcd_worst_cover.json")
	if err != nil {
		tb.Fatalf("fixture: %v (regenerate with scripts/capturecover)", err)
	}
	var f struct {
		NumCols int     `json:"num_cols"`
		Rows    [][]int `json:"rows"`
		Cost    []int   `json:"cost"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		tb.Fatalf("fixture: %v", err)
	}
	return &CoveringProblem{NumCols: f.NumCols, Rows: f.Rows, Cost: f.Cost}
}

// BenchmarkCoveringWorstCase times each backend on the captured GCD worst
// covering matrix (44 rows × 133 columns) — the instance behind the slowest
// hfmin output of the three paper benchmarks. scripts/verify.sh records the
// trajectory in BENCH_covering.json.
func BenchmarkCoveringWorstCase(b *testing.B) {
	p := worstCoverFixture(b)
	for _, s := range []Solver{SolverBB, SolverPB, SolverPortfolio, SolverGreedy} {
		b.Run(s.String(), func(b *testing.B) {
			var cols []int
			for i := 0; i < b.N; i++ {
				cols, _ = p.SolveWith(s)
			}
			b.ReportMetric(float64(len(cols)), "cover-cols")
			b.ReportMetric(float64(coverCost(p, cols)), "cover-cost")
		})
	}
}

// TestGCDWorstCaseFixture cross-checks all backends on the captured GCD
// worst covering instance: equal optimal cost, portfolio bit-identical to
// sequential B&B, exact status preserved.
func TestGCDWorstCaseFixture(t *testing.T) {
	p := worstCoverFixture(t)
	bb, bbExact := p.Solve()
	if !bbExact {
		t.Fatal("bb inexact on the GCD worst instance")
	}
	assertIsCover(t, p, bb, "bb")
	bbCost := coverCost(p, bb)

	pb, pbExact := p.SolvePB()
	if !pbExact {
		t.Fatal("pb inexact on the GCD worst instance")
	}
	assertIsCover(t, p, pb, "pb")
	if c := coverCost(p, pb); c != bbCost {
		t.Errorf("pb cost %d != bb cost %d", c, bbCost)
	}

	pf, pfExact := p.SolvePortfolio()
	if !pfExact {
		t.Fatal("portfolio inexact on the GCD worst instance")
	}
	if !reflect.DeepEqual(pf, bb) {
		t.Errorf("portfolio cover %v != bb cover %v", pf, bb)
	}

	if g := coverCost(p, p.SolveGreedy()); g < bbCost {
		t.Errorf("greedy cover cheaper (%d) than proven optimum (%d)", g, bbCost)
	}
}
