package logic

import (
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// CoveringProblem is a unate covering problem: choose a minimum-cost subset
// of columns such that every row has at least one chosen column.
type CoveringProblem struct {
	NumCols int
	Rows    [][]int // each row lists the columns that cover it
	Cost    []int   // per-column cost; nil means unit cost
	// Budget bounds the exact backends' search in branch/assignment steps;
	// 0 means DefaultCoveringBudget. When exceeded the solver returns the
	// best cover found so far (at worst the greedy seed) with exact=false.
	Budget int
	// Cancel, when non-nil, is polled between search iterations (every
	// cancelCheckInterval steps); a non-nil return abandons the search as
	// if the step budget were exhausted. Callers pass a context's Err
	// method to make long covering searches cancellable.
	Cancel func() error
}

// cancelCheckInterval bounds how often the solvers poll Cancel; checking
// every step would put an atomic context load on the hot search path.
const cancelCheckInterval = 1024

// DefaultCoveringBudget bounds the exact search when CoveringProblem.Budget
// is zero; when exceeded the solver falls back to the best solution found
// so far.
const DefaultCoveringBudget = 200000

func (p *CoveringProblem) budget() int {
	if p.Budget > 0 {
		return p.Budget
	}
	return DefaultCoveringBudget
}

// unitOr returns p.Cost, or a unit-cost vector when p.Cost is nil.
func (p *CoveringProblem) unitOr() []int {
	if p.Cost != nil {
		return p.Cost
	}
	cost := make([]int, p.NumCols)
	for i := range cost {
		cost[i] = 1
	}
	return cost
}

// SolveGreedy returns the greedy cover (best cost/coverage ratio first)
// without branch-and-bound refinement, or nil when infeasible. This is the
// fast-heuristic mode in the spirit of Theobald–Nowick's heuristic
// minimizer.
func (p *CoveringProblem) SolveGreedy() []int {
	for _, r := range p.Rows {
		if len(r) == 0 {
			return nil
		}
	}
	cols := p.greedy(p.unitOr())
	sort.Ints(cols)
	return cols
}

// Solve returns a minimum-cost column set (exact for problems within the
// step budget, greedy otherwise) and whether the solution is known exact.
// Rows with no covering column make the problem infeasible and Solve
// returns nil, false.
//
// Solve is deterministic: for a given problem it always returns the same
// cover — the greedy cover when greedy is already optimal, otherwise the
// first optimal-cost cover in the solver's fixed depth-first branch order.
// Every exact backend reproduces this canonical cover bit-identically.
func (p *CoveringProblem) Solve() (cols []int, exact bool) {
	cols, exact, _ = p.solveBB(p.Cancel, nil)
	return cols, exact
}

// solveBB runs the bitset branch-and-bound search. hint, when non-nil, may
// asynchronously publish a proven optimal cost (from a racing backend); the
// search stops early once its incumbent matches the hint, still returning
// the canonical cover. usedHint reports whether the early stop fired.
func (p *CoveringProblem) solveBB(cancel func() error, hint *atomic.Int64) (cols []int, exact bool, usedHint bool) {
	for _, r := range p.Rows {
		if len(r) == 0 {
			return nil, false, false
		}
	}
	cost := p.unitOr()
	greedy := p.greedy(cost)
	s := newBBSearch(p, cost, cancel, hint)
	s.seed(greedy, totalCost(greedy, cost))
	s.run()
	best := append([]int(nil), s.best...)
	sort.Ints(best)
	obs.Add("solver/bb/solves", 1)
	obs.Add("solver/bb/steps", s.steps)
	obs.Add("solver/bb/cutoffs", s.cutoffs)
	return best, !s.aborted, s.stopped
}

// solveBBGuided reruns the branch-and-bound with a pre-proven optimal cost
// (from another exact backend): the upper bound starts at optCost+1 and the
// search stops at the first cover of cost optCost, which is exactly the
// cover sequential Solve would return. Greedy-optimal instances return the
// greedy cover directly, also matching Solve.
func (p *CoveringProblem) solveBBGuided(cancel func() error, optCost int) (cols []int, exact bool) {
	for _, r := range p.Rows {
		if len(r) == 0 {
			return nil, false
		}
	}
	cost := p.unitOr()
	greedy := p.greedy(cost)
	gc := totalCost(greedy, cost)
	if gc <= optCost {
		// Greedy is optimal; Solve's branch-and-bound would never find a
		// strictly cheaper cover and would return the greedy seed.
		sort.Ints(greedy)
		return greedy, true
	}
	var hint atomic.Int64
	hint.Store(int64(optCost))
	s := newBBSearch(p, cost, cancel, &hint)
	// Keep greedy as the fallback cover but bound the search at optCost+1
	// so only covers of cost ≤ optCost are committed.
	s.seed(greedy, optCost+1)
	s.run()
	best := append([]int(nil), s.best...)
	sort.Ints(best)
	obs.Add("solver/bb/solves", 1)
	obs.Add("solver/bb/steps", s.steps)
	obs.Add("solver/bb/cutoffs", s.cutoffs)
	// Exact only if the guided search actually reached a cover of the
	// proven optimal cost (otherwise the budget blew and we still hold the
	// greedy fallback).
	return best, !s.aborted && s.bestCost <= optCost
}

func totalCost(cols []int, cost []int) int {
	t := 0
	for _, c := range cols {
		t += cost[c]
	}
	return t
}

// bbSearch is the branch-and-bound state: a bitset covering matrix plus the
// scratch memory reused across nodes so the hot path never allocates.
type bbSearch struct {
	nRows, nCols int
	cost         []int
	rowCols      []bitset // row → columns covering it
	colRows      []bitset // column → rows it covers
	rowList      [][]int  // row → ascending column indices
	budget       int64
	cancel       func() error
	hint         *atomic.Int64

	best     []int
	bestCost int
	chosen   []int

	steps   int64
	cutoffs int64
	aborted bool // budget blown or cancelled: result may be inexact
	stopped bool // incumbent matched a proven optimal cost: result exact

	// Free lists of row-width and column-width bitsets, reused across
	// branch nodes.
	freeRowSets []bitset
	freeColSets []bitset

	// Dual-ascent scratch: reduced costs with epoch-stamped validity so the
	// vector never needs clearing between nodes.
	rc      []int
	rcMark  []int64
	rcEpoch int64

	// Dominance scratch: effective row masks (row ∩ active columns).
	effRows []bitset
	effIdx  []int
}

func newBBSearch(p *CoveringProblem, cost []int, cancel func() error, hint *atomic.Int64) *bbSearch {
	s := &bbSearch{
		nRows:  len(p.Rows),
		nCols:  p.NumCols,
		cost:   cost,
		budget: int64(p.budget()),
		cancel: cancel,
		hint:   hint,
	}
	s.rowCols = make([]bitset, s.nRows)
	s.rowList = make([][]int, s.nRows)
	s.colRows = make([]bitset, s.nCols)
	for c := range s.colRows {
		s.colRows[c] = newBitset(s.nRows)
	}
	for r, row := range p.Rows {
		s.rowCols[r] = newBitset(s.nCols)
		for _, c := range row {
			s.rowCols[r].set(c)
			s.colRows[c].set(r)
		}
		// Ascending unique column list, rebuilt from the bitset so
		// unsorted or duplicated input rows cannot perturb branch order.
		lst := make([]int, 0, len(row))
		s.rowCols[r].forEach(func(c int) { lst = append(lst, c) })
		s.rowList[r] = lst
	}
	s.rc = make([]int, s.nCols)
	s.rcMark = make([]int64, s.nCols)
	s.effRows = make([]bitset, s.nRows)
	for i := range s.effRows {
		s.effRows[i] = newBitset(s.nCols)
	}
	s.effIdx = make([]int, 0, s.nRows)
	return s
}

func (s *bbSearch) seed(cover []int, ub int) {
	s.best = append([]int(nil), cover...)
	s.bestCost = ub
}

func (s *bbSearch) allocRowSet() bitset {
	if n := len(s.freeRowSets); n > 0 {
		b := s.freeRowSets[n-1]
		s.freeRowSets = s.freeRowSets[:n-1]
		return b
	}
	return newBitset(s.nRows)
}

func (s *bbSearch) freeRowSet(b bitset) { s.freeRowSets = append(s.freeRowSets, b) }

func (s *bbSearch) allocColSet() bitset {
	if n := len(s.freeColSets); n > 0 {
		b := s.freeColSets[n-1]
		s.freeColSets = s.freeColSets[:n-1]
		return b
	}
	return newBitset(s.nCols)
}

func (s *bbSearch) freeColSet(b bitset) { s.freeColSets = append(s.freeColSets, b) }

func (s *bbSearch) run() {
	activeRows := s.allocRowSet()
	activeRows.setAll(s.nRows)
	activeCols := s.allocColSet()
	activeCols.setAll(s.nCols)
	s.node(activeRows, activeCols, 0, true)
	s.freeRowSet(activeRows)
	s.freeColSet(activeCols)
}

// done reports whether the search should unwind (budget, cancel, or proven
// optimum reached).
func (s *bbSearch) done() bool { return s.aborted || s.stopped }

// node explores one branch-and-bound node. activeRows/activeCols are owned
// by the caller and are mutated freely (the caller passes copies).
func (s *bbSearch) node(activeRows, activeCols bitset, acc int, root bool) {
	s.steps++
	if s.steps > s.budget {
		s.aborted = true
		return
	}
	if s.cancel != nil && s.steps%cancelCheckInterval == 0 && s.cancel() != nil {
		s.aborted = true
		return
	}
	if s.hint != nil {
		if h := s.hint.Load(); h >= 0 && int64(s.bestCost) <= h {
			// A racing backend proved our incumbent optimal; the incumbent
			// is already the canonical (first-in-branch-order) cover.
			s.stopped = true
			return
		}
	}
	if acc >= s.bestCost {
		s.cutoffs++
		return
	}

	// Reduction loop: essential columns, then row dominance, then column
	// dominance, repeated to a fixed point.
	mark := len(s.chosen)
	for {
		// Essential columns and infeasibility: any active row whose
		// effective (active-column) cover count is 0 or 1.
		changed := false
		essential := -1
		infeasible := false
		activeRows.forEach(func(r int) {
			if infeasible || essential >= 0 {
				return
			}
			switch s.rowCols[r].intersectionCount(activeCols) {
			case 0:
				infeasible = true
			case 1:
				essential = r
			}
		})
		if infeasible {
			// All columns covering this row were excluded on earlier
			// branches; no solution in this subtree.
			s.chosen = s.chosen[:mark]
			s.cutoffs++
			return
		}
		if essential >= 0 {
			// The single remaining column of the essential row.
			c := -1
			for _, cc := range s.rowList[essential] {
				if activeCols.has(cc) {
					c = cc
					break
				}
			}
			s.chosen = append(s.chosen, c)
			acc += s.cost[c]
			activeRows.andNot(s.colRows[c])
			activeCols.clear(c)
			if acc >= s.bestCost {
				s.chosen = s.chosen[:mark]
				s.cutoffs++
				return
			}
			continue
		}

		// Materialize effective row masks once for the dominance passes.
		s.effIdx = s.effIdx[:0]
		activeRows.forEach(func(r int) {
			s.effRows[r].copyFrom(s.rowCols[r])
			s.effRows[r].and(activeCols)
			s.effIdx = append(s.effIdx, r)
		})

		// Row dominance: if eff(a) ⊆ eff(b), covering a forces covering b;
		// drop b (equal rows keep the lower index). Ascending scan keeps
		// the choice deterministic.
		for i := 0; i < len(s.effIdx) && !changed; i++ {
			a := s.effIdx[i]
			if !activeRows.has(a) {
				continue
			}
			for _, b := range s.effIdx {
				if a == b || !activeRows.has(b) {
					continue
				}
				if s.effRows[a].subsetOf(s.effRows[b]) && (a < b || !s.effRows[b].subsetOf(s.effRows[a])) {
					activeRows.clear(b)
					changed = true
				}
			}
		}
		if changed {
			continue
		}

		// Column dominance: drop column c when some other column d covers
		// every active row c covers at no greater cost. Quadratic in active
		// columns, so only applied while the active matrix is small (or at
		// the root, where the payoff is largest).
		nActive := activeCols.popcount()
		if root || nActive <= 128 {
			if s.columnDominance(activeRows, activeCols) {
				continue
			}
		}
		break
	}

	if activeRows.isEmpty() {
		// New incumbent (acc < bestCost was checked above and after every
		// essential-column addition).
		s.best = append(s.best[:0], s.chosen...)
		s.bestCost = acc
		if s.hint != nil {
			if h := s.hint.Load(); h >= 0 && int64(acc) <= h {
				s.stopped = true
			}
		}
		s.chosen = s.chosen[:mark]
		return
	}

	// Lower bound: dual ascent over the active matrix.
	if acc+s.dualAscent(activeRows, activeCols) >= s.bestCost {
		s.chosen = s.chosen[:mark]
		s.cutoffs++
		return
	}

	// Branch on the active row with the fewest active columns (ties:
	// lowest row index), trying its columns in ascending order. After a
	// column's subtree is explored it is excluded from the remaining
	// siblings, so subtrees partition the solution space.
	branchRow, branchLen := -1, int(^uint(0)>>1)
	activeRows.forEach(func(r int) {
		if n := s.rowCols[r].intersectionCount(activeCols); n < branchLen {
			branchRow, branchLen = r, n
		}
	})
	childRows := s.allocRowSet()
	childCols := s.allocColSet()
	for _, c := range s.rowList[branchRow] {
		if !activeCols.has(c) {
			continue
		}
		childRows.copyFrom(activeRows)
		childRows.andNot(s.colRows[c])
		childCols.copyFrom(activeCols)
		childCols.clear(c)
		s.chosen = append(s.chosen, c)
		s.node(childRows, childCols, acc+s.cost[c], false)
		s.chosen = s.chosen[:len(s.chosen)-1]
		if s.done() {
			break
		}
		// Sibling exclusion: covers containing c are fully explored.
		activeCols.clear(c)
	}
	s.freeRowSet(childRows)
	s.freeColSet(childCols)
	s.chosen = s.chosen[:mark]
}

// columnDominance removes active columns whose effective row coverage is
// contained in a no-more-expensive other column's. Returns whether any
// column was removed. Ties (equal coverage, equal cost) keep the lower
// index, so the reduction is deterministic and never removes both.
func (s *bbSearch) columnDominance(activeRows, activeCols bitset) bool {
	changed := false
	cols := s.effIdx[:0] // reuse scratch; effRows content is not needed here
	activeCols.forEach(func(c int) { cols = append(cols, c) })
	for i := 0; i < len(cols); i++ {
		c := cols[i]
		if !activeCols.has(c) {
			continue
		}
		for j := 0; j < len(cols); j++ {
			if i == j {
				continue
			}
			d := cols[j]
			if !activeCols.has(d) || !activeCols.has(c) {
				continue
			}
			// Does d cover every active row c covers, at cost ≤ cost(c)?
			if s.cost[d] > s.cost[c] {
				continue
			}
			if s.cost[d] == s.cost[c] && d > c && s.colRows[c].intersectionCount(activeRows) == s.colRows[d].intersectionCount(activeRows) {
				// Potential mutual dominance: keep the lower index.
				if covSubset(s.colRows[c], s.colRows[d], activeRows) && covSubset(s.colRows[d], s.colRows[c], activeRows) {
					activeCols.clear(d)
					changed = true
					continue
				}
			}
			if covSubset(s.colRows[c], s.colRows[d], activeRows) {
				activeCols.clear(c)
				changed = true
				break
			}
		}
	}
	s.effIdx = cols[:0]
	return changed
}

// covSubset reports whether a's coverage of the active rows is contained in
// b's: (a ∩ active) ⊆ b.
func covSubset(a, b, active bitset) bool {
	for i, w := range a {
		if (w&active[i])&^b[i] != 0 {
			return false
		}
	}
	return true
}

// dualAscent computes a Lagrangian-style lower bound: rows are visited in
// ascending order, each claiming the minimum reduced cost among its active
// columns and charging it against those columns. The result dominates the
// independent-row bound (independent rows claim their full cheapest cost)
// and is integral and deterministic.
func (s *bbSearch) dualAscent(activeRows, activeCols bitset) int {
	s.rcEpoch++
	epoch := s.rcEpoch
	lb := 0
	activeRows.forEach(func(r int) {
		delta := int(^uint(0) >> 1)
		for _, c := range s.rowList[r] {
			if !activeCols.has(c) {
				continue
			}
			rc := s.cost[c]
			if s.rcMark[c] == epoch {
				rc = s.rc[c]
			}
			if rc < delta {
				delta = rc
			}
		}
		if delta <= 0 {
			return
		}
		lb += delta
		for _, c := range s.rowList[r] {
			if !activeCols.has(c) {
				continue
			}
			if s.rcMark[c] != epoch {
				s.rcMark[c] = epoch
				s.rc[c] = s.cost[c]
			}
			s.rc[c] -= delta
		}
	})
	return lb
}

func (p *CoveringProblem) greedy(cost []int) []int {
	covered := make([]bool, len(p.Rows))
	remaining := len(p.Rows)
	var chosen []int
	colRows := make([][]int, p.NumCols)
	for ri, row := range p.Rows {
		for _, c := range row {
			colRows[c] = append(colRows[c], ri)
		}
	}
	for remaining > 0 {
		bestCol, bestScore := -1, -1.0
		for c := 0; c < p.NumCols; c++ {
			cnt := 0
			for _, ri := range colRows[c] {
				if !covered[ri] {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			score := float64(cnt) / float64(cost[c])
			if score > bestScore {
				bestScore, bestCol = score, c
			}
		}
		if bestCol < 0 {
			return nil // infeasible
		}
		chosen = append(chosen, bestCol)
		for _, ri := range colRows[bestCol] {
			if !covered[ri] {
				covered[ri] = true
				remaining--
			}
		}
	}
	return chosen
}
