package logic

import "sort"

// CoveringProblem is a unate covering problem: choose a minimum-cost subset
// of columns such that every row has at least one chosen column.
type CoveringProblem struct {
	NumCols int
	Rows    [][]int // each row lists the columns that cover it
	Cost    []int   // per-column cost; nil means unit cost
	// Cancel, when non-nil, is polled between branch-and-bound iterations
	// (every cancelCheckInterval steps); a non-nil return abandons the
	// search as if the step budget were exhausted. Callers pass a
	// context's Err method to make long covering searches cancellable.
	Cancel func() error
}

// cancelCheckInterval bounds how often Solve polls Cancel; checking every
// step would put an atomic context load on the hot branch-and-bound path.
const cancelCheckInterval = 1024

// CoveringBudget bounds the branch-and-bound search; when exceeded the
// solver falls back to the greedy solution found so far.
const CoveringBudget = 200000

// SolveGreedy returns the greedy cover (best cost/coverage ratio first)
// without branch-and-bound refinement, or nil when infeasible. This is the
// fast-heuristic mode in the spirit of Theobald–Nowick's heuristic
// minimizer.
func (p *CoveringProblem) SolveGreedy() []int {
	for _, r := range p.Rows {
		if len(r) == 0 {
			return nil
		}
	}
	cost := p.Cost
	if cost == nil {
		cost = make([]int, p.NumCols)
		for i := range cost {
			cost[i] = 1
		}
	}
	cols := p.greedy(cost)
	sort.Ints(cols)
	return cols
}

// Solve returns a minimum-cost column set (exact for problems within
// CoveringBudget branch-and-bound steps, greedy otherwise) and whether the
// solution is known exact. Rows with no covering column make the problem
// infeasible and Solve returns nil, false.
func (p *CoveringProblem) Solve() (cols []int, exact bool) {
	for _, r := range p.Rows {
		if len(r) == 0 {
			return nil, false
		}
	}
	cost := p.Cost
	if cost == nil {
		cost = make([]int, p.NumCols)
		for i := range cost {
			cost[i] = 1
		}
	}
	greedy := p.greedy(cost)
	best := append([]int(nil), greedy...)
	bestCost := totalCost(best, cost)

	steps := 0
	exact = true
	var rec func(active []int, chosen []int, acc int)
	rec = func(active []int, chosen []int, acc int) {
		steps++
		if steps > CoveringBudget {
			exact = false
			return
		}
		if p.Cancel != nil && steps%cancelCheckInterval == 0 && p.Cancel() != nil {
			exact = false
			steps = CoveringBudget + 1 // unwind the whole search like a blown budget
			return
		}
		if acc >= bestCost {
			return
		}
		// Reduce: essentials and row dominance.
		active, chosen, acc, feasible := p.reduce(active, chosen, acc, cost)
		if !feasible || acc >= bestCost {
			return
		}
		if len(active) == 0 {
			best = append(best[:0:0], chosen...)
			bestCost = acc
			return
		}
		// Lower bound: independent rows (no shared columns) each need one
		// cheapest column.
		if acc+p.lowerBound(active, cost) >= bestCost {
			return
		}
		// Branch on a column of the shortest active row.
		row := p.Rows[active[0]]
		for _, r := range active[1:] {
			if len(p.Rows[r]) < len(row) {
				row = p.Rows[r]
			}
		}
		for _, c := range row {
			next := p.removeCovered(active, c)
			rec(next, append(chosen, c), acc+cost[c])
			if steps > CoveringBudget {
				return
			}
		}
	}
	all := make([]int, len(p.Rows))
	for i := range all {
		all[i] = i
	}
	rec(all, nil, 0)
	sort.Ints(best)
	return best, exact
}

func totalCost(cols []int, cost []int) int {
	t := 0
	for _, c := range cols {
		t += cost[c]
	}
	return t
}

func (p *CoveringProblem) greedy(cost []int) []int {
	covered := make([]bool, len(p.Rows))
	remaining := len(p.Rows)
	var chosen []int
	colRows := make([][]int, p.NumCols)
	for ri, row := range p.Rows {
		for _, c := range row {
			colRows[c] = append(colRows[c], ri)
		}
	}
	for remaining > 0 {
		bestCol, bestScore := -1, -1.0
		for c := 0; c < p.NumCols; c++ {
			cnt := 0
			for _, ri := range colRows[c] {
				if !covered[ri] {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			score := float64(cnt) / float64(cost[c])
			if score > bestScore {
				bestScore, bestCol = score, c
			}
		}
		if bestCol < 0 {
			return nil // infeasible
		}
		chosen = append(chosen, bestCol)
		for _, ri := range colRows[bestCol] {
			if !covered[ri] {
				covered[ri] = true
				remaining--
			}
		}
	}
	return chosen
}

// reduce applies essential-column and row-dominance reductions.
func (p *CoveringProblem) reduce(active, chosen []int, acc int, cost []int) ([]int, []int, int, bool) {
	changed := true
	for changed {
		changed = false
		// Essential columns: a row with a single column.
		for _, ri := range active {
			if len(p.Rows[ri]) == 1 {
				c := p.Rows[ri][0]
				chosen = append(chosen, c)
				acc += cost[c]
				active = p.removeCovered(active, c)
				changed = true
				break
			}
		}
		if changed {
			continue
		}
		// Row dominance: if row a's columns ⊇ row b's columns, drop a.
		for i := 0; i < len(active) && !changed; i++ {
			for j := 0; j < len(active); j++ {
				if i == j {
					continue
				}
				if rowSubset(p.Rows[active[j]], p.Rows[active[i]]) {
					active = append(append([]int(nil), active[:i]...), active[i+1:]...)
					changed = true
					break
				}
			}
		}
	}
	return active, chosen, acc, true
}

func rowSubset(a, b []int) bool {
	// reports whether set a ⊆ set b (rows are small; O(n·m) is fine)
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (p *CoveringProblem) removeCovered(active []int, col int) []int {
	var out []int
	for _, ri := range active {
		hit := false
		for _, c := range p.Rows[ri] {
			if c == col {
				hit = true
				break
			}
		}
		if !hit {
			out = append(out, ri)
		}
	}
	return out
}

// lowerBound computes a quick maximal-independent-row lower bound.
func (p *CoveringProblem) lowerBound(active []int, cost []int) int {
	used := map[int]bool{}
	lb := 0
	for _, ri := range active {
		indep := true
		for _, c := range p.Rows[ri] {
			if used[c] {
				indep = false
				break
			}
		}
		if !indep {
			continue
		}
		minC := -1
		for _, c := range p.Rows[ri] {
			used[c] = true
			if minC < 0 || cost[c] < minC {
				minC = cost[c]
			}
		}
		lb += minC
	}
	return lb
}
