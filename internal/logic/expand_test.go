package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpansionsNoOff(t *testing.T) {
	exps := Expansions(MustCube("010"), NewCover(3))
	if len(exps) != 1 || !exps[0].IsFull() {
		t.Errorf("expansions with no off-set = %v, want universe", exps)
	}
}

func TestExpansionsBlocked(t *testing.T) {
	// Off-set 11-: seed 00- can expand var0 or var1 but not both.
	exps := Expansions(MustCube("00-"), MustCover(3, "11-"))
	if len(exps) != 2 {
		t.Fatalf("got %d expansions (%v), want 2", len(exps), exps)
	}
	got := map[string]bool{}
	for _, e := range exps {
		got[e.String()] = true
	}
	if !got["0--"] || !got["-0-"] {
		t.Errorf("expansions = %v, want {0--, -0-}", got)
	}
}

func TestExpansionsSeedIntersectsOff(t *testing.T) {
	if exps := Expansions(MustCube("0--"), MustCover(3, "01-")); exps != nil {
		t.Errorf("seed intersecting off-set must have no expansion, got %v", exps)
	}
}

func TestExpansionsEmptySeed(t *testing.T) {
	if exps := Expansions(EmptyCube(3), NewCover(3)); exps != nil {
		t.Errorf("empty seed: got %v", exps)
	}
}

func TestExpansionsAreMaximalAndDisjointFromOff(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(7)
		s := randomCube(rr, n)
		// Minterm-ify seed so it rarely intersects off.
		for i := 0; i < n; i++ {
			if s.Get(i) == Dash && rr.Intn(2) == 0 {
				s = s.With(i, Zero)
			}
		}
		off := randomCover(rr, n, 1+rr.Intn(3))
		if off.IntersectsCube(s) {
			return true // not a valid instance
		}
		exps := Expansions(s, off)
		if len(exps) == 0 {
			return false // a non-intersecting seed always has itself as expansion
		}
		for _, e := range exps {
			if !e.Contains(s) {
				return false
			}
			if off.IntersectsCube(e) {
				return false
			}
			// Maximality: freeing any bound variable hits the off-set.
			for i := 0; i < n; i++ {
				if e.Get(i) != Dash {
					if !off.IntersectsCube(e.Free(i)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPrimesContaining(t *testing.T) {
	// f with off-set {11-}; primes of complement(off) are 0-- and -0-.
	primes := PrimesContaining([]Cube{MustCube("000"), MustCube("001")}, MustCover(3, "11-"))
	got := map[string]bool{}
	for _, p := range primes {
		got[p.String()] = true
	}
	if !got["0--"] || !got["-0-"] {
		t.Errorf("primes = %v, want 0-- and -0-", got)
	}
	if len(primes) != 2 {
		t.Errorf("got %d primes, want 2", len(primes))
	}
}

func TestMinimalHittingSets(t *testing.T) {
	rows := [][]int{{0, 1}, {1, 2}}
	hs := minimalHittingSets(rows, 100)
	// Minimal hitting sets: {1}, {0,2}.
	if len(hs) != 2 {
		t.Fatalf("got %d hitting sets: %v", len(hs), hs)
	}
	sizes := map[int]int{}
	for _, h := range hs {
		sizes[len(h)]++
	}
	if sizes[1] != 1 || sizes[2] != 1 {
		t.Errorf("hitting set sizes = %v, want one of size 1 and one of size 2", sizes)
	}
}
