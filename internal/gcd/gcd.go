// Package gcd defines a second scheduled benchmark: a greatest-common-
// divisor engine by repeated subtraction, split across a comparator unit
// (CMP) and a subtractor unit (ALU). Unlike DIFFEQ it exercises IF blocks
// inside the loop, demonstrating the flow on conditional control.
//
//	run = (a != b)
//	while (run) {
//	    gt = (a > b)          CMP
//	    if (gt) a = a - b     ALU
//	    lt = (a < b)          CMP
//	    if (lt) b = b - a     ALU
//	    ne = (a == b)         CMP
//	    run = 1 - ne          ALU
//	}
package gcd

import "repro/internal/cdfg"

// Functional units.
const (
	ALU = "ALU"
	CMP = "CMP"
)

// FUs lists the benchmark's functional units.
var FUs = []string{ALU, CMP}

// Program builds the scheduled GCD program for inputs a and b.
func Program(a, b float64) *cdfg.Program {
	p := cdfg.NewProgram("gcd", ALU, CMP)
	p.Const("one")
	p.InitAll(map[string]float64{
		"a": a, "b": b, "one": 1,
		"run": b2f(a != b),
	})
	p.Loop(ALU, "run")
	p.Op(CMP, "gt", cdfg.OpGT, "a", "b")
	p.If(ALU, "gt")
	p.Op(ALU, "a", cdfg.OpSub, "a", "b")
	p.EndIf()
	p.Op(CMP, "lt", cdfg.OpLT, "a", "b")
	p.If(ALU, "lt")
	p.Op(ALU, "b", cdfg.OpSub, "b", "a")
	p.EndIf()
	p.Op(CMP, "ne", cdfg.OpEQ, "a", "b")
	p.Op(ALU, "run", cdfg.OpSub, "one", "ne")
	p.EndLoop()
	return p
}

// Build constructs the CDFG, panicking on builder errors.
func Build(a, b float64) *cdfg.Graph {
	g, err := Program(a, b).Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Reference computes gcd(a,b) by the same algorithm.
func Reference(a, b float64) float64 {
	for a != b {
		if a > b {
			a -= b
		} else {
			b -= a
		}
	}
	return a
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
