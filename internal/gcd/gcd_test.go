package gcd

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestReference(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{12, 18, 6}, {7, 13, 1}, {9, 9, 9}, {25, 10, 5}, {100, 36, 4},
	}
	for _, tc := range cases {
		if got := Reference(tc.a, tc.b); got != tc.want {
			t.Errorf("gcd(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTokenSimulation(t *testing.T) {
	for _, tc := range [][2]float64{{12, 18}, {7, 13}, {25, 10}} {
		for seed := int64(0); seed < 5; seed++ {
			g := Build(tc[0], tc[1])
			res, err := sim.NewTokenSim(g, sim.RandomDelays(seed, 1, 30, 0.1, 2)).Run()
			if err != nil {
				t.Fatal(err)
			}
			want := Reference(tc[0], tc[1])
			if res.Regs["a"] != want {
				t.Errorf("gcd(%v,%v) = %v, want %v", tc[0], tc[1], res.Regs["a"], want)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("violations: %v", res.Violations)
			}
		}
	}
}

// The GCD benchmark runs the full flow: global transforms, extraction with
// conditional controllers, local transforms, and controller-level
// simulation.
func TestFullFlowAllLevels(t *testing.T) {
	for _, level := range []core.Level{core.Unoptimized, core.OptimizedGT, core.OptimizedGTLT} {
		for _, tc := range [][2]float64{{12, 18}, {25, 10}} {
			opt := core.DefaultOptions()
			opt.Level = level
			s, err := core.Run(Build(tc[0], tc[1]), opt)
			if err != nil {
				t.Fatalf("%s gcd(%v,%v): %v", level, tc[0], tc[1], err)
			}
			want := Reference(tc[0], tc[1])
			for seed := int64(0); seed < 4; seed++ {
				res, err := s.Simulate(seed)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(res.Regs["a"]-want) > 1e-9 {
					t.Errorf("%s gcd(%v,%v) seed %d: a = %v, want %v",
						level, tc[0], tc[1], seed, res.Regs["a"], want)
				}
				if len(res.Violations) != 0 {
					t.Fatalf("%s seed %d: %v", level, seed, res.Violations)
				}
			}
		}
	}
}

func TestGTReducesChannels(t *testing.T) {
	unopt, err := core.Run(Build(12, 18), core.Options{Level: core.Unoptimized})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.Run(Build(12, 18), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gcd channels: %d → %d", unopt.Channels(), opt.Channels())
	if opt.Channels() >= unopt.Channels() {
		t.Errorf("GT did not reduce channels: %d → %d", unopt.Channels(), opt.Channels())
	}
}

func TestSynthesizesToLogic(t *testing.T) {
	s, err := core.Run(Build(12, 18), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	for fu, r := range results {
		if r.Products == 0 {
			t.Errorf("%s: empty logic", fu)
		}
		t.Logf("%s", r.Summary())
	}
}

// Gate-level closure: the synthesized logic computes GCD.
func TestGateLevelGCD(t *testing.T) {
	s, err := core.Run(Build(12, 18), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		res, err := s.GateSimulate(results, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Regs["a"] != 6 {
			t.Errorf("seed %d: a = %v, want 6", seed, res.Regs["a"])
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
	}
}
