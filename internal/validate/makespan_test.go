package validate

import (
	"testing"

	"repro/internal/diffeq"
	"repro/internal/sim"
	"repro/internal/timing"
)

// The timing analysis must be sound: simulated completion times under
// delays drawn from the model always fall inside the computed makespan
// interval.
func TestMakespanBoundsSimulation(t *testing.T) {
	// Exactly 3 iterations so the K=3 unrolling matches the execution.
	p := diffeq.Params{X0: 0, Y0: 1, U0: 0.5, DX: 0.34, A: 1}
	if diffeq.Iterations(p) != 3 {
		t.Fatalf("iterations = %d, want 3", diffeq.Iterations(p))
	}
	g := diffeq.Build(p)
	model := timing.DefaultModel()
	an, err := timing.Analyze(g, model, 3)
	if err != nil {
		t.Fatal(err)
	}
	ms := an.Makespan()
	for seed := int64(0); seed < 20; seed++ {
		res, err := sim.NewTokenSim(diffeq.Build(p), sim.FromModel(model, seed)).Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Finished {
			t.Fatalf("seed %d did not finish", seed)
		}
		const slack = 1e-6
		if res.FinishTime < ms.Min-slack || res.FinishTime > ms.Max+slack {
			t.Errorf("seed %d: finish %.2f outside analyzed makespan [%.2f, %.2f]",
				seed, res.FinishTime, ms.Min, ms.Max)
		}
	}
}
