package validate

import (
	"testing"

	"repro/internal/diffeq"
	"repro/internal/transform"
)

// The channel plan's wires must carry a delay-independent total order of
// events — validated dynamically against many random delay assignments.
func TestChannelOrderDiffeq(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	plan, _, err := transform.OptimizeGT(g, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckChannelOrder(g, plan, 8); err != nil {
		t.Fatal(err)
	}
}
