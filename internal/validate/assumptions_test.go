package validate

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gcd"
	"repro/internal/sim"
)

// The LT1 move-up transform announces completion in parallel with latching
// and records the timing assumption that the announcement reaches its
// receivers no earlier than the latch completes. This test demonstrates
// the assumption is load-bearing: with wires faster than register latches,
// a receiver samples a condition register before its new value lands and
// the computation goes wrong (or livelocks) for at least one delay draw.
func TestLT1AssumptionLoadBearing(t *testing.T) {
	s, err := core.Run(gcd.Build(12, 18), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	violating := func(seed int64) sim.MachineDelays {
		r := rand.New(rand.NewSource(seed))
		u := func(lo, hi float64) func() float64 {
			return func() float64 { return lo + r.Float64()*(hi-lo) }
		}
		d := sim.DefaultMachineDelays(seed)
		d.Wire = u(0.2, 1.0) // violates wire ≥ latch
		return d
	}
	broke := false
	for seed := int64(0); seed < 10 && !broke; seed++ {
		sys := &sim.MachineSystem{
			G:        s.Graph,
			Machines: s.Machines,
			Shared:   s.Shared,
			Primers:  s.Primers,
			Delays:   violating(seed),
			// A livelock (loop never exits) is one of the failure modes.
			MaxEvents: 20000,
		}
		res, err := sys.Run()
		if err != nil || res.Regs["a"] != 6 || len(res.Violations) > 0 {
			broke = true
		}
	}
	if !broke {
		t.Skip("no delay draw violated the assumption observably (model slack); the positive direction is covered elsewhere")
	}
	// And with the compliant model, everything is fine (sanity re-check).
	if err := s.Verify(map[string]float64{"a": 6}, 3); err != nil {
		t.Fatalf("compliant delays must still work: %v", err)
	}
}
