// Package validate cross-checks the transform layer against the simulation
// layer: dynamic validation of properties the static analyses assume.
package validate

import (
	"fmt"
	"sort"

	"repro/internal/cdfg"
	"repro/internal/sim"
	"repro/internal/transform"
)

// CheckChannelOrder validates a channel plan dynamically: under each of the
// given random delay seeds, every multiplexed channel's events (productions
// by distinct source nodes) must occur in a strict total order, and that
// order must be identical across all seeds. This is the runtime correlate
// of the static EventsTotallyOrdered analysis that GT5 uses — a shared
// transition-signaling wire with a delay-dependent event order would
// corrupt its receivers.
func CheckChannelOrder(g *cdfg.Graph, plan *transform.Plan, seeds int) error {
	var reference map[int][]cdfg.NodeID
	for seed := 0; seed < seeds; seed++ {
		ts := sim.NewTokenSim(g.Clone(), sim.RandomDelays(int64(seed), 1, 40, 0.1, 3))
		ts.CollectTrace = true
		res, err := ts.Run()
		if err != nil {
			return err
		}
		if !res.Finished {
			return fmt.Errorf("sim: seed %d did not finish", seed)
		}
		orders, err := channelOrders(plan, res, seed)
		if err != nil {
			return err
		}
		if reference == nil {
			reference = orders
			continue
		}
		for chID, seq := range orders {
			ref := reference[chID]
			if len(ref) != len(seq) {
				return fmt.Errorf("sim: channel %d: event count %d at seed %d vs %d at seed 0",
					chID, len(seq), seed, len(ref))
			}
			for i := range seq {
				if seq[i] != ref[i] {
					return fmt.Errorf("sim: channel %d: event order diverges at position %d (seed %d: n%d, seed 0: n%d)",
						chID, i, seed, seq[i], ref[i])
				}
			}
		}
	}
	return nil
}

// channelOrders extracts, per channel, the sequence of source-node events
// (arcs sharing a source fire together and count once).
func channelOrders(plan *transform.Plan, res *sim.Result, seed int) (map[int][]cdfg.NodeID, error) {
	arcChannel := map[cdfg.ArcID]*transform.Channel{}
	for _, ch := range plan.Channels {
		for _, a := range ch.Arcs {
			arcChannel[a.ID] = ch
		}
	}
	type ev struct {
		t    float64
		from cdfg.NodeID
	}
	perChannel := map[int][]ev{}
	for _, f := range res.Trace {
		ch, ok := arcChannel[f.Arc]
		if !ok {
			continue
		}
		evs := perChannel[ch.ID]
		// Arcs sharing a source node produced in the same firing collapse
		// into one wire event.
		if len(evs) > 0 && evs[len(evs)-1].from == f.From && evs[len(evs)-1].t == f.Time {
			continue
		}
		perChannel[ch.ID] = append(evs, ev{t: f.Time, from: f.From})
	}
	out := map[int][]cdfg.NodeID{}
	for chID, evs := range perChannel {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
		// Strictness: ties between distinct sources are delay-dependent
		// orders, which the wire cannot tolerate.
		for i := 1; i < len(evs); i++ {
			if evs[i].t == evs[i-1].t && evs[i].from != evs[i-1].from {
				return nil, fmt.Errorf("sim: channel %d: simultaneous events from n%d and n%d (seed %d)",
					chID, evs[i-1].from, evs[i].from, seed)
			}
		}
		seq := make([]cdfg.NodeID, 0, len(evs))
		for i, e := range evs {
			if i > 0 && seq[len(seq)-1] == e.from {
				// Consecutive events from one source are its successive
				// firings; keep them (they are part of the order).
				seq = append(seq, e.from)
				continue
			}
			seq = append(seq, e.from)
		}
		out[chID] = seq
	}
	return out, nil
}
