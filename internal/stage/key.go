package stage

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
	"sort"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/transform"
)

// Salt versions the stage key space. Bump it whenever any stage's
// observable behaviour changes (transform semantics, extraction rules,
// LT rewrites, payload formats), so cached stage results from older
// pipelines are recomputed rather than replayed. The covering solvers
// version themselves through logic.SolverVersion, folded into the synth
// stage key separately.
const Salt = "stage-v1"

// stageKey hashes a stage kind plus its length-prefixed canonical input
// parts into a content key. The length prefixes keep distinct part
// splits from colliding ("ab","c" vs "a","bc").
func stageKey(kind string, parts ...[]byte) [sha256.Size]byte {
	h := sha256.New()
	writeString(h, Salt)
	writeString(h, kind)
	for _, p := range parts {
		writeU64(h, uint64(len(p)))
		h.Write(p)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

func writeU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func writeString(h hash.Hash, s string) {
	writeU64(h, uint64(len(s)))
	h.Write([]byte(s))
}

func writeBool(h hash.Hash, b bool) {
	if b {
		writeU64(h, 1)
	} else {
		writeU64(h, 0)
	}
}

func writeFloat(h hash.Hash, f float64) {
	writeU64(h, math.Float64bits(f))
}

// hashGraph fingerprints a CDFG structurally: every name, node,
// statement, arc and block field that any pipeline stage can observe, in
// a canonical order. It deliberately does not round-trip through
// codec.EncodeGraph — transformed graphs (post-GT) may not satisfy the
// submission-side validation rules, but they still need fingerprints for
// the extract stage key.
func hashGraph(g *cdfg.Graph) []byte {
	h := sha256.New()
	writeString(h, g.Name)
	writeU64(h, uint64(len(g.FUs)))
	for _, fu := range g.FUs {
		writeString(h, fu)
	}
	writeU64(h, uint64(g.Start))
	writeU64(h, uint64(g.End))

	consts := make([]string, 0, len(g.Consts))
	for c, ok := range g.Consts {
		if ok {
			consts = append(consts, c)
		}
	}
	sort.Strings(consts)
	writeU64(h, uint64(len(consts)))
	for _, c := range consts {
		writeString(h, c)
	}

	inits := make([]string, 0, len(g.Init))
	for k := range g.Init {
		inits = append(inits, k)
	}
	sort.Strings(inits)
	writeU64(h, uint64(len(inits)))
	for _, k := range inits {
		writeString(h, k)
		writeFloat(h, g.Init[k])
	}

	writeU64(h, uint64(len(g.Blocks)))
	for _, b := range g.Blocks {
		writeU64(h, uint64(b.ID))
		writeU64(h, uint64(b.Kind))
		writeU64(h, uint64(b.Root))
		writeU64(h, uint64(b.End))
		writeU64(h, uint64(int64(b.Parent)))
		writeU64(h, uint64(len(b.Nodes)))
		for _, id := range b.Nodes {
			writeU64(h, uint64(id))
		}
	}

	nodes := g.Nodes() // sorted by ID
	writeU64(h, uint64(len(nodes)))
	for _, n := range nodes {
		writeU64(h, uint64(n.ID))
		writeU64(h, uint64(n.Kind))
		writeString(h, n.FU)
		writeString(h, n.Cond)
		writeU64(h, uint64(int64(n.Block)))
		writeU64(h, uint64(int64(n.Order)))
		writeU64(h, uint64(len(n.Stmts)))
		for _, s := range n.Stmts {
			writeString(h, s.Dst)
			writeString(h, string(s.Op))
			writeString(h, s.Src1)
			writeString(h, s.Src2)
		}
	}

	arcs := g.Arcs() // sorted by ID
	writeU64(h, uint64(len(arcs)))
	for _, a := range arcs {
		writeU64(h, uint64(a.ID))
		writeU64(h, uint64(a.From))
		writeU64(h, uint64(a.To))
		writeU64(h, uint64(a.Kind))
		writeU64(h, uint64(a.Group))
		writeU64(h, uint64(a.Branch))
		writeString(h, a.Note)
	}
	return h.Sum(nil)
}

// optionsKey canonicalizes everything the global-transform stage's
// outcome depends on beyond the graph itself: the level and the resolved
// transform options (timing model, unroll depth, skip toggles, explicit
// GT5 script). opt must already be Normalized, and the resolved
// core.GTOptions form is hashed — not the raw Transform field — so the
// defaulted and explicit spellings of one configuration share keys.
func optionsKey(opt core.Options) []byte {
	h := sha256.New()
	writeU64(h, uint64(opt.Level))
	topt := core.GTOptions(opt)
	hashTransformOptions(h, topt)
	return h.Sum(nil)
}

func hashTransformOptions(h hash.Hash, topt transform.Options) {
	fus := make([]string, 0, len(topt.Timing.FUOp))
	for fu := range topt.Timing.FUOp {
		fus = append(fus, fu)
	}
	sort.Strings(fus)
	writeU64(h, uint64(len(fus)))
	for _, fu := range fus {
		iv := topt.Timing.FUOp[fu]
		writeString(h, fu)
		writeFloat(h, iv.Min)
		writeFloat(h, iv.Max)
	}
	writeFloat(h, topt.Timing.DefaultOp.Min)
	writeFloat(h, topt.Timing.DefaultOp.Max)
	writeFloat(h, topt.Timing.Wire.Min)
	writeFloat(h, topt.Timing.Wire.Max)
	writeU64(h, uint64(int64(topt.Unroll)))
	writeBool(h, topt.SkipGT1)
	writeBool(h, topt.SkipGT2)
	writeBool(h, topt.SkipGT3)
	writeBool(h, topt.SkipGT4)
	writeBool(h, topt.SkipGT5)
	writeBool(h, topt.GT5 != nil)
	if topt.GT5 != nil {
		writeU64(h, uint64(len(topt.GT5.Merges)))
		for _, m := range topt.GT5.Merges {
			writeU64(h, uint64(int64(m)))
		}
		writeU64(h, uint64(int64(topt.GT5.Reduces)))
	}
}

// effectiveSolver resolves the covering backend the synth stage will
// actually minimize with: a memo cache carries its own backend (fixed at
// construction, part of its keys), overriding Options.Solver; without a
// backend-carrying minimizer the option stands.
func effectiveSolver(opt core.Options) logic.Solver {
	if opt.Minimizer != nil {
		if cs, ok := opt.Minimizer.(interface{ Solver() logic.Solver }); ok {
			return cs.Solver()
		}
	}
	return opt.Solver
}

// u64bytes renders one integer as a key part.
func u64bytes(v uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return buf[:]
}
