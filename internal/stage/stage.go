// Package stage is the incremental synthesis engine: it runs the same
// pipeline as core.RunCtx + Synthesis.SynthesizeLogicCtx, but as an
// explicit DAG of individually cached stage nodes —
//
//	global transforms ─→ extraction ─→ per-FU local transforms ─→ per-FU synthesis
//
// — each keyed by a SHA-256 content hash over its canonical inputs (the
// CDFG fingerprint and resolved options for the global stages; the
// extracted controller's canonical bytes, local.Config key, encoding
// rung and covering-solver version for the per-controller stages) and
// stored through internal/memo's memory→disk→remote chain
// (memo.Store). A re-run after an edit recomputes only the stages whose
// inputs changed: the per-controller stages are keyed by the extracted
// machine's content, so an edit that leaves a functional unit's
// controller byte-identical skips that controller's LT and synthesis
// outright — including across fleet nodes when the store has a remote
// tier.
//
// # Correctness model
//
// The engine re-derives every stage key from actual stage inputs, never
// from an edit description, so results are bit-identical to a cold
// core.RunCtx run by construction: a stage either recomputes (same code
// path as core; the seams in core/phases.go are shared, not duplicated)
// or replays a result whose key proves identical inputs. The dirty
// classification (Classify) is advisory — it routes reporting and
// counters, not correctness. Incremental == full equivalence is enforced
// by tests over the benchmark registry and the internal/gen corpus with
// randomized edit sequences.
//
// Unlike core.RunCtx, Run never mutates the caller's graph (stages are
// cached and shared, so inputs must stay pristine). Cached stage outputs
// — the transformed graph, extracted machines, LT'd machines, synthesis
// results — are shared by reference across runs and jobs; callers must
// treat a returned Synthesis and result map as immutable.
//
// # Observability
//
// Every stage lookup lands in the obs registry: stage/hits and
// stage/misses totals, per-stage stage/<name>/hits|misses, and a
// "stage-skip" span (unit = stage name) for every cache hit so traces
// show exactly which work an incremental run avoided. Engine.Stats
// mirrors the counters programmatically.
package stage

import (
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/bm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/local"
	"repro/internal/logic"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/synth"
	"repro/internal/transform"
)

// Engine caches pipeline stages in a memo.Store. One engine is shared by
// every job of a process (the daemon constructs one at startup); it is
// safe for concurrent use, and concurrent runs needing the same stage
// collapse onto one computation via the store's singleflight.
type Engine struct {
	store *memo.Store

	gtHits      atomic.Int64
	gtMisses    atomic.Int64
	exHits      atomic.Int64
	exMisses    atomic.Int64
	ltHits      atomic.Int64
	ltMisses    atomic.Int64
	synthHits   atomic.Int64
	synthMisses atomic.Int64
}

// Stats is a snapshot of the engine's per-stage cache counters.
type Stats struct {
	// GTHits and GTMisses count global-transform stage lookups.
	GTHits, GTMisses int64
	// ExtractHits and ExtractMisses count extraction stage lookups.
	ExtractHits, ExtractMisses int64
	// LTHits and LTMisses count per-controller local-transform lookups.
	LTHits, LTMisses int64
	// SynthHits and SynthMisses count per-controller synthesis lookups.
	SynthHits, SynthMisses int64
}

// Hits returns the total stage-cache hits across all stage kinds.
func (s Stats) Hits() int64 { return s.GTHits + s.ExtractHits + s.LTHits + s.SynthHits }

// Misses returns the total stage-cache misses across all stage kinds.
func (s Stats) Misses() int64 { return s.GTMisses + s.ExtractMisses + s.LTMisses + s.SynthMisses }

// New returns an engine backed by store. A nil store selects a fresh
// in-memory-only store, giving process-local incrementality without
// persistence.
func New(store *memo.Store) *Engine {
	if store == nil {
		store, _ = memo.NewStore("") // empty dir never errors
	}
	return &Engine{store: store}
}

// Stats returns the engine's current per-stage counters.
func (e *Engine) Stats() Stats {
	return Stats{
		GTHits: e.gtHits.Load(), GTMisses: e.gtMisses.Load(),
		ExtractHits: e.exHits.Load(), ExtractMisses: e.exMisses.Load(),
		LTHits: e.ltHits.Load(), LTMisses: e.ltMisses.Load(),
		SynthHits: e.synthHits.Load(), SynthMisses: e.synthMisses.Load(),
	}
}

// count publishes one stage lookup outcome: counters always, plus a
// "stage-skip" span on hits so traces show the avoided work.
func (e *Engine) count(name string, src memo.Source, hits, misses *atomic.Int64) {
	if src == memo.SourceComputed {
		misses.Add(1)
		obs.Add("stage/misses", 1)
		obs.Add("stage/"+name+"/misses", 1)
		return
	}
	hits.Add(1)
	obs.Add("stage/hits", 1)
	obs.Add("stage/"+name+"/hits", 1)
	sp := obs.Start("stage-skip", name)
	sp.End()
}

// gtResult is the memory-only global-transform stage output: the
// transformed graph clone, its channel plan and reports, and the
// extraction options the next stage must use.
type gtResult struct {
	g       *cdfg.Graph
	plan    *transform.Plan
	reports []*transform.Report
	exOpt   extract.Options
}

// fuResult is one controller's pipeline tail: its (possibly LT'd)
// machine, the LT report (nil below OptimizedGTLT) and its synthesis.
type fuResult struct {
	m   *bm.Machine
	rep *local.Report
	res *synth.Result
}

// Run executes the full pipeline on g through the stage cache and
// returns the synthesis (as core.RunCtx would build it) plus the
// gate-level results (as Synthesis.SynthesizeLogicCtx would). g is never
// mutated. Outputs are bit-identical to the uncached core path; only
// which stages actually execute differs.
func (e *Engine) Run(ctx context.Context, g *cdfg.Graph, opt core.Options) (_ *core.Synthesis, _ map[string]*synth.Result, err error) {
	sp := obs.Start("run", opt.Level.String())
	defer func() { sp.EndErr(err) }()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	opt = opt.Normalized()

	// Stage 1: global transforms, keyed by the input graph fingerprint
	// and every resolved option the transform cascade reads. Memory-only:
	// the result holds a live graph.
	gtKey := stageKey("gt", hashGraph(g), optionsKey(opt))
	v, src, err := e.store.Do(ctx, gtKey, nil, func(context.Context) (any, error) {
		gg := g.Clone()
		plan, reports, exOpt, gerr := core.GTPhase(gg, opt)
		if gerr != nil {
			return nil, gerr
		}
		return &gtResult{g: gg, plan: plan, reports: reports, exOpt: exOpt}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	gt := v.(*gtResult)
	e.count("gt", src, &e.gtHits, &e.gtMisses)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Stage 2: extraction, keyed by the transformed graph and the channel
	// plan it feeds on. Memory-only likewise.
	exKey := stageKey("extract",
		hashGraph(gt.g),
		[]byte(gt.plan.Describe()),
		u64bytes(boolU64(gt.exOpt.SeparateWaits)))
	v, src, err = e.store.Do(ctx, exKey, nil, func(context.Context) (any, error) {
		return core.ExtractPhase(gt.g, gt.plan, gt.exOpt)
	})
	if err != nil {
		return nil, nil, err
	}
	ex := v.(*extract.Result)
	e.count("extract", src, &e.exHits, &e.exMisses)

	s := &core.Synthesis{
		Level:       opt.Level,
		Graph:       gt.g,
		Plan:        gt.plan,
		GTReports:   gt.reports,
		Machines:    map[string]*bm.Machine{},
		Shared:      map[string]map[string][]string{},
		LTReports:   map[string]*local.Report{},
		Wires:       ex.Wires,
		Primers:     ex.Primers,
		Parallelism: opt.Parallelism,
		Minimizer:   opt.Minimizer,
		Solver:      opt.Solver,
		Encodings:   opt.Encodings,
	}
	fus := make([]string, 0, len(ex.Machines))
	for fu := range ex.Machines {
		fus = append(fus, fu)
	}
	sort.Strings(fus)

	solver := effectiveSolver(opt)
	// Stages 3+4: the per-controller chains are independent; fan them out
	// like core's LT/synth loops, each controller flowing through its LT
	// lookup straight into its synth lookup without a barrier.
	outs, err := par.NamedMapCtx(ctx, "stage", opt.Parallelism, fus, func(ctx context.Context, _ int, fu string) (*fuResult, error) {
		return e.runFU(ctx, fu, ex.Machines[fu], opt, solver)
	})
	if err != nil {
		return nil, nil, err
	}
	results := map[string]*synth.Result{}
	for i, fu := range fus {
		s.Machines[fu] = outs[i].m
		if outs[i].rep != nil {
			s.LTReports[fu] = outs[i].rep
			s.Shared[fu] = outs[i].rep.SharedWires
		}
		results[fu] = outs[i].res
	}
	return s, results, nil
}

// runFU runs one controller's LT and synthesis stages through the cache.
func (e *Engine) runFU(ctx context.Context, fu string, m *bm.Machine, opt core.Options, solver logic.Solver) (*fuResult, error) {
	mb, err := bm.EncodeMachine(m)
	if err != nil {
		return nil, err
	}
	out := &fuResult{m: m}
	if opt.Level == core.OptimizedGTLT {
		cfg := core.LTConfigFor(opt, fu)
		ltKey := stageKey("lt", mb, []byte(cfg.Key()))
		v, src, lerr := e.store.Do(ctx, ltKey, ltCodec{}, func(context.Context) (any, error) {
			mm := m.Clone()
			rep, perr := core.LTPhase(mm, cfg, fu)
			if perr != nil {
				return nil, perr
			}
			return &ltResult{M: mm, Report: rep}, nil
		})
		if lerr != nil {
			return nil, lerr
		}
		lt := v.(*ltResult)
		e.count("lt", src, &e.ltHits, &e.ltMisses)
		out.m, out.rep = lt.M, lt.Report
		if mb, err = bm.EncodeMachine(out.m); err != nil {
			return nil, err
		}
	}
	rung := core.RungFor(opt.Encodings, fu)
	synthKey := stageKey("synth",
		mb,
		u64bytes(uint64(int64(rung))),
		u64bytes(uint64(solver)),
		[]byte(logic.SolverVersion))
	v, src, serr := e.store.Do(ctx, synthKey, synthCodec{}, func(ctx context.Context) (any, error) {
		return core.SynthPhase(ctx, out.m, opt.Parallelism, opt.Minimizer, opt.Solver, rung, fu)
	})
	if serr != nil {
		return nil, serr
	}
	out.res = v.(*synth.Result)
	e.count("synth", src, &e.synthHits, &e.synthMisses)
	return out, nil
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
