package stage

import (
	"bytes"
	"encoding/json"

	"repro/internal/bm"
	"repro/internal/local"
	"repro/internal/memo"
	"repro/internal/synth"
)

// The serializable stage payloads. The LT stage caches the locally
// optimized machine plus its report; the synth stage caches the
// gate-level result (through internal/synth's codec). Both are wrapped
// by memo.Store in the salted blob envelope; decode failures are misses.
// The GT and extract stages hold live graph/plan pointers and stay
// memory-only (nil codec).

// ltResult is the per-controller local-transform stage output.
type ltResult struct {
	M      *bm.Machine
	Report *local.Report
}

// ltDoc is ltResult's serialized form. The machine is embedded as its
// own canonical document (bm.EncodeMachine), the report fields inline.
type ltDoc struct {
	Machine     json.RawMessage     `json:"machine"`
	Name        string              `json:"name"`
	Moves       []string            `json:"moves,omitempty"`
	Assumptions []string            `json:"assumptions,omitempty"`
	Shared      map[string][]string `json:"shared,omitempty"`
}

// ltCodec serializes ltResult for the disk/remote tiers.
type ltCodec struct{}

func (ltCodec) Encode(v any) ([]byte, bool) {
	lt, ok := v.(*ltResult)
	if !ok {
		return nil, false
	}
	mb, err := bm.EncodeMachine(lt.M)
	if err != nil {
		return nil, false
	}
	doc := ltDoc{
		Machine:     mb,
		Name:        lt.Report.Machine,
		Moves:       lt.Report.Moves,
		Assumptions: lt.Report.Assumptions,
		Shared:      lt.Report.SharedWires,
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return nil, false
	}
	return data, true
}

func (ltCodec) Decode(data []byte) (any, bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc ltDoc
	if dec.Decode(&doc) != nil || dec.More() {
		return nil, false
	}
	m, err := bm.DecodeMachine(doc.Machine)
	if err != nil {
		return nil, false
	}
	rep := &local.Report{
		Machine:     doc.Name,
		Moves:       doc.Moves,
		Assumptions: doc.Assumptions,
		SharedWires: doc.Shared,
	}
	// OptimizeWith always produces a non-nil SharedWires map; a decoded
	// report must be indistinguishable from a computed one.
	if rep.SharedWires == nil {
		rep.SharedWires = map[string][]string{}
	}
	return &ltResult{M: m, Report: rep}, true
}

// synthCodec serializes *synth.Result for the disk/remote tiers.
type synthCodec struct{}

func (synthCodec) Encode(v any) ([]byte, bool) {
	r, ok := v.(*synth.Result)
	if !ok {
		return nil, false
	}
	data, err := synth.EncodeResult(r)
	if err != nil {
		return nil, false
	}
	return data, true
}

func (synthCodec) Decode(data []byte) (any, bool) {
	r, err := synth.DecodeResult(data)
	if err != nil {
		return nil, false
	}
	return r, true
}

// Both codecs must satisfy the store's interface.
var (
	_ memo.BlobCodec = ltCodec{}
	_ memo.BlobCodec = synthCodec{}
)
