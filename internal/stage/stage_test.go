package stage

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/memo"
)

// coreBytes runs the uncached pipeline and returns the canonical
// synthesized document.
func coreBytes(t *testing.T, g *cdfg.Graph, opt core.Options) []byte {
	t.Helper()
	s, err := core.Run(g, opt)
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		t.Fatalf("SynthesizeLogic: %v", err)
	}
	data, err := codec.EncodeSynthesis(s, results)
	if err != nil {
		t.Fatalf("EncodeSynthesis: %v", err)
	}
	return data
}

// engineBytes runs the stage engine and returns the canonical document.
func engineBytes(t *testing.T, e *Engine, g *cdfg.Graph, opt core.Options) []byte {
	t.Helper()
	s, results, err := e.Run(context.Background(), g, opt)
	if err != nil {
		t.Fatalf("engine.Run: %v", err)
	}
	data, err := codec.EncodeSynthesis(s, results)
	if err != nil {
		t.Fatalf("EncodeSynthesis: %v", err)
	}
	return data
}

// testOptions returns the default options with a fresh memory-only hfmin
// cache, which both paths share so differences can only come from the
// stage layer itself.
func testOptions(t *testing.T) core.Options {
	t.Helper()
	opt := core.DefaultOptions()
	min, err := memo.New("")
	if err != nil {
		t.Fatal(err)
	}
	opt.Minimizer = min
	return opt
}

// TestEngineMatchesCore asserts that the stage engine's output is
// byte-identical to the uncached core pipeline on every registered
// benchmark, cold and warm, and that the warm run hits every stage.
func TestEngineMatchesCore(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opt := testOptions(t)
			want := coreBytes(t, b.Build(), opt)

			e := New(nil)
			cold := engineBytes(t, e, b.Build(), opt)
			if !bytes.Equal(cold, want) {
				t.Fatal("cold engine run differs from core pipeline")
			}
			st := e.Stats()
			if st.Hits() != 0 || st.Misses() == 0 {
				t.Fatalf("cold run stats: %+v", st)
			}

			warm := engineBytes(t, e, b.Build(), opt)
			if !bytes.Equal(warm, want) {
				t.Fatal("warm engine run differs from core pipeline")
			}
			w := e.Stats()
			if w.Misses() != st.Misses() {
				t.Fatalf("warm run recomputed %d stages", w.Misses()-st.Misses())
			}
			if w.Hits() != st.Misses() {
				t.Fatalf("warm run hit %d of %d stages", w.Hits(), st.Misses())
			}
		})
	}
}

// TestEngineDiskTier asserts that a fresh engine over the same store
// directory replays the per-controller stages from disk, byte-identical.
func TestEngineDiskTier(t *testing.T) {
	dir := t.TempDir()
	opt := testOptions(t)
	g := diffeq.Build(diffeq.DefaultParams())
	want := coreBytes(t, g.Clone(), opt)

	store, err := memo.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := New(store)
	if got := engineBytes(t, e, g, opt); !bytes.Equal(got, want) {
		t.Fatal("cold engine run differs from core pipeline")
	}

	store2, err := memo.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(store2)
	if got := engineBytes(t, e2, g, opt); !bytes.Equal(got, want) {
		t.Fatal("disk-tier engine run differs from core pipeline")
	}
	st := e2.Stats()
	// GT and extract stay memory-only, so they recompute; every LT and
	// synth stage must come from disk.
	if st.LTMisses != 0 || st.SynthMisses != 0 {
		t.Fatalf("disk-tier run recomputed controllers: %+v", st)
	}
	if ds := store2.Stats(); ds.DiskHits == 0 {
		t.Fatalf("disk-tier run recorded no disk hits: %+v", ds)
	}
}

// TestEngineOpSwapLocality covers the flagship incremental scenario: an
// operation swap on one functional unit changes the graph fingerprint
// (GT and extraction recompute) but leaves every other functional
// unit's extracted controller byte-identical, so at most the edited
// unit's LT and synthesis stages recompute while the rest replay from
// cache — and the result still matches a cold full run of the edited
// design.
func TestEngineOpSwapLocality(t *testing.T) {
	opt := testOptions(t)
	g := diffeq.Build(diffeq.DefaultParams())

	e := New(nil)
	engineBytes(t, e, g, opt)
	base := e.Stats()

	edited := g.Clone()
	if !swapOneOp(edited) {
		t.Fatal("no swappable +/- operation found in diffeq")
	}
	want := coreBytes(t, edited.Clone(), opt)
	got := engineBytes(t, e, edited, opt)
	if !bytes.Equal(got, want) {
		t.Fatal("incremental run on edited design differs from cold full run")
	}
	st := e.Stats()
	if st.GTMisses != base.GTMisses+1 {
		t.Fatalf("edited graph did not recompute GT: %+v", st)
	}
	if st.LTMisses > base.LTMisses+1 || st.SynthMisses > base.SynthMisses+1 {
		t.Fatalf("op swap recomputed more than the edited controller: base %+v now %+v", base, st)
	}
	if st.LTHits <= base.LTHits || st.SynthHits <= base.SynthHits {
		t.Fatalf("op swap did not replay controllers from cache: %+v", st)
	}
}

// swapOneOp flips the first + to - (or - to +) on an FU-bound operation
// node, the minimal single-FU edit.
func swapOneOp(g *cdfg.Graph) bool {
	for _, n := range g.Nodes() {
		if n.Kind != cdfg.KindOp || n.FU == "" {
			continue
		}
		for i := range n.Stmts {
			switch n.Stmts[i].Op {
			case cdfg.OpAdd:
				n.Stmts[i].Op = cdfg.OpSub
				return true
			case cdfg.OpSub:
				n.Stmts[i].Op = cdfg.OpAdd
				return true
			}
		}
	}
	return false
}

// TestEngineNeverMutatesInput asserts Run leaves the caller's graph
// untouched (core.RunCtx mutates in place; the engine must not).
func TestEngineNeverMutatesInput(t *testing.T) {
	opt := testOptions(t)
	g := diffeq.Build(diffeq.DefaultParams())
	before := hashGraph(g)
	engineBytes(t, New(nil), g, opt)
	if !bytes.Equal(before, hashGraph(g)) {
		t.Fatal("engine.Run mutated the input graph")
	}
}
