package stage

import (
	"reflect"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/diffeq"
)

// opSwapDelta builds a retype op flipping node id's first statement
// between + and -, the canonical local edit.
func opSwapDelta(t *testing.T, g *cdfg.Graph, id int) *codec.DeltaDoc {
	t.Helper()
	n := g.Node(cdfg.NodeID(id))
	if n == nil || len(n.Stmts) == 0 {
		t.Fatalf("node %d unusable for an op swap", id)
	}
	s := n.Stmts[0]
	op := "-"
	if s.Op == cdfg.OpSub {
		op = "+"
	}
	return &codec.DeltaDoc{
		Version: codec.Version,
		Kind:    codec.KindDelta,
		Ops: []codec.DeltaOp{{
			Op:    codec.OpRetypeNode,
			ID:    &id,
			Stmts: []codec.StmtDoc{{Dst: s.Dst, Op: op, Src1: s.Src1, Src2: s.Src2}},
		}},
	}
}

// findOpNode returns a KindOp node bound to a functional unit.
func findOpNode(t *testing.T, g *cdfg.Graph) *cdfg.Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Kind == cdfg.KindOp && n.FU != "" && len(n.Stmts) > 0 &&
			(n.Stmts[0].Op == cdfg.OpAdd || n.Stmts[0].Op == cdfg.OpSub) {
			return n
		}
	}
	t.Fatal("no FU-bound op node found")
	return nil
}

// TestClassifyLocalOpSwap: an operation swap preserving shape is local
// to its functional unit.
func TestClassifyLocalOpSwap(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	n := findOpNode(t, g)
	d := opSwapDelta(t, g, int(n.ID))
	dirty := Classify(g, d)
	if dirty.Global {
		t.Fatal("op swap classified global")
	}
	if !reflect.DeepEqual(dirty.FUs, []string{n.FU}) {
		t.Fatalf("dirty FUs %v, want [%s]", dirty.FUs, n.FU)
	}
}

// TestClassifyGlobalEdits: anything beyond a shape-preserving retype is
// a full recompute.
func TestClassifyGlobalEdits(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	n := findOpNode(t, g)
	id := int(n.ID)
	s := n.Stmts[0]
	order := 99
	cond := "c"
	one := 1
	cases := map[string]codec.DeltaOp{
		"retime":       {Op: codec.OpRetime, ID: &id, Order: &order},
		"remove node":  {Op: codec.OpRemoveNode, ID: &id},
		"rewire arc":   {Op: codec.OpRewireArc, ID: &one, From: &id},
		"retype cond":  {Op: codec.OpRetypeNode, ID: &id, Cond: &cond},
		"dst rename":   {Op: codec.OpRetypeNode, ID: &id, Stmts: []codec.StmtDoc{{Dst: "ZZ", Op: string(s.Op), Src1: s.Src1, Src2: s.Src2}}},
		"src rename":   {Op: codec.OpRetypeNode, ID: &id, Stmts: []codec.StmtDoc{{Dst: s.Dst, Op: string(s.Op), Src1: "ZZ", Src2: s.Src2}}},
		"to mov":       {Op: codec.OpRetypeNode, ID: &id, Stmts: []codec.StmtDoc{{Dst: s.Dst, Op: "mov", Src1: s.Src1}}},
		"stmt count":   {Op: codec.OpRetypeNode, ID: &id, Stmts: []codec.StmtDoc{{Dst: s.Dst, Op: string(s.Op), Src1: s.Src1, Src2: s.Src2}, {Dst: s.Dst, Op: string(s.Op), Src1: s.Src1, Src2: s.Src2}}},
		"unknown node": {Op: codec.OpRetypeNode, ID: &order, Stmts: []codec.StmtDoc{{Dst: s.Dst, Op: string(s.Op), Src1: s.Src1, Src2: s.Src2}}},
	}
	for name, op := range cases {
		d := &codec.DeltaDoc{Version: codec.Version, Kind: codec.KindDelta, Ops: []codec.DeltaOp{op}}
		dirty := Classify(g, d)
		if !dirty.Global {
			t.Errorf("%s: classified local (%v), want global", name, dirty.FUs)
		}
		if dirty.FUs != nil {
			t.Errorf("%s: global classification kept FUs %v", name, dirty.FUs)
		}
	}
}

// TestClassifyMultiFUSorted: several local ops collect sorted unique
// FUs; one global op poisons the whole delta.
func TestClassifyMultiFU(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	var ops []codec.DeltaOp
	fus := map[string]bool{}
	for _, n := range g.Nodes() {
		if n.Kind == cdfg.KindOp && n.FU != "" && len(n.Stmts) > 0 &&
			(n.Stmts[0].Op == cdfg.OpAdd || n.Stmts[0].Op == cdfg.OpSub) {
			d := opSwapDelta(t, g, int(n.ID))
			ops = append(ops, d.Ops[0])
			fus[n.FU] = true
		}
	}
	if len(fus) < 2 {
		t.Skip("need at least two FUs with swappable ops")
	}
	d := &codec.DeltaDoc{Version: codec.Version, Kind: codec.KindDelta, Ops: ops}
	dirty := Classify(g, d)
	if dirty.Global {
		t.Fatal("all-local delta classified global")
	}
	if len(dirty.FUs) != len(fus) {
		t.Fatalf("dirty FUs %v, want %d distinct units", dirty.FUs, len(fus))
	}
	for i := 1; i < len(dirty.FUs); i++ {
		if dirty.FUs[i-1] >= dirty.FUs[i] {
			t.Fatalf("dirty FUs not sorted unique: %v", dirty.FUs)
		}
	}

	id := int(findOpNode(t, g).ID)
	order := 5
	d.Ops = append(d.Ops, codec.DeltaOp{Op: codec.OpRetime, ID: &id, Order: &order})
	if dirty := Classify(g, d); !dirty.Global {
		t.Error("delta with a retime op classified local")
	}
}
