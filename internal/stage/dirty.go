package stage

import (
	"sort"

	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/obs"
)

// Dirty is the result of classifying a CDFG delta's blast radius: which
// parts of the stage graph an incremental re-run can expect to recompute.
//
// The classification is deliberately conservative and purely advisory.
// Correctness never depends on it — every stage key is re-derived from
// actual stage inputs, so a "local" edit that in fact perturbs the
// global transforms simply misses the per-controller caches and
// recomputes. Classify exists so jobs can report expected scope and so
// the obs counters distinguish local edits from global ones.
type Dirty struct {
	// Global reports that the edit can change the global-transform
	// outcome, invalidating every downstream stage (full recompute, never
	// a wrong result).
	Global bool
	// FUs lists the functional units whose controllers the edit touches
	// when Global is false, sorted and de-duplicated. Only those units'
	// local-transform and synthesis stages are expected to recompute —
	// and even they hit when the edit leaves the extracted controller
	// byte-identical (e.g. an operation swap on one FU).
	FUs []string
}

// Classify inspects a decoded delta against the graph it will be applied
// to and reports the edit's expected blast radius. Only the narrowest
// recognizable edit stays local: replacing the statements of an existing
// operation node bound to a functional unit, with the same statement
// count, same destination/source registers per statement, and data-op ↔
// data-op (mov-ness preserved) — i.e. an operation retype like + → -.
// Everything else — structural edits, retiming, arc rewires, condition
// changes, register renames — is classified Global, because the
// global-transform cascade observes it.
//
// Classify publishes obs counters: stage/dirty/global or
// stage/dirty/local per call, and stage/dirty (total FUs marked).
func Classify(g *cdfg.Graph, d *codec.DeltaDoc) Dirty {
	var dirty Dirty
	seen := map[string]bool{}
	for _, op := range d.Ops {
		fu, local := localOp(g, op)
		if !local {
			dirty.Global = true
			break
		}
		if !seen[fu] {
			seen[fu] = true
			dirty.FUs = append(dirty.FUs, fu)
		}
	}
	if dirty.Global {
		dirty.FUs = nil
		obs.Add("stage/dirty/global", 1)
		return dirty
	}
	sort.Strings(dirty.FUs)
	obs.Add("stage/dirty/local", 1)
	obs.Add("stage/dirty", int64(len(dirty.FUs)))
	return dirty
}

// localOp reports whether one edit op is confined to a single functional
// unit's controller, and which unit.
func localOp(g *cdfg.Graph, op codec.DeltaOp) (string, bool) {
	if op.Op != codec.OpRetypeNode || op.Stmts == nil || op.ID == nil {
		return "", false
	}
	n := g.Node(cdfg.NodeID(*op.ID))
	if n == nil || n.Kind != cdfg.KindOp || n.FU == "" {
		return "", false
	}
	if len(op.Stmts) != len(n.Stmts) {
		return "", false
	}
	for i, sd := range op.Stmts {
		s := n.Stmts[i]
		if sd.Dst != s.Dst || sd.Src1 != s.Src1 || sd.Src2 != s.Src2 {
			return "", false
		}
		// A mov ↔ data-op flip changes whether the node counts as FU work
		// (cdfg.Node.UsesFU), which the transforms observe.
		if (cdfg.Op(sd.Op) == cdfg.OpMov) != (s.Op == cdfg.OpMov) {
			return "", false
		}
	}
	return n.FU, true
}
