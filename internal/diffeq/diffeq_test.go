package diffeq

import (
	"math"
	"testing"
)

func TestReferenceMatchesClosedLoop(t *testing.T) {
	// The scheduled RTL must implement the Euler update
	// u' = u − 3x·u·dx − 3y·dx, y' = y + u·dx, x' = x + dx.
	p := DefaultParams()
	got := Reference(p)
	x, y, u := p.X0, p.Y0, p.U0
	for x < p.A {
		u1 := u - 3*x*u*p.DX - 3*y*p.DX
		y1 := y + u*p.DX
		x1 := x + p.DX
		x, y, u = x1, y1, u1
	}
	if math.Abs(got["X"]-x) > 1e-12 || math.Abs(got["Y"]-y) > 1e-12 || math.Abs(got["U"]-u) > 1e-12 {
		t.Errorf("reference (%v,%v,%v) != closed loop (%v,%v,%v)",
			got["X"], got["Y"], got["U"], x, y, u)
	}
}

func TestIterations(t *testing.T) {
	if n := Iterations(DefaultParams()); n != 8 {
		t.Errorf("iterations = %d, want 8", n)
	}
	if n := Iterations(Params{X0: 2, A: 1, DX: 0.5}); n != 0 {
		t.Errorf("empty loop iterations = %d", n)
	}
}

func TestBuildValidates(t *testing.T) {
	g := Build(DefaultParams())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.FUs) != 4 {
		t.Errorf("FUs = %v", g.FUs)
	}
}

func TestPaperNumbersConsistent(t *testing.T) {
	// Published Figure 13 totals must match the row sums.
	p, l := GateTotals(PaperFig13Yun)
	if p != 93 || l != 307 {
		t.Errorf("Yun totals = %d/%d, want 93/307", p, l)
	}
	p, l = GateTotals(PaperFig13Ours)
	if p != 73 || l != 244 {
		t.Errorf("paper-flow totals = %d/%d, want 73/244", p, l)
	}
	// Figure 12 rows are complete.
	for _, row := range PaperFig12 {
		for _, fu := range FUs {
			if row.States[fu] == 0 || row.Transitions[fu] == 0 {
				t.Errorf("row %s missing %s", row.Name, fu)
			}
		}
	}
	if PaperFig12[0].Channels != 17 || PaperFig12[1].Channels != 5 {
		t.Error("published channel counts wrong")
	}
}

func TestInitialConditionVariants(t *testing.T) {
	cases := []Params{
		{X0: 0, Y0: 1, U0: 0, DX: 0.25, A: 1},
		{X0: 0.5, Y0: 2, U0: -1, DX: 0.125, A: 2},
		{X0: 1, Y0: 1, U0: 1, DX: 1, A: 1}, // zero iterations
	}
	for _, p := range cases {
		r := Reference(p)
		if p.X0 >= p.A {
			if r["X"] != p.X0 || r["Y"] != p.Y0 {
				t.Errorf("empty loop mutated state: %+v", r)
			}
			continue
		}
		if r["X"] < p.A {
			t.Errorf("loop exited early: X=%v < a=%v", r["X"], p.A)
		}
	}
}
