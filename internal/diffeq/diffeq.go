// Package diffeq defines the differential equation solver high-level
// synthesis benchmark (the HAL benchmark of De Micheli's textbook) in the
// scheduled, resource-bound form used by Yun et al. and by Theobald &
// Nowick's DAC 2001 case study: two ALUs and two multipliers, with the loop
// control bound to ALU2.
//
// The benchmark solves y” + 3xy' + 3y = 0 by forward Euler steps:
//
//	while (x < a) {
//	    x1 = x + dx
//	    u1 = u - 3*x*u*dx - 3*y*dx
//	    y1 = y + u*dx
//	    x = x1; u = u1; y = y1
//	}
//
// In the scheduled RTL form reconstructed from the paper's prose:
//
//	pre-loop:  ALU1: B := dx2 + dx            (B = 3·dx, dx2 holds 2·dx)
//	loop body: MUL1: M1 := U * X1 ; M1 := A * B
//	           MUL2: M2 := U * dx
//	           ALU1: A := Y + M1 ; U := U - M1
//	           ALU2: X := X + dx ; Y := Y + M2 ; X1 := X ; C := X < a
//	           LOOP/ENDLOOP bound to ALU2 on condition register C
//
// Dataflow: A = y + u·x, M1' = A·B = 3y·dx + 3x·u·dx, U' = u − M1',
// Y' = y + u·dx, X' = x + dx — exactly the Euler update.
package diffeq

import (
	"repro/internal/cdfg"
)

// Functional unit names of the benchmark.
const (
	ALU1 = "ALU1"
	ALU2 = "ALU2"
	MUL1 = "MUL1"
	MUL2 = "MUL2"
)

// FUs lists the benchmark's functional units in the paper's column order.
var FUs = []string{ALU1, ALU2, MUL1, MUL2}

// Params are the environment inputs of the solver.
type Params struct {
	X0, Y0, U0 float64 // initial conditions
	DX         float64 // step size
	A          float64 // upper bound on x
}

// DefaultParams returns the parameter set used throughout the tests and
// benchmarks: a short trajectory with a handful of iterations.
func DefaultParams() Params {
	return Params{X0: 0, Y0: 1, U0: 0, DX: 0.125, A: 1.0}
}

// Program builds the scheduled DIFFEQ program for the given parameters.
func Program(p Params) *cdfg.Program {
	pr := cdfg.NewProgram("diffeq", FUs...)
	pr.Const("dx", "dx2", "a")
	pr.InitAll(map[string]float64{
		"X":   p.X0,
		"Y":   p.Y0,
		"U":   p.U0,
		"X1":  p.X0, // X1 mirrors X; initialized with x0 for the first iteration
		"dx":  p.DX,
		"dx2": 2 * p.DX,
		"a":   p.A,
		"C":   b2f(p.X0 < p.A), // loop condition precomputed by the environment
	})
	pr.Op(ALU1, "B", cdfg.OpAdd, "dx2", "dx")
	pr.Loop(ALU2, "C")
	pr.Op(MUL1, "M1", cdfg.OpMul, "U", "X1")
	pr.Op(MUL2, "M2", cdfg.OpMul, "U", "dx")
	pr.Op(ALU1, "A", cdfg.OpAdd, "Y", "M1")
	pr.Op(MUL1, "M1", cdfg.OpMul, "A", "B")
	pr.Op(ALU1, "U", cdfg.OpSub, "U", "M1")
	pr.Op(ALU2, "X", cdfg.OpAdd, "X", "dx")
	pr.Op(ALU2, "Y", cdfg.OpAdd, "Y", "M2")
	pr.Assign(ALU2, "X1", "X")
	pr.Op(ALU2, "C", cdfg.OpLT, "X", "a")
	pr.EndLoop()
	return pr
}

// Build constructs the benchmark CDFG, panicking on builder errors (the
// program is statically correct).
func Build(p Params) *cdfg.Graph {
	g, err := Program(p).Build()
	if err != nil {
		panic(err)
	}
	return g
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Reference executes the scheduled program sequentially and returns the
// final register file; this is the functional golden model every
// synthesized implementation must match.
func Reference(p Params) map[string]float64 {
	r := map[string]float64{
		"X": p.X0, "Y": p.Y0, "U": p.U0, "X1": p.X0,
		"dx": p.DX, "dx2": 2 * p.DX, "a": p.A,
		"C": b2f(p.X0 < p.A),
	}
	r["B"] = r["dx2"] + r["dx"]
	for r["C"] != 0 {
		r["M1"] = r["U"] * r["X1"]
		r["M2"] = r["U"] * r["dx"]
		r["A"] = r["Y"] + r["M1"]
		r["M1"] = r["A"] * r["B"]
		r["U"] = r["U"] - r["M1"]
		r["X"] = r["X"] + r["dx"]
		r["Y"] = r["Y"] + r["M2"]
		r["X1"] = r["X"]
		r["C"] = b2f(r["X"] < r["a"])
	}
	return r
}

// Iterations returns the number of loop iterations the reference model
// performs for the given parameters.
func Iterations(p Params) int {
	n := 0
	for x := p.X0; x < p.A; x += p.DX {
		n++
	}
	return n
}

// StageRow is one row of the paper's Figure 12 (state machine comparison).
type StageRow struct {
	Name     string
	Channels int
	// Per-controller state and transition counts, indexed like FUs.
	States      map[string]int
	Transitions map[string]int
}

// PaperFig12 holds the published Figure 12 rows for comparison in
// EXPERIMENTS.md and the benchmark harness.
var PaperFig12 = []StageRow{
	{
		Name: "unoptimized", Channels: 17,
		States:      map[string]int{ALU1: 26, ALU2: 45, MUL1: 21, MUL2: 12},
		Transitions: map[string]int{ALU1: 29, ALU2: 52, MUL1: 24, MUL2: 14},
	},
	{
		Name: "optimized-GT", Channels: 5,
		States:      map[string]int{ALU1: 16, ALU2: 26, MUL1: 12, MUL2: 8},
		Transitions: map[string]int{ALU1: 18, ALU2: 32, MUL1: 14, MUL2: 10},
	},
	{
		Name: "optimized-GT-and-LT", Channels: 5,
		States:      map[string]int{ALU1: 7, ALU2: 11, MUL1: 6, MUL2: 4},
		Transitions: map[string]int{ALU1: 9, ALU2: 13, MUL1: 6, MUL2: 5},
	},
	{
		Name: "YUN (manual)", Channels: 5,
		States:      map[string]int{ALU1: 7, ALU2: 14, MUL1: 4, MUL2: 3},
		Transitions: map[string]int{ALU1: 9, ALU2: 16, MUL1: 4, MUL2: 3},
	},
}

// GateRow is one row of the paper's Figure 13 (gate-level comparison).
type GateRow struct {
	Controller string
	Products   int
	Literals   int
}

// PaperFig13Yun holds Yun et al.'s manual gate-level results (Figure 13,
// left columns).
var PaperFig13Yun = []GateRow{
	{ALU1, 18, 110},
	{ALU2, 46, 141},
	{MUL1, 19, 41},
	{MUL2, 10, 15},
}

// PaperFig13Ours holds the paper's automated-flow gate-level results
// (Figure 13, right columns).
var PaperFig13Ours = []GateRow{
	{ALU1, 14, 83},
	{ALU2, 40, 113},
	{MUL1, 11, 30},
	{MUL2, 8, 18},
}

// GateTotals sums a Figure 13 column.
func GateTotals(rows []GateRow) (products, literals int) {
	for _, r := range rows {
		products += r.Products
		literals += r.Literals
	}
	return
}
