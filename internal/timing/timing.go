// Package timing performs conservative min/max interval timing analysis of
// CDFGs. It is the automated replacement for the "detailed timing analysis"
// the paper requires before applying the relative-timing transform (GT3)
// and several local transforms: it computes, for every node instance in a
// K-iteration unrolling of the graph, the earliest and latest possible
// firing and completion times under a per-functional-unit delay model.
package timing

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cdfg"
)

// Interval is a closed [Min,Max] time interval.
type Interval struct {
	Min, Max float64
}

// Add returns the elementwise sum of two intervals.
func (i Interval) Add(j Interval) Interval {
	return Interval{Min: i.Min + j.Min, Max: i.Max + j.Max}
}

// MaxWith returns the interval of max(a,b) for independent a, b.
func (i Interval) MaxWith(j Interval) Interval {
	return Interval{Min: math.Max(i.Min, j.Min), Max: math.Max(i.Max, j.Max)}
}

// Model is a delay model: per-functional-unit operation delays, a default
// for control and assignment nodes, and a wire propagation delay.
type Model struct {
	FUOp      map[string]Interval
	DefaultOp Interval
	Wire      Interval
}

// DefaultModel returns a plausible datapath model: multipliers several
// times slower than ALUs, modest wire delays.
func DefaultModel() Model {
	return Model{
		FUOp: map[string]Interval{
			"ALU1": {8, 12}, "ALU2": {8, 12},
			"MUL1": {30, 40}, "MUL2": {30, 40},
		},
		DefaultOp: Interval{1, 2},
		Wire:      Interval{0.5, 1},
	}
}

func (m Model) opDelay(n *cdfg.Node) Interval {
	if n.UsesFU() {
		if d, ok := m.FUOp[n.FU]; ok {
			return d
		}
	}
	return m.DefaultOp
}

// instance is one firing of a node in the unrolled execution.
type instance struct {
	node *cdfg.Node
	key  string // iteration path, e.g. "" or "2" or "1.0"
	// ins are incoming timed edges.
	ins         []*edge
	start, done Interval
	order       int
}

// edge is an instance of a constraint arc in the unrolling.
type edge struct {
	arc     *cdfg.Arc
	from    *instance
	arrival Interval
}

// Analysis holds arrival intervals for a K-iteration unrolling.
type Analysis struct {
	g     *cdfg.Graph
	model Model
	K     int
	insts map[string]*instance // key: "n<id>@<path>"
	byArc map[cdfg.ArcID][]*edge

	minMemo map[[2]*instance]float64
}

func ikey(id cdfg.NodeID, path string) string {
	return fmt.Sprintf("n%d@%s", id, path)
}

// Analyze unrolls every loop K times (assuming all iterations execute and
// every conditional is reachable) and propagates arrival intervals.
func Analyze(g *cdfg.Graph, m Model, K int) (*Analysis, error) {
	if K < 2 {
		K = 2
	}
	a := &Analysis{g: g, model: m, K: K, insts: map[string]*instance{}, byArc: map[cdfg.ArcID][]*edge{}}
	a.buildInstances()
	a.wireEdges()
	if err := a.propagate(); err != nil {
		return nil, err
	}
	return a, nil
}

// loopChain returns the chain of enclosing loop blocks of node n, outermost
// first. The root/end nodes of a loop live in the parent block, so they are
// not inside their own loop.
func (a *Analysis) loopChain(n *cdfg.Node) []*cdfg.Block {
	var chain []*cdfg.Block
	b := n.Block
	for b >= 0 {
		blk := a.g.Blocks[b]
		if blk.Kind == cdfg.BlockLoop {
			chain = append([]*cdfg.Block{blk}, chain...)
		}
		b = blk.Parent
	}
	return chain
}

func (a *Analysis) buildInstances() {
	for _, n := range a.g.Nodes() {
		for _, p := range a.nodePaths(n) {
			key := ikey(n.ID, p)
			a.insts[key] = &instance{node: n, key: p}
		}
	}
}

// nodePaths computes iteration paths uniformly: a node's instance count is
// K^(number of loops it fires within). LOOP roots fire K+1 times in their
// own loop (the last examination exits); ENDLOOP fires K times.
func (a *Analysis) nodePaths(n *cdfg.Node) []string {
	// Depth components, outermost first. Each component is the number of
	// instances at that level.
	var limits []int
	for _, blk := range a.loopChain(n) {
		_ = blk
		limits = append(limits, a.K)
	}
	if n.Kind == cdfg.KindLoop {
		limits = append(limits, a.K+1)
	}
	if n.Kind == cdfg.KindEndLoop {
		limits = append(limits, a.K)
	}
	paths := []string{""}
	for _, lim := range limits {
		var next []string
		for _, p := range paths {
			for i := 0; i < lim; i++ {
				if p == "" {
					next = append(next, fmt.Sprintf("%d", i))
				} else {
					next = append(next, fmt.Sprintf("%s.%d", p, i))
				}
			}
		}
		paths = next
	}
	return paths
}

func join(p string, i int) string {
	if p == "" {
		return fmt.Sprintf("%d", i)
	}
	return fmt.Sprintf("%s.%d", p, i)
}

// wireEdges connects instances according to arc semantics.
func (a *Analysis) wireEdges() {
	g := a.g
	for _, arc := range g.Arcs() {
		from, to := g.Node(arc.From), g.Node(arc.To)
		fromLoop := a.ownLoopOf(from)
		toLoop := a.ownLoopOf(to)
		switch {
		case arc.Kind == cdfg.ArcBackward:
			// u@(p,i) → v@(p,i+1), plus pre-enable from the loop root's
			// entry firing.
			loop := a.innermostCommonLoop(from, to)
			if loop == nil {
				continue
			}
			for _, p := range a.nodePaths(from) {
				pp, i := splitLast(p)
				if i+1 < a.K {
					a.connect(arc, ikey(from.ID, p), ikey(to.ID, join(pp, i+1)))
				}
			}
			// Pre-enabled on entry: available when the root's first firing
			// completes.
			root := g.Node(loop.Root)
			for _, rp := range a.nodePaths(root) {
				pp, i := splitLast(rp)
				if i == 0 {
					a.connect(arc, ikey(root.ID, rp), ikey(to.ID, join(pp, 0)))
				}
			}
		case arc.Group == cdfg.GroupRepeat:
			// ENDLOOP@(p,i) → LOOP@(p,i+1).
			for _, p := range a.nodePaths(from) {
				pp, i := splitLast(p)
				a.connect(arc, ikey(from.ID, p), ikey(to.ID, join(pp, i+1)))
			}
		case arc.Group == cdfg.GroupEnter:
			// parent scope → LOOP@(p,0).
			for _, p := range a.nodePaths(from) {
				a.connect(arc, ikey(from.ID, p), ikey(to.ID, join(p, 0)))
			}
		case to.Kind == cdfg.KindLoop && toLoop != nil && a.sameLoop(fromLoop, toLoop):
			// Should not occur (covered by groups), kept for safety.
			continue
		case from.Kind == cdfg.KindLoop && arc.Branch == cdfg.OutFalse:
			// Exit arc: LOOP@(p,K) → v@(p).
			for _, p := range a.nodePaths(from) {
				pp, i := splitLast(p)
				if i == a.K {
					a.connect(arc, ikey(from.ID, p), ikey(to.ID, pp))
				}
			}
		case from.Kind == cdfg.KindLoop && a.nodeInBlockOf(to, from):
			// Body arc: LOOP@(p,i) → v@(p,i), i<K.
			for _, p := range a.nodePaths(from) {
				pp, i := splitLast(p)
				if i < a.K {
					a.connect(arc, ikey(from.ID, p), ikey(to.ID, join(pp, i)))
				}
			}
		case to.Kind == cdfg.KindEndLoop && a.nodeInBlockOf(from, to):
			// Body → ENDLOOP@(p,i): iteration indices align.
			for _, p := range a.nodePaths(from) {
				a.connect(arc, ikey(from.ID, p), ikey(to.ID, p))
			}
		default:
			// Same-scope arc: instance paths match directly.
			for _, p := range a.nodePaths(from) {
				a.connect(arc, ikey(from.ID, p), ikey(to.ID, p))
			}
		}
	}
}

// ownLoopOf returns the loop block a node fires within (for LOOP/ENDLOOP
// nodes, their own loop).
func (a *Analysis) ownLoopOf(n *cdfg.Node) *cdfg.Block {
	if n.Kind == cdfg.KindLoop || n.Kind == cdfg.KindEndLoop {
		for _, b := range a.g.Blocks {
			if b.Root == n.ID || b.End == n.ID {
				return b
			}
		}
	}
	chain := a.loopChain(n)
	if len(chain) == 0 {
		return nil
	}
	return chain[len(chain)-1]
}

func (a *Analysis) sameLoop(x, y *cdfg.Block) bool {
	return x != nil && y != nil && x.ID == y.ID
}

// innermostCommonLoop returns the innermost loop containing both endpoints.
func (a *Analysis) innermostCommonLoop(u, v *cdfg.Node) *cdfg.Block {
	cu, cv := a.loopChain(u), a.loopChain(v)
	var last *cdfg.Block
	for i := 0; i < len(cu) && i < len(cv); i++ {
		if cu[i].ID == cv[i].ID {
			last = cu[i]
		}
	}
	return last
}

// nodeInBlockOf reports whether node n is (transitively) inside the block
// rooted/ended at boundary node b.
func (a *Analysis) nodeInBlockOf(n, boundary *cdfg.Node) bool {
	var blk *cdfg.Block
	for _, b := range a.g.Blocks {
		if b.Root == boundary.ID || b.End == boundary.ID {
			blk = b
			break
		}
	}
	if blk == nil {
		return false
	}
	cur := n.Block
	for cur >= 0 {
		if cur == blk.ID {
			return true
		}
		cur = a.g.Blocks[cur].Parent
	}
	return false
}

func splitLast(p string) (string, int) {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '.' {
			var n int
			fmt.Sscanf(p[i+1:], "%d", &n)
			return p[:i], n
		}
	}
	var n int
	fmt.Sscanf(p, "%d", &n)
	return "", n
}

func (a *Analysis) connect(arc *cdfg.Arc, fromKey, toKey string) {
	fi, ti := a.insts[fromKey], a.insts[toKey]
	if fi == nil || ti == nil {
		return
	}
	e := &edge{arc: arc, from: fi}
	ti.ins = append(ti.ins, e)
	a.byArc[arc.ID] = append(a.byArc[arc.ID], e)
}

// propagate computes start/done intervals in topological order.
func (a *Analysis) propagate() error {
	// Topological sort by DFS over the instance graph.
	type state int
	const (
		white, grey, black state = 0, 1, 2
	)
	marks := map[*instance]state{}
	var order []*instance
	// Build reverse adjacency on the fly: instance → its ins[].from.
	var visit func(i *instance) error
	visit = func(i *instance) error {
		switch marks[i] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("timing: cycle through %s@%s", i.node.Label(), i.key)
		}
		marks[i] = grey
		for _, e := range i.ins {
			if err := visit(e.from); err != nil {
				return err
			}
		}
		marks[i] = black
		order = append(order, i)
		return nil
	}
	var keys []string
	for k := range a.insts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := visit(a.insts[k]); err != nil {
			return err
		}
	}
	for idx, i := range order {
		i.order = idx
		if len(i.ins) == 0 {
			i.start = Interval{0, 0}
		} else {
			first := true
			for _, e := range i.ins {
				e.arrival = e.from.done.Add(a.model.Wire)
				if first {
					i.start = e.arrival
					first = false
				} else {
					i.start = i.start.MaxWith(e.arrival)
				}
			}
		}
		i.done = i.start.Add(a.model.opDelay(i.node))
	}
	return nil
}

// Makespan returns the completion interval of the END node (for the
// unrolled, all-iterations-taken execution).
func (a *Analysis) Makespan() Interval {
	i := a.insts[ikey(a.g.End, "")]
	if i == nil {
		return Interval{}
	}
	return i.done
}

// NodeDone returns the completion interval of a node instance.
func (a *Analysis) NodeDone(id cdfg.NodeID, path string) (Interval, bool) {
	i := a.insts[ikey(id, path)]
	if i == nil {
		return Interval{}, false
	}
	return i.done, true
}

// ArcAlwaysCovered reports whether arc e is never the last constraint to
// arrive at its destination, for every instance in the unrolling. Such arcs
// can be removed by the relative-timing transform (GT3).
//
// Absolute arrival intervals decorrelate events that share ancestors (the
// uncertainty of earlier iterations inflates both bounds), so coverage is
// proven relative to common ancestor events: e's latest arrival is bounded
// by expanding a frontier of ancestors with accumulated worst-case path
// delays, and each frontier member must reach the witness edge e' through
// an always-executed path whose best-case delay is at least as large.
func (a *Analysis) ArcAlwaysCovered(e *cdfg.Arc) bool {
	edges := a.byArc[e.ID]
	if len(edges) == 0 {
		return false
	}
	for _, inst := range a.instList() {
		for _, ie := range inst.ins {
			if ie.arc.ID != e.ID {
				continue
			}
			covered := false
			for _, other := range inst.ins {
				if other.arc.ID == e.ID || other == ie {
					continue
				}
				if !a.unconditionalFor(other.arc, inst.node) {
					continue
				}
				if a.edgeDominates(other, ie, inst) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
	}
	return true
}

func (a *Analysis) instList() []*instance {
	var keys []string
	for k := range a.insts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*instance, 0, len(keys))
	for _, k := range keys {
		out = append(out, a.insts[k])
	}
	return out
}

// edgeDominates reports whether the arrival of edge fast at inst provably
// never exceeds the arrival of edge slow, by frontier expansion: the
// worst-case arrival of fast is a max over (ancestor completion + path
// delay) terms; each term must be dominated by a best-case always-executed
// path from the same ancestor to slow's arrival.
func (a *Analysis) edgeDominates(slow, fast *edge, inst *instance) bool {
	const maxFrontier = 64
	type fr struct {
		inst   *instance
		offset float64 // max delay from inst.done to fast's arrival
	}
	frontier := []fr{{inst: fast.from, offset: a.model.Wire.Max}}
	for steps := 0; steps < maxFrontier; steps++ {
		// Find an unsatisfied frontier member.
		idx := -1
		for i, f := range frontier {
			min, ok := a.minPathToArrival(f.inst, slow)
			if !ok || min < f.offset {
				idx = i
				break
			}
		}
		if idx < 0 {
			return true
		}
		f := frontier[idx]
		if len(f.inst.ins) == 0 {
			return false // reached a primary source without domination
		}
		frontier = append(frontier[:idx], frontier[idx+1:]...)
		// Replace by predecessors with accumulated worst-case delay.
		opMax := a.model.opDelay(f.inst.node).Max
		for _, in := range f.inst.ins {
			off := f.offset + opMax + a.model.Wire.Max
			merged := false
			for i := range frontier {
				if frontier[i].inst == in.from {
					if off > frontier[i].offset {
						frontier[i].offset = off
					}
					merged = true
					break
				}
			}
			if !merged {
				frontier = append(frontier, fr{inst: in.from, offset: off})
			}
		}
		if len(frontier) > maxFrontier {
			return false
		}
	}
	return false
}

// minPathToArrival returns a lower bound on the delay from ancestor x's
// completion to the arrival of edge w at its destination, using only
// always-executed path segments; ok is false when x is not an ancestor of
// w's source.
func (a *Analysis) minPathToArrival(x *instance, w *edge) (float64, bool) {
	d, ok := a.minDoneToDone(x, w.from)
	if !ok {
		return 0, false
	}
	return d + a.model.Wire.Min, true
}

// minDoneToDone returns a lower bound on the completion-to-completion delay
// from x to y, along dependency paths whose intermediate nodes always
// execute when y does; ok is false when x is not an ancestor of y. Because
// y's start is the max over all its arrivals, every in-edge that descends
// from x yields a valid lower bound, and the tightest is their maximum.
func (a *Analysis) minDoneToDone(x, y *instance) (float64, bool) {
	if x == y {
		return 0, true
	}
	if a.minMemo == nil {
		a.minMemo = map[[2]*instance]float64{}
	}
	if v, ok := a.minMemo[[2]*instance{x, y}]; ok {
		if math.IsInf(v, -1) {
			return 0, false
		}
		return v, true
	}
	// Mark in progress to cut (impossible) cycles.
	a.minMemo[[2]*instance{x, y}] = math.Inf(-1)
	best := math.Inf(-1)
	for _, in := range y.ins {
		if !a.unconditionalFor(in.arc, y.node) {
			continue
		}
		d, ok := a.minDoneToDone(x, in.from)
		if !ok {
			continue
		}
		cand := d + a.model.Wire.Min + a.model.opDelay(y.node).Min
		if cand > best {
			best = cand
		}
	}
	a.minMemo[[2]*instance{x, y}] = best
	if math.IsInf(best, -1) {
		return 0, false
	}
	return best, true
}

// unconditionalFor reports whether arc o's source always fires when the
// destination node fires: the source's if-block ancestry must be a subset
// of the destination's.
func (a *Analysis) unconditionalFor(o *cdfg.Arc, dst *cdfg.Node) bool {
	src := a.g.Node(o.From)
	srcIfs := a.ifChain(src)
	dstIfs := map[int]bool{}
	for _, b := range a.ifChain(dst) {
		dstIfs[b] = true
	}
	for _, b := range srcIfs {
		if !dstIfs[b] {
			return false
		}
	}
	return true
}

func (a *Analysis) ifChain(n *cdfg.Node) []int {
	var out []int
	b := n.Block
	for b >= 0 {
		blk := a.g.Blocks[b]
		if blk.Kind == cdfg.BlockIf {
			out = append(out, blk.ID)
		}
		b = blk.Parent
	}
	return out
}
