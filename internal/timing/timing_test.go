package timing

import (
	"testing"

	"repro/internal/cdfg"
	"repro/internal/diffeq"
)

func analyzeDiffeq(t *testing.T, K int) (*cdfg.Graph, *Analysis) {
	t.Helper()
	g := diffeq.Build(diffeq.DefaultParams())
	a, err := Analyze(g, DefaultModel(), K)
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

func TestAnalyzeDiffeq(t *testing.T) {
	_, a := analyzeDiffeq(t, 3)
	ms := a.Makespan()
	if ms.Min <= 0 || ms.Max < ms.Min {
		t.Errorf("makespan = %+v, want positive well-ordered interval", ms)
	}
}

func TestIntervalOps(t *testing.T) {
	a, b := Interval{1, 2}, Interval{3, 5}
	if s := a.Add(b); s != (Interval{4, 7}) {
		t.Errorf("Add = %+v", s)
	}
	if m := a.MaxWith(b); m != (Interval{3, 5}) {
		t.Errorf("MaxWith = %+v", m)
	}
	if m := (Interval{1, 10}).MaxWith(Interval{3, 5}); m != (Interval{3, 10}) {
		t.Errorf("overlapping MaxWith = %+v", m)
	}
}

func findArc(t *testing.T, g *cdfg.Graph, from, to string) *cdfg.Arc {
	t.Helper()
	var fn, tn *cdfg.Node
	for _, n := range g.Nodes() {
		if n.Label() == from {
			fn = n
		}
		if n.Label() == to {
			tn = n
		}
	}
	if fn == nil || tn == nil {
		t.Fatalf("nodes %q/%q not found", from, to)
	}
	a := g.FindArc(fn.ID, tn.ID)
	if a == nil {
		t.Fatalf("no arc %s -> %s", from, to)
	}
	return a
}

// The paper's GT3 example: arc 10 (M2:=U*dx → U:=U-M1) is enabled after one
// multiplication while arc 11 (M1:=A*B → U:=U-M1) requires three chained
// operations, so arc 10 is never the last to arrive.
func TestArc10AlwaysCovered(t *testing.T) {
	g, a := analyzeDiffeq(t, 3)
	arc10 := findArc(t, g, "M2:=U*dx", "U:=U-M1")
	if !a.ArcAlwaysCovered(arc10) {
		t.Error("arc 10 (M2→U) should be covered by arc 11 (M1b→U)")
	}
	// The converse must not hold: arc 11 is on the critical path.
	arc11 := findArc(t, g, "M1:=A*B", "U:=U-M1")
	if a.ArcAlwaysCovered(arc11) {
		t.Error("arc 11 (M1b→U) must not be removable")
	}
}

func TestCriticalArcNotCovered(t *testing.T) {
	g, a := analyzeDiffeq(t, 3)
	// The data arc M1a→A is A's enabling input; removing it would be wrong.
	arc := findArc(t, g, "M1:=U*X1", "A:=Y+M1")
	if a.ArcAlwaysCovered(arc) {
		t.Error("M1a→A must not be removable")
	}
}

func TestMakespanScalesWithIterations(t *testing.T) {
	_, a2 := analyzeDiffeq(t, 2)
	_, a5 := analyzeDiffeq(t, 5)
	if a5.Makespan().Min <= a2.Makespan().Min {
		t.Errorf("makespan should grow with unroll depth: K=2 %+v, K=5 %+v",
			a2.Makespan(), a5.Makespan())
	}
}

func TestNodeDoneMonotoneAcrossIterations(t *testing.T) {
	g, a := analyzeDiffeq(t, 4)
	var loop cdfg.NodeID
	for _, n := range g.Nodes() {
		if n.Kind == cdfg.KindLoop {
			loop = n.ID
		}
	}
	prev := Interval{-1, -1}
	for i := 0; i <= 4; i++ {
		d, ok := a.NodeDone(loop, itoa(i))
		if !ok {
			t.Fatalf("no LOOP instance %d", i)
		}
		if d.Min <= prev.Min {
			t.Errorf("LOOP@%d done %+v not after LOOP@%d %+v", i, d, i-1, prev)
		}
		prev = d
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}

func TestSlowWiresWidenMakespan(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	fast := DefaultModel()
	slow := DefaultModel()
	slow.Wire = Interval{5, 10}
	af, err := Analyze(g, fast, 3)
	if err != nil {
		t.Fatal(err)
	}
	as, err := Analyze(g, slow, 3)
	if err != nil {
		t.Fatal(err)
	}
	if as.Makespan().Min <= af.Makespan().Min {
		t.Error("slower wires should increase the makespan")
	}
}

func TestConditionalSourceNotAWitness(t *testing.T) {
	// A node fed both by an unconditional arc and an arc from inside an if
	// body: the conditional arc must never serve as the covering witness.
	p := cdfg.NewProgram("cond", "A", "B")
	p.Init("c", 1)
	p.Op("A", "x", cdfg.OpAdd, "u", "v")
	p.If("A", "c")
	p.Op("A", "y", cdfg.OpAdd, "u", "v")
	p.EndIf()
	p.Op("B", "z", cdfg.OpAdd, "x", "y")
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(g, Model{DefaultOp: Interval{1, 2}, Wire: Interval{0.5, 1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The x→z data arc arrives early; its only later-arriving companion is
	// the ENDIF path, which is unconditional (ENDIF always fires), so this
	// checks the plumbing rather than rejecting: the arc x→z may be covered
	// by the ENDIF→z dependency.
	arc := findArc(t, g, "x:=u+v", "z:=x+y")
	_ = a.ArcAlwaysCovered(arc) // must not panic; result model-dependent
}

func TestAnalyzeNestedLoops(t *testing.T) {
	p := cdfg.NewProgram("nest", "A")
	p.Init("c", 1).Init("d", 1)
	p.Loop("A", "c")
	p.Op("A", "x", cdfg.OpAdd, "x", "one")
	p.Loop("A", "d")
	p.Op("A", "y", cdfg.OpAdd, "y", "one")
	p.EndLoop()
	p.Op("A", "z", cdfg.OpAdd, "z", "one")
	p.EndLoop()
	p.Const("one").Init("one", 1)
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(g, Model{DefaultOp: Interval{1, 2}, Wire: Interval{0.5, 1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan().Min <= 0 {
		t.Errorf("nested loop makespan = %+v", a.Makespan())
	}
}
