package frontend

import (
	"fmt"
	"strings"
)

// Diagnostic codes. Every compile failure carries exactly one of these;
// docs/LANGUAGE.md lists a triggering example for each.
const (
	// CodeChar reports a character outside the language's alphabet.
	CodeChar = "ADL001"
	// CodeNumber reports a malformed numeric literal.
	CodeNumber = "ADL002"
	// CodeSyntax reports an unexpected token (the generic parse failure).
	CodeSyntax = "ADL003"
	// CodeHeader reports a missing, duplicate or misplaced design header.
	CodeHeader = "ADL004"
	// CodeDupUnit reports a functional unit declared twice.
	CodeDupUnit = "ADL005"
	// CodeUnknownUnit reports a statement bound to an undeclared unit.
	CodeUnknownUnit = "ADL006"
	// CodeConstWrite reports a write to a register declared const.
	CodeConstWrite = "ADL007"
	// CodeDupBinding reports a register given a const/init value twice.
	CodeDupBinding = "ADL008"
	// CodeUndefRead reports a register read before any init or write.
	CodeUndefRead = "ADL009"
	// CodeEmpty reports a design with no operations or no units.
	CodeEmpty = "ADL010"
	// CodeUnclosed reports a block left open at end of input.
	CodeUnclosed = "ADL011"
	// CodeStructure wraps a cdfg.Validate rejection of the built graph.
	CodeStructure = "ADL012"
	// CodePartialSched reports a statement run where only some statements
	// carry explicit @step control-step assignments.
	CodePartialSched = "ADL013"
	// CodeDupStep reports two statements in one run assigned the same
	// explicit control step.
	CodeDupStep = "ADL014"
)

// Error is a positioned compile diagnostic. Every failure surfaced by
// Compile is one of these (never a bare error), so tools can report the
// file, line, column, stable code and offending source line.
type Error struct {
	// File is the name Compile was given for the source (often a path).
	File string
	// Line and Col locate the diagnostic, 1-based. Col 0 means the whole
	// line.
	Line, Col int
	// Code is the stable diagnostic code (one of the ADLxxx constants).
	Code string
	// Msg is the human-readable description.
	Msg string
	// SrcLine is the offending source line, used to render the snippet.
	SrcLine string
}

// Error renders the diagnostic in the conventional file:line:col form
// followed by a source snippet with a column marker:
//
//	ewf.adl:4:9: [ADL006] unknown functional unit "ALU9"
//	    op ALU9: y = a + b
//	       ^
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d:%d: [%s] %s", e.File, e.Line, e.Col, e.Code, e.Msg)
	if e.SrcLine != "" {
		fmt.Fprintf(&b, "\n\t%s", e.SrcLine)
		if e.Col > 0 && e.Col <= len(e.SrcLine)+1 {
			fmt.Fprintf(&b, "\n\t%s^", strings.Repeat(" ", e.Col-1))
		}
	}
	return b.String()
}

// errAt builds an *Error at a position within src.
func errAt(file string, src []string, line, col int, code, format string, args ...interface{}) *Error {
	srcLine := ""
	if line >= 1 && line <= len(src) {
		srcLine = src[line-1]
	}
	return &Error{
		File: file, Line: line, Col: col,
		Code: code, Msg: fmt.Sprintf(format, args...),
		SrcLine: srcLine,
	}
}
