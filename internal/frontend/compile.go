package frontend

import (
	"os"
	"sort"

	"repro/internal/cdfg"
)

// Compile parses, checks and compiles ADL source into a scheduled CDFG.
// filename is used in diagnostics only (use any label for in-memory
// sources). Every failure is a positioned *Error; a returned graph has
// already passed cdfg.Validate and therefore round-trips through the
// interchange codec.
func Compile(filename string, src []byte) (*cdfg.Graph, error) {
	p := newParser(filename, src)
	f := p.parseFile()
	if p.err != nil {
		return nil, p.err
	}
	c := &checker{p: p, f: f}
	if err := c.check(); err != nil {
		return nil, err
	}
	return c.build()
}

// CompileFile reads and compiles an .adl source file.
func CompileFile(path string) (*cdfg.Graph, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Compile(path, src)
}

// checker performs the semantic pass over a parsed design: unit and
// binding tables, definition-before-use, const-write protection and
// control-step scheduling.
type checker struct {
	p       *parser
	f       *fileAST
	units   map[string]bool
	consts  map[string]bool
	defined map[string]bool // registers with a value at the current point
}

func (c *checker) errAt(at pos, code, format string, args ...interface{}) *Error {
	return errAt(c.p.lx.file, c.p.lx.lines, at.line, at.col, code, format, args...)
}

func (c *checker) check() error {
	f := c.f
	if len(f.units) == 0 {
		return c.errAt(f.nameAt, CodeEmpty, "design %q declares no functional units", f.name)
	}
	c.units = map[string]bool{}
	for _, u := range f.units {
		if c.units[u.name] {
			return c.errAt(u.at, CodeDupUnit, "functional unit %q declared twice", u.name)
		}
		c.units[u.name] = true
	}
	c.consts = map[string]bool{}
	c.defined = map[string]bool{}
	for _, b := range f.consts {
		if c.defined[b.name] {
			return c.errAt(b.at, CodeDupBinding, "register %q bound twice", b.name)
		}
		c.consts[b.name] = true
		c.defined[b.name] = true
	}
	for _, b := range f.inits {
		if c.defined[b.name] {
			return c.errAt(b.at, CodeDupBinding, "register %q bound twice", b.name)
		}
		c.defined[b.name] = true
	}
	if countOps(f.body) == 0 {
		return c.errAt(f.nameAt, CodeEmpty, "design %q has no operations", f.name)
	}
	return c.checkStmts(f.body)
}

func countOps(stmts []stmt) int {
	n := 0
	for _, s := range stmts {
		switch s := s.(type) {
		case *opStmt:
			n++
		case *blockStmt:
			n += countOps(s.body)
		}
	}
	return n
}

// checkStmts walks statements in scheduled order, verifying unit
// references, const protection and definition-before-use. Writes inside
// an if body count as defining afterwards (may-define), matching the
// sequential semantics where the guarded path is the interesting one.
func (c *checker) checkStmts(stmts []stmt) error {
	ordered, err := c.schedule(stmts)
	if err != nil {
		return err
	}
	for _, s := range ordered {
		switch s := s.(type) {
		case *opStmt:
			if !c.units[s.fu] {
				return c.errAt(s.fuAt, CodeUnknownUnit, "unknown functional unit %q", s.fu)
			}
			if c.consts[s.dst] {
				return c.errAt(s.dstAt, CodeConstWrite, "cannot write to constant register %q", s.dst)
			}
			if !c.defined[s.src1] {
				return c.errAt(s.src1At, CodeUndefRead, "register %q read before it is initialized or written", s.src1)
			}
			if !s.mov && !c.defined[s.src2] {
				return c.errAt(s.src2At, CodeUndefRead, "register %q read before it is initialized or written", s.src2)
			}
			c.defined[s.dst] = true
		case *blockStmt:
			if !c.units[s.fu] {
				return c.errAt(s.fuAt, CodeUnknownUnit, "unknown functional unit %q", s.fu)
			}
			if !c.defined[s.cond] {
				return c.errAt(s.condAt, CodeUndefRead, "condition register %q read before it is initialized or written", s.cond)
			}
			if err := c.checkStmts(s.body); err != nil {
				return err
			}
		}
	}
	return nil
}

// schedule applies explicit @step control-step assignments: within each
// maximal run of consecutive op/mov statements, either no statement
// carries a step (source order is the schedule) or every statement does
// (the run is reordered by ascending step; steps must be unique). Block
// statements are scheduling barriers and keep their source position.
func (c *checker) schedule(stmts []stmt) ([]stmt, error) {
	out := make([]stmt, 0, len(stmts))
	run := make([]*opStmt, 0, len(stmts))
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		withStep := 0
		for _, s := range run {
			if s.hasStep {
				withStep++
			}
		}
		if withStep != 0 && withStep != len(run) {
			for _, s := range run {
				if !s.hasStep {
					return c.errAt(s.at, CodePartialSched,
						"statement has no @step but %d of its %d neighbours do: annotate all or none", withStep, len(run))
				}
			}
		}
		if withStep == len(run) {
			seen := map[int]*opStmt{}
			for _, s := range run {
				if prev, dup := seen[s.step]; dup {
					return c.errAt(s.stepAt, CodeDupStep,
						"control step %d already assigned at line %d", s.step, prev.stepAt.line)
				}
				seen[s.step] = s
			}
			sort.SliceStable(run, func(i, j int) bool { return run[i].step < run[j].step })
		}
		for _, s := range run {
			out = append(out, s)
		}
		run = run[:0]
		return nil
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *opStmt:
			run = append(run, s)
		case *blockStmt:
			if err := flush(); err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// build materializes the checked design through the cdfg.Program builder
// (which derives all constraint arcs) and validates the result.
func (c *checker) build() (*cdfg.Graph, error) {
	f := c.f
	fus := make([]string, 0, len(f.units))
	for _, u := range f.units {
		fus = append(fus, u.name)
	}
	pr := cdfg.NewProgram(f.name, fus...)
	for _, b := range f.consts {
		pr.Const(b.name)
		pr.Init(b.name, b.val)
	}
	for _, b := range f.inits {
		pr.Init(b.name, b.val)
	}
	if err := c.emit(pr, f.body); err != nil {
		return nil, err
	}
	g, err := pr.Build()
	if err != nil {
		// The semantic pass screens every builder precondition, so a
		// failure here is a structural rejection worth a diagnostic of
		// its own (and a bug in the checker if it names a precondition).
		return nil, c.errAt(f.nameAt, CodeStructure, "%v", err)
	}
	if err := g.Validate(); err != nil {
		return nil, c.errAt(f.nameAt, CodeStructure, "%v", err)
	}
	return g, nil
}

func (c *checker) emit(pr *cdfg.Program, stmts []stmt) error {
	ordered, err := c.schedule(stmts)
	if err != nil {
		return err
	}
	for _, s := range ordered {
		switch s := s.(type) {
		case *opStmt:
			if s.mov {
				pr.Assign(s.fu, s.dst, s.src1)
			} else {
				pr.Op(s.fu, s.dst, s.op, s.src1, s.src2)
			}
		case *blockStmt:
			if s.loop {
				pr.Loop(s.fu, s.cond)
			} else {
				pr.If(s.fu, s.cond)
			}
			if err := c.emit(pr, s.body); err != nil {
				return err
			}
			if s.loop {
				pr.EndLoop()
			} else {
				pr.EndIf()
			}
		}
	}
	return nil
}
