package frontend

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/examples"
	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/gcd"
)

// gcdADL is the GCD benchmark re-expressed in ADL; it must behave exactly
// like the hand-built gcd.Build graph.
const gcdADL = `design gcd

units ALU, CMP

const one = 1
init  a = 123, b = 45, run = 1

loop ALU run {
    op CMP: gt = a > b
    if ALU gt {
        op ALU: a = a - b
    }
    op CMP: lt = a < b
    if ALU lt {
        op ALU: b = b - a
    }
    op CMP: ne = a == b
    op ALU: run = one - ne
}
`

func compileString(t *testing.T, src string) *cdfg.Graph {
	t.Helper()
	g, err := Compile("test.adl", []byte(src))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return g
}

func TestCompileGCD(t *testing.T) {
	g := compileString(t, gcdADL)
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}

	// Structurally equivalent to the hand-built benchmark graph.
	ref := gcd.Build(123, 45)
	if got, want := len(g.Nodes()), len(ref.Nodes()); got != want {
		t.Errorf("nodes = %d, want %d", got, want)
	}
	if got, want := len(g.Blocks), len(ref.Blocks); got != want {
		t.Errorf("blocks = %d, want %d", got, want)
	}

	// The sequential interpreter agrees with the benchmark's reference.
	regs, err := Interpret(g)
	if err != nil {
		t.Fatal(err)
	}
	if want := gcd.Reference(123, 45); regs["a"] != want {
		t.Errorf("a = %v, want %v", regs["a"], want)
	}

	// And the synthesized distributed control computes the same answer.
	s, err := core.Run(g, core.DefaultOptions())
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	if err := s.Verify(map[string]float64{"a": gcd.Reference(123, 45)}, 3); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestCompileEmbeddedExamples(t *testing.T) {
	ents, err := examples.ADL.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 2 {
		t.Fatalf("expected at least 2 embedded .adl sources, found %d", len(ents))
	}
	for _, e := range ents {
		src, err := examples.ADL.ReadFile(e.Name())
		if err != nil {
			t.Fatal(err)
		}
		g, err := Compile(e.Name(), src)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		// Compiled graphs round-trip through the interchange codec
		// byte-identically.
		enc1, err := codec.EncodeGraph(g)
		if err != nil {
			t.Fatalf("%s: encode: %v", e.Name(), err)
		}
		g2, err := codec.DecodeGraph(enc1)
		if err != nil {
			t.Fatalf("%s: decode: %v", e.Name(), err)
		}
		enc2, err := codec.EncodeGraph(g2)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", e.Name(), err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Errorf("%s: codec round trip is not byte-identical", e.Name())
		}
	}
}

// TestDiagnostics exercises every stable diagnostic code with a minimal
// triggering source, asserting code and position.
func TestDiagnostics(t *testing.T) {
	const prologue = "design d\nunits A\ninit x = 0\n"
	cases := []struct {
		name string
		src  string
		code string
		line int
		col  int
	}{
		{"illegal-char-ADL001", prologue + "op A: x = x + $\n", CodeChar, 4, 15},
		{"bad-number-ADL002", "design d\nunits A\ninit x = 1.\n", CodeNumber, 3, 10},
		{"bad-step-ADL002", prologue + "op A: x = x + x @ 1.5\n", CodeNumber, 4, 19},
		{"syntax-ADL003", prologue + "op A x = x + x\n", CodeSyntax, 4, 6},
		{"missing-header-ADL004", "units A\n", CodeHeader, 1, 1},
		{"dup-header-ADL004", prologue + "design d2\n", CodeHeader, 4, 1},
		{"dup-unit-ADL005", "design d\nunits A, A\n", CodeDupUnit, 2, 10},
		{"unknown-unit-ADL006", prologue + "op B: x = x + x\n", CodeUnknownUnit, 4, 4},
		{"const-write-ADL007", "design d\nunits A\nconst k = 2\nop A: k = k + k\n", CodeConstWrite, 4, 7},
		{"dup-binding-ADL008", "design d\nunits A\ninit x = 1, x = 2\n", CodeDupBinding, 3, 13},
		{"undef-read-ADL009", prologue + "op A: x = x + y\n", CodeUndefRead, 4, 15},
		{"undef-cond-ADL009", prologue + "loop A go {\nop A: x = x + x\n}\n", CodeUndefRead, 4, 8},
		{"no-units-ADL010", "design d\n", CodeEmpty, 1, 8},
		{"no-ops-ADL010", "design d\nunits A\n", CodeEmpty, 1, 8},
		{"unclosed-ADL011", prologue + "loop A x {\nop A: x = x + x\n", CodeUnclosed, 6, 1},
		{"partial-sched-ADL013", prologue + "op A: x = x + x @ 1\nop A: x = x + x\n", CodePartialSched, 5, 1},
		{"dup-step-ADL014", prologue + "op A: x = x + x @ 1\nop A: x = x + x @ 1\n", CodeDupStep, 5, 17},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("test.adl", []byte(tc.src))
			if err == nil {
				t.Fatal("compile unexpectedly succeeded")
			}
			var e *Error
			if !errors.As(err, &e) {
				t.Fatalf("error is %T, want *frontend.Error", err)
			}
			if e.Code != tc.code {
				t.Fatalf("code = %s, want %s (err: %v)", e.Code, tc.code, e)
			}
			if e.Line != tc.line || e.Col != tc.col {
				t.Errorf("position = %d:%d, want %d:%d (err: %v)", e.Line, e.Col, tc.line, tc.col, e)
			}
			if e.File != "test.adl" {
				t.Errorf("file = %q", e.File)
			}
		})
	}
}

func TestErrorRendering(t *testing.T) {
	_, err := Compile("bad.adl", []byte("design d\nunits A\ninit x = 0\nop ZZ: x = x + x\n"))
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	for _, want := range []string{
		"bad.adl:4:4:",
		"[ADL006]",
		"op ZZ: x = x + x", // source snippet
		"\n\t   ^",         // caret under column 4
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("rendered error missing %q:\n%s", want, msg)
		}
	}
}

// Explicit @step annotations reorder a run of statements; the two
// spellings below must compile to identical graphs.
func TestStepScheduling(t *testing.T) {
	inOrder := "design d\nunits A\nconst one = 1\ninit x = 3, y = 0\n" +
		"op A: x = x + one\nop A: y = x * x\n"
	annotated := "design d\nunits A\nconst one = 1\ninit x = 3, y = 0\n" +
		"op A: y = x * x @ 2\nop A: x = x + one @ 1\n"

	g1 := compileString(t, inOrder)
	g2 := compileString(t, annotated)
	enc1, err := codec.EncodeGraph(g1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := codec.EncodeGraph(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Error("@step-annotated source compiled to a different graph than source order")
	}
	regs, err := Interpret(g2)
	if err != nil {
		t.Fatal(err)
	}
	// x advances to 4 first (@1), then y = 16 (@2).
	if regs["y"] != 16 {
		t.Errorf("y = %v, want 16", regs["y"])
	}
}

// Steps reorder only within a run: a block is a barrier.
func TestStepBarrier(t *testing.T) {
	src := "design d\nunits A\nconst one = 1\ninit x = 1, run = 1\n" +
		"op A: x = x + one @ 5\n" +
		"loop A run {\nop A: run = run - one\n}\n" +
		"op A: x = x * x @ 1\n"
	g := compileString(t, src)
	regs, err := Interpret(g)
	if err != nil {
		t.Fatal(err)
	}
	// The @1 op stays after the loop: x = (1+1) then squared = 4. If steps
	// leaked across the barrier it would be (1*1)+1 = 2.
	if regs["x"] != 4 {
		t.Errorf("x = %v, want 4", regs["x"])
	}
}

func TestCompileFile(t *testing.T) {
	g, err := CompileFile("../../examples/ewf.adl")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "ewf" {
		t.Errorf("name = %q, want ewf", g.Name)
	}
	if _, err := CompileFile("../../examples/does-not-exist.adl"); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestInterpretNonTerminating(t *testing.T) {
	src := "design d\nunits A\nconst one = 1\ninit run = 1, x = 0\n" +
		"loop A run {\nop A: x = x + one\n}\n"
	g := compileString(t, src)
	if _, err := Interpret(g); err == nil {
		t.Error("expected non-termination error")
	}
}
