package frontend_test

import (
	"fmt"
	"sort"

	"repro/internal/frontend"
)

// Compile a tiny two-unit design from ADL text and run the sequential
// reference interpreter over the resulting scheduled CDFG.
func ExampleCompile() {
	src := `design demo

units ALU, MUL

const one = 1, three = 3
init  x = 2, acc = 0, i = 0, run = 1

loop ALU run {
    op MUL: sq  = x * x
    op ALU: acc = acc + sq
    op ALU: x   = x + one
    op ALU: i   = i + one
    op ALU: run = i < three
}
`
	g, err := frontend.Compile("demo.adl", []byte(src))
	if err != nil {
		fmt.Println(err)
		return
	}
	regs, err := frontend.Interpret(g)
	if err != nil {
		fmt.Println(err)
		return
	}
	names := []string{"acc", "i", "x"}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s = %v\n", n, regs[n])
	}
	// Output:
	// acc = 29
	// i = 3
	// x = 5
}
