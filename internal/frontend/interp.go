package frontend

import (
	"fmt"
	"sort"

	"repro/internal/cdfg"
)

// MaxInterpSteps bounds the number of node executions Interpret performs
// before declaring the design non-terminating.
const MaxInterpSteps = 1 << 22

// Interpret executes a scheduled CDFG with the language's sequential
// reference semantics — statements in program order, loops while the
// condition register is non-zero, if bodies when theirs is — and returns
// the final register file. This is the golden model for any graph the
// frontend compiles (and for any well-formed scheduled CDFG): every
// synthesized distributed implementation must produce the same registers.
//
// Designs that exceed MaxInterpSteps node executions (a loop whose
// condition never falls) return an error instead of hanging.
func Interpret(g *cdfg.Graph) (map[string]float64, error) {
	regs := map[string]float64{}
	for k, v := range g.Init {
		regs[k] = v
	}
	it := &interp{g: g, regs: regs}
	if err := it.block(0); err != nil {
		return nil, err
	}
	return regs, nil
}

type interp struct {
	g     *cdfg.Graph
	regs  map[string]float64
	steps int
}

// block executes one block's nodes in program order. Loop and if roots
// live in the parent block; their bodies are the sub-blocks they root.
func (it *interp) block(b int) error {
	nodes := append([]*cdfg.Node(nil), it.g.BlockNodes(b)...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Order < nodes[j].Order })
	for _, n := range nodes {
		if it.steps++; it.steps > MaxInterpSteps {
			return fmt.Errorf("frontend: interpretation exceeded %d steps (non-terminating loop?)", MaxInterpSteps)
		}
		switch n.Kind {
		case cdfg.KindOp, cdfg.KindAssign:
			for _, s := range n.Stmts {
				it.exec(s)
			}
		case cdfg.KindLoop:
			sub := it.subBlock(n.ID)
			if sub < 0 {
				return fmt.Errorf("frontend: loop node %d has no block", n.ID)
			}
			for it.regs[n.Cond] != 0 {
				if err := it.block(sub); err != nil {
					return err
				}
				if it.steps++; it.steps > MaxInterpSteps {
					return fmt.Errorf("frontend: interpretation exceeded %d steps (non-terminating loop?)", MaxInterpSteps)
				}
			}
		case cdfg.KindIf:
			sub := it.subBlock(n.ID)
			if sub < 0 {
				return fmt.Errorf("frontend: if node %d has no block", n.ID)
			}
			if it.regs[n.Cond] != 0 {
				if err := it.block(sub); err != nil {
					return err
				}
			}
		}
		// START/END and block end nodes execute nothing.
	}
	return nil
}

// subBlock finds the block rooted at node id.
func (it *interp) subBlock(id cdfg.NodeID) int {
	for _, b := range it.g.Blocks {
		if b.Kind != cdfg.BlockTop && b.Root == id {
			return b.ID
		}
	}
	return -1
}

func (it *interp) exec(s cdfg.Stmt) {
	a := it.regs[s.Src1]
	switch s.Op {
	case cdfg.OpMov:
		it.regs[s.Dst] = a
		return
	}
	b := it.regs[s.Src2]
	switch s.Op {
	case cdfg.OpAdd:
		it.regs[s.Dst] = a + b
	case cdfg.OpSub:
		it.regs[s.Dst] = a - b
	case cdfg.OpMul:
		it.regs[s.Dst] = a * b
	case cdfg.OpLT:
		it.regs[s.Dst] = b2f(a < b)
	case cdfg.OpGT:
		it.regs[s.Dst] = b2f(a > b)
	case cdfg.OpEQ:
		it.regs[s.Dst] = b2f(a == b)
	case cdfg.OpMod:
		// Matches the simulators' convention: x % 0 = 0.
		ai, bi := int64(a), int64(b)
		if bi == 0 {
			it.regs[s.Dst] = 0
		} else {
			it.regs[s.Dst] = float64(ai % bi)
		}
	}
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
