package frontend

import (
	"strconv"

	"repro/internal/cdfg"
)

// pos is a 1-based source position.
type pos struct{ line, col int }

// binding is one `name = number` pair in a const or init declaration.
type binding struct {
	name string
	val  float64
	at   pos
}

// opStmt is an `op`/`mov` statement: dst = src1 [binop src2] bound to a
// functional unit, optionally carrying an explicit control step.
type opStmt struct {
	at       pos
	fu       string
	fuAt     pos
	dst      string
	dstAt    pos
	op       cdfg.Op
	src1     string
	src1At   pos
	src2     string
	src2At   pos
	mov      bool
	step     int
	hasStep  bool
	stepAt   pos
	srcIndex int // position in source order, for stable scheduling
}

// blockStmt is a `loop`/`if` block with its owner unit, condition
// register and body.
type blockStmt struct {
	at     pos
	loop   bool
	fu     string
	fuAt   pos
	cond   string
	condAt pos
	body   []stmt
}

// stmt is either *opStmt or *blockStmt.
type stmt interface{ stmtAt() pos }

func (s *opStmt) stmtAt() pos    { return s.at }
func (s *blockStmt) stmtAt() pos { return s.at }

// fileAST is a parsed design before semantic checking.
type fileAST struct {
	name   string
	nameAt pos
	units  []binding // val unused
	consts []binding
	inits  []binding
	body   []stmt
}

// binops maps operator lexemes to CDFG RTL operations.
var binops = map[string]cdfg.Op{
	"+": cdfg.OpAdd, "-": cdfg.OpSub, "*": cdfg.OpMul,
	"<": cdfg.OpLT, ">": cdfg.OpGT, "==": cdfg.OpEQ, "%": cdfg.OpMod,
}

// parser is a single-lookahead recursive-descent parser over the lexer.
type parser struct {
	lx   *lexer
	tok  token
	err  *Error
	nOps int
}

func newParser(file string, src []byte) *parser {
	p := &parser{lx: newLexer(file, src)}
	p.tok = p.lx.next()
	return p
}

func (p *parser) fail(at pos, code, format string, args ...interface{}) {
	if p.err == nil {
		p.err = errAt(p.lx.file, p.lx.lines, at.line, at.col, code, format, args...)
	}
}

func (p *parser) advance() {
	p.tok = p.lx.next()
	if p.lx.err != nil && p.err == nil {
		p.err = p.lx.err
	}
}

func (p *parser) at() pos { return pos{p.tok.line, p.tok.col} }

// expect consumes a token of the given kind or fails with ADL003.
func (p *parser) expect(kind tokKind, what string) token {
	if p.tok.kind != kind {
		p.fail(p.at(), CodeSyntax, "expected %s, found %s %q", what, p.tok.kind, p.tok.text)
		return token{}
	}
	t := p.tok
	p.advance()
	return t
}

// endOfStmt consumes the newline (or EOF) terminating a statement.
func (p *parser) endOfStmt() {
	switch p.tok.kind {
	case tokNewline:
		p.advance()
	case tokEOF:
	default:
		p.fail(p.at(), CodeSyntax, "expected end of line, found %s %q", p.tok.kind, p.tok.text)
	}
}

func (p *parser) skipNewlines() {
	for p.tok.kind == tokNewline {
		p.advance()
	}
}

// parseFile parses a whole design.
func (p *parser) parseFile() *fileAST {
	f := &fileAST{}
	p.skipNewlines()
	if p.tok.kind != tokIdent || p.tok.text != "design" {
		p.fail(p.at(), CodeHeader, "a design must start with `design <name>`")
		return f
	}
	p.advance()
	name := p.expect(tokIdent, "design name")
	f.name, f.nameAt = name.text, pos{name.line, name.col}
	p.endOfStmt()

	f.body = p.parseStmts(f, false)
	return f
}

// parseStmts parses declarations and statements until EOF (top level) or
// a closing brace (inside a block). Declarations (units/const/init) are
// only legal at the top level.
func (p *parser) parseStmts(f *fileAST, inBlock bool) []stmt {
	var out []stmt
	for p.err == nil {
		p.skipNewlines()
		switch {
		case p.tok.kind == tokEOF:
			if inBlock {
				p.fail(p.at(), CodeUnclosed, "block not closed: missing \"}\"")
			}
			return out
		case p.tok.kind == tokRBrace:
			if !inBlock {
				p.fail(p.at(), CodeSyntax, `unexpected "}" outside a block`)
				return out
			}
			return out
		case p.tok.kind != tokIdent:
			p.fail(p.at(), CodeSyntax, "expected a statement, found %s %q", p.tok.kind, p.tok.text)
			return out
		}
		switch p.tok.text {
		case "design":
			p.fail(p.at(), CodeHeader, "duplicate design header")
			return out
		case "units", "const", "init":
			if inBlock {
				p.fail(p.at(), CodeSyntax, "%q declarations are only allowed at the top level", p.tok.text)
				return out
			}
			p.parseDecl(f)
		case "op", "mov":
			if s := p.parseOp(); s != nil {
				out = append(out, s)
			}
		case "loop", "if":
			if s := p.parseBlock(f); s != nil {
				out = append(out, s)
			}
		default:
			p.fail(p.at(), CodeSyntax, "expected op, mov, loop, if or a declaration, found %q", p.tok.text)
			return out
		}
	}
	return out
}

// parseDecl parses `units A B ...`, `const x = 1, y = 2` or `init ...`.
func (p *parser) parseDecl(f *fileAST) {
	kw := p.tok.text
	p.advance()
	if kw == "units" {
		for p.err == nil {
			u := p.expect(tokIdent, "functional unit name")
			f.units = append(f.units, binding{name: u.text, at: pos{u.line, u.col}})
			if p.tok.kind == tokComma {
				p.advance()
				continue
			}
			if p.tok.kind != tokIdent {
				break
			}
		}
		p.endOfStmt()
		return
	}
	for p.err == nil {
		name := p.expect(tokIdent, "register name")
		p.expect(tokAssign, `"="`)
		num := p.expect(tokNumber, "numeric value")
		if p.err != nil {
			return
		}
		v, err := strconv.ParseFloat(num.text, 64)
		if err != nil {
			p.fail(pos{num.line, num.col}, CodeNumber, "malformed number %q", num.text)
			return
		}
		b := binding{name: name.text, val: v, at: pos{name.line, name.col}}
		if kw == "const" {
			f.consts = append(f.consts, b)
		} else {
			f.inits = append(f.inits, b)
		}
		if p.tok.kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	p.endOfStmt()
}

// parseOp parses `op FU: dst = src1 <binop> src2 [@ N]` or
// `mov FU: dst = src [@ N]`.
func (p *parser) parseOp() *opStmt {
	s := &opStmt{at: p.at(), mov: p.tok.text == "mov", srcIndex: p.nOps}
	p.nOps++
	p.advance()
	fu := p.expect(tokIdent, "functional unit name")
	s.fu, s.fuAt = fu.text, pos{fu.line, fu.col}
	p.expect(tokColon, `":"`)
	dst := p.expect(tokIdent, "destination register")
	s.dst, s.dstAt = dst.text, pos{dst.line, dst.col}
	p.expect(tokAssign, `"="`)
	src1 := p.expect(tokIdent, "source register")
	s.src1, s.src1At = src1.text, pos{src1.line, src1.col}
	if p.err != nil {
		return nil
	}
	if s.mov {
		s.op = cdfg.OpMov
	} else {
		opTok := p.expect(tokOp, "operator (+ - * < > == %)")
		if p.err != nil {
			return nil
		}
		op, ok := binops[opTok.text]
		if !ok {
			p.fail(pos{opTok.line, opTok.col}, CodeSyntax, "unknown operator %q", opTok.text)
			return nil
		}
		s.op = op
		src2 := p.expect(tokIdent, "source register")
		s.src2, s.src2At = src2.text, pos{src2.line, src2.col}
	}
	if p.tok.kind == tokAt {
		s.stepAt = p.at()
		p.advance()
		num := p.expect(tokNumber, "control step number")
		if p.err != nil {
			return nil
		}
		n, err := strconv.Atoi(num.text)
		if err != nil || n < 0 {
			p.fail(pos{num.line, num.col}, CodeNumber, "control step must be a non-negative integer, got %q", num.text)
			return nil
		}
		s.step, s.hasStep = n, true
	}
	p.endOfStmt()
	if p.err != nil {
		return nil
	}
	return s
}

// parseBlock parses `loop FU cond { ... }` or `if FU cond { ... }`.
func (p *parser) parseBlock(f *fileAST) *blockStmt {
	s := &blockStmt{at: p.at(), loop: p.tok.text == "loop"}
	p.advance()
	fu := p.expect(tokIdent, "functional unit name")
	s.fu, s.fuAt = fu.text, pos{fu.line, fu.col}
	cond := p.expect(tokIdent, "condition register")
	s.cond, s.condAt = cond.text, pos{cond.line, cond.col}
	p.expect(tokLBrace, `"{"`)
	if p.err != nil {
		return nil
	}
	s.body = p.parseStmts(f, true)
	if p.err != nil {
		return nil
	}
	p.expect(tokRBrace, `"}"`)
	p.endOfStmt()
	if p.err != nil {
		return nil
	}
	return s
}
