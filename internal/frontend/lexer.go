package frontend

import (
	"strings"
)

// tokKind enumerates lexical token classes.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent  // design, units, op, register names, ...
	tokNumber // 0.25, -3, 1e-3
	tokAssign // =
	tokColon  // :
	tokComma  // ,
	tokLBrace // {
	tokRBrace // }
	tokAt     // @
	tokOp     // + - * < > == %
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "end of line"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokAssign:
		return `"="`
	case tokColon:
		return `":"`
	case tokComma:
		return `","`
	case tokLBrace:
		return `"{"`
	case tokRBrace:
		return `"}"`
	case tokAt:
		return `"@"`
	case tokOp:
		return "operator"
	default:
		return "token"
	}
}

// token is one lexeme with its source position (1-based line and column).
type token struct {
	kind      tokKind
	text      string
	line, col int
}

// lexer tokenizes ADL source. Statements are newline-terminated; '#'
// starts a comment running to end of line; blank lines are skipped by the
// parser (they still produce tokNewline so positions stay exact).
type lexer struct {
	file  string
	lines []string // source split into lines, for snippets
	src   string
	pos   int // byte offset
	line  int // 1-based
	col   int // 1-based
	err   *Error
}

func newLexer(file string, src []byte) *lexer {
	s := string(src)
	return &lexer{
		file:  file,
		lines: strings.Split(s, "\n"),
		src:   s,
		line:  1,
		col:   1,
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token. On a lexical error it records l.err and returns
// an EOF token; the parser surfaces the recorded error.
func (l *lexer) next() token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.advance(1)
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '\n':
			t := token{kind: tokNewline, text: "\\n", line: l.line, col: l.col}
			l.pos++
			l.line++
			l.col = 1
			return t
		default:
			return l.scanToken()
		}
	}
	return token{kind: tokEOF, text: "", line: l.line, col: l.col}
}

func (l *lexer) advance(n int) {
	l.pos += n
	l.col += n
}

func (l *lexer) scanToken() token {
	start := token{line: l.line, col: l.col}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		j := l.pos
		for j < len(l.src) && isIdentPart(l.src[j]) {
			j++
		}
		start.kind, start.text = tokIdent, l.src[l.pos:j]
		l.advance(j - l.pos)
		return start
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.scanNumber()
	}
	switch c {
	case '=':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			start.kind, start.text = tokOp, "=="
			l.advance(2)
			return start
		}
		start.kind, start.text = tokAssign, "="
	case ':':
		start.kind, start.text = tokColon, ":"
	case ',':
		start.kind, start.text = tokComma, ","
	case '{':
		start.kind, start.text = tokLBrace, "{"
	case '}':
		start.kind, start.text = tokRBrace, "}"
	case '@':
		start.kind, start.text = tokAt, "@"
	case '+', '-', '*', '<', '>', '%':
		start.kind, start.text = tokOp, string(c)
	default:
		l.err = errAt(l.file, l.lines, l.line, l.col, CodeChar, "illegal character %q", string(c))
		return token{kind: tokEOF, line: l.line, col: l.col}
	}
	l.advance(1)
	return start
}

// scanNumber scans an optionally signed decimal literal with optional
// fraction and exponent. Trailing identifier characters (e.g. "1x") are a
// malformed-number diagnostic rather than two tokens.
func (l *lexer) scanNumber() token {
	start := token{kind: tokNumber, line: l.line, col: l.col}
	j := l.pos
	if l.src[j] == '-' {
		j++
	}
	for j < len(l.src) && isDigit(l.src[j]) {
		j++
	}
	if j < len(l.src) && l.src[j] == '.' {
		j++
		digits := false
		for j < len(l.src) && isDigit(l.src[j]) {
			j++
			digits = true
		}
		if !digits {
			l.err = errAt(l.file, l.lines, l.line, l.col, CodeNumber, "malformed number: missing digits after decimal point")
			return token{kind: tokEOF, line: l.line, col: l.col}
		}
	}
	if j < len(l.src) && (l.src[j] == 'e' || l.src[j] == 'E') {
		j++
		if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
			j++
		}
		digits := false
		for j < len(l.src) && isDigit(l.src[j]) {
			j++
			digits = true
		}
		if !digits {
			l.err = errAt(l.file, l.lines, l.line, l.col, CodeNumber, "malformed number: missing exponent digits")
			return token{kind: tokEOF, line: l.line, col: l.col}
		}
	}
	if j < len(l.src) && isIdentStart(l.src[j]) {
		l.err = errAt(l.file, l.lines, l.line, l.col, CodeNumber, "malformed number: unexpected %q", string(l.src[j]))
		return token{kind: tokEOF, line: l.line, col: l.col}
	}
	start.text = l.src[l.pos:j]
	l.advance(j - l.pos)
	return start
}
