// Package frontend compiles ADL — a small scheduled-dataflow text
// language — into the scheduled, resource-bound CDFGs the synthesis
// pipeline consumes (internal/cdfg). It is the path by which user-written
// designs, rather than the built-in benchmarks, enter the system: the
// `asyncsynth compile` subcommand and the job server's text submission
// path (POST /v1/jobs with Content-Type: text/x-adl) both call Compile.
//
// # The language
//
// An ADL design names its functional units, binds constants and initial
// register values, and lists RTL statements in schedule order; loops and
// conditionals are block-structured. docs/LANGUAGE.md is the full
// reference (grammar, scheduling rules, every diagnostic); the shape is:
//
//	# GCD by repeated subtraction
//	design gcd
//	units ALU, CMP
//	const one = 1
//	init  a = 123, b = 45, run = 1
//
//	loop ALU run {
//	    op CMP: gt = a > b
//	    if ALU gt {
//	        op ALU: a = a - b
//	    }
//	    op CMP: lt = a < b
//	    if ALU lt {
//	        op ALU: b = b - a
//	    }
//	    op CMP: ne = a == b
//	    op ALU: run = one - ne
//	}
//
// Statements may carry explicit control steps (`op ALU: x = a + b @ 3`);
// within a run of annotated statements the steps, not the source order,
// give the schedule.
//
// # Diagnostics
//
// Every failure is a positioned *Error carrying a stable ADLxxx code, the
// file/line/column and the offending source line — lexical (ADL001–002),
// syntactic (ADL003–004, ADL011), semantic (ADL005–010, ADL013–014), and
// structural rejections from cdfg.Validate (ADL012), whose messages name
// the enclosing loop/if construct by its condition register.
//
// # Semantics
//
// A compiled design has the sequential semantics of its statement list
// (loops run while the condition register is non-zero, sampled at entry
// and after each iteration; if bodies run when theirs is non-zero at the
// test). Interpret executes exactly those semantics and is the golden
// model the synthesized distributed controllers must match.
package frontend
