package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/stage"
)

// swapTarget finds an FU-bound addition node in g and returns it with
// the delta JSON flipping it to a subtraction.
func swapTarget(t *testing.T, g *cdfg.Graph) (*cdfg.Node, []byte) {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Kind == cdfg.KindOp && n.FU != "" && len(n.Stmts) == 1 && n.Stmts[0].Op == cdfg.OpAdd {
			s := n.Stmts[0]
			delta := fmt.Sprintf(
				`{"version":1,"kind":"cdfg-delta","ops":[{"op":"retype_node","id":%d,"stmts":[{"dst":%q,"op":"-","src1":%q,"src2":%q}]}]}`,
				n.ID, s.Dst, s.Src1, s.Src2)
			return n, []byte(delta)
		}
	}
	t.Fatal("no FU-bound addition in graph")
	return nil, nil
}

func patchJob(t *testing.T, url, id string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, url+"/v1/jobs/"+id, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPPatchEndToEnd is the incremental-iteration acceptance path:
// submit a design, PATCH it with a single-FU op swap, and assert the
// derived job is accepted with a local dirty region, completes with a
// result byte-identical to a cold pipeline run on the patched graph,
// and reports the pipeline stage it finished in.
func TestHTTPPatchEndToEnd(t *testing.T) {
	tr := obs.New(256)
	tr.Enable()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	store, err := memo.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Concurrency: 2, Engine: stage.New(store)})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	base := diffeq.Build(diffeq.DefaultParams())
	doc, err := codec.EncodeGraph(base)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	decodeBody(t, resp, http.StatusAccepted, &st)
	baseJob, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, baseJob, StateDone)

	// The completed status reports the last pipeline stage observed.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, http.StatusOK, &st)
	if st.Stage == "" {
		t.Error("completed job status carries no stage name")
	}

	// PATCH with the op swap: accepted, classified local to one FU.
	target, delta := swapTarget(t, base)
	resp = patchJob(t, srv.URL, st.ID, delta)
	var patched JobStatus
	decodeBody(t, resp, http.StatusAccepted, &patched)
	if patched.ID == st.ID || patched.ID == "" {
		t.Fatalf("patch did not mint a new job: %+v", patched)
	}
	if patched.Dirty == nil || patched.Dirty.Global {
		t.Fatalf("dirty region %+v, want local", patched.Dirty)
	}
	if len(patched.Dirty.FUs) != 1 || patched.Dirty.FUs[0] != target.FU {
		t.Fatalf("dirty FUs %v, want [%s]", patched.Dirty.FUs, target.FU)
	}

	pj, err := m.Get(patched.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, pj, StateDone)

	// Byte-identical to a cold full pipeline run on the patched graph.
	d, err := codec.DecodeDelta(delta)
	if err != nil {
		t.Fatal(err)
	}
	edited, err := codec.ApplyDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Run(edited.Clone(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	want, err := codec.EncodeSynthesis(s, results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj.Result(), want) {
		t.Error("patched job result differs from a cold run on the edited graph")
	}

	// The base job's stored graph was not mutated by the patch.
	again, err := codec.EncodeGraph(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, doc) {
		t.Error("PATCH mutated the base job's graph")
	}
}

// TestHTTPPatchErrors pins the failure status codes: unknown job 404,
// malformed delta 400, semantically invalid delta 422.
func TestHTTPPatchErrors(t *testing.T) {
	m := New(Config{Concurrency: 1})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	base := diffeq.Build(diffeq.DefaultParams())
	doc, err := codec.EncodeGraph(base)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	decodeBody(t, resp, http.StatusAccepted, &st)
	job, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateDone)

	_, delta := swapTarget(t, base)
	cases := []struct {
		name string
		id   string
		body []byte
		want int
	}{
		{"unknown job", "job-999999", delta, http.StatusNotFound},
		{"not json", st.ID, []byte("{"), http.StatusBadRequest},
		{"wrong kind", st.ID, []byte(`{"version":1,"kind":"cdfg","ops":[{"op":"remove_arc","id":0}]}`), http.StatusBadRequest},
		{"unknown node", st.ID, []byte(`{"version":1,"kind":"cdfg-delta","ops":[{"op":"remove_node","id":424242}]}`), http.StatusUnprocessableEntity},
		{"wrong base", st.ID, []byte(`{"version":1,"kind":"cdfg-delta","base":"other","ops":[{"op":"remove_node","id":424242}]}`), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp := patchJob(t, srv.URL, tc.id, tc.body)
		if body := readAll(t, resp); resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (body %s), want %d", tc.name, resp.StatusCode, strings.TrimSpace(body), tc.want)
		}
	}

	// A patch onto a terminal job still works off its input graph; waiting
	// is not required. Verified implicitly above — but also assert a patch
	// submitted while the manager drains is refused like any submission.
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp = patchJob(t, srv.URL, st.ID, delta)
	if readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("patch while draining: %d, want 503", resp.StatusCode)
	}
}
