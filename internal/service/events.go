package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Job progress is observable as an ordered event stream: every lifecycle
// transition appends a "state" event, and — while the job runs with a
// global obs tracer enabled — every completed pipeline span appends a
// "span" event, so a client watches GT passes, per-controller LT work and
// hfmin solves land in real time. GET /v1/jobs/{id}/events serves the
// stream as Server-Sent Events by default and as JSON batches in
// long-poll mode (?poll=1).
//
// Spans are recorded process-wide: when several jobs run concurrently a
// job's stream includes its neighbours' spans too (spans carry no job
// identity). The stream is a progress feed, not an attribution record;
// state events are always exact.

// Event is one entry in a job's progress stream.
type Event struct {
	// Seq numbers events per job, starting at 1 and strictly increasing;
	// clients resume with ?since=<last seen seq>.
	Seq uint64 `json:"seq"`
	// Type is "state" for lifecycle transitions, "span" for completed
	// pipeline spans.
	Type string `json:"type"`
	// State is the lifecycle state entered (state events only).
	State string `json:"state,omitempty"`
	// Error is the terminal error (failed/cancelled state events only).
	Error string `json:"error,omitempty"`
	// Span is the completed pipeline span (span events only).
	Span *obs.SpanEvent `json:"span,omitempty"`
}

// eventLogCap bounds a job's buffered history; the oldest events are
// dropped first. Late subscribers of a span-heavy job may miss early
// spans — state events are few and practically always retained.
const eventLogCap = 1024

// eventLog is an append-only, bounded per-job event buffer with
// broadcast: since returns everything after a sequence number plus a
// channel that closes on the next append.
type eventLog struct {
	mu     sync.Mutex
	buf    []Event
	first  uint64 // seq of buf[0]
	next   uint64 // seq the next append gets
	notify chan struct{}
	done   bool
}

func newEventLog() *eventLog {
	return &eventLog{next: 1, first: 1, notify: make(chan struct{})}
}

// append assigns the event its sequence number and wakes subscribers.
// Events after the terminal one are dropped: the stream is closed.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	e.Seq = l.next
	l.next++
	if len(l.buf) == eventLogCap {
		copy(l.buf, l.buf[1:])
		l.buf = l.buf[:eventLogCap-1]
		l.first++
	}
	l.buf = append(l.buf, e)
	close(l.notify)
	l.notify = make(chan struct{})
}

// closeLog marks the stream complete (terminal state appended); waiters
// are woken one last time.
func (l *eventLog) closeLog() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.notify)
	l.notify = make(chan struct{})
}

// since returns the buffered events with Seq > seq, a channel closed on
// the next append, and whether the stream is complete.
func (l *eventLog) since(seq uint64) ([]Event, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	if seq+1 < l.first {
		seq = l.first - 1 // dropped history: resume at the oldest retained
	}
	if idx := int(seq + 1 - l.first); idx < len(l.buf) {
		out = append(out, l.buf[idx:]...)
	}
	return out, l.notify, l.done
}

// Events returns the job's buffered progress events after seq (0 for
// all), and whether the stream is complete. For polling clients; HTTP
// streaming uses the events endpoint.
func (j *Job) Events(seq uint64) ([]Event, bool) {
	evs, _, done := j.events.since(seq)
	return evs, done
}

// pushState appends a lifecycle event mirroring the given state.
func (j *Job) pushState(state State, err error) {
	e := Event{Type: "state", State: state.String()}
	if err != nil {
		e.Error = err.Error()
	}
	j.events.append(e)
	if state.Terminal() {
		j.events.closeLog()
	}
}

// maxEventWait bounds one long-poll and paces SSE heartbeats.
const maxEventWait = 30 * time.Second

// handleEvents serves GET /v1/jobs/{id}/events. Default is an SSE stream
// (Content-Type text/event-stream, one "state"/"span" event per message,
// comment heartbeats while idle) that ends when the job's stream closes.
// With ?poll=1 it is a long-poll instead: the response is a JSON batch
// {"events": [...], "next": N, "done": bool} of events after ?since=N,
// waiting up to ?wait=D (default and cap 30s) for the first one.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	var since uint64
	if s := r.URL.Query().Get("since"); s != "" {
		since, err = strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "malformed since: "+err.Error())
			return
		}
	}
	if r.URL.Query().Get("poll") != "" {
		m.longPoll(w, r, job, since)
		return
	}
	m.streamSSE(w, r, job, since)
}

func (m *Manager) streamSSE(w http.ResponseWriter, r *http.Request, job *Job, since uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		evs, notify, done := job.events.since(since)
		for _, e := range evs {
			data, jerr := json.Marshal(e)
			if jerr != nil {
				return
			}
			// The SSE id carries the seq so EventSource reconnects resume.
			if _, werr := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data); werr != nil {
				return
			}
			since = e.Seq
		}
		fl.Flush()
		if done {
			// The log is closed: nothing can append after the terminal
			// event, so the replay above was the complete stream.
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-time.After(maxEventWait):
			// Heartbeat comment keeps proxies from timing the stream out.
			if _, werr := io.WriteString(w, ": heartbeat\n\n"); werr != nil {
				return
			}
			fl.Flush()
		}
	}
}

// eventBatch is the JSON body of one long-poll response.
type eventBatch struct {
	Events []Event `json:"events"`
	// Next is the cursor for the follow-up request's ?since=.
	Next uint64 `json:"next"`
	// Done reports that the stream is complete and Events is its tail.
	Done bool `json:"done"`
}

func (m *Manager) longPoll(w http.ResponseWriter, r *http.Request, job *Job, since uint64) {
	wait := maxEventWait
	if s := r.URL.Query().Get("wait"); s != "" {
		d, derr := time.ParseDuration(s)
		if derr != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "malformed wait")
			return
		}
		if d < wait {
			wait = d
		}
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		evs, notify, done := job.events.since(since)
		if len(evs) > 0 || done {
			next := since
			if len(evs) > 0 {
				next = evs[len(evs)-1].Seq
			}
			writeJSON(w, http.StatusOK, eventBatch{Events: evs, Next: next, Done: done})
			return
		}
		select {
		case <-notify:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, eventBatch{Events: []Event{}, Next: since})
			return
		case <-r.Context().Done():
			return
		}
	}
}
