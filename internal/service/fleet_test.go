package service

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/fleet"
	"repro/internal/memo"
	"repro/internal/obs"
)

// TestDedupConcurrentSubmissions is the dedup acceptance scenario: many
// concurrent submissions of the same document collapse onto one job — one
// ID, one pipeline run — observed through the service counters.
func TestDedupConcurrentSubmissions(t *testing.T) {
	reg := obs.NewMetrics()
	obs.SetMetrics(reg)
	defer obs.SetMetrics(nil)

	min := &gateMin{gate: make(chan struct{})}
	m := New(Config{Concurrency: 2, Dedup: true, Minimizer: min})
	defer m.Close()

	first, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateRunning) // parked inside the gated minimizer

	const dups = 8
	ids := make([]string, dups)
	var wg sync.WaitGroup
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT)
			if err != nil {
				t.Errorf("dup submit %d: %v", i, err)
				return
			}
			ids[i] = job.ID()
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id != first.ID() {
			t.Fatalf("dup submit %d got job %s, want %s", i, id, first.ID())
		}
	}
	if got := reg.Counter("service/dedup_hits"); got != dups {
		t.Fatalf("dedup_hits = %d, want %d", got, dups)
	}
	if got := reg.Counter("service/jobs_submitted"); got != 1 {
		t.Fatalf("jobs_submitted = %d, want 1 (exactly one pipeline run admitted)", got)
	}

	close(min.gate)
	waitState(t, first, StateDone)
	if got := reg.Counter("service/jobs_completed"); got != 1 {
		t.Fatalf("jobs_completed = %d, want 1", got)
	}

	// Terminal jobs never match: resubmitting is a fresh run.
	again, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID() == first.ID() {
		t.Fatal("resubmission after completion reused the finished job")
	}
	waitState(t, again, StateDone)

	// Different level or mode means a different content key.
	k1, _, err := ContentKey(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT, ModeSynth)
	if err != nil {
		t.Fatal(err)
	}
	k2, _, _ := ContentKey(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGT, ModeSynth)
	k3, _, _ := ContentKey(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT, ModeSearch)
	if k1 == k2 || k1 == k3 {
		t.Fatal("content key ignores level or mode")
	}
	if k1b, _, _ := ContentKey(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT, ModeSynth); k1b != k1 {
		t.Fatal("content key is not deterministic")
	}
}

// TestEventsEndpoint drives GET /v1/jobs/{id}/events in both transports:
// long-poll batches carry the queued→running→done lifecycle (plus span
// events while a tracer is enabled), and the SSE replay of a finished job
// terminates with the full stream.
func TestEventsEndpoint(t *testing.T) {
	tracer := obs.New(0)
	tracer.Enable()
	obs.SetTracer(tracer)
	defer obs.SetTracer(nil)

	m := New(Config{Concurrency: 1})
	defer m.Close()
	srv := newTestServer(t, m.Handler())

	doc, err := codec.EncodeGraph(diffeq.Build(diffeq.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv+"/v1/jobs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	decodeBody(t, resp, http.StatusAccepted, &st)

	var events []Event
	since := uint64(0)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("event stream never completed (have %d events)", len(events))
		}
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?poll=1&since=%d&wait=2s", srv, st.ID, since))
		if err != nil {
			t.Fatal(err)
		}
		var batch eventBatch
		decodeBody(t, resp, http.StatusOK, &batch)
		events = append(events, batch.Events...)
		since = batch.Next
		if batch.Done {
			break
		}
	}
	var states []string
	spans := 0
	for _, e := range events {
		switch e.Type {
		case "state":
			states = append(states, e.State)
		case "span":
			if e.Span == nil {
				t.Fatal("span event without a span payload")
			}
			spans++
		}
	}
	if len(states) == 0 || states[0] != "queued" || states[len(states)-1] != "done" {
		t.Fatalf("lifecycle events = %v, want queued ... done", states)
	}
	if !containsString(states, "running") {
		t.Fatalf("lifecycle events = %v, missing running", states)
	}
	if spans == 0 {
		t.Fatal("no span events streamed with an enabled tracer")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event seqs not strictly increasing: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}

	// SSE replay of the finished job: a finite body carrying every event.
	resp, err = http.Get(srv + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	body := readAll(t, resp)
	if !strings.Contains(body, "event: state") || !strings.Contains(body, `"state":"done"`) {
		t.Fatalf("SSE replay missing lifecycle events:\n%s", body)
	}
	if !strings.Contains(body, "event: span") {
		t.Fatal("SSE replay missing span events")
	}

	// Error surface: unknown job 404, malformed cursor 400.
	resp, err = http.Get(srv + "/v1/jobs/job-999999/events?poll=1")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv + "/v1/jobs/" + st.ID + "/events?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed since: %d", resp.StatusCode)
	}
}

// fleetNode is one in-process asyncsynthd node for fleet tests.
type fleetNode struct {
	url   string
	host  string
	m     *Manager
	cache *memo.Cache
	peers *fleet.Peers
	srv   *http.Server
}

// startFleet boots n coordinated nodes on real loopback listeners, each
// with its own memo cache wired to pull from the others (the production
// topology, minus separate processes).
func startFleet(t *testing.T, n int) []*fleetNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		var others []string
		for j, u := range urls {
			if j != i {
				others = append(others, u)
			}
		}
		cache, err := memo.New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		peers := fleet.NewPeers(others, fleet.PeerOptions{})
		cache.SetRemote(fleet.NewCacheClient(others, peers, fleet.CacheClientOptions{}), time.Second)
		m := New(Config{
			Concurrency: 2,
			Parallelism: 2,
			Dedup:       true,
			NodeID:      listeners[i].Addr().String(),
			Minimizer:   cache,
		})
		handler := m.FleetHandler(FleetConfig{
			Self:  urls[i],
			Nodes: urls,
			Peers: peers,
			Cache: cache,
			Retry: fleet.Backoff{Attempts: 2, Base: 10 * time.Millisecond},
		})
		srv := &http.Server{Handler: handler}
		go srv.Serve(listeners[i])
		node := &fleetNode{url: urls[i], host: listeners[i].Addr().String(), m: m, cache: cache, peers: peers, srv: srv}
		nodes[i] = node
		t.Cleanup(func() {
			node.srv.Close()
			node.m.Close()
			node.peers.Close()
		})
	}
	return nodes
}

// pollDone polls a job through base until it is terminal.
func pollDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		decodeBody(t, resp, http.StatusOK, &st)
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetThreeNodes exercises the full fleet surface in-process: ring
// forwarding, cross-node job polling, bit-identical results from every
// node, cross-node remote cache fills, and degrade-to-local when the
// owner dies.
func TestFleetThreeNodes(t *testing.T) {
	reg := obs.NewMetrics()
	obs.SetMetrics(reg)
	defer obs.SetMetrics(nil)

	nodes := startFleet(t, 3)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	byURL := map[string]*fleetNode{}
	for _, n := range nodes {
		byURL[n.url] = n
	}

	graph := diffeq.Build(diffeq.DefaultParams())
	doc, err := codec.EncodeGraph(graph)
	if err != nil {
		t.Fatal(err)
	}
	key, _, err := ContentKey(graph, core.OptimizedGTLT, ModeSynth)
	if err != nil {
		t.Fatal(err)
	}
	owner := byURL[fleet.NewRing(urls, 0).Owner(key)]
	var poster, third *fleetNode
	for _, n := range nodes {
		if n == owner {
			continue
		}
		if poster == nil {
			poster = n
		} else {
			third = n
		}
	}

	// Submit via a non-owner: the request forwards to the ring owner and
	// the job ID carries the owner's node suffix.
	resp, err := http.Post(poster.url+"/v1/jobs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	decodeBody(t, resp, http.StatusAccepted, &st)
	if got := NodeOf(st.ID); got != owner.host {
		t.Fatalf("job landed on %q, want ring owner %q", got, owner.host)
	}
	if reg.Counter("fleet/forwarded") == 0 {
		t.Fatal("submission was not counted as forwarded")
	}

	// Poll through the third node: the @suffix routes the request across
	// the fleet.
	final := pollDone(t, third.url, st.ID)
	if final.State != "done" {
		t.Fatalf("job state %s (error %s), want done", final.State, final.Error)
	}
	if reg.Counter("fleet/proxied") == 0 {
		t.Fatal("cross-node poll was not proxied")
	}

	// Every node serves the identical result document, and it matches a
	// direct single-process pipeline run bit for bit.
	direct, err := core.Run(diffeq.Build(diffeq.DefaultParams()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := direct.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	want, err := codec.EncodeSynthesis(direct, results)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		resp, err := http.Get(n.url + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if body := readAll(t, resp); resp.StatusCode != http.StatusOK || body != string(want) {
			t.Fatalf("result via %s differs from direct run (status %d)", n.url, resp.StatusCode)
		}
	}

	// Force a local re-run on a non-owner (the forward header pins
	// execution): its memo cache misses locally and fills from the owner
	// over the remote tier — cross-node cache hits, identical bytes.
	req, err := http.NewRequest(http.MethodPost, poster.url+"/v1/jobs", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, "test")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var local JobStatus
	decodeBody(t, resp, http.StatusAccepted, &local)
	if got := NodeOf(local.ID); got != poster.host {
		t.Fatalf("forced-local job landed on %q, want %q", got, poster.host)
	}
	if st := pollDone(t, poster.url, local.ID); st.State != "done" {
		t.Fatalf("forced-local job state %s (error %s)", st.State, st.Error)
	}
	if hits := poster.cache.Stats().RemoteHits; hits == 0 {
		t.Fatal("forced-local run produced no cross-node remote cache hits")
	}
	resp, err = http.Get(poster.url + "/v1/jobs/" + local.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); body != string(want) {
		t.Fatal("remote-cache-filled result differs from direct run")
	}

	// Kill the owner. A fresh submission still completes: the forward
	// fails, the poster marks the owner down and degrades to local
	// execution.
	owner.srv.Close()
	resp, err = http.Post(third.url+"/v1/jobs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var degraded JobStatus
	decodeBody(t, resp, http.StatusAccepted, &degraded)
	if got := NodeOf(degraded.ID); got != third.host {
		t.Fatalf("degraded job landed on %q, want local node %q", got, third.host)
	}
	if reg.Counter("fleet/forward_fallbacks") == 0 {
		t.Fatal("dead-owner submission was not counted as a fallback")
	}
	if poster.peers.Healthy(owner.url) && third.peers.Healthy(owner.url) {
		t.Fatal("no node marked the dead owner down")
	}
	if st := pollDone(t, third.url, degraded.ID); st.State != "done" {
		t.Fatalf("degraded job state %s (error %s)", st.State, st.Error)
	}
	resp, err = http.Get(third.url + "/v1/jobs/" + degraded.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); body != string(want) {
		t.Fatal("degraded-to-local result differs from direct run")
	}
}

// TestNodeOfAndCacheEndpoint pins the small fleet plumbing: ID suffix
// parsing and the cache export endpoint's error surface.
func TestNodeOfAndCacheEndpoint(t *testing.T) {
	if got := NodeOf("job-000001@127.0.0.1:8337"); got != "127.0.0.1:8337" {
		t.Fatalf("NodeOf = %q", got)
	}
	if got := NodeOf("job-000001"); got != "" {
		t.Fatalf("NodeOf without suffix = %q", got)
	}

	cache, err := memo.New("")
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Concurrency: 1, Minimizer: cache})
	defer m.Close()
	srv := newTestServer(t, m.FleetHandler(FleetConfig{Self: "http://127.0.0.1:1", Cache: cache}))
	resp, err := http.Get(srv + "/v1/cache/nothex")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus cache key: %d, want 404", resp.StatusCode)
	}
	// The single-node fleet handler still serves the plain API.
	resp, err = http.Get(srv + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz through fleet handler: %d %q", resp.StatusCode, body)
	}
}

// newTestServer serves handler on a loopback listener and returns its base
// URL; shutdown is tied to test cleanup.
func newTestServer(t *testing.T, handler http.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
