package service

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/memo"
	"repro/internal/obs"
)

// ForwardHeader marks a submission already routed by a peer. A node
// receiving it executes the job locally, whatever its own ring view
// says — one hop, never a forwarding loop even while ring views diverge
// (e.g. during a health-state transition).
const ForwardHeader = "X-Asyncsynth-Forwarded"

// FleetConfig wires a Manager into a multi-node fleet behind
// FleetHandler.
type FleetConfig struct {
	// Self is this node's advertised base URL (e.g. http://127.0.0.1:8337).
	Self string
	// Nodes lists every job-owning node's base URL, Self included; all
	// nodes must agree on the set for the consistent-hash ring to agree
	// on owners. A list of one (or nil) degrades to purely local serving.
	Nodes []string
	// Peers is the liveness view used to skip dead nodes; probes are the
	// caller's to start. Nil presumes everyone healthy.
	Peers *fleet.Peers
	// Cache, when non-nil, is served to peers at GET /v1/cache/{key}
	// (the fleet cache-fill protocol; see memo.Remote).
	Cache *memo.Cache
	// Blobs, when non-nil, is the stage-payload store also served at
	// GET /v1/cache/{key}: a key missing from Cache falls through to it,
	// so one endpoint ships both hfmin records and stage blobs between
	// nodes. The distinct salts (memo.Salt vs memo.StoreSalt) keep the
	// two record kinds from ever aliasing.
	Blobs *memo.Store
	// Retry shapes forwarding retries; the zero value selects
	// fleet.Backoff's defaults (3 attempts from 50ms).
	Retry fleet.Backoff
	// Client is the forwarding HTTP client. Default: a dedicated client
	// with a 30s overall timeout per attempt.
	Client *http.Client
}

// fleetProxy is the routing layer FleetHandler installs in front of a
// Manager's local Handler.
type fleetProxy struct {
	m     *Manager
	cfg   FleetConfig
	ring  *fleet.Ring
	local http.Handler
}

// FleetHandler returns the node's HTTP API with fleet routing in front
// of the local Handler:
//
//   - POST /v1/jobs is routed by content key: the consistent-hash ring
//     assigns every document a stable owner, so identical submissions
//     meet at one node and hit its request-level dedup and memo cache.
//     Non-owned submissions are forwarded (retry with backoff); if the
//     owner is unreachable the node degrades to local execution instead
//     of failing the job, marking the peer down for the health loop.
//   - GET/PATCH/DELETE /v1/jobs/{id}[/...] honour the "@node" ID suffix:
//     requests for a foreign job are proxied to the owning node, so any
//     node can answer for any job (SSE event streams proxy flushed). A
//     PATCH lands where the base job lives, which is also where the
//     stage cache holding its intermediate results is warm.
//   - GET /v1/cache/{key} serves this node's solved minimization records
//     to peers (404 on miss), the pull side of memo.Remote.
//
// Everything else — /healthz, /metrics — is served locally.
func (m *Manager) FleetHandler(cfg FleetConfig) http.Handler {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	p := &fleetProxy{m: m, cfg: cfg, ring: fleet.NewRing(cfg.Nodes, 0), local: m.Handler()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", p.submit)
	mux.Handle("GET /v1/jobs/{id}", p.byJobID())
	mux.Handle("PATCH /v1/jobs/{id}", p.byJobID())
	mux.Handle("GET /v1/jobs/{id}/result", p.byJobID())
	mux.Handle("GET /v1/jobs/{id}/events", p.byJobID())
	mux.Handle("DELETE /v1/jobs/{id}", p.byJobID())
	mux.HandleFunc("GET /v1/cache/{key}", p.cacheGet)
	mux.Handle("/", p.local)
	return mux
}

// NodeOf returns the fleet node a job ID belongs to ("" when the ID has
// no node suffix).
func NodeOf(jobID string) string {
	if i := strings.LastIndexByte(jobID, '@'); i >= 0 {
		return jobID[i+1:]
	}
	return ""
}

// nodeID reduces a base URL to the host:port identity job IDs carry.
func nodeID(baseURL string) string {
	if u, err := url.Parse(baseURL); err == nil && u.Host != "" {
		return u.Host
	}
	return baseURL
}

// nodeURL resolves a job ID's node suffix back to a base URL using the
// ring membership (the suffix is the host:port of an advertised URL).
func (p *fleetProxy) nodeURL(node string) string {
	for _, n := range p.ring.Nodes() {
		if nodeID(n) == node {
			return n
		}
	}
	return ""
}

func (p *fleetProxy) alive(node string) bool {
	if node == p.cfg.Self || p.cfg.Peers == nil {
		return true
	}
	return p.cfg.Peers.Healthy(node)
}

// submit routes POST /v1/jobs by content key.
func (p *fleetProxy) submit(w http.ResponseWriter, r *http.Request) {
	sub, status, msg := parseSubmission(r)
	if status != 0 {
		writeError(w, status, msg)
		return
	}
	if r.Header.Get(ForwardHeader) != "" {
		// Already routed by a peer: execute here, one hop only.
		obs.Add("fleet/forwards_received", 1)
		job, err := p.m.SubmitMode(sub.graph, sub.level, sub.mode)
		writeSubmitOutcome(w, job, err)
		return
	}
	key, canonical, err := ContentKey(sub.graph, sub.level, sub.mode)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	owner := p.ring.OwnerAlive(key, p.alive)
	if owner == "" || owner == p.cfg.Self {
		obs.Add("fleet/local_submits", 1)
		job, err := p.m.SubmitKeyed(sub.graph, sub.level, sub.mode, key)
		writeSubmitOutcome(w, job, err)
		return
	}
	if p.forward(w, r, owner, canonical, sub) {
		obs.Add("fleet/forwarded", 1)
		return
	}
	// The owner is unreachable: degrade to local execution rather than
	// failing the job, and let the health loop chase the peer.
	if p.cfg.Peers != nil {
		p.cfg.Peers.MarkDown(owner)
	}
	obs.Add("fleet/forward_fallbacks", 1)
	job, err := p.m.SubmitKeyed(sub.graph, sub.level, sub.mode, key)
	writeSubmitOutcome(w, job, err)
}

// forward relays a submission to its owner and copies the response back;
// it reports false when every attempt failed and the caller should run
// the job locally. Owner-side rejections (429/503) are relayed, not
// retried: backpressure is the owner's verdict, not a transport failure.
func (p *fleetProxy) forward(w http.ResponseWriter, r *http.Request, owner string, canonical []byte, sub submission) bool {
	target := owner + "/v1/jobs?level=" + url.QueryEscape(sub.level.String()) +
		"&mode=" + url.QueryEscape(string(sub.mode))
	var resp *http.Response
	err := p.cfg.Retry.Do(r.Context(), func() error {
		req, rerr := http.NewRequestWithContext(r.Context(), http.MethodPost, target, bytes.NewReader(canonical))
		if rerr != nil {
			return rerr
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardHeader, p.cfg.Self)
		res, rerr := p.cfg.Client.Do(req)
		if rerr != nil {
			return rerr
		}
		resp = res
		return nil
	})
	if err != nil || resp == nil {
		return false
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// byJobID serves job reads/cancels locally or proxies them to the node
// named in the ID suffix.
func (p *fleetProxy) byJobID() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		node := NodeOf(r.PathValue("id"))
		if node == "" || node == nodeID(p.cfg.Self) {
			p.local.ServeHTTP(w, r)
			return
		}
		target := p.nodeURL(node)
		if target == "" {
			writeError(w, http.StatusNotFound, "job belongs to unknown node "+node)
			return
		}
		u, err := url.Parse(target)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		obs.Add("fleet/proxied", 1)
		proxy := &httputil.ReverseProxy{
			Rewrite: func(pr *httputil.ProxyRequest) {
				pr.SetURL(u)
				pr.Out.URL.Path = r.URL.Path // SetURL keeps the path; be explicit
				pr.Out.URL.RawQuery = r.URL.RawQuery
			},
			// Negative: flush as bytes arrive, so proxied SSE streams move.
			FlushInterval: -1,
			ErrorHandler: func(w http.ResponseWriter, _ *http.Request, err error) {
				if p.cfg.Peers != nil {
					p.cfg.Peers.MarkDown(target)
				}
				writeError(w, http.StatusBadGateway, "node "+node+" unreachable: "+err.Error())
			},
		}
		proxy.ServeHTTP(w, r)
	})
}

// cacheGet serves the fleet cache-fill protocol from the local memo
// cache, falling through to the stage-payload store: both record kinds
// share the endpoint and are told apart by their envelope salts.
func (p *fleetProxy) cacheGet(w http.ResponseWriter, r *http.Request) {
	data, ok := p.cfg.Cache.Export(r.PathValue("key"))
	if !ok {
		data, ok = p.cfg.Blobs.Export(r.PathValue("key"))
	}
	if !ok {
		obs.Add("fleet/cache_serve_misses", 1)
		writeError(w, http.StatusNotFound, "no such cache entry")
		return
	}
	obs.Add("fleet/cache_served", 1)
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
