package service

import (
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net/http"

	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/stage"
)

// maxRequestBytes bounds a job submission body; the largest built-in
// benchmark encodes to well under 10 KiB, so 4 MiB leaves room for much
// larger CDFGs while keeping a hostile client from ballooning memory.
const maxRequestBytes = 4 << 20

// JobStatus is the JSON body of job-state responses. Result carries the
// full synthesis document (verbatim, as produced by codec) once the job
// is done.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Mode  string `json:"mode,omitempty"`
	// Stage names the most recently completed pipeline stage while the
	// job runs (fed from obs spans; omitted when tracing is disabled).
	Stage string `json:"stage,omitempty"`
	Error string `json:"error,omitempty"`
	// Dirty reports the expected blast radius of the delta that created
	// this job (PATCH /v1/jobs/{id} responses only).
	Dirty  *DirtyInfo      `json:"dirty,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// DirtyInfo is the wire form of the stage engine's dirty-region
// classification for a patched job.
type DirtyInfo struct {
	// Global reports a full recompute: the edit can change the global
	// transforms' outcome.
	Global bool `json:"global"`
	// FUs lists the functional units expected to recompute when Global is
	// false (sorted; the remaining controllers replay from the stage
	// cache).
	FUs []string `json:"fus,omitempty"`
}

// errorBody is the JSON body of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs       submit a design (?level= selects the
//	                      optimization level, default the full ladder;
//	                      ?mode= selects what runs: "synth" (default) is
//	                      the fixed pipeline, "search" the cost-directed
//	                      rewrite search, which picks the transforms
//	                      itself and ignores ?level=).
//	                      The body is negotiated on Content-Type:
//	                      application/json (or absent) is a codec graph
//	                      document; text/x-adl, text/adl or text/plain is
//	                      ADL behavioral source compiled on submission
//	GET    /v1/jobs/{id}  poll job state; includes the result when done
//	PATCH  /v1/jobs/{id}  apply a CDFG delta document (see
//	                      docs/INTERCHANGE.md) to the job's input design
//	                      and submit the patched design as a new job at
//	                      the same level and mode; the 202 response
//	                      carries the new job plus the edit's dirty
//	                      classification. With Config.Engine, unchanged
//	                      stages replay from the stage cache.
//	GET    /v1/jobs/{id}/result  the raw synthesis document, byte-for-byte
//	                      as the codec produced it (409 until done)
//	GET    /v1/jobs/{id}/events  job progress: SSE stream of lifecycle and
//	                      pipeline-span events (?poll=1 long-polls a JSON
//	                      batch instead; see events.go)
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /healthz       liveness (503 while draining)
//	GET    /metrics       the obs registry in Prometheus text format
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", m.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleGet)
	mux.HandleFunc("PATCH /v1/jobs/{id}", m.handlePatch)
	mux.HandleFunc("GET /v1/jobs/{id}/result", m.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", m.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", m.handleCancel)
	mux.HandleFunc("GET /healthz", m.handleHealth)
	mux.HandleFunc("GET /metrics", handleMetrics)
	return mux
}

// submission is one parsed POST /v1/jobs request.
type submission struct {
	level core.Level
	mode  Mode
	graph *cdfg.Graph
}

// parseSubmission reads and validates a submit request; on failure the
// returned status is non-zero and msg is the client-facing error.
func parseSubmission(r *http.Request) (sub submission, status int, msg string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		return sub, http.StatusBadRequest, "reading body: " + err.Error()
	}
	if len(body) > maxRequestBytes {
		return sub, http.StatusRequestEntityTooLarge, "request body exceeds limit"
	}
	sub.level = core.OptimizedGTLT
	if lv := r.URL.Query().Get("level"); lv != "" {
		parsed, ok := parseLevel(lv)
		if !ok {
			return sub, http.StatusBadRequest, "unknown level " + lv
		}
		sub.level = parsed
	}
	mode, ok := ParseMode(r.URL.Query().Get("mode"))
	if !ok {
		return sub, http.StatusBadRequest, "unknown mode " + r.URL.Query().Get("mode") +
			" (want synth or search)"
	}
	sub.mode = mode
	g, err := decodeSubmission(r.Header.Get("Content-Type"), body)
	if err != nil {
		return sub, http.StatusBadRequest, err.Error()
	}
	sub.graph = g
	return sub, 0, ""
}

// writeSubmitOutcome maps a Submit result onto the HTTP status space.
func writeSubmitOutcome(w http.ResponseWriter, job *Job, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusAccepted, statusOf(job))
	}
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sub, status, msg := parseSubmission(r)
	if status != 0 {
		writeError(w, status, msg)
		return
	}
	job, err := m.SubmitMode(sub.graph, sub.level, sub.mode)
	writeSubmitOutcome(w, job, err)
}

// decodeSubmission negotiates the POST /v1/jobs body on its Content-Type:
// JSON (or no header) is a codec interchange document; the ADL text types
// are behavioral source compiled by the frontend. Anything else is a 415
// mapped to 400 by the caller's error path — explicit, not guessed.
func decodeSubmission(contentType string, body []byte) (*cdfg.Graph, error) {
	mediaType := ""
	if contentType != "" {
		mt, _, err := mime.ParseMediaType(contentType)
		if err != nil {
			return nil, errors.New("malformed Content-Type: " + err.Error())
		}
		mediaType = mt
	}
	switch mediaType {
	case "", "application/json":
		return codec.DecodeGraph(body)
	case "text/x-adl", "text/adl", "text/plain":
		return frontend.Compile("request.adl", body)
	default:
		return nil, errors.New("unsupported Content-Type " + mediaType +
			" (want application/json or text/x-adl)")
	}
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	job, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, statusOf(job))
}

// handleResult serves the synthesis document verbatim. The embedded
// Result in JobStatus is re-indented by the status encoder; clients that
// need the codec's exact bytes (the smoke test's bit-identical netlist
// check) read this endpoint instead.
func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	job, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	job.mu.Lock()
	state, result := job.state, job.result
	job.mu.Unlock()
	if state != StateDone {
		writeError(w, http.StatusConflict, "job is "+state.String())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(result)
}

// handlePatch applies a CDFG delta to a job's input design and submits
// the patched design as a new job. The base job may be in any state —
// its input graph is retained verbatim for exactly this purpose — and is
// never modified; iterating on a design is a chain of jobs, each
// patching its predecessor. The response is the new job's status plus
// the delta's dirty classification.
func (m *Manager) handlePatch(w http.ResponseWriter, r *http.Request) {
	base, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if len(body) > maxRequestBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds limit")
		return
	}
	delta, err := codec.DecodeDelta(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	patched, err := codec.ApplyDelta(base.graph, delta)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	dirty := stage.Classify(base.graph, delta)
	job, serr := m.SubmitMode(patched, base.level, base.mode)
	if serr != nil {
		writeSubmitOutcome(w, job, serr)
		return
	}
	st := statusOf(job)
	st.Dirty = &DirtyInfo{Global: dirty.Global, FUs: dirty.FUs}
	writeJSON(w, http.StatusAccepted, st)
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, statusOf(job))
}

func (m *Manager) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if m.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := obs.Gather()
	if reg == nil {
		writeError(w, http.StatusNotFound, "metrics registry not installed")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}

// statusOf snapshots a job for the wire.
func statusOf(job *Job) JobStatus {
	job.mu.Lock()
	defer job.mu.Unlock()
	st := JobStatus{ID: job.id, State: job.state.String(), Mode: string(job.mode), Stage: job.stage}
	if job.err != nil {
		st.Error = job.err.Error()
	}
	if job.state == StateDone {
		st.Result = json.RawMessage(job.result)
	}
	return st
}

// parseLevel maps the Level.String() forms back to levels.
func parseLevel(s string) (core.Level, bool) {
	for _, l := range []core.Level{core.Unoptimized, core.OptimizedGT, core.OptimizedGTLT} {
		if s == l.String() {
			return l, true
		}
	}
	return 0, false
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}
