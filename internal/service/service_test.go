package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/hfmin"
	"repro/internal/obs"
)

// gateMin is a MinimizerCtx that parks every minimization until the gate
// channel is closed (or the caller's context ends), letting tests hold
// jobs mid-pipeline deterministically.
type gateMin struct {
	gate chan struct{}
}

func (g *gateMin) Minimize(spec hfmin.Spec) (hfmin.Result, error) {
	return g.MinimizeCtx(context.Background(), spec)
}

func (g *gateMin) MinimizeCtx(ctx context.Context, spec hfmin.Spec) (hfmin.Result, error) {
	select {
	case <-g.gate:
		return hfmin.MinimizeCtx(ctx, spec)
	case <-ctx.Done():
		return hfmin.Result{}, ctx.Err()
	}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, job *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for job.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %v, want %v", job.ID(), job.State(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitToCompletion(t *testing.T) {
	m := New(Config{Concurrency: 2, Parallelism: 4})
	defer m.Close()
	job, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	if job.State() != StateDone {
		t.Fatalf("state %v (err %v), want done", job.State(), job.Err())
	}
	doc, err := codec.DecodeSynthesis(job.Result())
	if err != nil {
		t.Fatalf("result does not decode: %v", err)
	}
	if doc.Name != "diffeq" || len(doc.Controllers) != len(diffeq.FUs) {
		t.Fatalf("unexpected result: name=%q controllers=%d", doc.Name, len(doc.Controllers))
	}
}

// TestSearchModeToCompletion submits a ModeSearch job and checks the result
// is a well-formed synthesis document of the search winner. The seeds-only
// profile (SearchWaves < 0) keeps the job to one ablation sweep.
func TestSearchModeToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("search-mode job runs gate-level synthesis per candidate")
	}
	m := New(Config{Concurrency: 1, Parallelism: 4, SearchWaves: -1, SearchBudget: 8})
	defer m.Close()
	job, err := m.SubmitMode(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT, ModeSearch)
	if err != nil {
		t.Fatal(err)
	}
	if job.Mode() != ModeSearch {
		t.Fatalf("job mode %q, want search", job.Mode())
	}
	select {
	case <-job.Done():
	case <-time.After(5 * time.Minute):
		t.Fatal("search job did not finish")
	}
	if job.State() != StateDone {
		t.Fatalf("state %v (err %v), want done", job.State(), job.Err())
	}
	doc, err := codec.DecodeSynthesis(job.Result())
	if err != nil {
		t.Fatalf("result does not decode: %v", err)
	}
	if doc.Name != "diffeq" || len(doc.Controllers) == 0 {
		t.Fatalf("unexpected result: name=%q controllers=%d", doc.Name, len(doc.Controllers))
	}
}

// TestSubmitModeValidation pins the mode domain: the empty string and the
// two named modes parse, anything else is rejected before admission.
func TestSubmitModeValidation(t *testing.T) {
	for _, s := range []string{"", "synth", "search"} {
		if _, ok := ParseMode(s); !ok {
			t.Errorf("ParseMode(%q) rejected", s)
		}
	}
	if _, ok := ParseMode("bogus"); ok {
		t.Error("ParseMode accepted an unknown mode")
	}
	m := New(Config{Concurrency: 1})
	defer m.Close()
	if _, err := m.SubmitMode(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT, Mode("bogus")); err == nil {
		t.Error("SubmitMode accepted an unknown mode")
	}
}

func TestBackpressureRejectsBeyondQueueDepth(t *testing.T) {
	min := &gateMin{gate: make(chan struct{})}
	m := New(Config{Concurrency: 1, QueueDepth: 1, Minimizer: min})
	defer m.Close()
	running, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	if _, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT); err != nil {
		t.Fatalf("queue-depth submission rejected: %v", err)
	}
	if _, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	if got := obs.Gather(); got != nil {
		t.Log("metrics registry unexpectedly installed") // tolerated; counters still work
	}
	close(min.gate)
}

// TestCancelFreesWorkersWithoutFailingOthers is the acceptance scenario:
// of three concurrent jobs, cancelling one releases its pool workers
// (observed via the par/inflight and service/jobs_running gauges) while
// the other two run to completion.
func TestCancelFreesWorkersWithoutFailingOthers(t *testing.T) {
	reg := obs.NewMetrics()
	obs.SetMetrics(reg)
	defer obs.SetMetrics(nil)

	min := &gateMin{gate: make(chan struct{})}
	m := New(Config{Concurrency: 3, Parallelism: 3, Minimizer: min})
	defer m.Close()

	var jobs []*Job
	for i := 0; i < 3; i++ {
		job, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		waitState(t, job, StateRunning)
	}
	// All three are parked inside the gated minimizer on pool workers.
	deadline := time.Now().Add(30 * time.Second)
	for reg.Gauge("par/inflight") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no pool workers became busy")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := reg.Gauge("service/jobs_running"); got != 3 {
		t.Fatalf("jobs_running gauge = %d, want 3", got)
	}

	victim := jobs[1]
	if _, err := m.Cancel(victim.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, victim, StateCancelled)
	if !errors.Is(victim.Err(), context.Canceled) {
		t.Fatalf("victim err = %v, want context.Canceled", victim.Err())
	}
	// The victim's runner slot and pool workers must drain back.
	for reg.Gauge("service/jobs_running") != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("jobs_running gauge stuck at %d after cancel", reg.Gauge("service/jobs_running"))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The survivors complete once the gate opens.
	close(min.gate)
	for _, job := range []*Job{jobs[0], jobs[2]} {
		waitState(t, job, StateDone)
	}
	for reg.Gauge("par/inflight") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("par/inflight gauge stuck at %d", reg.Gauge("par/inflight"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if reg.Gauge("service/jobs_running") != 0 {
		t.Fatalf("jobs_running gauge = %d at idle", reg.Gauge("service/jobs_running"))
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	min := &gateMin{gate: make(chan struct{})}
	m := New(Config{Concurrency: 1, QueueDepth: 2, Minimizer: min})
	defer m.Close()
	running, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if queued.State() != StateCancelled {
		t.Fatalf("queued job state %v, want cancelled", queued.State())
	}
	close(min.gate)
	waitState(t, running, StateDone)
	// Idempotence: cancelling a terminal job changes nothing.
	if _, err := m.Cancel(running.ID()); err != nil || running.State() != StateDone {
		t.Fatalf("cancel on done job: err=%v state=%v", err, running.State())
	}
}

func TestJobTimeout(t *testing.T) {
	min := &gateMin{gate: make(chan struct{})} // never opened: job hangs until deadline
	m := New(Config{Concurrency: 1, JobTimeout: 50 * time.Millisecond, Minimizer: min})
	defer m.Close()
	job, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateFailed)
	if !errors.Is(job.Err(), context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", job.Err())
	}
}

func TestDrainFinishesQueuedWorkAndRejectsNew(t *testing.T) {
	m := New(Config{Concurrency: 1})
	defer m.Close()
	job, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if job.State() != StateDone {
		t.Fatalf("drained job state %v, want done", job.State())
	}
	if _, err := m.Submit(diffeq.Build(diffeq.DefaultParams()), core.OptimizedGTLT); !errors.Is(err, ErrDraining) {
		t.Fatalf("got %v, want ErrDraining", err)
	}
}

// TestHTTPEndToEnd drives the full HTTP surface in-process: submit the
// DIFFEQ document, poll to completion, and check the result is
// bit-identical to a direct pipeline run.
func TestHTTPEndToEnd(t *testing.T) {
	reg := obs.NewMetrics()
	obs.SetMetrics(reg)
	defer obs.SetMetrics(nil)

	m := New(Config{Concurrency: 2})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	doc, err := codec.EncodeGraph(diffeq.Build(diffeq.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	decodeBody(t, resp, http.StatusAccepted, &st)
	if st.State != "queued" || st.ID == "" {
		t.Fatalf("submit response: %+v", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s (error %q)", st.State, st.Error)
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job reached %s: %s", st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, http.StatusOK, &st)
	}

	direct, err := core.Run(diffeq.Build(diffeq.DefaultParams()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := direct.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	want, err := codec.EncodeSynthesis(direct, results)
	if err != nil {
		t.Fatal(err)
	}
	// The status embed is re-indented JSON; the /result endpoint serves
	// the codec's exact bytes.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if raw := readAll(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal([]byte(raw), want) {
		t.Fatalf("served synthesis document differs from direct pipeline run (status %d)", resp.StatusCode)
	}
	var embedded, direct2 codec.SynthesisDoc
	if err := json.Unmarshal(st.Result, &embedded); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(want, &direct2); err != nil {
		t.Fatal(err)
	}
	if len(embedded.Controllers) != len(direct2.Controllers) {
		t.Fatal("embedded result controller count differs")
	}
	for i := range embedded.Controllers {
		if embedded.Controllers[i].Netlist != direct2.Controllers[i].Netlist {
			t.Fatalf("netlist for %s differs between embedded and direct", embedded.Controllers[i].FU)
		}
	}

	// Liveness and metrics endpoints.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `asyncsynth_counter_total{name="service/jobs_completed"} 1`) {
		t.Fatalf("metrics: %d %q", resp.StatusCode, body)
	}

	// Unknown job and malformed submissions.
	resp, err = http.Get(srv.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit: %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/jobs?level=bogus", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad level: %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/jobs?mode=bogus", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "unknown mode") {
		t.Fatalf("bad mode: %d %q", resp.StatusCode, body)
	}
}

func TestHTTPBackpressureAndCancel(t *testing.T) {
	min := &gateMin{gate: make(chan struct{})}
	m := New(Config{Concurrency: 1, QueueDepth: 1, Minimizer: min})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	doc, err := codec.EncodeGraph(diffeq.Build(diffeq.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	post := func() (*http.Response, JobStatus) {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		return resp, st
	}
	_, first := post()
	running, err := m.Get(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	post() // fills the queue
	resp, _ := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: %d, want 429", resp.StatusCode)
	}

	// DELETE the running job; it must reach cancelled.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+first.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	decodeBody(t, resp, http.StatusOK, &st)
	waitState(t, running, StateCancelled)
	close(min.gate)
}

func decodeBody(t *testing.T, resp *http.Response, wantStatus int, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, wantStatus, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
