package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/examples"
	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
)

// Submitting ADL text with Content-Type: text/x-adl compiles the source
// on the server and synthesizes the same document as the JSON path — and
// as a direct pipeline run on the registry's EWF graph.
func TestHTTPSubmitADLText(t *testing.T) {
	m := New(Config{Concurrency: 2})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	src, err := examples.ADL.ReadFile("ewf.adl")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "text/x-adl", bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	decodeBody(t, resp, http.StatusAccepted, &st)

	deadline := time.Now().Add(30 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) || st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job stuck in %s (error %q)", st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, http.StatusOK, &st)
	}

	ewf, ok := bench.Lookup("ewf")
	if !ok {
		t.Fatal("ewf not registered")
	}
	direct, err := core.Run(ewf.Build(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := direct.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	want, err := codec.EncodeSynthesis(direct, results)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if raw := readAll(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal([]byte(raw), want) {
		t.Fatalf("ADL-submitted synthesis document differs from direct pipeline run (status %d)", resp.StatusCode)
	}
}

func TestHTTPSubmitContentTypeNegotiation(t *testing.T) {
	m := New(Config{Concurrency: 1})
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	adl := "design d\nunits A, B\nconst one = 1\ninit x = 2, i = 0, run = 1\n" +
		"loop A run {\nop B: x = x + one\nop A: i = i + one\nop A: run = i < one\n}\n"

	// text/plain (with parameters) also reaches the frontend.
	resp, err := http.Post(srv.URL+"/v1/jobs", "text/plain; charset=utf-8", strings.NewReader(adl))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	decodeBody(t, resp, http.StatusAccepted, &st)

	// ADL diagnostics surface in the 400 body with their stable code.
	resp, err = http.Post(srv.URL+"/v1/jobs", "text/x-adl", strings.NewReader("units A\n"))
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "ADL004") {
		t.Fatalf("bad ADL submit: %d %q", resp.StatusCode, body)
	}

	// JSON pasted under an ADL Content-Type is an ADL diagnostic, not a
	// codec one — negotiation is explicit, never guessed.
	resp, err = http.Post(srv.URL+"/v1/jobs", "text/x-adl", strings.NewReader(`{"version":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "ADL") {
		t.Fatalf("JSON-as-ADL submit: %d %q", resp.StatusCode, body)
	}

	// Unsupported media types are rejected outright.
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/xml", strings.NewReader(adl))
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "unsupported Content-Type") {
		t.Fatalf("xml submit: %d %q", resp.StatusCode, body)
	}
}
