// Package service turns the synthesis pipeline into a long-running job
// server: a bounded admission queue in front of a fixed pool of job
// runners, each executing the full flow (core.RunCtx followed by
// gate-level SynthesizeLogicCtx) under a per-job context. A job's Mode
// selects what runs: ModeSynth (default) is the fixed pipeline at the
// requested optimization level; ModeSearch runs the cost-directed
// rewrite search (internal/search) and returns the winning plan's
// synthesis document.
//
// # Job lifecycle
//
// A job moves through a small state machine:
//
//	queued ──► running ──► done
//	   │           │   └──► failed
//	   └───────────┴──────► cancelled
//
// Submit admits a job into the queue or rejects it immediately with
// ErrQueueFull — admission is the only place backpressure is applied, so
// a full server answers in microseconds instead of accumulating work.
// Cancel on a queued job marks it cancelled before it ever runs; on a
// running job it cancels the job's context, which the pipeline observes
// at stage boundaries, between encoding-ladder rungs and inside the
// covering branch-and-bound, releasing the job's pool workers within a
// poll interval. Cancelling a terminal job is a no-op.
//
// # Shared resources
//
// All jobs share one process-wide minimizer cache (Config.Minimizer,
// usually a memo.Cache) and divide one parallelism budget
// (Config.Parallelism) evenly across the Config.Concurrency runners, so
// a saturated server never oversubscribes the host. The memo layer
// guarantees a cancelled job never leaves a partial result behind for a
// neighbour to hit.
//
// # Observability
//
// The manager maintains gauges service/jobs_queued and
// service/jobs_running and counters service/jobs_{submitted,rejected,
// completed,failed,cancelled} on the global obs registry; together with
// the worker pool's par/inflight gauge they make the drain and
// cancellation behaviour externally assertable (see GET /metrics).
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/stage"
	"repro/internal/synth"
	"repro/internal/timing"
	"repro/internal/transform"
)

// Mode selects what a job computes.
type Mode string

// Job modes.
const (
	// ModeSynth runs the fixed pipeline at the job's optimization level and
	// returns its synthesis document — the default.
	ModeSynth Mode = "synth"
	// ModeSearch runs the cost-directed rewrite search over the transform
	// space and returns the synthesis document of the winning plan. The
	// job's optimization level is ignored: the search decides per decision
	// which transforms run.
	ModeSearch Mode = "search"
)

// ParseMode maps a wire-format mode string to a Mode; the empty string
// selects the default ModeSynth.
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "":
		return ModeSynth, true
	case string(ModeSynth):
		return ModeSynth, true
	case string(ModeSearch):
		return ModeSearch, true
	default:
		return "", false
	}
}

// State is a job's position in the lifecycle state machine.
type State int

// Job lifecycle states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors returned by Submit, Get and Cancel.
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity; the HTTP layer maps it to 429 Too Many Requests.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining rejects submissions after Drain has begun.
	ErrDraining = errors.New("service: server is draining")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
)

// Config sizes a Manager. The zero value selects the documented defaults.
type Config struct {
	// QueueDepth bounds how many admitted jobs may wait for a runner;
	// submissions beyond it fail fast with ErrQueueFull. Default 16.
	QueueDepth int
	// Concurrency is how many jobs run simultaneously. Default 2.
	Concurrency int
	// Parallelism is the total pipeline worker budget, divided evenly
	// across the concurrent runners (at least 1 each). Default GOMAXPROCS.
	Parallelism int
	// JobTimeout, when positive, is the per-job deadline; a job exceeding
	// it fails with context.DeadlineExceeded.
	JobTimeout time.Duration
	// Minimizer, when non-nil, is the shared hazard-free minimization
	// cache every job routes through (typically a memo.Cache).
	Minimizer synth.Minimizer
	// Engine, when non-nil, routes ModeSynth pipelines (and the final
	// realization of ModeSearch winners) through the incremental stage
	// engine: unchanged stages replay from its store instead of
	// recomputing, which is what makes PATCH /v1/jobs/{id} re-runs cheap.
	// Results are bit-identical to the direct core path either way.
	Engine *stage.Engine
	// Solver selects the covering backend for exact minimizations when no
	// Minimizer is configured (a memo cache fixes its backend at
	// construction; see memo.NewSolver). Zero value is the
	// branch-and-bound reference.
	Solver logic.Solver
	// SearchWaves, SearchBeam and SearchBudget size the rewrite search
	// behind ModeSearch jobs. Zero values select a bounded service profile
	// (1 wave, beam 2, 16 evaluations) — deliberately tighter than the CLI
	// defaults, because every evaluation is a full synthesis run and job
	// latency should stay in interactive range. SearchWaves < 0 scores the
	// ablation seeds only (a served exploration sweep).
	SearchWaves, SearchBeam, SearchBudget int
	// Dedup enables request-level deduplication: a submission whose
	// content key (see ContentKey) matches a queued or running job joins
	// that job instead of admitting a new one, counted by
	// service/dedup_hits. The codec's deterministic encoding makes the
	// key canonical, so two users posting the same CDFG share one
	// pipeline run. Terminal jobs never match — resubmitting a finished
	// document is a fresh (memo-cache-warm) job.
	Dedup bool
	// NodeID, when non-empty, suffixes every job ID with "@<NodeID>" so a
	// fleet peer receiving a poll for a foreign job can route it to the
	// owning node (see FleetHandler). Single-node deployments leave it
	// empty and IDs keep their bare "job-000001" form.
	NodeID string
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.SearchWaves == 0 {
		c.SearchWaves = 1
	}
	if c.SearchBeam <= 0 {
		c.SearchBeam = 2
	}
	if c.SearchBudget <= 0 {
		c.SearchBudget = 16
	}
	return c
}

// Job is one synthesis request moving through the lifecycle. All methods
// are safe for concurrent use.
type Job struct {
	id     string
	graph  *cdfg.Graph
	level  core.Level
	mode   Mode
	key    string // content key; set when the manager dedups
	events *eventLog

	mu     sync.Mutex
	state  State
	stage  string // most recently completed pipeline stage (obs span)
	err    error
	result []byte
	cancel context.CancelFunc
	done   chan struct{}

	submitted time.Time
	finished  time.Time
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Mode returns what the job computes (ModeSynth or ModeSearch).
func (j *Job) Mode() Mode { return j.mode }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the terminal error for failed and cancelled jobs.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the encoded synthesis document of a done job (nil
// otherwise).
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Stage returns the name of the most recently completed pipeline stage
// while the job runs (fed from obs spans; empty when no global tracer is
// enabled or the job has not started).
func (j *Job) Stage() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stage
}

// setStage records the latest completed pipeline stage name.
func (j *Job) setStage(s string) {
	if s == "" {
		return
	}
	j.mu.Lock()
	j.stage = s
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, result []byte, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = result
	j.err = err
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	j.pushState(state, err)
}

// Manager owns the admission queue, the runner pool and the job index.
type Manager struct {
	cfg  Config
	base context.Context
	stop context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	byKey    map[string]*Job // content key -> non-terminal job (Dedup only)
	queue    chan *Job
	draining bool
	nextID   uint64

	wg      sync.WaitGroup
	running int64
}

// New starts a manager with cfg's queue depth and runner pool.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	base, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:   cfg,
		base:  base,
		stop:  stop,
		jobs:  map[string]*Job{},
		byKey: map[string]*Job{},
		queue: make(chan *Job, cfg.QueueDepth),
	}
	m.wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		go m.runner()
	}
	return m
}

// Submit admits a synthesis job for graph at the given optimization
// level, or rejects it with ErrQueueFull / ErrDraining. The graph must
// already be validated (the codec's DecodeGraph guarantees this).
func (m *Manager) Submit(graph *cdfg.Graph, level core.Level) (*Job, error) {
	return m.SubmitMode(graph, level, ModeSynth)
}

// SubmitMode is Submit with an explicit job mode. An unknown mode is a
// caller bug (the HTTP layer validates with ParseMode first) and is
// rejected before the job is admitted. With Config.Dedup, the graph's
// content key is computed here; callers that already hold it (the fleet
// handler hashes for ring routing) use SubmitKeyed instead.
func (m *Manager) SubmitMode(graph *cdfg.Graph, level core.Level, mode Mode) (*Job, error) {
	return m.SubmitKeyed(graph, level, mode, "")
}

// ContentKey returns the canonical content address of a submission: the
// SHA-256 (hex) of the codec's deterministic byte-identical encoding of
// graph together with the optimization level and job mode. Logically
// identical submissions collide regardless of how the document was
// produced, which makes the key safe for request-level dedup and for
// consistent-hash routing across a fleet. The canonical encoding is
// returned too, so forwarding nodes relay exactly the bytes they hashed.
func ContentKey(graph *cdfg.Graph, level core.Level, mode Mode) (key string, canonical []byte, err error) {
	canonical, err = codec.EncodeGraph(graph)
	if err != nil {
		return "", nil, fmt.Errorf("service: content key: %w", err)
	}
	h := sha256.New()
	h.Write(canonical)
	h.Write([]byte{0})
	h.Write([]byte(level.String()))
	h.Write([]byte{0})
	h.Write([]byte(mode))
	return hex.EncodeToString(h.Sum(nil)), canonical, nil
}

// SubmitKeyed is SubmitMode with a precomputed content key (as returned
// by ContentKey; the empty string computes it when Config.Dedup is on).
// When dedup finds a queued or running job under the same key, that job
// is returned instead of admitting a new one.
func (m *Manager) SubmitKeyed(graph *cdfg.Graph, level core.Level, mode Mode, key string) (*Job, error) {
	if mode != ModeSynth && mode != ModeSearch {
		return nil, fmt.Errorf("service: unknown job mode %q", mode)
	}
	if m.cfg.Dedup && key == "" {
		var err error
		if key, _, err = ContentKey(graph, level, mode); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if m.cfg.Dedup {
		if prior, ok := m.byKey[key]; ok {
			if !prior.State().Terminal() {
				obs.Add("service/dedup_hits", 1)
				return prior, nil
			}
			delete(m.byKey, key) // stale: raced with completion
		}
	}
	m.nextID++
	id := fmt.Sprintf("job-%06d", m.nextID)
	if m.cfg.NodeID != "" {
		id += "@" + m.cfg.NodeID
	}
	job := &Job{
		id:        id,
		graph:     graph,
		level:     level,
		mode:      mode,
		events:    newEventLog(),
		state:     StateQueued,
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	select {
	case m.queue <- job:
	default:
		m.nextID-- // ID was never issued
		obs.Add("service/jobs_rejected", 1)
		return nil, ErrQueueFull
	}
	m.jobs[job.id] = job
	if m.cfg.Dedup {
		job.key = key
		m.byKey[key] = job
	}
	obs.Add("service/jobs_submitted", 1)
	obs.Set("service/jobs_queued", int64(len(m.queue)))
	job.pushState(StateQueued, nil)
	return job, nil
}

// dropKey retires job's dedup entry once it is terminal, so later
// submissions of the same document start fresh runs.
func (m *Manager) dropKey(job *Job) {
	if job.key == "" {
		return
	}
	m.mu.Lock()
	if m.byKey[job.key] == job {
		delete(m.byKey, job.key)
	}
	m.mu.Unlock()
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

// Cancel requests cancellation of a job. A queued job becomes cancelled
// immediately; a running job has its context cancelled and reaches the
// cancelled state once the pipeline observes it. Cancelling a terminal
// job is a no-op. The updated job is returned either way.
func (m *Manager) Cancel(id string) (*Job, error) {
	job, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	switch {
	case job.state == StateQueued:
		// The job stays in the channel; the runner skips terminal jobs.
		job.state = StateCancelled
		job.err = context.Canceled
		job.finished = time.Now()
		close(job.done)
		job.mu.Unlock()
		job.pushState(StateCancelled, context.Canceled)
		m.dropKey(job)
		obs.Add("service/jobs_cancelled", 1)
	case job.state == StateRunning && job.cancel != nil:
		cancel := job.cancel
		job.mu.Unlock()
		cancel()
	default:
		job.mu.Unlock()
	}
	return job, nil
}

// Drain stops admission, lets queued and running jobs finish, and waits
// for the runner pool to exit. If ctx expires first the remaining jobs
// are force-cancelled and Drain waits for the (prompt, cooperative)
// teardown before returning ctx's error.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.stop() // force-cancel every running job
		<-done
		return ctx.Err()
	}
}

// Close force-cancels all work and waits for the pool to exit; for tests
// and abnormal shutdown. Graceful shutdown is Drain.
func (m *Manager) Close() {
	m.stop()
	m.Drain(context.Background())
}

// Queued returns the current admission-queue length.
func (m *Manager) Queued() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// runner is one pool slot: it pulls admitted jobs until Drain closes the
// queue.
func (m *Manager) runner() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// runJob executes one job under its per-job context.
func (m *Manager) runJob(job *Job) {
	defer m.dropKey(job)
	job.mu.Lock()
	if job.state.Terminal() { // cancelled while queued
		job.mu.Unlock()
		return
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(m.base, m.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(m.base)
	}
	defer cancel()
	job.state = StateRunning
	job.cancel = cancel
	job.mu.Unlock()
	job.pushState(StateRunning, nil)

	// While the job runs, completed pipeline spans stream into its event
	// log (see events.go for the attribution caveat under concurrency)
	// and the latest stage name lands on the job for GET /v1/jobs/{id}.
	if tr := obs.GlobalTracer(); tr.Enabled() {
		stopWatch := tr.Watch(func(ev obs.SpanEvent) {
			job.setStage(ev.Stage)
			job.events.append(Event{Type: "span", Span: &ev})
		})
		defer stopWatch()
	}

	m.mu.Lock()
	m.running++
	obs.Set("service/jobs_running", m.running)
	obs.Set("service/jobs_queued", int64(len(m.queue)))
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.running--
		obs.Set("service/jobs_running", m.running)
		m.mu.Unlock()
	}()

	var enc []byte
	var err error
	if job.mode == ModeSearch {
		enc, err = m.searchJob(ctx, job)
	} else {
		enc, err = m.synthesize(ctx, job)
	}
	switch {
	case err == nil:
		job.finish(StateDone, enc, nil)
		obs.Add("service/jobs_completed", 1)
	case errors.Is(err, context.Canceled):
		job.finish(StateCancelled, nil, err)
		obs.Add("service/jobs_cancelled", 1)
	default:
		job.finish(StateFailed, nil, err)
		obs.Add("service/jobs_failed", 1)
	}
}

// perJobWorkers divides the process-wide parallelism budget evenly across
// the concurrent runners.
func (m *Manager) perJobWorkers() int {
	perJob := m.cfg.Parallelism / m.cfg.Concurrency
	if perJob < 1 {
		perJob = 1
	}
	return perJob
}

// synthesize runs the full pipeline for one job and encodes the result.
func (m *Manager) synthesize(ctx context.Context, job *Job) ([]byte, error) {
	opts := core.Options{
		Level:       job.level,
		Timing:      timing.DefaultModel(),
		Transform:   transform.DefaultOptions(),
		Parallelism: m.perJobWorkers(),
		Minimizer:   m.cfg.Minimizer,
		Solver:      m.cfg.Solver,
	}
	return m.realize(ctx, job.graph, opts)
}

// realize executes one pipeline configuration and encodes the synthesis
// document. With Config.Engine it runs through the incremental stage
// cache; otherwise it runs the direct core path on a clone (core.RunCtx
// transforms its input in place, and the job's graph must stay pristine —
// it is the base PATCH /v1/jobs/{id} applies deltas to). Both paths
// produce byte-identical documents.
func (m *Manager) realize(ctx context.Context, g *cdfg.Graph, opts core.Options) ([]byte, error) {
	if m.cfg.Engine != nil {
		s, results, err := m.cfg.Engine.Run(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		return codec.EncodeSynthesis(s, results)
	}
	s, err := core.RunCtx(ctx, g.Clone(), opts)
	if err != nil {
		return nil, err
	}
	results, err := s.SynthesizeLogicCtx(ctx)
	if err != nil {
		return nil, err
	}
	return codec.EncodeSynthesis(s, results)
}

// searchJob runs the cost-directed rewrite search for one job and encodes
// the synthesis document of the winning plan. The search scores candidates
// on clones of the job's graph with gate-level synthesis on (the shared
// minimizer cache absorbs the repeat minimizations); the winner is then
// realized once more through the standard pipeline so the result document
// is exactly what a ModeSynth job with that plan's options would return.
func (m *Manager) searchJob(ctx context.Context, job *Job) ([]byte, error) {
	perJob := m.perJobWorkers()
	res, err := search.RunCtx(ctx, job.graph, search.Options{
		Workers:    perJob,
		Waves:      m.cfg.SearchWaves,
		Beam:       m.cfg.SearchBeam,
		Budget:     m.cfg.SearchBudget,
		Synthesize: true,
		Minimizer:  m.cfg.Minimizer,
		Solver:     m.cfg.Solver,
	})
	if err != nil {
		return nil, err
	}
	copt := res.Best.Plan.CoreOptions(perJob, m.cfg.Minimizer, m.cfg.Solver)
	return m.realize(ctx, job.graph, copt)
}
