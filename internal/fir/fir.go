// Package fir defines a third scheduled benchmark: a 3-tap FIR filter over
// a ramp input, with an accumulated output. It is larger than DIFFEQ per
// iteration (three multiplications, three additions, two shift moves, a
// counter and a comparison over four functional units) and is heavy on
// assignment nodes, stressing GT4 merging and the GT5 channel search.
//
//	while (run) {
//	    p0 = c0*x0 ; p1 = c1*x1 ; p2 = c2*x2     (MUL1, MUL2, MUL1)
//	    y  = p0+p1 ; y = y+p2                     (ALU1)
//	    s  = s + y                                (ALU2)
//	    x2 = x1 ; x1 = x0                         (shift, assignments)
//	    x0 = x0 + dx                              (ramp input)
//	    i = i+1 ; run = i<n                       (ALU2, loop control)
//	}
package fir

import "repro/internal/cdfg"

// Functional units.
const (
	ALU1 = "ALU1"
	ALU2 = "ALU2"
	MUL1 = "MUL1"
	MUL2 = "MUL2"
)

// FUs lists the benchmark's functional units.
var FUs = []string{ALU1, ALU2, MUL1, MUL2}

// Params configure the filter run.
type Params struct {
	C0, C1, C2 float64 // taps
	DX         float64 // input ramp step
	N          int     // samples
}

// DefaultParams returns a short run with exact float arithmetic.
func DefaultParams() Params {
	return Params{C0: 2, C1: -1, C2: 0.5, DX: 0.25, N: 6}
}

// Program builds the scheduled FIR program.
func Program(p Params) *cdfg.Program {
	pr := cdfg.NewProgram("fir", FUs...)
	pr.Const("c0", "c1", "c2", "dx", "n", "one")
	pr.InitAll(map[string]float64{
		"c0": p.C0, "c1": p.C1, "c2": p.C2, "dx": p.DX,
		"n": float64(p.N), "one": 1,
		"x0": 0, "x1": 0, "x2": 0, "s": 0, "i": 0,
		"run": b2f(p.N > 0),
	})
	pr.Loop(ALU2, "run")
	pr.Op(MUL1, "p0", cdfg.OpMul, "c0", "x0")
	pr.Op(MUL2, "p1", cdfg.OpMul, "c1", "x1")
	pr.Op(MUL1, "p2", cdfg.OpMul, "c2", "x2")
	pr.Op(ALU1, "y", cdfg.OpAdd, "p0", "p1")
	pr.Op(ALU1, "y", cdfg.OpAdd, "y", "p2")
	pr.Op(ALU2, "s", cdfg.OpAdd, "s", "y")
	pr.Assign(ALU2, "x2", "x1")
	pr.Assign(ALU2, "x1", "x0")
	pr.Op(ALU1, "x0", cdfg.OpAdd, "x0", "dx")
	pr.Op(ALU2, "i", cdfg.OpAdd, "i", "one")
	pr.Op(ALU2, "run", cdfg.OpLT, "i", "n")
	pr.EndLoop()
	return pr
}

// Build constructs the CDFG, panicking on builder errors.
func Build(p Params) *cdfg.Graph {
	g, err := Program(p).Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Reference executes the schedule sequentially.
func Reference(p Params) map[string]float64 {
	m := map[string]float64{
		"c0": p.C0, "c1": p.C1, "c2": p.C2, "dx": p.DX,
		"n": float64(p.N), "one": 1,
		"x0": 0, "x1": 0, "x2": 0, "s": 0, "i": 0,
		"run": b2f(p.N > 0),
	}
	for m["run"] != 0 {
		m["p0"] = m["c0"] * m["x0"]
		m["p1"] = m["c1"] * m["x1"]
		m["p2"] = m["c2"] * m["x2"]
		m["y"] = m["p0"] + m["p1"]
		m["y"] = m["y"] + m["p2"]
		m["s"] = m["s"] + m["y"]
		m["x2"] = m["x1"]
		m["x1"] = m["x0"]
		m["x0"] = m["x0"] + m["dx"]
		m["i"] = m["i"] + 1
		m["run"] = b2f(m["i"] < m["n"])
	}
	return m
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
