package fir

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/transform"
)

func TestReference(t *testing.T) {
	p := DefaultParams()
	r := Reference(p)
	// Hand-computed: ramp input x0 = 0, .25, .5, ... shifted through taps.
	// The loop runs N times; cross-check the accumulated output against a
	// direct convolution.
	x := make([]float64, p.N+2)
	for i := range x {
		x[i] = float64(i) * p.DX
	}
	s := 0.0
	hist := []float64{0, 0, 0} // x0, x1, x2 at iteration start
	cur := 0.0
	for i := 0; i < p.N; i++ {
		hist[0] = cur
		y := p.C0*hist[0] + p.C1*hist[1] + p.C2*hist[2]
		s += y
		hist[2], hist[1] = hist[1], hist[0]
		cur += p.DX
	}
	if math.Abs(r["s"]-s) > 1e-12 {
		t.Errorf("s = %v, want %v", r["s"], s)
	}
	if r["i"] != float64(p.N) {
		t.Errorf("i = %v, want %v", r["i"], p.N)
	}
}

func TestTokenSimAllSeeds(t *testing.T) {
	p := DefaultParams()
	ref := Reference(p)
	for seed := int64(0); seed < 8; seed++ {
		g := Build(p)
		res, err := sim.NewTokenSim(g, sim.RandomDelays(seed, 1, 25, 0.1, 2)).Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, reg := range []string{"s", "x0", "x1", "x2", "i"} {
			if math.Abs(res.Regs[reg]-ref[reg]) > 1e-9 {
				t.Fatalf("seed %d: %s = %v, want %v", seed, reg, res.Regs[reg], ref[reg])
			}
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
	}
}

func TestGT4MergesShifts(t *testing.T) {
	g := Build(DefaultParams())
	before := len(g.Nodes())
	if _, err := transform.LoopParallelism(g); err != nil {
		t.Fatal(err)
	}
	if _, err := transform.RemoveDominated(g); err != nil {
		t.Fatal(err)
	}
	rep, err := transform.MergeAssignments(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) >= before {
		t.Errorf("GT4 merged nothing: %d nodes\n%s", len(g.Nodes()), rep)
	}
	t.Logf("GT4: %d → %d nodes (%d merges)", before, len(g.Nodes()), before-len(g.Nodes()))
}

func TestFullFlowAllLevels(t *testing.T) {
	p := DefaultParams()
	ref := Reference(p)
	want := map[string]float64{"s": ref["s"], "i": ref["i"], "x0": ref["x0"]}
	for _, level := range []core.Level{core.Unoptimized, core.OptimizedGT, core.OptimizedGTLT} {
		opt := core.DefaultOptions()
		opt.Level = level
		s, err := core.Run(Build(p), opt)
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		if err := s.Verify(want, 5); err != nil {
			t.Errorf("%s: %v", level, err)
		}
		t.Logf("%s: %d channels (%d multi-way)", level, s.Channels(), s.MultiwayChannels())
	}
}

func TestChannelReduction(t *testing.T) {
	unopt, err := core.Run(Build(DefaultParams()), core.Options{Level: core.Unoptimized})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.Run(Build(DefaultParams()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FIR channels: %d → %d (%d multi-way)", unopt.Channels(), opt.Channels(), opt.MultiwayChannels())
	if opt.Channels()*2 > unopt.Channels() {
		t.Errorf("GT5 reduction below 2x: %d → %d", unopt.Channels(), opt.Channels())
	}
}

func TestSynthesizesToLogic(t *testing.T) {
	s, err := core.Run(Build(DefaultParams()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	for fu, r := range results {
		if r.Products == 0 {
			t.Errorf("%s: empty implementation", fu)
		}
		t.Logf("%s", r.Summary())
	}
}

// Gate-level closure: FIR overlaps iterations tightly enough that ready
// events arrive while a receiving controller sits in a terminal resting
// state — historically an unspecified window that let the minimized
// logic mis-sequence (a documented limitation). Terminal-state hold
// faces in the synthesis specs closed it (see internal/synth), so the
// gate-level result now matches the reference exactly; this test pins
// that, and internal/bench.TestGateClosureRegistry pins it for every
// registry benchmark.
func TestGateLevelFIR(t *testing.T) {
	p := DefaultParams()
	s, err := core.Run(Build(p), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	for fu, r := range results {
		if r.NonHazardFree > 0 {
			t.Errorf("%s: %d functions lost hazard-freedom", fu, r.NonHazardFree)
		}
	}
	res, err := s.GateSimulate(results, 0)
	if err != nil {
		t.Fatalf("gate-level system did not reach quiescence: %v", err)
	}
	ref := Reference(p)
	if math.Abs(res.Regs["s"]-ref["s"]) > 1e-9 {
		t.Errorf("gate-level s = %v vs reference %v", res.Regs["s"], ref["s"])
	}
}
