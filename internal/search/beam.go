package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cdfg"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/synth"
)

// Result is the outcome of a search run.
type Result struct {
	// Best is the lowest-cost state seen anywhere in the run.
	Best State
	// Frontier is the final beam, best first.
	Frontier []State
	// Seeds holds the scored seed states in input order, so a caller can
	// compare the search outcome against each fixed starting point (the
	// exploration sweep reads its table straight out of this).
	Seeds []State
	// Counters: plans evaluated, states discarded (beam truncation, branch
	// caps, budget cuts, failed plans), duplicate states skipped via the
	// visited set, and expansion waves completed.
	Expanded, Pruned, CacheHits, Waves int
}

// Run searches the transform space of g. The graph is never mutated: every
// evaluation clones it. Seed plans are scored first (wave 0), then up to
// Waves expansion waves each enumerate the beam's single-decision moves,
// deduplicate against every state visited so far, and score the survivors
// in one deterministic parallel batch — results land in index-addressed
// slots and ties break on the canonical plan key, so the chosen plan is
// bit-identical at every Workers setting.
func Run(g *cdfg.Graph, opt Options) (*Result, error) {
	return RunCtx(context.Background(), g, opt)
}

// RunCtx is Run with cooperative cancellation: ctx is observed between
// evaluation batches and inside each evaluation's pipeline stages, so a
// cancelled search releases its pool workers within a poll interval (the
// job server's DELETE path relies on this).
func RunCtx(ctx context.Context, g *cdfg.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	sp := obs.Start("search", "")
	defer sp.End()
	r := &Result{}
	visited := map[string]bool{}
	seeds := opt.Seeds
	if seeds == nil {
		seeds = StandardPlans()
	}
	// Seeds are the caller's explicit request: duplicates are scored once
	// but reported per input slot, and the evaluation budget only bounds
	// the expansion waves on top of them.
	var batch []Plan
	for _, p := range seeds {
		if k := p.Key(); !visited[k] {
			visited[k] = true
			batch = append(batch, p)
		} else {
			r.CacheHits++
		}
	}
	evalBatch := func(plans []Plan) []State {
		states, _ := par.NamedMap("search", opt.Workers, plans, func(i int, p Plan) (State, error) {
			return evaluateOn(ctx, g.Clone(), p, opt), nil
		})
		return states
	}
	scored := evalBatch(batch)
	r.Expanded += len(batch)
	if err := ctx.Err(); err != nil {
		return r, err
	}
	byKey := make(map[string]State, len(scored))
	for _, st := range scored {
		byKey[st.Plan.Key()] = st
	}
	for _, p := range seeds {
		st := byKey[p.Key()]
		st.Plan.Tag = p.Tag
		r.Seeds = append(r.Seeds, st)
	}
	frontier := trim(append([]State(nil), scored...), opt.Beam, r)
	for wave := 1; wave <= opt.Waves && len(frontier) > 0 && r.Expanded < opt.Budget; wave++ {
		var children []Plan
		for _, st := range frontier {
			for _, c := range moves(st, opt, r) {
				if k := c.Key(); !visited[k] {
					visited[k] = true
					children = append(children, c)
				} else {
					r.CacheHits++
				}
			}
		}
		if len(children) == 0 {
			break
		}
		if left := opt.Budget - r.Expanded; len(children) > left {
			r.Pruned += len(children) - left
			children = children[:left]
		}
		scored := evalBatch(children)
		r.Expanded += len(children)
		if err := ctx.Err(); err != nil {
			return r, err
		}
		r.Waves = wave
		frontier = trim(append(frontier, scored...), opt.Beam, r)
	}
	if len(frontier) == 0 {
		obs.Add("search/expanded", int64(r.Expanded))
		return r, fmt.Errorf("search: every candidate plan failed (%d evaluated)", r.Expanded)
	}
	r.Frontier = frontier
	r.Best = frontier[0]
	obs.Add("search/expanded", int64(r.Expanded))
	obs.Add("search/pruned", int64(r.Pruned))
	obs.Add("search/cache-hit", int64(r.CacheHits))
	obs.Set("search/waves", int64(r.Waves))
	return r, nil
}

// trim sorts states by (cost, key), drops failed ones, and keeps the best
// beam states; everything discarded counts as pruned.
func trim(states []State, beam int, r *Result) []State {
	var ok []State
	for _, st := range states {
		if math.IsInf(st.Score.Cost, 1) {
			r.Pruned++
			continue
		}
		ok = append(ok, st)
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].Score.Cost != ok[j].Score.Cost {
			return ok[i].Score.Cost < ok[j].Score.Cost
		}
		return ok[i].Plan.Key() < ok[j].Plan.Key()
	})
	if len(ok) > beam {
		r.Pruned += len(ok) - beam
		ok = ok[:beam]
	}
	return ok
}

// moves enumerates the single-decision rewrites applicable to a state, in
// deterministic order: global-transform toggles, the GT5 trace decisions,
// per-controller local-transform toggles and reorders, and per-controller
// encoding rungs. Derived plans drop the parent's display tag — their name
// is their decision vector.
func moves(st State, opt Options, r *Result) []Plan {
	p := st.Plan
	p.Tag = ""
	var out []Plan
	add := func(q Plan) { out = append(out, q) }
	// Toggle each GT1–GT4 ablation. A changed upstream transform invalidates
	// a manual merge trace (the candidate enumeration shifts), so the trace
	// resets and the search re-grows it if worthwhile.
	for i, skip := range []*bool{&p.SkipGT1, &p.SkipGT2, &p.SkipGT3, &p.SkipGT4} {
		q := p.clone()
		for j, qs := range []*bool{&q.SkipGT1, &q.SkipGT2, &q.SkipGT3, &q.SkipGT4} {
			if i == j {
				*qs = !*skip
			}
		}
		q.Merges, q.MergesDone, q.Reduces = nil, false, 0
		add(q)
	}
	// Toggle GT5 wholesale; re-enabling starts from the automatic script.
	{
		q := p.clone()
		q.SkipGT5 = !p.SkipGT5
		q.GT5Auto = true
		q.Merges, q.MergesDone, q.Reduces = nil, false, 0
		add(q)
	}
	if !p.SkipGT5 && p.GT5Auto {
		// Leave the automatic script: an empty manual trace, grown merge by
		// merge in later waves.
		q := p.clone()
		q.GT5Auto = false
		q.Merges, q.MergesDone, q.Reduces = nil, false, 0
		add(q)
	}
	if !p.SkipGT5 && !p.GT5Auto && !p.MergesDone {
		n := st.mergeCands
		if n > opt.MaxBranch {
			r.Pruned += n - opt.MaxBranch
			n = opt.MaxBranch
		}
		for k := 0; k < n; k++ {
			q := p.clone()
			q.Merges = append(q.Merges, k)
			add(q)
		}
		q := p.clone()
		q.MergesDone = true
		add(q)
	}
	if !p.SkipGT5 && !p.GT5Auto && p.MergesDone && st.canReduce {
		q := p.clone()
		q.Reduces++
		add(q)
	}
	if !p.LT {
		q := p.clone()
		q.LT = true
		add(q)
	} else {
		for _, fu := range st.fus {
			base := p.ltConfig(fu)
			for bit := 0; bit < 5; bit++ {
				cfg := base
				switch bit {
				case 0:
					cfg.LT1 = !cfg.LT1
				case 1:
					cfg.LT3 = !cfg.LT3
				case 2:
					cfg.LT4 = !cfg.LT4
				case 3:
					cfg.LT5 = !cfg.LT5
				case 4:
					cfg.PreselectFirst = !cfg.PreselectFirst
				}
				add(p.withLT(fu, cfg))
			}
		}
	}
	if opt.Synthesize {
		for _, fu := range st.fus {
			cur := p.rung(fu)
			for rung := -1; rung < synth.NumRungs(); rung++ {
				if rung == cur {
					continue
				}
				add(p.withRung(fu, rung))
			}
		}
	}
	return out
}

// Format renders a search result as a report: the chosen plan, the final
// beam, and the run counters.
func Format(r *Result) string {
	var b strings.Builder
	sc := r.Best.Score
	fmt.Fprintf(&b, "best plan: %s\n", r.Best.Plan.Name())
	fmt.Fprintf(&b, "  cost %.1f  analyzed-makespan %.1f  token-makespan %.1f  channels %d  states %d\n",
		sc.Cost, sc.Analyzed, sc.Makespan, sc.Channels, sc.States)
	if sc.Synthesized {
		fmt.Fprintf(&b, "  products %d  literals %d\n", sc.Products, sc.Literals)
	}
	fmt.Fprintf(&b, "frontier:\n")
	for _, st := range r.Frontier {
		fmt.Fprintf(&b, "  %10.1f  %s\n", st.Score.Cost, st.Plan.Name())
	}
	fmt.Fprintf(&b, "expanded %d, pruned %d, cache hits %d, waves %d\n",
		r.Expanded, r.Pruned, r.CacheHits, r.Waves)
	return b.String()
}
