package search

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/local"
	"repro/internal/memo"
)

// TestSearchDeterminism checks the wave expansion's concurrency contract:
// the chosen plan and its cost are bit-identical at every worker count.
func TestSearchDeterminism(t *testing.T) {
	for _, name := range []string{"diffeq", "gcd", "ewf"} {
		b, ok := bench.Lookup(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		g := b.Build()
		opt := Options{Waves: 2, Beam: 3, Budget: 32}
		var keys []string
		var costs []float64
		for _, workers := range []int{1, 4} {
			opt.Workers = workers
			r, err := Run(g, opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			keys = append(keys, r.Best.Plan.Key())
			costs = append(costs, r.Best.Score.Cost)
		}
		if keys[0] != keys[1] {
			t.Errorf("%s: best plan differs across worker counts: %q vs %q", name, keys[0], keys[1])
		}
		if costs[0] != costs[1] {
			t.Errorf("%s: best cost differs across worker counts: %v vs %v", name, costs[0], costs[1])
		}
	}
}

// TestSearchSynthDeterminism repeats the contract with gate-level scoring
// on: per-run memo caches at different hit states must not change the
// chosen plan.
func TestSearchSynthDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis-backed search is slow")
	}
	b, _ := bench.Lookup("diffeq")
	g := b.Build()
	var keys []string
	var costs []float64
	for _, workers := range []int{1, 4} {
		min, err := memo.New("")
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(g, Options{Workers: workers, Waves: 1, Beam: 2, Budget: 16, Synthesize: true, Minimizer: min})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		keys = append(keys, r.Best.Plan.Key())
		costs = append(costs, r.Best.Score.Cost)
	}
	if keys[0] != keys[1] || costs[0] != costs[1] {
		t.Errorf("synth search differs across worker counts: %q/%v vs %q/%v", keys[0], costs[0], keys[1], costs[1])
	}
}

// TestSearchNeverWorseThanSeeds is the acceptance property: because the
// fixed ablation grid seeds the frontier, the search result can never
// score worse than the best exploration-sweep variant. Checked with full
// gate-level scoring on every registry benchmark.
func TestSearchNeverWorseThanSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis-backed search is slow")
	}
	min, err := memo.New("")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bench.All() {
		r, err := Run(b.Build(), Options{Waves: 1, Beam: 2, Budget: 16, Synthesize: true, Minimizer: min})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		seedBest := math.Inf(1)
		for _, st := range r.Seeds {
			if st.Score.Cost < seedBest {
				seedBest = st.Score.Cost
			}
		}
		if r.Best.Score.Cost > seedBest {
			t.Errorf("%s: search cost %v worse than best ablation %v", b.Name, r.Best.Score.Cost, seedBest)
		}
	}
}

// TestSearchGenCorpus runs the property over random designs: the search
// completes and never scores worse than its best seed. Seeds whose
// topology the extractor does not support are skipped, matching the
// repo's other fuzz harnesses.
func TestSearchGenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus search is slow")
	}
	used := 0
	for seed := int64(1); seed <= 40 && used < 8; seed++ {
		spec := gen.New(seed, gen.DefaultConfig())
		g, err := spec.Build()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		probe := EvaluateState(g, DefaultPlan(), Options{Workers: 1})
		if e := probe.Score.RunError; strings.Contains(e, "unsupported topology") || strings.Contains(e, "primer events") {
			continue
		}
		used++
		r, err := Run(g, Options{Waves: 2, Beam: 2, Budget: 24})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seedBest := math.Inf(1)
		for _, st := range r.Seeds {
			if st.Score.Cost < seedBest {
				seedBest = st.Score.Cost
			}
		}
		if r.Best.Score.Cost > seedBest {
			t.Errorf("seed %d: search cost %v worse than best seed %v", seed, r.Best.Score.Cost, seedBest)
		}
	}
}

// TestPlanKeyNormalization checks that default-valued per-controller
// entries never distinguish plans: the search's visited set must treat
// "full pipeline via explicit entry" and "full pipeline via missing entry"
// as one state.
func TestPlanKeyNormalization(t *testing.T) {
	p := DefaultPlan()
	q := p.withLT("FU1", local.FullConfig())
	if p.Key() != q.Key() {
		t.Errorf("explicit full LT config changed the key: %q vs %q", p.Key(), q.Key())
	}
	q = p.withRung("FU1", -1)
	if p.Key() != q.Key() {
		t.Errorf("auto rung entry changed the key: %q vs %q", p.Key(), q.Key())
	}
	q = p.withLT("FU1", local.Config{LT1: true})
	if p.Key() == q.Key() {
		t.Error("distinct LT configs share a key")
	}
	r := p.withRung("FU1", 2)
	if r.Key() == p.Key() || r.Key() == q.Key() {
		t.Error("pinned rung did not distinguish the key")
	}
	if p.Name() != "all-GT+LT" {
		t.Errorf("tag lost: %q", p.Name())
	}
	if q.Tag != "" && q.Key() == p.Key() {
		t.Error("derived plan must differ or drop tag")
	}
}
