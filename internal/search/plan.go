// Package search implements a cost-directed rewrite search over the
// paper's transform space. Where the exploration sweep scores a fixed
// ablation grid (skip GT1 … skip GT5, with or without local transforms),
// the search treats every rewrite as an individual move — apply or skip
// one GT5.1 channel merge, take one GT5.2 re-route step, toggle or
// reorder each local transform per controller, pin one encoding-ladder
// rung — and expands a beam of candidate plans in deterministic parallel
// waves, scoring each by a weighted combination of analyzed makespan and
// the Figure 13 literal count.
package search

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/local"
)

// Plan is one point of the search space: a complete decision vector that
// the evaluator replays onto a fresh clone of the input graph. Plans are
// value types; the mutating with* constructors copy shared state first.
type Plan struct {
	// Global-transform ablation toggles (GT1–GT5).
	SkipGT1, SkipGT2, SkipGT3, SkipGT4, SkipGT5 bool
	// GT5Auto runs the built-in budgeted merge search (transform.Eliminate)
	// for channel elimination. When false, the Merges/MergesDone/Reduces
	// trace below is replayed one decision at a time instead.
	GT5Auto bool
	// Merges indexes transform.CandidateMerges at each replay step.
	Merges []int
	// MergesDone closes the merge trace; only then do GT5.2 steps apply.
	MergesDone bool
	// Reduces is the number of single GT5.2 re-route steps to take.
	Reduces int
	// LT enables the local-transform stage.
	LT bool
	// LTConfigs selects per-controller local-transform subsets (missing
	// entry = the full LT1–LT5 pipeline).
	LTConfigs map[string]local.Config
	// Rungs pins a per-controller encoding-ladder rung (missing = auto).
	Rungs map[string]int
	// Tag is a display name for reports and traces. It is not part of the
	// canonical key: two plans differing only by tag are the same state.
	Tag string
}

// DefaultPlan is the paper's full script: every global transform, the
// built-in GT5 elimination, and the full local pipeline per controller.
func DefaultPlan() Plan {
	return Plan{GT5Auto: true, LT: true, Tag: "all-GT+LT"}
}

// StandardPlans mirrors the standard exploration script (the 8-variant
// ablation grid) as search seed states, so the search starts from — and
// can therefore never score worse than — the best fixed ablation.
func StandardPlans() []Plan {
	return []Plan{
		{Tag: "baseline", SkipGT1: true, SkipGT2: true, SkipGT3: true, SkipGT4: true, SkipGT5: true},
		{Tag: "no-GT1", SkipGT1: true, GT5Auto: true},
		{Tag: "no-GT2", SkipGT2: true, GT5Auto: true},
		{Tag: "no-GT3", SkipGT3: true, GT5Auto: true},
		{Tag: "no-GT4", SkipGT4: true, GT5Auto: true},
		{Tag: "no-GT5", SkipGT5: true},
		{Tag: "all-GT", GT5Auto: true},
		DefaultPlan(),
	}
}

// clone deep-copies the plan's shared state so a derived move never
// aliases its parent.
func (p Plan) clone() Plan {
	q := p
	q.Merges = append([]int(nil), p.Merges...)
	if p.LTConfigs != nil {
		q.LTConfigs = make(map[string]local.Config, len(p.LTConfigs))
		for k, v := range p.LTConfigs {
			q.LTConfigs[k] = v
		}
	}
	if p.Rungs != nil {
		q.Rungs = make(map[string]int, len(p.Rungs))
		for k, v := range p.Rungs {
			q.Rungs[k] = v
		}
	}
	return q
}

// withLT returns the plan with fu's local-transform config replaced.
// Entries equal to the full default are normalized away so semantically
// equal plans share one key.
func (p Plan) withLT(fu string, cfg local.Config) Plan {
	q := p.clone()
	if cfg == local.FullConfig() {
		delete(q.LTConfigs, fu)
		return q
	}
	if q.LTConfigs == nil {
		q.LTConfigs = map[string]local.Config{}
	}
	q.LTConfigs[fu] = cfg
	return q
}

// withRung returns the plan with fu's encoding rung pinned (negative
// restores the automatic ladder and is normalized away).
func (p Plan) withRung(fu string, rung int) Plan {
	q := p.clone()
	if rung < 0 {
		delete(q.Rungs, fu)
		return q
	}
	if q.Rungs == nil {
		q.Rungs = map[string]int{}
	}
	q.Rungs[fu] = rung
	return q
}

// ltConfig returns fu's effective local-transform config.
func (p Plan) ltConfig(fu string) local.Config {
	if cfg, ok := p.LTConfigs[fu]; ok {
		return cfg
	}
	return local.FullConfig()
}

// rung returns fu's effective encoding rung (-1 = automatic ladder).
func (p Plan) rung(fu string) int {
	if r, ok := p.Rungs[fu]; ok {
		return r
	}
	return -1
}

// Key is the canonical content string of the decision vector: equal keys
// mean equal states. It drives visited-state deduplication, deterministic
// tiebreaks and trace labels. Tag is display-only and excluded.
func (p Plan) Key() string {
	var b strings.Builder
	b.WriteString("gt")
	for _, skip := range []bool{p.SkipGT1, p.SkipGT2, p.SkipGT3, p.SkipGT4, p.SkipGT5} {
		if skip {
			b.WriteByte('0')
		} else {
			b.WriteByte('1')
		}
	}
	if !p.SkipGT5 {
		if p.GT5Auto {
			b.WriteString(";gt5=auto")
		} else {
			fmt.Fprintf(&b, ";gt5=m%v", p.Merges)
			if p.MergesDone {
				fmt.Fprintf(&b, ".r%d", p.Reduces)
			}
		}
	}
	if p.LT {
		b.WriteString(";lt")
		for _, fu := range sortedKeys(p.LTConfigs) {
			if cfg := p.LTConfigs[fu]; cfg != local.FullConfig() {
				fmt.Fprintf(&b, ",%s=%s", fu, cfg.Key())
			}
		}
	}
	for _, fu := range sortedKeys(p.Rungs) {
		if r := p.Rungs[fu]; r >= 0 {
			fmt.Fprintf(&b, ";enc,%s=%d", fu, r)
		}
	}
	return b.String()
}

// Name returns the display tag, falling back to the canonical key.
func (p Plan) Name() string {
	if p.Tag != "" {
		return p.Tag
	}
	return p.Key()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
