package search

import (
	"context"
	"math"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/timing"
	"repro/internal/transform"
)

// Weights combines the two cost axes: Time scales the analyzed makespan
// upper bound, Area scales the synthesized literal total (Figure 13).
type Weights struct {
	// Time weights the makespan axis of the cost function.
	Time float64
	// Area weights the literal-count axis of the cost function.
	Area float64
}

// Score is the evaluation of one plan.
type Score struct {
	// Channels is the communication-channel count after the transforms.
	Channels int
	// Multiway counts the multi-way (symmetrized) channels among them.
	Multiway int
	// States is the total controller state count across all AFSMs.
	States int
	// Trans is the total controller transition count.
	Trans int
	// Assumed counts the timing assumptions the local transforms took.
	Assumed int
	// Makespan is the token-simulation finish time under the model's mean
	// delays (the exploration sweep's historical metric); Analyzed is the
	// timing-analysis makespan upper bound that the cost function uses.
	Makespan float64
	// Analyzed is the interval timing-analysis makespan upper bound.
	Analyzed float64
	// Simulated reports whether the token simulation ran to completion.
	Simulated bool
	// Products is the gate-level product-term total, filled when the
	// search synthesizes.
	Products int
	// Literals is the gate-level literal total (Figure 13), filled when
	// the search synthesizes.
	Literals int
	// Synthesized reports whether gate-level synthesis ran and succeeded.
	Synthesized bool
	// RunError carries the pipeline error that failed the plan, if any.
	RunError string
	// SynthError carries the gate-level synthesis error, if any.
	SynthError string
	// Cost is the scalar objective; failed plans score +Inf so they sort
	// strictly after every scored plan and never survive into the beam.
	Cost float64
}

// Failed reports whether any pipeline stage errored for this plan.
func (s Score) Failed() bool { return s.RunError != "" || s.SynthError != "" }

// State is a search node: a plan, its score, and the expansion hints the
// evaluator gathered (how many merges are applicable at the trace end,
// whether another GT5.2 step applies, and the controller names).
type State struct {
	// Plan is the decision vector this state evaluated.
	Plan Plan
	// Score is the plan's evaluation.
	Score Score

	mergeCands int
	canReduce  bool
	fus        []string
}

// Options configures a search run.
type Options struct {
	// Workers bounds the worker pool for wave expansion and the flow's
	// internal fan-outs (0 = GOMAXPROCS, 1 = sequential). Results are
	// bit-identical at every setting.
	Workers int
	// Beam is the number of states kept per wave (default 3).
	Beam int
	// Waves is the number of expansion waves after scoring the seeds
	// (default 3).
	Waves int
	// Budget caps the total number of plan evaluations (default 64).
	Budget int
	// MaxBranch caps how many GT5.1 merge candidates extend a trace per
	// state (default 4); the rest are counted as pruned.
	MaxBranch int
	// Weights sets the cost function; the zero value selects {1, 1}.
	Weights Weights
	// Synthesize scores gate-level literals (on by default for Run; the
	// degenerate sweep leaves it to the caller). Without it the cost is
	// time-only.
	Synthesize bool
	// Minimizer is the shared hfmin memoization layer — one cache per
	// search, so sibling states that re-pose a controller's minimization
	// problems hit instead of re-solving.
	Minimizer synth.Minimizer
	// Solver is the covering backend when no Minimizer is supplied.
	Solver logic.Solver
	// Seeds overrides the initial frontier (default StandardPlans).
	Seeds []Plan
}

func (o Options) withDefaults() Options {
	if o.Beam <= 0 {
		o.Beam = 3
	}
	if o.Waves < 0 {
		o.Waves = 0
	} else if o.Waves == 0 {
		o.Waves = 3
	}
	if o.Budget <= 0 {
		o.Budget = 64
	}
	if o.MaxBranch <= 0 {
		o.MaxBranch = 4
	}
	if o.Weights.Time == 0 && o.Weights.Area == 0 {
		o.Weights = Weights{Time: 1, Area: 1}
	}
	return o
}

// CoreOptions maps the plan onto the pipeline configuration that realizes
// it: level, global-transform skips, the GT5 decision trace, per-controller
// local-transform subsets and encoding rungs. Callers that need the actual
// synthesis artifacts of a chosen plan (not just its score) run the flow
// themselves with these options.
func (p Plan) CoreOptions(workers int, min synth.Minimizer, solver logic.Solver) core.Options {
	copt := core.Options{
		Level:  core.OptimizedGT,
		Timing: timing.DefaultModel(),
		Transform: transform.Options{
			Timing:  timing.DefaultModel(),
			Unroll:  3,
			SkipGT1: p.SkipGT1, SkipGT2: p.SkipGT2, SkipGT3: p.SkipGT3,
			SkipGT4: p.SkipGT4, SkipGT5: p.SkipGT5,
		},
		Parallelism: workers,
		Minimizer:   min,
		Solver:      solver,
		LTConfigs:   p.LTConfigs,
		Encodings:   p.Rungs,
	}
	if !p.SkipGT5 && !p.GT5Auto {
		script := &transform.Script{Merges: p.Merges}
		if p.MergesDone {
			script.Reduces = p.Reduces
		}
		copt.Transform.GT5 = script
	}
	if p.LT {
		copt.Level = core.OptimizedGTLT
	}
	return copt
}

// EvaluateState scores one plan on a fresh clone of the graph. It is a
// zero-wave degenerate search: the exploration sweep is implemented as a
// batch of these.
func EvaluateState(g *cdfg.Graph, p Plan, opt Options) State {
	return evaluateOn(context.Background(), g.Clone(), p, opt)
}

// evaluateOn scores a plan on a private working graph (which it mutates).
// Each evaluation is one obs span (stage "search-eval", unit = plan name).
// A context cancellation surfaces as the plan's RunError/SynthError; RunCtx
// turns that into a run-level error rather than a failed state.
func evaluateOn(ctx context.Context, work *cdfg.Graph, p Plan, opt Options) State {
	sp := obs.Start("search-eval", p.Name())
	defer sp.End()
	st := State{Plan: p}
	sc := &st.Score
	s, err := core.RunCtx(ctx, work, p.CoreOptions(opt.Workers, opt.Minimizer, opt.Solver))
	if err != nil {
		sc.RunError = err.Error()
		sc.Cost = math.Inf(1)
		return st
	}
	sc.Channels = s.Channels()
	sc.Multiway = s.MultiwayChannels()
	for _, m := range s.Machines {
		sc.States += m.NumStates()
		sc.Trans += m.NumTransitions()
	}
	sc.Assumed = len(s.Assumptions())
	st.fus = s.FUs()
	// Token-level makespan under the transformed graph (the exploration
	// sweep's historical performance metric, kept for its reports) …
	if res, err := sim.NewTokenSim(work, sim.FromModel(timing.DefaultModel(), 1)).Run(); err == nil && res.Finished {
		sc.Makespan = res.FinishTime
		sc.Simulated = true
	}
	// … and the analyzed makespan upper bound that directs the search.
	if an, err := timing.Analyze(work, timing.DefaultModel(), 3); err == nil {
		sc.Analyzed = an.Makespan().Max
	}
	if opt.Synthesize {
		results, err := s.SynthesizeLogicCtx(ctx)
		if err != nil {
			sc.SynthError = err.Error()
			sc.Cost = math.Inf(1)
			return st
		}
		for _, r := range results {
			sc.Products += r.Products
			sc.Literals += r.Literals
		}
		sc.Synthesized = true
	}
	// Expansion hints, gathered after scoring (ReduceOnce mutates the
	// plan's scratch graph, which is discarded with this evaluation).
	if !p.SkipGT5 && !p.GT5Auto {
		if !p.MergesDone {
			st.mergeCands = len(s.Plan.CandidateMerges())
		} else {
			st.canReduce = s.Plan.ReduceOnce()
		}
	}
	sc.Cost = opt.cost(*sc)
	return st
}

// cost folds a score into the scalar objective. Failed plans — a pipeline
// error, a synthesis error, or a design whose makespan could not be
// assessed at all — cost +Inf, so they sort after every scored plan and
// drop out of candidate expansion.
func (o Options) cost(sc Score) float64 {
	if sc.Failed() {
		return math.Inf(1)
	}
	t := sc.Analyzed
	if t <= 0 {
		if !sc.Simulated {
			return math.Inf(1)
		}
		t = sc.Makespan
	}
	c := o.Weights.Time * t
	if sc.Synthesized {
		c += o.Weights.Area * float64(sc.Literals)
	}
	return c
}
