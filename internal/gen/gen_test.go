package gen

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/transform"
)

// tooBig screens instances whose products leave the exactly-representable
// float range (multiplication chains can explode over iterations).
func tooBig(m map[string]float64) bool {
	for _, v := range m {
		if math.Abs(v) > 1e12 {
			return true
		}
	}
	return false
}

func TestNewDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := New(seed, DefaultConfig()), New(seed, DefaultConfig())
		if a.String() != b.String() {
			t.Fatalf("seed %d: specs differ:\n%s\n%s", seed, a, b)
		}
	}
	if New(1, DefaultConfig()).String() == New(2, DefaultConfig()).String() {
		t.Error("different seeds produced identical specs")
	}
}

// TestGenSoundness1000 is the acceptance harness: 1000 seeded graphs must
// build, validate, and — before and after the global-transform pipeline —
// token-simulate to the sequential interpreter's register file under
// random delays.
func TestGenSoundness1000(t *testing.T) {
	const seeds = 1000
	delaySeeds := 2
	if testing.Short() {
		delaySeeds = 1
	}
	ran, skipped := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		s := New(seed, DefaultConfig())
		ref, err := s.Reference()
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, s)
		}
		if tooBig(ref) {
			skipped++
			continue
		}
		g, err := s.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v\n%s", seed, err, s)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: validate: %v\n%s", seed, err, s)
		}
		checkTokenEquiv(t, s, "untransformed", g, ref, delaySeeds)
		// GT3's removals assume the analysis delay model, which random
		// delay draws do not follow; keep it off (matches the core fuzz
		// harnesses).
		opts := transform.DefaultOptions()
		opts.SkipGT3 = true
		if _, _, err := transform.OptimizeGT(g, opts); err != nil {
			t.Fatalf("seed %d: transforms: %v\n%s", seed, err, s)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: validate after transforms: %v\n%s", seed, err, s)
		}
		checkTokenEquiv(t, s, "transformed", g, ref, delaySeeds)
		ran++
	}
	t.Logf("gen soundness: %d instances verified, %d skipped (magnitude)", ran, skipped)
	if ran < seeds*8/10 {
		t.Errorf("too few instances ran (%d/%d); generator bounds too loose", ran, seeds)
	}
}

func checkTokenEquiv(t *testing.T, s Spec, stage string, g *cdfg.Graph, ref map[string]float64, delaySeeds int) {
	t.Helper()
	for seed := 0; seed < delaySeeds; seed++ {
		res, err := sim.NewTokenSim(g.Clone(), sim.RandomDelays(int64(seed), 1, 30, 0.1, 2)).Run()
		if err != nil {
			t.Fatalf("%s %s seed %d: %v", s, stage, seed, err)
		}
		if !res.Finished {
			t.Fatalf("%s %s seed %d: did not finish", s, stage, seed)
		}
		for _, reg := range s.Regs() {
			if math.Abs(res.Regs[reg]-ref[reg]) > 1e-6 {
				t.Fatalf("%s %s seed %d: %s = %v, want %v\n%s",
					s, stage, seed, reg, res.Regs[reg], ref[reg], g)
			}
		}
		if len(res.Violations) != 0 {
			t.Fatalf("%s %s seed %d: violations: %v", s, stage, seed, res.Violations)
		}
	}
}

// TestGenFullFlow drives a subset of generated instances through the
// complete flow (extraction and local transforms included), skipping
// topologies the extractor rejects, mirroring core's full-flow fuzz.
func TestGenFullFlow(t *testing.T) {
	const seeds = 30
	ran, skipped := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		s := New(seed+5000, DefaultConfig())
		ref, err := s.Reference()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tooBig(ref) {
			skipped++
			continue
		}
		g, err := s.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		opt := core.DefaultOptions()
		opt.Transform.SkipGT3 = true
		sys, err := core.Run(g, opt)
		if err != nil {
			if strings.Contains(err.Error(), "unsupported topology") ||
				strings.Contains(err.Error(), "primer events") {
				skipped++
				continue
			}
			t.Fatalf("seed %d: %v\n%s", seed, err, s)
		}
		for dseed := int64(0); dseed < 2; dseed++ {
			res, err := sys.Simulate(dseed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", s, dseed, err)
			}
			for _, reg := range s.Regs() {
				if math.Abs(res.Regs[reg]-ref[reg]) > 1e-6 {
					t.Fatalf("%s: %s = %v, want %v", s, reg, res.Regs[reg], ref[reg])
				}
			}
		}
		ran++
	}
	t.Logf("gen full flow: %d verified, %d skipped", ran, skipped)
	if ran == 0 {
		t.Error("no instances survived the full flow")
	}
}

// Shrinking a failure injected as "the loop body multiplies" must strip
// the spec to a single multiply and one iteration.
func TestShrinkMinimal(t *testing.T) {
	hasMul := func(s Spec) bool {
		for _, o := range s.Body {
			if o.Op == cdfg.OpMul {
				return true
			}
		}
		return false
	}
	found := 0
	for seed := int64(0); seed < 200 && found < 20; seed++ {
		s := New(seed, DefaultConfig())
		if !hasMul(s) {
			continue
		}
		found++
		m := Shrink(s, hasMul)
		if !hasMul(m) {
			t.Fatalf("seed %d: shrunk spec no longer fails:\n%s", seed, m)
		}
		if len(m.Body) != 1 {
			t.Errorf("seed %d: body not minimal (%d ops):\n%s", seed, len(m.Body), m)
		}
		if len(m.Pre) != 0 || len(m.If) != 0 {
			t.Errorf("seed %d: pre/if not removed:\n%s", seed, m)
		}
		if m.Iters != 1 {
			t.Errorf("seed %d: iters = %d, want 1:\n%s", seed, m.Iters, m)
		}
		for _, v := range m.Inits {
			if v != 0 {
				t.Errorf("seed %d: inits not zeroed: %v", seed, m.Inits)
				break
			}
		}
	}
	if found == 0 {
		t.Fatal("no generated spec contained a multiply; generator broken")
	}
}

// A pass-through predicate on a passing spec returns it unchanged.
func TestShrinkNonFailing(t *testing.T) {
	s := New(7, DefaultConfig())
	m := Shrink(s, func(Spec) bool { return false })
	if m.String() != s.String() {
		t.Error("Shrink modified a non-failing spec")
	}
}

// Shrunk specs must still build and validate: minimization must not leave
// the structured-program invariants.
func TestShrinkPreservesValidity(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		s := New(seed, DefaultConfig())
		m := Shrink(s, func(c Spec) bool {
			g, err := c.Build()
			return err == nil && g.Validate() == nil && len(c.Body) >= 1
		})
		g, err := m.Build()
		if err != nil {
			t.Fatalf("seed %d: shrunk spec fails to build: %v\n%s", seed, err, m)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: shrunk graph invalid: %v\n%s", seed, err, m)
		}
	}
}
