package gen

// Shrink greedily minimizes a failing spec: while the predicate keeps
// failing (fails returns true), it tries dropping preamble, body and
// conditional operations, removing the conditional block, lowering the
// trip count and zeroing register initializers, keeping every change
// that still reproduces the failure. The result is a local minimum: no
// single remaining reduction preserves the failure.
//
// fails must be deterministic for shrinking to converge; it is called
// O(total operations) times per fixpoint round.
func Shrink(s Spec, fails func(Spec) bool) Spec {
	if !fails(s) {
		return s
	}
	for changed := true; changed; {
		changed = false
		try := func(c Spec) bool {
			if fails(c) {
				s = c
				changed = true
				return true
			}
			return false
		}

		// Drop whole operations, preamble first.
		for i := 0; i < len(s.Pre); i++ {
			if try(s.withPre(removeAt(s.Pre, i))) {
				i--
			}
		}
		// The loop body must keep at least one operation to stay a
		// meaningful scheduled program.
		for i := 0; i < len(s.Body) && len(s.Body) > 1; i++ {
			if try(s.withBody(removeAt(s.Body, i))) {
				i--
			}
		}
		for i := 0; i < len(s.If); i++ {
			if try(s.withIf(removeAt(s.If, i))) {
				i--
			}
		}

		// Lower the trip count toward one iteration.
		for s.Iters > 1 && try(s.withIters(s.Iters/2)) {
		}
		if s.Iters > 1 {
			try(s.withIters(s.Iters - 1))
		}

		// Zero initializers to make surviving values legible.
		for i, v := range s.Inits {
			if v != 0 {
				c := s
				c.Inits = append([]float64(nil), s.Inits...)
				c.Inits[i] = 0
				try(c)
			}
		}
	}
	return s
}

func removeAt(ops []OpSpec, i int) []OpSpec {
	out := make([]OpSpec, 0, len(ops)-1)
	out = append(out, ops[:i]...)
	return append(out, ops[i+1:]...)
}

func (s Spec) withPre(ops []OpSpec) Spec  { s.Pre = ops; return s }
func (s Spec) withBody(ops []OpSpec) Spec { s.Body = ops; return s }
func (s Spec) withIf(ops []OpSpec) Spec   { s.If = ops; return s }
func (s Spec) withIters(n int) Spec       { s.Iters = n; return s }
