// Package gen is a seeded, property-based generator of random scheduled
// CDFGs for testing the synthesis flow. A Spec is a small, explicit
// description of one random program — functional units, initialized
// registers, a preamble, a counted loop with an optional conditional
// block — derived deterministically from a seed. Specs build real
// cdfg.Graphs through the same Program builder the benchmarks use, take
// their golden register file from the frontend's sequential interpreter,
// and shrink: when a property fails, Shrink greedily removes operations
// and iterations while the failure reproduces, handing back a minimal
// counterexample instead of a forty-node graph.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cdfg"
	"repro/internal/frontend"
)

// Config bounds the shape of generated programs.
type Config struct {
	// MaxFUs is the largest number of functional units (at least 2 are
	// always generated so channels exist).
	MaxFUs int
	// MaxRegs is the largest number of general registers (at least 2).
	MaxRegs int
	// MaxPre bounds the operations before the loop.
	MaxPre int
	// MaxBody bounds the operations inside the loop body.
	MaxBody int
	// MaxIters bounds the loop trip count (at least 1).
	MaxIters int
	// AllowIf permits a conditional block inside the loop.
	AllowIf bool
	// AllowMul permits multiplications (products can overflow the exact
	// float range over many iterations; harnesses screen with a magnitude
	// filter).
	AllowMul bool
}

// DefaultConfig returns the bounds used by the repo's own fuzz harnesses.
func DefaultConfig() Config {
	return Config{MaxFUs: 4, MaxRegs: 5, MaxPre: 3, MaxBody: 6, MaxIters: 5, AllowIf: true, AllowMul: true}
}

// OpSpec is one generated operation; registers and units are indices so
// specs stay valid under shrinking.
type OpSpec struct {
	// FU indexes the owning functional unit.
	FU int
	// Dst indexes the destination general register.
	Dst int
	// Op is the RTL operation (OpMov ignores Src2).
	Op cdfg.Op
	// Src1 and Src2 index the source general registers.
	Src1, Src2 int
}

// Spec is one deterministic random program. The zero value is not
// runnable; use New.
type Spec struct {
	// Seed is the generator seed the spec was derived from.
	Seed int64
	// FUs is the number of functional units (named FU0, FU1, ...).
	FUs int
	// Inits holds the initial value of each general register; its length
	// is the register count (named r0, r1, ...).
	Inits []float64
	// Iters is the loop trip count.
	Iters int
	// Pre runs before the loop.
	Pre []OpSpec
	// Body runs each iteration, before the conditional block.
	Body []OpSpec
	// If, when non-empty, is a conditional block guarded by a fresh
	// comparison CondSrc1 < CondSrc2 computed on CondFU.
	If []OpSpec
	// CondFU owns the comparison and the conditional block.
	CondFU int
	// CondSrc1 and CondSrc2 are the comparison's register operands.
	CondSrc1, CondSrc2 int
}

// New derives a random Spec from seed under cfg's bounds. The same seed
// and config always produce the same spec.
func New(seed int64, cfg Config) Spec {
	r := rand.New(rand.NewSource(seed))
	s := Spec{
		Seed:  seed,
		FUs:   2 + r.Intn(max(1, cfg.MaxFUs-1)),
		Iters: 1 + r.Intn(max(1, cfg.MaxIters)),
	}
	nRegs := 2 + r.Intn(max(1, cfg.MaxRegs-1))
	for i := 0; i < nRegs; i++ {
		s.Inits = append(s.Inits, float64(r.Intn(9)-4)/2) // -2 .. 2 in halves
	}
	ops := []cdfg.Op{cdfg.OpAdd, cdfg.OpSub, cdfg.OpLT, cdfg.OpGT, cdfg.OpEQ, cdfg.OpMod, cdfg.OpMov}
	if cfg.AllowMul {
		ops = append(ops, cdfg.OpMul)
	}
	genOp := func() OpSpec {
		return OpSpec{
			FU:   r.Intn(s.FUs),
			Dst:  r.Intn(nRegs),
			Op:   ops[r.Intn(len(ops))],
			Src1: r.Intn(nRegs),
			Src2: r.Intn(nRegs),
		}
	}
	for k := r.Intn(cfg.MaxPre + 1); k > 0; k-- {
		s.Pre = append(s.Pre, genOp())
	}
	for k := 1 + r.Intn(max(1, cfg.MaxBody)); k > 0; k-- {
		s.Body = append(s.Body, genOp())
	}
	if cfg.AllowIf && r.Intn(2) == 0 {
		for k := 1 + r.Intn(2); k > 0; k-- {
			s.If = append(s.If, genOp())
		}
		s.CondFU = r.Intn(s.FUs)
		s.CondSrc1, s.CondSrc2 = r.Intn(nRegs), r.Intn(nRegs)
	}
	return s
}

// Program materializes the spec as a scheduled program: the preamble,
// then a counted loop owned by FU0 holding the body, the optional
// conditional block, and the counter/condition pair.
func (s Spec) Program() *cdfg.Program {
	fus := make([]string, s.FUs)
	for i := range fus {
		fus[i] = fmt.Sprintf("FU%d", i)
	}
	p := cdfg.NewProgram(fmt.Sprintf("gen%d", s.Seed), fus...)
	p.Const("one").Init("one", 1)
	p.Const("lim").Init("lim", float64(s.Iters))
	p.Init("i", 0).Init("run", 1)
	for i, v := range s.Inits {
		p.Init(s.reg(i), v)
	}
	emit := func(o OpSpec) {
		if o.Op == cdfg.OpMov {
			p.Assign(fus[o.FU%s.FUs], s.reg(o.Dst), s.reg(o.Src1))
			return
		}
		p.Op(fus[o.FU%s.FUs], s.reg(o.Dst), o.Op, s.reg(o.Src1), s.reg(o.Src2))
	}
	for _, o := range s.Pre {
		emit(o)
	}
	p.Loop(fus[0], "run")
	for _, o := range s.Body {
		emit(o)
	}
	if len(s.If) > 0 {
		p.Op(fus[s.CondFU%s.FUs], "c", cdfg.OpLT, s.reg(s.CondSrc1), s.reg(s.CondSrc2))
		p.If(fus[s.CondFU%s.FUs], "c")
		for _, o := range s.If {
			emit(o)
		}
		p.EndIf()
	}
	p.Op(fus[0], "i", cdfg.OpAdd, "i", "one")
	p.Op(fus[0], "run", cdfg.OpLT, "i", "lim")
	p.EndLoop()
	return p
}

// reg names general register i, wrapping indices so shrunk specs remain
// well-formed.
func (s Spec) reg(i int) string {
	if len(s.Inits) == 0 {
		return "r0"
	}
	return fmt.Sprintf("r%d", ((i%len(s.Inits))+len(s.Inits))%len(s.Inits))
}

// Build materializes the spec and derives all constraint arcs.
func (s Spec) Build() (*cdfg.Graph, error) {
	return s.Program().Build()
}

// Reference returns the golden register file: the frontend's sequential
// interpreter run over the built graph.
func (s Spec) Reference() (map[string]float64, error) {
	g, err := s.Build()
	if err != nil {
		return nil, err
	}
	return frontend.Interpret(g)
}

// Regs lists the register names whose final values a harness should
// compare (the general registers plus the loop counter).
func (s Spec) Regs() []string {
	out := make([]string, 0, len(s.Inits)+1)
	for i := range s.Inits {
		out = append(out, s.reg(i))
	}
	return append(out, "i")
}

// String renders the spec compactly for failure messages.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gen.Spec{seed=%d fus=%d regs=%v iters=%d", s.Seed, s.FUs, s.Inits, s.Iters)
	dump := func(tag string, ops []OpSpec) {
		if len(ops) == 0 {
			return
		}
		fmt.Fprintf(&b, " %s[", tag)
		for i, o := range ops {
			if i > 0 {
				b.WriteString(" ")
			}
			if o.Op == cdfg.OpMov {
				fmt.Fprintf(&b, "FU%d:%s=%s", o.FU, s.reg(o.Dst), s.reg(o.Src1))
			} else {
				fmt.Fprintf(&b, "FU%d:%s=%s%s%s", o.FU, s.reg(o.Dst), s.reg(o.Src1), o.Op, s.reg(o.Src2))
			}
		}
		b.WriteString("]")
	}
	dump("pre", s.Pre)
	dump("body", s.Body)
	if len(s.If) > 0 {
		fmt.Fprintf(&b, " cond=FU%d:%s<%s", s.CondFU, s.reg(s.CondSrc1), s.reg(s.CondSrc2))
		dump("if", s.If)
	}
	b.WriteString("}")
	return b.String()
}

// Graph builds the random scheduled CDFG for seed under the default
// config, panicking on builder errors (generated specs always build).
func Graph(seed int64) *cdfg.Graph {
	g, err := New(seed, DefaultConfig()).Build()
	if err != nil {
		panic(fmt.Sprintf("gen: seed %d: %v", seed, err))
	}
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
