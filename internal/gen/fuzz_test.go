package gen

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/transform"
)

// FuzzGenSoundness lets the fuzzer drive the generator seed space: every
// spec must build a valid graph whose token simulation matches the
// sequential interpreter before and after the global transforms. This is
// the harness that found the GT1 conditional-first-use deadlock.
func FuzzGenSoundness(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		s := New(seed, DefaultConfig())
		ref, err := s.Reference()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if tooBig(ref) {
			t.Skip("magnitude outside exact float range")
		}
		g, err := s.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", s, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", s, err)
		}
		checkTokenEquiv(t, s, "untransformed", g, ref, 1)
		opts := transform.DefaultOptions()
		opts.SkipGT3 = true
		if _, _, err := transform.OptimizeGT(g, opts); err != nil {
			t.Fatalf("%s: transforms: %v", s, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: validate after transforms: %v", s, err)
		}
		res, err := sim.NewTokenSim(g.Clone(), sim.RandomDelays(1, 1, 30, 0.1, 2)).Run()
		if err != nil || !res.Finished {
			t.Fatalf("%s: transformed sim: err=%v finished=%v", s, err, res != nil && res.Finished)
		}
		for _, reg := range s.Regs() {
			if d := res.Regs[reg] - ref[reg]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("%s: %s = %v, want %v", s, reg, res.Regs[reg], ref[reg])
			}
		}
	})
}
