package gen_test

import (
	"fmt"

	"repro/internal/gen"
)

// Derive a random scheduled CDFG from a seed; the same seed always yields
// the same graph, so failures reported by seed are reproducible.
func ExampleGraph() {
	g := gen.Graph(42)
	fmt.Printf("valid: %v\n", g.Validate() == nil)
	fmt.Printf("deterministic: %v\n", g.String() == gen.Graph(42).String())
	// Output:
	// valid: true
	// deterministic: true
}
