package sim

import (
	"math/rand"

	"repro/internal/cdfg"
	"repro/internal/timing"
)

// FromModel returns a delay assignment drawn uniformly within the given
// timing model's intervals. Simulating a relative-timing-optimized graph is
// only sound with delays consistent with the model used by GT3; this
// constructor guarantees that consistency.
func FromModel(m timing.Model, seed int64) Delays {
	r := rand.New(rand.NewSource(seed))
	draw := func(iv timing.Interval) float64 {
		if iv.Max <= iv.Min {
			return iv.Min
		}
		return iv.Min + r.Float64()*(iv.Max-iv.Min)
	}
	return Delays{
		Op: func(n *cdfg.Node) float64 {
			if n.UsesFU() {
				if iv, ok := m.FUOp[n.FU]; ok {
					return draw(iv)
				}
			}
			return draw(m.DefaultOp)
		},
		Wire: func(*cdfg.Arc) float64 { return draw(m.Wire) },
	}
}
