// Package sim executes CDFGs and extracted controller systems.
//
// The token simulator in this file implements the paper's reference firing
// semantics: an operation node may fire when all its predecessor constraint
// arcs carry tokens (backward arcs are pre-enabled on loop entry). Nodes
// take arbitrary positive amounts of time, so the simulator doubles as a
// correctness oracle: running the same graph under many random delay
// assignments must always produce the reference register values, must never
// queue two pending events on one arc (the single-transition wire safety
// requirement of §2.2), and must never exhibit a register read/write race.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cdfg"
)

// Delays supplies execution latencies. Op returns the latency of firing a
// node; Wire returns the propagation delay of an arc. Both must be
// positive.
type Delays struct {
	Op   func(n *cdfg.Node) float64
	Wire func(a *cdfg.Arc) float64
}

// FixedDelays returns a delay model with uniform latencies: opDelay per
// node firing and wireDelay per arc.
func FixedDelays(opDelay, wireDelay float64) Delays {
	return Delays{
		Op:   func(*cdfg.Node) float64 { return opDelay },
		Wire: func(*cdfg.Arc) float64 { return wireDelay },
	}
}

// PerFUDelays returns a delay model with per-functional-unit node latencies
// (falling back to def) and fixed wire delay.
func PerFUDelays(fu map[string]float64, def, wire float64) Delays {
	return Delays{
		Op: func(n *cdfg.Node) float64 {
			if d, ok := fu[n.FU]; ok && n.UsesFU() {
				return d
			}
			return def
		},
		Wire: func(*cdfg.Arc) float64 { return wire },
	}
}

// RandomDelays returns a delay model drawing each firing latency uniformly
// from [min,max) with the given seed; wire delays are drawn from
// [wmin,wmax). Distinct firings of the same node get fresh draws.
func RandomDelays(seed int64, min, max, wmin, wmax float64) Delays {
	r := rand.New(rand.NewSource(seed))
	return Delays{
		Op:   func(*cdfg.Node) float64 { return min + r.Float64()*(max-min) },
		Wire: func(*cdfg.Arc) float64 { return wmin + r.Float64()*(wmax-wmin) },
	}
}

// Violation records a detected safety violation during simulation.
type Violation struct {
	Time float64
	Msg  string
}

// Result summarizes a token simulation run.
type Result struct {
	Regs        map[string]float64
	FinishTime  float64 // time at which END fired
	Firings     int
	LoopIters   map[cdfg.NodeID]int // iterations per LOOP node
	Violations  []Violation
	MaxOccupied map[cdfg.ArcID]int // peak pending tokens per arc
	Finished    bool
	// Trace records every arc token production (when CollectTrace is set).
	Trace []ArcFiring
}

// ArcFiring is one token production on an arc.
type ArcFiring struct {
	Arc  cdfg.ArcID
	From cdfg.NodeID
	Time float64
}

// TokenSim executes a CDFG under the token firing semantics.
type TokenSim struct {
	g      *cdfg.Graph
	delays Delays
	// MaxFirings bounds execution to catch runaway loops (default 100000).
	MaxFirings int
	// CheckRaces enables register read/write race detection.
	CheckRaces bool
	// CollectTrace records arc token productions in Result.Trace.
	CollectTrace bool
}

// NewTokenSim creates a simulator for g with the given delay model.
func NewTokenSim(g *cdfg.Graph, d Delays) *TokenSim {
	return &TokenSim{g: g, delays: d, MaxFirings: 100000, CheckRaces: true}
}

type tokenEvent struct {
	time float64
	arc  *cdfg.Arc   // token arrival (nil for retries)
	node cdfg.NodeID // retry target when arc is nil
	seq  int
}

type eventQueue []tokenEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(tokenEvent)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

type regAccess struct {
	start, end float64
	write      bool
	node       cdfg.NodeID
}

// Run executes the graph to completion (END fired and no events pending) or
// until MaxFirings is exceeded.
func (s *TokenSim) Run() (*Result, error) {
	g := s.g
	res := &Result{
		Regs:        map[string]float64{},
		LoopIters:   map[cdfg.NodeID]int{},
		MaxOccupied: map[cdfg.ArcID]int{},
	}
	for k, v := range g.Init {
		res.Regs[k] = v
	}
	tokens := map[cdfg.ArcID]int{}
	busyUntil := map[cdfg.NodeID]float64{}
	accesses := map[string][]regAccess{}
	var q eventQueue
	seq := 0
	push := func(t float64, a *cdfg.Arc) {
		heap.Push(&q, tokenEvent{time: t, arc: a, node: -1, seq: seq})
		seq++
	}
	pushRetry := func(t float64, n cdfg.NodeID) {
		heap.Push(&q, tokenEvent{time: t, node: n, seq: seq})
		seq++
	}

	violate := func(t float64, format string, args ...interface{}) {
		res.Violations = append(res.Violations, Violation{Time: t, Msg: fmt.Sprintf(format, args...)})
	}

	// ready reports whether node n can fire given current tokens, and
	// returns the satisfied alternative group (or GroupAll when the node
	// has none).
	ready := func(n *cdfg.Node) (cdfg.InGroup, bool) {
		in := g.In(n.ID)
		groups := map[cdfg.InGroup][]*cdfg.Arc{}
		for _, a := range in {
			groups[a.Group] = append(groups[a.Group], a)
		}
		for _, a := range groups[cdfg.GroupAll] {
			if tokens[a.ID] == 0 {
				return 0, false
			}
		}
		alt := []cdfg.InGroup{cdfg.GroupEnter, cdfg.GroupRepeat, cdfg.GroupThen, cdfg.GroupElse}
		hasAlt := false
		for _, grp := range alt {
			if len(groups[grp]) == 0 {
				continue
			}
			hasAlt = true
			all := true
			for _, a := range groups[grp] {
				if tokens[a.ID] == 0 {
					all = false
					break
				}
			}
			if all {
				return grp, true
			}
		}
		if hasAlt {
			return 0, false
		}
		return cdfg.GroupAll, true
	}

	// fire executes node n at time t, consuming the satisfied group.
	var fire func(n *cdfg.Node, grp cdfg.InGroup, t float64)
	fire = func(n *cdfg.Node, grp cdfg.InGroup, t float64) {
		res.Firings++
		for _, a := range g.In(n.ID) {
			if a.Group == cdfg.GroupAll || a.Group == grp {
				if tokens[a.ID] > 0 {
					tokens[a.ID]--
				}
			}
		}
		d := s.delays.Op(n)
		if d <= 0 {
			d = 1e-9
		}
		done := t + d
		busyUntil[n.ID] = done

		branch := cdfg.OutAlways
		switch n.Kind {
		case cdfg.KindLoop, cdfg.KindIf:
			cond := res.Regs[n.Cond]
			if s.CheckRaces {
				accesses[n.Cond] = append(accesses[n.Cond], regAccess{start: t, end: t, node: n.ID})
			}
			if cond != 0 {
				branch = cdfg.OutTrue
			} else {
				branch = cdfg.OutFalse
			}
			if n.Kind == cdfg.KindLoop && branch == cdfg.OutTrue {
				res.LoopIters[n.ID]++
			}
			// Entering a loop from outside pre-enables its backward arcs.
			if n.Kind == cdfg.KindLoop && grp == cdfg.GroupEnter && branch == cdfg.OutTrue {
				for _, a := range g.Arcs() {
					if a.Kind == cdfg.ArcBackward && s.arcInLoopOf(n.ID, a) {
						tokens[a.ID]++
						if tokens[a.ID] > res.MaxOccupied[a.ID] {
							res.MaxOccupied[a.ID] = tokens[a.ID]
						}
					}
				}
			}
		case cdfg.KindOp, cdfg.KindAssign:
			// Read sources at fire time, write destinations at completion.
			vals := make([]float64, len(n.Stmts))
			for i, st := range n.Stmts {
				for _, r := range st.Reads() {
					if s.CheckRaces {
						accesses[r] = append(accesses[r], regAccess{start: t, end: t, node: n.ID})
					}
				}
				vals[i] = evalStmt(st, res.Regs)
			}
			for i, st := range n.Stmts {
				res.Regs[st.Dst] = vals[i]
				if s.CheckRaces {
					accesses[st.Dst] = append(accesses[st.Dst], regAccess{start: t, end: done, write: true, node: n.ID})
				}
			}
		case cdfg.KindEnd:
			res.Finished = true
			res.FinishTime = done
		}

		if s.CollectTrace {
			for _, a := range g.Out(n.ID) {
				emit := a.Branch == cdfg.OutAlways || a.Branch == branch
				if a.Kind == cdfg.ArcBackward {
					emit = branch != cdfg.OutFalse
				}
				if emit {
					res.Trace = append(res.Trace, ArcFiring{Arc: a.ID, From: n.ID, Time: done})
				}
			}
		}
		for _, a := range g.Out(n.ID) {
			if a.Kind == cdfg.ArcBackward {
				// Backward arcs deliver their token like regular arcs; only
				// pre-enabling at loop entry is special.
				if branch != cdfg.OutFalse {
					push(done+s.wireDelay(a), a)
				}
				continue
			}
			if a.Branch == cdfg.OutAlways || a.Branch == branch {
				push(done+s.wireDelay(a), a)
			}
		}
	}

	// Kick off START.
	startNode := g.Node(g.Start)
	fire(startNode, cdfg.GroupAll, 0)

	for q.Len() > 0 {
		if res.Firings > s.MaxFirings {
			return res, fmt.Errorf("sim: exceeded %d firings (runaway loop?)", s.MaxFirings)
		}
		ev := heap.Pop(&q).(tokenEvent)
		var n *cdfg.Node
		if ev.arc != nil {
			a := ev.arc
			tokens[a.ID]++
			if tokens[a.ID] > res.MaxOccupied[a.ID] {
				res.MaxOccupied[a.ID] = tokens[a.ID]
			}
			if tokens[a.ID] > 1 {
				violate(ev.time, "wire safety: arc %d (n%d→n%d) has %d pending tokens", a.ID, a.From, a.To, tokens[a.ID])
			}
			n = g.Node(a.To)
		} else {
			n = g.Node(ev.node)
		}
		// Try to fire the destination (and keep firing while enabled:
		// several arcs may have arrived at the same instant). A node is a
		// sequential resource: if it is still busy, defer the firing so
		// register reads happen at the true firing time.
		for {
			grp, ok := ready(n)
			if !ok {
				break
			}
			if bu := busyUntil[n.ID]; bu > ev.time {
				pushRetry(bu, n.ID)
				break
			}
			fire(n, grp, ev.time)
			if n.Kind == cdfg.KindEnd || n.Kind == cdfg.KindStart {
				break
			}
		}
	}

	if s.CheckRaces {
		s.detectRaces(accesses, res)
	}
	return res, nil
}

func (s *TokenSim) wireDelay(a *cdfg.Arc) float64 {
	d := s.delays.Wire(a)
	if d <= 0 {
		d = 1e-9
	}
	return d
}

// arcInLoopOf reports whether arc a is a backward arc of the loop rooted at
// loopRoot: both endpoints inside that loop's body (transitively).
func (s *TokenSim) arcInLoopOf(loopRoot cdfg.NodeID, a *cdfg.Arc) bool {
	var blk *cdfg.Block
	for _, b := range s.g.Blocks {
		if b.Kind == cdfg.BlockLoop && b.Root == loopRoot {
			blk = b
			break
		}
	}
	if blk == nil {
		return false
	}
	return s.nodeInBlock(a.From, blk.ID) && s.nodeInBlock(a.To, blk.ID)
}

func (s *TokenSim) nodeInBlock(id cdfg.NodeID, block int) bool {
	b := s.g.Node(id).Block
	for b >= 0 {
		if b == block {
			return true
		}
		b = s.g.Blocks[b].Parent
	}
	return false
}

// detectRaces flags overlapping register accesses that are not causally
// ordered: a read strictly inside another node's write window, or two
// overlapping write windows.
func (s *TokenSim) detectRaces(accesses map[string][]regAccess, res *Result) {
	var regs []string
	for r := range accesses {
		regs = append(regs, r)
	}
	sort.Strings(regs)
	for _, r := range regs {
		acc := accesses[r]
		for i, w := range acc {
			if !w.write {
				continue
			}
			for j, o := range acc {
				if i == j || o.node == w.node {
					continue
				}
				if o.write {
					if o.start < w.end && w.start < o.end && i < j {
						res.Violations = append(res.Violations, Violation{
							Time: w.start,
							Msg:  fmt.Sprintf("race: overlapping writes to %s by n%d and n%d", r, w.node, o.node),
						})
					}
				} else if o.start > w.start && o.start < w.end {
					res.Violations = append(res.Violations, Violation{
						Time: o.start,
						Msg:  fmt.Sprintf("race: n%d reads %s during write by n%d", o.node, r, w.node),
					})
				}
			}
		}
	}
}

// evalStmt computes the value of one RTL statement against the register
// file.
func evalStmt(st cdfg.Stmt, regs map[string]float64) float64 {
	a := regs[st.Src1]
	switch st.Op {
	case cdfg.OpMov:
		return a
	}
	b := regs[st.Src2]
	switch st.Op {
	case cdfg.OpAdd:
		return a + b
	case cdfg.OpSub:
		return a - b
	case cdfg.OpMul:
		return a * b
	case cdfg.OpLT:
		if a < b {
			return 1
		}
		return 0
	case cdfg.OpGT:
		if a > b {
			return 1
		}
		return 0
	case cdfg.OpEQ:
		if a == b {
			return 1
		}
		return 0
	case cdfg.OpMod:
		ai, bi := int64(a), int64(b)
		if bi == 0 {
			return 0
		}
		return float64(ai % bi)
	default:
		panic(fmt.Sprintf("sim: unknown op %q", st.Op))
	}
}
