package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/bm"
	"repro/internal/cdfg"
)

// MachineDelays parameterizes the controller-level simulation. The
// acknowledgment-removal transform (LT4) is justified by the bundling
// assumptions muxDelay < fuDelay and wsDelay < wrDelay, which the model
// enforces structurally.
type MachineDelays struct {
	Ctrl func() float64 // controller output emission delay
	Wire func() float64 // global wire propagation
	Mux  func() float64 // input/register mux switching → ack
	FU   func() float64 // functional unit compute → ack
	Wr   func() float64 // register latch → ack
	// AckFall is the return-to-zero delay of every datapath
	// acknowledgment: the done-detector resets much faster than it
	// computes, which is exactly the slack the LT4 transform's timing
	// assumption consumes.
	AckFall func() float64
	// Feedback is the state-variable settle delay of the gate-level
	// controllers; fundamental-mode operation requires it to undercut
	// every environment response.
	Feedback func() float64
}

// DefaultMachineDelays returns a randomized delay model honoring the
// bundling constraints, including the LT1 relative-timing assumption that
// a done event announced in parallel with latching reaches its receiver no
// earlier than the latch completes (controller + wire delay exceeds the
// register latch delay).
func DefaultMachineDelays(seed int64) MachineDelays {
	r := rand.New(rand.NewSource(seed))
	u := func(lo, hi float64) func() float64 {
		return func() float64 { return lo + r.Float64()*(hi-lo) }
	}
	return MachineDelays{
		Ctrl:     u(0.2, 1),
		Wire:     u(5.2, 8), // ≥ max latch delay: the LT1 move-up assumption
		Mux:      u(0.5, 2),
		FU:       u(6, 12),
		Wr:       u(3, 5),
		AckFall:  u(0.2, 0.6),
		Feedback: u(0.05, 0.15),
	}
}

// MachineSystem simulates the extracted controllers plus a behavioural
// datapath: functional units with input muxes, registers with input muxes,
// transition-signaling wires between controllers and a four-phase (or
// LT4-reduced) local handshake.
type MachineSystem struct {
	G        *cdfg.Graph
	Machines map[string]*bm.Machine
	// Shared maps a surviving control signal to the signals folded into it
	// by LT5, per controller.
	Shared map[string]map[string][]string
	// Primers are wires primed once at reset (wire → edge); they realize
	// the pre-enabled backward constraints of loop parallelism.
	Primers map[string]bm.Edge
	Delays  MachineDelays
	// MaxEvents bounds the simulation.
	MaxEvents int
}

// MachineResult reports a controller-level simulation.
type MachineResult struct {
	Regs       map[string]float64
	FinishTime float64
	Finished   bool
	Events     int
	Violations []string
}

type msEvent struct {
	time float64
	seq  int
	fn   func(t float64)
}

type msQueue []msEvent

func (q msQueue) Len() int { return len(q) }
func (q msQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q msQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *msQueue) Push(x interface{}) { *q = append(*q, x.(msEvent)) }
func (q *msQueue) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// ctrlState is the runtime state of one controller.
type ctrlState struct {
	fu    string
	m     *bm.Machine
	state bm.StateID
	// events records every edge observed per input signal; consumed is the
	// per-signal consumption pointer. A specific-edge wait skips past
	// unobserved opposite edges (LT4 drops return-to-zero waits, so the
	// falling phases of retained acks pass unobserved).
	events   map[string][]bm.Edge
	consumed map[string]int
}

// findMatch returns the index of the next unconsumed event of the signal
// matching the wanted edge, or -1.
func (cs *ctrlState) findMatch(sig string, want bm.Edge) int {
	evs := cs.events[sig]
	for i := cs.consumed[sig]; i < len(evs); i++ {
		if want == bm.Toggle || evs[i] == want || evs[i] == bm.Toggle {
			return i
		}
		// A non-matching edge may only be skipped when the machine does
		// not specify it anywhere pending; for alternating handshake acks
		// this is exactly the dropped return-to-zero phase.
	}
	return -1
}

// fuState is the runtime state of one functional unit datapath.
type fuState struct {
	portA, portB string // selected source registers
	out          float64
	outValid     bool
}

type msRun struct {
	sys   *MachineSystem
	q     msQueue
	seq   int
	now   float64
	ctrls map[string]*ctrlState
	fus   map[string]*fuState
	// regSel: selected input source per register: "fu:<unit>" or
	// "reg:<src>".
	regSel map[string]string
	regs   map[string]float64
	res    *MachineResult
	// receivers of each global wire.
	wireRx map[string][]*ctrlState
	// expansion of shared signals per controller.
	expand map[string]map[string][]string
}

// Run executes the controller system to quiescence.
func (sys *MachineSystem) Run() (*MachineResult, error) {
	if sys.MaxEvents == 0 {
		sys.MaxEvents = 500000
	}
	r := &msRun{
		sys:    sys,
		ctrls:  map[string]*ctrlState{},
		fus:    map[string]*fuState{},
		regSel: map[string]string{},
		regs:   map[string]float64{},
		wireRx: map[string][]*ctrlState{},
		expand: map[string]map[string][]string{},
		res:    &MachineResult{Regs: map[string]float64{}},
	}
	for k, v := range sys.G.Init {
		r.regs[k] = v
	}
	// Iterate all maps in sorted order: delays are drawn from a shared
	// seeded PRNG in scheduling order, so map-iteration order would make
	// runs with the same seed diverge across processes.
	for _, fu := range sortedKeys(sys.Machines) {
		m := sys.Machines[fu]
		cs := &ctrlState{fu: fu, m: m, state: m.Init,
			events: map[string][]bm.Edge{}, consumed: map[string]int{}}
		r.ctrls[fu] = cs
		r.fus[fu] = &fuState{}
		for _, in := range m.Inputs {
			if bm.IsWire(in) {
				r.wireRx[in] = append(r.wireRx[in], cs)
			}
		}
		exp := map[string][]string{}
		if sys.Shared != nil {
			for keep, others := range sys.Shared[fu] {
				exp[keep] = others
			}
		}
		r.expand[fu] = exp
	}
	// Reset: prime the backward-constraint wires.
	for _, wire := range sortedKeys(sys.Primers) {
		edge := sys.Primers[wire]
		for _, rx := range r.wireRx[wire] {
			rx, wire, edge := rx, wire, edge
			r.schedule(0, func(t float64) { r.deliver(rx, wire, edge, t) })
		}
	}
	// Environment: raise all start wires at t=0.
	started := map[string]bool{}
	for _, fu := range sortedKeys(sys.Machines) {
		m := sys.Machines[fu]
		for _, in := range m.Inputs {
			if strings.HasPrefix(in, "start") && !started[in+fu] {
				started[in+fu] = true
				cs := r.ctrls[fu]
				in := in
				r.schedule(0, func(t float64) { r.deliver(cs, in, bm.Rise, t) })
			}
		}
	}
	for len(r.q) > 0 {
		if r.res.Events > sys.MaxEvents {
			return r.res, fmt.Errorf("sim: controller system exceeded %d events at t=%.1f; states:\n%s", sys.MaxEvents, r.now, r.DescribeState())
		}
		ev := heap.Pop(&r.q).(msEvent)
		r.now = ev.time
		ev.fn(ev.time)
		r.res.Events++
	}
	for k, v := range r.regs {
		r.res.Regs[k] = v
	}
	r.res.FinishTime = r.now
	// Finished when some controller emitted a fin wire (recorded by
	// deliverEnv) or every controller is idle; we treat quiescence as
	// finished and let callers check register values.
	r.res.Finished = true
	return r.res, nil
}

func (r *msRun) schedule(dt float64, fn func(float64)) {
	heap.Push(&r.q, msEvent{time: r.now + dt, seq: r.seq, fn: fn})
	r.seq++
}

// deliver records a signal event at a controller and advances it.
func (r *msRun) deliver(cs *ctrlState, sig string, edge bm.Edge, t float64) {
	cs.events[sig] = append(cs.events[sig], edge)
	r.advance(cs, t)
}

// advance fires every enabled transition of the controller.
func (r *msRun) advance(cs *ctrlState, t float64) {
	for {
		fired := false
		for _, tr := range cs.m.OutTransitions(cs.state) {
			if !r.enabled(cs, tr) {
				continue
			}
			r.fire(cs, tr, t)
			fired = true
			break
		}
		if !fired {
			return
		}
	}
}

func (r *msRun) enabled(cs *ctrlState, tr *bm.Transition) bool {
	for _, e := range tr.In {
		if cs.findMatch(e.Signal, e.Edge) < 0 {
			return false
		}
	}
	for _, c := range tr.Cond {
		if (r.regs[c.Signal] != 0) != c.Value {
			return false
		}
	}
	return true
}

func (r *msRun) fire(cs *ctrlState, tr *bm.Transition, t float64) {
	for _, e := range tr.In {
		idx := cs.findMatch(e.Signal, e.Edge)
		if idx < 0 {
			r.res.Violations = append(r.res.Violations,
				fmt.Sprintf("t=%.2f %s: fired without matching %s%s", t, cs.fu, e.Signal, e.Edge))
			continue
		}
		cs.consumed[e.Signal] = idx + 1
	}
	cs.state = tr.To
	// Emit outputs after the controller delay, expanding LT5-shared
	// signals.
	for _, e := range tr.Out {
		events := []bm.Event{e}
		for _, folded := range r.expand[cs.fu][e.Signal] {
			events = append(events, bm.Event{Signal: folded, Edge: e.Edge})
		}
		for _, out := range events {
			out := out
			r.schedule(r.sys.Delays.Ctrl(), func(tt float64) { r.emit(cs, out, tt) })
		}
	}
}

// emit routes a controller output event to the datapath or to receiving
// controllers.
func (r *msRun) emit(cs *ctrlState, e bm.Event, t float64) {
	sig := e.Signal
	switch {
	case bm.IsWire(sig):
		for _, rx := range r.wireRx[sig] {
			rx := rx
			r.schedule(r.sys.Delays.Wire(), func(tt float64) { r.deliver(rx, sig, e.Edge, tt) })
		}
	case strings.HasPrefix(sig, "selA_"), strings.HasPrefix(sig, "selB_"):
		reg := sig[5:]
		fu := r.fus[cs.fu]
		r.schedule(r.sys.Delays.Mux(), func(tt float64) {
			if e.Edge == bm.Rise {
				if strings.HasPrefix(sig, "selA_") {
					fu.portA = reg
				} else {
					fu.portB = reg
				}
			}
			r.ackIfUsed(cs, sig+"_a", e.Edge, tt)
		})
	case strings.HasPrefix(sig, "go_"):
		op := sig[3:]
		fu := r.fus[cs.fu]
		r.schedule(r.sys.Delays.FU(), func(tt float64) {
			if e.Edge == bm.Rise {
				fu.out = r.compute(op, fu.portA, fu.portB, cs.fu, tt)
				fu.outValid = true
			}
			r.ackIfUsed(cs, sig+"_a", e.Edge, tt)
		})
	case strings.HasPrefix(sig, "ws_"):
		rest := sig[3:]
		r.schedule(r.sys.Delays.Mux(), func(tt float64) {
			if e.Edge == bm.Rise {
				if i := strings.Index(rest, "_"); i >= 0 {
					// ws_<dst>_<src>: register-to-register move path.
					r.regSel[rest[:i]] = "reg:" + rest[i+1:]
				} else {
					r.regSel[rest] = "fu:" + cs.fu
				}
			}
			r.ackIfUsed(cs, sig+"_a", e.Edge, tt)
		})
	case strings.HasPrefix(sig, "wr_"):
		dst := sig[3:]
		r.schedule(r.sys.Delays.Wr(), func(tt float64) {
			if e.Edge == bm.Rise {
				r.latch(cs, dst, tt)
			}
			r.ackIfUsed(cs, sig+"_a", e.Edge, tt)
		})
	case strings.HasPrefix(sig, "fin"):
		// Environment completion; nothing to do.
	default:
		r.res.Violations = append(r.res.Violations, fmt.Sprintf("t=%.2f %s: unknown output %s", t, cs.fu, sig))
	}
}

// ackIfUsed delivers a datapath acknowledgment only if the controller
// still listens to it (LT4 may have removed it).
func (r *msRun) ackIfUsed(cs *ctrlState, ack string, edge bm.Edge, t float64) {
	for _, in := range cs.m.Inputs {
		if in == ack {
			r.deliver(cs, ack, edge, t)
			return
		}
	}
}

func (r *msRun) compute(op, a, b, fu string, t float64) float64 {
	if a == "" || (b == "" && op != "mov") {
		r.res.Violations = append(r.res.Violations, fmt.Sprintf("t=%.2f %s: %s with unselected ports (%q,%q)", t, fu, op, a, b))
		return 0
	}
	va, vb := r.regs[a], r.regs[b]
	switch op {
	case "add":
		return va + vb
	case "sub":
		return va - vb
	case "mul":
		return va * vb
	case "lt":
		return b2f(va < vb)
	case "gt":
		return b2f(va > vb)
	case "eq":
		return b2f(va == vb)
	case "mod":
		bi := int64(vb)
		if bi == 0 {
			return 0
		}
		return float64(int64(va) % bi)
	default:
		r.res.Violations = append(r.res.Violations, fmt.Sprintf("t=%.2f %s: unknown op %s", t, fu, op))
		return 0
	}
}

func (r *msRun) latch(cs *ctrlState, dst string, t float64) {
	sel := r.regSel[dst]
	switch {
	case strings.HasPrefix(sel, "fu:"):
		fu := r.fus[sel[3:]]
		if !fu.outValid {
			r.res.Violations = append(r.res.Violations, fmt.Sprintf("t=%.2f latch %s from idle unit %s", t, dst, sel))
			return
		}
		r.regs[dst] = fu.out
	case strings.HasPrefix(sel, "reg:"):
		r.regs[dst] = r.regs[sel[4:]]
	default:
		r.res.Violations = append(r.res.Violations, fmt.Sprintf("t=%.2f latch %s with unselected register mux", t, dst))
	}
}

// sortedKeys returns the map's keys in sorted order, for deterministic
// iteration wherever scheduling draws delays from the shared PRNG.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// DescribeState renders the controllers' current states (for debugging
// stuck systems).
func (r *msRun) DescribeState() string {
	var fus []string
	for fu := range r.ctrls {
		fus = append(fus, fu)
	}
	sort.Strings(fus)
	var b strings.Builder
	for _, fu := range fus {
		cs := r.ctrls[fu]
		fmt.Fprintf(&b, "%s @ s%d\n", fu, cs.state)
	}
	return b.String()
}
