package sim

import (
	"container/heap"
	"fmt"
	"strings"

	"repro/internal/bm"
	"repro/internal/cdfg"
	"repro/internal/synth"
)

// LogicSystem simulates the synthesized gate-level controllers — the
// minimized two-level covers with state feedback — driving the behavioural
// datapath. It is the deepest verification level: the CDFG has been
// transformed, extracted, locally optimized, encoded and minimized, and
// the resulting logic must still compute the program.
type LogicSystem struct {
	G          *cdfg.Graph
	Evaluators map[string]*synth.Evaluator
	Machines   map[string]*bm.Machine // for the level-input (condition) lists
	Shared     map[string]map[string][]string
	Primers    map[string]bm.Edge
	Delays     MachineDelays
	MaxEvents  int
	// Trace, when set, observes every controller input event.
	Trace func(t float64, fu, sig string, level bool)
	// TraceOut, when set, observes every controller output level change.
	TraceOut func(t float64, fu, sig string, level bool)
	// Watch, when set, observes every register latch.
	Watch func(t float64, dst string, v float64)
}

// LogicResult reports a gate-level simulation.
type LogicResult struct {
	Regs       map[string]float64
	Events     int
	FinishTime float64
	Violations []string
}

type lsRun struct {
	sys    *LogicSystem
	q      msQueue
	seq    int
	now    float64
	fus    map[string]*fuState
	regSel map[string]string
	regs   map[string]float64
	res    *LogicResult
	wireRx map[string][]string // wire → controllers listing it as input
	// condRx maps a register to the controllers sampling it as a level.
	condRx    map[string][]string
	stateHops map[string]int
}

// Run executes the system to quiescence.
func (sys *LogicSystem) Run() (*LogicResult, error) {
	if sys.MaxEvents == 0 {
		sys.MaxEvents = 500000
	}
	r := &lsRun{
		sys:       sys,
		fus:       map[string]*fuState{},
		regSel:    map[string]string{},
		regs:      map[string]float64{},
		wireRx:    map[string][]string{},
		condRx:    map[string][]string{},
		stateHops: map[string]int{},
		res:       &LogicResult{Regs: map[string]float64{}},
	}
	for k, v := range sys.G.Init {
		r.regs[k] = v
	}
	// Iterate all maps in sorted order: delays are drawn from a shared
	// seeded PRNG in scheduling order, so map-iteration order would make
	// runs with the same seed diverge across processes.
	for _, fu := range sortedKeys(sys.Evaluators) {
		ev := sys.Evaluators[fu]
		r.fus[fu] = &fuState{}
		for _, in := range ev.Inputs {
			if bm.IsWire(in) {
				r.wireRx[in] = append(r.wireRx[in], fu)
			}
		}
		for _, lvl := range sys.Machines[fu].Levels {
			r.condRx[lvl] = append(r.condRx[lvl], fu)
		}
	}
	// Reset: condition levels reflect initial register values; primed wires
	// and start wires rise at t=0.
	for _, reg := range sortedKeys(r.condRx) {
		for _, fu := range r.condRx[reg] {
			reg, fu := reg, fu
			r.schedule(0, func(t float64) { r.setInput(fu, reg, r.regs[reg] != 0, t) })
		}
	}
	for _, wire := range sortedKeys(sys.Primers) {
		for _, fu := range r.wireRx[wire] {
			wire, fu := wire, fu
			r.schedule(0, func(t float64) { r.setInput(fu, wire, true, t) })
		}
	}
	for _, fu := range sortedKeys(sys.Evaluators) {
		ev := sys.Evaluators[fu]
		for _, in := range ev.Inputs {
			if strings.HasPrefix(in, "start") {
				in, fu := in, fu
				r.schedule(0, func(t float64) { r.setInput(fu, in, true, t) })
			}
		}
	}
	for len(r.q) > 0 {
		if r.res.Events > sys.MaxEvents {
			return r.res, fmt.Errorf("sim: gate-level system exceeded %d events at t=%.1f", sys.MaxEvents, r.now)
		}
		ev := heap.Pop(&r.q).(msEvent)
		r.now = ev.time
		ev.fn(ev.time)
		r.res.Events++
	}
	for k, v := range r.regs {
		r.res.Regs[k] = v
	}
	r.res.FinishTime = r.now
	return r.res, nil
}

func (r *lsRun) schedule(dt float64, fn func(float64)) {
	heap.Push(&r.q, msEvent{time: r.now + dt, seq: r.seq, fn: fn})
	r.seq++
}

// setInput drives one input level of one controller, propagates the
// resulting output changes, and schedules the state-feedback commit.
func (r *lsRun) setInput(fu, signal string, level bool, t float64) {
	if r.sys.Trace != nil {
		r.sys.Trace(t, fu, signal, level)
	}
	ev := r.sys.Evaluators[fu]
	changes, next := ev.Set(signal, level)
	for _, sig := range sortedKeys(changes) {
		r.emitLevel(fu, sig, changes[sig])
	}
	r.feedback(fu, next, t)
}

// feedback schedules a pending state change (the Y-variable delay). When
// the commit lands, the logic is re-evaluated and further changes cascade.
func (r *lsRun) feedback(fu string, next uint64, t float64) {
	ev := r.sys.Evaluators[fu]
	if next == ev.State() {
		return
	}
	r.stateHops[fu]++
	if r.stateHops[fu] > r.sys.MaxEvents {
		r.res.Violations = append(r.res.Violations,
			fmt.Sprintf("t=%.2f %s: state feedback oscillates", t, fu))
		return
	}
	fb := r.sys.Delays.Feedback
	if fb == nil {
		fb = r.sys.Delays.Ctrl
	}
	r.schedule(fb(), func(tt float64) {
		changes, follow := ev.Commit(next)
		for _, sig := range sortedKeys(changes) {
			r.emitLevel(fu, sig, changes[sig])
		}
		r.feedback(fu, follow, tt)
	})
}

// emitLevel routes a controller output level change to the datapath or to
// receiving controllers, expanding LT5-shared signals.
func (r *lsRun) emitLevel(fu, sig string, level bool) {
	if r.sys.TraceOut != nil {
		r.sys.TraceOut(r.now, fu, sig, level)
	}
	signals := []string{sig}
	if r.sys.Shared != nil {
		signals = append(signals, r.sys.Shared[fu][sig]...)
	}
	for _, s := range signals {
		r.routeLevel(fu, s, level)
	}
}

func (r *lsRun) routeLevel(fu, sig string, level bool) {
	d := r.sys.Delays
	switch {
	case bm.IsWire(sig):
		for _, rx := range r.wireRx[sig] {
			rx := rx
			r.schedule(d.Wire(), func(t float64) { r.setInput(rx, sig, level, t) })
		}
	case strings.HasPrefix(sig, "selA_"), strings.HasPrefix(sig, "selB_"):
		reg := sig[5:]
		fuState := r.fus[fu]
		sig := sig
		r.schedule(r.respDelay(d.Mux, level), func(t float64) {
			if level {
				if strings.HasPrefix(sig, "selA_") {
					fuState.portA = reg
				} else {
					fuState.portB = reg
				}
			}
			r.ack(fu, sig+"_a", level, t)
		})
	case strings.HasPrefix(sig, "go_"):
		op := sig[3:]
		fuState := r.fus[fu]
		r.schedule(r.respDelay(d.FU, level), func(t float64) {
			if level {
				fuState.out = r.compute(op, fuState.portA, fuState.portB, fu, t)
				fuState.outValid = true
			}
			r.ack(fu, sig+"_a", level, t)
		})
	case strings.HasPrefix(sig, "ws_"):
		rest := sig[3:]
		r.schedule(r.respDelay(d.Mux, level), func(t float64) {
			if level {
				if i := strings.Index(rest, "_"); i >= 0 {
					r.regSel[rest[:i]] = "reg:" + rest[i+1:]
				} else {
					r.regSel[rest] = "fu:" + fu
				}
			}
			r.ack(fu, sig+"_a", level, t)
		})
	case strings.HasPrefix(sig, "wr_"):
		dst := sig[3:]
		r.schedule(r.respDelay(d.Wr, level), func(t float64) {
			if level {
				r.latch(fu, dst, t)
			}
			r.ack(fu, sig+"_a", level, t)
		})
	case strings.HasPrefix(sig, "fin"):
		// Environment completion.
	default:
		r.res.Violations = append(r.res.Violations, fmt.Sprintf("%s: unknown output %s", fu, sig))
	}
}

// respDelay picks the datapath response delay: the full operation latency
// on a rising request, the fast return-to-zero on a falling one (the LT4
// timing assumption).
func (r *lsRun) respDelay(rise func() float64, level bool) float64 {
	if level {
		return rise()
	}
	if r.sys.Delays.AckFall != nil {
		return r.sys.Delays.AckFall()
	}
	return rise()
}

// ack drives a datapath acknowledgment level back into the controller.
func (r *lsRun) ack(fu, ackSig string, level bool, t float64) {
	for _, in := range r.sys.Evaluators[fu].Inputs {
		if in == ackSig {
			r.setInput(fu, ackSig, level, t)
			return
		}
	}
}

func (r *lsRun) compute(op, a, b, fu string, t float64) float64 {
	if a == "" {
		r.res.Violations = append(r.res.Violations, fmt.Sprintf("t=%.2f %s: %s with unselected port", t, fu, op))
		return 0
	}
	va, vb := r.regs[a], r.regs[b]
	switch op {
	case "add":
		return va + vb
	case "sub":
		return va - vb
	case "mul":
		return va * vb
	case "lt":
		return b2f(va < vb)
	case "gt":
		return b2f(va > vb)
	case "eq":
		return b2f(va == vb)
	case "mod":
		bi := int64(vb)
		if bi == 0 {
			return 0
		}
		return float64(int64(va) % bi)
	default:
		r.res.Violations = append(r.res.Violations, fmt.Sprintf("%s: unknown op %s", fu, op))
		return 0
	}
}

func (r *lsRun) latch(fu, dst string, t float64) {
	sel := r.regSel[dst]
	switch {
	case strings.HasPrefix(sel, "fu:"):
		src := r.fus[sel[3:]]
		if !src.outValid {
			r.res.Violations = append(r.res.Violations, fmt.Sprintf("t=%.2f latch %s from idle unit", t, dst))
			return
		}
		r.regs[dst] = src.out
	case strings.HasPrefix(sel, "reg:"):
		r.regs[dst] = r.regs[sel[4:]]
	default:
		r.res.Violations = append(r.res.Violations, fmt.Sprintf("t=%.2f latch %s with unselected register mux", t, dst))
		return
	}
	if r.sys.Watch != nil {
		r.sys.Watch(t, dst, r.regs[dst])
	}
	// Condition levels follow the written register, and must reach their
	// samplers before the latch acknowledgment does (the register output
	// is bundled ahead of the ack): propagate synchronously.
	for _, rx := range r.condRx[dst] {
		r.setInput(rx, dst, r.regs[dst] != 0, t)
	}
}
