package sim

import (
	"math"
	"testing"

	"repro/internal/diffeq"
	"repro/internal/extract"
	"repro/internal/local"
	"repro/internal/transform"
)

// buildSystem assembles the controller-level simulation for one of the
// paper's three experiment levels.
func buildSystem(t *testing.T, level string, seed int64) *MachineSystem {
	t.Helper()
	g := diffeq.Build(diffeq.DefaultParams())
	var plan *transform.Plan
	exOpt := extract.Options{}
	switch level {
	case "unoptimized":
		plan = transform.BuildChannels(g)
		exOpt.SeparateWaits = true
	case "gt", "gt+lt":
		var err error
		plan, _, err = transform.OptimizeGT(g, transform.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := extract.Extract(g, plan, exOpt)
	if err != nil {
		t.Fatal(err)
	}
	shared := map[string]map[string][]string{}
	if level == "gt+lt" {
		for fu, m := range res.Machines {
			rep, err := local.Optimize(m)
			if err != nil {
				t.Fatalf("%s: %v\n%s", fu, err, m)
			}
			shared[fu] = rep.SharedWires
		}
	}
	return &MachineSystem{
		G:        g,
		Machines: res.Machines,
		Shared:   shared,
		Primers:  res.Primers,
		Delays:   DefaultMachineDelays(seed),
	}
}

func checkSystem(t *testing.T, level string, seeds int) {
	t.Helper()
	p := diffeq.DefaultParams()
	ref := diffeq.Reference(p)
	for seed := int64(0); seed < int64(seeds); seed++ {
		sys := buildSystem(t, level, seed)
		res, err := sys.Run()
		if err != nil {
			t.Fatalf("%s seed %d: %v", level, seed, err)
		}
		for _, r := range []string{"X", "Y", "U"} {
			if math.Abs(res.Regs[r]-ref[r]) > 1e-9 {
				t.Errorf("%s seed %d: %s = %v, want %v", level, seed, r, res.Regs[r], ref[r])
			}
		}
		if len(res.Violations) != 0 {
			t.Fatalf("%s seed %d violations: %v", level, seed, res.Violations)
		}
	}
}

// The headline integration result: the distributed controllers extracted
// at every optimization level compute the same DIFFEQ trajectory as the
// sequential reference, under randomized delays.
func TestControllersUnoptimized(t *testing.T) { checkSystem(t, "unoptimized", 10) }
func TestControllersGT(t *testing.T)          { checkSystem(t, "gt", 10) }
func TestControllersGTLT(t *testing.T)        { checkSystem(t, "gt+lt", 10) }

func TestControllerSystemTerminates(t *testing.T) {
	sys := buildSystem(t, "gt", 42)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Error("no events simulated")
	}
	if res.FinishTime <= 0 {
		t.Error("finish time not advanced")
	}
}

func TestControllerSystemZeroIterations(t *testing.T) {
	// x0 >= a: the loop exits immediately; registers stay at initial
	// values.
	p := diffeq.Params{X0: 5, Y0: 1, U0: 0.25, DX: 0.5, A: 1}
	g := diffeq.Build(p)
	plan, _, err := transform.OptimizeGT(g, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := extract.Extract(g, plan, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys := &MachineSystem{G: g, Machines: res.Machines, Primers: res.Primers, Delays: DefaultMachineDelays(1)}
	out, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref := diffeq.Reference(p)
	for _, r := range []string{"X", "Y", "U"} {
		if out.Regs[r] != ref[r] {
			t.Errorf("%s = %v, want %v", r, out.Regs[r], ref[r])
		}
	}
}
