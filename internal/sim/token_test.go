package sim

import (
	"math"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/diffeq"
)

func mustRun(t *testing.T, g *cdfg.Graph, d Delays) *Result {
	t.Helper()
	s := NewTokenSim(g, d)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("simulation did not reach END")
	}
	return res
}

func checkAgainstReference(t *testing.T, res *Result, p diffeq.Params) {
	t.Helper()
	ref := diffeq.Reference(p)
	for _, r := range []string{"X", "Y", "U"} {
		if math.Abs(res.Regs[r]-ref[r]) > 1e-9 {
			t.Errorf("register %s = %v, reference %v", r, res.Regs[r], ref[r])
		}
	}
}

func TestDiffeqFixedDelays(t *testing.T) {
	p := diffeq.DefaultParams()
	g := diffeq.Build(p)
	res := mustRun(t, g, FixedDelays(10, 1))
	checkAgainstReference(t, res, p)
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
	loop := findLoop(t, g)
	if got := res.LoopIters[loop]; got != diffeq.Iterations(p) {
		t.Errorf("loop iterations = %d, want %d", got, diffeq.Iterations(p))
	}
}

func findLoop(t *testing.T, g *cdfg.Graph) cdfg.NodeID {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Kind == cdfg.KindLoop {
			return n.ID
		}
	}
	t.Fatal("no LOOP node")
	return 0
}

// The central asynchrony property: any positive delay assignment yields the
// same final register values, with no wire-safety or race violations.
func TestDiffeqRandomDelaysDeterministic(t *testing.T) {
	p := diffeq.DefaultParams()
	for seed := int64(0); seed < 25; seed++ {
		g := diffeq.Build(p)
		res := mustRun(t, g, RandomDelays(seed, 1, 50, 0.1, 5))
		checkAgainstReference(t, res, p)
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, res.Violations)
		}
	}
}

func TestDiffeqSkewedFUDelays(t *testing.T) {
	p := diffeq.DefaultParams()
	// Very slow multipliers against fast ALUs, then the reverse.
	for _, fu := range []map[string]float64{
		{"MUL1": 200, "MUL2": 180, "ALU1": 3, "ALU2": 2},
		{"MUL1": 2, "MUL2": 3, "ALU1": 150, "ALU2": 170},
	} {
		g := diffeq.Build(p)
		res := mustRun(t, g, PerFUDelays(fu, 5, 1))
		checkAgainstReference(t, res, p)
		if len(res.Violations) != 0 {
			t.Fatalf("delays %v: violations: %v", fu, res.Violations)
		}
	}
}

func TestDiffeqZeroIterations(t *testing.T) {
	// x0 >= a: the loop body never executes.
	p := diffeq.Params{X0: 2, Y0: 1, U0: 0, DX: 0.5, A: 1}
	g := diffeq.Build(p)
	res := mustRun(t, g, FixedDelays(10, 1))
	checkAgainstReference(t, res, p)
	if res.Regs["X"] != 2 || res.Regs["Y"] != 1 {
		t.Errorf("registers changed despite empty loop: X=%v Y=%v", res.Regs["X"], res.Regs["Y"])
	}
}

func TestDiffeqSingleIteration(t *testing.T) {
	p := diffeq.Params{X0: 0, Y0: 1, U0: 0.5, DX: 2, A: 1}
	g := diffeq.Build(p)
	res := mustRun(t, g, FixedDelays(10, 1))
	checkAgainstReference(t, res, p)
	if got := res.LoopIters[findLoop(t, g)]; got != 1 {
		t.Errorf("iterations = %d, want 1", got)
	}
}

func TestWireSafetyUnoptimized(t *testing.T) {
	// In the unoptimized CDFG every arc holds at most one token at a time.
	p := diffeq.DefaultParams()
	for seed := int64(100); seed < 110; seed++ {
		g := diffeq.Build(p)
		res := mustRun(t, g, RandomDelays(seed, 1, 40, 0.1, 3))
		for id, occ := range res.MaxOccupied {
			if occ > 1 {
				t.Errorf("seed %d: arc %d peaked at %d tokens", seed, id, occ)
			}
		}
	}
}

func TestIfProgramBothBranches(t *testing.T) {
	build := func(a, b float64) *cdfg.Graph {
		p := cdfg.NewProgram("max", "ALU")
		p.Init("a", a).Init("b", b).Init("m", 0)
		p.Op("ALU", "c", cdfg.OpGT, "a", "b")
		p.Assign("ALU", "m", "b")
		p.If("ALU", "c")
		p.Assign("ALU", "m", "a")
		p.EndIf()
		g, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	// Taken branch: a > b, m = a.
	res := mustRun(t, build(7, 3), FixedDelays(5, 1))
	if res.Regs["m"] != 7 {
		t.Errorf("taken branch: m = %v, want 7", res.Regs["m"])
	}
	// Untaken: m = b.
	res = mustRun(t, build(2, 9), FixedDelays(5, 1))
	if res.Regs["m"] != 9 {
		t.Errorf("untaken branch: m = %v, want 9", res.Regs["m"])
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
}

func TestNestedLoopIfGCD(t *testing.T) {
	// GCD by repeated subtraction: demonstrates IF inside LOOP.
	build := func(a, b float64) *cdfg.Graph {
		p := cdfg.NewProgram("gcd", "ALU", "CMP")
		p.Init("a", a).Init("b", b)
		p.Op("CMP", "ne", cdfg.OpEQ, "a", "b") // ne = (a==b)
		p.Op("ALU", "run", cdfg.OpSub, "one", "ne")
		p.Init("one", 1).Const("one")
		p.Loop("ALU", "run")
		p.Op("CMP", "gt", cdfg.OpGT, "a", "b")
		p.If("ALU", "gt")
		p.Op("ALU", "a", cdfg.OpSub, "a", "b")
		p.EndIf()
		p.Op("CMP", "lt", cdfg.OpLT, "a", "b")
		p.If("ALU", "lt")
		p.Op("ALU", "b", cdfg.OpSub, "b", "a")
		p.EndIf()
		p.Op("CMP", "ne2", cdfg.OpEQ, "a", "b")
		p.Op("ALU", "run", cdfg.OpSub, "one", "ne2")
		p.EndLoop()
		g, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		return g
	}
	cases := []struct{ a, b, want float64 }{
		{12, 18, 6}, {7, 13, 1}, {9, 9, 9}, {25, 10, 5},
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 5; seed++ {
			res := mustRun(t, build(tc.a, tc.b), RandomDelays(seed, 1, 20, 0.1, 2))
			if res.Regs["a"] != tc.want {
				t.Errorf("gcd(%v,%v) = %v, want %v", tc.a, tc.b, res.Regs["a"], tc.want)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("gcd(%v,%v) seed %d violations: %v", tc.a, tc.b, seed, res.Violations)
			}
		}
	}
}

func TestRunawayLoopDetected(t *testing.T) {
	p := cdfg.NewProgram("forever", "ALU")
	p.Init("c", 1)
	p.Loop("ALU", "c")
	p.Op("ALU", "x", cdfg.OpAdd, "x", "c")
	p.EndLoop()
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewTokenSim(g, FixedDelays(1, 1))
	s.MaxFirings = 500
	if _, err := s.Run(); err == nil {
		t.Error("runaway loop not detected")
	}
}

func TestEvalStmt(t *testing.T) {
	regs := map[string]float64{"a": 7, "b": 3}
	cases := []struct {
		op   cdfg.Op
		want float64
	}{
		{cdfg.OpAdd, 10}, {cdfg.OpSub, 4}, {cdfg.OpMul, 21},
		{cdfg.OpLT, 0}, {cdfg.OpGT, 1}, {cdfg.OpEQ, 0}, {cdfg.OpMod, 1},
	}
	for _, tc := range cases {
		got := evalStmt(cdfg.Stmt{Dst: "d", Op: tc.op, Src1: "a", Src2: "b"}, regs)
		if got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.op, got, tc.want)
		}
	}
	if got := evalStmt(cdfg.Stmt{Dst: "d", Op: cdfg.OpMov, Src1: "a"}, regs); got != 7 {
		t.Errorf("mov: got %v", got)
	}
	if got := evalStmt(cdfg.Stmt{Dst: "d", Op: cdfg.OpMod, Src1: "a", Src2: "z"}, regs); got != 0 {
		t.Errorf("mod by zero: got %v, want 0", got)
	}
}

// Doubly nested loops execute correctly under the token semantics.
func TestNestedLoopsExecute(t *testing.T) {
	build := func() *cdfg.Graph {
		p := cdfg.NewProgram("nested", "ALU")
		p.Const("one", "two", "zero")
		p.InitAll(map[string]float64{
			"one": 1, "two": 2, "zero": 0,
			"i": 0, "j": 0, "acc": 0, "outer": 0, "ri": 1, "rj": 1,
		})
		p.Loop("ALU", "ri")
		p.Assign("ALU", "j", "zero")
		p.Loop("ALU", "rj")
		p.Op("ALU", "acc", cdfg.OpAdd, "acc", "one")
		p.Op("ALU", "j", cdfg.OpAdd, "j", "one")
		p.Op("ALU", "rj", cdfg.OpLT, "j", "two")
		p.EndLoop()
		p.Op("ALU", "outer", cdfg.OpAdd, "outer", "one")
		p.Op("ALU", "i", cdfg.OpAdd, "i", "one")
		p.Op("ALU", "ri", cdfg.OpLT, "i", "two")
		p.Op("ALU", "rj", cdfg.OpLT, "zero", "two")
		p.EndLoop()
		g, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	for seed := int64(0); seed < 6; seed++ {
		res := mustRun(t, build(), RandomDelays(seed, 1, 20, 0.1, 2))
		if res.Regs["acc"] != 4 || res.Regs["outer"] != 2 {
			t.Errorf("seed %d: acc=%v outer=%v, want 4/2", seed, res.Regs["acc"], res.Regs["outer"])
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
	}
}
