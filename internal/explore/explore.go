// Package explore implements design-space exploration over the transform
// set — the "scripts" the paper names as the intended use of its
// transformations (§2.3, §7): sequences of global and local transforms are
// applied and scored, so a designer can trade communication cost, control
// area and performance.
//
// The sweep is a degenerate rewrite search: each variant of the fixed
// ablation grid maps to a search seed plan, and internal/search scores the
// whole batch in one zero-wave run. `asyncsynth search` runs the same
// evaluator with expansion waves enabled.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cdfg"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/synth"
)

// Variant describes one point of the design space: which transforms run.
type Variant struct {
	Name                                        string
	SkipGT1, SkipGT2, SkipGT3, SkipGT4, SkipGT5 bool
	LT                                          bool
}

// AllVariants enumerates the standard exploration script: the unoptimized
// baseline, each transform ablated from the full global pipeline, and the
// fully optimized flows without and with local transforms.
func AllVariants() []Variant {
	return []Variant{
		{Name: "baseline", SkipGT1: true, SkipGT2: true, SkipGT3: true, SkipGT4: true, SkipGT5: true},
		{Name: "no-GT1", SkipGT1: true},
		{Name: "no-GT2", SkipGT2: true},
		{Name: "no-GT3", SkipGT3: true},
		{Name: "no-GT4", SkipGT4: true},
		{Name: "no-GT5", SkipGT5: true},
		{Name: "all-GT"},
		{Name: "all-GT+LT", LT: true},
	}
}

// Plan maps a variant onto the search space's decision vector: skip flags
// carry over, channel elimination keeps the built-in script, and the local
// stage runs the full pipeline on every controller.
func (v Variant) Plan() search.Plan {
	return search.Plan{
		Tag:     v.Name,
		SkipGT1: v.SkipGT1, SkipGT2: v.SkipGT2, SkipGT3: v.SkipGT3,
		SkipGT4: v.SkipGT4, SkipGT5: v.SkipGT5,
		GT5Auto: !v.SkipGT5,
		LT:      v.LT,
	}
}

// Score is the evaluation of one variant.
type Score struct {
	Variant   Variant
	Channels  int
	Multiway  int
	States    int // total controller states
	Trans     int
	Makespan  float64 // token-simulation finish time under the model's mean delays
	Assumed   int     // number of timing assumptions taken
	RunError  string
	Simulated bool
	// Gate-level metrics, filled when the sweep ran with Synthesize
	// (Figure 13's columns per design point).
	Products    int
	Literals    int
	Synthesized bool
	SynthError  string
}

// Failed reports whether the variant's flow, simulation, or requested
// synthesis failed — such a score carries zeroed metrics and must never
// win a comparison.
func (s Score) Failed() bool {
	return s.RunError != "" || s.SynthError != "" || !s.Simulated
}

// Options configures a sweep.
type Options struct {
	// Workers bounds the worker pool (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// Synthesize additionally runs gate-level synthesis per variant and
	// scores product/literal totals. This multiplies sweep cost — the
	// hazard-free minimizer dominates the flow — which is what Minimizer
	// amortizes.
	Synthesize bool
	// Minimizer is the shared hfmin memoization layer (one cache per
	// sweep): variants whose ablated transform leaves a controller's AFSM
	// untouched re-pose identical minimization problems, which become
	// cache hits instead of repeated solves.
	Minimizer synth.Minimizer
	// Solver is the covering backend for exact minimizations when no
	// Minimizer is supplied (see logic.Solver and core.Options.Solver).
	Solver logic.Solver
}

// Evaluate runs one variant on a fresh clone of the graph.
func Evaluate(g *cdfg.Graph, v Variant) Score {
	return SweepWith(g, []Variant{v}, Options{Workers: 1})[0]
}

// Sweep evaluates every variant.
func Sweep(g *cdfg.Graph, variants []Variant) []Score {
	return SweepWith(g, variants, Options{Workers: 1})
}

// SweepParallel evaluates every variant concurrently on up to `workers`
// goroutines (0 = GOMAXPROCS, 1 = equivalent to Sweep). Each variant runs
// the whole flow on a private clone of the graph, and scores land in
// index-addressed slots, so the result slice is identical to Sweep's,
// element for element.
func SweepParallel(g *cdfg.Graph, variants []Variant, workers int) []Score {
	return SweepWith(g, variants, Options{Workers: workers})
}

// SweepWith is the fully-configurable sweep, implemented as a degenerate
// rewrite search: the variants become seed plans of a zero-wave
// search.Run, whose batch evaluation carries the concurrency contract
// (deterministic at every worker count and cache state), and the scored
// seeds convert back one-to-one.
func SweepWith(g *cdfg.Graph, variants []Variant, opt Options) []Score {
	plans := make([]search.Plan, len(variants))
	for i, v := range variants {
		plans[i] = v.Plan()
	}
	res, _ := search.Run(g, search.Options{
		Workers:    opt.Workers,
		Waves:      -1, // score the seeds only
		Budget:     len(plans),
		Synthesize: opt.Synthesize,
		Minimizer:  opt.Minimizer,
		Solver:     opt.Solver,
		Seeds:      plans,
	})
	obs.Add("explore/variants", int64(len(variants)))
	out := make([]Score, len(variants))
	for i, v := range variants {
		out[i] = fromState(v, res.Seeds[i])
		if out[i].RunError != "" || out[i].SynthError != "" {
			obs.Add("explore/errors", 1)
		}
	}
	return out
}

// fromState converts a scored search state back into the sweep's score row.
func fromState(v Variant, st search.State) Score {
	sc := st.Score
	return Score{
		Variant:     v,
		Channels:    sc.Channels,
		Multiway:    sc.Multiway,
		States:      sc.States,
		Trans:       sc.Trans,
		Makespan:    sc.Makespan,
		Assumed:     sc.Assumed,
		RunError:    sc.RunError,
		Simulated:   sc.Simulated,
		Products:    sc.Products,
		Literals:    sc.Literals,
		Synthesized: sc.Synthesized,
		SynthError:  sc.SynthError,
	}
}

// Format renders a sweep as a table. Gate-level columns appear when any
// score carries them (a sweep run with Options.Synthesize).
func Format(scores []Score) string {
	gate := false
	for _, sc := range scores {
		if sc.Synthesized || sc.SynthError != "" {
			gate = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %6s %7s %7s %9s %8s",
		"variant", "#channels", "#mway", "states", "trans", "makespan", "assumed")
	if gate {
		fmt.Fprintf(&b, " %7s %7s", "#prod", "#lits")
	}
	b.WriteString("\n")
	for _, sc := range scores {
		if sc.RunError != "" {
			fmt.Fprintf(&b, "%-12s ERROR: %s\n", sc.Variant.Name, sc.RunError)
			continue
		}
		ms := "-"
		if sc.Simulated {
			ms = fmt.Sprintf("%9.1f", sc.Makespan)
		}
		fmt.Fprintf(&b, "%-12s %9d %6d %7d %7d %9s %8d",
			sc.Variant.Name, sc.Channels, sc.Multiway, sc.States, sc.Trans, ms, sc.Assumed)
		if gate {
			if sc.Synthesized {
				fmt.Fprintf(&b, " %7d %7d", sc.Products, sc.Literals)
			} else if sc.SynthError != "" {
				fmt.Fprintf(&b, " SYNTH ERROR: %s", sc.SynthError)
			} else {
				fmt.Fprintf(&b, " %7s %7s", "-", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Best returns the variant minimizing the given metric among fully scored
// variants. A failed variant — flow error, failed simulation, or failed
// requested synthesis — carries zeroed metrics that would otherwise sort
// as a spurious optimum, so it is never eligible.
func Best(scores []Score, metric func(Score) float64) (Score, bool) {
	var best Score
	found := false
	for _, sc := range scores {
		if sc.Failed() {
			continue
		}
		if !found || metric(sc) < metric(best) {
			best = sc
			found = true
		}
	}
	return best, found
}

// Pareto returns the scores not dominated on (channels, states, makespan).
func Pareto(scores []Score) []Score {
	var valid []Score
	for _, sc := range scores {
		if !sc.Failed() {
			valid = append(valid, sc)
		}
	}
	var out []Score
	for i, a := range valid {
		dominated := false
		for j, b := range valid {
			if i == j {
				continue
			}
			if b.Channels <= a.Channels && b.States <= a.States && b.Makespan <= a.Makespan &&
				(b.Channels < a.Channels || b.States < a.States || b.Makespan < a.Makespan) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Variant.Name < out[j].Variant.Name })
	return out
}
