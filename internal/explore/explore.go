// Package explore implements design-space exploration over the transform
// set — the "scripts" the paper names as the intended use of its
// transformations (§2.3, §7): sequences of global and local transforms are
// applied and scored, so a designer can trade communication cost, control
// area and performance.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/timing"
	"repro/internal/transform"
)

// Variant describes one point of the design space: which transforms run.
type Variant struct {
	Name                                        string
	SkipGT1, SkipGT2, SkipGT3, SkipGT4, SkipGT5 bool
	LT                                          bool
}

// AllVariants enumerates the standard exploration script: the unoptimized
// baseline, each transform ablated from the full global pipeline, and the
// fully optimized flows without and with local transforms.
func AllVariants() []Variant {
	return []Variant{
		{Name: "baseline", SkipGT1: true, SkipGT2: true, SkipGT3: true, SkipGT4: true, SkipGT5: true},
		{Name: "no-GT1", SkipGT1: true},
		{Name: "no-GT2", SkipGT2: true},
		{Name: "no-GT3", SkipGT3: true},
		{Name: "no-GT4", SkipGT4: true},
		{Name: "no-GT5", SkipGT5: true},
		{Name: "all-GT"},
		{Name: "all-GT+LT", LT: true},
	}
}

// Score is the evaluation of one variant.
type Score struct {
	Variant   Variant
	Channels  int
	Multiway  int
	States    int // total controller states
	Trans     int
	Makespan  float64 // token-simulation finish time under the model's mean delays
	Assumed   int     // number of timing assumptions taken
	RunError  string
	Simulated bool
	// Gate-level metrics, filled when the sweep ran with Synthesize
	// (Figure 13's columns per design point).
	Products    int
	Literals    int
	Synthesized bool
	SynthError  string
}

// Options configures a sweep.
type Options struct {
	// Workers bounds the worker pool (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// Synthesize additionally runs gate-level synthesis per variant and
	// scores product/literal totals. This multiplies sweep cost — the
	// hazard-free minimizer dominates the flow — which is what Minimizer
	// amortizes.
	Synthesize bool
	// Minimizer is the shared hfmin memoization layer (one cache per
	// sweep): variants whose ablated transform leaves a controller's AFSM
	// untouched re-pose identical minimization problems, which become
	// cache hits instead of repeated solves.
	Minimizer synth.Minimizer
	// Solver is the covering backend for exact minimizations when no
	// Minimizer is supplied (see logic.Solver and core.Options.Solver).
	Solver logic.Solver
}

// Evaluate runs one variant on a fresh clone of the graph.
func Evaluate(g *cdfg.Graph, v Variant) Score {
	return evaluateOn(g.Clone(), v, Options{Workers: 1})
}

// evaluateOn scores one variant on a private working graph (which it
// mutates), running the flow's internal fan-out on sweep.Workers. Each
// evaluation is one obs span (stage "explore", unit = variant name), so a
// traced sweep shows every variant's whole-flow cost side by side.
func evaluateOn(work *cdfg.Graph, v Variant, sweep Options) Score {
	sp := obs.Start("explore", v.Name)
	defer sp.End()
	obs.Add("explore/variants", 1)
	sc := Score{Variant: v}
	opt := core.Options{
		Level:  core.OptimizedGT,
		Timing: timing.DefaultModel(),
		Transform: transform.Options{
			Timing:  timing.DefaultModel(),
			Unroll:  3,
			SkipGT1: v.SkipGT1, SkipGT2: v.SkipGT2, SkipGT3: v.SkipGT3,
			SkipGT4: v.SkipGT4, SkipGT5: v.SkipGT5,
		},
	}
	opt.Parallelism = sweep.Workers
	opt.Minimizer = sweep.Minimizer
	opt.Solver = sweep.Solver
	if v.LT {
		opt.Level = core.OptimizedGTLT
	}
	s, err := core.Run(work, opt)
	if err != nil {
		sc.RunError = err.Error()
		obs.Add("explore/errors", 1)
		return sc
	}
	sc.Channels = s.Channels()
	sc.Multiway = s.MultiwayChannels()
	for _, m := range s.Machines {
		sc.States += m.NumStates()
		sc.Trans += m.NumTransitions()
	}
	sc.Assumed = len(s.Assumptions())
	// Token-level makespan under the transformed graph (controller-level
	// timing depends on the datapath model; the token makespan isolates the
	// concurrency effect of the global transforms).
	res, err := sim.NewTokenSim(work, sim.FromModel(timing.DefaultModel(), 1)).Run()
	if err == nil && res.Finished {
		sc.Makespan = res.FinishTime
		sc.Simulated = true
	}
	if sweep.Synthesize {
		results, err := s.SynthesizeLogic()
		if err != nil {
			sc.SynthError = err.Error()
			obs.Add("explore/errors", 1)
			return sc
		}
		for _, r := range results {
			sc.Products += r.Products
			sc.Literals += r.Literals
		}
		sc.Synthesized = true
	}
	return sc
}

// Sweep evaluates every variant.
func Sweep(g *cdfg.Graph, variants []Variant) []Score {
	out := make([]Score, 0, len(variants))
	for _, v := range variants {
		out = append(out, Evaluate(g, v))
	}
	return out
}

// SweepParallel evaluates every variant concurrently on up to `workers`
// goroutines (0 = GOMAXPROCS, 1 = equivalent to Sweep). The graph is
// cloned once per variant up front — on the calling goroutine, so the
// source graph is never touched concurrently — and each variant runs the
// whole flow on its private clone. Scores land in index-addressed slots,
// so the result slice is identical to Sweep's, element for element.
func SweepParallel(g *cdfg.Graph, variants []Variant, workers int) []Score {
	return SweepWith(g, variants, Options{Workers: workers})
}

// SweepWith is the fully-configurable sweep: SweepParallel's concurrency
// contract plus optional gate-level scoring behind a shared memoization
// layer. Scores are deterministic at every worker count and cache state.
func SweepWith(g *cdfg.Graph, variants []Variant, opt Options) []Score {
	clones := make([]*cdfg.Graph, len(variants))
	for i := range variants {
		clones[i] = g.Clone()
	}
	out, _ := par.NamedMap("explore", opt.Workers, variants, func(i int, v Variant) (Score, error) {
		return evaluateOn(clones[i], v, opt), nil
	})
	return out
}

// Format renders a sweep as a table. Gate-level columns appear when any
// score carries them (a sweep run with Options.Synthesize).
func Format(scores []Score) string {
	gate := false
	for _, sc := range scores {
		if sc.Synthesized || sc.SynthError != "" {
			gate = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %6s %7s %7s %9s %8s",
		"variant", "#channels", "#mway", "states", "trans", "makespan", "assumed")
	if gate {
		fmt.Fprintf(&b, " %7s %7s", "#prod", "#lits")
	}
	b.WriteString("\n")
	for _, sc := range scores {
		if sc.RunError != "" {
			fmt.Fprintf(&b, "%-12s ERROR: %s\n", sc.Variant.Name, sc.RunError)
			continue
		}
		ms := "-"
		if sc.Simulated {
			ms = fmt.Sprintf("%9.1f", sc.Makespan)
		}
		fmt.Fprintf(&b, "%-12s %9d %6d %7d %7d %9s %8d",
			sc.Variant.Name, sc.Channels, sc.Multiway, sc.States, sc.Trans, ms, sc.Assumed)
		if gate {
			if sc.Synthesized {
				fmt.Fprintf(&b, " %7d %7d", sc.Products, sc.Literals)
			} else if sc.SynthError != "" {
				fmt.Fprintf(&b, " SYNTH ERROR: %s", sc.SynthError)
			} else {
				fmt.Fprintf(&b, " %7s %7s", "-", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Best returns the variant minimizing the given metric among simulated,
// error-free scores.
func Best(scores []Score, metric func(Score) float64) (Score, bool) {
	var best Score
	found := false
	for _, sc := range scores {
		if sc.RunError != "" {
			continue
		}
		if !found || metric(sc) < metric(best) {
			best = sc
			found = true
		}
	}
	return best, found
}

// Pareto returns the scores not dominated on (channels, states, makespan).
func Pareto(scores []Score) []Score {
	var valid []Score
	for _, sc := range scores {
		if sc.RunError == "" && sc.Simulated {
			valid = append(valid, sc)
		}
	}
	var out []Score
	for i, a := range valid {
		dominated := false
		for j, b := range valid {
			if i == j {
				continue
			}
			if b.Channels <= a.Channels && b.States <= a.States && b.Makespan <= a.Makespan &&
				(b.Channels < a.Channels || b.States < a.States || b.Makespan < a.Makespan) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Variant.Name < out[j].Variant.Name })
	return out
}
