package explore

import (
	"strings"
	"testing"

	"repro/internal/diffeq"
)

func TestSweepDiffeq(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	scores := Sweep(g, AllVariants())
	if len(scores) != len(AllVariants()) {
		t.Fatalf("scores = %d", len(scores))
	}
	table := Format(scores)
	t.Logf("\n%s", table)
	byName := map[string]Score{}
	for _, sc := range scores {
		if sc.RunError != "" {
			t.Fatalf("%s: %s", sc.Variant.Name, sc.RunError)
		}
		byName[sc.Variant.Name] = sc
	}
	// The ablations tell the paper's story: GT5 drives channel reduction,
	// GT1 drives performance, LT drives controller size.
	if byName["no-GT5"].Channels <= byName["all-GT"].Channels {
		t.Errorf("removing GT5 should cost channels: %d vs %d",
			byName["no-GT5"].Channels, byName["all-GT"].Channels)
	}
	// GT5 deliberately trades concurrency for wires (§3.5: added constraint
	// arcs may delay operations), so performance claims compare the
	// GT5-free points: GT1–GT4 must beat the baseline, and dropping GT1
	// from them must cost performance.
	if byName["no-GT5"].Makespan >= byName["baseline"].Makespan {
		t.Errorf("GT1-GT4 should beat the baseline: %.1f vs %.1f",
			byName["no-GT5"].Makespan, byName["baseline"].Makespan)
	}
	if byName["no-GT1"].Makespan <= byName["no-GT5"].Makespan {
		t.Errorf("removing GT1 should cost performance: %.1f vs %.1f",
			byName["no-GT1"].Makespan, byName["no-GT5"].Makespan)
	}
	if byName["all-GT+LT"].States >= byName["all-GT"].States {
		t.Errorf("LT should shrink controllers: %d vs %d",
			byName["all-GT+LT"].States, byName["all-GT"].States)
	}
	if byName["baseline"].Channels <= byName["all-GT"].Channels {
		t.Error("baseline should have more channels than the optimized flow")
	}
	if !strings.Contains(table, "all-GT+LT") {
		t.Error("table missing variants")
	}
}

func TestBestAndPareto(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	scores := Sweep(g, AllVariants())
	best, ok := Best(scores, func(s Score) float64 { return float64(s.Channels) })
	if !ok {
		t.Fatal("no best")
	}
	if best.Channels > 5 {
		t.Errorf("best channel count = %d, want <= 5", best.Channels)
	}
	pareto := Pareto(scores)
	if len(pareto) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The fully optimized variants must be on the front.
	names := map[string]bool{}
	for _, sc := range pareto {
		names[sc.Variant.Name] = true
	}
	if !names["all-GT"] && !names["all-GT+LT"] {
		t.Errorf("optimized flow missing from Pareto front: %v", names)
	}
}
