package explore

import (
	"strings"
	"testing"

	"repro/internal/diffeq"
)

func TestSweepDiffeq(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	scores := Sweep(g, AllVariants())
	if len(scores) != len(AllVariants()) {
		t.Fatalf("scores = %d", len(scores))
	}
	table := Format(scores)
	t.Logf("\n%s", table)
	byName := map[string]Score{}
	for _, sc := range scores {
		if sc.RunError != "" {
			t.Fatalf("%s: %s", sc.Variant.Name, sc.RunError)
		}
		byName[sc.Variant.Name] = sc
	}
	// The ablations tell the paper's story: GT5 drives channel reduction,
	// GT1 drives performance, LT drives controller size.
	if byName["no-GT5"].Channels <= byName["all-GT"].Channels {
		t.Errorf("removing GT5 should cost channels: %d vs %d",
			byName["no-GT5"].Channels, byName["all-GT"].Channels)
	}
	// GT5 deliberately trades concurrency for wires (§3.5: added constraint
	// arcs may delay operations), so performance claims compare the
	// GT5-free points: GT1–GT4 must beat the baseline, and dropping GT1
	// from them must cost performance.
	if byName["no-GT5"].Makespan >= byName["baseline"].Makespan {
		t.Errorf("GT1-GT4 should beat the baseline: %.1f vs %.1f",
			byName["no-GT5"].Makespan, byName["baseline"].Makespan)
	}
	if byName["no-GT1"].Makespan <= byName["no-GT5"].Makespan {
		t.Errorf("removing GT1 should cost performance: %.1f vs %.1f",
			byName["no-GT1"].Makespan, byName["no-GT5"].Makespan)
	}
	if byName["all-GT+LT"].States >= byName["all-GT"].States {
		t.Errorf("LT should shrink controllers: %d vs %d",
			byName["all-GT+LT"].States, byName["all-GT"].States)
	}
	if byName["baseline"].Channels <= byName["all-GT"].Channels {
		t.Error("baseline should have more channels than the optimized flow")
	}
	if !strings.Contains(table, "all-GT+LT") {
		t.Error("table missing variants")
	}
}

func TestBestAndPareto(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	scores := Sweep(g, AllVariants())
	best, ok := Best(scores, func(s Score) float64 { return float64(s.Channels) })
	if !ok {
		t.Fatal("no best")
	}
	if best.Channels > 5 {
		t.Errorf("best channel count = %d, want <= 5", best.Channels)
	}
	pareto := Pareto(scores)
	if len(pareto) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The fully optimized variants must be on the front.
	names := map[string]bool{}
	for _, sc := range pareto {
		names[sc.Variant.Name] = true
	}
	if !names["all-GT"] && !names["all-GT+LT"] {
		t.Errorf("optimized flow missing from Pareto front: %v", names)
	}
}

// TestBestSkipsFailedScores is the regression for the sweep scoring bug:
// a variant whose run or synthesis failed carries zeroed metrics
// (makespan 0, literals 0) that used to sort as a spurious optimum. Failed
// scores of every flavor must lose to any fully scored variant, and a
// sweep with no survivors must report none.
func TestBestSkipsFailedScores(t *testing.T) {
	good := Score{Variant: Variant{Name: "good"}, Makespan: 120, Literals: 80, Simulated: true}
	failedRun := Score{Variant: Variant{Name: "run-err"}, RunError: "boom"}
	failedSynth := Score{Variant: Variant{Name: "synth-err"}, Simulated: true, SynthError: "boom"}
	unsimulated := Score{Variant: Variant{Name: "no-sim"}}
	scores := []Score{failedRun, failedSynth, unsimulated, good}
	for _, metric := range []func(Score) float64{
		func(s Score) float64 { return s.Makespan },
		func(s Score) float64 { return float64(s.Literals) },
	} {
		best, ok := Best(scores, metric)
		if !ok {
			t.Fatal("no best found")
		}
		if best.Variant.Name != "good" {
			t.Errorf("failed variant won: %s", best.Variant.Name)
		}
	}
	if _, ok := Best([]Score{failedRun, failedSynth, unsimulated}, func(s Score) float64 { return s.Makespan }); ok {
		t.Error("Best reported a winner among failed scores")
	}
}
