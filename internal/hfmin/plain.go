package hfmin

import "repro/internal/logic"

// MinimizePlain computes a two-level cover of the specification ignoring
// hazards: it covers the ON-set with ordinary prime implicants, minimizing
// product count first and literals second. It exists as the ablation
// baseline for the hazard-free machinery (how much do required cubes and
// privileged-cube shrinking cost?).
func MinimizePlain(spec Spec) (Result, error) {
	res, err := Analyze(spec)
	if err != nil {
		return res, err
	}
	// Rows: the ON cubes themselves must be covered (as unions, but for the
	// covering matrix we require single-product containment of each ON cube;
	// for burst-mode specs ON cubes are exactly the required cubes so this
	// matches the hazard-free problem structure minus the dhf constraints).
	res.Required = nil
	seen := map[[2]uint64]bool{}
	for _, c := range res.OnSet.Cubes {
		if !seen[c.Key()] {
			seen[c.Key()] = true
			res.Required = append(res.Required, c)
		}
	}
	if len(res.Required) == 0 {
		res.Cover = logic.Cover{N: spec.N}
		res.Exact = true
		return res, nil
	}
	res.Privileged = nil
	res.Primes = logic.PrimesContaining(res.Required, res.OffSet)
	prob := &logic.CoveringProblem{NumCols: len(res.Primes)}
	prob.Cost = make([]int, len(res.Primes))
	const productWeight = 1 << 12
	for i, p := range res.Primes {
		prob.Cost[i] = productWeight + p.Literals()
	}
	for _, r := range res.Required {
		var row []int
		for i, p := range res.Primes {
			if p.Contains(r) {
				row = append(row, i)
			}
		}
		prob.Rows = append(prob.Rows, row)
	}
	cols, exact := prob.Solve()
	if cols == nil {
		return res, ErrInfeasible
	}
	res.Exact = exact
	res.Cover = logic.Cover{N: spec.N}
	for _, c := range cols {
		res.Cover.Add(res.Primes[c])
	}
	return res, nil
}
