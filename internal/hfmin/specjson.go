package hfmin

import (
	"encoding/json"
	"fmt"

	"repro/internal/logic"
)

// specJSON is the on-disk form of a Spec used by test fixtures and the
// scripts/capturecover worst-case capture tool. Cubes use their string
// form ("01-…": 0, 1 or dash per variable), which is stable, diffable and
// independent of the internal mask representation.
type specJSON struct {
	Comment     string           `json:"comment,omitempty"`
	N           int              `json:"n"`
	Transitions []transitionJSON `json:"transitions"`
}

type transitionJSON struct {
	Kind  int    `json:"kind"`
	Start string `json:"start"`
	End   string `json:"end"`
}

// MarshalSpec serializes a spec (plus an optional comment) as indented
// JSON.
func MarshalSpec(spec Spec, comment string) ([]byte, error) {
	out := specJSON{Comment: comment, N: spec.N}
	for _, t := range spec.Transitions {
		out.Transitions = append(out.Transitions, transitionJSON{
			Kind:  int(t.Kind),
			Start: t.Start.String(),
			End:   t.End.String(),
		})
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// UnmarshalSpec parses a spec serialized by MarshalSpec.
func UnmarshalSpec(data []byte) (Spec, error) {
	var in specJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return Spec{}, err
	}
	spec := Spec{N: in.N}
	for i, t := range in.Transitions {
		start, err := logic.ParseCube(t.Start)
		if err != nil {
			return Spec{}, fmt.Errorf("hfmin: transition %d start: %w", i, err)
		}
		end, err := logic.ParseCube(t.End)
		if err != nil {
			return Spec{}, fmt.Errorf("hfmin: transition %d end: %w", i, err)
		}
		spec.Transitions = append(spec.Transitions, Transition{
			Start: start,
			End:   end,
			Kind:  Kind(t.Kind),
		})
	}
	return spec, nil
}
