package hfmin

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/logic"
)

func tr(start, end string, k Kind) Transition {
	return Transition{Start: logic.MustCube(start), End: logic.MustCube(end), Kind: k}
}

func TestAnalyzeStatic(t *testing.T) {
	spec := Spec{N: 2, Transitions: []Transition{
		tr("00", "01", Static1),
		tr("10", "11", Static0),
	}}
	res, err := Analyze(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Required) != 1 || res.Required[0].String() != "0-" {
		t.Errorf("required = %v, want [0-]", res.Required)
	}
	if res.OffSet.Len() != 1 || res.OffSet.Cubes[0].String() != "1-" {
		t.Errorf("off = %v", res.OffSet)
	}
	if len(res.Privileged) != 0 {
		t.Errorf("static transitions must not be privileged")
	}
}

func TestAnalyzeFall(t *testing.T) {
	// Falling transition from 00 to 11 (both inputs rise, f falls at 11).
	spec := Spec{N: 2, Transitions: []Transition{tr("00", "11", Fall)}}
	res, err := Analyze(spec)
	if err != nil {
		t.Fatal(err)
	}
	// ON = {0-, -0}, OFF = {11}, required = {0-, -0}, privileged needs 00.
	if len(res.Required) != 2 {
		t.Fatalf("required = %v", res.Required)
	}
	names := map[string]bool{}
	for _, r := range res.Required {
		names[r.String()] = true
	}
	if !names["0-"] || !names["-0"] {
		t.Errorf("required = %v, want {0-, -0}", res.Required)
	}
	if res.OffSet.Cubes[0].String() != "11" {
		t.Errorf("off = %v", res.OffSet)
	}
	if len(res.Privileged) != 1 || res.Privileged[0].Need.String() != "00" {
		t.Errorf("privileged = %+v", res.Privileged)
	}
}

func TestAnalyzeRise(t *testing.T) {
	spec := Spec{N: 2, Transitions: []Transition{tr("00", "11", Rise)}}
	res, err := Analyze(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Required) != 1 || res.Required[0].String() != "11" {
		t.Errorf("required = %v, want [11]", res.Required)
	}
	if res.OnSet.Len() != 1 || res.OnSet.Cubes[0].String() != "11" {
		t.Errorf("on = %v", res.OnSet)
	}
	if len(res.Privileged) != 1 || res.Privileged[0].Need.String() != "11" {
		t.Errorf("privileged = %+v", res.Privileged)
	}
}

func TestAnalyzeInconsistent(t *testing.T) {
	spec := Spec{N: 2, Transitions: []Transition{
		tr("0-", "0-", Static1),
		tr("00", "01", Static0),
	}}
	if _, err := Analyze(spec); err == nil {
		t.Error("overlapping ON/OFF must be rejected")
	}
}

func TestAnalyzeDegenerateDynamic(t *testing.T) {
	spec := Spec{N: 2, Transitions: []Transition{tr("00", "00", Fall)}}
	if _, err := Analyze(spec); err == nil {
		t.Error("dynamic transition with no changing variables must be rejected")
	}
}

func TestMinimizeSimple(t *testing.T) {
	// f = x0' over 2 vars, specified by two static transitions.
	spec := Spec{N: 2, Transitions: []Transition{
		tr("00", "01", Static1),
		tr("10", "11", Static0),
	}}
	res, err := Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Products() != 1 || res.Literals() != 1 {
		t.Errorf("products=%d literals=%d cover=%s", res.Products(), res.Literals(), res.Cover)
	}
	if err := Verify(res, res.Cover); err != nil {
		t.Error(err)
	}
}

// The canonical hazard example: f = ab + a'c with transition a: 1→0 while
// b=c=1. A non-hazard-free minimizer may produce {ab, a'c} which glitches;
// the hazard-free cover must include the consensus product bc.
func TestMinimizeNeedsConsensus(t *testing.T) {
	// Variables: a=0, b=1, c=2.
	spec := Spec{N: 3, Transitions: []Transition{
		// Static 1 regions establishing ab and a'c.
		tr("110", "111", Static1), // ab, c free-ish
		tr("001", "011", Static1), // a'c
		// The hazardous transition: from a=1,b=1,c=1 to a=0,b=1,c=1, f stays 1.
		tr("111", "011", Static1),
		// Off behaviour.
		tr("100", "101", Static0), // ab' with c: f=0 at 100,101
		tr("000", "010", Static0), // a'c': f=0
	}}
	res, err := Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res, res.Cover); err != nil {
		t.Fatalf("cover %s: %v", res.Cover, err)
	}
	// The static 1→1 transition cube -11 must be inside a single product.
	found := false
	for _, p := range res.Cover.Cubes {
		if p.Contains(logic.MustCube("-11")) {
			found = true
		}
	}
	if !found {
		t.Errorf("cover %s lacks a product containing the consensus cube -11", res.Cover)
	}
}

func TestMinimizeFallTransitionHazardFree(t *testing.T) {
	// f falls when both inputs of a 2-input burst arrive.
	spec := Spec{N: 3, Transitions: []Transition{
		tr("00-", "11-", Fall),
	}}
	res, err := Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res, res.Cover); err != nil {
		t.Fatalf("cover %s: %v", res.Cover, err)
	}
	// Both required cubes 0-- and -0- must appear (no single dhf implicant
	// contains both).
	if res.Products() != 2 {
		t.Errorf("products = %d (%s), want 2", res.Products(), res.Cover)
	}
}

func TestMinimizeRiseAvoidsIllegalIntersection(t *testing.T) {
	// Rising transition 00→11; another ON region 10- must not produce a
	// product that cuts across the transition cube without containing 11.
	spec := Spec{N: 2, Transitions: []Transition{
		tr("00", "11", Rise),
	}}
	res, err := Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res, res.Cover); err != nil {
		t.Fatalf("%s: %v", res.Cover, err)
	}
}

func TestMinimizeEmptySpec(t *testing.T) {
	res, err := Minimize(Spec{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Products() != 0 {
		t.Errorf("empty spec should give empty cover, got %s", res.Cover)
	}
}

func TestMinimizePlainSmallerOrEqual(t *testing.T) {
	// The plain minimizer ignores hazard constraints so it can never need
	// more products than the hazard-free one.
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		spec := randomSpec(r, 4, 3)
		hf, errHF := Minimize(spec)
		if errHF != nil {
			continue // random spec may be inconsistent or infeasible
		}
		plain, errP := MinimizePlain(spec)
		if errP != nil {
			t.Fatalf("plain failed where hazard-free succeeded: %v", errP)
		}
		if plain.Products() > hf.Products() {
			t.Errorf("iter %d: plain %d products > hazard-free %d", iter, plain.Products(), hf.Products())
		}
	}
}

// randomSpec builds a random consistent-ish spec from disjoint transition
// cubes (consistency is not guaranteed; callers skip errors).
func randomSpec(r *rand.Rand, n, k int) Spec {
	spec := Spec{N: n}
	for i := 0; i < k; i++ {
		start := logic.FullCube(n)
		for v := 0; v < n; v++ {
			if r.Intn(3) > 0 {
				if r.Intn(2) == 0 {
					start = start.With(v, logic.Zero)
				} else {
					start = start.With(v, logic.One)
				}
			}
		}
		end := start
		changed := false
		for v := 0; v < n; v++ {
			if start.Get(v) != logic.Dash && r.Intn(3) == 0 {
				if start.Get(v) == logic.Zero {
					end = end.With(v, logic.One)
				} else {
					end = end.With(v, logic.Zero)
				}
				changed = true
			}
		}
		kind := Kind(r.Intn(4))
		if !changed && (kind == Fall || kind == Rise) {
			kind = Static1
		}
		spec.Transitions = append(spec.Transitions, Transition{Start: start, End: end, Kind: kind})
	}
	return spec
}

func TestMinimizeRandomVerifies(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ok := 0
	for iter := 0; iter < 100; iter++ {
		spec := randomSpec(r, 5, 4)
		res, err := Minimize(spec)
		if err != nil {
			continue
		}
		if verr := Verify(res, res.Cover); verr != nil {
			t.Fatalf("iter %d: cover %s fails verification: %v", iter, res.Cover, verr)
		}
		ok++
	}
	if ok == 0 {
		t.Error("no random spec minimized successfully; generator too hostile")
	}
}

func TestTransitionCube(t *testing.T) {
	x := tr("00", "11", Fall)
	if c := x.Cube(); c.String() != "--" {
		t.Errorf("transition cube = %s", c)
	}
}

// The heuristic mode must produce valid hazard-free covers that are never
// smaller than the exact ones.
func TestMinimizeHeuristicValid(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	compared := 0
	for iter := 0; iter < 60; iter++ {
		spec := randomSpec(r, 5, 4)
		exact, errE := Minimize(spec)
		heur, errH := MinimizeHeuristic(spec)
		if (errE == nil) != (errH == nil) {
			t.Fatalf("iter %d: exact err %v, heuristic err %v", iter, errE, errH)
		}
		if errE != nil {
			continue
		}
		if err := Verify(heur, heur.Cover); err != nil {
			t.Fatalf("iter %d: heuristic cover invalid: %v", iter, err)
		}
		if heur.Products() < exact.Products() {
			t.Errorf("iter %d: heuristic %d products < exact %d", iter, heur.Products(), exact.Products())
		}
		compared++
	}
	if compared == 0 {
		t.Error("no instances compared")
	}
}

func TestHeuristicNotExactFlag(t *testing.T) {
	spec := Spec{N: 2, Transitions: []Transition{
		tr("00", "01", Static1),
		tr("10", "11", Static0),
	}}
	res, err := MinimizeHeuristic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("heuristic result must not claim exactness")
	}
}

// TestCanonicalSorts: Canonical orders transitions by (kind, start, end)
// and is idempotent; the input spec is never mutated.
func TestCanonicalSorts(t *testing.T) {
	spec := Spec{N: 3, Transitions: []Transition{
		tr("1-0", "1-0", Static1),
		tr("011", "011", Static0),
		tr("10-", "11-", Rise),
		tr("00-", "00-", Static0),
	}}
	orig := append([]Transition(nil), spec.Transitions...)
	canon := spec.Canonical()
	for i := 1; i < len(canon.Transitions); i++ {
		if !transLess(canon.Transitions[i-1], canon.Transitions[i]) {
			t.Errorf("canonical transitions %d and %d out of order", i-1, i)
		}
	}
	again := canon.Canonical()
	for i := range canon.Transitions {
		if again.Transitions[i] != canon.Transitions[i] {
			t.Error("Canonical is not idempotent")
			break
		}
	}
	for i := range orig {
		if spec.Transitions[i] != orig[i] {
			t.Error("Canonical mutated its receiver")
			break
		}
	}
}

// TestMinimizeOrderIndependent: minimization results are bit-identical
// regardless of the order transitions were inserted in — the determinism
// property content-addressed memoization relies on (a cache hit keyed on
// the canonical spec must equal what the miss path would compute).
func TestMinimizeOrderIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	compared := 0
	for iter := 0; iter < 120; iter++ {
		spec := randomSpec(r, 5, 4)
		shuffled := Spec{N: spec.N, Transitions: append([]Transition(nil), spec.Transitions...)}
		r.Shuffle(len(shuffled.Transitions), func(i, j int) {
			shuffled.Transitions[i], shuffled.Transitions[j] = shuffled.Transitions[j], shuffled.Transitions[i]
		})
		for _, minimize := range []func(Spec) (Result, error){Minimize, MinimizeHeuristic} {
			a, errA := minimize(spec)
			b, errB := minimize(shuffled)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("iter %d: original err %v, shuffled err %v", iter, errA, errB)
			}
			if errA != nil {
				if errA.Error() != errB.Error() {
					t.Errorf("iter %d: error %q differs from shuffled %q", iter, errA, errB)
				}
				continue
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("iter %d: shuffled spec minimized differently\n got %+v\nwant %+v", iter, b, a)
			}
			compared++
		}
	}
	if compared == 0 {
		t.Fatal("no feasible random specs; generator is broken")
	}
}

// TestMinimizeHeuristicRandomVerifies extends the exact-solver property
// test to the heuristic path: every successful result must verify.
func TestMinimizeHeuristicRandomVerifies(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ok := 0
	for iter := 0; iter < 100; iter++ {
		spec := randomSpec(r, 5, 4)
		res, err := MinimizeHeuristic(spec)
		if err != nil {
			continue
		}
		if verr := Verify(res, res.Cover); verr != nil {
			t.Fatalf("iter %d: heuristic cover %s fails verification: %v", iter, res.Cover, verr)
		}
		ok++
	}
	if ok == 0 {
		t.Fatal("no random spec was feasible; generator is broken")
	}
}
