// Package hfmin implements hazard-free two-level logic minimization for
// functions specified by multiple-input-change transitions, following the
// required-cube / dhf-prime-implicant framework of Nowick–Dill and the exact
// and heuristic algorithms of Theobald–Nowick (TCAD'98). It stands in for
// the MINIMALIST and 3D minimizers used in the paper.
//
// A specification is a set of input transitions. Each transition is a cube
// [A,B] (the supercube of start and end states) together with the function
// behaviour: static 0, static 1, falling (1→0) or rising (0→1). Within a
// dynamic transition the function changes exactly when the full input burst
// has arrived, which is the extended-burst-mode semantics of the paper's
// controllers.
//
// The minimizer computes, per transition:
//
//   - ON-set and OFF-set care cubes;
//   - required cubes: subfunctions that must each be covered by a single
//     product to avoid logic hazards;
//   - privileged cubes: dynamic transition cubes that no product may
//     intersect without containing the transition's ON end state.
//
// It then generates dynamic-hazard-free prime implicants (expansions of
// required cubes against the OFF-set, shrunk to remove illegal
// intersections) and solves a unate covering problem, minimizing product
// count first and literal count second.
package hfmin

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/logic"
)

// Kind classifies the function behaviour over one input transition.
type Kind int

// Transition kinds.
const (
	Static0 Kind = iota // f = 0 throughout the transition
	Static1             // f = 1 throughout the transition
	Fall                // f: 1 → 0 (falls when the full burst has arrived)
	Rise                // f: 0 → 1 (rises when the full burst has arrived)
)

func (k Kind) String() string {
	switch k {
	case Static0:
		return "0->0"
	case Static1:
		return "1->1"
	case Fall:
		return "1->0"
	case Rise:
		return "0->1"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Transition is one specified multiple-input-change transition of the
// function.
type Transition struct {
	// Start and End are the start and end input subcubes. Directed
	// don't-care inputs appear as dashes in both. Start and End must agree
	// on all variables bound in both except the changing variables.
	Start, End logic.Cube
	Kind       Kind
}

// Cube returns the transition cube [Start, End].
func (t Transition) Cube() logic.Cube { return t.Start.Supercube(t.End) }

// changing returns the variables on which Start and End conflict.
func (t Transition) changing() []int {
	var vars []int
	for i := 0; i < t.Start.N(); i++ {
		s, e := t.Start.Get(i), t.End.Get(i)
		if s != logic.Dash && e != logic.Dash && s != e {
			vars = append(vars, i)
		}
	}
	return vars
}

// Spec is a complete transition specification of a single-output function.
type Spec struct {
	N           int // number of input variables
	Transitions []Transition
}

// Canonical returns a copy of the spec with the transitions sorted by the
// total order on (kind, start, end) cube keys. Two specs describing the
// same set of transitions in different construction orders have identical
// canonical forms, which makes them hash alike (content-addressed
// memoization in internal/memo) and — because Analyze canonicalizes its
// input — minimize alike: prime generation and covering tie-breaks see the
// same ordering regardless of how the caller assembled the spec.
func (s Spec) Canonical() Spec {
	ts := append([]Transition(nil), s.Transitions...)
	sort.Slice(ts, func(i, j int) bool { return transLess(ts[i], ts[j]) })
	return Spec{N: s.N, Transitions: ts}
}

// transLess is the total order behind Canonical: kind first, then the raw
// cube keys of start and end.
func transLess(a, b Transition) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if ak, bk := a.Start.Key(), b.Start.Key(); ak != bk {
		if ak[0] != bk[0] {
			return ak[0] < bk[0]
		}
		return ak[1] < bk[1]
	}
	ak, bk := a.End.Key(), b.End.Key()
	if ak[0] != bk[0] {
		return ak[0] < bk[0]
	}
	return ak[1] < bk[1]
}

// Result reports details of a minimization.
type Result struct {
	Cover      logic.Cover
	OnSet      logic.Cover
	OffSet     logic.Cover
	Required   []logic.Cube
	Privileged []Privileged
	Primes     []logic.Cube
	Exact      bool // covering solved exactly
}

// Privileged is a dynamic transition cube with the subcube every
// intersecting product must contain.
type Privileged struct {
	Trans logic.Cube // the transition cube
	Need  logic.Cube // products intersecting Trans must contain Need
}

// Products returns the product count of the minimized cover.
func (r Result) Products() int { return r.Cover.Len() }

// Literals returns the literal count of the minimized cover.
func (r Result) Literals() int { return r.Cover.Literals() }

// Analyze derives the ON-set, OFF-set, required cubes and privileged cubes
// of a specification without minimizing. The spec is canonicalized first
// (see Spec.Canonical), so the derived sets — and everything downstream of
// them, including covering tie-breaks — do not depend on transition
// insertion order. Transition indices in errors refer to the canonical
// order.
func Analyze(spec Spec) (Result, error) {
	spec = spec.Canonical()
	var res Result
	res.OnSet = logic.Cover{N: spec.N}
	res.OffSet = logic.Cover{N: spec.N}
	var onSrc, offSrc []int
	seenReq := map[[2]uint64]bool{}
	addReq := func(c logic.Cube) {
		if c.IsEmpty() {
			return
		}
		if !seenReq[c.Key()] {
			seenReq[c.Key()] = true
			res.Required = append(res.Required, c)
		}
	}
	for i, t := range spec.Transitions {
		if t.Start.N() != spec.N || t.End.N() != spec.N {
			return res, fmt.Errorf("hfmin: transition %d arity mismatch", i)
		}
		T := t.Cube()
		trackOn := func(c logic.Cube) {
			if !c.IsEmpty() {
				onSrc = append(onSrc, i)
			}
		}
		trackOff := func(c logic.Cube) {
			if !c.IsEmpty() {
				offSrc = append(offSrc, i)
			}
		}
		switch t.Kind {
		case Static0:
			trackOff(T)
			res.OffSet.Add(T)
		case Static1:
			trackOn(T)
			res.OnSet.Add(T)
			addReq(T)
		case Fall:
			ch := t.changing()
			if len(ch) == 0 {
				return res, fmt.Errorf("hfmin: falling transition %d has no changing variables", i)
			}
			endCube := endSubcube(T, t.End, ch)
			trackOff(endCube)
			res.OffSet.Add(endCube)
			for _, v := range ch {
				on := T.With(v, t.Start.Get(v))
				trackOn(on)
				res.OnSet.Add(on)
				addReq(on)
			}
			res.Privileged = append(res.Privileged, Privileged{Trans: T, Need: startSubcube(T, t.Start, ch)})
		case Rise:
			ch := t.changing()
			if len(ch) == 0 {
				return res, fmt.Errorf("hfmin: rising transition %d has no changing variables", i)
			}
			endCube := endSubcube(T, t.End, ch)
			trackOn(endCube)
			res.OnSet.Add(endCube)
			addReq(endCube)
			for _, v := range ch {
				off := T.With(v, t.Start.Get(v))
				trackOff(off)
				res.OffSet.Add(off)
			}
			res.Privileged = append(res.Privileged, Privileged{Trans: T, Need: endCube})
		default:
			return res, fmt.Errorf("hfmin: transition %d has invalid kind %d", i, t.Kind)
		}
	}
	// Consistency: ON and OFF care sets must not overlap.
	for oi, on := range res.OnSet.Cubes {
		for fi, off := range res.OffSet.Cubes {
			if on.Intersects(off) {
				return res, fmt.Errorf("hfmin: inconsistent specification: ON cube %s (transition %d: %s %s→%s) intersects OFF cube %s (transition %d: %s %s→%s)",
					on, onSrc[oi], spec.Transitions[onSrc[oi]].Kind, spec.Transitions[onSrc[oi]].Start, spec.Transitions[onSrc[oi]].End,
					off, offSrc[fi], spec.Transitions[offSrc[fi]].Kind, spec.Transitions[offSrc[fi]].Start, spec.Transitions[offSrc[fi]].End)
			}
		}
	}
	return res, nil
}

// endSubcube returns the transition cube restricted to the end values of the
// changing variables.
func endSubcube(T, end logic.Cube, changing []int) logic.Cube {
	c := T
	for _, v := range changing {
		c = c.With(v, end.Get(v))
	}
	return c
}

// startSubcube returns the transition cube restricted to the start values of
// the changing variables.
func startSubcube(T, start logic.Cube, changing []int) logic.Cube {
	c := T
	for _, v := range changing {
		c = c.With(v, start.Get(v))
	}
	return c
}

// ErrInfeasible is returned when some required cube cannot be covered by any
// dynamic-hazard-free implicant (the specification has an unavoidable
// hazard).
var ErrInfeasible = errors.New("hfmin: specification has no hazard-free cover")

// Minimize computes a minimum (products first, literals second) hazard-free
// two-level cover of the specification, using exact branch-and-bound
// covering.
func Minimize(spec Spec) (Result, error) {
	return minimize(context.Background(), spec, logic.SolverBB)
}

// MinimizeHeuristic computes a hazard-free cover using only the greedy
// covering heuristic — much faster on large problems, possibly more
// products. It mirrors the fast-heuristic mode of the Theobald–Nowick
// minimizer the paper's tool chain uses.
func MinimizeHeuristic(spec Spec) (Result, error) {
	return minimize(context.Background(), spec, logic.SolverGreedy)
}

// MinimizeCtx is Minimize with cooperative cancellation: the context is
// checked between the minimization phases (analysis, dhf-prime
// generation, covering) and between branch-and-bound iterations of the
// covering search, so a cancelled synthesis job abandons even a large
// minimization promptly. A cancelled call returns ctx.Err(); partial
// results are discarded, never cached (see internal/memo).
func MinimizeCtx(ctx context.Context, spec Spec) (Result, error) {
	return minimize(ctx, spec, logic.SolverBB)
}

// MinimizeHeuristicCtx is MinimizeHeuristic with the cancellation
// behaviour of MinimizeCtx.
func MinimizeHeuristicCtx(ctx context.Context, spec Spec) (Result, error) {
	return minimize(ctx, spec, logic.SolverGreedy)
}

// MinimizeSolver is MinimizeCtx with an explicit covering backend: the
// branch-and-bound reference, the pseudo-Boolean solver, the racing
// portfolio, or the greedy heuristic (which reports Exact=false). Exact
// backends produce bit-identical covers whenever the search completes, so
// the choice affects speed, not results (see logic.SolvePortfolio).
func MinimizeSolver(ctx context.Context, spec Spec, solver logic.Solver) (Result, error) {
	return minimize(ctx, spec, solver)
}

// Covering derives the unate covering problem behind a spec's exact
// minimization: the analysis result with dhf-primes generated, and the
// matrix in which every required cube (row) must be contained in at least
// one chosen dhf-prime (column), costed to minimize products first and
// literals second. The returned problem has no Cancel or Budget set;
// callers configure both. Exported for the covering benchmarks and the
// worst-case capture tool (scripts/capturecover).
func Covering(spec Spec) (Result, *logic.CoveringProblem, error) {
	res, err := Analyze(spec)
	if err != nil {
		return res, nil, err
	}
	if len(res.Required) == 0 {
		return res, &logic.CoveringProblem{}, nil
	}
	res.Primes = dhfPrimes(res.Required, res.OffSet, res.Privileged)
	prob := &logic.CoveringProblem{NumCols: len(res.Primes)}
	prob.Cost = make([]int, len(res.Primes))
	const productWeight = 1 << 12 // lexicographic: products dominate literals
	for i, p := range res.Primes {
		prob.Cost[i] = productWeight + p.Literals()
	}
	for _, r := range res.Required {
		var row []int
		for i, p := range res.Primes {
			if p.Contains(r) {
				row = append(row, i)
			}
		}
		if len(row) == 0 {
			return res, nil, fmt.Errorf("%w: required cube %s uncoverable", ErrInfeasible, r)
		}
		prob.Rows = append(prob.Rows, row)
	}
	return res, prob, nil
}

func minimize(ctx context.Context, spec Spec, solver logic.Solver) (Result, error) {
	res, prob, err := Covering(spec)
	if err != nil {
		return res, err
	}
	if len(res.Required) == 0 {
		res.Cover = logic.Cover{N: spec.N}
		res.Exact = true
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	prob.Cancel = ctx.Err
	cols, exact := prob.SolveWith(solver)
	res.Exact = exact
	// A cancelled covering search returns its fallback solution; discard
	// it — a cancelled job must not observe (or cache) partial answers.
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if cols == nil {
		return res, ErrInfeasible
	}
	res.Cover = logic.Cover{N: spec.N}
	for _, c := range cols {
		res.Cover.Add(res.Primes[c])
	}
	return res, nil
}

// dhfPrimes generates the dynamic-hazard-free prime implicants relevant to
// covering the required cubes: maximal implicants (disjoint from the
// OFF-set) with no illegal intersection with any privileged cube.
func dhfPrimes(required []logic.Cube, off logic.Cover, priv []Privileged) []logic.Cube {
	primes := logic.PrimesContaining(required, off)
	seen := map[[2]uint64]bool{}
	var out []logic.Cube
	var emit func(p logic.Cube)
	emit = func(p logic.Cube) {
		if p.IsEmpty() || seen[p.Key()] {
			return
		}
		seen[p.Key()] = true
		for _, pv := range priv {
			if p.Intersects(pv.Trans) && !p.Contains(pv.Need) {
				// Illegal intersection: shrink p away from the transition
				// cube along every possible variable and recurse.
				for v := 0; v < p.N(); v++ {
					tv := pv.Trans.Get(v)
					if (tv == logic.Zero || tv == logic.One) && p.Get(v) == logic.Dash {
						flip := logic.Zero
						if tv == logic.Zero {
							flip = logic.One
						}
						emit(p.With(v, flip))
					}
				}
				return
			}
		}
		out = append(out, p)
	}
	for _, p := range primes {
		emit(p)
	}
	// Keep only maximal cubes: a cube is dropped iff strictly contained in
	// another (out is duplicate-free, so containment between distinct
	// entries is always strict). Strict containment implies strictly fewer
	// literals, so every container of a cube — in particular a maximal one —
	// has already been processed when cubes are visited in ascending
	// literal-count order. Testing only against the maximal-so-far set
	// makes the filter O(|out|·|maximal|) instead of O(|out|²), which is
	// the difference between milliseconds and seconds on GCD's exploded
	// prime sets. Emission order of the survivors is preserved.
	lits := make([]int, len(out))
	order := make([]int, len(out))
	for i, p := range out {
		lits[i] = p.Literals()
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return lits[order[a]] < lits[order[b]] })
	isMax := make([]bool, len(out))
	var maxIdx []int
	for _, i := range order {
		p := out[i]
		contained := false
		for _, j := range maxIdx {
			if out[j].Contains(p) {
				contained = true
				break
			}
		}
		if !contained {
			isMax[i] = true
			maxIdx = append(maxIdx, i)
		}
	}
	maximal := make([]logic.Cube, 0, len(maxIdx))
	for i, p := range out {
		if isMax[i] {
			maximal = append(maximal, p)
		}
	}
	return maximal
}

// Verify checks that a cover is a correct hazard-free implementation of the
// analyzed specification: it covers the ON-set, avoids the OFF-set, contains
// every required cube in a single product, and has no illegal intersections.
// It returns nil on success.
func Verify(res Result, cover logic.Cover) error {
	for _, on := range res.OnSet.Cubes {
		if !cover.ContainsCube(on) {
			return fmt.Errorf("hfmin: ON cube %s not covered", on)
		}
	}
	for _, off := range res.OffSet.Cubes {
		for _, p := range cover.Cubes {
			if p.Intersects(off) {
				return fmt.Errorf("hfmin: product %s intersects OFF cube %s", p, off)
			}
		}
	}
	for _, r := range res.Required {
		ok := false
		for _, p := range cover.Cubes {
			if p.Contains(r) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("hfmin: required cube %s not contained in a single product", r)
		}
	}
	for _, pv := range res.Privileged {
		for _, p := range cover.Cubes {
			if p.Intersects(pv.Trans) && !p.Contains(pv.Need) {
				return fmt.Errorf("hfmin: product %s illegally intersects privileged cube %s (needs %s)", p, pv.Trans, pv.Need)
			}
		}
	}
	return nil
}
