package hfmin

import (
	"context"
	"os"
	"reflect"
	"testing"

	"repro/internal/logic"
)

// worstSpecFixture loads the captured GCD worst-case minimization spec —
// the single slowest output of the three paper benchmarks (regenerate with
// scripts/capturecover -spec-fixture).
func worstSpecFixture(tb testing.TB) Spec {
	tb.Helper()
	data, err := os.ReadFile("testdata/gcd_worst_spec.json")
	if err != nil {
		tb.Fatalf("fixture: %v (regenerate with scripts/capturecover)", err)
	}
	spec, err := UnmarshalSpec(data)
	if err != nil {
		tb.Fatalf("fixture: %v", err)
	}
	return spec
}

// TestWorstCaseSpecSolvers asserts every exact covering backend minimizes
// the GCD worst spec to the same cost, with the portfolio bit-identical to
// sequential B&B.
func TestWorstCaseSpecSolvers(t *testing.T) {
	spec := worstSpecFixture(t)
	bb, err := MinimizeSolver(context.Background(), spec, logic.SolverBB)
	if err != nil {
		t.Fatal(err)
	}
	if !bb.Exact {
		t.Fatal("bb minimize inexact on the worst spec")
	}

	pb, err := MinimizeSolver(context.Background(), spec, logic.SolverPB)
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Exact {
		t.Fatal("pb minimize inexact on the worst spec")
	}
	if pb.Products() != bb.Products() || pb.Literals() != bb.Literals() {
		t.Errorf("pb cover %d products/%d literals, bb %d/%d",
			pb.Products(), pb.Literals(), bb.Products(), bb.Literals())
	}

	pf, err := MinimizeSolver(context.Background(), spec, logic.SolverPortfolio)
	if err != nil {
		t.Fatal(err)
	}
	if !pf.Exact {
		t.Fatal("portfolio minimize inexact on the worst spec")
	}
	if !reflect.DeepEqual(pf.Cover, bb.Cover) {
		t.Errorf("portfolio cover differs from sequential B&B:\n got: %v\nwant: %v", pf.Cover, bb.Cover)
	}
}

// BenchmarkMinimizeWorstCase times the full hazard-free minimization of the
// GCD worst spec per covering backend — the end-to-end number behind the
// EXPERIMENTS.md before/after table.
func BenchmarkMinimizeWorstCase(b *testing.B) {
	spec := worstSpecFixture(b)
	for _, s := range []logic.Solver{logic.SolverBB, logic.SolverPB, logic.SolverPortfolio} {
		b.Run(s.String(), func(b *testing.B) {
			var res Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = MinimizeSolver(context.Background(), spec, s)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Products()), "products")
			b.ReportMetric(float64(res.Literals()), "literals")
		})
	}
}
