// Package par is the concurrency substrate of the synthesis engine: a
// bounded worker pool with deterministic fan-out helpers. The paper's flow
// is embarrassingly parallel at three levels — one AFSM is extracted and
// locally optimized per functional unit, hazard-free minimization runs per
// output signal, and design-space exploration evaluates independent
// variants — and every one of those loops fans out through this package.
//
// The determinism contract: Map and ForEach deliver results into
// index-addressed slots, never by append from goroutines, so the caller
// observes exactly the ordering of the sequential loop regardless of
// worker interleaving. Errors are aggregated and the lowest-index error is
// returned first, matching what a sequential loop that stops at the first
// failure would have reported. Panics in workers are recovered and
// surfaced as *PanicError values instead of crashing sibling goroutines.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers resolves a parallelism knob to a concrete worker count: 0 (or
// negative) selects GOMAXPROCS, anything else is used as given. A result
// of 1 means the sequential fallback path.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError wraps a panic recovered in a worker goroutine.
type PanicError struct {
	Value interface{} // the recovered panic value
	Stack []byte      // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", e.Value, e.Stack)
}

// Map applies f to every element of items on up to `workers` goroutines
// (0 = GOMAXPROCS, 1 = run inline with no goroutines) and returns the
// results in input order. f receives the element index and value. If any
// invocation fails, Map still runs every remaining invocation (results
// are index-addressed, not short-circuited) and returns the error with
// the lowest index — the same error a sequential loop returns first.
func Map[T, R any](workers int, items []T, f func(int, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Value: r, Stack: stack()}
			}
		}()
		out[i], errs[i] = f(i, items[i])
	}
	workers = Workers(workers)
	if workers == 1 || len(items) <= 1 {
		for i := range items {
			run(i)
			if errs[i] != nil {
				return out, errs[i] // sequential path short-circuits like a plain loop
			}
		}
		return out, nil
	}
	if workers > len(items) {
		workers = len(items)
	}
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(out) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return out, firstError(errs)
}

// ForEach runs f(i) for i in [0, n) on up to `workers` goroutines with the
// same determinism and error contract as Map.
func ForEach(workers, n int, f func(int) error) error {
	_, err := Map(workers, make([]struct{}, n), func(i int, _ struct{}) (struct{}, error) {
		return struct{}{}, f(i)
	})
	return err
}

// firstError returns the lowest-index non-nil error.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
