// Package par is the concurrency substrate of the synthesis engine: a
// bounded worker pool with deterministic fan-out helpers. The paper's flow
// is embarrassingly parallel at three levels — one AFSM is extracted and
// locally optimized per functional unit, hazard-free minimization runs per
// output signal, and design-space exploration evaluates independent
// variants — and every one of those loops fans out through this package.
//
// # Usage
//
// Map fans a slice out across a bounded pool and collects results in
// input order; ForEach is the index-only variant. A stage-named fan-out
// (NamedMap) additionally attributes pool metrics and worker panics to a
// pipeline stage:
//
//	reps, err := par.NamedMap("lt", workers, fus, func(_ int, fu string) (*local.Report, error) {
//	    return local.Optimize(machines[fu])
//	})
//
// `workers` is a knob, not a count: 0 (or negative) selects GOMAXPROCS
// and 1 forces the inline sequential path (no goroutines — the debugging
// fallback). See ExampleMap and ExampleForEach.
//
// # Cancellation
//
// The Ctx variants (MapCtx, NamedMapCtx, ForEachCtx) accept a
// context.Context and stop dispatching new tasks once it is cancelled:
// in-flight tasks run to completion (the closure receives the context and
// may return early itself), undispatched slots are marked with the
// context's error, and the fan-out returns promptly so a cancelled job
// releases its pool workers instead of draining the whole work list. The
// context-free entry points delegate with context.Background().
//
// # Determinism contract
//
// Map and ForEach deliver results into index-addressed slots, never by
// append from goroutines, so the caller observes exactly the ordering of
// the sequential loop regardless of worker interleaving. Errors are
// aggregated and the lowest-index error is returned first, matching what
// a sequential loop that stops at the first failure would have reported.
// Panics in workers are recovered and surfaced as *PanicError values
// (carrying the stage name and captured stack) instead of crashing
// sibling goroutines.
//
// # Observability
//
// Every fan-out reports to the global obs registry (a no-op unless the
// CLI enabled -metrics/-trace): gauges par/<stage>/queued and
// par/<stage>/workers record the pool shape, and counters
// par/<stage>/tasks and par/<stage>/panics record how many tasks actually
// executed versus panicked — so a fan-out that dies mid-flight is visible
// in the stage table, attributed to its stage.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Workers resolves a parallelism knob to a concrete worker count: 0 (or
// negative) selects GOMAXPROCS, anything else is used as given. A result
// of 1 means the sequential fallback path.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError wraps a panic recovered in a worker goroutine.
type PanicError struct {
	Stage string      // pipeline stage the fan-out was running (may be empty)
	Value interface{} // the recovered panic value
	Stack []byte      // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("par: worker panic in stage %s: %v\n%s", e.Stage, e.Value, e.Stack)
	}
	return fmt.Sprintf("par: worker panic: %v\n%s", e.Value, e.Stack)
}

// Map applies f to every element of items on up to `workers` goroutines
// (0 = GOMAXPROCS, 1 = run inline with no goroutines) and returns the
// results in input order. f receives the element index and value. If any
// invocation fails, Map still runs every remaining invocation (results
// are index-addressed, not short-circuited) and returns the error with
// the lowest index — the same error a sequential loop returns first.
func Map[T, R any](workers int, items []T, f func(int, T) (R, error)) ([]R, error) {
	return NamedMap("", workers, items, f)
}

// MapCtx is Map with a cancellation context: no new task is dispatched
// after ctx is cancelled, undispatched slots carry ctx.Err(), and f
// receives the context so long-running tasks can stop early themselves.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, f func(context.Context, int, T) (R, error)) ([]R, error) {
	return NamedMapCtx(ctx, "", workers, items, f)
}

// NamedMap is Map with the fan-out attributed to a pipeline stage: pool
// metrics are recorded under par/<stage>/... and a worker panic carries
// the stage name in its *PanicError. The empty stage reports under plain
// "par/" keys.
func NamedMap[T, R any](stage string, workers int, items []T, f func(int, T) (R, error)) ([]R, error) {
	return NamedMapCtx(context.Background(), stage, workers, items,
		func(_ context.Context, i int, item T) (R, error) { return f(i, item) })
}

// NamedMapCtx is the context-aware root of the fan-out family: stage
// attribution as NamedMap, cancellation as MapCtx. Workers check ctx
// before picking up each task, so a cancelled fan-out stops scheduling
// promptly; slots whose task never ran are filled with ctx.Err(), and the
// lowest-index error (a real failure before the cancellation point, or
// the context error itself) is returned.
func NamedMapCtx[T, R any](ctx context.Context, stage string, workers int, items []T, f func(context.Context, int, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	var executed, panicked atomic.Int64
	run := func(i int) {
		obs.Set("par/inflight", inflight.Add(1))
		defer func() {
			obs.Set("par/inflight", inflight.Add(-1))
			executed.Add(1)
			if r := recover(); r != nil {
				panicked.Add(1)
				errs[i] = &PanicError{Stage: stage, Value: r, Stack: stack()}
			}
		}()
		out[i], errs[i] = f(ctx, i, items[i])
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	prefix := "par/"
	if stage != "" {
		prefix = "par/" + stage + "/"
	}
	obs.Set(prefix+"queued", int64(len(items)))
	obs.Set(prefix+"workers", int64(workers))
	defer func() {
		obs.Add(prefix+"tasks", executed.Load())
		obs.Add(prefix+"panics", panicked.Load())
	}()
	if workers <= 1 || len(items) <= 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return out, firstError(errs)
			}
			run(i)
			if errs[i] != nil {
				return out, errs[i] // sequential path short-circuits like a plain loop
			}
		}
		return out, nil
	}
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					// Mark one undispatched slot with the context error so
					// firstError surfaces the cancellation; the remaining
					// slots stay nil and are never run.
					mu.Lock()
					i := next
					next = len(out)
					mu.Unlock()
					if i < len(out) {
						errs[i] = err
					}
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(out) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return out, firstError(errs)
}

// ForEach runs f(i) for i in [0, n) on up to `workers` goroutines with the
// same determinism and error contract as Map.
func ForEach(workers, n int, f func(int) error) error {
	_, err := Map(workers, make([]struct{}, n), func(i int, _ struct{}) (struct{}, error) {
		return struct{}{}, f(i)
	})
	return err
}

// ForEachCtx is ForEach with the cancellation behaviour of MapCtx.
func ForEachCtx(ctx context.Context, workers, n int, f func(context.Context, int) error) error {
	_, err := MapCtx(ctx, workers, make([]struct{}, n), func(ctx context.Context, i int, _ struct{}) (struct{}, error) {
		return struct{}{}, f(ctx, i)
	})
	return err
}

// inflight counts pool workers currently executing a task, process-wide
// across every concurrent Map. It is exported as the "par/inflight" gauge
// so a long-running server can observe that cancelling a job actually
// releases its workers (the gauge falls back as they drain).
var inflight atomic.Int64

// firstError returns the lowest-index non-nil error.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
