package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapOrderPreserved(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 8, 200} {
		out, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, items, func(i, v int) (int, error) {
			if v%2 == 1 {
				return 0, fmt.Errorf("item %d failed", v)
			}
			return v, nil
		})
		if err == nil || err.Error() != "item 1 failed" {
			t.Errorf("workers=%d: err = %v, want lowest-index error (item 1)", workers, err)
		}
	}
}

func TestMapPanicRecovered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, []int{0, 1, 2}, func(i, v int) (int, error) {
			if v == 1 {
				panic("boom")
			}
			return v, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "boom" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError = %q stack=%d bytes", workers, pe.Value, len(pe.Stack))
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	out, err := Map(4, nil, func(i, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty: out=%v err=%v", out, err)
	}
	out, err = Map(4, []int{9}, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil || len(out) != 1 || out[0] != 10 {
		t.Errorf("single: out=%v err=%v", out, err)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int32
	_, err := Map(workers, make([]int, 64), func(i, v int) (int, error) {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		active.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

// withMetrics installs a fresh global metrics registry for one test.
func withMetrics(t *testing.T) *obs.Metrics {
	t.Helper()
	prev := obs.Gather()
	m := obs.NewMetrics()
	obs.SetMetrics(m)
	t.Cleanup(func() { obs.SetMetrics(prev) })
	return m
}

func TestNamedMapPanicCarriesStage(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := NamedMap("lt", workers, []int{0, 1, 2}, func(i, v int) (int, error) {
			if v == 1 {
				panic("boom")
			}
			return v, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Stage != "lt" {
			t.Errorf("workers=%d: panic lost its stage: %q", workers, pe.Stage)
		}
		if got := pe.Error(); !errors.As(err, &pe) || !containsAll(got, "stage lt", "boom") {
			t.Errorf("workers=%d: Error() = %q, want stage and value", workers, got)
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestNamedMapMetrics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := withMetrics(t)
		_, err := NamedMap("hfmin", workers, make([]int, 12), func(i, v int) (int, error) {
			if i == 5 {
				panic("one task dies")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		tasks := m.Counter("par/hfmin/tasks")
		panics := m.Counter("par/hfmin/panics")
		if workers == 1 {
			// Sequential path short-circuits at the failure, like a plain loop.
			if tasks != 6 || panics != 1 {
				t.Errorf("sequential: tasks=%d panics=%d, want 6/1", tasks, panics)
			}
		} else {
			// Parallel path runs every task regardless of failures.
			if tasks != 12 || panics != 1 {
				t.Errorf("parallel: tasks=%d panics=%d, want 12/1", tasks, panics)
			}
		}
		if got := m.Gauge("par/hfmin/queued"); got != 12 {
			t.Errorf("workers=%d: queued gauge = %d, want 12", workers, got)
		}
		if got := m.Gauge("par/hfmin/workers"); got != int64(min(workers, 12)) {
			t.Errorf("workers=%d: workers gauge = %d", workers, got)
		}
	}
}

func TestMapMetricsUnnamed(t *testing.T) {
	m := withMetrics(t)
	if _, err := Map(4, make([]int, 8), func(i, v int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("par/tasks"); got != 8 {
		t.Errorf("par/tasks = %d, want 8", got)
	}
	if got := m.Counter("par/panics"); got != 0 {
		t.Errorf("par/panics = %d, want 0", got)
	}
}

func TestForEach(t *testing.T) {
	const n = 50
	hit := make([]atomic.Bool, n)
	if err := ForEach(4, n, func(i int) error {
		hit[i].Store(true)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hit {
		if !hit[i].Load() {
			t.Fatalf("index %d not visited", i)
		}
	}
	err := ForEach(4, n, func(i int) error {
		if i >= 10 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail 10" {
		t.Errorf("ForEach err = %v, want lowest-index error (fail 10)", err)
	}
}
