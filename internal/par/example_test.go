package par_test

import (
	"fmt"

	"repro/internal/par"
)

// ExampleMap fans a per-item computation out across the worker pool.
// Results come back in input order no matter how workers interleave, so
// parallelism stays a pure performance knob.
func ExampleMap() {
	items := []int{1, 2, 3, 4, 5}
	squares, err := par.Map(0, items, func(_ int, v int) (int, error) {
		return v * v, nil
	})
	fmt.Println(squares, err)
	// Output: [1 4 9 16 25] <nil>
}

// ExampleForEach is the index-only variant, here filling a pre-sized
// slice in place (each worker writes only its own slot).
func ExampleForEach() {
	doubled := make([]int, 4)
	err := par.ForEach(2, len(doubled), func(i int) error {
		doubled[i] = i * 2
		return nil
	})
	fmt.Println(doubled, err)
	// Output: [0 2 4 6] <nil>
}

// ExampleNamedMap attributes the fan-out to a pipeline stage: pool
// metrics report under par/<stage>/... and a worker panic is surfaced as
// a *par.PanicError carrying the stage name.
func ExampleNamedMap() {
	_, err := par.NamedMap("lt", 2, []string{"ALU1", "boom"}, func(_ int, fu string) (string, error) {
		if fu == "boom" {
			panic("controller exploded")
		}
		return fu, nil
	})
	pe := err.(*par.PanicError)
	fmt.Println(pe.Stage, pe.Value)
	// Output: lt controller exploded
}
