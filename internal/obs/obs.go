// Package obs is the zero-dependency observability layer of the synthesis
// engine: structured tracing, per-stage metrics and the hooks the CLI's
// -trace/-metrics/-pprof flags build on.
//
// The pipeline is a fixed cascade — GT1–GT5 on the CDFG, controller
// extraction, LT1–LT5 per machine, hazard-free logic synthesis — and PR 1
// made it parallel; obs makes it visible. Every stage brackets itself in a
// Span and records what it changed (arcs removed, states before/after,
// minimizer iterations) as counters and gauges, so one run yields a
// complete stage-by-stage timing and reduction profile.
//
// # Span model
//
// A Span is one timed unit of pipeline work: a stage name (e.g. "gt2",
// "lt4", "hfmin"), an optional unit it worked on (a functional unit,
// controller or output function), start/end timestamps relative to the
// tracer's epoch, the goroutine that ran it, and the error outcome.
// Completed spans land in the Tracer's fixed-capacity ring buffer (oldest
// events are dropped, never blocking the pipeline) and, when a sink is
// set, are streamed as one JSON object per line (JSONL).
//
// Instrumented code uses the package-level entry points:
//
//	sp := obs.Start("gt2", "")           // no-op unless tracing/metrics on
//	rep, err := RemoveDominated(g)
//	obs.Add("gt2/arcs_removed", n)       // counter, aggregated
//	sp.EndErr(err)
//
// # Disabled cost
//
// With no tracer and no metrics registry installed (the default), Start
// returns a zero Span and Add/Set return immediately: the guard is two
// atomic pointer loads, verified to stay within noise of uninstrumented
// code by TestDisabledOverheadGuard and BenchmarkSpanDisabled. Installing
// a Tracer whose Enable was not called is likewise a no-op.
//
// # Concurrency
//
// All types are safe for concurrent use: spans may be started and ended
// from any worker goroutine (the worker pool in internal/par records its
// per-stage task and panic counts here too). Event IDs are assigned at
// completion time, so Events() is ordered by completion and IDs are
// strictly increasing — sorting by the Start field reconstructs the
// wall-clock timeline.
package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// SpanEvent is one completed span, as stored in the ring buffer and
// emitted to the JSONL sink.
type SpanEvent struct {
	// ID is assigned when the span completes; IDs are unique and strictly
	// increasing in completion order.
	ID uint64 `json:"id"`
	// Stage is the pipeline stage name ("gt1".."gt5", "extract",
	// "lt1".."lt5", "synth", "hfmin", "explore", "run", ...).
	Stage string `json:"stage"`
	// Unit is what the stage worked on: a functional unit, controller,
	// output function or exploration variant. Empty for whole-graph stages.
	Unit string `json:"unit,omitempty"`
	// Start and End are nanoseconds since the tracer's epoch (monotonic).
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
	// Goroutine is the ID of the goroutine that ran the span — with the
	// worker-pool fan-out, spans sharing a Goroutine ran on the same slot.
	Goroutine int `json:"g"`
	// Err is the error the span ended with, if any.
	Err string `json:"err,omitempty"`
}

// Duration is the span's elapsed time.
func (e SpanEvent) Duration() time.Duration { return time.Duration(e.End - e.Start) }

// Tracer collects completed spans into a bounded in-memory ring buffer
// and optionally streams them to a JSONL sink. The zero-capacity and nil
// tracers are valid and record nothing.
type Tracer struct {
	enabled atomic.Bool
	nextID  atomic.Uint64
	epoch   time.Time

	mu      sync.Mutex
	buf     []SpanEvent
	cap     int
	next    int    // ring cursor once full
	total   uint64 // events ever recorded
	sink    io.Writer
	sinkErr error

	watchMu   sync.Mutex
	watchers  map[uint64]func(SpanEvent)
	nextWatch uint64
}

// New returns a Tracer whose ring buffer holds the last `capacity`
// completed spans (capacity <= 0 selects a default of 4096). The tracer
// starts disabled; call Enable.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{cap: capacity, epoch: time.Now()}
}

// Enable turns span recording on.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable turns span recording off; in-flight spans ending after Disable
// are dropped.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether the tracer records spans. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSink streams every completed span to w as one JSON object per line,
// in addition to the ring buffer. The first write error stops the stream
// and is reported by SinkErr.
func (t *Tracer) SetSink(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = w
	t.sinkErr = nil
}

// SinkErr returns the first error writing to the JSONL sink, if any.
func (t *Tracer) SinkErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Start begins a span on this tracer. When the tracer is nil or disabled
// the returned zero Span makes End a no-op.
func (t *Tracer) Start(stage, unit string) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{t: t, stage: stage, unit: unit, g: goid(), start: time.Now()}
}

// record stores a completed span; called from Span.EndErr.
func (t *Tracer) record(s Span, end time.Time, err error) {
	if !t.enabled.Load() {
		return
	}
	ev := SpanEvent{
		ID:        t.nextID.Add(1),
		Stage:     s.stage,
		Unit:      s.unit,
		Start:     s.start.Sub(t.epoch).Nanoseconds(),
		End:       end.Sub(t.epoch).Nanoseconds(),
		Goroutine: s.g,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	t.mu.Lock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % t.cap
	}
	t.total++
	if t.sink != nil && t.sinkErr == nil {
		line, jerr := json.Marshal(ev)
		if jerr != nil {
			t.sinkErr = jerr
		} else if _, werr := t.sink.Write(append(line, '\n')); werr != nil {
			t.sinkErr = werr
		}
	}
	t.mu.Unlock()
	t.notifyWatchers(ev)
}

// Watch registers fn to be called with every span completed while the
// watcher is installed, after the span lands in the ring buffer. The
// returned cancel func removes the watcher; it is safe to call more than
// once. fn runs on the goroutine ending the span and must not block —
// the service layer uses this to stream job progress over SSE, feeding a
// bounded per-job buffer.
func (t *Tracer) Watch(fn func(SpanEvent)) (cancel func()) {
	t.watchMu.Lock()
	if t.watchers == nil {
		t.watchers = map[uint64]func(SpanEvent){}
	}
	t.nextWatch++
	id := t.nextWatch
	t.watchers[id] = fn
	t.watchMu.Unlock()
	return func() {
		t.watchMu.Lock()
		delete(t.watchers, id)
		t.watchMu.Unlock()
	}
}

// notifyWatchers fans a completed span out to the registered watchers,
// outside the ring-buffer lock so a watcher may inspect the tracer.
func (t *Tracer) notifyWatchers(ev SpanEvent) {
	t.watchMu.Lock()
	if len(t.watchers) == 0 {
		t.watchMu.Unlock()
		return
	}
	fns := make([]func(SpanEvent), 0, len(t.watchers))
	for _, fn := range t.watchers {
		fns = append(fns, fn)
	}
	t.watchMu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// Events returns the buffered spans in completion order (oldest first).
func (t *Tracer) Events() []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, 0, len(t.buf))
	if t.total > uint64(t.cap) {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Dropped returns how many spans were evicted from the ring buffer.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total > uint64(t.cap) {
		return t.total - uint64(t.cap)
	}
	return 0
}

// Span is an in-flight timed unit of pipeline work. The zero Span is
// valid and End/EndErr on it are no-ops — this is what Start returns when
// observability is off, keeping the disabled path allocation-free.
type Span struct {
	t     *Tracer
	m     *Metrics
	stage string
	unit  string
	g     int
	start time.Time
}

// End completes the span successfully.
func (s Span) End() { s.EndErr(nil) }

// EndErr completes the span with its error outcome (nil for success),
// recording the event on the tracer and the stage duration on the
// metrics registry, whichever are attached.
func (s Span) EndErr(err error) {
	if s.t == nil && s.m == nil {
		return
	}
	end := time.Now()
	if s.m != nil {
		s.m.Observe(s.stage, end.Sub(s.start))
	}
	if s.t != nil {
		s.t.record(s, end, err)
	}
}

// Global wiring: the pipeline packages call the package-level Start/Add/
// Set, which dispatch to the installed tracer and metrics registry. Both
// default to nil (everything disabled).
var (
	curTracer  atomic.Pointer[Tracer]
	curMetrics atomic.Pointer[Metrics]
)

// SetTracer installs t as the process-global tracer (nil uninstalls).
func SetTracer(t *Tracer) { curTracer.Store(t) }

// GlobalTracer returns the installed tracer, or nil.
func GlobalTracer() *Tracer { return curTracer.Load() }

// SetMetrics installs m as the process-global metrics registry (nil
// uninstalls).
func SetMetrics(m *Metrics) { curMetrics.Store(m) }

// Gather returns the installed metrics registry, or nil.
func Gather() *Metrics { return curMetrics.Load() }

// Start begins a span against the global tracer and metrics registry.
// When neither is installed (or the tracer is disabled) it returns the
// zero Span at the cost of two atomic loads.
func Start(stage, unit string) Span {
	t := curTracer.Load()
	if t != nil && !t.enabled.Load() {
		t = nil
	}
	m := curMetrics.Load()
	if t == nil && m == nil {
		return Span{}
	}
	sp := Span{t: t, m: m, stage: stage, unit: unit, start: time.Now()}
	if t != nil {
		sp.g = goid() // only pay the stack parse when tracing
	}
	return sp
}

// Add increments the named counter on the global metrics registry; no-op
// when none is installed. Names are slash-paths rooted at a stage, e.g.
// "gt2/arcs_removed" or "par/hfmin/tasks".
func Add(name string, v int64) {
	if m := curMetrics.Load(); m != nil {
		m.Add(name, v)
	}
}

// Set stores the named gauge on the global metrics registry; no-op when
// none is installed. Per-unit observations use unit-qualified names, e.g.
// "lt/ALU1/states_before".
func Set(name string, v int64) {
	if m := curMetrics.Load(); m != nil {
		m.Set(name, v)
	}
}

// goid parses the current goroutine ID from the runtime stack header
// ("goroutine N [...]"). Only called with tracing enabled; the cost is a
// single small Stack capture.
func goid() int {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	id := 0
	for i := prefix; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int(c-'0')
	}
	return id
}
