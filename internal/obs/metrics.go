package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// StageStat aggregates the spans observed for one pipeline stage.
type StageStat struct {
	Count int64         // spans completed
	Total time.Duration // summed wall time
	Max   time.Duration // slowest single span
}

// Metrics is a registry of per-stage timings, counters and gauges. All
// methods are safe for concurrent use; the zero value is not usable, call
// NewMetrics.
//
// Naming convention: every metric name is a slash-path whose first
// segment is the owning stage. Two-segment names ("gt2/arcs_removed")
// render inline on that stage's table row; deeper names are per-unit
// observations ("lt/ALU1/states_before") and render in the counters/
// gauges sections. Counters accumulate (Add), gauges hold the last value
// (Set).
type Metrics struct {
	mu       sync.Mutex
	order    []string // stages in first-completion order
	stages   map[string]*StageStat
	counters map[string]int64
	gauges   map[string]int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		stages:   map[string]*StageStat{},
		counters: map[string]int64{},
		gauges:   map[string]int64{},
	}
}

// Observe records one completed span of `stage` taking d.
func (m *Metrics) Observe(stage string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stages[stage]
	if st == nil {
		st = &StageStat{}
		m.stages[stage] = st
		m.order = append(m.order, stage)
	}
	st.Count++
	st.Total += d
	if d > st.Max {
		st.Max = d
	}
}

// Add increments counter `name` by v.
func (m *Metrics) Add(name string, v int64) {
	m.mu.Lock()
	m.counters[name] += v
	m.mu.Unlock()
}

// Set stores v as the current value of gauge `name`.
func (m *Metrics) Set(name string, v int64) {
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Counter returns the current value of a counter (0 if never written).
func (m *Metrics) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Gauge returns the current value of a gauge (0 if never written).
func (m *Metrics) Gauge(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Stage returns the aggregated stat for a stage.
func (m *Metrics) Stage(name string) (StageStat, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.stages[name]
	if !ok {
		return StageStat{}, false
	}
	return *st, true
}

// Stages returns the observed stage names in first-completion order —
// within one flow run this is the pipeline order, because every worker
// goroutine completes the stages in the same sequence.
func (m *Metrics) Stages() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string{}, m.order...)
}

// Table renders the registry as the per-stage table the CLI's -metrics
// flag prints: one row per stage (calls, total and max wall time, plus
// that stage's own counters inline), then the per-unit counters and
// gauges sorted by name.
func (m *Metrics) Table() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %7s %12s %12s\n", "stage", "calls", "total", "max")
	attached := map[string]bool{}
	for _, stage := range m.order {
		st := m.stages[stage]
		fmt.Fprintf(&b, "%-10s %7d %12s %12s", stage, st.Count,
			fmtDur(st.Total), fmtDur(st.Max))
		// Inline the stage's own (two-segment) counters.
		var own []string
		for name := range m.counters {
			rest, ok := strings.CutPrefix(name, stage+"/")
			if ok && !strings.Contains(rest, "/") {
				own = append(own, name)
			}
		}
		sort.Strings(own)
		for _, name := range own {
			attached[name] = true
			fmt.Fprintf(&b, "  %s=%d", strings.TrimPrefix(name, stage+"/"), m.counters[name])
		}
		b.WriteString("\n")
	}
	var rest []string
	for name := range m.counters {
		if !attached[name] {
			rest = append(rest, name)
		}
	}
	if len(rest) > 0 {
		sort.Strings(rest)
		b.WriteString("counters:\n")
		for _, name := range rest {
			fmt.Fprintf(&b, "  %-38s %10d\n", name, m.counters[name])
		}
	}
	if len(m.gauges) > 0 {
		var names []string
		for name := range m.gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("gauges:\n")
		for _, name := range names {
			fmt.Fprintf(&b, "  %-38s %10d\n", name, m.gauges[name])
		}
	}
	return b.String()
}

// fmtDur renders a duration at µs resolution, keeping table columns
// stable across runs of very different speed.
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
