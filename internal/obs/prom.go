package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), the payload behind asyncsynthd's GET /metrics.
//
// The registry's slash-path names carry arbitrary unit segments
// ("lt/ALU1/states_before"), which cannot be sanitized into metric names
// without risking collisions; instead each family keeps the raw path in a
// label. Four fixed families are emitted, all prefixed asyncsynth_:
//
//	asyncsynth_stage_calls_total{stage="gt2"}    spans completed
//	asyncsynth_stage_seconds_total{stage="gt2"}  summed wall time
//	asyncsynth_stage_seconds_max{stage="gt2"}    slowest single span
//	asyncsynth_counter_total{name="memo/hits"}   counters
//	asyncsynth_gauge{name="service/jobs_running"} gauges
//
// Output is sorted by name so consecutive scrapes of an idle process are
// byte-identical.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	stages := make(map[string]StageStat, len(m.stages))
	for name, st := range m.stages {
		stages[name] = *st
	}
	counters := make(map[string]int64, len(m.counters))
	for name, v := range m.counters {
		counters[name] = v
	}
	gauges := make(map[string]int64, len(m.gauges))
	for name, v := range m.gauges {
		gauges[name] = v
	}
	m.mu.Unlock()

	var b strings.Builder
	stageNames := sortedKeys(stages)
	if len(stageNames) > 0 {
		b.WriteString("# HELP asyncsynth_stage_calls_total Completed pipeline-stage spans.\n")
		b.WriteString("# TYPE asyncsynth_stage_calls_total counter\n")
		for _, name := range stageNames {
			fmt.Fprintf(&b, "asyncsynth_stage_calls_total{stage=%q} %d\n", name, stages[name].Count)
		}
		b.WriteString("# HELP asyncsynth_stage_seconds_total Summed wall time per pipeline stage.\n")
		b.WriteString("# TYPE asyncsynth_stage_seconds_total counter\n")
		for _, name := range stageNames {
			fmt.Fprintf(&b, "asyncsynth_stage_seconds_total{stage=%q} %g\n", name, stages[name].Total.Seconds())
		}
		b.WriteString("# HELP asyncsynth_stage_seconds_max Slowest single span per pipeline stage.\n")
		b.WriteString("# TYPE asyncsynth_stage_seconds_max gauge\n")
		for _, name := range stageNames {
			fmt.Fprintf(&b, "asyncsynth_stage_seconds_max{stage=%q} %g\n", name, stages[name].Max.Seconds())
		}
	}
	if len(counters) > 0 {
		b.WriteString("# HELP asyncsynth_counter_total Pipeline counters, keyed by slash-path name.\n")
		b.WriteString("# TYPE asyncsynth_counter_total counter\n")
		for _, name := range sortedKeys(counters) {
			fmt.Fprintf(&b, "asyncsynth_counter_total{name=%q} %d\n", name, counters[name])
		}
	}
	if len(gauges) > 0 {
		b.WriteString("# HELP asyncsynth_gauge Pipeline gauges, keyed by slash-path name.\n")
		b.WriteString("# TYPE asyncsynth_gauge gauge\n")
		for _, name := range sortedKeys(gauges) {
			fmt.Fprintf(&b, "asyncsynth_gauge{name=%q} %d\n", name, gauges[name])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
