package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// withGlobals installs t/m as the process globals for the duration of a
// test and restores the previous values (tests in this package share the
// global registry with any parallel packages, so always clean up).
func withGlobals(tb testing.TB, tr *Tracer, m *Metrics) {
	tb.Helper()
	prevT, prevM := GlobalTracer(), Gather()
	SetTracer(tr)
	SetMetrics(m)
	tb.Cleanup(func() {
		SetTracer(prevT)
		SetMetrics(prevM)
	})
}

func TestTracerOrdering(t *testing.T) {
	tr := New(64)
	tr.Enable()
	for i := 0; i < 10; i++ {
		sp := tr.Start("stage", fmt.Sprintf("u%d", i))
		sp.End()
	}
	evs := tr.Events()
	if len(evs) != 10 {
		t.Fatalf("got %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.ID != uint64(i+1) {
			t.Errorf("event %d: ID = %d, want %d (strictly increasing from 1)", i, ev.ID, i+1)
		}
		if ev.Unit != fmt.Sprintf("u%d", i) {
			t.Errorf("event %d: unit = %q, completion order broken", i, ev.Unit)
		}
		if ev.End < ev.Start {
			t.Errorf("event %d: end %d before start %d", i, ev.End, ev.Start)
		}
		if i > 0 && ev.Start < evs[i-1].Start {
			t.Errorf("event %d: sequential spans must have non-decreasing starts", i)
		}
		if ev.Goroutine == 0 {
			t.Errorf("event %d: goroutine ID not captured", i)
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", tr.Dropped())
	}
}

func TestRingBufferWraparound(t *testing.T) {
	tr := New(4)
	tr.Enable()
	for i := 0; i < 11; i++ {
		tr.Start("s", fmt.Sprintf("u%d", i)).End()
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want capacity 4", len(evs))
	}
	// The last 4 completions survive, still in completion order.
	for i, ev := range evs {
		want := fmt.Sprintf("u%d", 7+i)
		if ev.Unit != want {
			t.Errorf("event %d: unit = %q, want %q", i, ev.Unit, want)
		}
		if ev.ID != uint64(8+i) {
			t.Errorf("event %d: ID = %d, want %d", i, ev.ID, 8+i)
		}
	}
	if got := tr.Dropped(); got != 7 {
		t.Errorf("Dropped = %d, want 7", got)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(8)
	tr.SetSink(&buf)
	tr.Enable()
	tr.Start("gt1", "").End()
	sp := tr.Start("lt4", "ALU1")
	sp.EndErr(errors.New("boom"))
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	var evs []SpanEvent
	for i, line := range lines {
		var ev SpanEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		evs = append(evs, ev)
	}
	if evs[0].Stage != "gt1" || evs[1].Stage != "lt4" || evs[1].Unit != "ALU1" {
		t.Errorf("sink events wrong: %+v", evs)
	}
	if evs[1].Err != "boom" {
		t.Errorf("error outcome not serialized: %+v", evs[1])
	}
}

func TestDisabledTracerIsNoop(t *testing.T) {
	var nilTracer *Tracer
	nilTracer.Start("s", "").End() // must not panic
	tr := New(8)                   // never enabled
	tr.Start("s", "").End()
	if evs := tr.Events(); len(evs) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(evs))
	}
	withGlobals(t, nil, nil)
	Start("s", "u").EndErr(errors.New("x")) // zero span, no-op
	Add("c", 1)
	Set("g", 1)
}

func TestTracerDisableDropsInflight(t *testing.T) {
	tr := New(8)
	tr.Enable()
	sp := tr.Start("s", "")
	tr.Disable()
	sp.End()
	if evs := tr.Events(); len(evs) != 0 {
		t.Fatalf("span ending after Disable was recorded: %d events", len(evs))
	}
}

func TestMetricsAggregationConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Add("stage/counter", 1)
				m.Set(fmt.Sprintf("stage/u%d/gauge", w), int64(i))
				m.Observe("stage", time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := m.Counter("stage/counter"); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := m.Gauge(fmt.Sprintf("stage/u%d/gauge", w)); got != perWorker-1 {
			t.Errorf("gauge u%d = %d, want last value %d", w, got, perWorker-1)
		}
	}
	st, ok := m.Stage("stage")
	if !ok || st.Count != workers*perWorker {
		t.Errorf("stage stat = %+v ok=%v, want count %d", st, ok, workers*perWorker)
	}
	if st.Total != time.Duration(workers*perWorker)*time.Microsecond {
		t.Errorf("stage total = %v", st.Total)
	}
}

func TestSpanFeedsMetrics(t *testing.T) {
	m := NewMetrics()
	withGlobals(t, nil, m)
	sp := Start("gt2", "")
	time.Sleep(time.Millisecond)
	sp.End()
	st, ok := m.Stage("gt2")
	if !ok || st.Count != 1 || st.Total <= 0 || st.Max <= 0 {
		t.Fatalf("stage stat not recorded: %+v ok=%v", st, ok)
	}
}

func TestTableCoversStagesAndCounters(t *testing.T) {
	m := NewMetrics()
	m.Observe("gt1", time.Millisecond)
	m.Observe("lt4", time.Millisecond)
	m.Add("gt1/arcs_removed", 3)
	m.Add("hfmin/ALU1/iterations", 7)
	m.Set("lt/ALU1/states_before", 18)
	tab := m.Table()
	for _, want := range []string{"gt1", "lt4", "arcs_removed=3", "hfmin/ALU1/iterations", "lt/ALU1/states_before"} {
		if !bytes.Contains([]byte(tab), []byte(want)) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	if got := m.Stages(); len(got) != 2 || got[0] != "gt1" || got[1] != "lt4" {
		t.Errorf("Stages() = %v, want first-seen order [gt1 lt4]", got)
	}
}

// workload is a small fixed computation (~µs scale) standing in for one
// pipeline stage; the guard measures the disabled Span bracket against it.
var workSink int64

func workload() {
	s := int64(0)
	for i := int64(0); i < 5000; i++ {
		s += i * i % 7
	}
	workSink = s
}

// TestDisabledOverheadGuard is the benchmark guard required by the
// observability design: with no tracer and no metrics installed, the
// Start/End bracket must cost under 5% of a microsecond-scale stage. The
// measurement retries to ride out scheduler noise.
func TestDisabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard skipped in -short")
	}
	withGlobals(t, nil, nil)
	const tries = 5
	var best float64 = 1e9
	for i := 0; i < tries; i++ {
		base := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				workload()
			}
		})
		instr := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				sp := Start("stage", "unit")
				workload()
				sp.End()
			}
		})
		ratio := float64(instr.NsPerOp()) / float64(base.NsPerOp())
		if ratio < best {
			best = ratio
		}
		if best < 1.05 {
			return
		}
	}
	t.Errorf("disabled-observability overhead %.1f%% exceeds the 5%% budget", (best-1)*100)
}

func BenchmarkSpanDisabled(b *testing.B) {
	withGlobals(b, nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Start("stage", "unit").End()
	}
}

func BenchmarkSpanTraced(b *testing.B) {
	tr := New(4096)
	tr.Enable()
	withGlobals(b, tr, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Start("stage", "unit").End()
	}
}

func BenchmarkSpanMetricsOnly(b *testing.B) {
	withGlobals(b, nil, NewMetrics())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Start("stage", "unit").End()
	}
}
