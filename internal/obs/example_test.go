package obs_test

import (
	"fmt"

	"repro/internal/obs"
)

// Example shows the two halves of the observability layer: a Tracer
// recording structured spans into its ring buffer, and a Metrics registry
// aggregating the stage counters the -metrics table is built from.
func Example() {
	// Tracing: bracket each pipeline stage in a span.
	tr := obs.New(16)
	tr.Enable()
	sp := tr.Start("gt2", "")
	// ... the stage runs here ...
	sp.End()
	for _, ev := range tr.Events() {
		fmt.Println(ev.Stage, ev.Unit == "", ev.End >= ev.Start)
	}

	// Metrics: counters accumulate, gauges hold the last value.
	m := obs.NewMetrics()
	m.Add("gt2/arcs_removed", 13)
	m.Add("gt2/arcs_removed", 1)
	m.Set("lt/ALU1/states_before", 18)
	fmt.Println(m.Counter("gt2/arcs_removed"), m.Gauge("lt/ALU1/states_before"))
	// Output:
	// gt2 true true
	// 14 18
}

// ExampleMetrics_Table renders the per-stage table from counters alone
// (timings vary run to run, so this example records none).
func ExampleMetrics_Table() {
	m := obs.NewMetrics()
	m.Add("gt5/arcs_added", 1)
	m.Set("gt5/channels_after", 5)
	fmt.Print(m.Table())
	// Output:
	// stage        calls        total          max
	// counters:
	//   gt5/arcs_added                                  1
	// gauges:
	//   gt5/channels_after                              5
}
