package cdfg

// Reach answers precedence queries over a CDFG. Because loops execute
// repeatedly and the loop-parallelism transform lets two consecutive
// iterations overlap, queries are posed on a two-copy unrolling of the
// graph: copy 0 is "some iteration i", copy 1 is "iteration i+1". Regular
// arcs appear within each copy; loop repeat arcs (ENDLOOP→LOOP) and
// backward arcs cross from copy 0 to copy 1.
//
// Every constraint arc (x,y) guarantees "if y fires, x fired earlier", so
// precedence paths may use arcs of any branch. The exception is arcs in
// the alternative firing groups of an ENDIF node (then/else): the node can
// fire through the other group without the arc's source ever firing, so
// such arcs only participate when the query itself concerns that group.
type Reach struct {
	g     *Graph
	ids   []NodeID
	index map[NodeID]int
	adj   [][]edgeRec
}

type edgeRec struct {
	to  int
	arc *Arc
}

// NewReach builds the reachability structure for g.
func NewReach(g *Graph) *Reach {
	r := &Reach{g: g, index: map[NodeID]int{}}
	for _, n := range g.Nodes() {
		r.index[n.ID] = len(r.ids)
		r.ids = append(r.ids, n.ID)
	}
	n := len(r.ids)
	r.adj = make([][]edgeRec, 2*n)
	for _, a := range g.Arcs() {
		fi, ti := r.index[a.From], r.index[a.To]
		if r.crossesIteration(a) {
			r.adj[fi] = append(r.adj[fi], edgeRec{to: ti + n, arc: a}) // copy 0 → copy 1 only
		} else {
			r.adj[fi] = append(r.adj[fi], edgeRec{to: ti, arc: a})
			r.adj[fi+n] = append(r.adj[fi+n], edgeRec{to: ti + n, arc: a})
		}
	}
	return r
}

// crossesIteration reports whether the arc represents an iteration-crossing
// dependency: a backward arc, or a loop repeat arc (ENDLOOP→LOOP).
func (r *Reach) crossesIteration(a *Arc) bool {
	return a.Kind == ArcBackward || a.Group == GroupRepeat
}

// conditionalGroup reports whether the arc belongs to an ENDIF alternative
// group, whose precedence guarantee only holds for firings via that group.
func conditionalGroup(a *Arc) bool {
	return a.Group == GroupThen || a.Group == GroupElse
}

// path reports whether vertex v is reachable from vertex u, excluding arc
// skip (pass nil to exclude nothing) and any edge rejected by allow (nil
// allows everything).
func (r *Reach) path(u, v int, skip *Arc, allow func(*Arc) bool) bool {
	if u == v {
		return true
	}
	seen := make([]bool, len(r.adj))
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range r.adj[x] {
			if skip != nil && e.arc.ID == skip.ID {
				continue
			}
			if allow != nil && !allow(e.arc) {
				continue
			}
			if e.to == v {
				return true
			}
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return false
}

// precedenceAllow returns the edge filter for precedence queries: arcs in
// ENDIF alternative groups are excluded unless they share the query arc's
// destination and group.
func precedenceAllow(query *Arc) func(*Arc) bool {
	return func(e *Arc) bool {
		if !conditionalGroup(e) {
			return true
		}
		return query != nil && e.To == query.To && e.Group == query.Group
	}
}

// Precedes reports whether node x must fire before node y within the same
// iteration (a constraint path from x to y using within-iteration arcs).
func (r *Reach) Precedes(x, y NodeID) bool {
	if x == y {
		return false
	}
	return r.path(r.index[x], r.index[y], nil, precedenceAllow(nil))
}

// PrecedesCross reports whether node x's firing in iteration i must precede
// node y's firing in iteration i+1.
func (r *Reach) PrecedesCross(x, y NodeID) bool {
	n := len(r.ids)
	return r.path(r.index[x], r.index[y]+n, nil, precedenceAllow(nil))
}

// Dominated reports whether arc a is implied by the remaining constraints:
// a path from its source to its destination (in the appropriate iteration
// copy) that does not use a itself. Dominated arcs can be removed by GT2
// without changing the precedence order.
func (r *Reach) Dominated(a *Arc) bool {
	n := len(r.ids)
	fi, ti := r.index[a.From], r.index[a.To]
	if r.crossesIteration(a) {
		return r.path(fi, ti+n, a, precedenceAllow(a))
	}
	return r.path(fi, ti, a, precedenceAllow(a))
}

// WouldDominate reports whether a hypothetical arc from x to y (crossing
// iterations when cross is true) is already implied by existing
// constraints. Transforms use it to avoid adding redundant arcs.
func (r *Reach) WouldDominate(x, y NodeID, cross bool) bool {
	n := len(r.ids)
	if cross {
		return r.path(r.index[x], r.index[y]+n, nil, precedenceAllow(nil))
	}
	return r.path(r.index[x], r.index[y], nil, precedenceAllow(nil))
}

// NonConcurrent reports whether two arcs can never be simultaneously active
// (carrying an unconsumed token), accounting for the two-iteration overlap
// window permitted after loop parallelism. Arc e is active from the firing
// of its source until the firing of its destination.
//
// e1 and e2 are never concurrent when one is fully consumed before the
// other is produced in the same iteration, and the same holds across the
// one-iteration overlap in both directions.
func (r *Reach) NonConcurrent(a, b *Arc) bool {
	n := len(r.ids)
	allow := precedenceAllow(nil)
	ordered := func(first, second *Arc) bool {
		// first's consumption precedes second's production, within an
		// iteration and across the permitted overlap window.
		tFirst, fSecond := r.index[first.To], r.index[second.From]
		if !r.path(tFirst, fSecond, nil, allow) {
			return false
		}
		if !r.FiresRepeatedly(first.From) {
			return true // first is produced only once: no next-iteration token
		}
		// Across the overlap: second (iteration i) consumed before first
		// (iteration i+1) produced.
		tSecond, fFirst := r.index[second.To], r.index[first.From]
		return r.path(tSecond, fFirst+n, nil, allow)
	}
	return ordered(a, b) || ordered(b, a)
}

// WouldCycle reports whether adding an arc x→y would create a precedence
// cycle within an iteration (y already precedes or equals x).
func (r *Reach) WouldCycle(x, y NodeID) bool {
	if x == y {
		return true
	}
	return r.path(r.index[y], r.index[x], nil, nil)
}

// FiresRepeatedly reports whether a node fires more than once in an
// execution: it is inside a loop, or is itself a loop boundary node.
func (r *Reach) FiresRepeatedly(id NodeID) bool {
	n := r.g.Node(id)
	if n.Kind == KindLoop || n.Kind == KindEndLoop {
		return true
	}
	b := n.Block
	for b >= 0 {
		if r.g.Blocks[b].Kind == BlockLoop {
			return true
		}
		b = r.g.Blocks[b].Parent
	}
	return false
}

// EventsTotallyOrdered reports whether the production events of two arcs
// are totally ordered in every execution — the requirement for the arcs to
// share one transition-signaling wire with statically known alternating
// phases. Events from the same source node are one event (trivially
// ordered); otherwise the sources must be strictly interleaved: within an
// iteration one always precedes the other, and across the permitted
// iteration overlap the later one precedes the earlier one's next firing.
// Sources firing only once need just a one-directional ordering.
func (r *Reach) EventsTotallyOrdered(a, b *Arc) bool {
	s1, s2 := a.From, b.From
	if s1 == s2 {
		return true
	}
	rep1, rep2 := r.FiresRepeatedly(s1), r.FiresRepeatedly(s2)
	switch {
	case !rep1 && !rep2:
		return r.Precedes(s1, s2) || r.Precedes(s2, s1)
	case !rep1:
		// The single event must precede the whole repeated sequence.
		return r.Precedes(s1, s2)
	case !rep2:
		return r.Precedes(s2, s1)
	default:
		if r.Precedes(s1, s2) && r.PrecedesCross(s2, s1) {
			return true
		}
		return r.Precedes(s2, s1) && r.PrecedesCross(s1, s2)
	}
}

// SameLoopContext reports whether two nodes fire under identical loop
// nesting (the chains of enclosing loop blocks coincide). Arcs added by
// channel transforms must connect same-context nodes so token production
// and consumption rates match.
func (r *Reach) SameLoopContext(x, y NodeID) bool {
	cx, cy := r.loopChainOf(x), r.loopChainOf(y)
	if len(cx) != len(cy) {
		return false
	}
	for i := range cx {
		if cx[i] != cy[i] {
			return false
		}
	}
	return true
}

func (r *Reach) loopChainOf(id NodeID) []int {
	var out []int
	b := r.g.Node(id).Block
	for b >= 0 {
		blk := r.g.Blocks[b]
		if blk.Kind == BlockLoop {
			out = append([]int{blk.ID}, out...)
		}
		b = blk.Parent
	}
	return out
}
