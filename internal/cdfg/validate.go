package cdfg

import "fmt"

// BlockDesc renders a human-readable description of block b for
// diagnostics: the top-level block is named as such, loop and if blocks
// carry their condition register (the construct a user wrote), so error
// messages from Validate can point at source constructs instead of bare
// block numbers. Frontends lean on this to turn structural failures into
// source-level diagnostics.
func (g *Graph) BlockDesc(b int) string {
	if b < 0 || b >= len(g.Blocks) {
		return fmt.Sprintf("block %d (unknown)", b)
	}
	blk := g.Blocks[b]
	switch blk.Kind {
	case BlockTop:
		return "top-level block"
	case BlockLoop, BlockIf:
		kind := "loop"
		if blk.Kind == BlockIf {
			kind = "if"
		}
		cond := ""
		if root := g.Node(blk.Root); root != nil && root.Cond != "" {
			cond = fmt.Sprintf(" (%s %s)", kind, root.Cond)
		}
		return fmt.Sprintf("%s block %d%s", kind, blk.ID, cond)
	default:
		return fmt.Sprintf("block %d", b)
	}
}

// Validate checks the structural well-formedness of the CDFG:
//
//   - every arc's endpoints exist;
//   - arcs never cross block boundaries except at block roots/ends;
//   - every LOOP has exactly one repeat in-arc and at least one enter
//     in-arc; every IF end has then and else groups;
//   - operation nodes have statements, control nodes have conditions where
//     required;
//   - node firing is well-defined (no node without in-arcs except START).
//
// Error messages carry the enclosing block's description (BlockDesc) so
// callers that map nodes back to source constructs — the text frontend in
// particular — can report which loop or conditional a failure sits in.
func (g *Graph) Validate() error {
	for _, a := range g.Arcs() {
		from, to := g.Node(a.From), g.Node(a.To)
		if from == nil || to == nil {
			return fmt.Errorf("cdfg: arc %d has missing endpoint", a.ID)
		}
		if err := g.checkBlockCrossing(a, from, to); err != nil {
			return err
		}
	}
	for _, n := range g.Nodes() {
		switch n.Kind {
		case KindOp, KindAssign:
			if len(n.Stmts) == 0 {
				return fmt.Errorf("cdfg: node %d (%s) in %s has no statements", n.ID, n.Kind, g.BlockDesc(n.Block))
			}
			if n.FU == "" {
				return fmt.Errorf("cdfg: node %d (%s) in %s not bound to a functional unit", n.ID, n.Label(), g.BlockDesc(n.Block))
			}
		case KindLoop, KindIf:
			if n.Cond == "" {
				return fmt.Errorf("cdfg: node %d (%s) in %s has no condition register", n.ID, n.Kind, g.BlockDesc(n.Block))
			}
		}
		if n.Kind != KindStart && len(g.In(n.ID)) == 0 {
			return fmt.Errorf("cdfg: node %d (%s) in %s has no incoming arcs", n.ID, n.Label(), g.BlockDesc(n.Block))
		}
	}
	for _, b := range g.Blocks {
		if b.Kind == BlockLoop {
			repeat := 0
			enter := 0
			for _, a := range g.In(b.Root) {
				switch a.Group {
				case GroupRepeat:
					repeat++
				case GroupEnter:
					enter++
				}
			}
			if repeat != 1 {
				return fmt.Errorf("cdfg: %s has %d repeat arcs, want 1", g.BlockDesc(b.ID), repeat)
			}
			if enter == 0 {
				return fmt.Errorf("cdfg: %s has no enter arcs", g.BlockDesc(b.ID))
			}
		}
	}
	return nil
}

// checkBlockCrossing enforces the block-structure rule: an arc between
// different blocks must be anchored at a block root or end on the side of
// the deeper block.
func (g *Graph) checkBlockCrossing(a *Arc, from, to *Node) error {
	if from.Block == to.Block {
		return nil
	}
	// Arcs may connect a block's root/end (living in the parent) with body
	// nodes, and vice versa.
	if g.isBoundaryOf(from.ID, to.Block) || g.isBoundaryOf(to.ID, from.Block) {
		return nil
	}
	return fmt.Errorf("cdfg: arc %d (n%d→n%d, %s) crosses from %s into %s",
		a.ID, a.From, a.To, a.Kind, g.BlockDesc(from.Block), g.BlockDesc(to.Block))
}

// isBoundaryOf reports whether node id is the root or end of block b or of
// any ancestor of b.
func (g *Graph) isBoundaryOf(id NodeID, b int) bool {
	for b >= 0 {
		blk := g.Blocks[b]
		if blk.Root == id || blk.End == id {
			return true
		}
		b = blk.Parent
	}
	return false
}
