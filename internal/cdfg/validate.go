package cdfg

import "fmt"

// Validate checks the structural well-formedness of the CDFG:
//
//   - every arc's endpoints exist;
//   - arcs never cross block boundaries except at block roots/ends;
//   - every LOOP has exactly one repeat in-arc and at least one enter
//     in-arc; every IF end has then and else groups;
//   - operation nodes have statements, control nodes have conditions where
//     required;
//   - node firing is well-defined (no node without in-arcs except START).
func (g *Graph) Validate() error {
	for _, a := range g.Arcs() {
		from, to := g.Node(a.From), g.Node(a.To)
		if from == nil || to == nil {
			return fmt.Errorf("cdfg: arc %d has missing endpoint", a.ID)
		}
		if err := g.checkBlockCrossing(a, from, to); err != nil {
			return err
		}
	}
	for _, n := range g.Nodes() {
		switch n.Kind {
		case KindOp, KindAssign:
			if len(n.Stmts) == 0 {
				return fmt.Errorf("cdfg: node %d (%s) has no statements", n.ID, n.Kind)
			}
			if n.FU == "" {
				return fmt.Errorf("cdfg: node %d (%s) not bound to a functional unit", n.ID, n.Label())
			}
		case KindLoop, KindIf:
			if n.Cond == "" {
				return fmt.Errorf("cdfg: node %d (%s) has no condition register", n.ID, n.Kind)
			}
		}
		if n.Kind != KindStart && len(g.In(n.ID)) == 0 {
			return fmt.Errorf("cdfg: node %d (%s) has no incoming arcs", n.ID, n.Label())
		}
	}
	for _, b := range g.Blocks {
		if b.Kind == BlockLoop {
			repeat := 0
			enter := 0
			for _, a := range g.In(b.Root) {
				switch a.Group {
				case GroupRepeat:
					repeat++
				case GroupEnter:
					enter++
				}
			}
			if repeat != 1 {
				return fmt.Errorf("cdfg: loop block %d has %d repeat arcs, want 1", b.ID, repeat)
			}
			if enter == 0 {
				return fmt.Errorf("cdfg: loop block %d has no enter arcs", b.ID)
			}
		}
	}
	return nil
}

// checkBlockCrossing enforces the block-structure rule: an arc between
// different blocks must be anchored at a block root or end on the side of
// the deeper block.
func (g *Graph) checkBlockCrossing(a *Arc, from, to *Node) error {
	if from.Block == to.Block {
		return nil
	}
	// Arcs may connect a block's root/end (living in the parent) with body
	// nodes, and vice versa.
	if g.isBoundaryOf(from.ID, to.Block) || g.isBoundaryOf(to.ID, from.Block) {
		return nil
	}
	return fmt.Errorf("cdfg: arc %d (n%d→n%d, %s) crosses block boundary %d→%d",
		a.ID, a.From, a.To, a.Kind, from.Block, to.Block)
}

// isBoundaryOf reports whether node id is the root or end of block b or of
// any ancestor of b.
func (g *Graph) isBoundaryOf(id NodeID, b int) bool {
	for b >= 0 {
		blk := g.Blocks[b]
		if blk.Root == id || blk.End == id {
			return true
		}
		b = blk.Parent
	}
	return false
}
