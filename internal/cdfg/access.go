package cdfg

import "sort"

// RegAccess describes one access to a register within a block, at block
// granularity: nested blocks that touch the register internally appear as a
// single access anchored at their root/end nodes.
type RegAccess struct {
	// InNode anchors arcs pointing at this access (the node itself, or a
	// nested block's root).
	InNode NodeID
	// OutNode and OutBranch anchor arcs leaving this access (the node
	// itself; a nested loop's root with the exit branch; a nested if's end).
	OutNode   NodeID
	OutBranch OutBranch
	Reads     bool
	Writes    bool
	Order     int
}

// RegAccessesIn returns the ordered accesses to register reg within block
// b, at block granularity.
func (g *Graph) RegAccessesIn(block int, reg string) []RegAccess {
	ag := &arcGen{g: g}
	var out []RegAccess
	for _, a := range ag.regAccesses(g.Blocks[block], reg) {
		out = append(out, RegAccess{
			InNode:    a.in(g),
			OutNode:   outNodeOf(g, a.entry),
			OutBranch: outBranchOf(g, a.entry),
			Reads:     a.reads,
			Writes:    a.writes,
			Order:     a.order(g),
		})
	}
	return out
}

func outNodeOf(g *Graph, e entry) NodeID {
	n, _ := e.out(g)
	return n
}

func outBranchOf(g *Graph, e entry) OutBranch {
	_, b := e.out(g)
	return b
}

// BlockRegs returns the registers (excluding constants) accessed anywhere
// inside block b, transitively.
func (g *Graph) BlockRegs(block int) []string {
	ag := &arcGen{g: g}
	set := map[string]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		for _, id := range b.Nodes {
			n := g.Node(id)
			for _, r := range n.Reads() {
				set[r] = true
			}
			for _, r := range n.Writes() {
				set[r] = true
			}
			if n.Kind == KindLoop || n.Kind == KindIf {
				if sub := ag.blockOfRoot(id); sub != nil {
					walk(sub)
				}
			}
		}
	}
	walk(g.Blocks[block])
	var out []string
	for r := range set {
		if !g.Consts[r] {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// BlockWritesReg reports whether block b (transitively) writes register r.
func (g *Graph) BlockWritesReg(block int, r string) bool {
	ag := &arcGen{g: g}
	return ag.blockAccessesReg(g.Blocks[block], r, true)
}

// NodeInBlock reports whether node id belongs to block b or one of its
// descendants.
func (g *Graph) NodeInBlock(id NodeID, block int) bool {
	b := g.Node(id).Block
	for b >= 0 {
		if b == block {
			return true
		}
		b = g.Blocks[b].Parent
	}
	return false
}
