package cdfg

import (
	"strings"
	"testing"
)

// buildDiffeq constructs the DIFFEQ benchmark CDFG locally (the diffeq
// package depends on cdfg, so the tests re-declare the program here).
func buildDiffeq(t *testing.T) *Graph {
	t.Helper()
	p := NewProgram("diffeq", "ALU1", "ALU2", "MUL1", "MUL2")
	p.Const("dx", "dx2", "a")
	p.Op("ALU1", "B", OpAdd, "dx2", "dx")
	p.Loop("ALU2", "C")
	p.Op("MUL1", "M1", OpMul, "U", "X1")
	p.Op("MUL2", "M2", OpMul, "U", "dx")
	p.Op("ALU1", "A", OpAdd, "Y", "M1")
	p.Op("MUL1", "M1", OpMul, "A", "B")
	p.Op("ALU1", "U", OpSub, "U", "M1")
	p.Op("ALU2", "X", OpAdd, "X", "dx")
	p.Op("ALU2", "Y", OpAdd, "Y", "M2")
	p.Assign("ALU2", "X1", "X")
	p.Op("ALU2", "C", OpLT, "X", "a")
	p.EndLoop()
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// nodeByLabel finds a node by its printable label.
func nodeByLabel(t *testing.T, g *Graph, label string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Label() == label {
			return n
		}
	}
	t.Fatalf("no node labeled %q in:\n%s", label, g)
	return nil
}

func arcBetween(t *testing.T, g *Graph, from, to string) *Arc {
	t.Helper()
	a := g.FindArc(nodeByLabel(t, g, from).ID, nodeByLabel(t, g, to).ID)
	if a == nil {
		t.Fatalf("no arc %q -> %q in:\n%s", from, to, g)
	}
	return a
}

func noArcBetween(t *testing.T, g *Graph, from, to string) {
	t.Helper()
	if a := g.FindArc(nodeByLabel(t, g, from).ID, nodeByLabel(t, g, to).ID); a != nil {
		t.Fatalf("unexpected arc %q -> %q (kind %s)", from, to, a.Kind)
	}
}

func TestDiffeqValidates(t *testing.T) {
	g := buildDiffeq(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v\n%s", err, g)
	}
}

func TestDiffeqNodeInventory(t *testing.T) {
	g := buildDiffeq(t)
	// START, END, B, LOOP, ENDLOOP + 9 loop body statements.
	if got := len(g.Nodes()); got != 14 {
		t.Errorf("node count = %d, want 14\n%s", got, g)
	}
	if len(g.Blocks) != 2 {
		t.Fatalf("block count = %d, want 2", len(g.Blocks))
	}
	if g.Blocks[1].Kind != BlockLoop {
		t.Errorf("block 1 kind = %v, want loop", g.Blocks[1].Kind)
	}
	if got := len(g.Blocks[1].Nodes); got != 9 {
		t.Errorf("loop body node count = %d, want 9", got)
	}
}

// TestDiffeqPaperArcs checks every constraint arc the paper names
// explicitly in its Figure 1 discussion.
func TestDiffeqPaperArcs(t *testing.T) {
	g := buildDiffeq(t)
	// "the arc (LOOP, A := Y + M1) is a control arc"
	if a := arcBetween(t, g, "LOOP C", "A:=Y+M1"); a.Kind != ArcControl {
		t.Errorf("LOOP->A kind = %s, want control", a.Kind)
	}
	// "(A := Y + M1, U := U - M1) is a scheduling arc for ALU1"
	if a := arcBetween(t, g, "A:=Y+M1", "U:=U-M1"); a.Kind != ArcSched {
		t.Errorf("A->U kind = %s, want sched", a.Kind)
	}
	// "(M1 := U * X1, A := Y + M1) ... data dependencies"
	if a := arcBetween(t, g, "M1:=U*X1", "A:=Y+M1"); a.Kind != ArcData {
		t.Errorf("M1a->A kind = %s, want data", a.Kind)
	}
	// "(A := Y + M1, M1 := A * B) ... data dependencies"
	arcBetween(t, g, "A:=Y+M1", "M1:=A*B")
	// "(M1 := U * X1, U := U - M1) is a register allocation constraint arc
	// with respect to U"
	if a := arcBetween(t, g, "M1:=U*X1", "U:=U-M1"); a.Kind != ArcRegAlloc {
		t.Errorf("M1a->U kind = %s, want reg-alloc", a.Kind)
	}
	// Arc 10 of Figure 3: (M2 := U*dx, U := U-M1), anti-dependency on U.
	if a := arcBetween(t, g, "M2:=U*dx", "U:=U-M1"); a.Kind != ArcRegAlloc {
		t.Errorf("M2->U kind = %s, want reg-alloc", a.Kind)
	}
	// Arc 11: (M1 := A*B, U := U-M1), data dependency on M1.
	if a := arcBetween(t, g, "M1:=A*B", "U:=U-M1"); a.Kind != ArcData {
		t.Errorf("M1b->U kind = %s, want data", a.Kind)
	}
	// The three ENDLOOP synchronization arcs (labels 1-3) plus the FU
	// scheduling arc 4 from C := X<a.
	arcBetween(t, g, "U:=U-M1", "ENDLOOP")
	arcBetween(t, g, "M1:=A*B", "ENDLOOP")
	arcBetween(t, g, "M2:=U*dx", "ENDLOOP")
	if a := arcBetween(t, g, "C:=X<a", "ENDLOOP"); a.Kind != ArcSched {
		t.Errorf("C->ENDLOOP kind = %s, want sched", a.Kind)
	}
}

func TestDiffeqEndloopInDegree(t *testing.T) {
	g := buildDiffeq(t)
	el := nodeByLabel(t, g, "ENDLOOP")
	if got := len(g.In(el.ID)); got != 4 {
		t.Errorf("ENDLOOP in-degree = %d, want 4 (three sync arcs + FU sched arc)", got)
	}
}

func TestDiffeqLoopGroups(t *testing.T) {
	g := buildDiffeq(t)
	loop := nodeByLabel(t, g, "LOOP C")
	var enter, repeat int
	for _, a := range g.In(loop.ID) {
		switch a.Group {
		case GroupEnter:
			enter++
		case GroupRepeat:
			repeat++
		default:
			t.Errorf("LOOP in-arc %d has group %d", a.ID, a.Group)
		}
	}
	if repeat != 1 {
		t.Errorf("repeat arcs = %d, want 1", repeat)
	}
	if enter < 1 {
		t.Errorf("enter arcs = %d, want >= 1", enter)
	}
}

func TestDiffeqPreLoopDataThroughRoot(t *testing.T) {
	g := buildDiffeq(t)
	// B is written before the loop and read inside it; the dependency must
	// enter at the LOOP root, not cross the block boundary directly.
	arcBetween(t, g, "B:=dx2+dx", "LOOP C")
	noArcBetween(t, g, "B:=dx2+dx", "M1:=A*B")
}

func TestDiffeqNoCrossIterationArcs(t *testing.T) {
	g := buildDiffeq(t)
	// Cross-iteration dependencies (e.g. U:=U-M1 feeding next iteration's
	// M1:=U*X1) are handled by the ENDLOOP synchronization, not by arcs.
	noArcBetween(t, g, "U:=U-M1", "M1:=U*X1")
	noArcBetween(t, g, "X1:=X", "M1:=U*X1")
	noArcBetween(t, g, "C:=X<a", "LOOP C")
}

func TestDiffeqChannels(t *testing.T) {
	g := buildDiffeq(t)
	fufu := g.InterFUArcs(false)
	withEnv := g.InterFUArcs(true)
	// The paper reports 17 unoptimized channels for this CDFG; our
	// generator produces 15 FU-to-FU arcs plus 3 environment arcs
	// (START→B, START→LOOP, LOOP→END). Pin the exact values so
	// regressions are visible.
	if len(fufu) != 15 {
		t.Errorf("FU-FU channel count = %d, want 15\n%s", len(fufu), g)
	}
	if len(withEnv) != 18 {
		t.Errorf("channel count with environment = %d, want 18", len(withEnv))
	}
}

func TestDiffeqExitBranch(t *testing.T) {
	g := buildDiffeq(t)
	a := arcBetween(t, g, "LOOP C", "END")
	if a.Branch != OutFalse {
		t.Errorf("LOOP->END branch = %d, want OutFalse", a.Branch)
	}
	for _, name := range []string{"M1:=U*X1", "M2:=U*dx", "A:=Y+M1", "X:=X+dx"} {
		a := arcBetween(t, g, "LOOP C", name)
		if a.Branch != OutTrue {
			t.Errorf("LOOP->%s branch = %d, want OutTrue", name, a.Branch)
		}
	}
}

func TestProgramErrors(t *testing.T) {
	if _, err := NewProgram("x", "FU").Op("BAD", "r", OpAdd, "a", "b").Build(); err == nil {
		t.Error("unknown FU accepted")
	}
	if _, err := NewProgram("x", "FU").Loop("FU", "c").Build(); err == nil {
		t.Error("unclosed loop accepted")
	}
	if _, err := NewProgram("x", "FU").EndLoop().Build(); err == nil {
		t.Error("EndLoop without loop accepted")
	}
	if _, err := NewProgram("x", "FU").Const("k").Op("FU", "k", OpAdd, "a", "b").Build(); err == nil {
		t.Error("write to constant accepted")
	}
	if _, err := NewProgram("x", "FU").If("FU", "c").EndLoop().Build(); err == nil {
		t.Error("EndLoop closing an if accepted")
	}
}

func TestIfBlockStructure(t *testing.T) {
	p := NewProgram("gcdish", "ALU")
	p.Op("ALU", "d", OpSub, "a", "b")
	p.Op("ALU", "c", OpGT, "a", "b")
	p.If("ALU", "c")
	p.Op("ALU", "a", OpSub, "a", "b")
	p.EndIf()
	p.Op("ALU", "e", OpAdd, "a", "b")
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v\n%s", err, g)
	}
	endif := nodeByLabel(t, g, "ENDIF")
	var then, els int
	for _, a := range g.In(endif.ID) {
		switch a.Group {
		case GroupThen:
			then++
		case GroupElse:
			els++
		}
	}
	if then == 0 || els != 1 {
		t.Errorf("ENDIF groups: then=%d else=%d, want >=1 and 1", then, els)
	}
	// The bypass arc takes the false branch.
	byp := arcBetween(t, g, "IF c", "ENDIF")
	if byp.Branch != OutFalse {
		t.Errorf("bypass branch = %d, want OutFalse", byp.Branch)
	}
	// e:=a+b reads the conditionally-written a: dependency must come from
	// ENDIF, which fires on both branches.
	arcBetween(t, g, "ENDIF", "e:=a+b")
}

func TestCloneIndependence(t *testing.T) {
	g := buildDiffeq(t)
	c := g.Clone()
	nArcs := len(g.Arcs())
	// Remove an arc from the clone; original unchanged.
	c.RemoveArc(c.Arcs()[0].ID)
	if len(g.Arcs()) != nArcs {
		t.Error("clone shares arc storage with original")
	}
	if len(c.Arcs()) != nArcs-1 {
		t.Error("clone arc removal failed")
	}
	// Mutating a clone node must not affect the original.
	c.Nodes()[2].FU = "OTHER"
	found := false
	for _, n := range g.Nodes() {
		if n.FU == "OTHER" {
			found = true
		}
	}
	if found {
		t.Error("clone shares node storage with original")
	}
}

func TestDOTOutput(t *testing.T) {
	g := buildDiffeq(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "cluster_", "LOOP C", "style=dashed", "style=dotted"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestFUNodesOrder(t *testing.T) {
	g := buildDiffeq(t)
	alu1 := g.FUNodes("ALU1")
	if len(alu1) != 3 {
		t.Fatalf("ALU1 has %d nodes, want 3", len(alu1))
	}
	want := []string{"B:=dx2+dx", "A:=Y+M1", "U:=U-M1"}
	for i, n := range alu1 {
		if n.Label() != want[i] {
			t.Errorf("ALU1[%d] = %s, want %s", i, n.Label(), want[i])
		}
	}
}

func TestStmtAccessors(t *testing.T) {
	s := Stmt{Dst: "A", Op: OpAdd, Src1: "Y", Src2: "M1"}
	if got := s.Reads(); len(got) != 2 || got[0] != "Y" || got[1] != "M1" {
		t.Errorf("Reads = %v", got)
	}
	mv := Stmt{Dst: "X1", Op: OpMov, Src1: "X"}
	if got := mv.Reads(); len(got) != 1 || got[0] != "X" {
		t.Errorf("mov Reads = %v", got)
	}
	if mv.String() != "X1:=X" {
		t.Errorf("mov String = %s", mv.String())
	}
}

func TestUsesFU(t *testing.T) {
	g := buildDiffeq(t)
	if nodeByLabel(t, g, "X1:=X").UsesFU() {
		t.Error("assignment node should not use its FU")
	}
	if !nodeByLabel(t, g, "A:=Y+M1").UsesFU() {
		t.Error("op node should use its FU")
	}
	if nodeByLabel(t, g, "LOOP C").UsesFU() {
		t.Error("LOOP should not use its FU datapath")
	}
}
