// Package cdfg implements scheduled, resource-bound Control-Data Flow
// Graphs in the form used by Theobald & Nowick (DAC 2001) for asynchronous
// distributed control synthesis.
//
// A CDFG is block-structured: the nodes between LOOP/ENDLOOP and IF/ENDIF
// pairs form blocks, and constraint arcs never cross block boundaries (they
// enter and exit at the block root). Operation nodes are bound to functional
// units; explicit constraint arcs encode control flow, per-unit scheduling,
// data dependencies and register allocation (anti-dependencies). A node may
// fire when all its predecessor arcs carry tokens; backward arcs (added by
// the loop-parallelism transform) are pre-enabled on loop entry.
package cdfg

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a Graph.
type NodeID int

// ArcID identifies an arc within a Graph.
type ArcID int

// NodeKind classifies CDFG nodes.
type NodeKind int

// Node kinds per the paper: START/END delimit the program, LOOP/ENDLOOP and
// IF/ENDIF delimit blocks, Op nodes use their functional unit, Assign nodes
// only move register values.
const (
	KindStart NodeKind = iota
	KindEnd
	KindLoop
	KindEndLoop
	KindIf
	KindEndIf
	KindOp
	KindAssign
)

func (k NodeKind) String() string {
	switch k {
	case KindStart:
		return "START"
	case KindEnd:
		return "END"
	case KindLoop:
		return "LOOP"
	case KindEndLoop:
		return "ENDLOOP"
	case KindIf:
		return "IF"
	case KindEndIf:
		return "ENDIF"
	case KindOp:
		return "OP"
	case KindAssign:
		return "ASSIGN"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Op is an RTL operation mnemonic.
type Op string

// Supported RTL operations. OpMov is a pure register move (an assignment
// node, which does not use its functional unit).
const (
	OpAdd Op = "+"
	OpSub Op = "-"
	OpMul Op = "*"
	OpLT  Op = "<"
	OpGT  Op = ">"
	OpEQ  Op = "=="
	OpMod Op = "%"
	OpMov Op = "mov"
)

// Stmt is a single RTL statement Dst := Src1 Op Src2 (or Dst := Src1 for
// OpMov).
type Stmt struct {
	Dst  string
	Op   Op
	Src1 string
	Src2 string
}

// Reads returns the registers read by the statement.
func (s Stmt) Reads() []string {
	if s.Op == OpMov || s.Src2 == "" {
		return []string{s.Src1}
	}
	return []string{s.Src1, s.Src2}
}

func (s Stmt) String() string {
	if s.Op == OpMov {
		return fmt.Sprintf("%s:=%s", s.Dst, s.Src1)
	}
	return fmt.Sprintf("%s:=%s%s%s", s.Dst, s.Src1, s.Op, s.Src2)
}

// InGroup classifies a node's incoming arcs into alternative firing groups.
// A node fires when every GroupAll in-arc has a token and, if the node has
// any alternative-group in-arcs, all arcs of at least one alternative group
// have tokens.
type InGroup int

// Incoming arc groups. GroupEnter/GroupRepeat are the alternative entry
// paths of a LOOP node; GroupThen/GroupElse are the alternative join paths
// of an ENDIF node.
const (
	GroupAll InGroup = iota
	GroupEnter
	GroupRepeat
	GroupThen
	GroupElse
)

// OutBranch classifies a node's outgoing arcs. Branch-capable nodes (LOOP,
// IF) emit tokens only on the arcs matching the condition outcome.
type OutBranch int

// Outgoing arc branches.
const (
	OutAlways OutBranch = iota
	OutTrue
	OutFalse
)

// ArcKind classifies constraint arcs per the paper's taxonomy.
type ArcKind int

// Arc kinds. ArcBackward arcs are added by the loop-parallelism transform
// and are pre-enabled on loop entry.
const (
	ArcControl ArcKind = iota
	ArcSched
	ArcData
	ArcRegAlloc
	ArcBackward
)

func (k ArcKind) String() string {
	switch k {
	case ArcControl:
		return "control"
	case ArcSched:
		return "sched"
	case ArcData:
		return "data"
	case ArcRegAlloc:
		return "reg"
	case ArcBackward:
		return "backward"
	default:
		return fmt.Sprintf("ArcKind(%d)", int(k))
	}
}

// Node is a CDFG node. Stmts holds one statement for Op/Assign nodes and
// several after assignment merging (GT4). Cond names the condition register
// of LOOP and IF nodes.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	FU    string
	Stmts []Stmt
	Cond  string
	Block int // block this node belongs to (its body for Loop/If roots' parents)
	Order int // program order used for scheduling and dependency generation
}

// Label returns a human-readable node label.
func (n *Node) Label() string {
	switch n.Kind {
	case KindOp, KindAssign:
		parts := make([]string, len(n.Stmts))
		for i, s := range n.Stmts {
			parts[i] = s.String()
		}
		return strings.Join(parts, "; ")
	case KindLoop:
		return "LOOP " + n.Cond
	case KindIf:
		return "IF " + n.Cond
	default:
		return n.Kind.String()
	}
}

// UsesFU reports whether the node occupies its functional unit's datapath
// (assignment nodes and pure control nodes do not).
func (n *Node) UsesFU() bool {
	if n.Kind != KindOp {
		return false
	}
	for _, s := range n.Stmts {
		if s.Op != OpMov {
			return true
		}
	}
	return false
}

// Writes returns the registers written by the node.
func (n *Node) Writes() []string {
	var out []string
	for _, s := range n.Stmts {
		out = append(out, s.Dst)
	}
	return out
}

// Reads returns the registers read by the node (including the condition
// register of LOOP/IF nodes).
func (n *Node) Reads() []string {
	var out []string
	for _, s := range n.Stmts {
		out = append(out, s.Reads()...)
	}
	if n.Cond != "" {
		out = append(out, n.Cond)
	}
	return out
}

// Arc is a constraint arc. Inter-functional-unit arcs become communication
// channels (single "ready" wires) in the target architecture.
type Arc struct {
	ID     ArcID
	From   NodeID
	To     NodeID
	Kind   ArcKind
	Group  InGroup   // firing group at the destination
	Branch OutBranch // emission branch at the source
	Note   string    // e.g. the register responsible for the dependency
}

// BlockKind classifies blocks.
type BlockKind int

// Block kinds.
const (
	BlockTop BlockKind = iota
	BlockLoop
	BlockIf
)

// Block is a block-structured region: the top level, a loop body, or an if
// body.
type Block struct {
	ID     int
	Kind   BlockKind
	Root   NodeID // LOOP or IF node (unset for top)
	End    NodeID // ENDLOOP or ENDIF node (unset for top)
	Parent int    // parent block ID (-1 for top)
	Nodes  []NodeID
}

// Graph is a scheduled, resource-bound CDFG.
type Graph struct {
	Name   string
	nodes  map[NodeID]*Node
	arcs   map[ArcID]*Arc
	nextN  NodeID
	nextA  ArcID
	Blocks []*Block
	FUs    []string
	Start  NodeID
	End    NodeID
	// Consts lists registers treated as constants (never written, no
	// register-allocation arcs needed).
	Consts map[string]bool
	// Init holds initial register values for simulation.
	Init map[string]float64
}

// NewGraph creates an empty CDFG with START and END nodes and a top-level
// block.
func NewGraph(name string, fus []string) *Graph {
	g := &Graph{
		Name:   name,
		nodes:  map[NodeID]*Node{},
		arcs:   map[ArcID]*Arc{},
		FUs:    append([]string(nil), fus...),
		Consts: map[string]bool{},
	}
	g.Blocks = []*Block{{ID: 0, Kind: BlockTop, Parent: -1}}
	g.Start = g.AddNode(&Node{Kind: KindStart, Block: 0})
	g.End = g.AddNode(&Node{Kind: KindEnd, Block: 0})
	return g
}

// AddNode inserts a node and returns its ID. The caller sets Kind, FU,
// Stmts, Cond and Block; Order defaults to insertion order.
func (g *Graph) AddNode(n *Node) NodeID {
	id := g.nextN
	g.nextN++
	n.ID = id
	if n.Order == 0 {
		n.Order = int(id)
	}
	g.nodes[id] = n
	if n.Block >= 0 && n.Block < len(g.Blocks) {
		g.Blocks[n.Block].Nodes = append(g.Blocks[n.Block].Nodes, id)
	}
	return id
}

// AddBlock creates a new block and returns its ID.
func (g *Graph) AddBlock(kind BlockKind, parent int) int {
	b := &Block{ID: len(g.Blocks), Kind: kind, Parent: parent}
	g.Blocks = append(g.Blocks, b)
	return b.ID
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Arc returns the arc with the given ID, or nil.
func (g *Graph) Arc(id ArcID) *Arc { return g.arcs[id] }

// AddArc inserts an arc and returns its ID. Duplicate arcs (same endpoints
// and group) are coalesced: the existing arc is returned and its note
// extended.
func (g *Graph) AddArc(a *Arc) ArcID {
	for _, e := range g.arcs {
		if e.From == a.From && e.To == a.To && e.Group == a.Group && e.Branch == a.Branch {
			if a.Note != "" && !strings.Contains(e.Note, a.Note) {
				if e.Note != "" {
					e.Note += ","
				}
				e.Note += a.Note
			}
			return e.ID
		}
	}
	id := g.nextA
	g.nextA++
	a.ID = id
	g.arcs[id] = a
	return id
}

// RemoveArc deletes an arc.
func (g *Graph) RemoveArc(id ArcID) { delete(g.arcs, id) }

// RemoveNode deletes a node, its incident arcs, and its block-list entry.
func (g *Graph) RemoveNode(id NodeID) {
	for _, a := range g.Arcs() {
		if a.From == id || a.To == id {
			g.RemoveArc(a.ID)
		}
	}
	n := g.nodes[id]
	if n != nil && n.Block >= 0 && n.Block < len(g.Blocks) {
		blk := g.Blocks[n.Block]
		for i, x := range blk.Nodes {
			if x == id {
				blk.Nodes = append(blk.Nodes[:i], blk.Nodes[i+1:]...)
				break
			}
		}
	}
	delete(g.nodes, id)
}

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Arcs returns all arcs sorted by ID.
func (g *Graph) Arcs() []*Arc {
	out := make([]*Arc, 0, len(g.arcs))
	for _, a := range g.arcs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// In returns the incoming arcs of node id sorted by arc ID.
func (g *Graph) In(id NodeID) []*Arc {
	var out []*Arc
	for _, a := range g.arcs {
		if a.To == id {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Out returns the outgoing arcs of node id sorted by arc ID.
func (g *Graph) Out(id NodeID) []*Arc {
	var out []*Arc
	for _, a := range g.arcs {
		if a.From == id {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FindArc returns the arc from → to, or nil.
func (g *Graph) FindArc(from, to NodeID) *Arc {
	for _, a := range g.arcs {
		if a.From == from && a.To == to {
			return a
		}
	}
	return nil
}

// FUNodes returns the nodes bound to the given functional unit across the
// whole graph, in program order. LOOP/ENDLOOP and IF/ENDIF nodes appear in
// the schedule of the unit they are bound to.
func (g *Graph) FUNodes(fu string) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.FU == fu {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// BlockNodes returns the nodes of block b in program order (excluding the
// root and end nodes of b itself, which belong to the parent for scheduling
// but are recorded on the block).
func (g *Graph) BlockNodes(b int) []*Node {
	blk := g.Blocks[b]
	var out []*Node
	for _, id := range blk.Nodes {
		out = append(out, g.nodes[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// LoopOf returns the innermost enclosing loop block of block b, or nil.
func (g *Graph) LoopOf(b int) *Block {
	for b >= 0 {
		blk := g.Blocks[b]
		if blk.Kind == BlockLoop {
			return blk
		}
		b = blk.Parent
	}
	return nil
}

// Clone returns a deep copy of the graph. Transforms operate on clones so
// the optimization pipeline can compare stages.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Name:   g.Name,
		nodes:  make(map[NodeID]*Node, len(g.nodes)),
		arcs:   make(map[ArcID]*Arc, len(g.arcs)),
		nextN:  g.nextN,
		nextA:  g.nextA,
		FUs:    append([]string(nil), g.FUs...),
		Start:  g.Start,
		End:    g.End,
		Consts: make(map[string]bool, len(g.Consts)),
	}
	for k, v := range g.Consts {
		ng.Consts[k] = v
	}
	if g.Init != nil {
		ng.Init = make(map[string]float64, len(g.Init))
		for k, v := range g.Init {
			ng.Init[k] = v
		}
	}
	for id, n := range g.nodes {
		cp := *n
		cp.Stmts = append([]Stmt(nil), n.Stmts...)
		ng.nodes[id] = &cp
	}
	for id, a := range g.arcs {
		cp := *a
		ng.arcs[id] = &cp
	}
	for _, b := range g.Blocks {
		cb := *b
		cb.Nodes = append([]NodeID(nil), b.Nodes...)
		ng.Blocks = append(ng.Blocks, &cb)
	}
	return ng
}

// InterFUArcs returns the arcs whose endpoints are bound to different
// functional units; these are the arcs realized as communication channels.
// Arcs incident to START/END (unbound nodes) are included when env is true:
// they become channels to the environment.
func (g *Graph) InterFUArcs(env bool) []*Arc {
	var out []*Arc
	for _, a := range g.Arcs() {
		from, to := g.nodes[a.From], g.nodes[a.To]
		if from.FU == "" || to.FU == "" {
			if env {
				out = append(out, a)
			}
			continue
		}
		if from.FU != to.FU {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// String renders a compact textual description of the graph.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cdfg %s (%d nodes, %d arcs)\n", g.Name, len(g.nodes), len(g.arcs))
	for _, n := range g.Nodes() {
		fu := n.FU
		if fu == "" {
			fu = "-"
		}
		fmt.Fprintf(&b, "  n%d [%s] %s\n", n.ID, fu, n.Label())
	}
	for _, a := range g.Arcs() {
		fmt.Fprintf(&b, "  a%d n%d -> n%d (%s)\n", a.ID, a.From, a.To, a.Kind)
	}
	return b.String()
}
