package cdfg

import "sort"

// arcGen derives all constraint arcs of a freshly built CDFG, per §2.1 of
// the paper: control-flow arcs, per-unit scheduling arcs, data-dependency
// arcs and register-allocation (anti-dependency) arcs. All arcs respect
// block structure: they enter and exit nested blocks only at the block root
// (or, for post-block ordering, leave via the root's exit branch or the
// block end node).
type arcGen struct {
	g *Graph
}

// entry is one element of a functional unit's schedule chain within a
// block: either a plain node or a nested block (represented by its
// root/end pair).
type entry struct {
	node *Node
	blk  *Block
}

func (e entry) in(g *Graph) NodeID {
	if e.node != nil {
		return e.node.ID
	}
	return e.blk.Root
}

// out returns the node and branch that signal completion of the entry: a
// plain node completes itself; a loop "completes" when its root exits
// (false branch); an if completes at its end node.
func (e entry) out(g *Graph) (NodeID, OutBranch) {
	if e.node != nil {
		return e.node.ID, OutAlways
	}
	if e.blk.Kind == BlockLoop {
		return e.blk.Root, OutFalse
	}
	return e.blk.End, OutAlways
}

func (e entry) order(g *Graph) int {
	if e.node != nil {
		return e.node.Order
	}
	return g.Node(e.blk.Root).Order
}

func (ag *arcGen) run() error {
	ag.schedAndControl()
	ag.dataArcs()
	ag.regAllocArcs()
	ag.assignGroups()
	return nil
}

// entriesFor returns the schedule chain of functional unit fu within block
// b: its plain nodes plus nested blocks that involve fu (as owner or via
// internal nodes), in program order.
func (ag *arcGen) entriesFor(b *Block, fu string) []entry {
	g := ag.g
	var out []entry
	seen := map[int]bool{}
	for _, id := range b.Nodes {
		n := g.Node(id)
		switch n.Kind {
		case KindLoop, KindIf:
			sub := ag.blockOfRoot(id)
			if sub != nil && !seen[sub.ID] && (n.FU == fu || ag.blockInvolvesFU(sub, fu)) {
				seen[sub.ID] = true
				out = append(out, entry{blk: sub})
			}
		case KindEndLoop, KindEndIf:
			// Covered by the root's block entry.
		case KindStart, KindEnd:
			// Not part of any chain.
		default:
			if n.FU == fu {
				out = append(out, entry{node: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].order(g) < out[j].order(g) })
	return out
}

func (ag *arcGen) blockOfRoot(root NodeID) *Block {
	for _, b := range ag.g.Blocks {
		if b.Kind != BlockTop && b.Root == root {
			return b
		}
	}
	return nil
}

// blockInvolvesFU reports whether any node inside block b (transitively) is
// bound to fu.
func (ag *arcGen) blockInvolvesFU(b *Block, fu string) bool {
	g := ag.g
	for _, id := range b.Nodes {
		n := g.Node(id)
		if n.FU == fu {
			return true
		}
		if n.Kind == KindLoop || n.Kind == KindIf {
			if sub := ag.blockOfRoot(id); sub != nil && ag.blockInvolvesFU(sub, fu) {
				return true
			}
		}
	}
	return false
}

func (ag *arcGen) schedAndControl() {
	g := ag.g
	for _, b := range g.Blocks {
		anyEntries := false
		for _, fu := range g.FUs {
			entries := ag.entriesFor(b, fu)
			if len(entries) == 0 {
				continue
			}
			anyEntries = true
			// Chain consecutive entries of the same unit.
			for i := 1; i < len(entries); i++ {
				from, br := entries[i-1].out(g)
				g.AddArc(&Arc{From: from, To: entries[i].in(g), Kind: ArcSched, Branch: br, Note: fu})
			}
			first, firstIn := entries[0], entries[0].in(g)
			lastOut, lastBr := entries[len(entries)-1].out(g)
			_ = first
			switch b.Kind {
			case BlockTop:
				g.AddArc(&Arc{From: g.Start, To: firstIn, Kind: ArcControl})
				g.AddArc(&Arc{From: lastOut, To: g.End, Kind: ArcControl, Branch: lastBr})
			case BlockLoop, BlockIf:
				root, end := b.Root, b.End
				kind := ArcControl
				if g.Node(root).FU == fu {
					kind = ArcSched
				}
				g.AddArc(&Arc{From: root, To: firstIn, Kind: kind, Branch: OutTrue, Note: fu})
				g.AddArc(&Arc{From: lastOut, To: end, Kind: kind, Branch: lastBr, Note: fu})
			}
		}
		switch b.Kind {
		case BlockLoop:
			// Repeat arc: each iteration re-arms the LOOP node.
			g.AddArc(&Arc{From: b.End, To: b.Root, Kind: ArcControl})
			if !anyEntries {
				g.AddArc(&Arc{From: b.Root, To: b.End, Kind: ArcControl, Branch: OutTrue})
			}
		case BlockIf:
			// Bypass arc: a false condition skips the body.
			g.AddArc(&Arc{From: b.Root, To: b.End, Kind: ArcControl, Branch: OutFalse})
			if !anyEntries {
				g.AddArc(&Arc{From: b.Root, To: b.End, Kind: ArcControl, Branch: OutTrue})
			}
		}
	}
}

// blockAccessesReg reports whether any node inside b (transitively) reads
// (or, with write=true, writes) register r.
func (ag *arcGen) blockAccessesReg(b *Block, r string, write bool) bool {
	g := ag.g
	for _, id := range b.Nodes {
		n := g.Node(id)
		regs := n.Reads()
		if write {
			regs = n.Writes()
		}
		for _, x := range regs {
			if x == r {
				return true
			}
		}
		if n.Kind == KindLoop || n.Kind == KindIf {
			if n.Cond == r && !write {
				return true
			}
			if sub := ag.blockOfRoot(id); sub != nil && ag.blockAccessesReg(sub, r, write) {
				return true
			}
		}
	}
	return false
}

// accessEntry is a register access within a block: a plain node or a nested
// block that accesses the register internally.
type accessEntry struct {
	entry
	reads, writes bool
}

// regAccesses returns the ordered accesses to register r within block b.
func (ag *arcGen) regAccesses(b *Block, r string) []accessEntry {
	g := ag.g
	var out []accessEntry
	for _, id := range b.Nodes {
		n := g.Node(id)
		switch n.Kind {
		case KindEndLoop, KindEndIf, KindStart, KindEnd:
			continue
		case KindLoop, KindIf:
			sub := ag.blockOfRoot(id)
			if sub == nil {
				continue
			}
			reads := ag.blockAccessesReg(sub, r, false) || n.Cond == r
			writes := ag.blockAccessesReg(sub, r, true)
			if reads || writes {
				out = append(out, accessEntry{entry: entry{blk: sub}, reads: reads, writes: writes})
			}
		default:
			reads, writes := false, false
			for _, x := range n.Reads() {
				if x == r {
					reads = true
				}
			}
			for _, x := range n.Writes() {
				if x == r {
					writes = true
				}
			}
			if reads || writes {
				out = append(out, accessEntry{entry: entry{node: n}, reads: reads, writes: writes})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].order(g) < out[j].order(g) })
	return out
}

// allRegs returns every register name accessed anywhere in the graph,
// excluding constants.
func (ag *arcGen) allRegs() []string {
	set := map[string]bool{}
	for _, n := range ag.g.Nodes() {
		for _, r := range n.Reads() {
			set[r] = true
		}
		for _, r := range n.Writes() {
			set[r] = true
		}
	}
	var out []string
	for r := range set {
		if !ag.g.Consts[r] {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

func (ag *arcGen) dataArcs() {
	g := ag.g
	for _, n := range g.Nodes() {
		if n.Kind == KindStart || n.Kind == KindEnd || n.Kind == KindEndLoop || n.Kind == KindEndIf {
			continue
		}
		seen := map[string]bool{}
		for _, r := range n.Reads() {
			if g.Consts[r] || seen[r] {
				continue
			}
			seen[r] = true
			ag.linkData(n, r)
		}
	}
}

// linkData adds the data-dependency arc for node n's read of register r:
// from the latest preceding write in n's block, or, walking outward through
// block roots, in an enclosing block. Reads with no preceding writer are
// environment inputs and get no arc.
func (ag *arcGen) linkData(n *Node, r string) {
	g := ag.g
	anchor := n
	blockID := n.Block
	for {
		b := g.Blocks[blockID]
		if w, ok := ag.latestWriterBefore(b, anchor.Order, r); ok {
			from, br := w.out(g)
			if from != anchor.ID {
				g.AddArc(&Arc{From: from, To: anchor.ID, Kind: ArcData, Branch: br, Note: r})
			}
			return
		}
		if b.Parent < 0 {
			return
		}
		// The arc must enter n's enclosing block at its root.
		anchor = g.Node(b.Root)
		blockID = b.Parent
	}
}

// latestWriterBefore finds the latest write access to r in block b strictly
// before the given order.
func (ag *arcGen) latestWriterBefore(b *Block, order int, r string) (accessEntry, bool) {
	accesses := ag.regAccesses(b, r)
	for i := len(accesses) - 1; i >= 0; i-- {
		a := accesses[i]
		if a.order(ag.g) >= order {
			continue
		}
		if a.writes {
			return a, true
		}
	}
	return accessEntry{}, false
}

// regAllocArcs adds anti-dependency arcs: every reader of a register's old
// value must precede the next write.
func (ag *arcGen) regAllocArcs() {
	g := ag.g
	for _, b := range g.Blocks {
		for _, r := range ag.allRegs() {
			accesses := ag.regAccesses(b, r)
			prevWrite := -1 // index of previous write access
			for i, w := range accesses {
				if !w.writes {
					continue
				}
				readersBetween := false
				for j := prevWrite + 1; j < i; j++ {
					m := accesses[j]
					if !m.reads {
						continue
					}
					readersBetween = true
					from, br := m.out(g)
					to := w.in(g)
					if from == to {
						continue
					}
					g.AddArc(&Arc{From: from, To: to, Kind: ArcRegAlloc, Branch: br, Note: r})
				}
				// Output dependency: consecutive writes with no reader
				// between them are otherwise unordered, and the register
				// must end up with the later value.
				if prevWrite >= 0 && !readersBetween {
					p := accesses[prevWrite]
					from, br := p.out(g)
					to := w.in(g)
					if from != to {
						g.AddArc(&Arc{From: from, To: to, Kind: ArcRegAlloc, Branch: br, Note: r})
					}
				}
				prevWrite = i
			}
		}
	}
}

// assignGroups classifies incoming arc groups for LOOP and ENDIF nodes.
func (ag *arcGen) assignGroups() {
	g := ag.g
	for _, b := range g.Blocks {
		switch b.Kind {
		case BlockLoop:
			for _, a := range g.In(b.Root) {
				if a.From == b.End {
					a.Group = GroupRepeat
				} else {
					a.Group = GroupEnter
				}
			}
		case BlockIf:
			for _, a := range g.In(b.End) {
				if a.From == b.Root && a.Branch == OutFalse {
					a.Group = GroupElse
				} else {
					a.Group = GroupThen
				}
			}
		}
	}
}
