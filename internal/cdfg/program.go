package cdfg

import "fmt"

// Program is a builder for scheduled, resource-bound CDFGs. Statements are
// appended in schedule (program) order; Build derives all constraint arcs:
// control flow, per-unit scheduling, data dependencies and register
// allocation, following §2.1 of the paper.
type Program struct {
	name   string
	fus    []string
	consts map[string]bool
	init   map[string]float64
	top    *blockCtx
	cur    *blockCtx
	errs   []error
}

type blockCtx struct {
	kind   BlockKind
	fu     string // owner FU of the LOOP/IF node
	cond   string
	parent *blockCtx
	items  []item
}

type item struct {
	// Exactly one of node / sub is set.
	node *Node
	sub  *blockCtx
}

// NewProgram creates a program builder over the given functional units.
func NewProgram(name string, fus ...string) *Program {
	p := &Program{
		name:   name,
		fus:    fus,
		consts: map[string]bool{},
		init:   map[string]float64{},
	}
	p.top = &blockCtx{kind: BlockTop}
	p.cur = p.top
	return p
}

// Const declares registers as constants: they are never written and never
// produce register-allocation arcs.
func (p *Program) Const(regs ...string) *Program {
	for _, r := range regs {
		p.consts[r] = true
	}
	return p
}

// Init sets the initial value of a register for simulation.
func (p *Program) Init(reg string, v float64) *Program {
	p.init[reg] = v
	return p
}

// InitAll sets several initial register values.
func (p *Program) InitAll(m map[string]float64) *Program {
	for k, v := range m {
		p.init[k] = v
	}
	return p
}

func (p *Program) validFU(fu string) bool {
	for _, f := range p.fus {
		if f == fu {
			return true
		}
	}
	return false
}

// Op appends an RTL operation dst := src1 op src2 bound to fu.
func (p *Program) Op(fu, dst string, op Op, src1, src2 string) *Program {
	if !p.validFU(fu) {
		p.errs = append(p.errs, fmt.Errorf("cdfg: unknown functional unit %q", fu))
		return p
	}
	if p.consts[dst] {
		p.errs = append(p.errs, fmt.Errorf("cdfg: write to constant register %q", dst))
		return p
	}
	n := &Node{Kind: KindOp, FU: fu, Stmts: []Stmt{{Dst: dst, Op: op, Src1: src1, Src2: src2}}}
	p.cur.items = append(p.cur.items, item{node: n})
	return p
}

// Assign appends a register move dst := src bound to fu (an assignment node,
// which does not occupy the functional unit's datapath).
func (p *Program) Assign(fu, dst, src string) *Program {
	if !p.validFU(fu) {
		p.errs = append(p.errs, fmt.Errorf("cdfg: unknown functional unit %q", fu))
		return p
	}
	if p.consts[dst] {
		p.errs = append(p.errs, fmt.Errorf("cdfg: write to constant register %q", dst))
		return p
	}
	n := &Node{Kind: KindAssign, FU: fu, Stmts: []Stmt{{Dst: dst, Op: OpMov, Src1: src}}}
	p.cur.items = append(p.cur.items, item{node: n})
	return p
}

// Loop opens a loop block whose LOOP/ENDLOOP nodes are bound to fu and whose
// condition register is cond (the loop repeats while cond is non-zero).
// Statements appended until EndLoop belong to the loop body.
func (p *Program) Loop(fu, cond string) *Program {
	if !p.validFU(fu) {
		p.errs = append(p.errs, fmt.Errorf("cdfg: unknown functional unit %q", fu))
		return p
	}
	sub := &blockCtx{kind: BlockLoop, fu: fu, cond: cond, parent: p.cur}
	p.cur.items = append(p.cur.items, item{sub: sub})
	p.cur = sub
	return p
}

// EndLoop closes the innermost open loop block.
func (p *Program) EndLoop() *Program {
	if p.cur.kind != BlockLoop {
		p.errs = append(p.errs, fmt.Errorf("cdfg: EndLoop without open loop"))
		return p
	}
	p.cur = p.cur.parent
	return p
}

// If opens a then-only conditional block bound to fu on condition register
// cond.
func (p *Program) If(fu, cond string) *Program {
	if !p.validFU(fu) {
		p.errs = append(p.errs, fmt.Errorf("cdfg: unknown functional unit %q", fu))
		return p
	}
	sub := &blockCtx{kind: BlockIf, fu: fu, cond: cond, parent: p.cur}
	p.cur.items = append(p.cur.items, item{sub: sub})
	p.cur = sub
	return p
}

// EndIf closes the innermost open if block.
func (p *Program) EndIf() *Program {
	if p.cur.kind != BlockIf {
		p.errs = append(p.errs, fmt.Errorf("cdfg: EndIf without open if"))
		return p
	}
	p.cur = p.cur.parent
	return p
}

// Build materializes the CDFG: nodes, blocks and all constraint arcs.
func (p *Program) Build() (*Graph, error) {
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	if p.cur != p.top {
		return nil, fmt.Errorf("cdfg: unclosed block")
	}
	g := NewGraph(p.name, p.fus)
	for r := range p.consts {
		g.Consts[r] = true
	}
	g.Init = map[string]float64{}
	for k, v := range p.init {
		g.Init[k] = v
	}

	// Materialize nodes and blocks in a DFS walk; the walk order is the
	// global program order (block root < body < block end < next item).
	order := 0
	next := func() int { order++; return order }
	var build func(bc *blockCtx, blockID int)
	build = func(bc *blockCtx, blockID int) {
		for _, it := range bc.items {
			if it.node != nil {
				it.node.Block = blockID
				it.node.Order = next()
				g.AddNode(it.node)
				continue
			}
			sub := it.sub
			subID := g.AddBlock(sub.kind, blockID)
			rootKind, endKind := KindLoop, KindEndLoop
			if sub.kind == BlockIf {
				rootKind, endKind = KindIf, KindEndIf
			}
			root := g.AddNode(&Node{Kind: rootKind, FU: sub.fu, Cond: sub.cond, Block: blockID, Order: next()})
			g.Blocks[subID].Root = root
			build(sub, subID)
			end := g.AddNode(&Node{Kind: endKind, FU: sub.fu, Block: blockID, Order: next()})
			g.Blocks[subID].End = end
		}
	}
	g.Node(g.Start).Order = 0
	build(p.top, 0)
	g.Node(g.End).Order = next()

	gen := &arcGen{g: g}
	if err := gen.run(); err != nil {
		return nil, err
	}
	return g, nil
}
