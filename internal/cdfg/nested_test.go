package cdfg

import "testing"

// buildNested creates a doubly nested counted loop:
//
//	for i in 0..2 { for j in 0..2 { acc += 1 } ; outer += 1 }
func buildNested(t *testing.T) *Graph {
	t.Helper()
	p := NewProgram("nested", "ALU")
	p.Const("one", "two")
	p.InitAll(map[string]float64{
		"one": 1, "two": 2, "i": 0, "j": 0, "acc": 0, "outer": 0,
		"ri": 1, "rj": 1,
	})
	p.Loop("ALU", "ri")
	p.Assign("ALU", "j", "zero")
	p.Loop("ALU", "rj")
	p.Op("ALU", "acc", OpAdd, "acc", "one")
	p.Op("ALU", "j", OpAdd, "j", "one")
	p.Op("ALU", "rj", OpLT, "j", "two")
	p.EndLoop()
	p.Op("ALU", "outer", OpAdd, "outer", "one")
	p.Op("ALU", "i", OpAdd, "i", "one")
	p.Op("ALU", "ri", OpLT, "i", "two")
	// Re-arm the inner loop condition for the next outer iteration.
	p.Op("ALU", "rj", OpLT, "zero", "two")
	p.EndLoop()
	p.Const("zero").Init("zero", 0)
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNestedLoopStructure(t *testing.T) {
	g := buildNested(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v\n%s", err, g)
	}
	loops := 0
	for _, b := range g.Blocks {
		if b.Kind == BlockLoop {
			loops++
			if g.Node(b.Root).Kind != KindLoop || g.Node(b.End).Kind != KindEndLoop {
				t.Errorf("block %d boundary nodes wrong", b.ID)
			}
		}
	}
	if loops != 2 {
		t.Fatalf("loop blocks = %d, want 2", loops)
	}
	// The inner block's parent must be the outer block.
	var outer, inner *Block
	for _, b := range g.Blocks {
		if b.Kind != BlockLoop {
			continue
		}
		if g.Blocks[b.Parent].Kind == BlockTop {
			outer = b
		} else {
			inner = b
		}
	}
	if outer == nil || inner == nil || inner.Parent != outer.ID {
		t.Fatal("nesting structure wrong")
	}
}

func TestNestedLoopReach(t *testing.T) {
	g := buildNested(t)
	r := NewReach(g)
	// The inner loop body's acc-op must precede the outer's counter op
	// within an outer iteration... via the inner loop's exit path.
	var accOp, outerOp NodeID
	for _, n := range g.Nodes() {
		switch n.Label() {
		case "acc:=acc+one":
			accOp = n.ID
		case "outer:=outer+one":
			outerOp = n.ID
		}
	}
	// The exit of the inner loop gates the outer continuation: the inner
	// root precedes the outer op.
	var innerRoot NodeID
	for _, b := range g.Blocks {
		if b.Kind == BlockLoop && g.Blocks[b.Parent].Kind == BlockLoop {
			innerRoot = b.Root
		}
	}
	if !r.Precedes(innerRoot, outerOp) {
		t.Error("inner loop root should precede the outer continuation")
	}
	if r.Precedes(outerOp, accOp) {
		t.Error("outer continuation must not precede the inner body within an iteration")
	}
}

func TestNestedLoopTransformsValidate(t *testing.T) {
	g := buildNested(t)
	// The global transforms must keep a nested-loop graph well-formed.
	reach := NewReach(g)
	_ = reach
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
