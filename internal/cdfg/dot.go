package cdfg

import (
	"fmt"
	"strings"
)

// DOT renders the CDFG in Graphviz dot format, mirroring the paper's figure
// conventions: functional units as columns (clusters), control arcs solid,
// scheduling arcs dotted, data/register arcs dashed, backward arcs bold.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	// Cluster nodes by functional unit (columns in the paper's figures).
	byFU := map[string][]*Node{}
	for _, n := range g.Nodes() {
		byFU[n.FU] = append(byFU[n.FU], n)
	}
	for i, fu := range append([]string{""}, g.FUs...) {
		nodes := byFU[fu]
		if len(nodes) == 0 {
			continue
		}
		if fu == "" {
			for _, n := range nodes {
				fmt.Fprintf(&b, "  n%d [label=%q, shape=ellipse];\n", n.ID, n.Label())
			}
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", i, fu)
		for _, n := range nodes {
			shape := "box"
			if n.Kind == KindLoop || n.Kind == KindEndLoop || n.Kind == KindIf || n.Kind == KindEndIf {
				shape = "diamond"
			}
			fmt.Fprintf(&b, "    n%d [label=%q, shape=%s];\n", n.ID, n.Label(), shape)
		}
		b.WriteString("  }\n")
	}
	for _, a := range g.Arcs() {
		style := "solid"
		switch a.Kind {
		case ArcSched:
			style = "dotted"
		case ArcData, ArcRegAlloc:
			style = "dashed"
		case ArcBackward:
			style = "bold"
		}
		label := a.Note
		if a.Branch == OutFalse {
			label += " [F]"
		} else if a.Branch == OutTrue {
			label += " [T]"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [style=%s, label=%q, fontsize=8];\n", a.From, a.To, style, strings.TrimSpace(label))
	}
	b.WriteString("}\n")
	return b.String()
}
