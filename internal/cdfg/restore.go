package cdfg

import "fmt"

// This file is the reconstruction seam used by the interchange codec
// (internal/codec): graphs decoded from JSON must come back with exactly
// the node, arc and block IDs they were encoded with, which AddNode and
// AddArc (which assign the next free ID and coalesce duplicate arcs)
// cannot do.

// NewEmptyGraph returns a graph shell with no nodes, arcs or blocks.
// Unlike NewGraph it creates neither the START/END pair nor the top-level
// block; the caller restores every part explicitly with RestoreBlock,
// RestoreNode and RestoreArc, then sets Start and End.
func NewEmptyGraph(name string, fus []string) *Graph {
	return &Graph{
		Name:   name,
		nodes:  map[NodeID]*Node{},
		arcs:   map[ArcID]*Arc{},
		FUs:    append([]string(nil), fus...),
		Consts: map[string]bool{},
	}
}

// RestoreBlock appends a block under its explicit ID. Blocks index the
// Blocks slice by ID, so they must be restored in ID order starting at 0.
func (g *Graph) RestoreBlock(b *Block) error {
	if b.ID != len(g.Blocks) {
		return fmt.Errorf("cdfg: restore block %d out of order (next is %d)", b.ID, len(g.Blocks))
	}
	g.Blocks = append(g.Blocks, b)
	return nil
}

// RestoreNode inserts a node under its explicit ID. It does not touch any
// block's node list (the codec restores Block.Nodes verbatim) and advances
// the ID counter past the restored ID so later AddNode calls never collide.
func (g *Graph) RestoreNode(n *Node) error {
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("cdfg: restore node %d: duplicate ID", n.ID)
	}
	g.nodes[n.ID] = n
	if n.ID >= g.nextN {
		g.nextN = n.ID + 1
	}
	return nil
}

// RestoreArc inserts an arc under its explicit ID, without the duplicate
// coalescing AddArc applies, and advances the arc ID counter likewise.
func (g *Graph) RestoreArc(a *Arc) error {
	if _, ok := g.arcs[a.ID]; ok {
		return fmt.Errorf("cdfg: restore arc %d: duplicate ID", a.ID)
	}
	g.arcs[a.ID] = a
	if a.ID >= g.nextA {
		g.nextA = a.ID + 1
	}
	return nil
}
