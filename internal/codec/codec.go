// Package codec is the versioned JSON interchange layer of the synthesis
// service: it serializes scheduled CDFGs (cdfg.Graph — blocks, nodes,
// constraint arcs, loop contexts, functional-unit and register bindings)
// for submission to the job server, and synthesis outcomes
// (core.Synthesis plus gate-level results — per-FU AFSMs, structural
// Verilog netlists and the paper's Figure 12/13 metrics) for retrieval,
// so external clients can submit workloads the repo has never seen and
// read back everything the CLI would have printed.
//
// # Format
//
// Every document carries a `version` (the package's Version constant; the
// decoder rejects anything else) and a `kind` discriminator ("cdfg" or
// "synthesis"). Graph documents list blocks, nodes and arcs explicitly,
// with all enums as strings (node kinds, arc kinds, firing groups,
// emission branches, RTL ops) and all IDs preserved exactly — a decoded
// graph is reconstructed through the cdfg restore seam with the original
// node/arc/block IDs, so EncodeGraph(DecodeGraph(x)) == x byte for byte.
// Encoding is deterministic: nodes and arcs are sorted by ID, name sets
// sorted lexicographically, and maps marshal with sorted keys.
//
// # Validation
//
// DecodeGraph is strict: unknown fields, malformed JSON, out-of-range
// references (dangling node IDs in arcs or block lists, bad loop
// contexts), invalid enum strings and inconsistent block structure all
// return a typed *Error naming the offending location — never a panic.
// Structural rules (arcs crossing block boundaries, loops without repeat
// arcs, nodes without in-arcs) are enforced by reusing cdfg.Validate on
// the reconstructed graph, so the codec accepts exactly the graphs the
// pipeline itself considers well-formed.
package codec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/cdfg"
)

// Version is the interchange format version; documents with any other
// version are rejected so incompatible clients fail loudly.
const Version = 1

// Document kinds.
const (
	KindGraph     = "cdfg"
	KindSynthesis = "synthesis"
)

// Error is a decoding or validation failure, locating the problem by a
// JSON-path-like string (e.g. "arcs[3].kind"). All non-panicking decode
// failures surface as *Error so clients and the HTTP layer can
// distinguish malformed submissions from server faults.
type Error struct {
	Path string // location within the document ("" = whole body)
	Msg  string
}

func (e *Error) Error() string {
	if e.Path == "" {
		return "codec: " + e.Msg
	}
	return "codec: " + e.Path + ": " + e.Msg
}

func errAt(path, format string, args ...interface{}) *Error {
	return &Error{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// GraphDoc is the JSON form of a scheduled CDFG.
type GraphDoc struct {
	Version int                `json:"version"`
	Kind    string             `json:"kind"`
	Name    string             `json:"name"`
	FUs     []string           `json:"fus"`
	Consts  []string           `json:"consts,omitempty"`
	Init    map[string]float64 `json:"init,omitempty"`
	Start   int                `json:"start"`
	End     int                `json:"end"`
	Blocks  []BlockDoc         `json:"blocks"`
	Nodes   []NodeDoc          `json:"nodes"`
	Arcs    []ArcDoc           `json:"arcs"`
}

// BlockDoc is one block-structured region (top level, loop body or if
// body). Root and End are meaningful for loop/if blocks only.
type BlockDoc struct {
	ID     int    `json:"id"`
	Kind   string `json:"kind"`
	Root   int    `json:"root"`
	End    int    `json:"end"`
	Parent int    `json:"parent"`
	Nodes  []int  `json:"nodes,omitempty"`
}

// StmtDoc is one RTL statement.
type StmtDoc struct {
	Dst  string `json:"dst"`
	Op   string `json:"op"`
	Src1 string `json:"src1"`
	Src2 string `json:"src2,omitempty"`
}

// NodeDoc is one CDFG node.
type NodeDoc struct {
	ID    int       `json:"id"`
	Kind  string    `json:"kind"`
	FU    string    `json:"fu,omitempty"`
	Stmts []StmtDoc `json:"stmts,omitempty"`
	Cond  string    `json:"cond,omitempty"`
	Block int       `json:"block"`
	Order int       `json:"order"`
}

// ArcDoc is one constraint arc.
type ArcDoc struct {
	ID     int    `json:"id"`
	From   int    `json:"from"`
	To     int    `json:"to"`
	Kind   string `json:"kind"`
	Group  string `json:"group,omitempty"`  // omitted = "all"
	Branch string `json:"branch,omitempty"` // omitted = "always"
	Note   string `json:"note,omitempty"`
}

// Enum tables. Encoding uses the forward maps; decoding the inverses.
var (
	nodeKindNames = map[cdfg.NodeKind]string{
		cdfg.KindStart: "start", cdfg.KindEnd: "end",
		cdfg.KindLoop: "loop", cdfg.KindEndLoop: "endloop",
		cdfg.KindIf: "if", cdfg.KindEndIf: "endif",
		cdfg.KindOp: "op", cdfg.KindAssign: "assign",
	}
	blockKindNames = map[cdfg.BlockKind]string{
		cdfg.BlockTop: "top", cdfg.BlockLoop: "loop", cdfg.BlockIf: "if",
	}
	arcKindNames = map[cdfg.ArcKind]string{
		cdfg.ArcControl: "control", cdfg.ArcSched: "sched", cdfg.ArcData: "data",
		cdfg.ArcRegAlloc: "reg", cdfg.ArcBackward: "backward",
	}
	groupNames = map[cdfg.InGroup]string{
		cdfg.GroupAll: "", cdfg.GroupEnter: "enter", cdfg.GroupRepeat: "repeat",
		cdfg.GroupThen: "then", cdfg.GroupElse: "else",
	}
	branchNames = map[cdfg.OutBranch]string{
		cdfg.OutAlways: "", cdfg.OutTrue: "true", cdfg.OutFalse: "false",
	}
	validOps = map[cdfg.Op]bool{
		cdfg.OpAdd: true, cdfg.OpSub: true, cdfg.OpMul: true, cdfg.OpLT: true,
		cdfg.OpGT: true, cdfg.OpEQ: true, cdfg.OpMod: true, cdfg.OpMov: true,
	}

	nodeKindVals  = invert(nodeKindNames)
	blockKindVals = invert(blockKindNames)
	arcKindVals   = invert(arcKindNames)
	groupVals     = invert(groupNames)
	branchVals    = invert(branchNames)
)

func invert[K comparable](m map[K]string) map[string]K {
	out := make(map[string]K, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// EncodeGraph renders g as an indented, deterministic interchange
// document: nodes and arcs sorted by ID, consts sorted, map keys sorted
// by encoding/json. The graph is validated first so only well-formed
// documents ever leave the process.
func EncodeGraph(g *cdfg.Graph) ([]byte, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("codec: encode: %w", err)
	}
	doc := GraphDoc{
		Version: Version,
		Kind:    KindGraph,
		Name:    g.Name,
		FUs:     append([]string{}, g.FUs...),
		Start:   int(g.Start),
		End:     int(g.End),
	}
	for c, ok := range g.Consts {
		if ok {
			doc.Consts = append(doc.Consts, c)
		}
	}
	sort.Strings(doc.Consts)
	if len(g.Init) > 0 {
		doc.Init = make(map[string]float64, len(g.Init))
		for k, v := range g.Init {
			doc.Init[k] = v
		}
	}
	for _, b := range g.Blocks {
		bd := BlockDoc{ID: b.ID, Kind: blockKindNames[b.Kind], Root: int(b.Root), End: int(b.End), Parent: b.Parent}
		for _, id := range b.Nodes {
			bd.Nodes = append(bd.Nodes, int(id))
		}
		doc.Blocks = append(doc.Blocks, bd)
	}
	for _, n := range g.Nodes() {
		nd := NodeDoc{ID: int(n.ID), Kind: nodeKindNames[n.Kind], FU: n.FU, Cond: n.Cond, Block: n.Block, Order: n.Order}
		for _, s := range n.Stmts {
			nd.Stmts = append(nd.Stmts, StmtDoc{Dst: s.Dst, Op: string(s.Op), Src1: s.Src1, Src2: s.Src2})
		}
		doc.Nodes = append(doc.Nodes, nd)
	}
	for _, a := range g.Arcs() {
		doc.Arcs = append(doc.Arcs, ArcDoc{
			ID: int(a.ID), From: int(a.From), To: int(a.To),
			Kind: arcKindNames[a.Kind], Group: groupNames[a.Group],
			Branch: branchNames[a.Branch], Note: a.Note,
		})
	}
	return marshalIndent(doc)
}

// DecodeGraph parses and validates an interchange document and
// reconstructs the cdfg.Graph with its original IDs. Every failure is a
// typed *Error; malformed input can never panic the decoder.
func DecodeGraph(data []byte) (*cdfg.Graph, error) {
	var doc GraphDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, errAt("", "invalid JSON: %v", err)
	}
	// Reject trailing garbage after the document.
	if dec.More() {
		return nil, errAt("", "trailing data after document")
	}
	if doc.Version != Version {
		return nil, errAt("version", "unsupported version %d (want %d)", doc.Version, Version)
	}
	if doc.Kind != KindGraph {
		return nil, errAt("kind", "unexpected kind %q (want %q)", doc.Kind, KindGraph)
	}
	if doc.Name == "" {
		return nil, errAt("name", "missing graph name")
	}
	if len(doc.FUs) == 0 {
		return nil, errAt("fus", "no functional units")
	}
	if len(doc.Blocks) == 0 {
		return nil, errAt("blocks", "no blocks (need at least the top block)")
	}

	g := cdfg.NewEmptyGraph(doc.Name, doc.FUs)
	for _, c := range doc.Consts {
		g.Consts[c] = true
	}
	if len(doc.Init) > 0 {
		g.Init = make(map[string]float64, len(doc.Init))
		for k, v := range doc.Init {
			g.Init[k] = v
		}
	}

	nodeIDs := map[int]bool{}
	for i, nd := range doc.Nodes {
		path := fmt.Sprintf("nodes[%d]", i)
		kind, ok := nodeKindVals[nd.Kind]
		if !ok {
			return nil, errAt(path+".kind", "unknown node kind %q", nd.Kind)
		}
		if nd.ID < 0 {
			return nil, errAt(path+".id", "negative node ID %d", nd.ID)
		}
		if nd.Block < 0 || nd.Block >= len(doc.Blocks) {
			return nil, errAt(path+".block", "block %d out of range [0,%d)", nd.Block, len(doc.Blocks))
		}
		n := &cdfg.Node{ID: cdfg.NodeID(nd.ID), Kind: kind, FU: nd.FU, Cond: nd.Cond, Block: nd.Block, Order: nd.Order}
		for j, sd := range nd.Stmts {
			op := cdfg.Op(sd.Op)
			if !validOps[op] {
				return nil, errAt(fmt.Sprintf("%s.stmts[%d].op", path, j), "unknown operation %q", sd.Op)
			}
			if sd.Dst == "" || sd.Src1 == "" {
				return nil, errAt(fmt.Sprintf("%s.stmts[%d]", path, j), "statement needs dst and src1")
			}
			n.Stmts = append(n.Stmts, cdfg.Stmt{Dst: sd.Dst, Op: op, Src1: sd.Src1, Src2: sd.Src2})
		}
		if err := g.RestoreNode(n); err != nil {
			return nil, errAt(path+".id", "%v", err)
		}
		nodeIDs[nd.ID] = true
	}

	for i, bd := range doc.Blocks {
		path := fmt.Sprintf("blocks[%d]", i)
		kind, ok := blockKindVals[bd.Kind]
		if !ok {
			return nil, errAt(path+".kind", "unknown block kind %q", bd.Kind)
		}
		if bd.Parent >= len(doc.Blocks) || (bd.Parent < 0 && bd.Parent != -1) {
			return nil, errAt(path+".parent", "parent block %d out of range", bd.Parent)
		}
		if kind != cdfg.BlockTop {
			if !nodeIDs[bd.Root] {
				return nil, errAt(path+".root", "loop context references missing node %d", bd.Root)
			}
			if !nodeIDs[bd.End] {
				return nil, errAt(path+".end", "loop context references missing node %d", bd.End)
			}
		}
		b := &cdfg.Block{ID: bd.ID, Kind: kind, Root: cdfg.NodeID(bd.Root), End: cdfg.NodeID(bd.End), Parent: bd.Parent}
		for j, id := range bd.Nodes {
			if !nodeIDs[id] {
				return nil, errAt(fmt.Sprintf("%s.nodes[%d]", path, j), "dangling node ID %d", id)
			}
			if g.Node(cdfg.NodeID(id)).Block != bd.ID {
				return nil, errAt(fmt.Sprintf("%s.nodes[%d]", path, j), "node %d belongs to block %d, listed in %d",
					id, g.Node(cdfg.NodeID(id)).Block, bd.ID)
			}
			b.Nodes = append(b.Nodes, cdfg.NodeID(id))
		}
		if err := g.RestoreBlock(b); err != nil {
			return nil, errAt(path+".id", "%v", err)
		}
	}

	for i, ad := range doc.Arcs {
		path := fmt.Sprintf("arcs[%d]", i)
		kind, ok := arcKindVals[ad.Kind]
		if !ok {
			return nil, errAt(path+".kind", "unknown arc kind %q", ad.Kind)
		}
		group, ok := groupVals[ad.Group]
		if !ok {
			return nil, errAt(path+".group", "unknown firing group %q", ad.Group)
		}
		branch, ok := branchVals[ad.Branch]
		if !ok {
			return nil, errAt(path+".branch", "unknown branch %q", ad.Branch)
		}
		if !nodeIDs[ad.From] {
			return nil, errAt(path+".from", "dangling node ID %d", ad.From)
		}
		if !nodeIDs[ad.To] {
			return nil, errAt(path+".to", "dangling node ID %d", ad.To)
		}
		a := &cdfg.Arc{
			ID: cdfg.ArcID(ad.ID), From: cdfg.NodeID(ad.From), To: cdfg.NodeID(ad.To),
			Kind: kind, Group: group, Branch: branch, Note: ad.Note,
		}
		if err := g.RestoreArc(a); err != nil {
			return nil, errAt(path+".id", "%v", err)
		}
	}

	if !nodeIDs[doc.Start] {
		return nil, errAt("start", "dangling node ID %d", doc.Start)
	}
	if !nodeIDs[doc.End] {
		return nil, errAt("end", "dangling node ID %d", doc.End)
	}
	g.Start = cdfg.NodeID(doc.Start)
	g.End = cdfg.NodeID(doc.End)
	if g.Node(g.Start).Kind != cdfg.KindStart {
		return nil, errAt("start", "node %d is not a START node", doc.Start)
	}
	if g.Node(g.End).Kind != cdfg.KindEnd {
		return nil, errAt("end", "node %d is not an END node", doc.End)
	}

	// Structural validation: the same rules the pipeline enforces.
	if err := g.Validate(); err != nil {
		return nil, errAt("", "%v", err)
	}
	return g, nil
}

// marshalIndent renders a document with a trailing newline, matching the
// golden-fixture convention.
func marshalIndent(v interface{}) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("codec: marshal: %w", err)
	}
	return append(out, '\n'), nil
}
