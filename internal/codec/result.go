package codec

import (
	"bytes"
	"encoding/json"
	"sort"

	"repro/internal/bm"
	"repro/internal/core"
	"repro/internal/synth"
)

// SynthesisDoc is the JSON form of a completed synthesis: the metrics
// summary (the paper's Figure 12/13 numbers), one entry per functional
// unit with its extracted-and-optimized AFSM, and — when gate-level
// results are attached — the per-controller product/literal counts and
// structural Verilog netlist.
type SynthesisDoc struct {
	Version          int             `json:"version"`
	Kind             string          `json:"kind"`
	Name             string          `json:"name"`
	Level            string          `json:"level"`
	Channels         int             `json:"channels"`
	MultiwayChannels int             `json:"multiway_channels"`
	Controllers      []ControllerDoc `json:"controllers"`
	TotalProducts    int             `json:"total_products,omitempty"`
	TotalLiterals    int             `json:"total_literals,omitempty"`
}

// ControllerDoc is one functional unit's synthesized controller.
type ControllerDoc struct {
	FU          string  `json:"fu"`
	States      int     `json:"states"`
	Transitions int     `json:"transitions"`
	AFSM        AFSMDoc `json:"afsm"`
	// Gate-level fields, present when synthesis results were attached.
	StateBits     int    `json:"state_bits,omitempty"`
	OneHot        bool   `json:"one_hot,omitempty"`
	Products      int    `json:"products,omitempty"`
	Literals      int    `json:"literals,omitempty"`
	NonHazardFree int    `json:"non_hazard_free,omitempty"`
	Netlist       string `json:"netlist,omitempty"`
}

// AFSMDoc is an extended burst-mode machine.
type AFSMDoc struct {
	Inputs      []string   `json:"inputs,omitempty"`
	Outputs     []string   `json:"outputs,omitempty"`
	Levels      []string   `json:"levels,omitempty"`
	Init        int        `json:"init"`
	InitialHigh []string   `json:"initial_high,omitempty"`
	Transitions []TransDoc `json:"transitions"`
}

// TransDoc is one AFSM transition: when the in-burst completes under the
// sampled conditions, move from → to emitting the out-burst.
type TransDoc struct {
	From  int        `json:"from"`
	To    int        `json:"to"`
	In    []EventDoc `json:"in,omitempty"`
	Cond  []CondDoc  `json:"cond,omitempty"`
	Out   []EventDoc `json:"out,omitempty"`
	Free  []string   `json:"free,omitempty"`
	Label string     `json:"label,omitempty"`
}

// EventDoc is one signal edge ("+" rise, "-" fall, "~" toggle).
type EventDoc struct {
	Signal string `json:"sig"`
	Edge   string `json:"edge"`
}

// CondDoc is one sampled level condition.
type CondDoc struct {
	Signal string `json:"sig"`
	Value  bool   `json:"value"`
}

// EncodeSynthesis renders a synthesis outcome as an interchange document.
// results may be nil (state-machine-level job: AFSMs and channel metrics
// only); when present, each controller gains its Figure 13 numbers and a
// structural Verilog netlist, rendered deterministically so two runs of
// the same input are byte-identical ("bit-identical netlists" in the
// service's smoke test).
func EncodeSynthesis(s *core.Synthesis, results map[string]*synth.Result) ([]byte, error) {
	doc := SynthesisDoc{
		Version:          Version,
		Kind:             KindSynthesis,
		Name:             s.Graph.Name,
		Level:            s.Level.String(),
		Channels:         s.Channels(),
		MultiwayChannels: s.MultiwayChannels(),
	}
	for _, fu := range s.FUs() {
		m := s.Machines[fu]
		cd := ControllerDoc{
			FU:          fu,
			States:      m.NumStates(),
			Transitions: m.NumTransitions(),
			AFSM:        encodeAFSM(m),
		}
		if r := results[fu]; r != nil {
			cd.StateBits = r.StateBits
			cd.OneHot = r.OneHot
			cd.Products = r.Products
			cd.Literals = r.Literals
			cd.NonHazardFree = r.NonHazardFree
			v, err := synth.Verilog(m, r)
			if err != nil {
				return nil, errAt("controllers", "netlist for %s: %v", fu, err)
			}
			cd.Netlist = v
			doc.TotalProducts += r.Products
			doc.TotalLiterals += r.Literals
		}
		doc.Controllers = append(doc.Controllers, cd)
	}
	return marshalIndent(doc)
}

// DecodeSynthesis parses a synthesis document (the client side of the
// job-result API). Validation is shallow — the document is a report, not
// an input to further computation.
func DecodeSynthesis(data []byte) (*SynthesisDoc, error) {
	var doc SynthesisDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, errAt("", "invalid JSON: %v", err)
	}
	if doc.Version != Version {
		return nil, errAt("version", "unsupported version %d (want %d)", doc.Version, Version)
	}
	if doc.Kind != KindSynthesis {
		return nil, errAt("kind", "unexpected kind %q (want %q)", doc.Kind, KindSynthesis)
	}
	return &doc, nil
}

// encodeAFSM renders a burst-mode machine with sorted signal lists and
// transitions in specification order.
func encodeAFSM(m *bm.Machine) AFSMDoc {
	doc := AFSMDoc{
		Inputs:      sortedCopy(m.Inputs),
		Outputs:     sortedCopy(m.Outputs),
		Levels:      sortedCopy(m.Levels),
		Init:        int(m.Init),
		InitialHigh: sortedCopy(m.InitialHigh),
	}
	for _, t := range m.Transitions {
		td := TransDoc{From: int(t.From), To: int(t.To), Label: t.Label}
		for _, e := range t.In {
			td.In = append(td.In, EventDoc{Signal: e.Signal, Edge: e.Edge.String()})
		}
		for _, c := range t.Cond {
			td.Cond = append(td.Cond, CondDoc{Signal: c.Signal, Value: c.Value})
		}
		for _, e := range t.Out {
			td.Out = append(td.Out, EventDoc{Signal: e.Signal, Edge: e.Edge.String()})
		}
		td.Free = append(td.Free, t.Free...)
		doc.Transitions = append(doc.Transitions, td)
	}
	return doc
}

func sortedCopy(s []string) []string {
	out := append([]string{}, s...)
	sort.Strings(out)
	return out
}
