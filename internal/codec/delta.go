package codec

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/cdfg"
)

// The CDFG delta format: a versioned, strictly-validated edit-op list a
// client applies to a previously submitted design instead of re-sending
// the whole document. It is the wire format of PATCH /v1/jobs/{id} and
// `asyncsynth patch`, and the input to the incremental engine's
// dirty-region analysis (internal/stage.Classify) — which is why the ops
// are small and structured rather than a generic JSON merge: the engine
// must be able to tell a single-FU retype from a control-structure edit.

// KindDelta is the document kind discriminator of a CDFG delta.
const KindDelta = "cdfg-delta"

// Delta op names. Each op edits one node or arc; ApplyDelta applies them
// in order against a clone of the base graph and re-validates the result.
const (
	// OpAddNode inserts a new node (the "node" field, a full NodeDoc with
	// an unused ID) and appends it to its block's node list.
	OpAddNode = "add_node"
	// OpRemoveNode deletes node "id", its incident arcs and its
	// block-list entry. The graph's START/END and any block's loop
	// context nodes cannot be removed.
	OpRemoveNode = "remove_node"
	// OpRetypeNode replaces the statement list ("stmts", for op/assign
	// nodes) or the condition register ("cond", for loop/if nodes) of
	// node "id".
	OpRetypeNode = "retype_node"
	// OpAddArc inserts a new constraint arc (the "arc" field, a full
	// ArcDoc with an unused ID).
	OpAddArc = "add_arc"
	// OpRemoveArc deletes arc "id".
	OpRemoveArc = "remove_arc"
	// OpRewireArc re-targets arc "id": "from" and/or "to" name the new
	// endpoints.
	OpRewireArc = "rewire_arc"
	// OpRetime moves node "id" to scheduling step "order".
	OpRetime = "retime"
)

// DeltaDoc is the JSON form of an edit-op list.
type DeltaDoc struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// Base optionally names the design the delta was authored against;
	// when set, ApplyDelta rejects a mismatching graph.
	Base string    `json:"base,omitempty"`
	Ops  []DeltaOp `json:"ops"`
}

// DeltaOp is one edit. Op selects the operation; exactly the fields that
// operation needs must be present (pointer fields distinguish absent from
// zero), and any extra field is a validation error — a malformed delta is
// rejected whole, never half-applied.
type DeltaOp struct {
	Op string `json:"op"`
	// Node is the inserted node (add_node only).
	Node *NodeDoc `json:"node,omitempty"`
	// Arc is the inserted arc (add_arc only).
	Arc *ArcDoc `json:"arc,omitempty"`
	// ID targets an existing node (remove_node, retype_node, retime) or
	// arc (remove_arc, rewire_arc).
	ID *int `json:"id,omitempty"`
	// Stmts is the replacement statement list (retype_node on op/assign).
	Stmts []StmtDoc `json:"stmts,omitempty"`
	// Cond is the replacement condition register (retype_node on loop/if).
	Cond *string `json:"cond,omitempty"`
	// From and To are the new endpoints (rewire_arc; either may be
	// omitted to keep that endpoint).
	From *int `json:"from,omitempty"`
	To   *int `json:"to,omitempty"`
	// Order is the new scheduling step (retime).
	Order *int `json:"order,omitempty"`
}

// DecodeDelta parses and validates a delta document: strict JSON (unknown
// fields and trailing data rejected), version/kind checks, at least one
// op, and per-op field discipline — each op must carry exactly the fields
// its operation uses. Every failure is a typed *Error locating the
// offending op.
func DecodeDelta(data []byte) (*DeltaDoc, error) {
	var doc DeltaDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, errAt("", "invalid JSON: %v", err)
	}
	if dec.More() {
		return nil, errAt("", "trailing data after document")
	}
	if doc.Version != Version {
		return nil, errAt("version", "unsupported version %d (want %d)", doc.Version, Version)
	}
	if doc.Kind != KindDelta {
		return nil, errAt("kind", "unexpected kind %q (want %q)", doc.Kind, KindDelta)
	}
	if len(doc.Ops) == 0 {
		return nil, errAt("ops", "empty delta (need at least one op)")
	}
	for i := range doc.Ops {
		if err := validateOpFields(&doc.Ops[i], fmt.Sprintf("ops[%d]", i)); err != nil {
			return nil, err
		}
	}
	return &doc, nil
}

// opFields describes which DeltaOp fields an operation requires; every
// field not listed as required or optional must be absent.
type opFields struct {
	needNode, needArc, needID, needStmtsOrCond, needOrder bool
	allowFromTo                                           bool
}

var opFieldTable = map[string]opFields{
	OpAddNode:    {needNode: true},
	OpRemoveNode: {needID: true},
	OpRetypeNode: {needID: true, needStmtsOrCond: true},
	OpAddArc:     {needArc: true},
	OpRemoveArc:  {needID: true},
	OpRewireArc:  {needID: true, allowFromTo: true},
	OpRetime:     {needID: true, needOrder: true},
}

func validateOpFields(op *DeltaOp, path string) error {
	spec, ok := opFieldTable[op.Op]
	if !ok {
		return errAt(path+".op", "unknown delta op %q", op.Op)
	}
	check := func(name string, present, wanted bool) error {
		switch {
		case wanted && !present:
			return errAt(path+"."+name, "%s requires %q", op.Op, name)
		case !wanted && present:
			return errAt(path+"."+name, "%s does not take %q", op.Op, name)
		}
		return nil
	}
	for _, c := range []struct {
		name            string
		present, wanted bool
	}{
		{"node", op.Node != nil, spec.needNode},
		{"arc", op.Arc != nil, spec.needArc},
		{"id", op.ID != nil, spec.needID},
		{"order", op.Order != nil, spec.needOrder},
	} {
		if err := check(c.name, c.present, c.wanted); err != nil {
			return err
		}
	}
	if spec.needStmtsOrCond {
		if len(op.Stmts) == 0 && op.Cond == nil {
			return errAt(path, "%s requires \"stmts\" or \"cond\"", op.Op)
		}
		if len(op.Stmts) > 0 && op.Cond != nil {
			return errAt(path, "%s takes \"stmts\" or \"cond\", not both", op.Op)
		}
	} else {
		if len(op.Stmts) > 0 {
			return errAt(path+".stmts", "%s does not take \"stmts\"", op.Op)
		}
		if op.Cond != nil {
			return errAt(path+".cond", "%s does not take \"cond\"", op.Op)
		}
	}
	if spec.allowFromTo {
		if op.From == nil && op.To == nil {
			return errAt(path, "%s requires \"from\" and/or \"to\"", op.Op)
		}
	} else {
		if op.From != nil {
			return errAt(path+".from", "%s does not take \"from\"", op.Op)
		}
		if op.To != nil {
			return errAt(path+".to", "%s does not take \"to\"", op.Op)
		}
	}
	return nil
}

// decodeStmts validates and converts a replacement statement list with
// the same rules DecodeGraph applies to node statements.
func decodeStmts(stmts []StmtDoc, path string) ([]cdfg.Stmt, error) {
	var out []cdfg.Stmt
	for j, sd := range stmts {
		op := cdfg.Op(sd.Op)
		if !validOps[op] {
			return nil, errAt(fmt.Sprintf("%s[%d].op", path, j), "unknown operation %q", sd.Op)
		}
		if sd.Dst == "" || sd.Src1 == "" {
			return nil, errAt(fmt.Sprintf("%s[%d]", path, j), "statement needs dst and src1")
		}
		out = append(out, cdfg.Stmt{Dst: sd.Dst, Op: op, Src1: sd.Src1, Src2: sd.Src2})
	}
	return out, nil
}

// ApplyDelta applies a decoded delta to g and returns the edited graph;
// g itself is never mutated (the edit happens on a clone). The result is
// re-validated with the same structural rules DecodeGraph enforces, so a
// delta can never produce a graph the pipeline would reject at
// submission. Failures are typed *Error values locating the offending op.
func ApplyDelta(g *cdfg.Graph, d *DeltaDoc) (*cdfg.Graph, error) {
	if d.Base != "" && d.Base != g.Name {
		return nil, errAt("base", "delta targets design %q, graph is %q", d.Base, g.Name)
	}
	ng := g.Clone()
	for i := range d.Ops {
		if err := applyOp(ng, &d.Ops[i], fmt.Sprintf("ops[%d]", i)); err != nil {
			return nil, err
		}
	}
	if err := ng.Validate(); err != nil {
		return nil, errAt("", "edited graph invalid: %v", err)
	}
	return ng, nil
}

func applyOp(g *cdfg.Graph, op *DeltaOp, path string) error {
	if err := validateOpFields(op, path); err != nil {
		return err
	}
	switch op.Op {
	case OpAddNode:
		nd := op.Node
		kind, ok := nodeKindVals[nd.Kind]
		if !ok {
			return errAt(path+".node.kind", "unknown node kind %q", nd.Kind)
		}
		if nd.ID < 0 {
			return errAt(path+".node.id", "negative node ID %d", nd.ID)
		}
		if g.Node(cdfg.NodeID(nd.ID)) != nil {
			return errAt(path+".node.id", "node %d already exists", nd.ID)
		}
		if nd.Block < 0 || nd.Block >= len(g.Blocks) {
			return errAt(path+".node.block", "block %d out of range [0,%d)", nd.Block, len(g.Blocks))
		}
		stmts, err := decodeStmts(nd.Stmts, path+".node.stmts")
		if err != nil {
			return err
		}
		n := &cdfg.Node{ID: cdfg.NodeID(nd.ID), Kind: kind, FU: nd.FU, Cond: nd.Cond, Block: nd.Block, Order: nd.Order, Stmts: stmts}
		if err := g.RestoreNode(n); err != nil {
			return errAt(path+".node.id", "%v", err)
		}
		// RestoreNode leaves block membership to the caller (the graph
		// codec restores lists verbatim); an added node joins its block.
		g.Blocks[nd.Block].Nodes = append(g.Blocks[nd.Block].Nodes, n.ID)
		return nil

	case OpRemoveNode:
		id := cdfg.NodeID(*op.ID)
		if g.Node(id) == nil {
			return errAt(path+".id", "no node %d", *op.ID)
		}
		if id == g.Start || id == g.End {
			return errAt(path+".id", "cannot remove the graph's START/END node %d", *op.ID)
		}
		for _, b := range g.Blocks {
			if b.Kind != cdfg.BlockTop && (b.Root == id || b.End == id) {
				return errAt(path+".id", "node %d is block %d's loop context", *op.ID, b.ID)
			}
		}
		g.RemoveNode(id)
		return nil

	case OpRetypeNode:
		n := g.Node(cdfg.NodeID(*op.ID))
		if n == nil {
			return errAt(path+".id", "no node %d", *op.ID)
		}
		if len(op.Stmts) > 0 {
			if n.Kind != cdfg.KindOp && n.Kind != cdfg.KindAssign {
				return errAt(path+".stmts", "node %d is %s, not op/assign", *op.ID, nodeKindNames[n.Kind])
			}
			stmts, err := decodeStmts(op.Stmts, path+".stmts")
			if err != nil {
				return err
			}
			n.Stmts = stmts
			return nil
		}
		if n.Kind != cdfg.KindLoop && n.Kind != cdfg.KindIf {
			return errAt(path+".cond", "node %d is %s, not loop/if", *op.ID, nodeKindNames[n.Kind])
		}
		if *op.Cond == "" {
			return errAt(path+".cond", "empty condition register")
		}
		n.Cond = *op.Cond
		return nil

	case OpAddArc:
		ad := op.Arc
		kind, ok := arcKindVals[ad.Kind]
		if !ok {
			return errAt(path+".arc.kind", "unknown arc kind %q", ad.Kind)
		}
		group, ok := groupVals[ad.Group]
		if !ok {
			return errAt(path+".arc.group", "unknown firing group %q", ad.Group)
		}
		branch, ok := branchVals[ad.Branch]
		if !ok {
			return errAt(path+".arc.branch", "unknown branch %q", ad.Branch)
		}
		if ad.ID < 0 {
			return errAt(path+".arc.id", "negative arc ID %d", ad.ID)
		}
		if g.Arc(cdfg.ArcID(ad.ID)) != nil {
			return errAt(path+".arc.id", "arc %d already exists", ad.ID)
		}
		if g.Node(cdfg.NodeID(ad.From)) == nil {
			return errAt(path+".arc.from", "dangling node ID %d", ad.From)
		}
		if g.Node(cdfg.NodeID(ad.To)) == nil {
			return errAt(path+".arc.to", "dangling node ID %d", ad.To)
		}
		a := &cdfg.Arc{
			ID: cdfg.ArcID(ad.ID), From: cdfg.NodeID(ad.From), To: cdfg.NodeID(ad.To),
			Kind: kind, Group: group, Branch: branch, Note: ad.Note,
		}
		if err := g.RestoreArc(a); err != nil {
			return errAt(path+".arc.id", "%v", err)
		}
		return nil

	case OpRemoveArc:
		id := cdfg.ArcID(*op.ID)
		if g.Arc(id) == nil {
			return errAt(path+".id", "no arc %d", *op.ID)
		}
		g.RemoveArc(id)
		return nil

	case OpRewireArc:
		a := g.Arc(cdfg.ArcID(*op.ID))
		if a == nil {
			return errAt(path+".id", "no arc %d", *op.ID)
		}
		if op.From != nil {
			if g.Node(cdfg.NodeID(*op.From)) == nil {
				return errAt(path+".from", "dangling node ID %d", *op.From)
			}
			a.From = cdfg.NodeID(*op.From)
		}
		if op.To != nil {
			if g.Node(cdfg.NodeID(*op.To)) == nil {
				return errAt(path+".to", "dangling node ID %d", *op.To)
			}
			a.To = cdfg.NodeID(*op.To)
		}
		return nil

	case OpRetime:
		n := g.Node(cdfg.NodeID(*op.ID))
		if n == nil {
			return errAt(path+".id", "no node %d", *op.ID)
		}
		n.Order = *op.Order
		return nil
	}
	return errAt(path+".op", "unknown delta op %q", op.Op) // unreachable after validateOpFields
}
