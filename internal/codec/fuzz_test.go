package codec

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/diffeq"
	"repro/internal/gcd"
	"repro/internal/gen"
)

// FuzzDecodeGraph hammers the strict decoder with arbitrary bytes. The
// contract under fuzzing: DecodeGraph never panics, and every rejection
// is a typed *Error. Accepted inputs must survive a re-encode (the
// decoder may not hand the pipeline a graph the encoder cannot render).
func FuzzDecodeGraph(f *testing.F) {
	valid, err := EncodeGraph(diffeq.Build(diffeq.DefaultParams()))
	if err != nil {
		f.Fatal(err)
	}
	valid2, err := EncodeGraph(gcd.Build(123, 45))
	if err != nil {
		f.Fatal(err)
	}
	// Randomly generated scheduled graphs widen the corpus beyond the
	// hand-built benchmark shapes (conditionals, movs, comparison ops).
	var generated [][]byte
	for seed := int64(0); seed < 4; seed++ {
		enc, err := EncodeGraph(gen.Graph(seed))
		if err != nil {
			f.Fatal(err)
		}
		generated = append(generated, enc)
	}
	seeds := [][]byte{
		valid,
		valid2,
		{},
		[]byte("hello"),
		valid[:len(valid)/3], // truncated mid-document
		bytes.Replace(valid, []byte(`"from": 0`), []byte(`"from": 9999`), 1),      // dangling arc endpoint
		bytes.Replace(valid, []byte(`"kind": "loop"`), []byte(`"kind": "if"`), 1), // broken loop context
		bytes.Replace(valid, []byte(`"version": 1`), []byte(`"version": 2`), 1),
		bytes.Replace(valid, []byte(`"op": "*"`), []byte(`"op": "nand"`), 1),
		bytes.Replace(valid, []byte(`"root"`), []byte(`"loot"`), 1), // unknown field
		[]byte(`{"version":1,"kind":"cdfg","name":"x","fus":["A"],"start":0,"end":0,"blocks":[{"id":0,"kind":"top","nodes":[0]}],"nodes":[{"id":0,"kind":"start","block":0}],"arcs":[]}`),
	}
	seeds = append(seeds, generated...)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeGraph(data)
		if err != nil {
			var ce *Error
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is %T, want *codec.Error: %v", err, err)
			}
			return
		}
		if _, err := EncodeGraph(g); err != nil {
			t.Fatalf("accepted input cannot be re-encoded: %v", err)
		}
	})
}
