package codec

import (
	"bytes"
	"testing"

	"repro/internal/gen"
)

// Every randomly generated scheduled graph must round-trip through the
// interchange codec byte-identically — the determinism guarantee holds
// across the whole generator corpus, not just the stock benchmarks.
func TestGeneratedGraphsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		g := gen.Graph(seed)
		enc1, err := EncodeGraph(g)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		g2, err := DecodeGraph(enc1)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		enc2, err := EncodeGraph(g2)
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Errorf("seed %d: round trip not byte-identical", seed)
		}
	}
}
