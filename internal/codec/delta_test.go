package codec

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/diffeq"
)

// deltaJSON wraps ops into a complete delta document.
func deltaJSON(ops ...string) []byte {
	return []byte(fmt.Sprintf(`{"version":1,"kind":"cdfg-delta","ops":[%s]}`,
		strings.Join(ops, ",")))
}

// TestDecodeDeltaValid accepts one well-formed op of each kind.
func TestDecodeDeltaValid(t *testing.T) {
	ops := map[string]string{
		"add_node":     `{"op":"add_node","node":{"id":99,"kind":"assign","block":0,"order":7,"stmts":[{"dst":"t","op":"mov","src1":"u"}]}}`,
		"remove_node":  `{"op":"remove_node","id":3}`,
		"retype stmts": `{"op":"retype_node","id":2,"stmts":[{"dst":"B","op":"-","src1":"dx2","src2":"dx"}]}`,
		"retype cond":  `{"op":"retype_node","id":4,"cond":"c"}`,
		"add_arc":      `{"op":"add_arc","arc":{"id":99,"from":0,"to":1,"kind":"data"}}`,
		"remove_arc":   `{"op":"remove_arc","id":3}`,
		"rewire from":  `{"op":"rewire_arc","id":3,"from":2}`,
		"rewire both":  `{"op":"rewire_arc","id":3,"from":2,"to":4}`,
		"retime":       `{"op":"retime","id":3,"order":5}`,
	}
	for name, op := range ops {
		if _, err := DecodeDelta(deltaJSON(op)); err != nil {
			t.Errorf("%s: DecodeDelta rejected %s: %v", name, op, err)
		}
	}
}

// TestDecodeDeltaStrict rejects malformed documents and field-discipline
// violations with located errors.
func TestDecodeDeltaStrict(t *testing.T) {
	cases := map[string][]byte{
		"not json":         []byte(`nope`),
		"unknown field":    []byte(`{"version":1,"kind":"cdfg-delta","bogus":1,"ops":[{"op":"retime","id":1,"order":2}]}`),
		"trailing data":    append(deltaJSON(`{"op":"retime","id":1,"order":2}`), []byte(`{}`)...),
		"wrong version":    []byte(`{"version":2,"kind":"cdfg-delta","ops":[{"op":"retime","id":1,"order":2}]}`),
		"wrong kind":       []byte(`{"version":1,"kind":"cdfg","ops":[{"op":"retime","id":1,"order":2}]}`),
		"no ops":           []byte(`{"version":1,"kind":"cdfg-delta","ops":[]}`),
		"unknown op":       deltaJSON(`{"op":"explode","id":1}`),
		"missing id":       deltaJSON(`{"op":"remove_node"}`),
		"stray node":       deltaJSON(`{"op":"remove_node","id":1,"node":{"id":9,"kind":"op","block":0,"order":0}}`),
		"stray order":      deltaJSON(`{"op":"remove_node","id":1,"order":3}`),
		"retype both":      deltaJSON(`{"op":"retype_node","id":1,"stmts":[{"dst":"a","op":"mov","src1":"b"}],"cond":"c"}`),
		"retype neither":   deltaJSON(`{"op":"retype_node","id":1}`),
		"rewire no ends":   deltaJSON(`{"op":"rewire_arc","id":1}`),
		"retime no order":  deltaJSON(`{"op":"retime","id":1}`),
		"stray from":       deltaJSON(`{"op":"retime","id":1,"order":2,"from":0}`),
		"add_node no node": deltaJSON(`{"op":"add_node"}`),
	}
	for name, doc := range cases {
		if _, err := DecodeDelta(doc); err == nil {
			t.Errorf("%s: DecodeDelta accepted %s", name, doc)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("%s: error is %T, want *codec.Error", name, err)
		}
	}
}

// TestApplyDeltaOpSwap: the flagship edit round-trips through the graph
// codec and leaves the base graph untouched.
func TestApplyDeltaOpSwap(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	before, err := EncodeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	var target *cdfg.Node
	for _, n := range g.Nodes() {
		if n.Kind == cdfg.KindOp && n.FU != "" && len(n.Stmts) == 1 && n.Stmts[0].Op == cdfg.OpAdd {
			target = n
			break
		}
	}
	if target == nil {
		t.Fatal("no addition node in diffeq")
	}
	s := target.Stmts[0]
	doc := deltaJSON(fmt.Sprintf(
		`{"op":"retype_node","id":%d,"stmts":[{"dst":%q,"op":"-","src1":%q,"src2":%q}]}`,
		target.ID, s.Dst, s.Src1, s.Src2))
	d, err := DecodeDelta(doc)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if got := ng.Node(target.ID).Stmts[0].Op; got != cdfg.OpSub {
		t.Errorf("patched op %q, want -", got)
	}
	after, err := EncodeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Error("ApplyDelta mutated the base graph")
	}
	// The patched graph passes submission-side validation.
	data, err := EncodeGraph(ng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeGraph(data); err != nil {
		t.Errorf("patched graph fails round trip: %v", err)
	}
}

// TestApplyDeltaStructural exercises add/remove/rewire/retime against a
// real graph.
func TestApplyDeltaStructural(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	// Duplicate an existing seq arc onto fresh IDs via add, then remove it
	// again; rewire another arc and retime a node.
	arcs := g.Arcs()
	a := arcs[0]
	doc := deltaJSON(
		fmt.Sprintf(`{"op":"add_arc","arc":{"id":999,"from":%d,"to":%d,"kind":"data"}}`, a.From, a.To),
		`{"op":"remove_arc","id":999}`,
	)
	d, err := DecodeDelta(doc)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if ng.Arc(999) != nil {
		t.Error("removed arc survived")
	}
	if len(ng.Arcs()) != len(arcs) {
		t.Errorf("arc count %d, want %d", len(ng.Arcs()), len(arcs))
	}
}

// TestApplyDeltaRejections: semantic failures surface as located errors
// and never half-apply.
func TestApplyDeltaRejections(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	start := int(g.Start)
	cases := map[string]string{
		"unknown node":    `{"op":"remove_node","id":424242}`,
		"remove start":    fmt.Sprintf(`{"op":"remove_node","id":%d}`, start),
		"bad node kind":   `{"op":"add_node","node":{"id":999,"kind":"quantum","block":0,"order":0}}`,
		"duplicate id":    `{"op":"add_node","node":{"id":0,"kind":"assign","block":0,"order":0,"stmts":[{"dst":"a","op":"mov","src1":"b"}]}}`,
		"bad block":       `{"op":"add_node","node":{"id":999,"kind":"assign","block":99,"order":0,"stmts":[{"dst":"a","op":"mov","src1":"b"}]}}`,
		"dangling arc":    `{"op":"add_arc","arc":{"id":999,"from":424242,"to":0,"kind":"data"}}`,
		"bad arc kind":    `{"op":"add_arc","arc":{"id":999,"from":0,"to":1,"kind":"warp"}}`,
		"retype start":    fmt.Sprintf(`{"op":"retype_node","id":%d,"stmts":[{"dst":"a","op":"mov","src1":"b"}]}`, start),
		"dangling rewire": `{"op":"rewire_arc","id":0,"to":424242}`,
		"bad stmt op":     `{"op":"retype_node","id":2,"stmts":[{"dst":"a","op":"xor","src1":"b"}]}`,
	}
	for name, op := range cases {
		d, err := DecodeDelta(deltaJSON(op))
		if err != nil {
			t.Errorf("%s: rejected at decode (%v), want apply-time rejection", name, err)
			continue
		}
		if _, err := ApplyDelta(g, d); err == nil {
			t.Errorf("%s: ApplyDelta accepted %s", name, op)
		}
	}
}

// TestApplyDeltaBaseCheck: a delta naming a different design is refused.
func TestApplyDeltaBaseCheck(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	d, err := DecodeDelta([]byte(`{"version":1,"kind":"cdfg-delta","base":"other","ops":[{"op":"retime","id":2,"order":9}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyDelta(g, d); err == nil {
		t.Error("ApplyDelta accepted a delta for a different base design")
	}
	d.Base = g.Name
	if _, err := ApplyDelta(g, d); err != nil {
		t.Errorf("ApplyDelta rejected a matching base: %v", err)
	}
}
