package codec

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/fir"
	"repro/internal/gcd"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// benches returns the three built-in benchmarks the golden fixtures are
// generated from.
func benches() map[string]*cdfg.Graph {
	return map[string]*cdfg.Graph{
		"diffeq": diffeq.Build(diffeq.DefaultParams()),
		"gcd":    gcd.Build(123, 45),
		"fir":    fir.Build(fir.DefaultParams()),
	}
}

// TestGoldenRoundTrip pins the interchange encoding of every built-in
// benchmark to a golden file and asserts the full round trip: encode →
// golden equality → decode → re-encode byte equality → structural
// equality of the reconstructed graph.
func TestGoldenRoundTrip(t *testing.T) {
	for name, g := range benches() {
		t.Run(name, func(t *testing.T) {
			enc, err := EncodeGraph(g)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			golden := filepath.Join("testdata", name+".json")
			if *update {
				if err := os.WriteFile(golden, enc, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("golden: %v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(enc, want) {
				t.Fatalf("encoding of %s diverged from golden %s (run with -update if intentional)", name, golden)
			}
			g2, err := DecodeGraph(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			enc2, err := EncodeGraph(g2)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatal("decode→encode is not the identity")
			}
			if g.String() != g2.String() {
				t.Fatal("reconstructed graph differs structurally from the original")
			}
		})
	}
}

// TestDecodedGraphRunsPipeline asserts a decoded graph is a full-fidelity
// pipeline input: the synthesis flow over the decoded DIFFEQ produces the
// same Figure 12 metrics as the directly built graph.
func TestDecodedGraphRunsPipeline(t *testing.T) {
	direct, err := core.Run(diffeq.Build(diffeq.DefaultParams()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeGraph(diffeq.Build(diffeq.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeGraph(enc)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := core.Run(g, core.DefaultOptions())
	if err != nil {
		t.Fatalf("pipeline on decoded graph: %v", err)
	}
	if direct.Channels() != decoded.Channels() {
		t.Fatalf("channels: direct %d, decoded %d", direct.Channels(), decoded.Channels())
	}
	ds, es := direct.StateCounts(), decoded.StateCounts()
	for fu, want := range ds {
		if es[fu] != want {
			t.Fatalf("%s states/transitions: direct %v, decoded %v", fu, want, es[fu])
		}
	}
}

// mutate applies a textual mutation to the valid DIFFEQ document.
func validDoc(t *testing.T) []byte {
	t.Helper()
	enc, err := EncodeGraph(diffeq.Build(diffeq.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestDecodeRejectsMalformed exercises the strict-validation surface:
// every malformed document yields a typed *Error mentioning the offending
// location, and never a panic.
func TestDecodeRejectsMalformed(t *testing.T) {
	valid := validDoc(t)
	cases := []struct {
		name    string
		input   func() []byte
		wantSub string
	}{
		{"empty", func() []byte { return nil }, "invalid JSON"},
		{"truncated", func() []byte { return valid[:len(valid)/2] }, "invalid JSON"},
		{"not-json", func() []byte { return []byte("hello") }, "invalid JSON"},
		{"bad-version", func() []byte {
			return bytes.Replace(valid, []byte(`"version": 1`), []byte(`"version": 99`), 1)
		}, "unsupported version"},
		{"bad-kind", func() []byte {
			return bytes.Replace(valid, []byte(`"kind": "cdfg"`), []byte(`"kind": "netlist"`), 1)
		}, "unexpected kind"},
		{"unknown-field", func() []byte {
			return bytes.Replace(valid, []byte(`"version": 1`), []byte(`"version": 1, "extra": true`), 1)
		}, "invalid JSON"},
		{"bad-node-kind", func() []byte {
			return bytes.Replace(valid, []byte(`"kind": "start"`), []byte(`"kind": "begin"`), 1)
		}, "unknown node kind"},
		{"bad-arc-kind", func() []byte {
			return bytes.Replace(valid, []byte(`"kind": "control"`), []byte(`"kind": "wire"`), 1)
		}, "unknown arc kind"},
		{"bad-op", func() []byte {
			return bytes.Replace(valid, []byte(`"op": "*"`), []byte(`"op": "xor"`), 1)
		}, "unknown operation"},
		{"dangling-arc", func() []byte {
			return bytes.Replace(valid, []byte(`"from": 0`), []byte(`"from": 9999`), 1)
		}, "dangling node ID"},
		{"bad-loop-context", func() []byte {
			// Point a loop block's root at a nonexistent node.
			return bytes.Replace(valid, []byte(`"kind": "loop",
      "root": `), []byte(`"kind": "loop",
      "root": 4242, "_r": `), 1)
		}, ""},
		{"no-blocks", func() []byte {
			return []byte(`{"version":1,"kind":"cdfg","name":"x","fus":["A"],"start":0,"end":1,"blocks":[],"nodes":[],"arcs":[]}`)
		}, "no blocks"},
		{"no-fus", func() []byte {
			return []byte(`{"version":1,"kind":"cdfg","name":"x","fus":[],"start":0,"end":1,"blocks":[],"nodes":[],"arcs":[]}`)
		}, "no functional units"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeGraph(tc.input())
			if err == nil {
				t.Fatal("decode accepted malformed input")
			}
			var ce *Error
			if !errors.As(err, &ce) {
				t.Fatalf("error is %T, want *codec.Error: %v", err, err)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestSynthesisDocRoundTrip encodes a full gate-level DIFFEQ synthesis
// and round-trips the document.
func TestSynthesisDocRoundTrip(t *testing.T) {
	s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeSynthesis(s, results)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeSynthesis(enc)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "diffeq" || doc.Level != core.OptimizedGTLT.String() {
		t.Fatalf("header mismatch: %q %q", doc.Name, doc.Level)
	}
	if len(doc.Controllers) != len(diffeq.FUs) {
		t.Fatalf("controllers: got %d, want %d", len(doc.Controllers), len(diffeq.FUs))
	}
	totP := 0
	for _, c := range doc.Controllers {
		if c.Netlist == "" {
			t.Fatalf("%s: missing netlist", c.FU)
		}
		if len(c.AFSM.Transitions) == 0 {
			t.Fatalf("%s: empty AFSM", c.FU)
		}
		totP += c.Products
	}
	if totP != doc.TotalProducts {
		t.Fatalf("total products %d != sum %d", doc.TotalProducts, totP)
	}
	// Determinism: a second encode of the same synthesis is byte-identical.
	enc2, err := EncodeSynthesis(s, results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("synthesis encoding is not deterministic")
	}
}
