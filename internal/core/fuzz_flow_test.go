package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestFuzzFullFlow drives random scheduled programs through the entire
// flow — global transforms, controller extraction, local transforms — and
// verifies the resulting controller system against the sequential golden
// model. Instances the extractor rejects as unsupported topology (e.g. a
// wire that would need several primer events) are skipped but counted.
func TestFuzzFullFlow(t *testing.T) {
	const trials = 25
	ran, skipped := 0, 0
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial) + 7700))
		rp := genProgram(r)
		ref := rp.reference()
		if tooBig(ref) {
			skipped++
			continue
		}
		g, err := rp.prog.Build()
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		for _, level := range []Level{Unoptimized, OptimizedGT, OptimizedGTLT} {
			opt := DefaultOptions()
			opt.Level = level
			// GT3's removals assume the analysis delay model, which the
			// controller-level delays do not follow; keep it off for fuzzing.
			opt.Transform.SkipGT3 = true
			s, err := Run(g.Clone(), opt)
			if err != nil {
				if strings.Contains(err.Error(), "unsupported topology") ||
					strings.Contains(err.Error(), "primer events") {
					skipped++
					continue
				}
				t.Fatalf("trial %d %s: %v\n%s", trial, level, err, g)
			}
			for seed := int64(0); seed < 3; seed++ {
				res, err := s.Simulate(seed)
				if err != nil {
					t.Fatalf("trial %d %s seed %d: %v", trial, level, seed, err)
				}
				for _, reg := range []string{"r0", "r1", "r2", "r3", "i"} {
					if math.Abs(res.Regs[reg]-ref[reg]) > 1e-6 {
						t.Fatalf("trial %d %s seed %d: %s = %v, want %v\nprogram:\n%s\nmachines:\n%v",
							trial, level, seed, reg, res.Regs[reg], ref[reg], g, s.Machines)
					}
				}
				if len(res.Violations) != 0 {
					t.Fatalf("trial %d %s seed %d: %v", trial, level, seed, res.Violations)
				}
			}
			ran++
		}
	}
	t.Logf("full-flow fuzz: %d level-runs verified, %d skipped", ran, skipped)
	if ran < trials {
		t.Errorf("too few instances ran (%d); generator or extractor too restrictive", ran)
	}
}
