package core

import (
	"strings"
	"testing"

	"repro/internal/diffeq"
	"repro/internal/transform"
)

func runLevel(t *testing.T, level Level) *Synthesis {
	t.Helper()
	opt := DefaultOptions()
	opt.Level = level
	s, err := Run(diffeq.Build(diffeq.DefaultParams()), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunAllLevels(t *testing.T) {
	ref := diffeq.Reference(diffeq.DefaultParams())
	want := map[string]float64{"X": ref["X"], "Y": ref["Y"], "U": ref["U"]}
	for _, level := range []Level{Unoptimized, OptimizedGT, OptimizedGTLT} {
		s := runLevel(t, level)
		if len(s.Machines) != 4 {
			t.Fatalf("%s: machines = %d", level, len(s.Machines))
		}
		if err := s.Verify(want, 3); err != nil {
			t.Errorf("%s: %v", level, err)
		}
	}
}

func TestChannelProgression(t *testing.T) {
	unopt := runLevel(t, Unoptimized)
	opt := runLevel(t, OptimizedGT)
	if unopt.Channels() != 15 {
		t.Errorf("unoptimized channels = %d, want 15", unopt.Channels())
	}
	if opt.Channels() != 5 {
		t.Errorf("optimized channels = %d, want 5", opt.Channels())
	}
	if opt.MultiwayChannels() != 2 {
		t.Errorf("multi-way channels = %d, want 2", opt.MultiwayChannels())
	}
}

func TestFig12RowsMonotone(t *testing.T) {
	var rows []Row
	for _, level := range []Level{Unoptimized, OptimizedGT, OptimizedGTLT} {
		rows = append(rows, runLevel(t, level).Fig12Row())
	}
	table := FormatFig12(diffeq.FUs, rows)
	t.Logf("\n%s", table)
	for _, fu := range diffeq.FUs {
		if rows[2].States[fu] >= rows[0].States[fu] {
			t.Errorf("%s: GT+LT states %d not below unoptimized %d", fu, rows[2].States[fu], rows[0].States[fu])
		}
	}
	if !strings.Contains(table, "unoptimized") || !strings.Contains(table, "optimized-GT-and-LT") {
		t.Error("table missing row names")
	}
}

func TestSynthesizeLogicTable(t *testing.T) {
	s := runLevel(t, OptimizedGTLT)
	results, err := s.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	table := FormatFig13(diffeq.FUs, results)
	t.Logf("\n%s", table)
	if !strings.Contains(table, "total") {
		t.Error("missing total row")
	}
}

func TestAssumptionsRecorded(t *testing.T) {
	s := runLevel(t, OptimizedGTLT)
	a := s.Assumptions()
	if len(a) == 0 {
		t.Error("fully optimized flow must record timing assumptions")
	}
}

func TestAblationSkipGT5(t *testing.T) {
	opt := DefaultOptions()
	opt.Level = OptimizedGT
	opt.Transform = transform.DefaultOptions()
	opt.Transform.SkipGT5 = true
	s, err := Run(diffeq.Build(diffeq.DefaultParams()), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Without channel elimination the count stays at the post-GT1..4 level
	// (10, Figure 5 left).
	if s.Channels() != 10 {
		t.Errorf("channels without GT5 = %d, want 10", s.Channels())
	}
}

func TestLevelString(t *testing.T) {
	if Unoptimized.String() != "unoptimized" || OptimizedGTLT.String() != "optimized-GT-and-LT" {
		t.Error("level names wrong")
	}
}

// The ultimate closure test: the synthesized two-level logic, simulated as
// gates with state feedback, still computes the DIFFEQ trajectory.
func TestGateLevelSimulation(t *testing.T) {
	s := runLevel(t, OptimizedGTLT)
	results, err := s.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	ref := diffeq.Reference(diffeq.DefaultParams())
	for seed := int64(0); seed < 5; seed++ {
		res, err := s.GateSimulate(results, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, reg := range []string{"X", "Y", "U"} {
			if diff := res.Regs[reg] - ref[reg]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("seed %d: %s = %v, want %v", seed, reg, res.Regs[reg], ref[reg])
			}
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
	}
}

// Gate-level closure also holds one level up: the GT-only controllers
// (before local transforms) synthesize and execute correctly as gates.
func TestGateLevelSimulationGTOnly(t *testing.T) {
	s := runLevel(t, OptimizedGT)
	results, err := s.SynthesizeLogic()
	if err != nil {
		t.Fatal(err)
	}
	ref := diffeq.Reference(diffeq.DefaultParams())
	for seed := int64(0); seed < 3; seed++ {
		res, err := s.GateSimulate(results, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, reg := range []string{"X", "Y", "U"} {
			if diff := res.Regs[reg] - ref[reg]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("seed %d: %s = %v, want %v", seed, reg, res.Regs[reg], ref[reg])
			}
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
	}
}

// Parameter robustness: the full flow verifies across different initial
// conditions, step sizes and iteration counts (including zero and one).
func TestParameterSweep(t *testing.T) {
	cases := []diffeq.Params{
		{X0: 0, Y0: 1, U0: 0, DX: 0.125, A: 1},       // 8 iterations
		{X0: 0, Y0: 1, U0: 0.5, DX: 0.34, A: 1},      // 3 iterations
		{X0: 0, Y0: 2, U0: -1, DX: 0.5, A: 1},        // 2 iterations
		{X0: 0, Y0: 1, U0: 0.25, DX: 2, A: 1},        // 1 iteration
		{X0: 5, Y0: 1, U0: 0, DX: 0.5, A: 1},         // 0 iterations
		{X0: -1, Y0: 0.5, U0: 0.125, DX: 0.25, A: 0}, // negative range
	}
	for _, p := range cases {
		ref := diffeq.Reference(p)
		want := map[string]float64{"X": ref["X"], "Y": ref["Y"], "U": ref["U"]}
		s, err := Run(diffeq.Build(p), DefaultOptions())
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if err := s.Verify(want, 3); err != nil {
			t.Errorf("%+v: %v", p, err)
		}
	}
}
