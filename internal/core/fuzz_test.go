package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/sim"
	"repro/internal/transform"
)

// randomProgram generates a random scheduled program: a few preamble
// operations, a counted loop whose body spreads operations across units,
// and optionally an owner-unit conditional. Registers hold small integers
// so float arithmetic is exact.
type randomProgram struct {
	prog  *cdfg.Program
	fus   []string
	iters int
	// sequential golden model
	regs map[string]float64
	loop []func(map[string]float64)
	pre  []func(map[string]float64)
}

func genProgram(r *rand.Rand) *randomProgram {
	nFU := 2 + r.Intn(2)
	var fus []string
	for i := 0; i < nFU; i++ {
		fus = append(fus, fmt.Sprintf("FU%d", i))
	}
	rp := &randomProgram{fus: fus, regs: map[string]float64{}}
	p := cdfg.NewProgram("fuzz", fus...)
	rp.prog = p
	p.Const("one")
	p.Init("one", 1)
	rp.regs["one"] = 1

	regs := []string{"r0", "r1", "r2", "r3"}
	for i, reg := range regs {
		v := float64(1 + (i*3+r.Intn(5))%7)
		p.Init(reg, v)
		rp.regs[reg] = v
	}
	rp.iters = 2 + r.Intn(4)
	p.Init("i", 0).Init("n", float64(rp.iters)).Init("run", 1)
	p.Const("n")
	rp.regs["i"], rp.regs["n"], rp.regs["run"] = 0, float64(rp.iters), 1

	ops := []cdfg.Op{cdfg.OpAdd, cdfg.OpSub, cdfg.OpMul}
	emitOp := func(into *[]func(map[string]float64)) {
		fu := fus[r.Intn(len(fus))]
		dst := regs[r.Intn(len(regs))]
		s1 := regs[r.Intn(len(regs))]
		s2 := regs[r.Intn(len(regs))]
		op := ops[r.Intn(len(ops))]
		p.Op(fu, dst, op, s1, s2)
		*into = append(*into, func(m map[string]float64) {
			a, b := m[s1], m[s2]
			switch op {
			case cdfg.OpAdd:
				m[dst] = a + b
			case cdfg.OpSub:
				m[dst] = a - b
			case cdfg.OpMul:
				m[dst] = a * b
			}
		})
	}
	// Preamble.
	for k := 0; k < r.Intn(3); k++ {
		emitOp(&rp.pre)
	}
	// Loop owned by FU0 on `run`.
	p.Loop(fus[0], "run")
	body := 2 + r.Intn(4)
	for k := 0; k < body; k++ {
		emitOp(&rp.loop)
	}
	// Counter and condition, bound to the owner.
	p.Op(fus[0], "i", cdfg.OpAdd, "i", "one")
	p.Op(fus[0], "run", cdfg.OpLT, "i", "n")
	rp.loop = append(rp.loop, func(m map[string]float64) {
		m["i"]++
		if m["i"] < m["n"] {
			m["run"] = 1
		} else {
			m["run"] = 0
		}
	})
	p.EndLoop()
	return rp
}

// reference executes the golden model.
func (rp *randomProgram) reference() map[string]float64 {
	m := map[string]float64{}
	for k, v := range rp.regs {
		m[k] = v
	}
	for _, f := range rp.pre {
		f(m)
	}
	for m["run"] != 0 {
		for _, f := range rp.loop {
			f(m)
		}
	}
	return m
}

// TestFuzzPipelinePreservesFunction generates random scheduled programs,
// runs the global-transform pipeline, and checks that the token semantics
// still compute the sequential result under random delays — the central
// soundness property of the transformations.
func TestFuzzPipelinePreservesFunction(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial) + 1000))
		rp := genProgram(r)
		// The multiply clamp is not expressible as a CDFG op; regenerate
		// until the raw values stay small instead.
		ref := rp.reference()
		if tooBig(ref) {
			continue // products outside exact float range: skip instance
		}
		g, err := rp.prog.Build()
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: validate: %v", trial, err)
		}
		// Token simulation before any transform.
		checkTokenEquiv(t, trial, "untransformed", g, ref, 3)
		// After the global pipeline (GT3 excluded: random delay draws are
		// not guaranteed to respect the analysis model used for removal).
		opts := transform.DefaultOptions()
		opts.SkipGT3 = true
		if _, _, err := transform.OptimizeGT(g, opts); err != nil {
			t.Fatalf("trial %d: transforms: %v", trial, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: validate after transforms: %v", trial, err)
		}
		checkTokenEquiv(t, trial, "transformed", g, ref, 4)
	}
}

func tooBig(m map[string]float64) bool {
	for _, v := range m {
		if math.Abs(v) > 1e12 {
			return true
		}
	}
	return false
}

func checkTokenEquiv(t *testing.T, trial int, stage string, g *cdfg.Graph, ref map[string]float64, seeds int) {
	t.Helper()
	for seed := 0; seed < seeds; seed++ {
		res, err := sim.NewTokenSim(g.Clone(), sim.RandomDelays(int64(seed), 1, 30, 0.1, 2)).Run()
		if err != nil {
			t.Fatalf("trial %d %s seed %d: %v", trial, stage, seed, err)
		}
		if !res.Finished {
			t.Fatalf("trial %d %s seed %d: did not finish", trial, stage, seed)
		}
		for _, reg := range []string{"r0", "r1", "r2", "r3", "i"} {
			if math.Abs(res.Regs[reg]-ref[reg]) > 1e-6 {
				t.Fatalf("trial %d %s seed %d: %s = %v, want %v\n%s",
					trial, stage, seed, reg, res.Regs[reg], ref[reg], g)
			}
		}
		if len(res.Violations) != 0 {
			t.Fatalf("trial %d %s seed %d: violations: %v", trial, stage, seed, res.Violations)
		}
	}
}
