package core

import (
	"context"
	"fmt"

	"repro/internal/bm"
	"repro/internal/cdfg"
	"repro/internal/extract"
	"repro/internal/local"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/timing"
	"repro/internal/transform"
)

// The pipeline's stages as explicit, individually callable seams. RunCtx
// composes them into the monolithic flow; the incremental engine
// (internal/stage) calls them one at a time, wrapping each in a
// content-addressed cache lookup so unchanged stages are skipped. Both
// entry points MUST agree on behavior — every defaulting rule, error
// wrap and obs span lives in exactly one seam below, never duplicated in
// a composer.

// Normalized returns the options with every implicit default resolved —
// currently the timing model (a zero model selects
// timing.DefaultModel()). RunCtx applies it on entry; cache-key builders
// must apply it too, so the defaulted and explicit spellings of the same
// configuration share keys.
func (o Options) Normalized() Options {
	if o.Timing.DefaultOp.Max == 0 && len(o.Timing.FUOp) == 0 {
		o.Timing = timing.DefaultModel()
	}
	return o
}

// GTOptions resolves the transform options the global-transform phase
// actually runs with: a zero-valued Transform (Unroll == 0) selects the
// defaults while preserving the per-GT skip toggles, and the run's
// timing model always wins over one smuggled in via Transform.Timing.
func GTOptions(opt Options) transform.Options {
	topt := opt.Transform
	if topt.Unroll == 0 {
		topt = transform.DefaultOptions()
		topt.SkipGT1 = opt.Transform.SkipGT1
		topt.SkipGT2 = opt.Transform.SkipGT2
		topt.SkipGT3 = opt.Transform.SkipGT3
		topt.SkipGT4 = opt.Transform.SkipGT4
		topt.SkipGT5 = opt.Transform.SkipGT5
	}
	topt.Timing = opt.Timing
	return topt
}

// GTPhase runs the global-transform stage on g (mutating it): the full
// GT1–GT5 cascade at the optimized levels, or a bare channel build (with
// separate-wait extraction) at Unoptimized. It returns the channel plan,
// the per-GT reports (nil at Unoptimized) and the extraction options the
// next stage must use. opt must already be Normalized.
func GTPhase(g *cdfg.Graph, opt Options) (*transform.Plan, []*transform.Report, extract.Options, error) {
	exOpt := extract.Options{}
	if opt.Level == Unoptimized {
		exOpt.SeparateWaits = true
		return transform.BuildChannels(g), nil, exOpt, nil
	}
	plan, reports, err := transform.OptimizeGT(g, GTOptions(opt))
	if err != nil {
		return nil, nil, exOpt, fmt.Errorf("core: global transforms: %w", err)
	}
	return plan, reports, exOpt, nil
}

// ExtractPhase runs AFSM extraction over the transformed graph under the
// "extract" span, publishing the per-controller size gauges.
func ExtractPhase(g *cdfg.Graph, plan *transform.Plan, exOpt extract.Options) (*extract.Result, error) {
	exSp := obs.Start("extract", "")
	res, err := extract.Extract(g, plan, exOpt)
	exSp.EndErr(err)
	if err != nil {
		return nil, fmt.Errorf("core: extraction: %w", err)
	}
	obs.Add("extract/machines", int64(len(res.Machines)))
	for fu, m := range res.Machines {
		obs.Set("extract/"+fu+"/states", int64(m.NumStates()))
		obs.Set("extract/"+fu+"/inputs", int64(len(m.Inputs)))
	}
	return res, nil
}

// LTConfigFor resolves the local-transform configuration for one
// controller: the caller's per-FU override, or the full pipeline.
func LTConfigFor(opt Options, fu string) local.Config {
	if cfg, ok := opt.LTConfigs[fu]; ok {
		return cfg
	}
	return local.FullConfig()
}

// LTPhase runs the local transforms on one controller (mutating m in
// place) with core's error attribution.
func LTPhase(m *bm.Machine, cfg local.Config, fu string) (*local.Report, error) {
	rep, err := local.OptimizeWith(m, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: local transforms on %s: %w", fu, err)
	}
	return rep, nil
}

// RungFor resolves the encoding-ladder rung for one controller: the
// caller's pinned rung, or -1 (try the whole ladder).
func RungFor(encodings map[string]int, fu string) int {
	if rung, ok := encodings[fu]; ok {
		return rung
	}
	return -1
}

// SynthPhase runs gate-level synthesis for one controller with core's
// error attribution. It takes the machine directly (not a *Synthesis) so
// concurrent per-controller callers need no shared state.
func SynthPhase(ctx context.Context, m *bm.Machine, workers int, min synth.Minimizer, solver logic.Solver, rung int, fu string) (*synth.Result, error) {
	r, err := synth.SynthesizeRung(ctx, m, workers, min, solver, rung)
	if err != nil {
		return nil, fmt.Errorf("core: synthesis of %s: %w", fu, err)
	}
	return r, nil
}
