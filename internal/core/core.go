// Package core ties the synthesis flow together: it is the programmatic
// entry point implementing the paper's three-step method —
//
//  1. apply global transformations to the scheduled CDFG (GT1–GT5),
//  2. extract one extended burst-mode AFSM per functional unit,
//  3. apply local transformations to each controller (LT1–LT5),
//
// and exposes evaluation hooks: channel counts (Figure 5), state-machine
// sizes (Figure 12), gate-level synthesis (Figure 13) and simulation-based
// functional verification.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bm"
	"repro/internal/cdfg"
	"repro/internal/extract"
	"repro/internal/local"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/timing"
	"repro/internal/transform"
)

// Level selects how much of the optimization pipeline runs, matching the
// paper's three experiments.
type Level int

// Pipeline levels (Figure 12 rows).
const (
	Unoptimized Level = iota
	OptimizedGT
	OptimizedGTLT
)

func (l Level) String() string {
	switch l {
	case Unoptimized:
		return "unoptimized"
	case OptimizedGT:
		return "optimized-GT"
	case OptimizedGTLT:
		return "optimized-GT-and-LT"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Options configures a flow run.
type Options struct {
	Level Level
	// Timing is the delay model for relative-timing optimization; zero
	// value selects timing.DefaultModel().
	Timing timing.Model
	// Transform forwards fine-grained transform toggles (ablations).
	Transform transform.Options
	// Parallelism bounds the worker pool used to fan out per-controller
	// local optimization, gate-level synthesis and per-output hazard-free
	// minimization: 0 selects GOMAXPROCS, 1 forces the sequential path
	// (useful for debugging). Results are identical at every setting.
	Parallelism int
	// Minimizer, when non-nil, routes every exact hazard-free
	// minimization through a memoization layer (internal/memo's *Cache).
	// Results are bit-identical with and without it; only wall time
	// changes. Sharing one cache across runs (e.g. an exploration sweep)
	// turns repeated minimization problems into hits.
	Minimizer synth.Minimizer
	// Solver selects the covering backend for exact hazard-free
	// minimizations (see logic.Solver): the branch-and-bound reference
	// (zero value), the pseudo-Boolean solver, the racing portfolio, or
	// the greedy heuristic. Exact backends produce bit-identical logic;
	// only wall time changes. Ignored when Minimizer is set (a memo cache
	// carries its own backend, fixed at construction so cache keys match).
	Solver logic.Solver
	// LTConfigs selects a per-controller subset/order of the local
	// transforms (a rewrite-search decision); nil, or a missing entry,
	// runs the full pipeline for that controller. Only consulted at
	// Level OptimizedGTLT.
	LTConfigs map[string]local.Config
	// Encodings forces a per-controller rung of the encoding-attempt
	// ladder (see synth.SynthesizeRung); nil, a missing entry, or a
	// negative value tries the whole ladder.
	Encodings map[string]int
}

// DefaultOptions runs the full pipeline.
func DefaultOptions() Options {
	return Options{Level: OptimizedGTLT, Timing: timing.DefaultModel(), Transform: transform.DefaultOptions()}
}

// Synthesis is the result of running the flow on a CDFG.
type Synthesis struct {
	Level     Level
	Graph     *cdfg.Graph
	Plan      *transform.Plan
	Machines  map[string]*bm.Machine
	Shared    map[string]map[string][]string
	GTReports []*transform.Report
	LTReports map[string]*local.Report
	Wires     map[cdfg.ArcID]extract.WireEvent
	Primers   map[string]bm.Edge
	// Parallelism is the worker-pool bound inherited from Options; it
	// governs SynthesizeLogic's per-controller fan-out.
	Parallelism int
	// Minimizer is the optional hfmin memoization layer inherited from
	// Options, used by SynthesizeLogic.
	Minimizer synth.Minimizer
	// Solver is the covering backend inherited from Options.
	Solver logic.Solver
	// Encodings carries the per-controller forced encoding rungs inherited
	// from Options into SynthesizeLogic.
	Encodings map[string]int
}

// FUs returns the controller (functional-unit) names in sorted order —
// the canonical iteration order over Machines, so reports, errors and
// fan-out work lists are deterministic run to run.
func (s *Synthesis) FUs() []string {
	fus := make([]string, 0, len(s.Machines))
	for fu := range s.Machines {
		fus = append(fus, fu)
	}
	sort.Strings(fus)
	return fus
}

// Run executes the flow on graph g (which is mutated: clone first to keep
// the original). The whole run is bracketed in an obs span ("run", unit =
// level) with per-phase child spans, so `asyncsynth -metrics`/-trace see
// the complete cascade: GT1–GT5 (inside transform.OptimizeGT), extraction,
// and the per-controller LT fan-out.
func Run(g *cdfg.Graph, opt Options) (*Synthesis, error) {
	return RunCtx(context.Background(), g, opt)
}

// RunCtx is Run with cooperative cancellation: ctx is checked at every
// stage boundary (before the global transforms, before extraction, before
// the LT fan-out) and threaded through the worker pool, so a cancelled or
// deadline-exceeded run — a cancelled service job, typically — stops
// between stages and releases its pool workers instead of completing the
// pipeline. A cancelled run returns ctx.Err().
func RunCtx(ctx context.Context, g *cdfg.Graph, opt Options) (_ *Synthesis, err error) {
	sp := obs.Start("run", opt.Level.String())
	defer func() { sp.EndErr(err) }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt = opt.Normalized()
	s := &Synthesis{
		Level:       opt.Level,
		Graph:       g,
		Shared:      map[string]map[string][]string{},
		LTReports:   map[string]*local.Report{},
		Parallelism: opt.Parallelism,
		Minimizer:   opt.Minimizer,
		Solver:      opt.Solver,
		Encodings:   opt.Encodings,
	}
	plan, reports, exOpt, err := GTPhase(g, opt)
	if err != nil {
		return nil, err
	}
	s.Plan = plan
	s.GTReports = reports
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := ExtractPhase(g, s.Plan, exOpt)
	if err != nil {
		return nil, err
	}
	s.Machines = res.Machines
	s.Wires = res.Wires
	s.Primers = res.Primers
	if opt.Level == OptimizedGTLT {
		// Fan out LT1–LT5 across controllers: each machine is optimized in
		// place and touches no shared state, so per-FU work is independent.
		// Reports land in index-addressed slots over the sorted FU list,
		// keeping results and error attribution deterministic.
		fus := s.FUs()
		reps, err := par.NamedMapCtx(ctx, "lt", opt.Parallelism, fus, func(_ context.Context, _ int, fu string) (*local.Report, error) {
			return LTPhase(s.Machines[fu], LTConfigFor(opt, fu), fu)
		})
		if err != nil {
			return nil, err
		}
		for i, fu := range fus {
			s.LTReports[fu] = reps[i]
			s.Shared[fu] = reps[i].SharedWires
		}
	}
	return s, nil
}

// Channels returns the number of inter-controller communication channels.
func (s *Synthesis) Channels() int { return s.Plan.Count() }

// MultiwayChannels returns the number of multi-way channels.
func (s *Synthesis) MultiwayChannels() int { return s.Plan.MultiwayCount() }

// StateCounts returns per-controller (states, transitions).
func (s *Synthesis) StateCounts() map[string][2]int {
	out := map[string][2]int{}
	for _, fu := range s.FUs() {
		m := s.Machines[fu]
		out[fu] = [2]int{m.NumStates(), m.NumTransitions()}
	}
	return out
}

// SynthesizeLogic runs gate-level synthesis on every controller,
// fanning the independent per-controller problems out across the
// Parallelism-bounded worker pool (each synthesis in turn parallelizes
// its per-output minimizations on the same bound).
func (s *Synthesis) SynthesizeLogic() (map[string]*synth.Result, error) {
	return s.SynthesizeLogicCtx(context.Background())
}

// SynthesizeLogicCtx is SynthesizeLogic with cooperative cancellation:
// ctx flows into every per-controller synthesis and from there into the
// per-output minimizations, which check it between encoding-ladder rungs
// and covering iterations. A cancelled synthesis returns ctx.Err().
func (s *Synthesis) SynthesizeLogicCtx(ctx context.Context) (map[string]*synth.Result, error) {
	fus := s.FUs()
	results, err := par.NamedMapCtx(ctx, "synth", s.Parallelism, fus, func(ctx context.Context, _ int, fu string) (*synth.Result, error) {
		return SynthPhase(ctx, s.Machines[fu], s.Parallelism, s.Minimizer, s.Solver, RungFor(s.Encodings, fu), fu)
	})
	if err != nil {
		return nil, err
	}
	out := map[string]*synth.Result{}
	for i, fu := range fus {
		out[fu] = results[i]
	}
	return out, nil
}

// Simulate runs the controller-level simulation under a seeded random
// delay model and returns the final register file.
func (s *Synthesis) Simulate(seed int64) (*sim.MachineResult, error) {
	sys := &sim.MachineSystem{
		G:        s.Graph,
		Machines: s.Machines,
		Shared:   s.Shared,
		Primers:  s.Primers,
		Delays:   sim.DefaultMachineDelays(seed),
	}
	return sys.Run()
}

// GateSimulate runs the synthesized two-level logic (with state feedback)
// as the controllers — the gate-level closure of the whole flow.
func (s *Synthesis) GateSimulate(results map[string]*synth.Result, seed int64) (*sim.LogicResult, error) {
	evs := map[string]*synth.Evaluator{}
	for _, fu := range s.FUs() {
		m := s.Machines[fu]
		r, ok := results[fu]
		if !ok {
			return nil, fmt.Errorf("core: no synthesis result for %s", fu)
		}
		ev, err := synth.NewEvaluator(m, r)
		if err != nil {
			return nil, err
		}
		evs[fu] = ev
	}
	sys := &sim.LogicSystem{
		G:          s.Graph,
		Evaluators: evs,
		Machines:   s.Machines,
		Shared:     s.Shared,
		Primers:    s.Primers,
		Delays:     sim.DefaultMachineDelays(seed),
	}
	return sys.Run()
}

// Verify simulates under `seeds` random delay assignments and checks the
// named registers against want; it returns an error describing the first
// mismatch or violation.
func (s *Synthesis) Verify(want map[string]float64, seeds int) error {
	for seed := 0; seed < seeds; seed++ {
		res, err := s.Simulate(int64(seed))
		if err != nil {
			return err
		}
		for reg, w := range want {
			if math.Abs(res.Regs[reg]-w) > 1e-9 {
				return fmt.Errorf("core: seed %d: register %s = %v, want %v", seed, reg, res.Regs[reg], w)
			}
		}
		if len(res.Violations) > 0 {
			return fmt.Errorf("core: seed %d: %s", seed, res.Violations[0])
		}
	}
	return nil
}

// Row is one line of the Figure 12 table.
type Row struct {
	Name        string
	Channels    int
	States      map[string]int
	Transitions map[string]int
}

// Fig12Row summarizes the synthesis as a Figure 12 table row.
func (s *Synthesis) Fig12Row() Row {
	r := Row{Name: s.Level.String(), Channels: s.Channels(),
		States: map[string]int{}, Transitions: map[string]int{}}
	for _, fu := range s.FUs() {
		m := s.Machines[fu]
		r.States[fu] = m.NumStates()
		r.Transitions[fu] = m.NumTransitions()
	}
	return r
}

// FormatFig12 renders rows in the layout of the paper's Figure 12.
func FormatFig12(fus []string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %9s", "", "#channels")
	for _, fu := range fus {
		fmt.Fprintf(&b, " | %5s st/tr", fu)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %9d", r.Name, r.Channels)
		for _, fu := range fus {
			fmt.Fprintf(&b, " | %5s %2d/%2d", "", r.States[fu], r.Transitions[fu])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFig13 renders gate-level results in the layout of Figure 13.
func FormatFig13(fus []string, results map[string]*synth.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %8s\n", "", "#prod", "#lits")
	totP, totL := 0, 0
	for _, fu := range fus {
		r := results[fu]
		if r == nil {
			continue
		}
		fmt.Fprintf(&b, "%-8s %8d %8d\n", fu, r.Products, r.Literals)
		totP += r.Products
		totL += r.Literals
	}
	fmt.Fprintf(&b, "%-8s %8d %8d\n", "total", totP, totL)
	return b.String()
}

// Assumptions collects every timing assumption taken by the flow, sorted.
func (s *Synthesis) Assumptions() []string {
	var out []string
	for _, rep := range s.GTReports {
		for _, n := range rep.Notes {
			if strings.Contains(n, "assumption") {
				out = append(out, rep.Name+": "+n)
			}
		}
	}
	for fu, rep := range s.LTReports {
		for _, a := range rep.Assumptions {
			out = append(out, fu+": "+a)
		}
	}
	sort.Strings(out)
	return out
}
