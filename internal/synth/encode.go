package synth

import "sort"

// hypercubeEncode searches for a state encoding in which every transition
// has Hamming distance 1: the machine's state graph is embedded into the
// `bits`-dimensional hypercube. Distance-1 transitions make the settle
// cubes exactly the two endpoint codes, so no foreign state code is ever
// crossed — the classic critical-race-free property, obtained
// structurally. Returns nil when no embedding is found within the budget.
func hypercubeEncode(c *Concrete, reach []int, bits int) map[int]uint64 {
	if bits >= 30 {
		return nil
	}
	// Adjacency between distinct states.
	adj := map[int]map[int]bool{}
	link := func(a, b int) {
		if a == b {
			return
		}
		if adj[a] == nil {
			adj[a] = map[int]bool{}
		}
		if adj[b] == nil {
			adj[b] = map[int]bool{}
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	for _, t := range c.Trans {
		link(t.From, t.To)
	}
	// BFS order from init keeps each state close to an assigned neighbor.
	var order []int
	seen := map[int]bool{c.Init: true}
	queue := []int{c.Init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		order = append(order, s)
		var ns []int
		for n := range adj[s] {
			ns = append(ns, n)
		}
		sort.Ints(ns)
		for _, n := range ns {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	for _, s := range reach {
		if !seen[s] {
			order = append(order, s)
		}
	}

	enc := map[int]uint64{}
	used := map[uint64]bool{}
	budget := 200000
	var assign func(i int) bool
	assign = func(i int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if i == len(order) {
			return true
		}
		s := order[i]
		// Candidate codes: distance 1 from every already-assigned
		// neighbor.
		var candidates []uint64
		var anchors []uint64
		for n := range adj[s] {
			if code, ok := enc[n]; ok {
				anchors = append(anchors, code)
			}
		}
		switch len(anchors) {
		case 0:
			if i == 0 {
				candidates = []uint64{0}
			} else {
				// Disconnected state: any free code.
				for code := uint64(0); code < 1<<uint(bits); code++ {
					candidates = append(candidates, code)
				}
			}
		default:
			for b := 0; b < bits; b++ {
				candidates = append(candidates, anchors[0]^(1<<uint(b)))
			}
		}
		for _, code := range candidates {
			if used[code] {
				continue
			}
			ok := true
			for _, a := range anchors {
				if hamming(code, a) != 1 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			enc[s] = code
			used[code] = true
			if assign(i + 1) {
				return true
			}
			delete(enc, s)
			delete(used, code)
		}
		return false
	}
	if !assign(0) {
		return nil
	}
	return enc
}

func hamming(a, b uint64) int {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
