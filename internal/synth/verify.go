package synth

import (
	"fmt"

	"repro/internal/bm"
	"repro/internal/logic"
)

// VerifyAgainstMachine checks that the synthesized logic implements the
// concrete machine: for every concrete transition, each output and
// next-state function evaluates to its specified value at the
// burst-completion point and at the settled point. Together with the
// hazard-freedom guarantees enforced during minimization, this is the
// functional correctness of the gate-level implementation.
func VerifyAgainstMachine(m *bm.Machine, res *Result) error {
	c, err := Concretize(m)
	if err != nil {
		return err
	}
	enc := res.Encoding
	if enc == nil {
		return fmt.Errorf("synth: result carries no encoding")
	}
	bits := res.StateBits
	vars, varIdx := variableOrder(c, bits, res.OutputFeedback)
	n := len(vars)

	covers := map[string]logic.Cover{}
	for _, f := range res.Functions {
		covers[f.Name] = f.Cover
	}

	evalAt := func(cv logic.Cover, point logic.Cube) bool {
		return cv.ContainsMinterm(point)
	}

	for ti, t := range c.Trans {
		from := c.States[t.From]
		cFrom, cTo := enc[t.From], enc[t.To]
		_ = cFrom
		// Burst-completion point: inputs at post-burst nominal levels,
		// fed-back outputs at their pre-transition levels, state at cFrom
		// (unknowns pinned to 0).
		sStart, _, sEnd := settleCubes(c, from, t, enc, bits, n, varIdx)
		point := pinDashes(sStart)
		// Output functions take their post-transition values.
		for _, o := range c.Outputs {
			want := levelAfter(from, t, o) == 1
			cv, ok := covers[o]
			if !ok {
				continue
			}
			if got := evalAt(cv, point); got != want {
				return fmt.Errorf("synth: %s: transition %d: output %s = %v at burst completion, spec %v",
					m.Name, ti, o, got, want)
			}
		}
		// Next-state functions drive cTo.
		for b := 0; b < bits; b++ {
			want := cTo&(1<<uint(b)) != 0
			cv := covers[fmt.Sprintf("Y%d", b)]
			if got := evalAt(cv, point); got != want {
				return fmt.Errorf("synth: %s: transition %d: state bit Y%d = %v at burst completion, want %v",
					m.Name, ti, b, got, want)
			}
		}
		// Settled point: same inputs, outputs and state at their new
		// values — everything must hold (stability of the new total state).
		settled := pinDashes(sEnd)
		for b := 0; b < bits; b++ {
			want := cTo&(1<<uint(b)) != 0
			cv := covers[fmt.Sprintf("Y%d", b)]
			if got := evalAt(cv, settled); got != want {
				return fmt.Errorf("synth: %s: transition %d: state bit Y%d unstable after settle", m.Name, ti, b)
			}
		}
		_ = varIdx
	}
	return nil
}

// pinDashes binds all unconstrained variables of a cube to 0, producing a
// concrete evaluation point.
func pinDashes(c logic.Cube) logic.Cube {
	for i := 0; i < c.N(); i++ {
		if c.Get(i) == logic.Dash {
			c = c.With(i, logic.Zero)
		}
	}
	return c
}
