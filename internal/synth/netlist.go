package synth

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bm"
	"repro/internal/logic"
)

// Verilog renders the synthesized controller as a structural Verilog
// module: two-level sum-of-products per output and next-state function,
// with the state variables fed back through (zero-delay) continuous
// assignments. Signal names are sanitized to Verilog identifiers.
func Verilog(m *bm.Machine, res *Result) (string, error) {
	c, err := Concretize(m)
	if err != nil {
		return "", err
	}
	vars, _ := variableOrder(c, res.StateBits, res.OutputFeedback)
	var b strings.Builder

	san := func(s string) string {
		r := strings.NewReplacer("-", "_", "+", "p", "*", "m", "<", "lt", ">", "gt", "=", "eq", ";", "_", " ", "_", ":", "_")
		return r.Replace(s)
	}

	inputs := append([]string{}, c.Inputs...)
	outputs := append([]string{}, c.Outputs...)
	sort.Strings(outputs)

	fmt.Fprintf(&b, "// Synthesized from burst-mode controller %s\n", m.Name)
	fmt.Fprintf(&b, "// %d states, %d state bits%s, %d products, %d literals\n",
		res.States, res.StateBits, map[bool]string{true: " (one-hot)", false: ""}[res.OneHot],
		res.Products, res.Literals)
	fmt.Fprintf(&b, "module %s (\n", san(m.Name))
	for _, in := range inputs {
		fmt.Fprintf(&b, "  input  wire %s,\n", san(in))
	}
	for i, out := range outputs {
		comma := ","
		if i == len(outputs)-1 {
			comma = ""
		}
		fmt.Fprintf(&b, "  output wire %s%s\n", san(out), comma)
	}
	b.WriteString(");\n\n")

	// State variables: feedback wires with reset values per the encoding.
	init := res.Encoding[c.Init]
	for bit := 0; bit < res.StateBits; bit++ {
		fmt.Fprintf(&b, "  wire Y%d;        // state bit (reset %d)\n", bit, (init>>uint(bit))&1)
	}
	b.WriteString("\n")

	expr := func(cv logic.Cover) string {
		if cv.Len() == 0 {
			return "1'b0"
		}
		var terms []string
		for _, cube := range cv.Cubes {
			var lits []string
			for i := 0; i < cube.N(); i++ {
				switch cube.Get(i) {
				case logic.One:
					lits = append(lits, san(vars[i]))
				case logic.Zero:
					lits = append(lits, "~"+san(vars[i]))
				}
			}
			if len(lits) == 0 {
				return "1'b1"
			}
			terms = append(terms, strings.Join(lits, " & "))
		}
		return strings.Join(terms, "\n             | ")
	}

	fns := append([]FuncResult{}, res.Functions...)
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name < fns[j].Name })
	for _, f := range fns {
		tag := ""
		if !f.HazardFree {
			tag = "  // WARNING: not hazard-free"
		}
		fmt.Fprintf(&b, "  assign %s =%s\n               %s;\n\n", san(f.Name), tag, expr(f.Cover))
	}
	b.WriteString("endmodule\n")
	return b.String(), nil
}
