package synth

import (
	"reflect"
	"testing"
)

// TestResultCodecRoundTrip synthesizes a real controller and asserts the
// serialized result decodes back to a deep-equal value with a
// byte-identical re-encoding — the property the stage cache's disk and
// remote tiers rely on.
func TestResultCodecRoundTrip(t *testing.T) {
	res, err := Synthesize(handshakeMachine())
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("round trip changed the result:\n got %+v\nwant %+v", got, res)
	}
	again, err := EncodeResult(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(data) {
		t.Error("re-encoding a decoded result is not byte-identical")
	}
}

// TestResultDecodeStrict rejects malformed result documents.
func TestResultDecodeStrict(t *testing.T) {
	res, err := Synthesize(handshakeMachine())
	if err != nil {
		t.Fatal(err)
	}
	valid, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"unknown field":    `{"controller":"c","bogus":1}`,
		"trailing garbage": string(valid) + `{}`,
		"bad encoding key": `{"controller":"c","encoding":{"x":1}}`,
		"not json":         `nope`,
	}
	for name, doc := range cases {
		if _, err := DecodeResult([]byte(doc)); err == nil {
			t.Errorf("%s: DecodeResult accepted %q", name, doc)
		}
	}
}
