// Serialization of synthesis results, the disk/remote payload format the
// incremental stage engine (internal/stage) caches per-controller synth
// outcomes in. Living in this package keeps FuncResult's unexported
// exactness bit round-trippable without widening the public API.
package synth

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/logic"
)

// resultDoc is the serialized Result shape. Encoding map keys are decimal
// state IDs; encoding/json renders map keys sorted, so the bytes are
// deterministic.
type resultDoc struct {
	Controller     string            `json:"controller"`
	StateBits      int               `json:"state_bits"`
	States         int               `json:"states"`
	OneHot         bool              `json:"onehot"`
	Products       int               `json:"products"`
	Literals       int               `json:"literals"`
	Exact          bool              `json:"exact"`
	NonHazardFree  int               `json:"non_hazard_free"`
	OutputFeedback bool              `json:"output_feedback"`
	Encoding       map[string]uint64 `json:"encoding,omitempty"`
	Functions      []funcDoc         `json:"functions"`
}

type funcDoc struct {
	Name       string    `json:"name"`
	Products   int       `json:"products"`
	Literals   int       `json:"literals"`
	HazardFree bool      `json:"hazard_free"`
	Exact      bool      `json:"exact"`
	N          int       `json:"n"`
	Cover      []cubeDoc `json:"cover"`
}

// cubeDoc is one product term in logic.Cube's raw positional-mask form.
type cubeDoc struct {
	Z uint64 `json:"z"`
	O uint64 `json:"o"`
}

// EncodeResult serializes r deterministically; identical results produce
// identical bytes.
func EncodeResult(r *Result) ([]byte, error) {
	d := resultDoc{
		Controller:     r.Controller,
		StateBits:      r.StateBits,
		States:         r.States,
		OneHot:         r.OneHot,
		Products:       r.Products,
		Literals:       r.Literals,
		Exact:          r.Exact,
		NonHazardFree:  r.NonHazardFree,
		OutputFeedback: r.OutputFeedback,
		Functions:      make([]funcDoc, 0, len(r.Functions)),
	}
	if len(r.Encoding) > 0 {
		d.Encoding = make(map[string]uint64, len(r.Encoding))
		for id, code := range r.Encoding {
			d.Encoding[strconv.Itoa(id)] = code
		}
	}
	for _, f := range r.Functions {
		fd := funcDoc{
			Name:       f.Name,
			Products:   f.Products,
			Literals:   f.Literals,
			HazardFree: f.HazardFree,
			Exact:      f.exact,
			N:          f.Cover.N,
			Cover:      make([]cubeDoc, 0, len(f.Cover.Cubes)),
		}
		for _, c := range f.Cover.Cubes {
			z, o := c.Raw()
			fd.Cover = append(fd.Cover, cubeDoc{Z: z, O: o})
		}
		d.Functions = append(d.Functions, fd)
	}
	return json.Marshal(d)
}

// DecodeResult is the strict inverse of EncodeResult. Unknown fields,
// trailing data, malformed state IDs and out-of-range cube masks are
// errors — a cache record that fails here is a miss, never a result.
func DecodeResult(data []byte) (*Result, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d resultDoc
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("synth: decode result: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("synth: decode result: trailing data after document")
	}
	r := &Result{
		Controller:     d.Controller,
		StateBits:      d.StateBits,
		States:         d.States,
		OneHot:         d.OneHot,
		Products:       d.Products,
		Literals:       d.Literals,
		Exact:          d.Exact,
		NonHazardFree:  d.NonHazardFree,
		OutputFeedback: d.OutputFeedback,
	}
	if len(d.Encoding) > 0 {
		r.Encoding = make(map[int]uint64, len(d.Encoding))
		for key, code := range d.Encoding {
			id, err := strconv.Atoi(key)
			if err != nil {
				return nil, fmt.Errorf("synth: decode result: encoding key %q: %w", key, err)
			}
			r.Encoding[id] = code
		}
	}
	for i, fd := range d.Functions {
		f := FuncResult{
			Name:       fd.Name,
			Products:   fd.Products,
			Literals:   fd.Literals,
			HazardFree: fd.HazardFree,
			exact:      fd.Exact,
			Cover:      logic.Cover{N: fd.N},
		}
		for j, cd := range fd.Cover {
			c, err := logic.RawCube(cd.Z, cd.O, fd.N)
			if err != nil {
				return nil, fmt.Errorf("synth: decode result: functions[%d].cover[%d]: %w", i, j, err)
			}
			f.Cover.Cubes = append(f.Cover.Cubes, c)
		}
		r.Functions = append(r.Functions, f)
	}
	return r, nil
}
