package synth

import (
	"fmt"

	"repro/internal/bm"
	"repro/internal/logic"
)

// Evaluator executes a synthesized controller as combinational two-level
// logic with state feedback: outputs and next-state bits are the minimized
// covers, state variables feed back after a delay, and evaluation iterates
// to a fixpoint after every input change (burst-mode fundamental-mode
// operation).
type Evaluator struct {
	Name   string
	Inputs []string // input variables in cover order (including levels)
	Bits   int

	vars     []string
	varIdx   map[string]int
	out      []evalFn
	outIdx   map[string]int
	feedback bool
	ybits    []logic.Cover

	state  uint64          // current state code
	levels map[string]bool // current input levels
	outs   map[string]bool // current output levels
}

type evalFn struct {
	name  string
	cover logic.Cover
}

// NewEvaluator compiles a synthesis result into an executable controller.
func NewEvaluator(m *bm.Machine, res *Result) (*Evaluator, error) {
	c, err := Concretize(m)
	if err != nil {
		return nil, err
	}
	if res.Encoding == nil {
		return nil, fmt.Errorf("synth: result has no encoding")
	}
	vars, varIdx := variableOrder(c, res.StateBits, res.OutputFeedback)
	ev := &Evaluator{
		Name:     m.Name,
		Inputs:   append([]string{}, c.Inputs...),
		Bits:     res.StateBits,
		vars:     vars,
		varIdx:   varIdx,
		state:    res.Encoding[c.Init],
		levels:   map[string]bool{},
		outs:     map[string]bool{},
		outIdx:   map[string]int{},
		feedback: res.OutputFeedback,
	}
	for i, o := range c.Outputs {
		ev.outIdx[o] = i
	}
	covers := map[string]logic.Cover{}
	for _, f := range res.Functions {
		covers[f.Name] = f.Cover
	}
	for _, o := range c.Outputs {
		cv, ok := covers[o]
		if !ok {
			return nil, fmt.Errorf("synth: no cover for output %s", o)
		}
		ev.out = append(ev.out, evalFn{name: o, cover: cv})
	}
	for b := 0; b < res.StateBits; b++ {
		cv, ok := covers[fmt.Sprintf("Y%d", b)]
		if !ok {
			return nil, fmt.Errorf("synth: no cover for state bit %d", b)
		}
		ev.ybits = append(ev.ybits, cv)
	}
	for _, sig := range c.Inputs {
		ev.levels[sig] = false
	}
	for _, sig := range m.InitialHigh {
		ev.levels[sig] = true
		if _, ok := ev.outIdx[sig]; ok {
			ev.outs[sig] = true
		}
	}
	return ev, nil
}

// point builds the evaluation minterm from current levels, fed-back output
// levels and state.
func (ev *Evaluator) point() logic.Cube {
	n := len(ev.vars)
	c := logic.FullCube(n)
	for i, sig := range ev.Inputs {
		c = c.With(i, boolVal(ev.levels[sig]))
	}
	if ev.feedback {
		base := len(ev.Inputs)
		for _, f := range ev.out {
			c = c.With(base+ev.outIdx[f.name], boolVal(ev.outs[f.name]))
		}
	}
	for b := 0; b < ev.Bits; b++ {
		c = c.With(n-ev.Bits+b, boolVal(ev.state&(1<<uint(b)) != 0))
	}
	return c
}

func (ev *Evaluator) evaluateOutputs() map[string]bool {
	p := ev.point()
	out := map[string]bool{}
	for _, f := range ev.out {
		out[f.name] = f.cover.ContainsMinterm(p)
	}
	return out
}

// nextState evaluates the next-state functions at the current point.
func (ev *Evaluator) nextState() uint64 {
	p := ev.point()
	var next uint64
	for b, cv := range ev.ybits {
		if cv.ContainsMinterm(p) {
			next |= 1 << uint(b)
		}
	}
	return next
}

// Set applies an input level change and evaluates the combinational logic
// once at the current state: it returns the output events produced
// (signal → new level) and the pending next-state code (equal to the
// current state when no state change is requested). The caller commits the
// state change after the feedback delay via Commit — state settling is a
// sequence of timed events, not an instantaneous fixpoint, so handshake
// pulses between consecutive specification transitions stay observable.
func (ev *Evaluator) Set(signal string, level bool) (map[string]bool, uint64) {
	if _, ok := ev.levels[signal]; !ok {
		return nil, ev.state // signal not an input of this controller
	}
	if ev.levels[signal] == level {
		return nil, ev.state
	}
	ev.levels[signal] = level
	return ev.react()
}

// Commit applies a pending state code and re-evaluates, returning further
// output changes and the next pending state.
func (ev *Evaluator) Commit(state uint64) (map[string]bool, uint64) {
	if state == ev.state {
		return nil, ev.state
	}
	ev.state = state
	return ev.react()
}

func (ev *Evaluator) react() (map[string]bool, uint64) {
	changes := map[string]bool{}
	for name, v := range ev.evaluateOutputs() {
		if ev.outs[name] != v {
			ev.outs[name] = v
			changes[name] = v
		}
	}
	return changes, ev.nextState()
}

// State returns the current state code (diagnostics).
func (ev *Evaluator) State() uint64 { return ev.state }

// Output returns the current level of an output signal.
func (ev *Evaluator) Output(sig string) bool { return ev.outs[sig] }

// Level returns the current level of an input signal (diagnostics).
func (ev *Evaluator) Level(sig string) bool { return ev.levels[sig] }
