package synth

import (
	"strings"
	"testing"

	"repro/internal/bm"
	"repro/internal/diffeq"
	"repro/internal/extract"
	"repro/internal/hfmin"
	"repro/internal/local"
	"repro/internal/logic"
	"repro/internal/transform"
)

func handshakeMachine() *bm.Machine {
	m := bm.NewMachine("hs")
	m.AddInput("req")
	m.AddOutput("ack")
	s0, s1 := m.NewState(""), m.NewState("")
	m.Init = s0
	m.AddTransition(&bm.Transition{From: s0, To: s1, In: []bm.Event{{Signal: "req", Edge: bm.Rise}}, Out: []bm.Event{{Signal: "ack", Edge: bm.Rise}}})
	m.AddTransition(&bm.Transition{From: s1, To: s0, In: []bm.Event{{Signal: "req", Edge: bm.Fall}}, Out: []bm.Event{{Signal: "ack", Edge: bm.Fall}}})
	return m
}

func TestConcretizeHandshake(t *testing.T) {
	c, err := Concretize(handshakeMachine())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.States) != 2 || len(c.Trans) != 2 {
		t.Errorf("states=%d trans=%d, want 2/2", len(c.States), len(c.Trans))
	}
	for _, tr := range c.Trans {
		for _, e := range append(append([]bm.Event{}, tr.In...), tr.Out...) {
			if e.Edge == bm.Toggle {
				t.Errorf("unresolved toggle edge on %s", e.Signal)
			}
		}
	}
}

func TestConcretizeToggleSplitsStates(t *testing.T) {
	// One toggle wire consumed once per cycle: concretization must track
	// the phase, doubling the cycle.
	m := bm.NewMachine("tog")
	m.AddInput("w")
	m.AddOutput("x")
	s0, s1 := m.NewState(""), m.NewState("")
	m.Init = s0
	m.AddTransition(&bm.Transition{From: s0, To: s1, In: []bm.Event{{Signal: "w", Edge: bm.Toggle}}, Out: []bm.Event{{Signal: "x", Edge: bm.Rise}}})
	m.AddTransition(&bm.Transition{From: s1, To: s0, In: []bm.Event{{Signal: "x", Edge: bm.Toggle}}, Out: []bm.Event{{Signal: "x", Edge: bm.Fall}}})
	// Avoid nonsense: make the second trigger a fresh input instead.
	m = bm.NewMachine("tog")
	m.AddInput("w")
	m.AddInput("r")
	m.AddOutput("x")
	s0, s1 = m.NewState(""), m.NewState("")
	m.Init = s0
	m.AddTransition(&bm.Transition{From: s0, To: s1, In: []bm.Event{{Signal: "w", Edge: bm.Toggle}}, Out: []bm.Event{{Signal: "x", Edge: bm.Rise}}})
	m.AddTransition(&bm.Transition{From: s1, To: s0, In: []bm.Event{{Signal: "r", Edge: bm.Toggle}}, Out: []bm.Event{{Signal: "x", Edge: bm.Fall}}})
	c, err := Concretize(m)
	if err != nil {
		t.Fatal(err)
	}
	// w and r each toggle once per cycle: phases alternate, so the cycle
	// doubles: 4 concrete states.
	if len(c.States) != 4 {
		t.Errorf("concrete states = %d, want 4", len(c.States))
	}
}

func TestSynthesizeHandshake(t *testing.T) {
	res, err := Synthesize(handshakeMachine())
	if err != nil {
		t.Fatal(err)
	}
	if res.Products == 0 || res.Literals == 0 {
		t.Errorf("empty implementation: %+v", res)
	}
	// ack follows req: minimal logic should be tiny.
	if res.Products > 4 {
		t.Errorf("handshake needs %d products; expected <= 4", res.Products)
	}
	verifyCovers(t, res)
}

func verifyCovers(t *testing.T, res *Result) {
	t.Helper()
	for _, f := range res.Functions {
		if f.Products != f.Cover.Len() || f.Literals != f.Cover.Literals() {
			t.Errorf("%s: inconsistent counts", f.Name)
		}
	}
}

// synthesizeDiffeq runs the full flow to gate level for one experiment
// configuration.
func synthesizeDiffeq(t *testing.T, withLT bool) map[string]*Result {
	t.Helper()
	g := diffeq.Build(diffeq.DefaultParams())
	plan, _, err := transform.OptimizeGT(g, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := extract.Extract(g, plan, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*Result{}
	for fu, m := range ex.Machines {
		if withLT {
			if _, err := local.Optimize(m); err != nil {
				t.Fatal(err)
			}
		}
		r, err := Synthesize(m)
		if err != nil {
			t.Fatalf("%s: %v\n%s", fu, err, m)
		}
		out[fu] = r
	}
	return out
}

// TestFig13Shape regenerates the gate-level comparison: every controller
// synthesizes to valid hazard-free two-level logic, totals land in the
// neighbourhood of the paper's Figure 13, and the fully optimized flow
// stays well under Yun's manual total.
func TestFig13Shape(t *testing.T) {
	results := synthesizeDiffeq(t, true)
	totalP, totalL := 0, 0
	for _, fu := range diffeq.FUs {
		r := results[fu]
		t.Logf("%s", r.Summary())
		totalP += r.Products
		totalL += r.Literals
		verifyCovers(t, r)
	}
	t.Logf("total: %d products, %d literals", totalP, totalL)
	yunP, yunL := diffeq.GateTotals(diffeq.PaperFig13Yun)
	if totalP <= 0 || totalL <= 0 {
		t.Fatal("empty synthesis")
	}
	// Shape: the same order of magnitude as the paper's numbers (73/244
	// automated, 93/307 Yun). Our absolute counts run higher because the
	// toggling ready wires force phase-tracking state (see EXPERIMENTS.md),
	// so the bound is a small factor, not parity.
	if totalP > 4*yunP {
		t.Errorf("total products %d far above Yun's %d", totalP, yunP)
	}
	if totalL > 4*yunL {
		t.Errorf("total literals %d far above Yun's %d", totalL, yunL)
	}
	// Per-controller ordering matches Figure 13: ALU2 > ALU1 > MUL1 > MUL2.
	order := []string{diffeq.ALU2, diffeq.ALU1, diffeq.MUL1, diffeq.MUL2}
	for i := 0; i+1 < len(order); i++ {
		if results[order[i]].Products <= results[order[i+1]].Products {
			t.Errorf("product ordering violated: %s (%d) <= %s (%d)",
				order[i], results[order[i]].Products, order[i+1], results[order[i+1]].Products)
		}
	}
	// Every function must be hazard-free (the attempt ladder prefers a
	// wider encoding over a glitchy plain cover).
	for fu, r := range results {
		if r.NonHazardFree != 0 {
			t.Errorf("%s has %d non-hazard-free functions", fu, r.NonHazardFree)
		}
	}
}

// The LT transforms must reduce gate-level cost, mirroring the paper's
// optimized-GT vs optimized-GT-and-LT comparison.
func TestLTReducesLogic(t *testing.T) {
	gtOnly := synthesizeDiffeq(t, false)
	gtLT := synthesizeDiffeq(t, true)
	pGT, pLT := 0, 0
	for _, fu := range diffeq.FUs {
		pGT += gtOnly[fu].Products
		pLT += gtLT[fu].Products
	}
	t.Logf("products: GT-only %d, GT+LT %d", pGT, pLT)
	if pLT >= pGT {
		t.Errorf("LT did not reduce products: %d >= %d", pLT, pGT)
	}
}

func TestHazardFreedomOfSynthesizedLogic(t *testing.T) {
	// Spot-check: re-verify every minimized cover against its analyzed
	// specification requirements via hfmin.Verify (already enforced inside
	// Minimize, but assert the public invariant products>0 → literals>0).
	results := synthesizeDiffeq(t, true)
	for fu, r := range results {
		for _, f := range r.Functions {
			if f.Products > 0 && f.Literals == 0 {
				t.Errorf("%s/%s: products without literals", fu, f.Name)
			}
		}
	}
	_ = hfmin.Spec{}
}

// TestLogicImplementsMachine checks the synthesized covers point-by-point
// against the concrete machines: outputs and next-state functions take the
// specified values at burst completion and remain stable after the state
// settles.
func TestLogicImplementsMachine(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	plan, _, err := transform.OptimizeGT(g, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := extract.Extract(g, plan, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for fu, m := range ex.Machines {
		if _, err := local.Optimize(m); err != nil {
			t.Fatal(err)
		}
		r, err := Synthesize(m)
		if err != nil {
			t.Fatalf("%s: %v", fu, err)
		}
		if err := VerifyAgainstMachine(m, r); err != nil {
			t.Errorf("%s: %v", fu, err)
		}
	}
}

func TestVerilogNetlist(t *testing.T) {
	m := handshakeMachine()
	res, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Verilog(m, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module hs", "input  wire req", "output wire ack", "assign ack =", "endmodule"} {
		if !strings.Contains(v, want) {
			t.Errorf("netlist missing %q:\n%s", want, v)
		}
	}
	// Balanced structure: one assign per function.
	if got := strings.Count(v, "assign "); got != len(res.Functions) {
		t.Errorf("assigns = %d, want %d", got, len(res.Functions))
	}
}

func TestVerilogDiffeqControllers(t *testing.T) {
	results := synthesizeDiffeq(t, true)
	g := diffeq.Build(diffeq.DefaultParams())
	plan, _, err := transform.OptimizeGT(g, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := extract.Extract(g, plan, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = results
	for fu, m := range ex.Machines {
		if _, err := local.Optimize(m); err != nil {
			t.Fatal(err)
		}
		r, err := Synthesize(m)
		if err != nil {
			t.Fatal(err)
		}
		v, err := Verilog(m, r)
		if err != nil {
			t.Fatalf("%s: %v", fu, err)
		}
		if !strings.Contains(v, "module "+fu) || !strings.Contains(v, "endmodule") {
			t.Errorf("%s: malformed netlist", fu)
		}
	}
}

func TestOneHotEncodingLimits(t *testing.T) {
	reach := make([]int, logic.MaxVars)
	for i := range reach {
		reach[i] = i * 3
	}
	enc, err := oneHotEncoding(reach)
	if err != nil {
		t.Fatalf("%d states must encode: %v", len(reach), err)
	}
	seen := map[uint64]bool{}
	for _, s := range reach {
		code := enc[s]
		if code == 0 || code&(code-1) != 0 {
			t.Errorf("state %d code %#x is not one-hot", s, code)
		}
		if seen[code] {
			t.Errorf("state %d reuses code %#x", s, code)
		}
		seen[code] = true
	}
	if _, err := oneHotEncoding(make([]int, logic.MaxVars+1)); err == nil {
		t.Errorf("%d states silently wrapped instead of erroring", logic.MaxVars+1)
	}
}
