// Package synth implements burst-mode logic synthesis: it turns an
// extended burst-mode machine into per-signal two-level hazard-free logic
// and reports product and literal counts, standing in for the MINIMALIST
// and 3D synthesizers used in the paper's Figure 13.
//
// The pipeline: phase concretization (toggle edges become concrete rises
// and falls by tracking wire phase, splitting states whose phases differ
// across visits), state encoding (minimal-width binary with conflict
// repair, one-hot fallback), function specification (each output and state
// bit becomes a hazard-free transition specification over inputs plus
// state bits), and exact hazard-free two-level minimization.
package synth

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bm"
)

// CState is one concrete state: a machine state plus the tracked phase
// levels of toggling signals.
type CState struct {
	ID     int
	Orig   bm.StateID
	Levels map[string]int // nominal signal levels: 0, 1, or -1 unknown
}

// CTrans is a concrete transition: all edges are Rise or Fall.
type CTrans struct {
	From, To int
	In, Out  []bm.Event
	Cond     []bm.Cond
	Free     []string
}

// Concrete is a phase-resolved machine.
type Concrete struct {
	Name    string
	Inputs  []string // including sampled levels
	Outputs []string
	States  []*CState
	Trans   []*CTrans
	Init    int
}

// Concretize resolves toggle edges by exploring (state, phase) pairs.
// Transient states (whose only triggers are sampled conditions) are folded
// into their predecessors. The nominal level of every signal is tracked
// through the exploration; directed don't-cares do not erase phase
// knowledge (early arrival changes timing, not event parity).
func Concretize(m *bm.Machine) (*Concrete, error) {
	c := &Concrete{
		Name:    m.Name,
		Inputs:  append(append([]string{}, m.Inputs...), m.Levels...),
		Outputs: append([]string{}, m.Outputs...),
	}
	// Phase-tracked signals: those with any toggle edge.
	tracked := map[string]bool{}
	for _, t := range m.Transitions {
		for _, e := range append(append([]bm.Event{}, t.In...), t.Out...) {
			if e.Edge == bm.Toggle {
				tracked[e.Signal] = true
			}
		}
	}
	// Acknowledgment inputs follow their request outputs with a delay:
	// their nominal level tracks the request line even when a phase is
	// unobserved (LT4 drops return-to-zero waits).
	ackOf := map[string]string{} // request signal → its ack input
	for _, in := range m.Inputs {
		if strings.HasSuffix(in, "_a") {
			ackOf[strings.TrimSuffix(in, "_a")] = in
		}
	}
	type key struct {
		s     bm.StateID
		phase string
	}
	sigKey := func(levels map[string]int) string {
		var parts []string
		var names []string
		for s := range tracked {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", s, levels[s]))
		}
		return strings.Join(parts, ",")
	}

	index := map[key]int{}
	var queue []int
	newState := func(orig bm.StateID, levels map[string]int) int {
		k := key{s: orig, phase: sigKey(levels)}
		if id, ok := index[k]; ok {
			return id
		}
		cp := map[string]int{}
		for sig, v := range levels {
			cp[sig] = v
		}
		cs := &CState{ID: len(c.States), Orig: orig, Levels: cp}
		c.States = append(c.States, cs)
		index[k] = cs.ID
		queue = append(queue, cs.ID)
		return cs.ID
	}

	initLevels := map[string]int{}
	for _, s := range append(append([]string{}, m.Inputs...), m.Outputs...) {
		initLevels[s] = 0
	}
	for _, s := range m.InitialHigh {
		initLevels[s] = 1
	}
	c.Init = newState(m.Init, initLevels)

	resolve := func(e bm.Event, levels map[string]int) (bm.Event, error) {
		switch e.Edge {
		case bm.Toggle:
			switch levels[e.Signal] {
			case 0:
				return bm.Event{Signal: e.Signal, Edge: bm.Rise}, nil
			case 1:
				return bm.Event{Signal: e.Signal, Edge: bm.Fall}, nil
			default:
				return e, fmt.Errorf("synth: cannot resolve toggle of %s: phase unknown", e.Signal)
			}
		default:
			return e, nil
		}
	}

	apply := func(levels map[string]int, evs []bm.Event, outs bool) {
		for _, e := range evs {
			v := 0
			if e.Edge == bm.Rise {
				v = 1
			}
			levels[e.Signal] = v
			if outs {
				// The datapath acknowledgment follows the request.
				if ack, ok := ackOf[e.Signal]; ok {
					levels[ack] = v
				}
			}
		}
	}

	guard := 0
	for len(queue) > 0 {
		guard++
		if guard > 10000 {
			return nil, fmt.Errorf("synth: phase explosion concretizing %s", m.Name)
		}
		id := queue[0]
		queue = queue[1:]
		cs := c.States[id]
		for _, t := range m.OutTransitions(cs.Orig) {
			levels := map[string]int{}
			for k, v := range cs.Levels {
				levels[k] = v
			}
			var in, out []bm.Event
			ok := true
			for _, e := range t.In {
				re, err := resolve(e, levels)
				if err != nil {
					return nil, err
				}
				in = append(in, re)
				apply(levels, []bm.Event{re}, false)
				_ = ok
			}
			for _, e := range t.Out {
				re, err := resolve(e, levels)
				if err != nil {
					return nil, err
				}
				out = append(out, re)
				apply(levels, []bm.Event{re}, true)
			}
			to := newState(t.To, levels)
			c.Trans = append(c.Trans, &CTrans{
				From: id, To: to, In: in, Out: out,
				Cond: append([]bm.Cond{}, t.Cond...),
				Free: append([]string{}, t.Free...),
			})
		}
	}
	c.foldTransient()
	return c, nil
}

// foldTransient merges states whose outgoing transitions all have empty
// in-bursts (pure conditional examinations) into their predecessors: the
// predecessor transition splits per condition branch.
func (c *Concrete) foldTransient() {
	for {
		target := -1
		for _, cs := range c.States {
			if cs.ID == c.Init {
				continue
			}
			outs := c.outTrans(cs.ID)
			if len(outs) == 0 {
				continue
			}
			all := true
			for _, t := range outs {
				if len(t.In) != 0 || len(t.Cond) == 0 {
					all = false
					break
				}
			}
			if all {
				target = cs.ID
				break
			}
		}
		if target < 0 {
			return
		}
		outs := c.outTrans(target)
		ins := c.inTrans(target)
		if len(ins) == 0 {
			return // unreachable; leave as-is
		}
		var next []*CTrans
		for _, t := range c.Trans {
			if t.To != target {
				if t.From != target {
					next = append(next, t)
				}
				continue
			}
			// Split the predecessor per branch. Opposite edges of one
			// signal cancel (a reset immediately followed by a re-select
			// nets to the signal staying put).
			for _, o := range outs {
				nt := &CTrans{
					From: t.From,
					To:   o.To,
					In:   append([]bm.Event{}, t.In...),
					Out:  cancelOpposites(append(append([]bm.Event{}, t.Out...), o.Out...)),
					Cond: append(append([]bm.Cond{}, t.Cond...), o.Cond...),
					Free: append(append([]string{}, t.Free...), o.Free...),
				}
				next = append(next, nt)
			}
		}
		c.Trans = next
	}
}

// cancelOpposites removes pairs of opposite edges on the same signal (net
// zero) and deduplicates repeated identical edges.
func cancelOpposites(evs []bm.Event) []bm.Event {
	count := map[string][]bm.Event{}
	var order []string
	for _, e := range evs {
		if _, ok := count[e.Signal]; !ok {
			order = append(order, e.Signal)
		}
		count[e.Signal] = append(count[e.Signal], e)
	}
	var out []bm.Event
	for _, sig := range order {
		es := count[sig]
		switch {
		case len(es) == 1:
			out = append(out, es[0])
		case len(es) == 2 && es[0].Edge != es[1].Edge:
			// Opposite pair cancels.
		default:
			// Identical duplicates collapse to one.
			out = append(out, es[0])
		}
	}
	return out
}

func (c *Concrete) outTrans(id int) []*CTrans {
	var out []*CTrans
	for _, t := range c.Trans {
		if t.From == id {
			out = append(out, t)
		}
	}
	return out
}

func (c *Concrete) inTrans(id int) []*CTrans {
	var out []*CTrans
	for _, t := range c.Trans {
		if t.To == id {
			out = append(out, t)
		}
	}
	return out
}

// ReachableStates returns the state IDs reachable from Init after folding.
func (c *Concrete) ReachableStates() []int {
	seen := map[int]bool{c.Init: true}
	queue := []int{c.Init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, t := range c.outTrans(s) {
			if !seen[t.To] {
				seen[t.To] = true
				queue = append(queue, t.To)
			}
		}
	}
	var out []int
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
