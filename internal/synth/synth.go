package synth

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bm"
	"repro/internal/hfmin"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/par"
)

// FuncResult is the minimized implementation of one signal.
type FuncResult struct {
	Name     string
	Products int
	Literals int
	Cover    logic.Cover
	// HazardFree is false when the exact hazard-free covering was
	// infeasible for this function and the plain two-level cover was used
	// instead (real tools repair this by inserting extra state variables,
	// as 3D does; see DESIGN.md).
	HazardFree bool
	// exact carries the per-function covering exactness to the Result
	// aggregation.
	exact bool
}

// Result is the gate-level synthesis outcome for one controller.
type Result struct {
	Controller string
	StateBits  int
	States     int
	OneHot     bool
	Functions  []FuncResult
	Products   int
	Literals   int
	Exact      bool
	// NonHazardFree counts functions that needed the plain fallback.
	NonHazardFree int
	// Encoding maps concrete state IDs to their assigned codes.
	Encoding map[int]uint64
	// OutputFeedback reports whether outputs were fed back as state
	// variables (MINIMALIST-style) in this implementation.
	OutputFeedback bool
}

// Minimizer abstracts the exact hazard-free minimization entry point so a
// memoization layer (internal/memo's *Cache) can be threaded through the
// pipeline without this package depending on it. Implementations must be
// safe for concurrent use and return results bit-identical to
// hfmin.Minimize — the memo layer guarantees this via hfmin's canonical
// transition order.
type Minimizer interface {
	Minimize(hfmin.Spec) (hfmin.Result, error)
}

// MinimizerCtx is the optional context-aware extension of Minimizer. When
// a Minimizer also implements it (internal/memo's *Cache does), the
// synthesis pipeline routes cancellable minimizations through MinimizeCtx
// so a cancelled job stops mid-minimization instead of finishing the
// covering search it was in.
type MinimizerCtx interface {
	Minimizer
	MinimizeCtx(ctx context.Context, spec hfmin.Spec) (hfmin.Result, error)
}

// Synthesize produces two-level hazard-free logic for every output signal
// and state bit of the machine, in the single-output style of the 3D tool,
// and reports product/literal totals (the paper's Figure 13 metrics).
// It runs the per-output minimizations sequentially; SynthesizeParallel
// fans them out.
func Synthesize(m *bm.Machine) (*Result, error) {
	return SynthesizeParallel(m, 1)
}

// SynthesizeParallel is Synthesize with the independent per-output (and
// per-state-bit) hazard-free minimizations fanned out across a bounded
// worker pool (workers: 0 = GOMAXPROCS, 1 = sequential). Each function is
// minimized against the same immutable concretized machine and encoding,
// and results are collected by function index, so the outcome is
// bit-identical to the sequential path.
func SynthesizeParallel(m *bm.Machine, workers int) (*Result, error) {
	return SynthesizeMemo(m, workers, nil)
}

// SynthesizeMemo is SynthesizeParallel with every exact minimization
// routed through min (nil = call hfmin.Minimize directly). Because cache
// hits are bit-identical to fresh computations, the result is the same at
// every cache state; only the wall time changes.
func SynthesizeMemo(m *bm.Machine, workers int, min Minimizer) (*Result, error) {
	return SynthesizeCtx(context.Background(), m, workers, min)
}

// SynthesizeCtx is SynthesizeMemo with cooperative cancellation: the
// context is checked between the rungs of the encoding-attempt ladder,
// before each per-output minimization is dispatched (par.NamedMapCtx) and
// inside the minimizer itself (hfmin.MinimizeCtx, or min's MinimizeCtx
// when it implements MinimizerCtx), so a cancelled job releases its pool
// workers promptly. A cancelled synthesis returns ctx.Err().
func SynthesizeCtx(ctx context.Context, m *bm.Machine, workers int, min Minimizer) (*Result, error) {
	return SynthesizeSolver(ctx, m, workers, min, logic.SolverBB)
}

// SynthesizeSolver is SynthesizeCtx with an explicit covering backend for
// the exact minimizations (see logic.Solver). The backend only applies on
// the direct hfmin path (min == nil); a supplied Minimizer carries its own
// backend configuration (internal/memo's cache is constructed with one).
// Exact backends are bit-identical whenever their search completes, so the
// solver choice affects wall time, not synthesized logic.
func SynthesizeSolver(ctx context.Context, m *bm.Machine, workers int, min Minimizer, solver logic.Solver) (*Result, error) {
	return SynthesizeRung(ctx, m, workers, min, solver, -1)
}

// attempt is one rung of the encoding-attempt ladder.
type attempt struct {
	oneHot, strict, feedback bool
}

// encodingLadder orders the encoding attempts: hazard-free implementations
// first (a plain fallback cover can glitch at gate level) — binary
// encodings of increasing width, then the same with output feedback
// (bounded by variable count), then one-hot; only then the lenient modes
// that accept plain fallback covers.
var encodingLadder = []attempt{
	{strict: true},
	{strict: true, oneHot: true},
	{strict: true, feedback: true},
	{},
	{oneHot: true},
}

// NumRungs returns the length of the encoding-attempt ladder, for callers
// that enumerate forced rungs as search moves.
func NumRungs() int { return len(encodingLadder) }

// RungName describes ladder rung i for reports and traces.
func RungName(i int) string {
	names := []string{"strict-binary", "strict-onehot", "strict-feedback", "binary", "onehot"}
	if i < 0 || i >= len(names) {
		return "auto"
	}
	return names[i]
}

// SynthesizeRung is SynthesizeSolver restricted to a single rung of the
// encoding-attempt ladder (0-based; negative tries the whole ladder as
// usual). Forcing a rung lets a rewrite search treat the encoding style as
// an explicit decision instead of always accepting the first rung that
// succeeds.
func SynthesizeRung(ctx context.Context, m *bm.Machine, workers int, min Minimizer, solver logic.Solver, rung int) (_ *Result, err error) {
	sp := obs.Start("synth", m.Name)
	defer func() { sp.EndErr(err) }()
	c, err := Concretize(m)
	if err != nil {
		return nil, err
	}
	reach := c.ReachableStates()
	// Try minimal-width binary encodings with increasing widths; fall back
	// to one-hot when the function specifications conflict (critical-race
	// style code overlap).
	minBits := 1
	for (1 << minBits) < len(reach) {
		minBits++
	}
	var lastErr error
	ladder := encodingLadder
	if rung >= 0 {
		if rung >= len(encodingLadder) {
			return nil, fmt.Errorf("synth %s: encoding rung %d out of range (ladder has %d)", m.Name, rung, len(encodingLadder))
		}
		ladder = encodingLadder[rung : rung+1]
	}
	for _, a := range ladder {
		// Cancellation checkpoint between ladder rungs: a cancelled job
		// abandons the remaining encoding attempts immediately.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if a.feedback && len(c.Inputs)+len(c.Outputs)+minBits+4 > 26 {
			continue // output feedback too wide to minimize exactly
		}
		if a.oneHot {
			enc, encErr := oneHotEncoding(reach)
			if encErr != nil {
				lastErr = encErr
				continue
			}
			res, err := synthesizeWith(ctx, c, enc, len(reach), true, a.strict, a.feedback, workers, min, solver)
			if err == nil {
				res.Controller = m.Name
				recordSynth(res)
				return res, nil
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			lastErr = err
			continue
		}
		for bits := minBits; bits <= minBits+4 && bits <= 16; bits++ {
			enc := hypercubeEncode(c, reach, bits)
			if enc == nil {
				enc = sequentialEncoding(c, reach, bits)
			}
			res, err := synthesizeWith(ctx, c, enc, bits, false, a.strict, a.feedback, workers, min, solver)
			if err == nil {
				res.Controller = m.Name
				recordSynth(res)
				return res, nil
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			lastErr = err
		}
	}
	return nil, fmt.Errorf("synth %s: all encoding attempts failed: %v", m.Name, lastErr)
}

// recordSynth publishes the Figure 13 metrics of a successful synthesis
// to the global obs registry.
func recordSynth(r *Result) {
	obs.Add("synth/products", int64(r.Products))
	obs.Add("synth/literals", int64(r.Literals))
	obs.Add("synth/nonhazardfree", int64(r.NonHazardFree))
}

// sequentialEncoding assigns codes in a BFS-ordered Gray sequence, which
// keeps consecutive transitions at small Hamming distance.
func sequentialEncoding(c *Concrete, reach []int, bits int) map[int]uint64 {
	// BFS order from init.
	order := []int{}
	seen := map[int]bool{c.Init: true}
	queue := []int{c.Init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		order = append(order, s)
		for _, t := range c.outTrans(s) {
			if !seen[t.To] {
				seen[t.To] = true
				queue = append(queue, t.To)
			}
		}
	}
	for _, s := range reach {
		if !seen[s] {
			order = append(order, s)
		}
	}
	enc := map[int]uint64{}
	for i, s := range order {
		g := uint64(i) ^ (uint64(i) >> 1) // Gray code
		enc[s] = g
	}
	return enc
}

// oneHotEncoding assigns each reachable state its own bit of the 64-bit
// code word. More than logic.MaxVars states cannot be one-hot encoded —
// the shift would wrap and hand several states the same code — so that
// case is an error and the encoding ladder skips this rung.
func oneHotEncoding(reach []int) (map[int]uint64, error) {
	if len(reach) > logic.MaxVars {
		return nil, fmt.Errorf("synth: one-hot encoding of %d states exceeds the %d-bit code limit", len(reach), logic.MaxVars)
	}
	enc := map[int]uint64{}
	for i, s := range reach {
		enc[s] = 1 << uint(i)
	}
	return enc, nil
}

// synthesizeWith builds and minimizes every function under an encoding.
// In strict mode a hazard-infeasible function fails the whole attempt
// rather than falling back to a (glitchy) plain cover. With feedback, the
// outputs are fed back as additional state variables. The per-function
// minimizations are independent (they only read the shared concretized
// machine and encoding) and fan out across `workers` goroutines; exact
// minimizations go through min when one is supplied.
func synthesizeWith(ctx context.Context, c *Concrete, enc map[int]uint64, bits int, oneHot, strict, feedback bool, workers int, min Minimizer, solver logic.Solver) (*Result, error) {
	obs.Add("synth/attempts", 1)
	vars, varIdx := variableOrder(c, bits, feedback)
	n := len(vars)
	if n > logic.MaxVars {
		return nil, fmt.Errorf("synth: %d variables exceed the %d-variable limit", n, logic.MaxVars)
	}
	res := &Result{StateBits: bits, States: len(c.ReachableStates()), OneHot: oneHot, Exact: true, Encoding: enc, OutputFeedback: feedback}

	// Function list: outputs then state bits.
	type fn struct {
		name string
		// valueAt returns the function's stable value at a concrete state.
		out  string // output signal name, or "" for state bits
		ybit int    // state bit index, or -1
	}
	var fns []fn
	for _, o := range c.Outputs {
		fns = append(fns, fn{name: o, out: o, ybit: -1})
	}
	for b := 0; b < bits; b++ {
		fns = append(fns, fn{name: fmt.Sprintf("Y%d", b), ybit: b})
	}

	// Terminal states (no outgoing transition) get no phase-1 hold
	// requirement from the transition loop below: without one, every input
	// combination there is a don't-care, and the minimized cover is free to
	// fire arbitrary outputs or drop state bits once the final handshake's
	// unobserved ack falls — or a late wire edge from a still-running
	// peer — land after the machine has stopped. Each one gets an explicit
	// hold face instead: every function frozen at its resting value across
	// the state's whole input space.
	hasOut := map[int]bool{}
	for _, t := range c.Trans {
		hasOut[t.From] = true
	}
	var terminals []int
	for _, sid := range c.ReachableStates() {
		if !hasOut[sid] {
			terminals = append(terminals, sid)
		}
	}

	// The span ends with the closure's actual error outcome (named return),
	// so failed minimizations are attributed in traces instead of reading
	// as clean spans. The span's unit field identifies the controller and
	// function; the counter stays a bounded per-stage aggregate so the
	// metrics registry's cardinality does not grow with design size.
	minimized, err := par.NamedMapCtx(ctx, "hfmin", workers, fns, func(ctx context.Context, _ int, f fn) (_ FuncResult, err error) {
		fnSp := obs.Start("hfmin", c.Name+"."+f.name)
		defer func() { fnSp.EndErr(err) }()
		obs.Add("hfmin/minimizations", 1)
		spec := hfmin.Spec{N: n}
		for _, t := range c.Trans {
			from := c.States[t.From]
			cFrom, cTo := enc[t.From], enc[t.To]
			start := bindState(baseCube(c, from, t, vars, varIdx), cFrom, bits, n)
			// Phase 1: the input burst completes; outputs and state bits
			// change at completion. Burst signals start at the opposite of
			// their arriving edge (an unobserved return-to-zero may have
			// moved them off the stale nominal level).
			endInputs := start
			for _, e := range t.In {
				start = start.With(varIdx[e.Signal], oppositeVal(e.Edge))
				endInputs = endInputs.With(varIdx[e.Signal], edgeVal(e.Edge))
			}

			var kind hfmin.Kind
			switch {
			case f.out != "":
				kind = dynKind(levelOf(from, f.out), outEdge(t, f.out))
			default:
				kind = bitKind(cFrom, cTo, f.ybit)
			}
			if isDynamic(kind) && start.Equal(endInputs) {
				// No input changes (pure conditional transition folded at a
				// join): the change rides the state-change phase instead.
				kind = staticOf(kind, false)
			}
			if t1, ok := mkTrans(start, endInputs, kind); ok {
				spec.Transitions = append(spec.Transitions, t1)
			}
			// Phase 2: the fed-back outputs and the state bits settle to
			// their post-transition values while inputs rest at their
			// nominal post-burst levels. All known inputs are bound (no
			// directed don't-cares here): a dashed wire would cover the
			// burst-completion point of the next transition and falsely
			// conflict with its rising output. The settle is monotone —
			// rising variables first, then falling — so the traversed cubes
			// avoid unrelated total states (the all-zero code in
			// particular). Every function is static at its new value during
			// the settle.
			sStart, sMid, sEnd := settleCubes(c, from, t, enc, bits, n, varIdx)
			if !sStart.Equal(sEnd) {
				var k2 hfmin.Kind
				if f.out != "" {
					k2 = staticLevel(levelAfter(from, t, f.out))
				} else {
					k2 = bitPhase2Kind(cFrom, cTo, f.ybit)
				}
				for _, leg := range [][2]logic.Cube{{sStart, sMid}, {sMid, sEnd}} {
					if leg[0].Equal(leg[1]) {
						continue
					}
					if t2, ok := mkTrans(leg[0], leg[1], k2); ok {
						spec.Transitions = append(spec.Transitions, t2)
					}
				}
			}
		}
		for _, sid := range terminals {
			st := c.States[sid]
			cube := bindState(logic.FullCube(n), enc[sid], bits, n)
			if feedback {
				for _, sig := range c.Outputs {
					if i, ok := varIdx[sig]; ok {
						if lvl := levelOf(st, sig); lvl >= 0 {
							cube = cube.With(i, boolVal(lvl == 1))
						}
					}
				}
			}
			var kind hfmin.Kind
			if f.out != "" {
				lvl := levelOf(st, f.out)
				if lvl < 0 {
					continue // resting level unknown (toggle wire): no hold
				}
				kind = staticLevel(lvl)
			} else {
				kind = staticLevel(b2i(enc[sid]&(1<<uint(f.ybit)) != 0))
			}
			if tHold, ok := mkTrans(cube, cube, kind); ok {
				spec.Transitions = append(spec.Transitions, tHold)
			}
		}
		hf := true
		minimize := func(s hfmin.Spec) (hfmin.Result, error) { return hfmin.MinimizeSolver(ctx, s, solver) }
		if min != nil {
			if mc, ok := min.(MinimizerCtx); ok {
				minimize = func(s hfmin.Spec) (hfmin.Result, error) { return mc.MinimizeCtx(ctx, s) }
			} else {
				minimize = min.Minimize
			}
		}
		r, err := minimize(spec)
		if errors.Is(err, hfmin.ErrInfeasible) && strict {
			return FuncResult{}, fmt.Errorf("function %s: %w", f.name, err)
		}
		if errors.Is(err, hfmin.ErrInfeasible) {
			// No hazard-free cover exists under this encoding (real tools
			// insert extra state variables here); fall back to the plain
			// two-level cover and record the deficiency.
			hf = false
			obs.Add("hfmin/fallbacks", 1)
			r, err = hfmin.MinimizePlain(spec)
		}
		if err != nil {
			return FuncResult{}, fmt.Errorf("function %s: %w", f.name, err)
		}
		return FuncResult{
			Name: f.name, Products: r.Products(), Literals: r.Literals(),
			Cover: r.Cover, HazardFree: hf, exact: r.Exact,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, fr := range minimized {
		if !fr.exact {
			res.Exact = false
		}
		if !fr.HazardFree {
			res.NonHazardFree++
		}
		res.Functions = append(res.Functions, fr)
		res.Products += fr.Products
		res.Literals += fr.Literals
	}
	return res, nil
}

// variableOrder lists inputs (wires, acks, sampled levels), optionally the
// fed-back outputs (outputs double as state variables, MINIMALIST's output
// feedback), then the state bits.
func variableOrder(c *Concrete, bits int, feedback bool) ([]string, map[string]int) {
	vars := append([]string{}, c.Inputs...)
	if feedback {
		vars = append(vars, c.Outputs...)
	}
	for b := 0; b < bits; b++ {
		vars = append(vars, fmt.Sprintf("Y%d", b))
	}
	idx := map[string]int{}
	for i, v := range vars {
		idx[v] = i
	}
	return vars, idx
}

// baseCube binds the non-state variables at the transition's start: inputs
// at their nominal levels (dash when free or unknown), sampled conditions
// at their branch values.
func baseCube(c *Concrete, from *CState, t *CTrans, vars []string, varIdx map[string]int) logic.Cube {
	cube := logic.FullCube(len(vars))
	free := map[string]bool{}
	for _, f := range t.Free {
		free[f] = true
	}
	for _, sig := range c.Inputs {
		if free[sig] {
			continue
		}
		if lvl, ok := from.Levels[sig]; ok && lvl >= 0 {
			cube = cube.With(varIdx[sig], boolVal(lvl == 1))
		}
	}
	// Output feedback (when enabled): the outputs hold their
	// pre-transition levels while the burst accumulates.
	for _, sig := range c.Outputs {
		if i, ok := varIdx[sig]; ok {
			if lvl, ok2 := from.Levels[sig]; ok2 && lvl >= 0 {
				cube = cube.With(i, boolVal(lvl == 1))
			}
		}
	}
	for _, cd := range t.Cond {
		cube = cube.With(varIdx[cd.Signal], boolVal(cd.Value))
	}
	return cube
}

// postBurstCube binds every input at its nominal level after transition
// t's burst (state bits left dashed).
func postBurstCube(c *Concrete, from *CState, t *CTrans, n int) logic.Cube {
	levels := map[string]int{}
	for k, v := range from.Levels {
		levels[k] = v
	}
	for _, e := range t.In {
		// The just-consumed burst signals hold their arrival values while
		// the state settles; acknowledgments follow their requests only
		// after the out-burst propagates (tracked in Concretize's state
		// levels).
		levels[e.Signal] = b2i(e.Edge == bm.Rise)
	}
	cube := logic.FullCube(n)
	for i, sig := range c.Inputs {
		if lvl, ok := levels[sig]; ok && lvl >= 0 {
			cube = cube.With(i, boolVal(lvl == 1))
		}
	}
	for i, sig := range c.Inputs {
		for _, cd := range t.Cond {
			if sig == cd.Signal {
				cube = cube.With(i, boolVal(cd.Value))
			}
		}
	}
	return cube
}

// settleCubes builds the start, monotone midpoint and end cubes of the
// phase-2 settle: inputs at post-burst nominal levels, fed-back outputs and
// state bits moving from their old to their new values (rising first).
func settleCubes(c *Concrete, from *CState, t *CTrans, enc map[int]uint64, bits, n int, varIdx map[string]int) (logic.Cube, logic.Cube, logic.Cube) {
	rest := postBurstCube(c, from, t, n)
	start, mid, end := rest, rest, rest
	for _, o := range c.Outputs {
		i, fed := varIdx[o]
		if !fed {
			continue
		}
		old := levelOf(from, o)
		nw := levelAfter(from, t, o)
		if old < 0 {
			continue
		}
		start = start.With(i, boolVal(old == 1))
		end = end.With(i, boolVal(nw == 1))
		mid = mid.With(i, boolVal(old == 1 || nw == 1))
	}
	cFrom, cTo := enc[t.From], enc[t.To]
	cMid := cFrom | cTo
	for b := 0; b < bits; b++ {
		start = start.With(n-bits+b, boolVal(cFrom&(1<<uint(b)) != 0))
		mid = mid.With(n-bits+b, boolVal(cMid&(1<<uint(b)) != 0))
		end = end.With(n-bits+b, boolVal(cTo&(1<<uint(b)) != 0))
	}
	return start, mid, end
}

func bindState(cube logic.Cube, code uint64, bits, n int) logic.Cube {
	for b := 0; b < bits; b++ {
		cube = cube.With(n-bits+b, boolVal(code&(1<<uint(b)) != 0))
	}
	return cube
}

func boolVal(b bool) logic.Val {
	if b {
		return logic.One
	}
	return logic.Zero
}

func edgeVal(e bm.Edge) logic.Val {
	if e == bm.Rise {
		return logic.One
	}
	return logic.Zero
}

func oppositeVal(e bm.Edge) logic.Val {
	if e == bm.Rise {
		return logic.Zero
	}
	return logic.One
}

func levelOf(s *CState, sig string) int {
	if lvl, ok := s.Levels[sig]; ok {
		return lvl
	}
	return 0
}

// outEdge returns the edge of signal sig in the out-burst, or -1.
func outEdge(t *CTrans, sig string) bm.Edge {
	for _, e := range t.Out {
		if e.Signal == sig {
			return e.Edge
		}
	}
	return bm.Edge(-1)
}

func levelAfter(from *CState, t *CTrans, sig string) int {
	switch outEdge(t, sig) {
	case bm.Rise:
		return 1
	case bm.Fall:
		return 0
	}
	return levelOf(from, sig)
}

func dynKind(level int, edge bm.Edge) hfmin.Kind {
	switch edge {
	case bm.Rise:
		return hfmin.Rise
	case bm.Fall:
		return hfmin.Fall
	}
	return staticLevel(level)
}

func staticLevel(level int) hfmin.Kind {
	if level == 1 {
		return hfmin.Static1
	}
	return hfmin.Static0
}

func bitKind(cFrom, cTo uint64, bit int) hfmin.Kind {
	f := cFrom&(1<<uint(bit)) != 0
	t := cTo&(1<<uint(bit)) != 0
	switch {
	case f == t && f:
		return hfmin.Static1
	case f == t:
		return hfmin.Static0
	case t:
		return hfmin.Rise
	default:
		return hfmin.Fall
	}
}

// bitPhase2Kind: during the state-change phase the bit function already
// drives the new value.
func bitPhase2Kind(cFrom, cTo uint64, bit int) hfmin.Kind {
	t := cTo&(1<<uint(bit)) != 0
	return staticLevel(b2i(t))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func isDynamic(k hfmin.Kind) bool { return k == hfmin.Rise || k == hfmin.Fall }

// staticOf converts a dynamic kind to the static level it settles at (used
// when no input actually changes in the phase).
func staticOf(k hfmin.Kind, atStart bool) hfmin.Kind {
	if k == hfmin.Rise {
		if atStart {
			return hfmin.Static0
		}
		return hfmin.Static1
	}
	if atStart {
		return hfmin.Static1
	}
	return hfmin.Static0
}

// mkTrans builds an hfmin transition, skipping degenerate ones.
func mkTrans(start, end logic.Cube, kind hfmin.Kind) (hfmin.Transition, bool) {
	t := hfmin.Transition{Start: start, End: end, Kind: kind}
	if isDynamic(kind) {
		changed := false
		for i := 0; i < start.N(); i++ {
			s, e := start.Get(i), end.Get(i)
			if s != logic.Dash && e != logic.Dash && s != e {
				changed = true
			}
		}
		if !changed {
			return t, false
		}
	}
	return t, true
}

// Summary renders one controller's result as a Figure 13 row.
func (r *Result) Summary() string {
	return fmt.Sprintf("%-6s %3d products %4d literals (%d states, %d bits%s)",
		r.Controller, r.Products, r.Literals, r.States, r.StateBits, onehotTag(r.OneHot))
}

func onehotTag(b bool) string {
	if b {
		return ", one-hot"
	}
	return ""
}

// SortFunctions orders function results by name for stable output.
func (r *Result) SortFunctions() {
	sort.Slice(r.Functions, func(i, j int) bool { return r.Functions[i].Name < r.Functions[j].Name })
}
