// Package bm implements extended burst-mode (XBM) asynchronous finite
// state machine specifications, the controller formalism of the paper
// (§4.1). A machine is a set of states and labeled transitions; a
// transition fires when its complete input burst (a set of signal edges)
// has arrived and any sampled level conditions hold, emitting its output
// burst.
//
// Two extensions beyond plain burst mode are supported, following the
// paper's extraction needs:
//
//   - conditionals: transitions may sample level signals (the LOOP node's
//     condition register);
//   - directed don't-cares: a transition may declare signals free to
//     change while it is pending (early request arrival, §4.2 step 4);
//   - toggle edges: global "ready" wires use transition signaling, so a
//     wire consumed an odd number of times per cycle alternates polarity;
//     a Toggle edge matches either polarity.
package bm

import (
	"fmt"
	"sort"
	"strings"
)

// IsWire reports whether a signal name denotes a global communication wire
// between controllers (as opposed to a local datapath handshake signal).
// Extraction names channel wires "w<id>_<sender>" and environment wires
// "start<i>"/"fin<i>".
func IsWire(sig string) bool {
	return len(sig) > 1 && (sig[0] == 'w' && sig[1] >= '0' && sig[1] <= '9' ||
		strings.HasPrefix(sig, "start") || strings.HasPrefix(sig, "fin"))
}

// StateID identifies a machine state.
type StateID int

// Edge is the kind of signal event in a burst.
type Edge int

// Edge kinds.
const (
	Rise   Edge = iota // 0 → 1
	Fall               // 1 → 0
	Toggle             // either polarity (transition signaling)
)

func (e Edge) String() string {
	switch e {
	case Rise:
		return "+"
	case Fall:
		return "-"
	case Toggle:
		return "~"
	default:
		return "?"
	}
}

// Event is one signal edge within a burst.
type Event struct {
	Signal string
	Edge   Edge
}

func (e Event) String() string { return e.Signal + e.Edge.String() }

// Cond is a sampled level condition (an XBM conditional).
type Cond struct {
	Signal string
	Value  bool
}

func (c Cond) String() string {
	if c.Value {
		return "<" + c.Signal + "=1>"
	}
	return "<" + c.Signal + "=0>"
}

// Transition is one state transition: when In (and Cond) complete, move
// from From to To emitting Out.
type Transition struct {
	From, To StateID
	In       []Event
	Cond     []Cond
	Out      []Event
	// Free lists signals that may change while this transition is pending
	// (directed don't-cares from back-annotated early arrivals).
	Free []string
	// Label annotates the transition with its originating micro-operation.
	Label string
}

func (t *Transition) String() string {
	var parts []string
	for _, c := range t.Cond {
		parts = append(parts, c.String())
	}
	for _, e := range t.In {
		parts = append(parts, e.String())
	}
	in := strings.Join(parts, " ")
	var outs []string
	for _, e := range t.Out {
		outs = append(outs, e.String())
	}
	return fmt.Sprintf("s%d → s%d : %s / %s", t.From, t.To, in, strings.Join(outs, " "))
}

// HasInput reports whether the transition's in-burst contains the signal.
func (t *Transition) HasInput(sig string) bool {
	for _, e := range t.In {
		if e.Signal == sig {
			return true
		}
	}
	return false
}

// HasOutput reports whether the transition's out-burst contains the signal.
func (t *Transition) HasOutput(sig string) bool {
	for _, e := range t.Out {
		if e.Signal == sig {
			return true
		}
	}
	return false
}

// Machine is an extended burst-mode specification.
type Machine struct {
	Name    string
	Inputs  []string
	Outputs []string
	// Levels are sampled level inputs (conditionals).
	Levels      []string
	Init        StateID
	Transitions []*Transition
	// InitialHigh lists signals whose reset level is 1 rather than 0
	// (e.g. ready wires primed at reset to pre-enable backward
	// constraints).
	InitialHigh []string
	// StateNames optionally labels states for diagnostics.
	StateNames map[StateID]string
	nextState  StateID
}

// NewMachine creates an empty machine.
func NewMachine(name string) *Machine {
	return &Machine{Name: name, StateNames: map[StateID]string{}}
}

// NewState allocates a fresh state.
func (m *Machine) NewState(name string) StateID {
	id := m.nextState
	m.nextState++
	if name != "" {
		m.StateNames[id] = name
	}
	return id
}

// AddTransition appends a transition.
func (m *Machine) AddTransition(t *Transition) *Transition {
	m.Transitions = append(m.Transitions, t)
	return t
}

// AddInput registers an input signal if new.
func (m *Machine) AddInput(sig string) {
	if !contains(m.Inputs, sig) {
		m.Inputs = append(m.Inputs, sig)
	}
}

// AddOutput registers an output signal if new.
func (m *Machine) AddOutput(sig string) {
	if !contains(m.Outputs, sig) {
		m.Outputs = append(m.Outputs, sig)
	}
}

// AddLevel registers a sampled level input if new.
func (m *Machine) AddLevel(sig string) {
	if !contains(m.Levels, sig) {
		m.Levels = append(m.Levels, sig)
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// States returns the set of states referenced by transitions, sorted.
func (m *Machine) States() []StateID {
	set := map[StateID]bool{m.Init: true}
	for _, t := range m.Transitions {
		set[t.From] = true
		set[t.To] = true
	}
	var out []StateID
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumStates returns the number of reachable states.
func (m *Machine) NumStates() int { return len(m.States()) }

// NumTransitions returns the transition count.
func (m *Machine) NumTransitions() int { return len(m.Transitions) }

// OutTransitions returns the transitions leaving state s.
func (m *Machine) OutTransitions(s StateID) []*Transition {
	var out []*Transition
	for _, t := range m.Transitions {
		if t.From == s {
			out = append(out, t)
		}
	}
	return out
}

// InTransitions returns the transitions entering state s.
func (m *Machine) InTransitions(s StateID) []*Transition {
	var out []*Transition
	for _, t := range m.Transitions {
		if t.To == s {
			out = append(out, t)
		}
	}
	return out
}

// String renders the machine as a transition list.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s: %d states, %d transitions\n", m.Name, m.NumStates(), m.NumTransitions())
	fmt.Fprintf(&b, "  inputs: %s\n", strings.Join(m.Inputs, " "))
	fmt.Fprintf(&b, "  outputs: %s\n", strings.Join(m.Outputs, " "))
	if len(m.Levels) > 0 {
		fmt.Fprintf(&b, "  levels: %s\n", strings.Join(m.Levels, " "))
	}
	for _, t := range m.Transitions {
		fmt.Fprintf(&b, "  %s", t)
		if t.Label != "" {
			fmt.Fprintf(&b, "   ; %s", t.Label)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// DOT renders the machine in Graphviz format.
func (m *Machine) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle, fontsize=10];\n", m.Name)
	for _, s := range m.States() {
		label := fmt.Sprintf("s%d", s)
		if n := m.StateNames[s]; n != "" {
			label = fmt.Sprintf("s%d\\n%s", s, n)
		}
		shape := "circle"
		if s == m.Init {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [label=%q, shape=%s];\n", s, label, shape)
	}
	for _, t := range m.Transitions {
		var parts []string
		for _, c := range t.Cond {
			parts = append(parts, c.String())
		}
		for _, e := range t.In {
			parts = append(parts, e.String())
		}
		in := strings.Join(parts, " ")
		var outs []string
		for _, e := range t.Out {
			outs = append(outs, e.String())
		}
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q, fontsize=8];\n", t.From, t.To,
			fmt.Sprintf("%s / %s", in, strings.Join(outs, " ")))
	}
	b.WriteString("}\n")
	return b.String()
}
