package bm

import "fmt"

// Validate checks XBM well-formedness:
//
//   - every event's signal is declared with the right role;
//   - no empty in-burst except on conditional-only transitions;
//   - the maximal set property: of two transitions leaving one state,
//     neither's trigger may be a subset of the other's (they must be
//     distinguishable);
//   - polarity consistency: following edges from the initial state, every
//     non-toggle signal has a consistent level in every state.
func (m *Machine) Validate() error {
	inSet, outSet, lvlSet := set(m.Inputs), set(m.Outputs), set(m.Levels)
	for i, t := range m.Transitions {
		if len(t.In) == 0 && len(t.Cond) == 0 {
			return fmt.Errorf("bm: transition %d (%s) has no trigger", i, t)
		}
		for _, e := range t.In {
			if !inSet[e.Signal] {
				return fmt.Errorf("bm: transition %d uses undeclared input %q", i, e.Signal)
			}
		}
		for _, e := range t.Out {
			if !outSet[e.Signal] {
				return fmt.Errorf("bm: transition %d emits undeclared output %q", i, e.Signal)
			}
		}
		for _, c := range t.Cond {
			if !lvlSet[c.Signal] {
				return fmt.Errorf("bm: transition %d samples undeclared level %q", i, c.Signal)
			}
		}
		seen := map[string]bool{}
		for _, e := range t.In {
			if seen[e.Signal] {
				return fmt.Errorf("bm: transition %d repeats input %q in one burst", i, e.Signal)
			}
			seen[e.Signal] = true
		}
	}
	if err := m.checkMaximalSet(); err != nil {
		return err
	}
	return m.checkPolarity()
}

func set(ss []string) map[string]bool {
	out := map[string]bool{}
	for _, s := range ss {
		out[s] = true
	}
	return out
}

// checkMaximalSet verifies distinguishability of sibling transitions.
func (m *Machine) checkMaximalSet() error {
	for _, s := range m.States() {
		outs := m.OutTransitions(s)
		for i := 0; i < len(outs); i++ {
			for j := 0; j < len(outs); j++ {
				if i == j {
					continue
				}
				if subsumes(outs[i], outs[j]) {
					return fmt.Errorf("bm: state s%d: trigger of (%s) subsumes (%s): maximal set property violated",
						s, outs[i], outs[j])
				}
			}
		}
	}
	return nil
}

// subsumes reports whether b's trigger is a subset of a's with no
// distinguishing condition — firing a would also fire b.
func subsumes(a, b *Transition) bool {
	for _, e := range b.In {
		found := false
		for _, f := range a.In {
			if f.Signal == e.Signal {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	// A condition with opposite value distinguishes the two.
	for _, cb := range b.Cond {
		for _, ca := range a.Cond {
			if ca.Signal == cb.Signal && ca.Value != cb.Value {
				return false
			}
		}
	}
	return true
}

// checkPolarity assigns signal levels per state by propagation from the
// initial state (all signals low) and reports conflicts for non-toggle
// edges.
func (m *Machine) checkPolarity() error {
	type level map[string]int // -1 unknown, 0, 1
	levels := map[StateID]level{}
	sigs := append(append([]string{}, m.Inputs...), m.Outputs...)
	start := level{}
	for _, s := range sigs {
		start[s] = 0
	}
	for _, s := range m.InitialHigh {
		start[s] = 1
	}
	levels[m.Init] = start
	queue := []StateID{m.Init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		cur := levels[s]
		for _, t := range m.OutTransitions(s) {
			next := level{}
			for k, v := range cur {
				next[k] = v
			}
			// Free signals may change unobserved while the transition is
			// pending: their level is unknown here.
			free := map[string]bool{}
			for _, f := range t.Free {
				free[f] = true
				next[f] = -1
			}
			events := append(append([]Event{}, t.In...), t.Out...)
			for _, e := range events {
				lvl := cur[e.Signal]
				if free[e.Signal] {
					lvl = -1
				}
				switch e.Edge {
				case Rise:
					if lvl == 1 {
						return fmt.Errorf("bm: %s: %s+ but signal already high in s%d", t, e.Signal, s)
					}
					next[e.Signal] = 1
				case Fall:
					if lvl == 0 {
						return fmt.Errorf("bm: %s: %s- but signal already low in s%d", t, e.Signal, s)
					}
					next[e.Signal] = 0
				case Toggle:
					next[e.Signal] = -1 // polarity untracked
				}
			}
			// Signals free on any transition leaving the target state are
			// not level-tracked there.
			for _, nt := range m.OutTransitions(t.To) {
				for _, f := range nt.Free {
					next[f] = -1
				}
			}
			if prev, ok := levels[t.To]; ok {
				for k, v := range next {
					if prev[k] >= 0 && v >= 0 && prev[k] != v {
						return fmt.Errorf("bm: state s%d reached with %s=%d and %s=%d", t.To, k, prev[k], k, v)
					}
					if v < 0 {
						prev[k] = -1
					}
				}
			} else {
				levels[t.To] = next
				queue = append(queue, t.To)
			}
		}
	}
	return nil
}
