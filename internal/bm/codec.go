// Machine cloning and a canonical JSON codec, the serialization seam the
// incremental stage engine (internal/stage) keys and ships extracted
// controllers through. The encoding preserves the machine's in-memory
// signal and transition order exactly: Verilog emission derives port and
// variable order from Inputs/Outputs order, so a sorted "canonical" form
// would change downstream netlists. Encoding the same machine twice is
// byte-identical, which is what makes the bytes usable as cache-key
// material.
package bm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
)

// Clone returns a deep copy of the machine: mutating the copy (as the
// local transforms do, in place) never aliases the original's
// transitions, bursts or state-name table.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		Name:        m.Name,
		Inputs:      append([]string(nil), m.Inputs...),
		Outputs:     append([]string(nil), m.Outputs...),
		Levels:      append([]string(nil), m.Levels...),
		Init:        m.Init,
		InitialHigh: append([]string(nil), m.InitialHigh...),
		StateNames:  make(map[StateID]string, len(m.StateNames)),
		nextState:   m.nextState,
	}
	for id, name := range m.StateNames {
		c.StateNames[id] = name
	}
	c.Transitions = make([]*Transition, len(m.Transitions))
	for i, t := range m.Transitions {
		nt := &Transition{
			From:  t.From,
			To:    t.To,
			In:    append([]Event(nil), t.In...),
			Cond:  append([]Cond(nil), t.Cond...),
			Out:   append([]Event(nil), t.Out...),
			Free:  append([]string(nil), t.Free...),
			Label: t.Label,
		}
		c.Transitions[i] = nt
	}
	return c
}

// machineDoc is the serialized machine shape. Field order (and the
// deterministic state_names rendering) makes EncodeMachine canonical.
type machineDoc struct {
	Name        string            `json:"name"`
	Inputs      []string          `json:"inputs"`
	Outputs     []string          `json:"outputs"`
	Levels      []string          `json:"levels,omitempty"`
	Init        int               `json:"init"`
	InitialHigh []string          `json:"initial_high,omitempty"`
	StateNames  map[string]string `json:"state_names,omitempty"`
	Transitions []transitionDoc   `json:"transitions"`
}

type transitionDoc struct {
	From  int        `json:"from"`
	To    int        `json:"to"`
	In    []eventDoc `json:"in,omitempty"`
	Cond  []condDoc  `json:"cond,omitempty"`
	Out   []eventDoc `json:"out,omitempty"`
	Free  []string   `json:"free,omitempty"`
	Label string     `json:"label,omitempty"`
}

// eventDoc spells the edge as the human notation ("+", "-", "~") used
// everywhere else in the repo's output.
type eventDoc struct {
	Signal string `json:"s"`
	Edge   string `json:"e"`
}

type condDoc struct {
	Signal string `json:"s"`
	Value  bool   `json:"v"`
}

// EncodeMachine serializes m deterministically: identical machines
// (including order) produce identical bytes.
func EncodeMachine(m *Machine) ([]byte, error) {
	d := machineDoc{
		Name:        m.Name,
		Inputs:      m.Inputs,
		Outputs:     m.Outputs,
		Levels:      m.Levels,
		Init:        int(m.Init),
		InitialHigh: m.InitialHigh,
		Transitions: make([]transitionDoc, 0, len(m.Transitions)),
	}
	if len(m.StateNames) > 0 {
		d.StateNames = make(map[string]string, len(m.StateNames))
		for id, name := range m.StateNames {
			d.StateNames[strconv.Itoa(int(id))] = name
		}
	}
	for _, t := range m.Transitions {
		td := transitionDoc{From: int(t.From), To: int(t.To), Free: t.Free, Label: t.Label}
		for _, e := range t.In {
			td.In = append(td.In, eventDoc{Signal: e.Signal, Edge: e.Edge.String()})
		}
		for _, c := range t.Cond {
			td.Cond = append(td.Cond, condDoc{Signal: c.Signal, Value: c.Value})
		}
		for _, e := range t.Out {
			td.Out = append(td.Out, eventDoc{Signal: e.Signal, Edge: e.Edge.String()})
		}
		d.Transitions = append(d.Transitions, td)
	}
	// encoding/json renders map keys sorted, so state_names is
	// deterministic without an explicit ordering pass.
	return json.Marshal(d)
}

func parseEdge(s string) (Edge, error) {
	switch s {
	case "+":
		return Rise, nil
	case "-":
		return Fall, nil
	case "~":
		return Toggle, nil
	}
	return 0, fmt.Errorf("bm: unknown edge %q (want +, - or ~)", s)
}

// DecodeMachine is the strict inverse of EncodeMachine. Unknown fields,
// trailing data, bad edge spellings and malformed state IDs are errors —
// a cache record that fails here is treated as a miss, never as a
// machine.
func DecodeMachine(data []byte) (*Machine, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d machineDoc
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("bm: decode machine: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("bm: decode machine: trailing data after document")
	}
	m := &Machine{
		Name:        d.Name,
		Inputs:      d.Inputs,
		Outputs:     d.Outputs,
		Levels:      d.Levels,
		Init:        StateID(d.Init),
		InitialHigh: d.InitialHigh,
		StateNames:  map[StateID]string{},
	}
	maxState := m.Init
	for key, name := range d.StateNames {
		id, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("bm: decode machine: state_names key %q: %w", key, err)
		}
		m.StateNames[StateID(id)] = name
		if StateID(id) > maxState {
			maxState = StateID(id)
		}
	}
	for i, td := range d.Transitions {
		t := &Transition{From: StateID(td.From), To: StateID(td.To), Free: td.Free, Label: td.Label}
		for _, e := range td.In {
			edge, err := parseEdge(e.Edge)
			if err != nil {
				return nil, fmt.Errorf("bm: decode machine: transitions[%d].in: %w", i, err)
			}
			t.In = append(t.In, Event{Signal: e.Signal, Edge: edge})
		}
		for _, c := range td.Cond {
			t.Cond = append(t.Cond, Cond{Signal: c.Signal, Value: c.Value})
		}
		for _, e := range td.Out {
			edge, err := parseEdge(e.Edge)
			if err != nil {
				return nil, fmt.Errorf("bm: decode machine: transitions[%d].out: %w", i, err)
			}
			t.Out = append(t.Out, Event{Signal: e.Signal, Edge: edge})
		}
		m.Transitions = append(m.Transitions, t)
		if t.From > maxState {
			maxState = t.From
		}
		if t.To > maxState {
			maxState = t.To
		}
	}
	// NewState on a decoded machine must never reuse an existing ID.
	m.nextState = maxState + 1
	return m, nil
}
