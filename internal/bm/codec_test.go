package bm

import (
	"reflect"
	"testing"
)

// testMachine builds a small XBM machine exercising every encoded
// feature: all three edge kinds, sampled conditions, free signals,
// labels, initial-high signals and named states.
func testMachine() *Machine {
	m := NewMachine("ctl")
	idle := m.NewState("idle")
	work := m.NewState("work")
	done := m.NewState("") // unnamed state
	m.Init = idle
	m.AddInput("req")
	m.AddInput("r1")
	m.AddOutput("ack")
	m.AddOutput("go")
	m.AddLevel("sel")
	m.InitialHigh = []string{"r1"}
	m.AddTransition(&Transition{
		From: idle, To: work,
		In:    []Event{{Signal: "req", Edge: Rise}},
		Cond:  []Cond{{Signal: "sel", Value: true}},
		Out:   []Event{{Signal: "go", Edge: Rise}},
		Label: "start",
	})
	m.AddTransition(&Transition{
		From: work, To: done,
		In:   []Event{{Signal: "r1", Edge: Fall}, {Signal: "req", Edge: Toggle}},
		Out:  []Event{{Signal: "go", Edge: Fall}, {Signal: "ack", Edge: Rise}},
		Free: []string{"sel"},
	})
	m.AddTransition(&Transition{
		From: done, To: idle,
		In:   []Event{{Signal: "req", Edge: Fall}},
		Cond: []Cond{{Signal: "sel", Value: false}},
		Out:  []Event{{Signal: "ack", Edge: Fall}},
	})
	return m
}

// TestMachineCodecRoundTrip asserts Decode(Encode(m)) reproduces the
// machine exactly, including the unexported state allocator, and that
// re-encoding is byte-identical (the property the stage keys rely on).
func TestMachineCodecRoundTrip(t *testing.T) {
	m := testMachine()
	data, err := EncodeMachine(m)
	if err != nil {
		t.Fatalf("EncodeMachine: %v", err)
	}
	got, err := DecodeMachine(data)
	if err != nil {
		t.Fatalf("DecodeMachine: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip changed the machine:\n got %#v\nwant %#v", got, m)
	}
	again, err := EncodeMachine(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(data) {
		t.Errorf("re-encoding a decoded machine is not byte-identical:\n got %s\nwant %s", again, data)
	}
	if id := got.NewState("next"); id != m.nextState-1+1 {
		t.Errorf("decoded machine allocates state %d; want %d", id, m.nextState)
	}
}

// TestMachineCloneIndependence asserts Clone deep-copies every slice and
// map, so mutating the clone never reaches the original.
func TestMachineCloneIndependence(t *testing.T) {
	m := testMachine()
	want, err := EncodeMachine(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Name = "other"
	c.Inputs[0] = "X"
	c.Outputs = append(c.Outputs, "extra")
	c.InitialHigh[0] = "Y"
	c.StateNames[0] = "renamed"
	c.Transitions[0].In[0].Signal = "Z"
	c.Transitions[1].Free[0] = "W"
	c.Transitions[2].Cond[0].Value = true
	after, err := EncodeMachine(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(want) {
		t.Error("mutating a clone changed the original machine")
	}
}

// TestMachineDecodeStrict rejects malformed documents outright.
func TestMachineDecodeStrict(t *testing.T) {
	valid, err := EncodeMachine(testMachine())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"unknown field":    `{"name":"m","bogus":1}`,
		"trailing garbage": string(valid) + `{}`,
		"bad edge":         `{"name":"m","init":0,"transitions":[{"from":0,"to":0,"in":[{"s":"a","e":"?"}]}]}`,
		"bad state key":    `{"name":"m","init":0,"state_names":{"x":"s"}}`,
		"not json":         `nope`,
	}
	for name, doc := range cases {
		if _, err := DecodeMachine([]byte(doc)); err == nil {
			t.Errorf("%s: DecodeMachine accepted %q", name, doc)
		}
	}
}
