package bm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildToggle builds a simple two-state RZ handshake machine:
// s0 --req+ / ack+--> s1 --req- / ack---> s0.
func buildHandshake() *Machine {
	m := NewMachine("hs")
	m.AddInput("req")
	m.AddOutput("ack")
	s0 := m.NewState("idle")
	s1 := m.NewState("busy")
	m.Init = s0
	m.AddTransition(&Transition{From: s0, To: s1, In: []Event{{"req", Rise}}, Out: []Event{{"ack", Rise}}})
	m.AddTransition(&Transition{From: s1, To: s0, In: []Event{{"req", Fall}}, Out: []Event{{"ack", Fall}}})
	return m
}

func TestHandshakeValid(t *testing.T) {
	m := buildHandshake()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 || m.NumTransitions() != 2 {
		t.Errorf("states=%d transitions=%d", m.NumStates(), m.NumTransitions())
	}
}

func TestUndeclaredSignal(t *testing.T) {
	m := buildHandshake()
	m.AddTransition(&Transition{From: 0, To: 1, In: []Event{{"ghost", Rise}}})
	if err := m.Validate(); err == nil {
		t.Error("undeclared input accepted")
	}
}

func TestEmptyTrigger(t *testing.T) {
	m := buildHandshake()
	m.AddTransition(&Transition{From: 1, To: 0})
	if err := m.Validate(); err == nil {
		t.Error("triggerless transition accepted")
	}
}

func TestMaximalSetViolation(t *testing.T) {
	m := NewMachine("ms")
	m.AddInput("a")
	m.AddInput("b")
	m.AddOutput("x")
	s0, s1, s2 := m.NewState(""), m.NewState(""), m.NewState("")
	m.Init = s0
	m.AddTransition(&Transition{From: s0, To: s1, In: []Event{{"a", Rise}}, Out: []Event{{"x", Rise}}})
	m.AddTransition(&Transition{From: s0, To: s2, In: []Event{{"a", Rise}, {"b", Rise}}})
	if err := m.Validate(); err == nil {
		t.Error("subset trigger accepted (maximal set property)")
	}
}

func TestConditionalDistinguishes(t *testing.T) {
	m := NewMachine("cond")
	m.AddInput("go")
	m.AddOutput("x")
	m.AddLevel("c")
	s0, s1, s2 := m.NewState(""), m.NewState(""), m.NewState("")
	m.Init = s0
	m.AddTransition(&Transition{From: s0, To: s1, In: []Event{{"go", Rise}},
		Cond: []Cond{{"c", true}}, Out: []Event{{"x", Rise}}})
	m.AddTransition(&Transition{From: s0, To: s2, In: []Event{{"go", Rise}},
		Cond: []Cond{{"c", false}}})
	if err := m.Validate(); err != nil {
		t.Fatalf("conditional pair rejected: %v", err)
	}
}

func TestPolarityConflict(t *testing.T) {
	m := NewMachine("pol")
	m.AddInput("a")
	m.AddOutput("x")
	s0, s1 := m.NewState(""), m.NewState("")
	m.Init = s0
	// x rises twice without falling.
	m.AddTransition(&Transition{From: s0, To: s1, In: []Event{{"a", Rise}}, Out: []Event{{"x", Rise}}})
	m.AddTransition(&Transition{From: s1, To: s0, In: []Event{{"a", Fall}}, Out: []Event{{"x", Rise}}})
	if err := m.Validate(); err == nil {
		t.Error("double rise accepted")
	}
}

func TestTogglePolarityFree(t *testing.T) {
	m := NewMachine("tog")
	m.AddInput("w")
	m.AddOutput("x")
	s0, s1 := m.NewState(""), m.NewState("")
	m.Init = s0
	// A toggling wire consumed once per cycle: alternating polarity is
	// legal only via Toggle edges.
	m.AddTransition(&Transition{From: s0, To: s1, In: []Event{{"w", Toggle}}, Out: []Event{{"x", Rise}}})
	m.AddTransition(&Transition{From: s1, To: s0, In: []Event{{"w", Toggle}}, Out: []Event{{"x", Fall}}})
	if err := m.Validate(); err != nil {
		t.Fatalf("toggle machine rejected: %v", err)
	}
}

func TestRepeatedSignalInBurst(t *testing.T) {
	m := NewMachine("rep")
	m.AddInput("a")
	m.AddOutput("x")
	s0, s1 := m.NewState(""), m.NewState("")
	m.Init = s0
	m.AddTransition(&Transition{From: s0, To: s1, In: []Event{{"a", Rise}, {"a", Fall}}, Out: []Event{{"x", Rise}}})
	if err := m.Validate(); err == nil {
		t.Error("repeated signal in one burst accepted")
	}
}

func TestStringAndDOT(t *testing.T) {
	m := buildHandshake()
	s := m.String()
	for _, want := range []string{"machine hs", "req+", "ack-"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
	d := m.DOT()
	for _, want := range []string{"digraph", "doublecircle", "req+ / ack+"} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT missing %q:\n%s", want, d)
		}
	}
}

func TestTransitionHelpers(t *testing.T) {
	m := buildHandshake()
	tr := m.Transitions[0]
	if !tr.HasInput("req") || tr.HasInput("ack") {
		t.Error("HasInput wrong")
	}
	if !tr.HasOutput("ack") || tr.HasOutput("req") {
		t.Error("HasOutput wrong")
	}
	if len(m.OutTransitions(0)) != 1 || len(m.InTransitions(0)) != 1 {
		t.Error("transition adjacency wrong")
	}
}

// Property: randomly generated alternating-handshake chains always
// validate, and their DOT/String renderings cover every transition.
func TestQuickRandomChains(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMachine("chain")
		n := 2 + r.Intn(6)
		for i := 0; i < n; i++ {
			m.AddInput(fmt.Sprintf("i%d", i))
			m.AddOutput(fmt.Sprintf("o%d", i))
		}
		states := make([]StateID, n)
		for i := range states {
			states[i] = m.NewState("")
		}
		m.Init = states[0]
		// Ring of rise transitions followed by a fall-everything return.
		for i := 0; i+1 < n; i++ {
			m.AddTransition(&Transition{
				From: states[i], To: states[i+1],
				In:  []Event{{Signal: fmt.Sprintf("i%d", i), Edge: Rise}},
				Out: []Event{{Signal: fmt.Sprintf("o%d", i), Edge: Rise}},
			})
		}
		var ins, outs []Event
		for i := 0; i+1 < n; i++ {
			ins = append(ins, Event{Signal: fmt.Sprintf("i%d", i), Edge: Fall})
			outs = append(outs, Event{Signal: fmt.Sprintf("o%d", i), Edge: Fall})
		}
		m.AddTransition(&Transition{From: states[n-1], To: states[0], In: ins, Out: outs})
		if err := m.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		dot := m.DOT()
		str := m.String()
		for i := 0; i+1 < n; i++ {
			if !strings.Contains(str, fmt.Sprintf("i%d+", i)) {
				return false
			}
		}
		return strings.Contains(dot, "digraph") && m.NumStates() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
