// Package loadtest drives a real asyncsynthd fleet — separate processes
// on loopback ports, wired together with -peers — through sustained,
// fault-injected load, and checks the one property that matters: every
// document the fleet serves is bit-identical to a direct single-process
// pipeline run.
//
// The harness has three parts. StartFleet builds and boots N daemon
// processes whose ring, health-checking and remote cache tier are exactly
// the production topology. Workload assembles a corpus from the stock
// benchmark registry plus synthesizable random designs from internal/gen,
// each paired with its reference document computed in-process. Run pushes
// the corpus through the fleet with concurrent clients while optionally
// killing a node mid-run and cancelling a slice of the jobs, and reports
// latency percentiles, queue-depth highwater and the fleet's own counters
// (remote cache hits, rejected corrupt payloads, forward fallbacks).
//
// scripts/loadgen is the command-line front end; TestFleetSustainedLoad
// is the in-repo acceptance run.
package loadtest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/gen"
	"repro/internal/service"
)

// Doc is one workload document: a submission body plus the reference
// synthesis document a direct single-process run produces.
type Doc struct {
	Name string
	Body []byte
	Want []byte
}

// directRun computes the reference document for g the way asyncsynthd
// does — full pipeline at the default level, gate-level synthesis, codec
// encoding — but in this process, with no service layer in between.
func directRun(g *cdfg.Graph) ([]byte, error) {
	s, err := core.Run(g, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		return nil, err
	}
	return codec.EncodeSynthesis(s, results)
}

// Workload assembles the corpus: every registered benchmark plus up to
// genSeeds random designs from internal/gen. Random specs that the
// synthesis pipeline rejects (the generator spans more topologies than
// the extractor accepts) are skipped, not errors — the corpus is the
// synthesizable subset.
func Workload(genSeeds int) ([]Doc, error) {
	var docs []Doc
	for _, b := range bench.All() {
		body, err := codec.EncodeGraph(b.Build())
		if err != nil {
			return nil, fmt.Errorf("loadtest: encoding %s: %w", b.Name, err)
		}
		want, err := directRun(b.Build())
		if err != nil {
			return nil, fmt.Errorf("loadtest: reference run of %s: %w", b.Name, err)
		}
		docs = append(docs, Doc{Name: b.Name, Body: body, Want: want})
	}
	found := 0
	for seed := int64(1); found < genSeeds && seed <= 200; seed++ {
		want, err := directRun(gen.Graph(seed))
		if err != nil {
			continue
		}
		body, err := codec.EncodeGraph(gen.Graph(seed))
		if err != nil {
			continue
		}
		docs = append(docs, Doc{Name: fmt.Sprintf("gen-%d", seed), Body: body, Want: want})
		found++
	}
	return docs, nil
}

// BuildDaemon compiles cmd/asyncsynthd into dir and returns the binary
// path.
func BuildDaemon(dir string) (string, error) {
	bin := filepath.Join(dir, "asyncsynthd")
	out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/asyncsynthd").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("loadtest: building asyncsynthd: %w\n%s", err, out)
	}
	return bin, nil
}

// FleetOptions sizes a fleet under test.
type FleetOptions struct {
	// Bin is the asyncsynthd binary (see BuildDaemon).
	Bin string
	// N is the node count (default 3).
	N int
	// WorkDir holds per-node cache directories (default: a fresh temp dir
	// removed by Fleet.Close).
	WorkDir string
	// Concurrency and QueueDepth are passed to every node (defaults 2 and
	// 8 — a small queue so overload is observable).
	Concurrency, QueueDepth int
	// CachePeers are extra cache-only peer URLs given to every node
	// (-cache-peers); the fault tests point these at byzantine servers.
	CachePeers []string
	// HealthInterval is each node's peer probe interval (default 250ms —
	// fast enough that kill tests see the transition).
	HealthInterval time.Duration
}

// Node is one running daemon process.
type Node struct {
	URL      string
	Addr     string
	CacheDir string

	cmd  *exec.Cmd
	logM sync.Mutex
	log  bytes.Buffer
	dead bool
	mu   sync.Mutex
}

// Log returns everything the node has printed so far.
func (n *Node) Log() string {
	n.logM.Lock()
	defer n.logM.Unlock()
	return n.log.String()
}

// Alive reports whether the process has not been killed by the harness.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.dead
}

// Fleet is a set of daemon processes under test.
type Fleet struct {
	Nodes   []*Node
	workDir string
	ownDir  bool
}

// StartFleet boots opt.N daemons wired into one fleet and waits until
// every node announces its listener. On error the partial fleet is torn
// down and every node's captured output is folded into the error.
func StartFleet(opt FleetOptions) (*Fleet, error) {
	if opt.N <= 0 {
		opt.N = 3
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 2
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 8
	}
	if opt.HealthInterval <= 0 {
		opt.HealthInterval = 250 * time.Millisecond
	}
	f := &Fleet{workDir: opt.WorkDir}
	if f.workDir == "" {
		dir, err := os.MkdirTemp("", "loadtest-fleet-")
		if err != nil {
			return nil, err
		}
		f.workDir = dir
		f.ownDir = true
	}

	// Reserve a loopback port per node, then release them for the daemons
	// to bind: every node must know the full address set before any node
	// exists (the ring is part of each node's configuration).
	addrs := make([]string, opt.N)
	urls := make([]string, opt.N)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		urls[i] = "http://" + addrs[i]
		ln.Close()
	}

	for i := 0; i < opt.N; i++ {
		var others []string
		for j, u := range urls {
			if j != i {
				others = append(others, u)
			}
		}
		cacheDir := filepath.Join(f.workDir, fmt.Sprintf("node%d-cache", i))
		args := []string{
			"-addr", addrs[i],
			"-self", urls[i],
			"-peers", strings.Join(others, ","),
			"-cache-dir", cacheDir,
			"-concurrency", strconv.Itoa(opt.Concurrency),
			"-queue-depth", strconv.Itoa(opt.QueueDepth),
			"-health-interval", opt.HealthInterval.String(),
		}
		if len(opt.CachePeers) > 0 {
			args = append(args, "-cache-peers", strings.Join(opt.CachePeers, ","))
		}
		node := &Node{URL: urls[i], Addr: addrs[i], CacheDir: cacheDir}
		node.cmd = exec.Command(opt.Bin, args...)
		stdout, err := node.cmd.StdoutPipe()
		if err != nil {
			f.Close()
			return nil, err
		}
		node.cmd.Stderr = node.cmd.Stdout
		if err := node.cmd.Start(); err != nil {
			f.Close()
			return nil, err
		}
		f.Nodes = append(f.Nodes, node)

		ready := make(chan error, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			announced := false
			for sc.Scan() {
				node.logM.Lock()
				node.log.WriteString(sc.Text() + "\n")
				node.logM.Unlock()
				if !announced && strings.HasPrefix(sc.Text(), "listening on ") {
					announced = true
					ready <- nil
				}
			}
			if !announced {
				ready <- fmt.Errorf("node %s exited before announcing: %v", node.Addr, sc.Err())
			}
		}()
		select {
		case err := <-ready:
			if err != nil {
				err = fmt.Errorf("loadtest: %w\n%s", err, node.Log())
				f.Close()
				return nil, err
			}
		case <-time.After(15 * time.Second):
			f.Close()
			return nil, fmt.Errorf("loadtest: node %s never announced its listener\n%s", node.Addr, node.Log())
		}
	}
	return f, nil
}

// Kill hard-kills node i (SIGKILL — the crash case, not a drain).
func (f *Fleet) Kill(i int) {
	n := f.Nodes[i]
	n.mu.Lock()
	if !n.dead {
		n.dead = true
		n.cmd.Process.Kill()
	}
	n.mu.Unlock()
	n.cmd.Wait()
}

// AliveURLs returns the base URLs of the nodes the harness has not
// killed.
func (f *Fleet) AliveURLs() []string {
	var out []string
	for _, n := range f.Nodes {
		if n.Alive() {
			out = append(out, n.URL)
		}
	}
	return out
}

// Close tears the fleet down (SIGKILL; fleet state is disposable) and
// removes the work dir if the harness created it.
func (f *Fleet) Close() {
	for i := range f.Nodes {
		f.Kill(i)
	}
	if f.ownDir {
		os.RemoveAll(f.workDir)
	}
}

// jobStatus mirrors the daemon's job-state JSON; the harness speaks the
// wire format rather than importing the service types, so it would catch
// an accidental API break.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

var client = &http.Client{Timeout: 30 * time.Second}

// submit posts doc to base and returns the admitted job, or the HTTP
// status on rejection.
func submit(base string, doc Doc) (jobStatus, int, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(doc.Body))
	if err != nil {
		return jobStatus{}, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return jobStatus{}, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return jobStatus{}, resp.StatusCode, fmt.Errorf("submit %s: status %d: %s", doc.Name, resp.StatusCode, body)
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return jobStatus{}, resp.StatusCode, err
	}
	return st, resp.StatusCode, nil
}

// pollDone polls base for id until the job is terminal.
func pollDone(ctx context.Context, base, id string) (jobStatus, error) {
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return jobStatus{}, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return jobStatus{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return jobStatus{}, fmt.Errorf("poll %s: status %d: %s", id, resp.StatusCode, body)
		}
		var st jobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return jobStatus{}, err
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(15 * time.Millisecond):
		}
	}
}

// fetchResult returns the raw served synthesis document for a done job.
func fetchResult(base, id string) ([]byte, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result %s: status %d: %s", id, resp.StatusCode, body)
	}
	return body, nil
}

// cancel requests cancellation of id via base; errors are the caller's to
// interpret (a cancel racing completion is fine).
func cancel(base, id string) error {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// ScrapeCounters fetches base's /metrics and returns the obs counters and
// gauges by slash-path name.
func ScrapeCounters(base string) (counters, gauges map[string]int64, err error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	counters = map[string]int64{}
	gauges = map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		var into map[string]int64
		var rest string
		switch {
		case strings.HasPrefix(line, `asyncsynth_counter_total{name="`):
			into, rest = counters, line[len(`asyncsynth_counter_total{name="`):]
		case strings.HasPrefix(line, `asyncsynth_gauge{name="`):
			into, rest = gauges, line[len(`asyncsynth_gauge{name="`):]
		default:
			continue
		}
		end := strings.Index(rest, `"`)
		if end < 0 {
			continue
		}
		name := rest[:end]
		v, perr := strconv.ParseInt(strings.TrimSpace(rest[end+2:]), 10, 64)
		if perr != nil {
			continue
		}
		into[name] = v
	}
	return counters, gauges, sc.Err()
}

// RunOptions shapes one load run.
type RunOptions struct {
	// Jobs is the total number of submissions (default 2x the corpus).
	Jobs int
	// Clients is the number of concurrent submitters (default 4).
	Clients int
	// CancelEvery, when positive, turns every CancelEvery-th job into a
	// cancellation-storm probe: submitted, then immediately cancelled.
	CancelEvery int
	// KillAfter, when positive, SIGKILLs node KillNode once that many jobs
	// have completed — the mid-run crash.
	KillAfter int
	KillNode  int
	// JobTimeout bounds one job end to end (default 2 minutes).
	JobTimeout time.Duration
	// CrossVerify adds a final phase that re-runs each document on a node
	// that does NOT own it (the forward header pins execution locally):
	// the non-owner's memo cache must fill over the remote tier from
	// whichever peer solved the document, and the re-served bytes must
	// still match the direct run. This is what makes cross-node cache
	// hits (memo/remote/hits) deterministically observable.
	CrossVerify bool
}

// Report is the outcome of one load run; scripts/loadgen emits it as
// JSON.
type Report struct {
	Jobs         int `json:"jobs"`
	Done         int `json:"done"`
	Cancelled    int `json:"cancelled"`
	Mismatches   int `json:"mismatches"`
	Errors       int `json:"errors"`
	Backpressure int `json:"backpressure_429"`
	Resubmits    int `json:"resubmits"`

	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`

	MaxQueueDepth int64 `json:"max_queue_depth"`
	RemoteHits    int64 `json:"remote_hits"`
	RemoteCorrupt int64 `json:"remote_corrupt"`
	Forwarded     int64 `json:"forwarded"`
	Fallbacks     int64 `json:"forward_fallbacks"`
	DedupHits     int64 `json:"dedup_hits"`

	CrossVerified int `json:"cross_verified"`

	ElapsedMs float64  `json:"elapsed_ms"`
	ErrorLog  []string `json:"error_log,omitempty"`
}

// ownerOf returns the fleet node that owns doc under the current alive
// view — the same ring computation the nodes themselves route by.
func ownerOf(f *Fleet, doc Doc) (string, error) {
	g, err := codec.DecodeGraph(doc.Body)
	if err != nil {
		return "", err
	}
	key, _, err := service.ContentKey(g, core.DefaultOptions().Level, service.ModeSynth)
	if err != nil {
		return "", err
	}
	var urls []string
	for _, n := range f.Nodes {
		urls = append(urls, n.URL)
	}
	alive := map[string]bool{}
	for _, u := range f.AliveURLs() {
		alive[u] = true
	}
	return fleet.NewRing(urls, 0).OwnerAlive(key, func(n string) bool { return alive[n] }), nil
}

// submitForced posts doc with the fleet forward header set, pinning
// execution to base rather than the ring owner.
func submitForced(base string, doc Doc) (jobStatus, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(doc.Body))
	if err != nil {
		return jobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.ForwardHeader, "loadtest-cross-verify")
	resp, err := client.Do(req)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return jobStatus{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return jobStatus{}, fmt.Errorf("forced submit %s via %s: status %d: %s", doc.Name, base, resp.StatusCode, body)
	}
	var st jobStatus
	err = json.Unmarshal(body, &st)
	return st, err
}

// Run drives the fleet with docs under opt and verifies every served
// document against its reference bytes. Jobs stranded on a killed node
// are resubmitted once to a survivor; only genuine failures (a job that
// cannot be completed anywhere, or a served document that differs from
// the direct run) count against the report.
func Run(f *Fleet, docs []Doc, opt RunOptions) *Report {
	if opt.Jobs <= 0 {
		opt.Jobs = 2 * len(docs)
	}
	if opt.Clients <= 0 {
		opt.Clients = 4
	}
	if opt.JobTimeout <= 0 {
		opt.JobTimeout = 2 * time.Minute
	}
	rep := &Report{Jobs: opt.Jobs}
	var mu sync.Mutex
	var latencies []time.Duration
	completed := 0
	var killOnce sync.Once

	// Queue-depth sampler: the overload signal is the highwater of the
	// service/jobs_queued gauge across the fleet during the run.
	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		for {
			select {
			case <-stopSample:
				return
			case <-time.After(50 * time.Millisecond):
			}
			for _, u := range f.AliveURLs() {
				if _, gauges, err := ScrapeCounters(u); err == nil {
					if d := gauges["service/jobs_queued"]; d > rep.MaxQueueDepth {
						mu.Lock()
						if d > rep.MaxQueueDepth {
							rep.MaxQueueDepth = d
						}
						mu.Unlock()
					}
				}
			}
		}
	}()

	fail := func(format string, args ...interface{}) {
		mu.Lock()
		rep.Errors++
		if len(rep.ErrorLog) < 32 {
			rep.ErrorLog = append(rep.ErrorLog, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	// runOne pushes one job through the fleet, resubmitting elsewhere if
	// the serving node dies underneath it.
	runOne := func(i int) {
		doc := docs[i%len(docs)]
		storm := opt.CancelEvery > 0 && i%opt.CancelEvery == opt.CancelEvery-1
		ctx, cancelCtx := context.WithTimeout(context.Background(), opt.JobTimeout)
		defer cancelCtx()
		start := time.Now()
		attempts := 0
		for {
			alive := f.AliveURLs()
			if len(alive) == 0 {
				fail("job %d (%s): no nodes left alive", i, doc.Name)
				return
			}
			base := alive[(i+attempts)%len(alive)]
			attempts++
			if attempts > 2*len(f.Nodes)+4 {
				fail("job %d (%s): exhausted submit attempts", i, doc.Name)
				return
			}
			st, status, err := submit(base, doc)
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				mu.Lock()
				rep.Backpressure++
				mu.Unlock()
				select {
				case <-ctx.Done():
					fail("job %d (%s): timed out in backpressure", i, doc.Name)
					return
				case <-time.After(100 * time.Millisecond):
				}
				continue
			}
			if err != nil {
				// Transport failure (e.g. the node was just killed): try the
				// next node.
				mu.Lock()
				rep.Resubmits++
				mu.Unlock()
				continue
			}
			if storm {
				cancel(base, st.ID)
				if _, err := pollDone(ctx, base, st.ID); err != nil {
					mu.Lock()
					rep.Resubmits++
					mu.Unlock()
					continue
				}
				mu.Lock()
				rep.Cancelled++
				mu.Unlock()
				return
			}
			final, err := pollDone(ctx, base, st.ID)
			if err != nil {
				mu.Lock()
				rep.Resubmits++
				mu.Unlock()
				continue // node died mid-job; resubmit elsewhere
			}
			if final.State != "done" {
				fail("job %d (%s): state %s: %s", i, doc.Name, final.State, final.Error)
				return
			}
			served, err := fetchResult(base, st.ID)
			if err != nil {
				mu.Lock()
				rep.Resubmits++
				mu.Unlock()
				continue
			}
			mu.Lock()
			if !bytes.Equal(served, doc.Want) {
				rep.Mismatches++
				if len(rep.ErrorLog) < 32 {
					rep.ErrorLog = append(rep.ErrorLog, fmt.Sprintf("job %d (%s): served document differs from direct run", i, doc.Name))
				}
			}
			rep.Done++
			latencies = append(latencies, time.Since(start))
			completed++
			reached := completed
			mu.Unlock()
			if opt.KillAfter > 0 && reached >= opt.KillAfter {
				killOnce.Do(func() { f.Kill(opt.KillNode) })
			}
			return
		}
	}

	startAll := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runOne(i)
			}
		}()
	}
	for i := 0; i < opt.Jobs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// Cross-verify phase: force a local re-run of each document on a node
	// that does not own it, so every served-from-remote-fill document is
	// re-checked against the reference bytes.
	if opt.CrossVerify {
		for _, doc := range docs {
			owner, err := ownerOf(f, doc)
			if err != nil {
				fail("cross-verify %s: %v", doc.Name, err)
				continue
			}
			verifier := ""
			for _, u := range f.AliveURLs() {
				if u != owner {
					verifier = u
					break
				}
			}
			if verifier == "" {
				continue // one-node fleet remnant: nothing to cross-check
			}
			st, err := submitForced(verifier, doc)
			if err != nil {
				fail("cross-verify %s: %v", doc.Name, err)
				continue
			}
			ctx, cancelCtx := context.WithTimeout(context.Background(), opt.JobTimeout)
			final, err := pollDone(ctx, verifier, st.ID)
			cancelCtx()
			if err != nil || final.State != "done" {
				fail("cross-verify %s: state %s err %v", doc.Name, final.State, err)
				continue
			}
			served, err := fetchResult(verifier, st.ID)
			if err != nil {
				fail("cross-verify %s: %v", doc.Name, err)
				continue
			}
			mu.Lock()
			if !bytes.Equal(served, doc.Want) {
				rep.Mismatches++
				if len(rep.ErrorLog) < 32 {
					rep.ErrorLog = append(rep.ErrorLog, fmt.Sprintf("cross-verify %s: served document differs from direct run", doc.Name))
				}
			}
			rep.CrossVerified++
			mu.Unlock()
		}
	}

	close(stopSample)
	sampleWG.Wait()
	rep.ElapsedMs = float64(time.Since(startAll).Microseconds()) / 1000

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50Ms = percentileMs(latencies, 0.50)
	rep.P95Ms = percentileMs(latencies, 0.95)
	rep.P99Ms = percentileMs(latencies, 0.99)

	// Fold the surviving nodes' counters into the report.
	for _, u := range f.AliveURLs() {
		counters, _, err := ScrapeCounters(u)
		if err != nil {
			continue
		}
		rep.RemoteHits += counters["memo/remote/hits"]
		rep.RemoteCorrupt += counters["memo/remote/corrupt"]
		rep.Forwarded += counters["fleet/forwarded"]
		rep.Fallbacks += counters["fleet/forward_fallbacks"]
		rep.DedupHits += counters["service/dedup_hits"]
	}
	return rep
}

// percentileMs returns the q-quantile of sorted latencies in
// milliseconds (nearest-rank).
func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds()) / 1000
}
