package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// daemonBin is the asyncsynthd binary shared by every test in this
// package; built once in TestMain (skipped under -short, which skips
// every test here anyway).
var daemonBin string

func TestMain(m *testing.M) {
	flag.Parse()
	code := func() int {
		if !testing.Short() {
			dir, err := os.MkdirTemp("", "loadtest-bin-")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			defer os.RemoveAll(dir)
			daemonBin, err = BuildDaemon(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return m.Run()
	}()
	os.Exit(code)
}

// dumpLogs attaches every node's captured output to a failing test.
func dumpLogs(t *testing.T, f *Fleet) {
	t.Helper()
	if !t.Failed() {
		return
	}
	for i, n := range f.Nodes {
		t.Logf("--- node %d (%s) ---\n%s", i, n.Addr, n.Log())
	}
}

// TestFleetSmoke is the 3-node scenario scripts/verify.sh mirrors:
// submit via one node, read the identical result back from every node,
// kill the node that owns the job, and verify a resubmission through a
// survivor still serves the bit-identical document.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a daemon fleet")
	}
	f, err := StartFleet(FleetOptions{Bin: daemonBin, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer dumpLogs(t, f)

	docs, err := Workload(0)
	if err != nil {
		t.Fatal(err)
	}
	var doc Doc
	for _, d := range docs {
		if d.Name == "diffeq" {
			doc = d
		}
	}
	if doc.Name == "" {
		t.Fatal("diffeq missing from the workload")
	}

	st, _, err := submit(f.Nodes[0].URL, doc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), time.Minute)
	defer cancelCtx()
	// Poll through a different node than we submitted to: job IDs route
	// across the fleet.
	final, err := pollDone(ctx, f.Nodes[1].URL, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("job state %s: %s", final.State, final.Error)
	}
	for i, n := range f.Nodes {
		served, err := fetchResult(n.URL, st.ID)
		if err != nil {
			t.Fatalf("result via node %d: %v", i, err)
		}
		if !bytes.Equal(served, doc.Want) {
			t.Fatalf("node %d served a document differing from the direct run", i)
		}
	}

	// Kill the node the job ran on; a resubmission through a survivor
	// must still complete and serve identical bytes.
	ownerIdx := -1
	for i, n := range f.Nodes {
		if strings.HasSuffix(st.ID, "@"+n.Addr) {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("job ID %q names no fleet node", st.ID)
	}
	f.Kill(ownerIdx)
	survivor := f.Nodes[(ownerIdx+1)%3].URL
	deadline := time.Now().Add(time.Minute)
	var st2 jobStatus
	for {
		if st2, _, err = submit(survivor, doc); err == nil {
			break
		}
		// The survivor may still be forwarding to the corpse until its
		// health view catches up; retry until the fleet degrades.
		if time.Now().After(deadline) {
			t.Fatalf("survivor never accepted the resubmission: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	final, err = pollDone(ctx, survivor, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("post-kill job state %s: %s", final.State, final.Error)
	}
	served, err := fetchResult(survivor, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, doc.Want) {
		t.Fatal("post-kill document differs from the direct run")
	}
}

// TestFleetSustainedLoad is the acceptance run: a 3-node fleet under
// concurrent load from the benchmark + gen corpus, with a corrupt and an
// intermittently-stalling cache peer injected, one node SIGKILLed
// mid-run and a cancellation storm mixed in. Every served document must
// be bit-identical to the direct single-process run, and the fleet's own
// counters must show cross-node cache hits and rejected corrupt
// payloads.
func TestFleetSustainedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a daemon fleet under load")
	}
	corrupt, err := StartByzantineCache(Corrupt)
	if err != nil {
		t.Fatal(err)
	}
	defer corrupt.Close()
	slow, err := StartByzantineCache(Slow)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	f, err := StartFleet(FleetOptions{
		Bin:        daemonBin,
		N:          3,
		QueueDepth: 4,
		CachePeers: []string{slow.URL, corrupt.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer dumpLogs(t, f)

	docs, err := Workload(3)
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(f, docs, RunOptions{
		Jobs:        3 * len(docs),
		Clients:     6,
		CancelEvery: 6,
		KillAfter:   len(docs),
		KillNode:    2,
		CrossVerify: true,
	})
	if out, err := json.MarshalIndent(rep, "", "  "); err == nil {
		t.Logf("report:\n%s", out)
	}

	if rep.Mismatches != 0 {
		t.Errorf("%d served documents differ from their direct runs", rep.Mismatches)
	}
	if rep.Errors != 0 {
		t.Errorf("%d jobs failed outright: %v", rep.Errors, rep.ErrorLog)
	}
	if got := rep.Done + rep.Cancelled; got != rep.Jobs {
		t.Errorf("accounted jobs = %d (done %d + cancelled %d), want %d",
			got, rep.Done, rep.Cancelled, rep.Jobs)
	}
	if rep.Cancelled == 0 {
		t.Error("cancellation storm never landed a cancel")
	}
	if rep.CrossVerified == 0 {
		t.Error("cross-verify phase checked nothing")
	}
	if rep.RemoteHits == 0 {
		t.Error("no cross-node remote cache hits observed (memo/remote/hits)")
	}
	if rep.RemoteCorrupt == 0 {
		t.Error("corrupt cache peer payloads were never rejected (memo/remote/corrupt)")
	}
	if corrupt.Requests() == 0 || slow.Requests() == 0 {
		t.Errorf("fault peers never consulted (corrupt %d, slow %d)", corrupt.Requests(), slow.Requests())
	}
	if f.Nodes[2].Alive() {
		t.Error("kill-mid-run never fired")
	}
	if rep.Done > 0 && rep.P50Ms <= 0 {
		t.Error("latency percentiles missing")
	}
}
