package loadtest

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// ByzantineMode selects how a fault-injection cache peer misbehaves.
type ByzantineMode string

// Fault modes for StartByzantineCache.
const (
	// Corrupt answers every cache lookup 200 with garbage bytes — the
	// memo layer must reject them and recompute.
	Corrupt ByzantineMode = "corrupt"
	// Slow stalls every third cache lookup well past the client's
	// per-peer timeout before answering (and fast-misses the rest) — the
	// stalled lookups must be abandoned without stalling the solve.
	Slow ByzantineMode = "slow"
)

// ByzantineCache is a misbehaving cache-only peer for fault injection:
// point a node's -cache-peers at URL and every remote fill consults it.
// It reports healthy on /healthz so health checking never saves the
// client from it — the memo layer's validation and timeouts must.
type ByzantineCache struct {
	URL  string
	mode ByzantineMode
	srv  *http.Server
	hits atomic.Int64
}

// StartByzantineCache serves the fault peer on a loopback port.
func StartByzantineCache(mode ByzantineMode) (*ByzantineCache, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	b := &ByzantineCache{URL: "http://" + ln.Addr().String(), mode: mode}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		n := b.hits.Add(1)
		switch mode {
		case Slow:
			if n%3 == 0 {
				select {
				case <-time.After(5 * time.Second):
				case <-r.Context().Done():
					return
				}
			}
			http.NotFound(w, r)
		default: // Corrupt
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"salt":"not-a-memo-record","cover":"garbage`))
		}
	})
	b.srv = &http.Server{Handler: mux}
	go b.srv.Serve(ln)
	return b, nil
}

// Requests returns how many cache lookups reached the fault peer.
func (b *ByzantineCache) Requests() int64 { return b.hits.Load() }

// Close shuts the fault peer down.
func (b *ByzantineCache) Close() { b.srv.Close() }
