package local

import (
	"strings"
	"testing"

	"repro/internal/bm"
	"repro/internal/diffeq"
	"repro/internal/extract"
	"repro/internal/transform"
)

// fragmentMachine builds a representative single-fragment controller with
// the full six-stage micro-operation expansion.
func fragmentMachine() *bm.Machine {
	m := bm.NewMachine("frag")
	for _, in := range []string{"w9_X", "selA_Y_a", "go_add_a", "ws_A_a", "wr_A_a"} {
		m.AddInput(in)
	}
	for _, out := range []string{"selA_Y", "go_add", "ws_A", "wr_A", "w5_Z"} {
		m.AddOutput(out)
	}
	s := make([]bm.StateID, 7)
	for i := range s {
		s[i] = m.NewState("")
	}
	m.Init = s[0]
	ev := func(sig string, e bm.Edge) bm.Event { return bm.Event{Signal: sig, Edge: e} }
	m.AddTransition(&bm.Transition{From: s[0], To: s[1], In: []bm.Event{ev("w9_X", bm.Toggle)}, Out: []bm.Event{ev("selA_Y", bm.Rise)}, Label: "(i)"})
	m.AddTransition(&bm.Transition{From: s[1], To: s[2], In: []bm.Event{ev("selA_Y_a", bm.Rise)}, Out: []bm.Event{ev("go_add", bm.Rise)}, Label: "(ii)"})
	m.AddTransition(&bm.Transition{From: s[2], To: s[3], In: []bm.Event{ev("go_add_a", bm.Rise)}, Out: []bm.Event{ev("ws_A", bm.Rise)}, Label: "(iii)"})
	m.AddTransition(&bm.Transition{From: s[3], To: s[4], In: []bm.Event{ev("ws_A_a", bm.Rise)}, Out: []bm.Event{ev("wr_A", bm.Rise)}, Label: "(iv)"})
	m.AddTransition(&bm.Transition{From: s[4], To: s[5], In: []bm.Event{ev("wr_A_a", bm.Rise)}, Out: []bm.Event{ev("selA_Y", bm.Fall), ev("go_add", bm.Fall), ev("ws_A", bm.Fall), ev("wr_A", bm.Fall)}, Label: "(v)"})
	m.AddTransition(&bm.Transition{From: s[5], To: s[0], In: []bm.Event{ev("selA_Y_a", bm.Fall), ev("go_add_a", bm.Fall), ev("ws_A_a", bm.Fall), ev("wr_A_a", bm.Fall)}, Out: []bm.Event{ev("w5_Z", bm.Toggle)}, Label: "(vi)"})
	return m
}

func TestRemoveAcksCollapsesStages(t *testing.T) {
	m := fragmentMachine()
	before := m.NumTransitions()
	rep := &Report{Machine: m.Name, SharedWires: map[string][]string{}}
	RemoveAcks(m, rep)
	MergeTriggerless(m, rep)
	if m.NumTransitions() >= before {
		t.Errorf("transitions %d not reduced from %d", m.NumTransitions(), before)
	}
	// Mux and register-mux ack waits must be gone.
	for _, tr := range m.Transitions {
		for _, e := range tr.In {
			if e.Signal == "selA_Y_a" || e.Signal == "ws_A_a" {
				t.Errorf("removed ack still waited on: %s", e.Signal)
			}
		}
	}
	if len(rep.Assumptions) == 0 {
		t.Error("LT4 must record timing assumptions")
	}
}

func TestMoveUpDones(t *testing.T) {
	m := fragmentMachine()
	rep := &Report{Machine: m.Name, SharedWires: map[string][]string{}}
	RemoveAcks(m, rep)
	MergeTriggerless(m, rep)
	MoveUpDones(m, rep)
	// The done event w5_Z must now ride the latch transition (the one
	// emitting wr_A+).
	found := false
	for _, tr := range m.Transitions {
		if tr.HasOutput("w5_Z") {
			if !hostsLatch(tr) {
				t.Errorf("done on non-latch transition: %s", tr)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("done event lost")
	}
}

func TestOptimizeFullPipeline(t *testing.T) {
	m := fragmentMachine()
	before := m.NumStates()
	rep, err := Optimize(m)
	if err != nil {
		t.Fatalf("%v\n%s", err, m)
	}
	if m.NumStates() >= before {
		t.Errorf("states %d not reduced from %d", m.NumStates(), before)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = rep
}

func TestShareSignals(t *testing.T) {
	// Two outputs with identical occurrence patterns must merge.
	m := bm.NewMachine("share")
	m.AddInput("a")
	m.AddOutput("x")
	m.AddOutput("y")
	s0, s1 := m.NewState(""), m.NewState("")
	m.Init = s0
	m.AddTransition(&bm.Transition{From: s0, To: s1, In: []bm.Event{{Signal: "a", Edge: bm.Rise}},
		Out: []bm.Event{{Signal: "x", Edge: bm.Rise}, {Signal: "y", Edge: bm.Rise}}})
	m.AddTransition(&bm.Transition{From: s1, To: s0, In: []bm.Event{{Signal: "a", Edge: bm.Fall}},
		Out: []bm.Event{{Signal: "x", Edge: bm.Fall}, {Signal: "y", Edge: bm.Fall}}})
	rep := &Report{Machine: m.Name, SharedWires: map[string][]string{}}
	ShareSignals(m, rep)
	if len(m.Outputs) != 1 {
		t.Fatalf("outputs = %v, want one shared wire", m.Outputs)
	}
	if got := rep.SharedWires["x"]; len(got) != 1 || got[0] != "y" {
		t.Errorf("shared map = %v", rep.SharedWires)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShareSignalsKeepsWiresDistinct(t *testing.T) {
	m := bm.NewMachine("wires")
	m.AddInput("a")
	m.AddOutput("w1_F")
	m.AddOutput("w2_F")
	s0, s1 := m.NewState(""), m.NewState("")
	m.Init = s0
	m.AddTransition(&bm.Transition{From: s0, To: s1, In: []bm.Event{{Signal: "a", Edge: bm.Rise}},
		Out: []bm.Event{{Signal: "w1_F", Edge: bm.Rise}, {Signal: "w2_F", Edge: bm.Rise}}})
	m.AddTransition(&bm.Transition{From: s1, To: s0, In: []bm.Event{{Signal: "a", Edge: bm.Fall}},
		Out: []bm.Event{{Signal: "w1_F", Edge: bm.Fall}, {Signal: "w2_F", Edge: bm.Fall}}})
	rep := &Report{Machine: m.Name, SharedWires: map[string][]string{}}
	ShareSignals(m, rep)
	if len(m.Outputs) != 2 {
		t.Errorf("global wires must never share: %v", m.Outputs)
	}
}

func TestMoveDown(t *testing.T) {
	m := fragmentMachine()
	rep := &Report{Machine: m.Name, SharedWires: map[string][]string{}}
	// Move the ws_A fall from stage (v) to stage (vi).
	var stage5 *bm.Transition
	for _, tr := range m.Transitions {
		if tr.Label == "(v)" {
			stage5 = tr
		}
	}
	if !MoveDown(m, stage5, "ws_A", rep) {
		t.Fatal("move-down refused")
	}
	if stage5.HasOutput("ws_A") {
		t.Error("ws_A still on stage (v)")
	}
	var stage6 *bm.Transition
	for _, tr := range m.Transitions {
		if tr.Label == "(vi)" {
			stage6 = tr
		}
	}
	if !stage6.HasOutput("ws_A") {
		t.Error("ws_A not moved to stage (vi)")
	}
}

func TestOptimizeDiffeqMachines(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	plan, _, err := transform.OptimizeGT(g, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := extract.Extract(g, plan, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	totalBefore, totalAfter := 0, 0
	for fu, m := range res.Machines {
		before := m.NumStates()
		rep, err := Optimize(m)
		if err != nil {
			t.Fatalf("%s: %v", fu, err)
		}
		t.Logf("%s: %d → %d states, %d → ... transitions; %d assumptions",
			fu, before, m.NumStates(), m.NumTransitions(), len(rep.Assumptions))
		totalBefore += before
		totalAfter += m.NumStates()
	}
	// The paper's optimized-GT → optimized-GT-and-LT step shrinks the
	// machines by roughly half; require a substantial reduction.
	if totalAfter*3 > totalBefore*2 {
		t.Errorf("LT reduction too weak: %d → %d states", totalBefore, totalAfter)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{Machine: "X", SharedWires: map[string][]string{}}
	rep.note("did %s", "thing")
	rep.assume("needs %s", "slack")
	if len(rep.Moves) != 1 || len(rep.Assumptions) != 1 {
		t.Error("report recording broken")
	}
	if !strings.Contains(rep.Moves[0], "thing") {
		t.Error("note formatting broken")
	}
}
