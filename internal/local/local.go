// Package local implements the paper's local transformations (§5) on
// extracted burst-mode controllers: LT1 move-up, LT2 move-down, LT3 mux
// pre-selection, LT4 acknowledgment removal, LT5 signal sharing. They
// optimize the controller–datapath protocol for speed and area after the
// global interaction is fixed.
//
// Several transforms rest on local timing assumptions (the paper's
// user-supplied timing information); every assumption taken is recorded in
// the returned report.
package local

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bm"
	"repro/internal/obs"
)

// Report records the local transformations applied to one machine.
type Report struct {
	Machine     string
	Moves       []string
	Assumptions []string
	SharedWires map[string][]string // surviving signal → signals folded into it
}

func (r *Report) note(format string, args ...interface{}) {
	r.Moves = append(r.Moves, fmt.Sprintf(format, args...))
}

func (r *Report) assume(format string, args ...interface{}) {
	r.Assumptions = append(r.Assumptions, fmt.Sprintf(format, args...))
}

// Config selects which local transforms run on a machine, and in which
// order, so a rewrite search can toggle each decision independently. LT2's
// reset move-down is inherent in the merged reset burst that LT4 produces,
// so it rides the LT4 toggle rather than having one of its own; likewise
// the return-to-zero wait restoration is a correctness repair for LT4, not
// an independent choice.
type Config struct {
	LT1 bool // move done events up to the latch
	LT3 bool // mux pre-selection
	LT4 bool // acknowledgment removal (with merge + return-to-zero repair)
	LT5 bool // signal sharing
	// PreselectFirst reorders the pipeline to run LT3 before LT1. The
	// default order (LT1 first) lets pre-selection see the merged bursts.
	PreselectFirst bool
}

// FullConfig enables every local transform in the default order.
func FullConfig() Config { return Config{LT1: true, LT3: true, LT4: true, LT5: true} }

// Key renders the config as a compact stable string ("1345" for the full
// default order, "-" for none, a leading "3<" when LT3 is reordered first).
func (c Config) Key() string {
	var b strings.Builder
	if c.PreselectFirst {
		b.WriteString("3<")
	}
	for _, t := range []struct {
		on bool
		s  string
	}{{c.LT1, "1"}, {c.LT3, "3"}, {c.LT4, "4"}, {c.LT5, "5"}} {
		if t.on {
			b.WriteString(t.s)
		}
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// Optimize applies the full local pipeline to the machine in place:
// LT4 (acknowledgment removal), LT2 (reset move-down is inherent in the
// merged reset burst), LT1 (move done events up to the latch), merge of
// trigger-less transitions, LT3 (mux pre-selection), LT5 (signal sharing).
//
// Each LT runs under an obs span (stage "lt1".."lt5", unit = machine
// name; the triggerless merge carries the reset move-down, so it reports
// as "lt2"), and the per-machine state/transition/input sizes before and
// after the whole pipeline land in lt/<machine>/... gauges — the raw
// material of the paper's Figure 12 rows.
func Optimize(m *bm.Machine) (*Report, error) {
	return OptimizeWith(m, FullConfig())
}

// OptimizeWith runs the subset of local transforms cfg selects, in the
// order it specifies. FullConfig reproduces Optimize exactly; the machine
// is validated afterwards regardless of which transforms ran.
func OptimizeWith(m *bm.Machine, cfg Config) (*Report, error) {
	all := obs.Start("lt", m.Name)
	obs.Set("lt/"+m.Name+"/states_before", int64(m.NumStates()))
	obs.Set("lt/"+m.Name+"/transitions_before", int64(m.NumTransitions()))
	obs.Set("lt/"+m.Name+"/inputs_before", int64(len(m.Inputs)))
	rep := &Report{Machine: m.Name, SharedWires: map[string][]string{}}
	stage := func(name string, f func()) {
		sp := obs.Start(name, m.Name)
		f()
		sp.End()
	}
	lt1 := func() {
		if cfg.LT1 {
			stage("lt1", func() { MoveUpDones(m, rep); MergeTriggerless(m, rep) })
		}
	}
	lt3 := func() {
		if cfg.LT3 {
			stage("lt3", func() { Preselect(m, rep) })
		}
	}
	if cfg.LT4 {
		stage("lt4", func() { RemoveAcks(m, rep) })
		stage("lt2", func() { MergeTriggerless(m, rep) })
	}
	if cfg.PreselectFirst {
		lt3()
	}
	lt1()
	if cfg.LT4 {
		// The repair runs after the merges above expose any reset/re-raise
		// adjacency; it is part of LT4's soundness, never toggled alone.
		stage("lt4", func() { RestoreRZWaits(m, rep) })
	}
	if !cfg.PreselectFirst {
		lt3()
	}
	if cfg.LT5 {
		stage("lt5", func() { ShareSignals(m, rep) })
	}
	err := m.Validate()
	if err != nil {
		err = fmt.Errorf("local: machine %s invalid after optimization: %w", m.Name, err)
	}
	obs.Set("lt/"+m.Name+"/states_after", int64(m.NumStates()))
	obs.Set("lt/"+m.Name+"/transitions_after", int64(m.NumTransitions()))
	obs.Set("lt/"+m.Name+"/inputs_after", int64(len(m.Inputs)))
	obs.Add("lt/moves", int64(len(rep.Moves)))
	obs.Add("lt/assumptions", int64(len(rep.Assumptions)))
	all.EndErr(err)
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// isAck reports whether a signal is a datapath acknowledgment wire.
func isAck(sig string) bool { return strings.HasSuffix(sig, "_a") }

// hasInput reports whether the machine lists sig as an input.
func hasInput(m *bm.Machine, sig string) bool {
	for _, in := range m.Inputs {
		if in == sig {
			return true
		}
	}
	return false
}

// keepAck reports whether the default LT4 policy retains an
// acknowledgment: only the operation-completion (go) and latch-completion
// (wr) acks carry load-bearing delays.
func keepAck(sig string) bool {
	return strings.HasPrefix(sig, "go_") || strings.HasPrefix(sig, "wr_")
}

// RemoveAcks applies LT4: mux-select and register-mux acknowledgments are
// deleted outright, and the falling (return-to-zero) phases of the
// remaining acks are no longer waited on. Both deletions are justified by
// local timing assumptions, which are recorded.
func RemoveAcks(m *bm.Machine, rep *Report) {
	removed := map[string]bool{}
	for _, t := range m.Transitions {
		var kept []bm.Event
		for _, e := range t.In {
			if isAck(e.Signal) && !keepAck(e.Signal) {
				removed[e.Signal] = true
				continue
			}
			if isAck(e.Signal) && e.Edge == bm.Fall {
				removed[e.Signal+" (falling phase)"] = true
				continue
			}
			kept = append(kept, e)
		}
		t.In = kept
	}
	var names []string
	for s := range removed {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		rep.note("LT4: removed acknowledgment wait %s", s)
		rep.assume("LT4: %s settles before the controller depends on it", s)
	}
	// Drop fully-removed ack signals from the input list.
	var inputs []string
	for _, sig := range m.Inputs {
		if isAck(sig) && !keepAck(sig) {
			continue
		}
		inputs = append(inputs, sig)
	}
	m.Inputs = inputs
	// The retained acks now have unobserved falling phases: mark them free
	// wherever they are not consumed, so polarity checking and synthesis
	// treat the level as unknown there.
	for _, sig := range m.Inputs {
		if !isAck(sig) || !keepAck(sig) {
			continue
		}
		for _, t := range m.Transitions {
			if !t.HasInput(sig) {
				t.Free = append(t.Free, sig)
			}
		}
	}
}

// MergeTriggerless folds transitions whose in-burst became empty into
// their predecessors (outputs concatenate), provided no signal would rise
// and fall in the same burst. When the merge is blocked because the
// predecessor resets a line this transition re-raises (consecutive
// operations sharing a request wire), the dropped return-to-zero
// acknowledgment is restored as the trigger: the re-raise must wait for
// the previous handshake to complete.
func MergeTriggerless(m *bm.Machine, rep *Report) {
	for {
		merged := false
		for i, t := range m.Transitions {
			if len(t.In) != 0 || len(t.Cond) != 0 {
				continue
			}
			preds := m.InTransitions(t.From)
			if len(preds) == 0 {
				continue
			}
			if len(m.OutTransitions(t.From)) != 1 {
				continue // a sibling branch also leaves this state
			}
			ok := true
			for _, p := range preds {
				if p == t || burstConflict(p.Out, t.Out) {
					ok = false
					break
				}
			}
			if !ok {
				if repairWithRZ(m, t, preds, rep) {
					merged = true
					break
				}
				continue
			}
			for _, p := range preds {
				p.Out = append(p.Out, t.Out...)
				p.To = t.To
			}
			m.Transitions = append(m.Transitions[:i], m.Transitions[i+1:]...)
			rep.note("merged trigger-less transition into %d predecessor(s)", len(preds))
			merged = true
			break
		}
		if !merged {
			return
		}
	}
}

// repairWithRZ gives a stuck trigger-less transition the falling
// acknowledgment of a request line its predecessor resets and it
// re-raises: the handshake's return-to-zero becomes the trigger again.
func repairWithRZ(m *bm.Machine, t *bm.Transition, preds []*bm.Transition, rep *Report) bool {
	added := false
	for _, e := range t.Out {
		if e.Edge != bm.Rise || isAck(e.Signal) {
			continue
		}
		resetByPred := false
		for _, p := range preds {
			for _, pe := range p.Out {
				if pe.Signal == e.Signal && pe.Edge == bm.Fall {
					resetByPred = true
				}
			}
		}
		if !resetByPred {
			continue
		}
		ack := e.Signal + "_a"
		if t.HasInput(ack) {
			continue
		}
		t.In = append(t.In, bm.Event{Signal: ack, Edge: bm.Fall})
		m.AddInput(ack)
		// Only the falling phase is observed; the rise passes freely.
		for _, other := range m.Transitions {
			if !other.HasInput(ack) {
				other.Free = append(other.Free, ack)
			}
		}
		rep.note("restored return-to-zero wait %s- before re-raising %s", ack, e.Signal)
		added = true
	}
	return added
}

// RestoreRZWaits re-adds the return-to-zero acknowledgment wait wherever
// a transition re-raises a retained request right after a predecessor
// reset it. LT4 drops the falling ack phases on the assumption that the
// handshake settles before the controller depends on it; that assumption
// fails when the reset and the re-raise are back-to-back transitions: if
// the re-raise's own trigger is already satisfied on entry, the gate-level
// controller can observe the previous handshake's acknowledgment still
// high and treat the next wait as complete, latching a stale result. The
// restored wait is the same rule repairWithRZ applies to stuck merges,
// here applied to every transition after merging exposes the adjacency.
func RestoreRZWaits(m *bm.Machine, rep *Report) {
	for _, t := range m.Transitions {
		if t.From == m.Init {
			// The initial state is entered at reset with every ack low; a
			// falling wait there could never be satisfied on that entry.
			// Loop-back re-raises out of the initial state are triggered by
			// fresh completion wires whose latency dwarfs the ack fall.
			continue
		}
		for _, e := range t.Out {
			if e.Edge != bm.Rise || isAck(e.Signal) || !keepAck(e.Signal) {
				continue
			}
			ack := e.Signal + "_a"
			if !hasInput(m, ack) || t.HasInput(ack) {
				continue
			}
			// Every entry path must have just reset the request: on a path
			// where the handshake never ran the ack is low and the falling
			// wait could never be satisfied.
			preds := m.InTransitions(t.From)
			resetByAll := len(preds) > 0
			for _, p := range preds {
				resetByThis := false
				if p != t {
					for _, pe := range p.Out {
						if pe.Signal == e.Signal && pe.Edge == bm.Fall {
							resetByThis = true
						}
					}
				}
				if !resetByThis {
					resetByAll = false
				}
			}
			if !resetByAll {
				continue
			}
			t.In = append(t.In, bm.Event{Signal: ack, Edge: bm.Fall})
			var free []string
			for _, f := range t.Free {
				if f != ack {
					free = append(free, f)
				}
			}
			t.Free = free
			rep.note("LT4: kept return-to-zero wait %s- before re-raising %s", ack, e.Signal)
			rep.assume("LT4: %s falling phase is observed where %s is immediately re-raised", ack, e.Signal)
		}
	}
}

// burstConflict reports whether appending b to a would put two events of
// one signal in a single burst.
func burstConflict(a, b []bm.Event) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Signal == y.Signal {
				return true
			}
		}
	}
	return false
}

// MoveUpDones applies LT1 to global done events: each wire output event
// moves from its fragment's final transition up to the transition that
// issues the register latch (the result is announced in parallel with
// latching, as in the paper's A1M+ example). The move walks one transition
// at a time and stops at conditional branches or burst conflicts.
func MoveUpDones(m *bm.Machine, rep *Report) {
	for {
		moved := false
		for _, t := range m.Transitions {
			if len(t.Cond) > 0 {
				continue
			}
			var wires, rest []bm.Event
			for _, e := range t.Out {
				if bm.IsWire(e.Signal) {
					wires = append(wires, e)
				} else {
					rest = append(rest, e)
				}
			}
			if len(wires) == 0 {
				continue
			}
			if hostsLatch(t) {
				continue // already at the latch transition
			}
			preds := m.InTransitions(t.From)
			if len(preds) != 1 || preds[0] == t {
				continue
			}
			p := preds[0]
			if len(p.Cond) > 0 || !hostsLatch(p) || burstConflict(p.Out, wires) {
				continue
			}
			p.Out = append(p.Out, wires...)
			t.Out = rest
			for _, w := range wires {
				rep.note("LT1: moved done %s up to latch transition", w)
				rep.assume("LT1: %s may be announced in parallel with latching", w)
			}
			moved = true
		}
		if !moved {
			return
		}
	}
}

// hostsLatch reports whether a transition issues a register latch (wr+).
func hostsLatch(t *bm.Transition) bool {
	for _, e := range t.Out {
		if strings.HasPrefix(e.Signal, "wr_") && !isAck(e.Signal) && e.Edge == bm.Rise {
			return true
		}
	}
	return false
}

// Preselect applies LT3: a fragment's input-mux select rises move from its
// first working transition up into the preceding transition (typically the
// previous fragment's reset burst), so the muxes for the next operation
// are selected while the current one finishes.
func Preselect(m *bm.Machine, rep *Report) {
	// Snapshot move candidates before mutating, so moved selections never
	// cascade further up in the same pass.
	type move struct {
		t    *bm.Transition
		sels []bm.Event
		rest []bm.Event
	}
	var moves []move
	for _, t := range m.Transitions {
		var sels, rest []bm.Event
		for _, e := range t.Out {
			if e.Edge == bm.Rise && (strings.HasPrefix(e.Signal, "selA_") || strings.HasPrefix(e.Signal, "selB_")) {
				sels = append(sels, e)
			} else {
				rest = append(rest, e)
			}
		}
		if len(sels) == 0 || len(t.Cond) > 0 {
			continue
		}
		// The fragment must not start at the initial state: nothing
		// precedes the first activation to carry the selection.
		if t.From == m.Init {
			continue
		}
		moves = append(moves, move{t: t, sels: sels, rest: rest})
	}
	for _, mv := range moves {
		preds := m.InTransitions(mv.t.From)
		if len(preds) == 0 {
			continue
		}
		ok := true
		for _, p := range preds {
			if p == mv.t || burstConflict(p.Out, mv.sels) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, p := range preds {
			p.Out = append(p.Out, mv.sels...)
		}
		mv.t.Out = mv.rest
		for _, s := range mv.sels {
			rep.note("LT3: pre-selected %s one transition early", s)
			rep.assume("LT3: datapath tolerates early mux selection of %s", s.Signal)
		}
	}
}

// ShareSignals applies LT5: output signals with identical occurrence
// patterns (same transitions, same edges) merge into one forked wire.
func ShareSignals(m *bm.Machine, rep *Report) {
	// Occurrence signature per output signal.
	sig := map[string]string{}
	for _, out := range m.Outputs {
		var occ []string
		for i, t := range m.Transitions {
			for _, e := range t.Out {
				if e.Signal == out {
					occ = append(occ, fmt.Sprintf("%d%s", i, e.Edge))
				}
			}
		}
		sig[out] = strings.Join(occ, ",")
	}
	groups := map[string][]string{}
	for _, out := range m.Outputs {
		if bm.IsWire(out) {
			continue // global wires stay distinct
		}
		groups[sig[out]] = append(groups[sig[out]], out)
	}
	replace := map[string]string{}
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		sort.Strings(g)
		keep := g[0]
		for _, other := range g[1:] {
			replace[other] = keep
			rep.SharedWires[keep] = append(rep.SharedWires[keep], other)
			rep.note("LT5: %s shares the %s wire", other, keep)
		}
	}
	if len(replace) == 0 {
		return
	}
	for _, t := range m.Transitions {
		var out []bm.Event
		seen := map[string]bool{}
		for _, e := range t.Out {
			if to, ok := replace[e.Signal]; ok {
				e.Signal = to
			}
			key := e.Signal + e.Edge.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, e)
		}
		t.Out = out
	}
	var outputs []string
	for _, o := range m.Outputs {
		if _, gone := replace[o]; !gone {
			outputs = append(outputs, o)
		}
	}
	m.Outputs = outputs
}

// MoveDown applies LT2 generically: it moves an output event from
// transition t to its unique successor, provided no conflict arises. It
// returns whether the move happened.
func MoveDown(m *bm.Machine, t *bm.Transition, signal string, rep *Report) bool {
	var ev *bm.Event
	var rest []bm.Event
	for i := range t.Out {
		if t.Out[i].Signal == signal {
			e := t.Out[i]
			ev = &e
		} else {
			rest = append(rest, t.Out[i])
		}
	}
	if ev == nil {
		return false
	}
	succs := m.OutTransitions(t.To)
	if len(succs) != 1 || succs[0] == t {
		return false
	}
	s := succs[0]
	if burstConflict(s.Out, []bm.Event{*ev}) || s.HasInput(signal) {
		return false
	}
	t.Out = rest
	s.Out = append(s.Out, *ev)
	rep.note("LT2: moved %s%s down one transition", ev.Signal, ev.Edge)
	return true
}
