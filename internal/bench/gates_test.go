package bench

import (
	"testing"

	"repro/internal/core"
)

// TestGateClosureRegistry runs the deepest verification level — the
// minimized two-level covers with state feedback driving the behavioural
// datapath — over every registered benchmark under several randomized
// delay assignments, and checks the golden registers. FIR and AR are the
// regression anchors: both used to mismatch at this level (a dropped
// return-to-zero wait let a re-raised request see the previous handshake's
// stale acknowledgment, and terminal states had no hold requirement in
// the minimization spec).
func TestGateClosureRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("gate-level closure is slow")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			s, err := core.Run(b.Build(), core.DefaultOptions())
			if err != nil {
				t.Fatalf("core.Run: %v", err)
			}
			results, err := s.SynthesizeLogic()
			if err != nil {
				t.Fatalf("SynthesizeLogic: %v", err)
			}
			want := b.Want()
			for seed := int64(0); seed < 5; seed++ {
				res, err := s.GateSimulate(results, seed)
				if err != nil {
					t.Fatalf("seed %d: GateSimulate: %v", seed, err)
				}
				if len(res.Violations) > 0 {
					t.Fatalf("seed %d: violations: %v", seed, res.Violations)
				}
				for reg, w := range want {
					if res.Regs[reg] != w {
						t.Errorf("seed %d: %s = %v, want %v", seed, reg, res.Regs[reg], w)
					}
				}
			}
		})
	}
}
