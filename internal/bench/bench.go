// Package bench is the stock benchmark registry: one place naming every
// design the tools can run by name — the three hand-built classics
// (DIFFEQ, GCD, FIR) and the two ADL-compiled HLS companions (EWF, AR) —
// so the CLI, the exploration sweep, the benchmark harness and the server
// smoke tests all pick up new benchmarks from a single table.
//
// The ADL entries are compiled on first use from the canonical sources
// embedded in the examples package (examples/ewf.adl, examples/ar.adl);
// their reference register files come from the frontend's sequential
// interpreter, so the registry never hand-duplicates a golden model.
package bench

import (
	"fmt"
	"sort"
	"sync"

	"repro/examples"
	"repro/internal/cdfg"
	"repro/internal/diffeq"
	"repro/internal/fir"
	"repro/internal/frontend"
	"repro/internal/gcd"
)

// Benchmark is one registered design.
type Benchmark struct {
	// Name is the registry key used on CLI command lines.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// FUs lists the functional units in display order.
	FUs []string
	// Build constructs a fresh CDFG (callers own and may mutate it).
	Build func() *cdfg.Graph
	// Want maps register names to the values simulation must reproduce.
	Want func() map[string]float64
	// Source is the embedded .adl path for frontend-compiled entries
	// ("" for the hand-built Go benchmarks).
	Source string
}

var (
	mu       sync.Mutex
	registry map[string]*Benchmark
)

// table builds the registry once. ADL compilation failures panic: the
// embedded sources are covered by tests, so a failure here is a build
// break, not a runtime condition.
func table() map[string]*Benchmark {
	mu.Lock()
	defer mu.Unlock()
	if registry != nil {
		return registry
	}
	registry = map[string]*Benchmark{}
	add := func(b *Benchmark) { registry[b.Name] = b }

	add(&Benchmark{
		Name:        "diffeq",
		Description: "differential equation solver (the paper's case study, HAL benchmark)",
		FUs:         diffeq.FUs,
		Build:       func() *cdfg.Graph { return diffeq.Build(diffeq.DefaultParams()) },
		Want: func() map[string]float64 {
			ref := diffeq.Reference(diffeq.DefaultParams())
			return map[string]float64{"X": ref["X"], "Y": ref["Y"], "U": ref["U"]}
		},
	})
	add(&Benchmark{
		Name:        "gcd",
		Description: "greatest common divisor by repeated subtraction (IF blocks)",
		FUs:         gcd.FUs,
		Build:       func() *cdfg.Graph { return gcd.Build(123, 45) },
		Want: func() map[string]float64 {
			return map[string]float64{"a": gcd.Reference(123, 45)}
		},
	})
	add(&Benchmark{
		Name:        "fir",
		Description: "3-tap FIR filter over a ramp input (assignment-heavy)",
		FUs:         fir.FUs,
		Build:       func() *cdfg.Graph { return fir.Build(fir.DefaultParams()) },
		Want: func() map[string]float64 {
			ref := fir.Reference(fir.DefaultParams())
			return map[string]float64{"s": ref["s"], "i": ref["i"]}
		},
	})
	add(adlBenchmark("ewf", "elliptic wave filter kernel (lattice wave-digital form, ADL source)",
		"ewf.adl", []string{"acc", "s1", "s2", "x", "i"}))
	add(adlBenchmark("ar", "AR lattice filter, second-order synthesis form (ADL source)",
		"ar.adl", []string{"acc", "b0", "b1", "x", "i"}))
	return registry
}

// adlBenchmark builds a registry entry compiled from an embedded .adl
// source; wantRegs names the registers verified against the sequential
// interpreter.
func adlBenchmark(name, desc, source string, wantRegs []string) *Benchmark {
	build := func() *cdfg.Graph {
		src, err := examples.ADL.ReadFile(source)
		if err != nil {
			panic(fmt.Sprintf("bench: embedded source %s: %v", source, err))
		}
		g, err := frontend.Compile("examples/"+source, src)
		if err != nil {
			panic(fmt.Sprintf("bench: compiling %s: %v", source, err))
		}
		return g
	}
	return &Benchmark{
		Name:        name,
		Description: desc,
		FUs:         build().FUs,
		Build:       build,
		Source:      "examples/" + source,
		Want: func() map[string]float64 {
			ref, err := frontend.Interpret(build())
			if err != nil {
				panic(fmt.Sprintf("bench: reference for %s: %v", source, err))
			}
			out := map[string]float64{}
			for _, r := range wantRegs {
				out[r] = ref[r]
			}
			return out
		},
	}
}

// Lookup returns the benchmark registered under name.
func Lookup(name string) (*Benchmark, bool) {
	b, ok := table()[name]
	return b, ok
}

// Names returns every registered benchmark name, sorted.
func Names() []string {
	t := table()
	out := make([]string, 0, len(t))
	for n := range t {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered benchmark in Names order.
func All() []*Benchmark {
	t := table()
	out := make([]*Benchmark, 0, len(t))
	for _, n := range Names() {
		out = append(out, t[n])
	}
	return out
}
