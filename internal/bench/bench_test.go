package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/frontend"
)

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"ar", "diffeq", "ewf", "fir", "gcd"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	for i, b := range All() {
		if b.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, b.Name, want[i])
		}
		if b.Description == "" || len(b.FUs) == 0 {
			t.Errorf("%s: missing description or FUs", b.Name)
		}
		got, ok := Lookup(b.Name)
		if !ok || got != b {
			t.Errorf("Lookup(%s) failed", b.Name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

// Every registered benchmark must build a valid graph whose token-level
// simulation, after the full GT+LT flow, reproduces its golden registers.
func TestBenchmarksFullPipeline(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			g := b.Build()
			if err := g.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			s, err := core.Run(g, core.DefaultOptions())
			if err != nil {
				t.Fatalf("core.Run: %v", err)
			}
			if err := s.Verify(b.Want(), 3); err != nil {
				t.Errorf("verify: %v", err)
			}
		})
	}
}

// The ADL-compiled benchmarks are the acceptance workload for the
// frontend: they must survive every optimization level, not just the
// default flow.
func TestADLBenchmarksAllLevels(t *testing.T) {
	for _, name := range []string{"ewf", "ar"} {
		b, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		for _, level := range []core.Level{core.Unoptimized, core.OptimizedGT, core.OptimizedGTLT} {
			name, level := name, level
			t.Run(name+"/"+level.String(), func(t *testing.T) {
				t.Parallel()
				opt := core.DefaultOptions()
				opt.Level = level
				s, err := core.Run(b.Build(), opt)
				if err != nil {
					t.Fatalf("core.Run: %v", err)
				}
				if err := s.Verify(b.Want(), 3); err != nil {
					t.Errorf("verify: %v", err)
				}
			})
		}
	}
}

// The registry's golden registers for ADL entries must agree with the
// frontend's sequential interpreter run directly on the compiled graph.
func TestADLWantMatchesInterpreter(t *testing.T) {
	for _, name := range []string{"ewf", "ar"} {
		b, _ := Lookup(name)
		ref, err := frontend.Interpret(b.Build())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for reg, w := range b.Want() {
			if ref[reg] != w {
				t.Errorf("%s: %s = %v, interpreter says %v", name, reg, w, ref[reg])
			}
		}
	}
}
