package transform

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/diffeq"
	"repro/internal/sim"
	"repro/internal/timing"
)

func node(t *testing.T, g *cdfg.Graph, label string) *cdfg.Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Label() == label {
			return n
		}
	}
	t.Fatalf("no node %q in:\n%s", label, g)
	return nil
}

func hasArc(g *cdfg.Graph, from, to *cdfg.Node) bool {
	return g.FindArc(from.ID, to.ID) != nil
}

func backwardArcs(g *cdfg.Graph) []*cdfg.Arc {
	var out []*cdfg.Arc
	for _, a := range g.Arcs() {
		if a.Kind == cdfg.ArcBackward {
			out = append(out, a)
		}
	}
	return out
}

// TestGT1GT2Figure3 verifies the paper's Figure 3: after loop parallelism
// and dominated-constraint removal, exactly two backward arcs remain (arcs
// 8 and 9: U:=U-M1 → M1:=U*X1 and U:=U-M1 → M2:=U*dx) and ENDLOOP keeps
// only the scheduling arc from C:=X<a.
func TestGT1GT2Figure3(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	if _, err := LoopParallelism(g); err != nil {
		t.Fatal(err)
	}
	if _, err := RemoveDominated(g); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v\n%s", err, g)
	}

	// ENDLOOP synchronization reduced to the owner's scheduling arc.
	el := node(t, g, "ENDLOOP")
	in := g.In(el.ID)
	if len(in) != 1 {
		t.Errorf("ENDLOOP in-degree = %d, want 1\n%s", len(in), g)
	} else if from := g.Node(in[0].From).Label(); from != "C:=X<a" {
		t.Errorf("ENDLOOP fed by %s, want C:=X<a", from)
	}

	// Exactly the two backward arcs of Figure 3 survive.
	u := node(t, g, "U:=U-M1")
	m1a := node(t, g, "M1:=U*X1")
	m2 := node(t, g, "M2:=U*dx")
	ba := backwardArcs(g)
	if len(ba) != 2 {
		for _, a := range ba {
			t.Logf("backward: %s", describeArc(g, a))
		}
		t.Fatalf("backward arc count = %d, want 2 (arcs 8 and 9)", len(ba))
	}
	want := map[[2]cdfg.NodeID]bool{
		{u.ID, m1a.ID}: true,
		{u.ID, m2.ID}:  true,
	}
	for _, a := range ba {
		if !want[[2]cdfg.NodeID{a.From, a.To}] {
			t.Errorf("unexpected backward arc %s", describeArc(g, a))
		}
	}

	// GT2 removed the dominated arc 5 (LOOP → A := Y+M1).
	loop := node(t, g, "LOOP C")
	a := node(t, g, "A:=Y+M1")
	if hasArc(g, loop, a) {
		t.Error("dominated arc LOOP→A (arc 5) still present")
	}
	// M1a→X1 and M1a→U anti-dependencies are dominated too.
	x1 := node(t, g, "X1:=X")
	if hasArc(g, m1a, x1) {
		t.Error("dominated arc M1a→X1 still present")
	}
	if hasArc(g, m1a, u) {
		t.Error("dominated arc M1a→U still present")
	}
}

// TestGT3Figure4 verifies the relative-timing removal of arc 10 (M2→U)
// while arc 11 (M1b→U) stays.
func TestGT3Figure4(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	mustApply(t, g, LoopParallelism)
	mustApply(t, g, RemoveDominated)
	rep, err := RelativeTiming(g, timing.DefaultModel(), 3)
	if err != nil {
		t.Fatal(err)
	}
	m2 := node(t, g, "M2:=U*dx")
	u := node(t, g, "U:=U-M1")
	m1b := node(t, g, "M1:=A*B")
	if hasArc(g, m2, u) {
		t.Errorf("arc 10 (M2→U) not removed by GT3; report:\n%s", rep)
	}
	if !hasArc(g, m1b, u) {
		t.Error("arc 11 (M1b→U) must remain")
	}
}

// TestGT4MergesYandX1 verifies the paper's GT4 example: Y:=Y+M2 and X1:=X
// merge into one ALU2 node executing in parallel.
func TestGT4MergesYandX1(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	mustApply(t, g, LoopParallelism)
	mustApply(t, g, RemoveDominated)
	before := len(g.Nodes())
	rep, err := MergeAssignments(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) != before-1 {
		t.Fatalf("node count %d, want %d; report:\n%s", len(g.Nodes()), before-1, rep)
	}
	merged := node(t, g, "Y:=Y+M2; X1:=X")
	if merged.FU != "ALU2" || merged.Kind != cdfg.KindOp {
		t.Errorf("merged node FU=%s kind=%v", merged.FU, merged.Kind)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate after merge: %v\n%s", err, g)
	}
}

func mustApply(t *testing.T, g *cdfg.Graph, f func(*cdfg.Graph) (*Report, error)) *Report {
	t.Helper()
	rep, err := f(g)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestGT5Figure5 verifies the headline channel reduction: 10 channels
// before GT5 (Figure 5 left), 5 after, including two multi-way channels
// (Figure 5 right).
func TestGT5Figure5(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	mustApply(t, g, LoopParallelism)
	mustApply(t, g, RemoveDominated)
	if _, err := RelativeTiming(g, timing.DefaultModel(), 3); err != nil {
		t.Fatal(err)
	}
	mustApply(t, g, MergeAssignments)

	plan := BuildChannels(g)
	if plan.Count() != 10 {
		t.Fatalf("channels before GT5 = %d, want 10 (Figure 5 left)\n%s", plan.Count(), plan.Describe())
	}
	plan.Eliminate()
	if plan.Count() != 5 {
		t.Fatalf("channels after GT5 = %d, want 5 (Figure 5 right)\n%s", plan.Count(), plan.Describe())
	}
	if plan.MultiwayCount() != 2 {
		t.Errorf("multi-way channels = %d, want 2\n%s", plan.MultiwayCount(), plan.Describe())
	}
}

// TestPipelineFunctionalEquivalence runs the token simulator after the full
// pipeline under many model-consistent delay assignments: results must
// match the sequential reference, with no wire-safety or race violations.
func TestPipelineFunctionalEquivalence(t *testing.T) {
	p := diffeq.DefaultParams()
	ref := diffeq.Reference(p)
	for seed := int64(0); seed < 20; seed++ {
		g := diffeq.Build(p)
		if _, _, err := OptimizeGT(g, DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		s := sim.NewTokenSim(g, sim.FromModel(timing.DefaultModel(), seed))
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Finished {
			t.Fatalf("seed %d: did not finish", seed)
		}
		for _, r := range []string{"X", "Y", "U"} {
			if math.Abs(res.Regs[r]-ref[r]) > 1e-9 {
				t.Errorf("seed %d: %s = %v, want %v", seed, r, res.Regs[r], ref[r])
			}
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, res.Violations)
		}
	}
}

// TestPipelineStagewiseEquivalence checks functional correctness after each
// individual transform stage.
func TestPipelineStagewiseEquivalence(t *testing.T) {
	p := diffeq.DefaultParams()
	ref := diffeq.Reference(p)
	stages := []struct {
		name  string
		apply func(g *cdfg.Graph) error
	}{
		{"GT1", func(g *cdfg.Graph) error { _, err := LoopParallelism(g); return err }},
		{"GT1+GT2", func(g *cdfg.Graph) error {
			if _, err := LoopParallelism(g); err != nil {
				return err
			}
			_, err := RemoveDominated(g)
			return err
		}},
		{"GT1+GT2+GT4", func(g *cdfg.Graph) error {
			if _, err := LoopParallelism(g); err != nil {
				return err
			}
			if _, err := RemoveDominated(g); err != nil {
				return err
			}
			_, err := MergeAssignments(g)
			return err
		}},
	}
	for _, st := range stages {
		for seed := int64(0); seed < 8; seed++ {
			g := diffeq.Build(p)
			if err := st.apply(g); err != nil {
				t.Fatal(err)
			}
			res, err := sim.NewTokenSim(g, sim.RandomDelays(seed, 1, 40, 0.1, 3)).Run()
			if err != nil {
				t.Fatalf("%s: %v", st.name, err)
			}
			for _, r := range []string{"X", "Y", "U"} {
				if math.Abs(res.Regs[r]-ref[r]) > 1e-9 {
					t.Errorf("%s seed %d: %s = %v, want %v", st.name, seed, r, res.Regs[r], ref[r])
				}
			}
			if len(res.Violations) != 0 {
				t.Fatalf("%s seed %d: violations: %v", st.name, seed, res.Violations)
			}
		}
	}
}

// TestGT1IncreasesParallelism: with slow multipliers, overlapped iterations
// must strictly beat the fully synchronized schedule.
func TestGT1IncreasesParallelism(t *testing.T) {
	p := diffeq.DefaultParams()
	delays := sim.PerFUDelays(map[string]float64{
		"MUL1": 40, "MUL2": 40, "ALU1": 10, "ALU2": 10,
	}, 2, 1)
	base := diffeq.Build(p)
	resBase, err := sim.NewTokenSim(base, delays).Run()
	if err != nil {
		t.Fatal(err)
	}
	opt := diffeq.Build(p)
	mustApply(t, opt, LoopParallelism)
	mustApply(t, opt, RemoveDominated)
	resOpt, err := sim.NewTokenSim(opt, delays).Run()
	if err != nil {
		t.Fatal(err)
	}
	if resOpt.FinishTime >= resBase.FinishTime {
		t.Errorf("GT1 did not speed up: %v >= %v", resOpt.FinishTime, resBase.FinishTime)
	}
}

func TestGT2Idempotent(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	mustApply(t, g, LoopParallelism)
	mustApply(t, g, RemoveDominated)
	rep := mustApply(t, g, RemoveDominated)
	if rep.Changed() {
		t.Errorf("second GT2 pass changed the graph:\n%s", rep)
	}
}

func TestGT5MultiplexExample(t *testing.T) {
	// The paper's Figure 7: two ALU1 nodes and two MUL1 nodes with four
	// inter-unit arcs multiplex down to two channels.
	p := cdfg.NewProgram("fig7", "ALU1", "MUL1")
	p.Init("c", 1)
	p.Loop("ALU1", "c")
	p.Op("MUL1", "m", cdfg.OpMul, "u", "x") // M1 := U*X1
	p.Op("ALU1", "a", cdfg.OpAdd, "y", "m") // A := Y+M1
	p.Op("MUL1", "m", cdfg.OpMul, "a", "b") // M1 := A*B
	p.Op("ALU1", "u", cdfg.OpSub, "u", "m") // U := U-M1
	p.Op("ALU1", "c", cdfg.OpLT, "u", "k")
	p.EndLoop()
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, g, LoopParallelism)
	mustApply(t, g, RemoveDominated)
	plan := BuildChannels(g)
	before := plan.Count()
	plan.Eliminate()
	if plan.Count() >= before {
		t.Fatalf("GT5 did not reduce channels: %d → %d\n%s", before, plan.Count(), plan.Describe())
	}
	if plan.Count() != 2 {
		t.Errorf("channels = %d, want 2 (one per direction)\n%s", plan.Count(), plan.Describe())
	}
}

func TestPlanDescribe(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	plan := BuildChannels(g)
	d := plan.Describe()
	if !strings.Contains(d, "channels") || !strings.Contains(d, "ch0") {
		t.Errorf("Describe output unexpected:\n%s", d)
	}
}

func TestOptimizeGTSkipFlags(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	opt := DefaultOptions()
	opt.SkipGT1, opt.SkipGT2, opt.SkipGT3, opt.SkipGT4, opt.SkipGT5 = true, true, true, true, true
	plan, reports, err := OptimizeGT(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Errorf("reports = %d, want 0 with everything skipped", len(reports))
	}
	if plan.Count() != 15 {
		t.Errorf("unoptimized channels = %d, want 15", plan.Count())
	}
}

func TestRemovalSafeGuards(t *testing.T) {
	g := diffeq.Build(diffeq.DefaultParams())
	for _, a := range g.Arcs() {
		if a.Group == cdfg.GroupRepeat && removalSafe(g, a) {
			t.Error("repeat arc must never be removable")
		}
	}
}

// TestGT52ConcurrencyReduction reproduces the Figure 8 pattern: a direct
// ALU1→ALU2 constraint is replaced by a chain through MUL1 (an existing
// hub), eliminating the direct channel.
func TestGT52ConcurrencyReduction(t *testing.T) {
	p := cdfg.NewProgram("fig8", "ALU1", "MUL1", "ALU2")
	p.Init("c", 1)
	p.Loop("ALU2", "c")
	p.Op("ALU1", "a", cdfg.OpAdd, "u", "v") // source node
	p.Op("MUL1", "m", cdfg.OpMul, "a", "w") // hub: consumes a
	p.Op("ALU2", "z", cdfg.OpAdd, "a", "m") // reads a (direct ALU1→ALU2 arc) and m
	p.Op("ALU2", "c", cdfg.OpLT, "z", "k")
	p.EndLoop()
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, g, LoopParallelism)
	mustApply(t, g, RemoveDominated)
	plan := BuildChannels(g)
	before := plan.Count()
	direct := 0
	for _, ch := range plan.Channels {
		if ch.Sender == "ALU1" && ch.receiverKey() == "ALU2" {
			direct++
		}
	}
	if direct == 0 {
		t.Skip("generator produced no direct ALU1→ALU2 channel (dominated)")
	}
	plan.Eliminate()
	if plan.Count() >= before {
		t.Errorf("GT5 did not reduce channels: %d → %d\n%s", before, plan.Count(), plan.Describe())
	}
	// The paper's outcome: the direct ALU1→ALU2 channel disappears.
	for _, ch := range plan.Channels {
		if ch.Sender == "ALU1" && ch.receiverKey() == "ALU2" {
			t.Logf("direct channel survived (acceptable if the hub route was unsafe):\n%s", plan.Describe())
		}
	}
}

// TestGT53Symmetrization reproduces the Figure 9 pattern: channels
// ALU1→{MUL1,MUL2} and ALU1→{MUL1} become symmetric by a safe added arc
// and multiplex into one multi-way channel.
func TestGT53Symmetrization(t *testing.T) {
	p := cdfg.NewProgram("fig9", "ALU1", "MUL1", "MUL2")
	p.Init("c", 1)
	p.Loop("ALU1", "c")
	p.Op("ALU1", "a", cdfg.OpAdd, "u", "v")
	p.Op("MUL1", "m1", cdfg.OpMul, "a", "w") // receives a (set {1})
	p.Op("MUL2", "m2", cdfg.OpMul, "a", "x") // receives a (same event, multi-way)
	p.Op("ALU1", "b", cdfg.OpAdd, "m1", "m2")
	p.Op("MUL1", "m3", cdfg.OpMul, "b", "w") // receives b (singleton set {3})
	p.Op("ALU1", "c", cdfg.OpLT, "m3", "k")
	p.EndLoop()
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, g, LoopParallelism)
	mustApply(t, g, RemoveDominated)
	plan := BuildChannels(g)
	before := plan.Count()
	rep := plan.Eliminate()
	if plan.Count() >= before {
		t.Fatalf("GT5 did not reduce channels: %d → %d\n%s", before, plan.Count(), plan.Describe())
	}
	// Symmetrization should have created at least one multi-way channel
	// from ALU1 and recorded the added arc.
	if plan.MultiwayCount() == 0 {
		t.Errorf("no multi-way channel formed:\n%s", plan.Describe())
	}
	added := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "symmetrize") {
			added = true
		}
	}
	if !added {
		t.Logf("no symmetrization arc needed (multiplexing sufficed):\n%s", plan.Describe())
	}
}

// The FIR-style wire discipline: two events per iteration from one unit to
// one receiver multiplex onto one wire only when every event is consumed.
func TestGT5TwoEventsPerIteration(t *testing.T) {
	p := cdfg.NewProgram("twoev", "MUL", "ALU")
	p.Init("c", 1)
	p.Loop("ALU", "c")
	p.Op("MUL", "p", cdfg.OpMul, "u", "v")
	p.Op("ALU", "y", cdfg.OpAdd, "p", "w")
	p.Op("MUL", "q", cdfg.OpMul, "u", "w")
	p.Op("ALU", "y", cdfg.OpAdd, "y", "q")
	p.Op("ALU", "c", cdfg.OpLT, "y", "k")
	p.EndLoop()
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, g, LoopParallelism)
	mustApply(t, g, RemoveDominated)
	plan := BuildChannels(g)
	plan.Eliminate()
	// The two MUL→ALU data arcs must end up on one multiplexed wire (both
	// events are consumed by ALU sequentially).
	for _, ch := range plan.Channels {
		if ch.Sender == "MUL" && len(ch.Arcs) >= 2 {
			return
		}
	}
	t.Errorf("MUL→ALU events not multiplexed:\n%s", plan.Describe())
}
