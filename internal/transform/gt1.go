package transform

import (
	"sort"

	"repro/internal/cdfg"
)

// LoopParallelism applies GT1 to every loop block of the graph. The four
// steps of §3.1:
//
//	A. remove the synchronization arcs into ENDLOOP (only the owner unit's
//	   scheduling arc remains), so successive loop bodies may overlap;
//	B. add backward arcs from the last to the first instances of every
//	   loop-body variable, carrying the data/anti dependencies across the
//	   iteration boundary;
//	C. constrain the loop variable: its last write must precede ENDLOOP
//	   (added only if not already implied);
//	D. limit parallelism to two consecutive iterations: the first use of
//	   each functional unit must precede ENDLOOP (added only if not
//	   already implied), so no wire ever queues two pending requests.
//
// The transform is safe under the paper's loop-exit timing assumption: when
// the loop exits, all in-flight operations of the final iteration complete
// before their results are needed.
func LoopParallelism(g *cdfg.Graph) (*Report, error) {
	rep := &Report{Name: "GT1 loop-parallelism"}
	for _, blk := range g.Blocks {
		if blk.Kind != cdfg.BlockLoop {
			continue
		}
		if err := loopParallelismOn(g, blk, rep); err != nil {
			return rep, err
		}
	}
	if rep.Changed() {
		rep.note("timing assumption: loop components complete before needed at exit")
	}
	return rep, nil
}

func loopParallelismOn(g *cdfg.Graph, blk *cdfg.Block, rep *Report) error {
	end := g.Node(blk.End)

	// Step A: remove arcs into ENDLOOP except the owner unit's scheduling
	// arc(s).
	for _, a := range g.In(end.ID) {
		from := g.Node(a.From)
		if a.Kind == cdfg.ArcSched && from.FU == end.FU {
			continue
		}
		rep.remove(g, a)
		g.RemoveArc(a.ID)
	}

	reach := cdfg.NewReach(g)

	// Step B: backward arcs for loop-body variables.
	for _, reg := range g.BlockRegs(blk.ID) {
		if !g.BlockWritesReg(blk.ID, reg) {
			continue // read-only in the body: no cross-iteration hazard
		}
		accesses := g.RegAccessesIn(blk.ID, reg)
		if len(accesses) < 2 {
			continue
		}
		lasts := maximalAccesses(reach, accesses)
		firsts := minimalAccesses(reach, accesses)
		for _, l := range lasts {
			for _, f := range firsts {
				if l.InNode == f.InNode {
					continue
				}
				if !l.Writes && !f.Writes {
					continue // read-read pairs carry no hazard
				}
				a := &cdfg.Arc{
					From:   l.OutNode,
					To:     f.InNode,
					Kind:   cdfg.ArcBackward,
					Branch: l.OutBranch,
					Note:   reg,
				}
				id := g.AddArc(a)
				if id == a.ID { // freshly added (not coalesced)
					rep.add(g, a)
				}
			}
		}
	}

	reach = cdfg.NewReach(g)

	// Step C: the loop variable's last write must precede ENDLOOP.
	root := g.Node(blk.Root)
	writes := g.RegAccessesIn(blk.ID, root.Cond)
	var lastWrites []cdfg.RegAccess
	var onlyWrites []cdfg.RegAccess
	for _, a := range writes {
		if a.Writes {
			onlyWrites = append(onlyWrites, a)
		}
	}
	lastWrites = maximalAccesses(reach, onlyWrites)
	for _, w := range lastWrites {
		if reach.WouldDominate(w.OutNode, end.ID, false) {
			rep.note("step C: (%s → ENDLOOP) already implied", g.Node(w.OutNode).Label())
			continue
		}
		a := &cdfg.Arc{From: w.OutNode, To: end.ID, Kind: cdfg.ArcControl, Branch: w.OutBranch, Note: root.Cond}
		g.AddArc(a)
		rep.add(g, a)
		reach = cdfg.NewReach(g)
	}

	// Step D: first use of each functional unit must precede ENDLOOP. A
	// first use nested in a conditional sub-block fires only when its
	// branch is taken, so the arc anchors at the sub-block boundary that
	// completes on every iteration (ENDIF, or a nested loop's exit) —
	// otherwise ENDLOOP would wait forever on the untaken branch.
	for _, fu := range g.FUs {
		first := firstUseInBlock(g, blk.ID, fu)
		if first == nil {
			continue
		}
		from, branch := anchorInBlock(g, first.ID, blk.ID)
		if reach.WouldDominate(from, end.ID, false) {
			rep.note("step D: (%s → ENDLOOP) already implied", g.Node(from).Label())
			continue
		}
		a := &cdfg.Arc{From: from, To: end.ID, Kind: cdfg.ArcControl, Branch: branch, Note: fu}
		g.AddArc(a)
		rep.add(g, a)
		reach = cdfg.NewReach(g)
	}
	return nil
}

// anchorInBlock returns the completion anchor for node id as seen from
// block: a node directly in the block anchors itself; a node nested in a
// sub-block anchors at the innermost enclosing sub-block's boundary — an
// if's END node, or a loop's root on the exit branch — matching the
// block-granularity convention of the derived arcs.
func anchorInBlock(g *cdfg.Graph, id cdfg.NodeID, block int) (cdfg.NodeID, cdfg.OutBranch) {
	node, branch := id, cdfg.OutAlways
	for g.Node(node).Block != block {
		b := g.Blocks[g.Node(node).Block]
		if b.Kind == cdfg.BlockLoop {
			node, branch = b.Root, cdfg.OutFalse
		} else {
			node, branch = b.End, cdfg.OutAlways
		}
	}
	return node, branch
}

// maximalAccesses returns the accesses not preceding any other access.
func maximalAccesses(reach *cdfg.Reach, acc []cdfg.RegAccess) []cdfg.RegAccess {
	var out []cdfg.RegAccess
	for i, a := range acc {
		isMax := true
		for j, b := range acc {
			if i != j && reach.Precedes(a.InNode, b.InNode) {
				isMax = false
				break
			}
		}
		if isMax {
			out = append(out, a)
		}
	}
	return out
}

// minimalAccesses returns the accesses not preceded by any other access.
func minimalAccesses(reach *cdfg.Reach, acc []cdfg.RegAccess) []cdfg.RegAccess {
	var out []cdfg.RegAccess
	for i, a := range acc {
		isMin := true
		for j, b := range acc {
			if i != j && reach.Precedes(b.InNode, a.InNode) {
				isMin = false
				break
			}
		}
		if isMin {
			out = append(out, a)
		}
	}
	return out
}

// firstUseInBlock returns the earliest node (by program order) bound to fu
// inside the block, transitively.
func firstUseInBlock(g *cdfg.Graph, block int, fu string) *cdfg.Node {
	var candidates []*cdfg.Node
	for _, n := range g.Nodes() {
		if n.FU == fu && g.NodeInBlock(n.ID, block) &&
			n.Kind != cdfg.KindLoop && n.Kind != cdfg.KindEndLoop {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Order < candidates[j].Order })
	return candidates[0]
}
