package transform

import "repro/internal/cdfg"

// MergeAssignments applies GT4 (§3.4): assignment nodes (pure register
// moves, which do not occupy the functional unit's datapath) are merged
// into the preceding — or, failing that, the following — operation node of
// the same unit, so the move executes in parallel with the operation.
//
// A merge is legal when the two nodes touch disjoint registers (no
// dependency between them) and no indirect constraint path connects them
// through other units (merging would otherwise create a wait-for cycle).
func MergeAssignments(g *cdfg.Graph) (*Report, error) {
	rep := &Report{Name: "GT4 merge-assignments"}
	for {
		merged := false
		for _, n := range g.Nodes() {
			if n.Kind != cdfg.KindAssign {
				continue
			}
			if m := mergeCandidate(g, n); m != nil {
				rep.note("merge %s into %s", n.Label(), m.Label())
				mergeInto(g, m, n)
				merged = true
				break
			}
		}
		if !merged {
			return rep, nil
		}
	}
}

// mergeCandidate returns the node to absorb assignment n: its scheduling
// predecessor if legal, otherwise its scheduling successor, otherwise nil.
func mergeCandidate(g *cdfg.Graph, n *cdfg.Node) *cdfg.Node {
	var prev, next *cdfg.Node
	for _, a := range g.In(n.ID) {
		from := g.Node(a.From)
		if a.Kind == cdfg.ArcSched && from.FU == n.FU && isMergeableKind(from) {
			prev = from
		}
	}
	for _, a := range g.Out(n.ID) {
		to := g.Node(a.To)
		if a.Kind == cdfg.ArcSched && to.FU == n.FU && isMergeableKind(to) {
			next = to
		}
	}
	if prev != nil && canMerge(g, prev, n) {
		return prev
	}
	if next != nil && canMerge(g, next, n) {
		return next
	}
	return nil
}

func isMergeableKind(n *cdfg.Node) bool {
	return n.Kind == cdfg.KindOp || n.Kind == cdfg.KindAssign
}

// canMerge checks the legality conditions for executing m and n in
// parallel as a single node.
func canMerge(g *cdfg.Graph, m, n *cdfg.Node) bool {
	if m.Block != n.Block {
		return false
	}
	if sharesRegs(m.Writes(), n.Reads()) || sharesRegs(n.Writes(), m.Reads()) ||
		sharesRegs(m.Writes(), n.Writes()) {
		return false
	}
	// No indirect path between the two nodes (other than direct arcs):
	// merging would turn it into a wait-for cycle.
	direct1, direct2 := g.FindArc(m.ID, n.ID), g.FindArc(n.ID, m.ID)
	reach := reachWithout(g, direct1, direct2)
	if reach.Precedes(m.ID, n.ID) || reach.Precedes(n.ID, m.ID) {
		return false
	}
	return true
}

// reachWithout builds reachability on a copy of g with the given arcs
// removed.
func reachWithout(g *cdfg.Graph, arcs ...*cdfg.Arc) *cdfg.Reach {
	c := g.Clone()
	for _, a := range arcs {
		if a != nil {
			c.RemoveArc(a.ID)
		}
	}
	return cdfg.NewReach(c)
}

func sharesRegs(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// mergeInto absorbs node n into node m: statements concatenate (parallel
// execution) and n's arcs are rewired to m.
func mergeInto(g *cdfg.Graph, m, n *cdfg.Node) {
	m.Stmts = append(m.Stmts, n.Stmts...)
	for _, a := range g.In(n.ID) {
		g.RemoveArc(a.ID)
		if a.From == m.ID {
			continue
		}
		g.AddArc(&cdfg.Arc{From: a.From, To: m.ID, Kind: a.Kind, Group: a.Group, Branch: a.Branch, Note: a.Note})
	}
	for _, a := range g.Out(n.ID) {
		g.RemoveArc(a.ID)
		if a.To == m.ID {
			continue
		}
		g.AddArc(&cdfg.Arc{From: m.ID, To: a.To, Kind: a.Kind, Group: a.Group, Branch: a.Branch, Note: a.Note})
	}
	g.RemoveNode(n.ID)
}
