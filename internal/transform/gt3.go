package transform

import (
	"repro/internal/cdfg"
	"repro/internal/timing"
)

// RelativeTiming applies GT3 (§3.3): it removes data and register-allocation
// constraint arcs that are provably never the last to arrive at their
// destination under the given delay model — the receiving operation is
// already held back by a slower constraint on every execution path.
//
// Scheduling and control arcs are never candidates: they implement
// functional-unit exclusivity and loop control, which relative timing must
// not touch. Every removal is recorded together with the timing assumption
// it introduces.
func RelativeTiming(g *cdfg.Graph, model timing.Model, unroll int) (*Report, error) {
	rep := &Report{Name: "GT3 relative-timing"}
	for {
		an, err := timing.Analyze(g, model, unroll)
		if err != nil {
			return rep, err
		}
		changed := false
		for _, a := range g.Arcs() {
			if a.Kind != cdfg.ArcData && a.Kind != cdfg.ArcRegAlloc && a.Kind != cdfg.ArcBackward {
				continue
			}
			if !removalSafe(g, a) {
				continue
			}
			if an.ArcAlwaysCovered(a) {
				rep.remove(g, a)
				rep.note("timing assumption: %s always arrives before a slower sibling constraint", describeArc(g, a))
				g.RemoveArc(a.ID)
				changed = true
				break // re-analyze after each removal
			}
		}
		if !changed {
			return rep, nil
		}
	}
}
