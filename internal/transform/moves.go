package transform

import (
	"fmt"

	"repro/internal/cdfg"
)

// Merge is one immediately applicable channel merge (GT5.1, preceded by any
// GT5.3 symmetrization additions it needs), exposed so a rewrite search can
// apply the GT5 pipeline one decision at a time instead of running the
// built-in budgeted merge search.
type Merge struct {
	I, J int              // channel indices into Plan.Channels, I < J
	Adds [][2]cdfg.NodeID // symmetrization arcs added before the merge
}

func (m Merge) String() string {
	return fmt.Sprintf("merge ch[%d]+ch[%d] (+%d sym arcs)", m.I, m.J, len(m.Adds))
}

// CandidateMerges enumerates every merge applicable to the plan as it
// stands, in deterministic (I, J) order. Indices are positions in
// Plan.Channels and stay valid only until the next ApplyMerge or ReduceOnce.
func (p *Plan) CandidateMerges() []Merge {
	reach := cdfg.NewReach(p.G)
	var out []Merge
	for i := 0; i < len(p.Channels); i++ {
		for j := i + 1; j < len(p.Channels); j++ {
			adds, ok := mergePlan(p.G, reach, p.Channels[i], p.Channels[j])
			if !ok {
				continue
			}
			out = append(out, Merge{I: i, J: j, Adds: adds})
		}
	}
	return out
}

// ApplyMerge applies one candidate merge to the plan and its graph.
func (p *Plan) ApplyMerge(m Merge) {
	p.applyMove(mergeMove{i: m.I, j: m.J, adds: m.Adds})
}

// ReduceOnce applies a single GT5.2 concurrency-reduction step and reports
// whether one applied. Eliminate runs this to fixpoint; a search calls it
// per decision.
func (p *Plan) ReduceOnce() bool { return p.reduceConcurrency() }

// Script is an explicit GT5 decision trace: each Merges entry indexes the
// CandidateMerges enumeration at that point in the replay, followed by a
// number of single GT5.2 reduction steps (negative means run to fixpoint,
// reproducing Eliminate's post-pass).
type Script struct {
	Merges  []int
	Reduces int
}

// Replay applies the script to the plan and returns how many GT5.2
// reductions actually applied. A merge index outside the candidate
// enumeration at its step is an error: scripts are produced by enumerating
// candidates on an identical graph, so a mismatch means the trace and the
// graph have diverged.
func (p *Plan) Replay(s Script) (int, error) {
	for step, k := range s.Merges {
		cands := p.CandidateMerges()
		if k < 0 || k >= len(cands) {
			return 0, fmt.Errorf("gt5 script: merge step %d: candidate %d out of range (%d applicable)", step, k, len(cands))
		}
		p.ApplyMerge(cands[k])
	}
	reduced := 0
	for s.Reduces < 0 || reduced < s.Reduces {
		if !p.ReduceOnce() {
			break
		}
		reduced++
	}
	return reduced, nil
}
