// Package transform implements the paper's global transformations on
// scheduled CDFGs (GT1–GT5): loop parallelism, removal of dominated
// constraints, relative-timing arc removal, merging of assignment nodes,
// and communication channel elimination (multiplexing, concurrency
// reduction, symmetrization). Applied in sequence they turn the
// unoptimized constraint structure into the paper's optimized
// inter-controller communication (Figures 1 → 3 → 4 → 6).
package transform

import (
	"fmt"
	"strings"

	"repro/internal/cdfg"
)

// Report records what a transformation did, for traceability and the
// design-space exploration scripts.
type Report struct {
	Name    string
	Added   []string
	Removed []string
	Notes   []string
}

func (r *Report) add(g *cdfg.Graph, a *cdfg.Arc) {
	r.Added = append(r.Added, describeArc(g, a))
}

func (r *Report) remove(g *cdfg.Graph, a *cdfg.Arc) {
	r.Removed = append(r.Removed, describeArc(g, a))
}

func (r *Report) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Changed reports whether the transformation modified the graph.
func (r *Report) Changed() bool {
	return len(r.Added)+len(r.Removed) > 0
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: +%d arcs, -%d arcs", r.Name, len(r.Added), len(r.Removed))
	for _, a := range r.Added {
		fmt.Fprintf(&b, "\n  + %s", a)
	}
	for _, a := range r.Removed {
		fmt.Fprintf(&b, "\n  - %s", a)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n  · %s", n)
	}
	return b.String()
}

func describeArc(g *cdfg.Graph, a *cdfg.Arc) string {
	from, to := g.Node(a.From), g.Node(a.To)
	fl, tl := fmt.Sprintf("n%d", a.From), fmt.Sprintf("n%d", a.To)
	if from != nil {
		fl = from.Label()
	}
	if to != nil {
		tl = to.Label()
	}
	return fmt.Sprintf("(%s → %s) [%s]", fl, tl, a.Kind)
}

// removalSafe reports whether arc a can be deleted without breaking node
// firing: the destination keeps at least one in-arc, and a's firing group
// does not become empty while alternatives exist.
func removalSafe(g *cdfg.Graph, a *cdfg.Arc) bool {
	if a.Group == cdfg.GroupRepeat {
		return false // the loop re-arm arc is structural
	}
	in := g.In(a.To)
	if len(in) <= 1 {
		return false
	}
	if a.Group != cdfg.GroupAll {
		rest := 0
		for _, e := range in {
			if e.ID != a.ID && e.Group == a.Group {
				rest++
			}
		}
		if rest == 0 {
			return false
		}
	}
	return true
}
