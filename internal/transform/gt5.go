package transform

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cdfg"
)

// Channel is one physical communication wire of the target architecture: a
// single-transition "ready" signal from a sender controller, forked to one
// or more receiver controllers (a multi-way channel when more than one).
// Several constraint arcs may share the wire after multiplexing; their
// events become alternating phases.
type Channel struct {
	ID        int
	Sender    string
	Receivers []string // sorted functional unit names
	Arcs      []*cdfg.Arc
}

// Multiway reports whether the channel has more than one receiver.
func (c *Channel) Multiway() bool { return len(c.Receivers) > 1 }

func (c *Channel) receiverKey() string { return strings.Join(c.Receivers, ",") }

func (c *Channel) String() string {
	return fmt.Sprintf("ch%d %s→{%s} (%d arcs)", c.ID, c.Sender, c.receiverKey(), len(c.Arcs))
}

// Plan maps the graph's inter-unit constraint arcs onto communication
// channels. GT5 (§3.5) shrinks the channel count by multiplexing (GT5.1),
// concurrency reduction (GT5.2) and symmetrization (GT5.3).
type Plan struct {
	G        *cdfg.Graph
	Channels []*Channel
	Env      []*cdfg.Arc // arcs to/from the environment (START/END)
	Report   *Report
	nextID   int
}

// BuildChannels creates the initial channel plan: one channel per
// inter-functional-unit constraint arc.
func BuildChannels(g *cdfg.Graph) *Plan {
	p := &Plan{G: g, Report: &Report{Name: "GT5 channel-elimination"}}
	for _, a := range g.Arcs() {
		from, to := g.Node(a.From), g.Node(a.To)
		if from.FU == "" || to.FU == "" {
			p.Env = append(p.Env, a)
			continue
		}
		if from.FU == to.FU {
			continue
		}
		p.Channels = append(p.Channels, &Channel{
			ID:        p.nextID,
			Sender:    from.FU,
			Receivers: []string{to.FU},
			Arcs:      []*cdfg.Arc{a},
		})
		p.nextID++
	}
	return p
}

// Count returns the number of inter-controller channels.
func (p *Plan) Count() int { return len(p.Channels) }

// MultiwayCount returns the number of multi-way channels.
func (p *Plan) MultiwayCount() int {
	n := 0
	for _, c := range p.Channels {
		if c.Multiway() {
			n++
		}
	}
	return n
}

// ChannelOf returns the channel carrying arc id, or nil.
func (p *Plan) ChannelOf(id cdfg.ArcID) *Channel {
	for _, c := range p.Channels {
		for _, a := range c.Arcs {
			if a.ID == id {
				return c
			}
		}
	}
	return nil
}

// mergeMove is one channel merge, possibly preceded by symmetrization arc
// additions (given as node pairs so the move replays on any graph copy).
type mergeMove struct {
	i, j int
	adds [][2]cdfg.NodeID
}

// searchBudget caps the merge-sequence search.
const searchBudget = 40000

// Eliminate applies the GT5 pipeline: an exact (budgeted) search over
// channel-merge sequences — each merge is a multiplex, a multi-way fork
// formation, or a symmetrization followed by a multiplex — then a
// concurrency-reduction (GT5.2) post-pass. The best sequence (fewest final
// channels, then fewest added arcs) is replayed onto the plan's graph.
func (p *Plan) Eliminate() *Report {
	moves := p.searchBestMerges()
	for _, mv := range moves {
		p.applyMove(mv)
	}
	for p.reduceConcurrency() {
	}
	return p.Report
}

// searchState is a scratch copy of the plan used during search.
type searchState struct {
	g     *cdfg.Graph
	chans []*Channel
}

func (p *Plan) snapshot() *searchState {
	st := &searchState{g: p.G.Clone()}
	for _, c := range p.Channels {
		cc := &Channel{ID: c.ID, Sender: c.Sender, Receivers: append([]string(nil), c.Receivers...)}
		for _, a := range c.Arcs {
			cc.Arcs = append(cc.Arcs, st.g.Arc(a.ID))
		}
		st.chans = append(st.chans, cc)
	}
	return st
}

func (st *searchState) clone() *searchState {
	n := &searchState{g: st.g.Clone()}
	for _, c := range st.chans {
		cc := &Channel{ID: c.ID, Sender: c.Sender, Receivers: append([]string(nil), c.Receivers...)}
		for _, a := range c.Arcs {
			if ex := n.g.Arc(a.ID); ex != nil {
				cc.Arcs = append(cc.Arcs, ex)
			}
		}
		n.chans = append(n.chans, cc)
	}
	return n
}

func (st *searchState) signature() string {
	parts := make([]string, len(st.chans))
	for i, c := range st.chans {
		var arcs []string
		for _, a := range c.Arcs {
			arcs = append(arcs, fmt.Sprintf("%d-%d", a.From, a.To))
		}
		sort.Strings(arcs)
		parts[i] = strings.Join(arcs, "+")
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

func (p *Plan) searchBestMerges() []mergeMove {
	start := p.snapshot()
	bestCount := len(start.chans)
	bestAdds := 0
	var best []mergeMove
	visited := map[string]bool{}
	steps := 0

	var dfs func(st *searchState, moves []mergeMove, adds int)
	dfs = func(st *searchState, moves []mergeMove, adds int) {
		if steps > searchBudget {
			return
		}
		steps++
		sig := st.signature()
		if visited[sig] {
			return
		}
		visited[sig] = true
		if len(st.chans) < bestCount || (len(st.chans) == bestCount && adds < bestAdds) {
			bestCount = len(st.chans)
			bestAdds = adds
			best = append(best[:0:0], moves...)
		}
		reach := cdfg.NewReach(st.g)
		for i := 0; i < len(st.chans); i++ {
			for j := i + 1; j < len(st.chans); j++ {
				additions, ok := mergePlan(st.g, reach, st.chans[i], st.chans[j])
				if !ok {
					continue
				}
				next := st.clone()
				applyMergeTo(next, i, j, additions)
				dfs(next, append(append([]mergeMove(nil), moves...), mergeMove{i: i, j: j, adds: additions}), adds+len(additions))
				if steps > searchBudget {
					return
				}
			}
		}
	}
	dfs(start, nil, 0)
	return best
}

// mergePlan decides whether two channels can share one wire, computing any
// symmetrization additions needed. Requirements:
//
//   - same sender unit;
//   - every source node has an arc to every receiver unit of the union
//     (missing pairs are filled with safe added arcs: same loop context, no
//     cycle, plain destination nodes);
//   - after additions, the production events of arcs from distinct source
//     nodes are totally ordered (statically known alternating phases).
func mergePlan(g *cdfg.Graph, reach *cdfg.Reach, c1, c2 *Channel) ([][2]cdfg.NodeID, bool) {
	if c1.Sender != c2.Sender {
		return nil, false
	}
	all := append(append([]*cdfg.Arc{}, c1.Arcs...), c2.Arcs...)
	recvs := map[string]bool{}
	srcs := map[cdfg.NodeID]bool{}
	covered := map[string]bool{}
	for _, a := range all {
		fu := g.Node(a.To).FU
		recvs[fu] = true
		srcs[a.From] = true
		covered[fmt.Sprintf("%d/%s", a.From, fu)] = true
	}
	var adds [][2]cdfg.NodeID
	work := g
	workReach := reach
	for s := range srcs {
		if boundaryNode(g.Node(s)) {
			// Loop/if boundary nodes fire at special rates; arcs from them
			// exist only where the generator placed them.
			for fu := range recvs {
				if !covered[fmt.Sprintf("%d/%s", s, fu)] {
					return nil, false
				}
			}
			continue
		}
		for fu := range recvs {
			if covered[fmt.Sprintf("%d/%s", s, fu)] {
				continue
			}
			d, ok := additionTarget(work, workReach, all, s, fu)
			if !ok {
				return nil, false
			}
			adds = append(adds, [2]cdfg.NodeID{s, d})
			// Apply to a scratch copy so later checks see the new arc.
			if work == g {
				work = g.Clone()
			}
			work.AddArc(&cdfg.Arc{From: s, To: d, Kind: cdfg.ArcControl, Note: "sym"})
			workReach = cdfg.NewReach(work)
			covered[fmt.Sprintf("%d/%s", s, fu)] = true
		}
	}
	// Total ordering of events across distinct source nodes, on the graph
	// including additions.
	finalArcs := append([]*cdfg.Arc{}, all...)
	if work != g {
		for _, ad := range adds {
			finalArcs = append(finalArcs, work.FindArc(ad[0], ad[1]))
		}
		// Re-resolve original arcs in the scratch graph.
		for i, a := range all {
			finalArcs[i] = work.Arc(a.ID)
		}
	}
	for i := 0; i < len(finalArcs); i++ {
		for j := i + 1; j < len(finalArcs); j++ {
			if finalArcs[i].From == finalArcs[j].From {
				continue
			}
			if !workReach.EventsTotallyOrdered(finalArcs[i], finalArcs[j]) {
				return nil, false
			}
		}
	}
	sort.Slice(adds, func(i, j int) bool {
		if adds[i][0] != adds[j][0] {
			return adds[i][0] < adds[j][0]
		}
		return adds[i][1] < adds[j][1]
	})
	return adds, true
}

func boundaryNode(n *cdfg.Node) bool {
	switch n.Kind {
	case cdfg.KindLoop, cdfg.KindEndLoop, cdfg.KindIf, cdfg.KindEndIf:
		return true
	}
	return false
}

// additionTarget picks a destination node in unit fu for a symmetrization
// arc from s: an existing channel destination in that unit with matching
// loop context that does not create a cycle.
func additionTarget(g *cdfg.Graph, reach *cdfg.Reach, arcs []*cdfg.Arc, s cdfg.NodeID, fu string) (cdfg.NodeID, bool) {
	seen := map[cdfg.NodeID]bool{}
	for _, a := range arcs {
		d := a.To
		if seen[d] {
			continue
		}
		seen[d] = true
		dn := g.Node(d)
		if dn == nil || dn.FU != fu || boundaryNode(dn) {
			continue
		}
		if !reach.SameLoopContext(s, d) {
			continue
		}
		if reach.WouldCycle(s, d) {
			continue
		}
		return d, true
	}
	return 0, false
}

// applyMergeTo performs a merge (with additions) on a search state.
func applyMergeTo(st *searchState, i, j int, adds [][2]cdfg.NodeID) {
	for _, ad := range adds {
		a := &cdfg.Arc{From: ad[0], To: ad[1], Kind: cdfg.ArcControl, Note: "sym"}
		st.g.AddArc(a)
		st.chans[i].Arcs = append(st.chans[i].Arcs, a)
	}
	mergeChannelStructs(st.g, st.chans[i], st.chans[j])
	st.chans = append(st.chans[:j], st.chans[j+1:]...)
}

// applyMove replays a search move on the real plan.
func (p *Plan) applyMove(mv mergeMove) {
	for _, ad := range mv.adds {
		a := &cdfg.Arc{From: ad[0], To: ad[1], Kind: cdfg.ArcControl, Note: "sym"}
		p.G.AddArc(a)
		p.Report.add(p.G, a)
		p.Report.note("symmetrize (GT5.3): add (%s → %s)", p.G.Node(ad[0]).Label(), p.G.Node(ad[1]).Label())
		p.Channels[mv.i].Arcs = append(p.Channels[mv.i].Arcs, a)
	}
	a, b := p.Channels[mv.i], p.Channels[mv.j]
	p.Report.note("merge (GT5.1/5.3): %s + %s", a, b)
	mergeChannelStructs(p.G, a, b)
	p.Channels = append(p.Channels[:mv.j], p.Channels[mv.j+1:]...)
}

func mergeChannelStructs(g *cdfg.Graph, a, b *Channel) {
	a.Arcs = append(a.Arcs, b.Arcs...)
	set := map[string]bool{}
	for _, arc := range a.Arcs {
		set[g.Node(arc.To).FU] = true
	}
	a.Receivers = a.Receivers[:0]
	for r := range set {
		a.Receivers = append(a.Receivers, r)
	}
	sort.Strings(a.Receivers)
}

// reduceConcurrency applies GT5.2: a single-arc channel X→Z is eliminated
// by routing the constraint through an existing hub: an existing arc a→b
// (channel X→Y) plus a new arc b→c that multiplexes into an existing
// channel Y→Z. Returns whether a channel was eliminated.
func (p *Plan) reduceConcurrency() bool {
	reach := cdfg.NewReach(p.G)
	for ci, ch := range p.Channels {
		if len(ch.Arcs) != 1 || ch.Multiway() {
			continue
		}
		victim := ch.Arcs[0]
		if !removalSafe(p.G, victim) {
			continue
		}
		a, c := victim.From, victim.To
		if boundaryNode(p.G.Node(a)) || boundaryNode(p.G.Node(c)) {
			continue
		}
		for _, hubArc := range p.G.Out(a) {
			if hubArc.ID == victim.ID {
				continue
			}
			b := hubArc.To
			bn := p.G.Node(b)
			if bn.FU == "" || bn.FU == ch.Sender || bn.FU == p.G.Node(c).FU || boundaryNode(bn) {
				continue
			}
			if p.ChannelOf(hubArc.ID) == nil {
				continue // hub leg must ride an existing channel
			}
			if !reach.SameLoopContext(b, c) || reach.WouldCycle(b, c) {
				continue
			}
			target := p.findChannel(bn.FU, p.G.Node(c).FU)
			if target == nil {
				continue
			}
			newArc := &cdfg.Arc{From: b, To: c, Kind: cdfg.ArcControl, Note: "hub"}
			p.G.AddArc(newArc)
			tmpReach := cdfg.NewReach(p.G)
			ok := true
			for _, ex := range target.Arcs {
				if ex.From != newArc.From && !tmpReach.EventsTotallyOrdered(ex, newArc) {
					ok = false
					break
				}
			}
			if !ok {
				p.G.RemoveArc(newArc.ID)
				continue
			}
			p.Report.note("concurrency reduction (GT5.2): (%s→%s) via hub %s",
				p.G.Node(a).Label(), p.G.Node(c).Label(), p.G.Node(b).Label())
			p.Report.add(p.G, newArc)
			p.Report.remove(p.G, victim)
			p.G.RemoveArc(victim.ID)
			target.Arcs = append(target.Arcs, newArc)
			p.Channels = append(p.Channels[:ci], p.Channels[ci+1:]...)
			return true
		}
	}
	return false
}

// findChannel returns a channel from sender to exactly the single receiver
// fu, or nil.
func (p *Plan) findChannel(sender, fu string) *Channel {
	for _, c := range p.Channels {
		if c.Sender == sender && len(c.Receivers) == 1 && c.Receivers[0] == fu {
			return c
		}
	}
	return nil
}

// DOT renders the channel plan as a Graphviz graph in the style of the
// paper's Figure 5: one box per controller, one edge per channel (bold for
// multi-way channels), labeled with the carried events.
func (p *Plan) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph channels {\n  rankdir=LR;\n  node [shape=box];\n")
	for _, fu := range p.G.FUs {
		fmt.Fprintf(&b, "  %q;\n", fu)
	}
	for _, c := range p.Channels {
		style := "solid"
		if c.Multiway() {
			style = "bold"
		}
		label := fmt.Sprintf("ch%d (%d events)", c.ID, len(c.Arcs))
		for _, rx := range c.Receivers {
			fmt.Fprintf(&b, "  %q -> %q [style=%s, label=%q];\n", c.Sender, rx, style, label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Describe renders the channel plan like the paper's Figure 5.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d channels (%d multi-way), %d environment arcs\n", p.Count(), p.MultiwayCount(), len(p.Env))
	for _, c := range p.Channels {
		fmt.Fprintf(&b, "  %s\n", c)
		for _, a := range c.Arcs {
			fmt.Fprintf(&b, "    %s\n", describeArc(p.G, a))
		}
	}
	return b.String()
}
