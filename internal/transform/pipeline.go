package transform

import (
	"repro/internal/cdfg"
	"repro/internal/obs"
	"repro/internal/timing"
)

// Options configures the global optimization pipeline.
type Options struct {
	// Timing is the delay model used by the relative-timing transform
	// (GT3). Zero value disables GT3.
	Timing timing.Model
	// Unroll is the loop unrolling depth for timing analysis (default 3).
	Unroll int
	// Skip flags disable individual transforms for ablation studies.
	SkipGT1, SkipGT2, SkipGT3, SkipGT4, SkipGT5 bool
	// GT5 replays an explicit channel-elimination decision trace instead of
	// the built-in budgeted merge search. Nil keeps the default Eliminate
	// behavior; ignored when SkipGT5 is set.
	GT5 *Script
}

// DefaultOptions enables the full pipeline with the default delay model.
func DefaultOptions() Options {
	return Options{Timing: timing.DefaultModel(), Unroll: 3}
}

// hasTiming reports whether a usable delay model was supplied.
func (o Options) hasTiming() bool {
	return o.Timing.DefaultOp.Max > 0 || len(o.Timing.FUOp) > 0
}

// OptimizeGT applies the paper's global transformation script — GT1 loop
// parallelism, GT2 dominated-constraint removal, GT3 relative timing, GT4
// assignment merging, GT5 channel elimination — to the graph in place, and
// returns the resulting channel plan plus per-transform reports.
//
// Each transform runs under an obs span named after its stage ("gt1" ..
// "gt5") and records the arcs it added/removed as <stage>/arcs_added and
// <stage>/arcs_removed counters; GT5 additionally records the channel
// counts before and after elimination (the Figure 5 comparison) as
// gt5/channels_before and gt5/channels_after gauges.
func OptimizeGT(g *cdfg.Graph, opt Options) (*Plan, []*Report, error) {
	if opt.Unroll == 0 {
		opt.Unroll = 3
	}
	var reports []*Report
	run := func(stage string, skip bool, f func() (*Report, error)) error {
		if skip {
			return nil
		}
		sp := obs.Start(stage, "")
		rep, err := f()
		sp.EndErr(err)
		if rep != nil {
			reports = append(reports, rep)
			obs.Add(stage+"/arcs_added", int64(len(rep.Added)))
			obs.Add(stage+"/arcs_removed", int64(len(rep.Removed)))
		}
		return err
	}
	if err := run("gt1", opt.SkipGT1, func() (*Report, error) { return LoopParallelism(g) }); err != nil {
		return nil, reports, err
	}
	if err := run("gt2", opt.SkipGT2, func() (*Report, error) { return RemoveDominated(g) }); err != nil {
		return nil, reports, err
	}
	if !opt.SkipGT3 && opt.hasTiming() {
		if err := run("gt3", false, func() (*Report, error) { return RelativeTiming(g, opt.Timing, opt.Unroll) }); err != nil {
			return nil, reports, err
		}
	}
	if err := run("gt4", opt.SkipGT4, func() (*Report, error) { return MergeAssignments(g) }); err != nil {
		return nil, reports, err
	}
	plan := BuildChannels(g)
	if !opt.SkipGT5 {
		obs.Set("gt5/channels_before", int64(plan.Count()))
		sp := obs.Start("gt5", "")
		var err error
		if opt.GT5 != nil {
			_, err = plan.Replay(*opt.GT5)
		} else {
			plan.Eliminate()
		}
		rep := plan.Report
		sp.EndErr(err)
		reports = append(reports, rep)
		if err != nil {
			return nil, reports, err
		}
		obs.Add("gt5/arcs_added", int64(len(rep.Added)))
		obs.Add("gt5/arcs_removed", int64(len(rep.Removed)))
		obs.Set("gt5/channels_after", int64(plan.Count()))
	}
	return plan, reports, nil
}
