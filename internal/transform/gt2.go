package transform

import "repro/internal/cdfg"

// RemoveDominated applies GT2: it deletes every constraint arc implied by
// the transitive closure of the remaining constraints (§3.2). Removal
// respects structural invariants: the loop repeat arc and the last arc of a
// firing group are never deleted.
func RemoveDominated(g *cdfg.Graph) (*Report, error) {
	rep := &Report{Name: "GT2 remove-dominated"}
	for {
		changed := false
		reach := cdfg.NewReach(g)
		for _, a := range g.Arcs() {
			if !removalSafe(g, a) {
				continue
			}
			if reach.Dominated(a) {
				rep.remove(g, a)
				g.RemoveArc(a.ID)
				changed = true
				reach = cdfg.NewReach(g)
			}
		}
		if !changed {
			return rep, nil
		}
	}
}
