package main

import (
	"errors"
	"math"
	"testing"
)

// TestSearchParamsValidate pins the flag-domain checks behind the search
// subcommand: out-of-range counts and non-finite or negative weights must
// produce a usageError (exit 2 with usage), and sensible values must pass.
func TestSearchParamsValidate(t *testing.T) {
	good := searchParams{beam: 3, waves: 3, budget: 64, branch: 4, wTime: 1, wArea: 1}
	if err := good.validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	zeroWaves := good
	zeroWaves.waves = 0
	if err := zeroWaves.validate(); err != nil {
		t.Errorf("waves=0 (seeds-only) rejected: %v", err)
	}
	timeOnly := good
	timeOnly.wArea = 0
	if err := timeOnly.validate(); err != nil {
		t.Errorf("single-axis weights rejected: %v", err)
	}
	bad := []searchParams{
		{beam: 0, waves: 3, budget: 64, branch: 4, wTime: 1, wArea: 1},
		{beam: 3, waves: -1, budget: 64, branch: 4, wTime: 1, wArea: 1},
		{beam: 3, waves: 3, budget: 0, branch: 4, wTime: 1, wArea: 1},
		{beam: 3, waves: 3, budget: 64, branch: 0, wTime: 1, wArea: 1},
		{beam: 3, waves: 3, budget: 64, branch: 4, wTime: -1, wArea: 1},
		{beam: 3, waves: 3, budget: 64, branch: 4, wTime: math.NaN(), wArea: 1},
		{beam: 3, waves: 3, budget: 64, branch: 4, wTime: math.Inf(1), wArea: 1},
		{beam: 3, waves: 3, budget: 64, branch: 4, wTime: 0, wArea: 0},
	}
	for i, p := range bad {
		err := p.validate()
		if err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
			continue
		}
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("case %d: error is not a usageError: %v", i, err)
		}
	}
}
