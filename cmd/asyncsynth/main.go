// Command asyncsynth runs the asynchronous distributed control synthesis
// flow on the built-in benchmarks and regenerates the paper's evaluation
// artifacts.
//
// Usage:
//
//	asyncsynth report fig12        state-machine comparison (Figure 12)
//	asyncsynth report fig13        gate-level comparison (Figure 13)
//	asyncsynth report fig5         channel elimination (Figure 5)
//	asyncsynth describe [bench]    print the CDFG
//	asyncsynth transform [bench]   apply GT1–GT5 and show the trace
//	asyncsynth extract [bench]     print the extracted controllers
//	asyncsynth simulate [bench]    run the controller-level simulation
//	asyncsynth explore [bench]     design-space exploration sweep
//	asyncsynth search [bench]      cost-directed rewrite search
//	asyncsynth dot cdfg|afsm [bench] [-level L]   Graphviz output
//	asyncsynth export [bench]      print the CDFG as interchange JSON
//	asyncsynth compile [file.adl]  compile ADL source to interchange JSON
//	asyncsynth synthdoc [bench]    print the synthesis result document
//	asyncsynth patch [base] delta.json  apply a CDFG delta document to a
//	                               design and print the patched interchange
//	                               JSON (dirty classification on stderr)
//
// The global -j N flag bounds the worker pool used for per-controller
// synthesis, per-output minimization and exploration sweeps (0 = all
// CPUs, the default; 1 = sequential).
//
// Observability flags (all global, before the subcommand):
//
//	-trace out.jsonl   stream structured span events (one JSON object per
//	                   line) covering every pipeline stage to the file
//	-metrics           print the per-stage timing/counter table after the
//	                   command completes
//	-pprof addr        serve net/http/pprof on addr (e.g. localhost:6060)
//	                   for CPU/heap/goroutine profiling while running
//
// Hazard-free minimization — the dominant pipeline cost — is memoized
// through a content-addressed cache (internal/memo). In-memory memoization
// is on by default; -cache-dir persists solved problems across runs and
// -no-cache disables the layer. Results are bit-identical either way; the
// -metrics table's memo/hits, memo/misses, memo/dedup-waits and
// memo/disk-hits counters show the cache's effect.
//
// Benchmarks come from the internal/bench registry: diffeq (default),
// gcd, fir, plus ewf and ar compiled from the ADL sources in examples/.
// Everywhere a benchmark name is accepted, a path to an .adl file works
// too — the source is compiled by internal/frontend and its reference
// registers come from the sequential interpreter.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers for -pprof
	"os"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/explore"
	"repro/internal/frontend"
	"repro/internal/logic"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/stage"
	"repro/internal/synth"
	"repro/internal/transform"
)

// Global flags; all must precede the subcommand.
var (
	// jWorkers is the -j parallelism knob: 0 = all CPUs, 1 = sequential.
	jWorkers    = flag.Int("j", 0, "parallel workers for synthesis and exploration (0 = all CPUs, 1 = sequential)")
	traceOut    = flag.String("trace", "", "write structured span events (JSONL) to this file")
	showMetrics = flag.Bool("metrics", false, "print the per-stage metrics table after the command")
	pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	cacheDir    = flag.String("cache-dir", "", "persist hazard-free minimization results under this directory (warm runs skip re-solving)")
	cacheMax    = flag.Int64("cache-max-bytes", 0, "cap the on-disk cache at this many bytes, evicting oldest entries first (0 = unbounded)")
	noCache     = flag.Bool("no-cache", false, "disable hazard-free minimization memoization entirely")
	solverName  = flag.String("solver", "bb", "covering backend for exact hazard-free minimization: bb, pb, portfolio or greedy")
)

// minimizer is the process-wide hfmin memoization cache built from
// -cache-dir/-no-cache; nil when -no-cache. A typed nil *memo.Cache must
// not leak into the synth.Minimizer interface, hence the indirection.
var minimizer synth.Minimizer

// coverSolver is the covering backend parsed from -solver; it configures
// both the memo cache (backend is part of the cache key) and the direct
// hfmin path used under -no-cache.
var coverSolver logic.Solver

func main() { os.Exit(run()) }

// run executes one CLI command and returns the process exit code; it is
// separate from main so the observability teardown (flush the trace file,
// print the metrics table) runs via defer even when the command fails.
func run() int {
	flag.Usage = usage
	flag.Parse()
	if *jWorkers < 0 {
		fmt.Fprintf(os.Stderr, "asyncsynth: invalid -j %d (must be >= 0)\n", *jWorkers)
		usage()
		return 2
	}
	if flag.NArg() < 1 {
		usage()
		return 2
	}
	teardown, err := setupObs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynth:", err)
		return 1
	}
	defer teardown()
	coverSolver, err = logic.ParseSolver(*solverName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynth:", err)
		usage()
		return 2
	}
	if !*noCache {
		cache, err := memo.NewSolver(*cacheDir, coverSolver)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asyncsynth:", err)
			return 1
		}
		cache.SetMaxBytes(*cacheMax)
		minimizer = cache
	}
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	switch cmd {
	case "report":
		err = report(args)
	case "describe":
		err = describe(args)
	case "transform":
		err = doTransform(args)
	case "extract":
		err = doExtract(args)
	case "simulate":
		err = simulate(args)
	case "explore":
		err = doExplore(args)
	case "search":
		err = doSearch(args)
	case "synth":
		err = doSynth(args)
	case "verilog":
		err = verilog(args)
	case "gates":
		err = gates(args)
	case "dot":
		err = dot(args)
	case "export":
		err = doExport(args)
	case "compile":
		err = doCompile(args)
	case "synthdoc":
		err = synthdoc(args)
	case "patch":
		err = doPatch(args)
	default:
		fmt.Fprintf(os.Stderr, "asyncsynth: unknown command %q\n", cmd)
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynth:", err)
		var ue usageError
		if errors.As(err, &ue) {
			usage()
			return 2
		}
		return 1
	}
	return 0
}

// usageError marks a command-line validation failure: run() prints the
// message plus the usage text and exits 2, matching the global -j check.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usageErrorf(format string, args ...interface{}) error {
	return usageError{msg: fmt.Sprintf(format, args...)}
}

// setupObs wires the -trace/-metrics/-pprof flags into the global obs
// layer and returns the teardown to run after the command: it closes the
// trace sink and prints the metrics table (also on command failure, so a
// failed run still yields its partial profile).
func setupObs() (func(), error) {
	var cleanups []func()
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return nil, fmt.Errorf("-pprof: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil) //nolint:errcheck // best-effort debug listener
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return nil, fmt.Errorf("-trace: %w", err)
		}
		tr := obs.New(1 << 16)
		tr.SetSink(f)
		tr.Enable()
		obs.SetTracer(tr)
		cleanups = append(cleanups, func() {
			if err := tr.SinkErr(); err != nil {
				fmt.Fprintln(os.Stderr, "asyncsynth: trace sink:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "asyncsynth: trace close:", err)
			}
		})
	}
	if *showMetrics {
		obs.SetMetrics(obs.NewMetrics())
		cleanups = append(cleanups, func() {
			fmt.Print(obs.Gather().Table())
		})
	}
	return func() {
		for _, f := range cleanups {
			f()
		}
	}, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: asyncsynth [-j N] <command> [args]

flags:
  -j N                      worker-pool size for per-controller synthesis,
                            per-output minimization and exploration sweeps
                            (0 = all CPUs, default; 1 = sequential)
  -trace out.jsonl          stream structured span events (JSONL) for every
                            pipeline stage to the file
  -metrics                  print the per-stage timing/counter table after
                            the command
  -pprof addr               serve net/http/pprof on addr while running
                            (e.g. localhost:6060)
  -cache-dir dir            persist hazard-free minimization results in dir;
                            warm runs load them instead of re-solving
  -cache-max-bytes N        cap the on-disk cache at N bytes, evicting the
                            oldest entries first (0 = unbounded, default)
  -no-cache                 disable minimization memoization (results are
                            identical either way; only wall time changes)
  -solver name              covering backend for exact minimization:
                            bb (default), pb, portfolio (results identical
                            to bb) or greedy (heuristic, inexact)

commands:
  report fig5|fig12|fig13   regenerate a paper table/figure (DIFFEQ)
  describe [bench]          print the CDFG
  transform [bench]         apply the global transforms, print the trace
  extract [bench]           print the extracted burst-mode controllers
  simulate [bench]          controller-level simulation, final registers
  explore [bench]           design-space exploration sweep
  search [bench]            cost-directed rewrite search over the transform
                            space; -beam N, -waves N, -budget N, -branch N,
                            -w-time W, -w-area W, -no-synth
  synth [bench]             gate-level synthesis, per-function logic
  verilog [bench]           structural Verilog netlists of the controllers
  gates [bench]             simulate the synthesized logic as gates
  export [bench]            print the CDFG as interchange JSON (the
                            document asyncsynthd's POST /v1/jobs accepts)
  compile [-check] [file.adl]  compile ADL behavioral source (stdin if no
                            file) to interchange JSON; -check only verifies
  synthdoc [bench]          run the flow locally, print the synthesis
                            result document asyncsynthd would serve
  patch [base] delta.json   apply a CDFG delta document (docs/INTERCHANGE.md)
                            to a design — a benchmark name, .adl source or
                            exported .json document — and print the patched
                            interchange JSON; the edit's dirty classification
                            (which stages an incremental re-run recomputes)
                            goes to stderr. "-" reads the delta from stdin
  dot cdfg|afsm|channels [bench]  Graphviz output (after full optimization)

benchmarks: diffeq (default), gcd, fir, ewf, ar — or a path to an .adl
source file anywhere a benchmark name is accepted`)
}

// defaultOpts is core.DefaultOptions with the -j worker-pool bound, the
// -cache-dir/-no-cache minimization cache and the -solver covering backend
// applied.
func defaultOpts() core.Options {
	opt := core.DefaultOptions()
	opt.Parallelism = *jWorkers
	opt.Minimizer = minimizer
	opt.Solver = coverSolver
	return opt
}

// buildBench resolves a benchmark argument: a name from the registry
// (internal/bench), or a path to an .adl source compiled on the spot with
// the sequential interpreter providing the reference registers.
func buildBench(name string) (*cdfg.Graph, []string, map[string]float64, error) {
	if name == "" {
		name = "diffeq"
	}
	if strings.HasSuffix(name, ".adl") {
		g, err := frontend.CompileFile(name)
		if err != nil {
			return nil, nil, nil, err
		}
		want, err := frontend.Interpret(g)
		if err != nil {
			return nil, nil, nil, err
		}
		return g, g.FUs, want, nil
	}
	b, ok := bench.Lookup(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown benchmark %q (have %s, or a path to an .adl file)",
			name, strings.Join(bench.Names(), ", "))
	}
	return b.Build(), b.FUs, b.Want(), nil
}

func benchArg(args []string) string {
	if len(args) > 0 {
		return args[0]
	}
	return "diffeq"
}

func report(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("report needs fig5, fig12 or fig13")
	}
	switch args[0] {
	case "fig5":
		g := diffeq.Build(diffeq.DefaultParams())
		opts := transform.DefaultOptions()
		opts.SkipGT5 = true
		plan, _, err := transform.OptimizeGT(g, opts)
		if err != nil {
			return err
		}
		fmt.Printf("before GT5 (Figure 5, left):\n%s\n", plan.Describe())
		plan.Eliminate()
		fmt.Printf("after GT5 (Figure 5, right):\n%s", plan.Describe())
		return nil
	case "fig12":
		var rows []core.Row
		for _, level := range []core.Level{core.Unoptimized, core.OptimizedGT, core.OptimizedGTLT} {
			opt := defaultOpts()
			opt.Level = level
			s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), opt)
			if err != nil {
				return err
			}
			rows = append(rows, s.Fig12Row())
		}
		fmt.Println("State machine comparison (Figure 12), this implementation:")
		fmt.Print(core.FormatFig12(diffeq.FUs, rows))
		fmt.Println("\nPaper's published numbers:")
		var paper []core.Row
		for _, r := range diffeq.PaperFig12 {
			paper = append(paper, core.Row{Name: r.Name, Channels: r.Channels, States: r.States, Transitions: r.Transitions})
		}
		fmt.Print(core.FormatFig12(diffeq.FUs, paper))
		return nil
	case "fig13":
		s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), defaultOpts())
		if err != nil {
			return err
		}
		results, err := s.SynthesizeLogic()
		if err != nil {
			return err
		}
		fmt.Println("Gate-level comparison (Figure 13), this implementation:")
		fmt.Print(core.FormatFig13(diffeq.FUs, results))
		fmt.Println("\nYun et al. (manual, published):")
		for _, r := range diffeq.PaperFig13Yun {
			fmt.Printf("%-8s %8d %8d\n", r.Controller, r.Products, r.Literals)
		}
		p, l := diffeq.GateTotals(diffeq.PaperFig13Yun)
		fmt.Printf("%-8s %8d %8d\n", "total", p, l)
		return nil
	default:
		return fmt.Errorf("unknown report %q", args[0])
	}
}

func describe(args []string) error {
	g, _, _, err := buildBench(benchArg(args))
	if err != nil {
		return err
	}
	fmt.Print(g)
	return nil
}

func doTransform(args []string) error {
	g, _, _, err := buildBench(benchArg(args))
	if err != nil {
		return err
	}
	plan, reports, err := transform.OptimizeGT(g, transform.DefaultOptions())
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Println(r)
		fmt.Println()
	}
	fmt.Print(plan.Describe())
	return nil
}

func doExtract(args []string) error {
	g, fus, _, err := buildBench(benchArg(args))
	if err != nil {
		return err
	}
	s, err := core.Run(g, defaultOpts())
	if err != nil {
		return err
	}
	for _, fu := range fus {
		fmt.Println(s.Machines[fu])
	}
	return nil
}

func simulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	seeds := fs.Int("seeds", 5, "number of random delay assignments")
	level := fs.String("level", "gtlt", "unopt | gt | gtlt")
	bench := benchArg(args)
	rest := args
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		rest = args[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	g, _, want, err := buildBench(bench)
	if err != nil {
		return err
	}
	opt := defaultOpts()
	switch *level {
	case "unopt":
		opt.Level = core.Unoptimized
	case "gt":
		opt.Level = core.OptimizedGT
	case "gtlt":
		opt.Level = core.OptimizedGTLT
	default:
		return fmt.Errorf("unknown level %q", *level)
	}
	s, err := core.Run(g, opt)
	if err != nil {
		return err
	}
	if err := s.Verify(want, *seeds); err != nil {
		return err
	}
	res, err := s.Simulate(0)
	if err != nil {
		return err
	}
	fmt.Printf("%s %s: verified against reference over %d delay assignments\n", bench, opt.Level, *seeds)
	fmt.Printf("final registers (seed 0, %d events, t=%.1f):\n", res.Events, res.FinishTime)
	for reg, v := range want {
		fmt.Printf("  %s = %v (want %v)\n", reg, res.Regs[reg], v)
	}
	return nil
}

func doExplore(args []string) error {
	g, _, _, err := buildBench(benchArg(args))
	if err != nil {
		return err
	}
	scores := explore.SweepWith(g, explore.AllVariants(), explore.Options{
		Workers:    *jWorkers,
		Synthesize: true,
		Minimizer:  minimizer,
		Solver:     coverSolver,
	})
	fmt.Print(explore.Format(scores))
	if best, ok := explore.Best(scores, func(s explore.Score) float64 { return s.Makespan }); ok {
		fmt.Printf("\nfastest variant: %s (makespan %.1f)\n", best.Variant.Name, best.Makespan)
	}
	fmt.Println("Pareto front (channels × states × makespan):")
	for _, sc := range explore.Pareto(scores) {
		fmt.Printf("  %s\n", sc.Variant.Name)
	}
	return nil
}

// searchParams are the parsed `search` flags, separated from flag parsing
// so validation is unit-testable.
type searchParams struct {
	beam, waves, budget, branch int
	wTime, wArea                float64
}

// validate enforces the flag domains: counts must be positive (waves may
// be zero for a seeds-only sweep), weights non-negative and finite with at
// least one axis active. Violations exit 2 with usage, matching -j.
func (p searchParams) validate() error {
	if p.beam < 1 {
		return usageErrorf("invalid -beam %d (must be >= 1)", p.beam)
	}
	if p.waves < 0 {
		return usageErrorf("invalid -waves %d (must be >= 0)", p.waves)
	}
	if p.budget < 1 {
		return usageErrorf("invalid -budget %d (must be >= 1)", p.budget)
	}
	if p.branch < 1 {
		return usageErrorf("invalid -branch %d (must be >= 1)", p.branch)
	}
	for _, w := range []struct {
		name string
		v    float64
	}{{"-w-time", p.wTime}, {"-w-area", p.wArea}} {
		if math.IsNaN(w.v) || math.IsInf(w.v, 0) || w.v < 0 {
			return usageErrorf("invalid %s %v (must be finite and >= 0)", w.name, w.v)
		}
	}
	if p.wTime == 0 && p.wArea == 0 {
		return usageErrorf("invalid weights: -w-time and -w-area are both 0 (cost would be constant)")
	}
	return nil
}

// doSearch runs the cost-directed rewrite search and prints the chosen
// plan, the final beam and the run counters, plus the comparison against
// the best fixed-ablation seed.
func doSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	beam := fs.Int("beam", 3, "beam width (states kept per wave)")
	waves := fs.Int("waves", 3, "expansion waves after scoring the seeds (0 = seeds only)")
	budget := fs.Int("budget", 64, "total plan-evaluation budget")
	branch := fs.Int("branch", 4, "max GT5.1 merge candidates expanded per state")
	wTime := fs.Float64("w-time", 1, "cost weight of the analyzed makespan")
	wArea := fs.Float64("w-area", 1, "cost weight of the synthesized literal total")
	noSynth := fs.Bool("no-synth", false, "skip gate-level scoring (cost becomes time-only)")
	benchName := benchArg(args)
	rest := args
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		rest = args[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	p := searchParams{beam: *beam, waves: *waves, budget: *budget, branch: *branch, wTime: *wTime, wArea: *wArea}
	if err := p.validate(); err != nil {
		return err
	}
	g, _, _, err := buildBench(benchName)
	if err != nil {
		return err
	}
	sopt := search.Options{
		Workers:    *jWorkers,
		Beam:       p.beam,
		Waves:      p.waves,
		Budget:     p.budget,
		MaxBranch:  p.branch,
		Weights:    search.Weights{Time: p.wTime, Area: p.wArea},
		Synthesize: !*noSynth,
		Minimizer:  minimizer,
		Solver:     coverSolver,
	}
	if p.waves == 0 {
		sopt.Waves = -1
	}
	res, err := search.Run(g, sopt)
	if err != nil {
		return err
	}
	fmt.Print(search.Format(res))
	seedBest := math.Inf(1)
	seedName := ""
	for _, st := range res.Seeds {
		if st.Score.Cost < seedBest {
			seedBest = st.Score.Cost
			seedName = st.Plan.Name()
		}
	}
	if seedName != "" {
		fmt.Printf("best fixed ablation: %s (cost %.1f)\n", seedName, seedBest)
		if res.Best.Score.Cost < seedBest {
			fmt.Printf("search improvement: %.1f\n", seedBest-res.Best.Score.Cost)
		}
	}
	return nil
}

func doSynth(args []string) error {
	g, fus, _, err := buildBench(benchArg(args))
	if err != nil {
		return err
	}
	s, err := core.Run(g, defaultOpts())
	if err != nil {
		return err
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		return err
	}
	for _, fu := range fus {
		r := results[fu]
		fmt.Println(r.Summary())
		r.SortFunctions()
		for _, f := range r.Functions {
			hf := ""
			if !f.HazardFree {
				hf = "  [NOT hazard-free]"
			}
			fmt.Printf("  %-16s %3d products %4d literals%s\n", f.Name, f.Products, f.Literals, hf)
		}
	}
	return nil
}

func gates(args []string) error {
	g, _, want, err := buildBench(benchArg(args))
	if err != nil {
		return err
	}
	s, err := core.Run(g, defaultOpts())
	if err != nil {
		return err
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		return err
	}
	res, err := s.GateSimulate(results, 0)
	if err != nil {
		return err
	}
	fmt.Printf("gate-level simulation: %d events, t=%.1f\n", res.Events, res.FinishTime)
	regs := make([]string, 0, len(want))
	for reg := range want {
		regs = append(regs, reg)
	}
	sort.Strings(regs)
	mismatches := 0
	for _, reg := range regs {
		status := "OK"
		if res.Regs[reg] != want[reg] {
			status = "MISMATCH"
			mismatches++
		}
		fmt.Printf("  %s = %v (want %v) %s\n", reg, res.Regs[reg], want[reg], status)
	}
	if len(res.Violations) > 0 {
		fmt.Printf("violations: %v\n", res.Violations)
	}
	if mismatches > 0 || len(res.Violations) > 0 {
		return fmt.Errorf("gate-level closure failed: %d mismatched register(s), %d violation(s)", mismatches, len(res.Violations))
	}
	return nil
}

func verilog(args []string) error {
	g, fus, _, err := buildBench(benchArg(args))
	if err != nil {
		return err
	}
	s, err := core.Run(g, defaultOpts())
	if err != nil {
		return err
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		return err
	}
	for _, fu := range fus {
		v, err := synth.Verilog(s.Machines[fu], results[fu])
		if err != nil {
			return err
		}
		fmt.Println(v)
	}
	return nil
}

// doCompile compiles ADL behavioral source (a file argument, or stdin
// when the argument is absent or "-") and prints the CDFG as interchange
// JSON — the document every downstream surface accepts. With -check it
// only reports whether the source compiles.
func doCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ContinueOnError)
	check := fs.Bool("check", false, "verify the source compiles; print a summary instead of JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := fs.Arg(0)
	var src []byte
	var err error
	name := path
	if path == "" || path == "-" {
		name = "<stdin>"
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	g, err := frontend.Compile(name, src)
	if err != nil {
		return err
	}
	if *check {
		fmt.Printf("%s: design %q ok: %d units, %d nodes, %d arcs\n",
			name, g.Name, len(g.FUs), len(g.Nodes()), len(g.Arcs()))
		return nil
	}
	data, err := codec.EncodeGraph(g)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

// doPatch applies a CDFG delta document to a base design and prints the
// patched design as interchange JSON, mirroring what asyncsynthd's
// PATCH /v1/jobs/{id} computes server-side. The base is a benchmark
// name, an .adl source or an exported interchange .json document; the
// edit's dirty classification — whether an incremental re-run is global
// or confined to named functional units — is reported on stderr.
func doPatch(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return usageErrorf("patch needs [base] and a delta file")
	}
	baseArg := ""
	deltaPath := args[0]
	if len(args) == 2 {
		baseArg, deltaPath = args[0], args[1]
	}
	var g *cdfg.Graph
	var err error
	if strings.HasSuffix(baseArg, ".json") {
		data, rerr := os.ReadFile(baseArg)
		if rerr != nil {
			return rerr
		}
		g, err = codec.DecodeGraph(data)
	} else {
		g, _, _, err = buildBench(baseArg)
	}
	if err != nil {
		return err
	}
	var deltaData []byte
	if deltaPath == "-" {
		deltaData, err = io.ReadAll(os.Stdin)
	} else {
		deltaData, err = os.ReadFile(deltaPath)
	}
	if err != nil {
		return err
	}
	d, err := codec.DecodeDelta(deltaData)
	if err != nil {
		return err
	}
	patched, err := codec.ApplyDelta(g, d)
	if err != nil {
		return err
	}
	dirty := stage.Classify(g, d)
	if dirty.Global {
		fmt.Fprintln(os.Stderr, "dirty: global (full recompute)")
	} else {
		fmt.Fprintf(os.Stderr, "dirty: local to %s\n", strings.Join(dirty.FUs, ", "))
	}
	data, err := codec.EncodeGraph(patched)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

// doExport prints a benchmark's CDFG as the versioned interchange JSON —
// the exact document asyncsynthd's POST /v1/jobs accepts.
func doExport(args []string) error {
	g, _, _, err := buildBench(benchArg(args))
	if err != nil {
		return err
	}
	data, err := codec.EncodeGraph(g)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

// synthdoc runs the full pipeline locally and prints the synthesis result
// document — byte-identical to what asyncsynthd serves from
// GET /v1/jobs/{id}/result for the same graph, which is what the server
// smoke test in scripts/verify.sh asserts.
func synthdoc(args []string) error {
	g, _, _, err := buildBench(benchArg(args))
	if err != nil {
		return err
	}
	s, err := core.Run(g, defaultOpts())
	if err != nil {
		return err
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		return err
	}
	data, err := codec.EncodeSynthesis(s, results)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

func dot(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("dot needs cdfg or afsm")
	}
	kind := args[0]
	g, fus, _, err := buildBench(benchArg(args[1:]))
	if err != nil {
		return err
	}
	switch kind {
	case "cdfg":
		if _, _, err := transform.OptimizeGT(g, transform.DefaultOptions()); err != nil {
			return err
		}
		fmt.Print(g.DOT())
		return nil
	case "afsm":
		s, err := core.Run(g, defaultOpts())
		if err != nil {
			return err
		}
		for _, fu := range fus {
			fmt.Print(s.Machines[fu].DOT())
		}
		return nil
	case "channels":
		s, err := core.Run(g, defaultOpts())
		if err != nil {
			return err
		}
		fmt.Print(s.Plan.DOT())
		return nil
	default:
		return fmt.Errorf("unknown dot kind %q", kind)
	}
}
