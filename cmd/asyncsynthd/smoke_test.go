package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/examples"
)

// TestServerSmoke is the end-to-end smoke test scripts/verify.sh runs:
// build the real binaries, start the daemon on a kernel-assigned port,
// submit the DIFFEQ CDFG over HTTP as JSON and the EWF design as ADL
// text, poll both jobs to completion, assert each served synthesis
// document (netlists included) is bit-identical to a direct local run,
// and shut the daemon down gracefully with SIGTERM.
func TestServerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs binaries")
	}
	dir := t.TempDir()
	daemon := filepath.Join(dir, "asyncsynthd")
	cli := filepath.Join(dir, "asyncsynth")
	for bin, pkg := range map[string]string{daemon: "repro/cmd/asyncsynthd", cli: "repro/cmd/asyncsynth"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	graph, err := exec.Command(cli, "export", "diffeq").Output()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	want, err := exec.Command(cli, "synthdoc", "diffeq").Output()
	if err != nil {
		t.Fatalf("synthdoc: %v", err)
	}

	srv := exec.Command(daemon, "-addr", "127.0.0.1:0", "-concurrency", "2")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// Everything the daemon prints is captured and replayed on failure, so
	// a broken run is diagnosable from the test log alone.
	var logMu sync.Mutex
	var daemonLog bytes.Buffer
	t.Cleanup(func() {
		if t.Failed() {
			logMu.Lock()
			defer logMu.Unlock()
			t.Logf("daemon output:\n%s", daemonLog.String())
		}
	})

	// The daemon announces its bound address on the first stdout line.
	sc := bufio.NewScanner(stdout)
	base := ""
	for sc.Scan() {
		logMu.Lock()
		daemonLog.WriteString(sc.Text() + "\n")
		logMu.Unlock()
		if rest, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			base = rest
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never announced its address: %v\noutput:\n%s", sc.Err(), daemonLog.String())
	}
	go func() { // keep the pipe drained, into the captured log
		for sc.Scan() {
			logMu.Lock()
			daemonLog.WriteString(sc.Text() + "\n")
			logMu.Unlock()
		}
	}()

	// runJob submits a body under contentType, polls it to completion and
	// returns the raw served synthesis document.
	runJob := func(contentType string, payload []byte) []byte {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", contentType, bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			ID    string `json:"id"`
			State string `json:"state"`
			Error string `json:"error"`
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit (%s): %d %s", contentType, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for st.State != "done" {
			if st.State == "failed" || st.State == "cancelled" {
				t.Fatalf("job reached %s: %s", st.State, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job stuck in %s", st.State)
			}
			time.Sleep(20 * time.Millisecond)
			resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, st.ID))
			if err != nil {
				t.Fatal(err)
			}
			body, _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatalf("poll: %v (%s)", err, body)
			}
		}
		resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", base, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		served, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return served
	}

	if served := runJob("application/json", graph); !bytes.Equal(served, want) {
		t.Fatal("served synthesis document is not bit-identical to the direct run")
	}

	// The ADL text path: submit the EWF source; the served document must
	// match a local `asyncsynth synthdoc ewf` (which compiles the same
	// embedded source through the benchmark registry).
	adl, err := examples.ADL.ReadFile("ewf.adl")
	if err != nil {
		t.Fatal(err)
	}
	wantEWF, err := exec.Command(cli, "synthdoc", "ewf").Output()
	if err != nil {
		t.Fatalf("synthdoc ewf: %v", err)
	}
	if served := runJob("text/x-adl", adl); !bytes.Equal(served, wantEWF) {
		t.Fatal("ADL-submitted synthesis document is not bit-identical to the local run")
	}

	// /metrics exposes the service counters.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `asyncsynth_counter_total{name="service/jobs_completed"} 2`) {
		t.Fatalf("metrics missing completion counter:\n%s", metrics)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
