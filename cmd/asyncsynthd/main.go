// Command asyncsynthd serves the synthesis pipeline as a long-running
// HTTP job server (synthesis-as-a-service).
//
// Usage:
//
//	asyncsynthd [-addr host:port] [-queue-depth N] [-concurrency N]
//	            [-j N] [-job-timeout D] [-drain-timeout D]
//	            [-cache-dir dir] [-no-cache]
//
// API:
//
//	POST   /v1/jobs              submit a design; optional ?level= selects
//	                             the optimization level. The body is
//	                             negotiated on Content-Type: JSON (or no
//	                             header) is an interchange CDFG document
//	                             (asyncsynth export emits one); text/x-adl
//	                             (also text/adl, text/plain) is ADL
//	                             behavioral source compiled on submission
//	                             (asyncsynth compile checks one locally)
//	GET    /v1/jobs/{id}         poll job state (result embedded when done)
//	GET    /v1/jobs/{id}/result  the synthesis document, byte-for-byte
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /healthz              liveness (503 while draining)
//	GET    /metrics              Prometheus text exposition of the obs
//	                             registry (stage timings, memo hit rates,
//	                             queue/pool gauges)
//
// Submissions beyond -queue-depth are rejected immediately with 429 —
// backpressure is applied at admission, never by queueing unbounded work.
// All jobs share one hazard-free-minimization memo cache and divide the
// -j worker budget across -concurrency runners. On SIGINT/SIGTERM the
// daemon stops admitting, finishes queued and running jobs (bounded by
// -drain-timeout, then force-cancels), and exits.
//
// The daemon prints "listening on http://ADDR" on stdout once the socket
// is bound; with -addr 127.0.0.1:0 the kernel picks a free port and
// scripts parse it from that line (see scripts/verify.sh).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/logic"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/synth"
)

var (
	addr         = flag.String("addr", "127.0.0.1:8337", "listen address (use :0 for a kernel-assigned port)")
	queueDepth   = flag.Int("queue-depth", 16, "max jobs waiting for a runner; submissions beyond it get 429")
	concurrency  = flag.Int("concurrency", 2, "jobs running simultaneously")
	jWorkers     = flag.Int("j", 0, "total pipeline worker budget shared by the runners (0 = all CPUs)")
	jobTimeout   = flag.Duration("job-timeout", 0, "per-job deadline (0 = none)")
	drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "how long shutdown waits for in-flight jobs before force-cancelling")
	cacheDir     = flag.String("cache-dir", "", "persist hazard-free minimization results under this directory")
	noCache      = flag.Bool("no-cache", false, "disable the shared minimization memo cache")
	solverName   = flag.String("solver", "bb", "covering backend for exact hazard-free minimization: bb, pb, portfolio or greedy")
)

func main() { os.Exit(run()) }

func run() int {
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "asyncsynthd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		return 2
	}
	if *jWorkers < 0 || *queueDepth < 0 || *concurrency < 0 {
		fmt.Fprintln(os.Stderr, "asyncsynthd: -j, -queue-depth and -concurrency must be >= 0")
		flag.Usage()
		return 2
	}

	// The metrics registry is always on — /metrics is part of the API.
	obs.SetMetrics(obs.NewMetrics())

	solver, err := logic.ParseSolver(*solverName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynthd:", err)
		flag.Usage()
		return 2
	}
	var minimizer synth.Minimizer
	if !*noCache {
		cache, err := memo.NewSolver(*cacheDir, solver)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asyncsynthd:", err)
			return 1
		}
		minimizer = cache
	}
	mgr := service.New(service.Config{
		QueueDepth:  *queueDepth,
		Concurrency: *concurrency,
		Parallelism: *jWorkers,
		JobTimeout:  *jobTimeout,
		Minimizer:   minimizer,
		Solver:      solver,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynthd:", err)
		return 1
	}
	fmt.Printf("listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: mgr.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "asyncsynthd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: refuse new jobs, finish admitted ones, then close
	// the listener. Polls keep working while jobs drain.
	fmt.Println("draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := mgr.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynthd: drain:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynthd: shutdown:", err)
		return 1
	}
	fmt.Println("drained")
	return 0
}
